GO ?= go

.PHONY: check build vet test race corpus update-goldens bench-smoke profile bench fig2-ledger dataplane-ledger recovery-ledger scale-ledger tenk-ledger ctrlplane-ledger stateplane-ledger faultsearch-ledger

# check is the full gate: vet, build, race-enabled tests, the self-verifying
# scenario corpus under the full differential matrix, and the benchmark smoke
# pass (every registered benchmark plus the equivalence/allocation pins).
check: vet build race corpus bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# corpus runs every scenarios/**/*.pim — the found/ counterexamples included —
# under the 5-cell differential matrix (ref+fast paths, heap+wheel schedulers,
# 1 and 2 shards, flat and map MFIB stores) and checks each run against the
# scenario's embedded golden digest (DESIGN.md §15).
corpus:
	$(GO) run ./cmd/pimscript -corpus scenarios

# update-goldens regenerates every scenario's embedded golden section after an
# intended behavior change. Review the diff: a digest change is a claim that
# the simulation's observable behavior changed on purpose.
update-goldens:
	$(GO) run ./cmd/pimscript -update scenarios

# bench-smoke is the single benchmark smoke gate. It runs every registered
# benchmark once at smoke size through the shared refuse-to-record machinery
# (`pimbench run all -smoke` — a new benchmark registered via bench.Register
# joins this gate with no Makefile edit), repeats the scaling sweep with 4
# shards to exercise the sharded-execution gate (DESIGN.md §12), replays a
# fault scenario under the online invariant checker (§10), pins the pooled
# frame path (equivalence + poison-on-release, §13) and the per-engine
# AllocsPerRun counts, runs the focused race passes the old per-subsystem
# smokes carried, and compiles-and-runs the perf-sensitive microbenchmarks so
# a regression that breaks them (not just slows them) is caught by `make check`.
bench-smoke:
	$(GO) run ./cmd/pimbench run all -smoke
	$(GO) run ./cmd/pimbench run scaling -smoke -shards 4
	$(GO) run ./cmd/pimscript -check scenarios/rpfailover.pim
	$(GO) test -run 'TestScenarios(FramePoolEquivalence|PoisonedPool)' -count=1 ./internal/script/
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/core/ ./internal/pimdm/ ./internal/dvmrp/ ./internal/cbt/ ./internal/mospf/ ./internal/igmp/
	$(GO) test -run 'TestFlatMapStoreLockstep' -count=1 ./internal/mfib/
	$(GO) test -race -count=1 ./internal/telemetry/ ./internal/script/ ./internal/netsim/... ./internal/parallel/... ./internal/faultsearch/ ./internal/faults/ ./internal/mfib/
	$(GO) test -run XXX -bench 'BenchmarkDijkstraReuse|BenchmarkLANDeliver|BenchmarkScheduler(Churn|Dense)' -benchtime 10x ./internal/topology/ ./internal/netsim/
	$(GO) test -run XXX -bench 'BenchmarkEngineFig2a' -benchtime 1x .
	$(GO) test -run XXX -bench 'BenchmarkLPM(Trie|Linear)256' -benchtime 10x ./internal/unicast/
	$(GO) test -run XXX -bench 'BenchmarkRPF(CacheHit|Uncached)' -benchtime 10x ./internal/rpf/
	$(GO) test -run XXX -bench 'BenchmarkFanout(Compiled|Reference)' -benchtime 10x ./internal/mfib/
	$(GO) test -run XXX -bench 'BenchmarkDataplane(Shared|Dense)(Fast|Ref)' -benchtime 1x ./internal/experiments/

# bench is the full metric-reporting benchmark suite (EXPERIMENTS.md).
bench:
	$(GO) test -bench . -benchmem ./...

# profile captures CPU and heap profiles of a pimbench run for pprof; set
# PROFILE_ARGS to profile a different benchmark (default: the CI-sized
# control-plane churn benchmark).
profile:
	$(GO) run ./cmd/pimbench run $(or $(PROFILE_ARGS),ctrlplane -smoke) -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof; inspect with: $(GO) tool pprof cpu.pprof"

# The *-ledger targets run a benchmark at full size and append a
# machine-readable entry to its ledger (see EXPERIMENTS.md). Recording is
# refused if the benchmark's differential gate fails.
fig2-ledger:
	$(GO) run ./cmd/pimbench run fig2 -label $(or $(LABEL),run)

dataplane-ledger:
	$(GO) run ./cmd/pimbench run dataplane -label $(or $(LABEL),run)

recovery-ledger:
	$(GO) run ./cmd/pimbench run recovery -label $(or $(LABEL),run)

# scale-ledger appends heap and wheel entries for the large-internet scaling
# sweeps; set SHARDS to also record a sharded pass gated against the
# sequential grid.
scale-ledger:
	$(GO) run ./cmd/pimbench run scaling -label $(or $(LABEL),run) -shards $(or $(SHARDS),1)

tenk-ledger:
	$(GO) run ./cmd/pimbench run tenk -label $(or $(LABEL),run) -shards $(or $(SHARDS),4)

ctrlplane-ledger:
	$(GO) run ./cmd/pimbench run ctrlplane -label $(or $(LABEL),run)

# stateplane-ledger records the MFIB footprint/walk comparison (flat arena
# store vs reference map store); recording is refused unless the two stores
# produce observably identical runs (DESIGN.md §16).
stateplane-ledger:
	$(GO) run ./cmd/pimbench run stateplane -label $(or $(LABEL),run)

# faultsearch-ledger runs the full-budget fault-schedule search and adds any
# newly found minimized counterexample to the scenarios/found/ corpus (run
# `make update-goldens` afterwards to embed the new files' digests).
faultsearch-ledger:
	$(GO) run ./cmd/pimbench run faultsearch -seed $(or $(SEED),1) -budget $(or $(BUDGET),600) -emit scenarios/found -label $(or $(LABEL),run)
