GO ?= go

.PHONY: check build vet test race bench-smoke telemetry-smoke scale-smoke shard-smoke ctrl-smoke faultsearch-smoke profile bench fig2-ledger dataplane-ledger recovery-ledger scale-ledger tenk-ledger ctrlplane-ledger faultsearch-ledger

# check is the full gate: vet, build, race-enabled tests (the -race pass
# covers internal/telemetry and internal/experiments along with everything
# else), a short benchmark smoke pass, the telemetry/invariant smoke, the
# scheduler-swap smoke, the sharded-execution smoke, the zero-allocation
# control-plane smoke, and the fault-schedule-search smoke.
check: vet build race bench-smoke telemetry-smoke scale-smoke shard-smoke ctrl-smoke faultsearch-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs one fast iteration of the perf-sensitive benchmarks so a
# regression that breaks them (not just slows them) is caught by `make check`.
bench-smoke:
	$(GO) test -run XXX -bench 'BenchmarkDijkstraReuse|BenchmarkLANDeliver|BenchmarkScheduler(Churn|Dense)' -benchtime 10x ./internal/topology/ ./internal/netsim/
	$(GO) test -run XXX -bench 'BenchmarkEngineFig2a' -benchtime 1x .
	$(GO) test -run XXX -bench 'BenchmarkLPM(Trie|Linear)256' -benchtime 10x ./internal/unicast/
	$(GO) test -run XXX -bench 'BenchmarkRPF(CacheHit|Uncached)' -benchtime 10x ./internal/rpf/
	$(GO) test -run XXX -bench 'BenchmarkFanout(Compiled|Reference)' -benchtime 10x ./internal/mfib/
	$(GO) test -run XXX -bench 'BenchmarkDataplane(Shared|Dense)(Fast|Ref)' -benchtime 1x ./internal/experiments/

# telemetry-smoke runs a fault scenario under the online invariant checker
# (DESIGN.md §10) and the focused telemetry/experiments race tests — a fast
# end-to-end pass over the telemetry plane.
telemetry-smoke:
	$(GO) run ./cmd/pimscript -check scenarios/rpfailover.pim
	$(GO) test -race -count=1 ./internal/telemetry/ ./internal/script/

# bench is the full metric-reporting benchmark suite (EXPERIMENTS.md).
bench:
	$(GO) test -bench . -benchmem ./...

# fig2-ledger appends a wall-clock entry for the Figure 2 engine to
# BENCH_fig2.json (see EXPERIMENTS.md "Running the evaluation in parallel").
fig2-ledger:
	$(GO) run ./cmd/pimbench -label $(or $(LABEL),run)

# dataplane-ledger appends a forwarding fast-path entry to
# BENCH_dataplane.json; recording is refused if the fast path's packet
# traces diverge from the reference path's (see EXPERIMENTS.md).
dataplane-ledger:
	$(GO) run ./cmd/pimbench -dataplane -label $(or $(LABEL),run)

# recovery-ledger appends a fault-recovery matrix entry to
# BENCH_recovery.json; recording is refused if any cell's fast-path delivery
# trace diverges from the reference path's (see EXPERIMENTS.md).
recovery-ledger:
	$(GO) run ./cmd/pimbench -recovery -label $(or $(LABEL),run)

# scale-smoke verifies the scheduler swap end to end: the CI-sized scaling
# sweeps must produce bit-identical simulated grids on the binary heap and
# the timing wheel, and the scheduler/worker-pool packages must pass under
# the race detector.
scale-smoke:
	$(GO) run ./cmd/pimbench -scaling -smoke
	$(GO) test -race -count=1 ./internal/netsim/... ./internal/parallel/...

# shard-smoke verifies sharded parallel execution end to end: the CI-sized
# scaling sweeps must produce the same simulated grids partitioned across 4
# shards as sequentially (peak-timer readings excepted — DESIGN.md §12), and
# the scheduler/shard/worker-pool packages must pass under the race detector.
shard-smoke:
	$(GO) run ./cmd/pimbench -scaling -smoke -shards 4
	$(GO) test -race -count=1 ./internal/netsim/... ./internal/parallel/...

# ctrl-smoke verifies the zero-allocation control plane end to end: every
# scenario must replay bit-identically on the pooled frame path — including
# under poison-on-release, which scribbles over every recycled frame so a
# handler retaining a borrowed buffer fails loudly (DESIGN.md §13); the
# CI-sized steady-state churn benchmark must show the pooled and allocating
# paths observationally identical; the per-engine AllocsPerRun pins must
# hold; and the scheduler/pool package must pass under the race detector.
ctrl-smoke:
	$(GO) test -run 'TestScenarios(FramePoolEquivalence|PoisonedPool)' -count=1 ./internal/script/
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/core/ ./internal/pimdm/ ./internal/dvmrp/ ./internal/cbt/ ./internal/mospf/ ./internal/igmp/
	$(GO) run ./cmd/pimbench -ctrlplane -smoke
	$(GO) test -race -count=1 ./internal/netsim/

# faultsearch-smoke runs the fault-schedule search at a small fixed budget
# (DESIGN.md §14). It refuses to pass if any previously-found counterexample
# under scenarios/found/ no longer reproduces its recorded verdict — the
# self-growing regression corpus is enforced here and in
# TestScenariosUpholdInvariants — and the search/injector packages must pass
# under the race detector. The smoke ledger goes to a throwaway file.
faultsearch-smoke:
	$(GO) run ./cmd/pimbench -faultsearch -seed 1 -budget 120 -label smoke -out $$(mktemp /tmp/faultsearch.XXXXXX.json)
	$(GO) test -race -count=1 ./internal/faultsearch/ ./internal/faults/

# profile captures CPU and heap profiles of a pimbench run for pprof; set
# PROFILE_ARGS to profile a different mode (default: the CI-sized
# control-plane churn benchmark).
profile:
	$(GO) run ./cmd/pimbench $(or $(PROFILE_ARGS),-ctrlplane -smoke) -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof; inspect with: $(GO) tool pprof cpu.pprof"

# scale-ledger appends heap and wheel entries for the large-internet scaling
# sweeps (up to 1000 routers) and the scheduler microbenchmarks to
# BENCH_scale.json; recording is refused if the two backing stores' simulated
# grids diverge (see EXPERIMENTS.md "Scaling sweeps"). Set SHARDS to also
# record a sharded pass gated against the sequential grid.
scale-ledger:
	$(GO) run ./cmd/pimbench -scaling -label $(or $(LABEL),run) -shards $(or $(SHARDS),1)

# tenk-ledger appends the 10000-router scaling cell to BENCH_scale.json,
# sequential plus (with SHARDS) a gated sharded pass.
tenk-ledger:
	$(GO) run ./cmd/pimbench -tenk -label $(or $(LABEL),run) -shards $(or $(SHARDS),4)

# ctrlplane-ledger appends a steady-state control-plane churn entry (1000
# routers, every protocol, pooled vs allocating frame paths) to
# BENCH_ctrlplane.json; recording is refused if any protocol's two runs
# diverge in any simulated observable (see EXPERIMENTS.md).
ctrlplane-ledger:
	$(GO) run ./cmd/pimbench -ctrlplane -label $(or $(LABEL),run)

# faultsearch-ledger runs the full-budget fault-schedule search, appends an
# entry (schedules explored, violations found, minimized sizes) to
# BENCH_faultsearch.json, and adds any newly found minimized counterexample
# to the scenarios/found/ corpus. Recording is refused if an existing corpus
# file's recorded verdict no longer reproduces (see EXPERIMENTS.md).
faultsearch-ledger:
	$(GO) run ./cmd/pimbench -faultsearch -seed $(or $(SEED),1) -budget $(or $(BUDGET),600) -emit scenarios/found -label $(or $(LABEL),run)
