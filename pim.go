// Package pim is a reproduction of "An Architecture for Wide-Area Multicast
// Routing" (Deering, Estrin, Farinacci, Jacobson, Liu, Wei — SIGCOMM 1994):
// the Protocol Independent Multicast sparse-mode architecture, the baseline
// protocols it is evaluated against (DVMRP, MOSPF, CBT, PIM dense mode),
// the discrete-event network substrate they all run on, and the experiment
// harnesses that regenerate the paper's figures.
//
// This package is the public façade: it re-exports the library's primary
// types and entry points so applications depend on a single import path.
// The implementation lives in internal/ (see DESIGN.md for the full system
// inventory):
//
//	internal/core        PIM sparse mode — the paper's contribution (§3)
//	internal/pimdm       PIM dense mode (companion protocol [13])
//	internal/dvmrp       DVMRP flood-and-prune baseline [4]
//	internal/mospf       MOSPF link-state baseline [3]
//	internal/cbt         Core Based Trees baseline [10]
//	internal/unicast     pluggable unicast routing (oracle, DV, LS)
//	internal/igmp        host membership + RP-mapping host messages
//	internal/netsim      deterministic discrete-event network simulator
//	internal/topology    graphs, random internets, Dijkstra, trees
//	internal/trees       Figure 2 tree-quality analyses
//	internal/experiments Figure 1 and sparse-overhead experiment drivers
//
// # Quick start
//
// Build a topology, wire it into a simulation, deploy PIM-SM, and exchange
// multicast data:
//
//	g := pim.NewTopology(4)
//	g.AddEdge(0, 1, 1)
//	g.AddEdge(1, 2, 1)
//	g.AddEdge(2, 3, 1)
//	sim := pim.BuildSim(g)
//	receiver := sim.AddHost(0)
//	sender := sim.AddHost(3)
//	sim.FinishUnicast(pim.UseOracle)
//	group := pim.GroupAddress(0)
//	rp := sim.RouterAddr(2)
//	dep := sim.Deploy(pim.SparseMode,
//	        pim.WithRPMapping(map[pim.IP][]pim.IP{group: {rp}}))
//	sim.Run(2 * pim.Second)
//	receiver.Join(group)
//	sim.Run(2 * pim.Second)
//	pim.SendData(sender, group, 128)
//	sim.Run(pim.Second)
//	fmt.Println(receiver.Received[group], dep.TotalState()) // 1 <entries>
//
// Deploy runs any of the five protocols (SparseMode, DenseMode, DVMRPMode,
// CBTMode, MOSPFMode) behind one Deployment interface; functional options
// configure rendezvous mapping, SPT policy, telemetry, and the online
// invariant checker. Protocol-specific state (per-router engines, IGMP
// queriers) is reachable by asserting to the concrete deployment type,
// e.g. sim.Deploy(pim.SparseMode, ...).(*pim.PIMDeployment).
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// figure-by-figure reproduction record.
package pim

import (
	"io"
	"math/rand"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/experiments"
	"pim/internal/faults"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/pimdm"
	"pim/internal/scenario"
	"pim/internal/telemetry"
	"pim/internal/topology"
	"pim/internal/tracefmt"
	"pim/internal/trees"
)

// Core addressing and time types.
type (
	// IP is an IPv4-style address.
	IP = addr.IP
	// Prefix is a CIDR prefix.
	Prefix = addr.Prefix
	// Time is simulated time in microseconds.
	Time = netsim.Time
)

// Time units.
const (
	Microsecond = netsim.Microsecond
	Millisecond = netsim.Millisecond
	Second      = netsim.Second
)

// Simulation building blocks.
type (
	// Topology is an undirected weighted graph of routers.
	Topology = topology.Graph
	// Sim is a wired simulation: routers, links, hosts, unicast routing.
	Sim = scenario.Sim
	// Host is an IGMP host attached to a router's stub LAN.
	Host = igmp.Host
	// UnicastMode selects the unicast substrate (UseOracle/UseDV/UseLS).
	UnicastMode = scenario.UnicastMode
)

// Unicast substrate choices.
const (
	UseOracle = scenario.UseOracle
	UseDV     = scenario.UseDV
	UseLS     = scenario.UseLS
)

// PIM sparse mode configuration.
type (
	// Config configures a PIM-SM router (RP mapping, timers, SPT policy).
	Config = core.Config
	// SPTPolicy selects shared-tree vs shortest-path-tree behaviour.
	SPTPolicy = core.SPTPolicy
	// Router is a PIM sparse-mode router instance.
	Router = core.Router
	// DenseConfig configures PIM dense-mode routers (flood-and-prune).
	DenseConfig = pimdm.Config
	// InteropDeployment is a mixed sparse/dense internet with border
	// routers splicing the dense regions onto sparse trees (§4).
	InteropDeployment = scenario.InteropDeployment
)

// SPT switching policies (§3.3 of the paper).
const (
	SwitchImmediate = core.SwitchImmediate
	SwitchNever     = core.SwitchNever
	SwitchThreshold = core.SwitchThreshold
)

// Unified deployment façade: sim.Deploy(mode, opts...) starts any of the
// five protocols plus IGMP behind one interface.
type (
	// Mode selects the protocol Deploy runs on every router.
	Mode = scenario.Protocol
	// Deployment is the uniform surface every protocol deployment exposes:
	// Crash/Restart/Stop lifecycle, TotalState/StateAt state metrics, and
	// the Telemetry/Checker observability hooks.
	Deployment = scenario.Deployment
	// PIMDeployment is the concrete sparse-mode deployment (per-router
	// core.Router and IGMP querier access).
	PIMDeployment = scenario.PIMDeployment
	// DeployOption is a functional deployment option for Deploy.
	DeployOption = scenario.DeployOption
	// Lifecycle is the stop/restart surface every protocol engine and the
	// IGMP querier implement — the unit internal/faults crash/restart
	// cycles operate on.
	Lifecycle = faults.Lifecycle
)

// Deployable protocols.
const (
	SparseMode = scenario.SparseMode
	DenseMode  = scenario.DenseMode
	DVMRPMode  = scenario.DVMRPMode
	CBTMode    = scenario.CBTMode
	MOSPFMode  = scenario.MOSPFMode
)

// WithRPMapping maps groups to ordered RP candidate lists (sparse mode) and
// derives the CBT core mapping from each group's first candidate.
func WithRPMapping(m map[IP][]IP) DeployOption { return scenario.WithRPMapping(m) }

// WithSPTPolicy sets the sparse-mode shared-tree→SPT switching policy (§3.3).
func WithSPTPolicy(p SPTPolicy) DeployOption { return scenario.WithSPTPolicy(p) }

// WithAggregation keys sparse-mode (S,G) state by source subnet (§4).
func WithAggregation() DeployOption { return scenario.WithAggregation() }

// WithTelemetry attaches an event bus to every engine, querier, and host.
func WithTelemetry(b *TelemetryBus) DeployOption { return scenario.WithTelemetry(b) }

// WithInvariantChecker attaches the online §3.8 invariant checker.
func WithInvariantChecker() DeployOption { return scenario.WithInvariantChecker() }

// WithIGMPTimers overrides the IGMP query interval and membership hold time.
func WithIGMPTimers(query, hold Time) DeployOption { return scenario.WithIGMPTimers(query, hold) }

// WithCoreConfig replaces the sparse-mode configuration wholesale.
func WithCoreConfig(cfg Config) DeployOption { return scenario.WithCoreConfig(cfg) }

// WithDenseConfig replaces the dense-mode configuration wholesale.
func WithDenseConfig(cfg DenseConfig) DeployOption { return scenario.WithDenseConfig(cfg) }

// Telemetry plane (see DESIGN.md "Telemetry plane"): a zero-cost-when-
// disabled event bus every engine publishes structured events to, with a
// time-series sampler, convergence probes, and an online invariant checker
// subscribing to it.
type (
	// TelemetryBus fans deployment events to subscribers in order.
	TelemetryBus = telemetry.Bus
	// TelemetryEvent is one structured protocol event.
	TelemetryEvent = telemetry.Event
	// TelemetrySampler folds events into per-router counter curves.
	TelemetrySampler = telemetry.Sampler
	// ConvergenceProbe detects delivery convergence and tree stabilization.
	ConvergenceProbe = telemetry.ConvergenceProbe
	// InvariantChecker asserts the §3.8 soft-state contracts online.
	InvariantChecker = telemetry.Checker
	// InvariantViolation is one failed contract observation.
	InvariantViolation = telemetry.Violation
)

// NewTelemetryBus creates an event bus for WithTelemetry.
func NewTelemetryBus() *TelemetryBus { return telemetry.NewBus() }

// NewTelemetrySampler attaches a counter-curve sampler to the bus with the
// given bucket interval.
func NewTelemetrySampler(bus *TelemetryBus, interval Time) *TelemetrySampler {
	return telemetry.NewSampler(bus, interval)
}

// NewConvergenceProbe attaches a convergence probe to the bus.
func NewConvergenceProbe(bus *TelemetryBus) *ConvergenceProbe {
	return telemetry.NewConvergenceProbe(bus)
}

// NewTopology creates an empty topology with n routers.
func NewTopology(n int) *Topology { return topology.New(n) }

// RandomTopology generates a connected random internet with the given
// average node degree — the paper's Figure 2 topology model.
func RandomTopology(nodes int, degree float64, seed int64) *Topology {
	return topology.Random(topology.GenConfig{Nodes: nodes, Degree: degree},
		rand.New(rand.NewSource(seed)))
}

// BuildSim wires a topology into a runnable simulation.
func BuildSim(g *Topology) *Sim { return scenario.Build(g) }

// GroupAddress mints the i-th multicast group address (225.0.0.i).
func GroupAddress(i int) IP { return addr.GroupForIndex(i) }

// ParseIP parses a dotted-quad address.
func ParseIP(s string) (IP, error) { return addr.ParseIP(s) }

// SendData injects one timestamped multicast data packet from a host.
func SendData(h *Host, g IP, size int) { scenario.SendData(h, g, size) }

// TraceEvent is one packet delivery observed by a Sim's trace hook.
type TraceEvent = netsim.TraceEvent

// FormatTrace renders a trace event as a decoded one-line protocol summary
// (the repository's tcpdump).
func FormatTrace(ev TraceEvent) string { return tracefmt.Event(ev) }

// Experiment drivers (see EXPERIMENTS.md).
type (
	// Fig2aPoint is one Figure 2(a) series point (delay-ratio statistics).
	Fig2aPoint = trees.Fig2aPoint
	// Fig2bPoint is one Figure 2(b) series point (max per-link flows).
	Fig2bPoint = trees.Fig2bPoint
	// Fig2aConfig / Fig2bConfig parameterize the Figure 2 sweeps.
	Fig2aConfig = trees.Fig2aConfig
	Fig2bConfig = trees.Fig2bConfig
	// Protocol names a multicast protocol in the comparison harness.
	Protocol = experiments.Protocol
	// OverheadResult is one protocol's state/control/data ledger.
	OverheadResult = experiments.Result
	// SparseConfig parameterizes the sparse-group overhead comparison.
	SparseConfig = experiments.SparseConfig
	// Fig1Result reports a protocol's footprint on the Figure 1 scenario.
	Fig1Result = experiments.Fig1Result
	// ScalingPoint is one sample of a §1.2 overhead-growth sweep.
	ScalingPoint = experiments.ScalingPoint
)

// Comparable protocols.
const (
	ProtoPIMSM       = experiments.PIMSM
	ProtoPIMSMShared = experiments.PIMSMShared
	ProtoPIMDM       = experiments.PIMDM
	ProtoDVMRP       = experiments.DVMRP
	ProtoCBT         = experiments.CBT
	ProtoMOSPF       = experiments.MOSPF
)

// RunFigure2a regenerates the paper's Figure 2(a) series: the ratio of
// optimal core-based tree maximum delay to shortest-path maximum delay
// across node degrees. Trials fan across cfg.Workers workers (0 =
// GOMAXPROCS); the series is bit-identical for every worker count.
func RunFigure2a(cfg Fig2aConfig) []Fig2aPoint { return trees.RunFig2a(cfg) }

// DefaultFigure2a returns the paper's Figure 2(a) parameters (50 nodes,
// 10-member groups, degrees 3–8) with a reduced trial count.
func DefaultFigure2a() Fig2aConfig { return trees.DefaultFig2a() }

// RunFigure2b regenerates the paper's Figure 2(b) series: maximum per-link
// traffic flows under per-source SPTs versus center-based shared trees.
// Trials fan across cfg.Workers workers (0 = GOMAXPROCS); the series is
// bit-identical for every worker count.
func RunFigure2b(cfg Fig2bConfig) []Fig2bPoint { return trees.RunFig2b(cfg) }

// DefaultFigure2b returns the paper's Figure 2(b) parameters (300 groups of
// 40 members, 32 senders) with a reduced trial count.
func DefaultFigure2b() Fig2bConfig { return trees.DefaultFig2b() }

// RunSparseOverhead measures one protocol's overhead on a sparse-group
// workload (the paper's §1.2 ledger: state, control messages, data packet
// processing).
func RunSparseOverhead(cfg SparseConfig, p Protocol) OverheadResult {
	return experiments.RunSparse(cfg, p)
}

// CompareSparseOverhead runs several protocols over the identical topology
// and workload. The per-protocol runs fan across cfg.Workers workers (0 =
// GOMAXPROCS); the ledger is bit-identical for every worker count.
func CompareSparseOverhead(cfg SparseConfig, ps []Protocol) []OverheadResult {
	return experiments.CompareSparse(cfg, ps)
}

// DefaultSparseConfig returns the laptop-scale sparse workload defaults.
func DefaultSparseConfig() SparseConfig { return experiments.DefaultSparse() }

// AllProtocols lists every protocol the comparison harness supports.
func AllProtocols() []Protocol { return experiments.AllProtocols() }

// RunFigure1Broadcast reproduces Figure 1(b): periodic re-broadcast cost of
// dense-mode protocols versus sparse-mode trees on the three-domain
// internet.
func RunFigure1Broadcast(p Protocol, pruneLifetime Time) Fig1Result {
	return experiments.RunFig1Broadcast(p, pruneLifetime)
}

// RunFigure1Concentration reproduces Figure 1(c): traffic concentration and
// non-shortest sender paths on a shared tree.
func RunFigure1Concentration(p Protocol) Fig1Result {
	return experiments.RunFig1Concentration(p)
}

// RunSenderScaling sweeps the per-group sender count (§1.2 "size of sender
// sets"): PIM state enumerates sources, CBT's shared tree does not.
func RunSenderScaling(base SparseConfig, counts []int, ps []Protocol) []ScalingPoint {
	return experiments.RunSenderScaling(base, counts, ps)
}

// RunGroupScaling sweeps the number of active groups (§1.2 "number of
// groups").
func RunGroupScaling(base SparseConfig, counts []int, ps []Protocol) []ScalingPoint {
	return experiments.RunGroupScaling(base, counts, ps)
}

// RunMemberScaling sweeps the per-group receiver count (§1.2 "size of
// groups").
func RunMemberScaling(base SparseConfig, counts []int, ps []Protocol) []ScalingPoint {
	return experiments.RunMemberScaling(base, counts, ps)
}

// RunSizeScaling sweeps the internet size (§1.2 "size of the internet").
func RunSizeScaling(base SparseConfig, counts []int, ps []Protocol) []ScalingPoint {
	return experiments.RunSizeScaling(base, counts, ps)
}

// ChurnConfig / ChurnResult parameterize and report the §2 group-dynamics
// experiment (control cost per membership change).
type (
	ChurnConfig = experiments.ChurnConfig
	ChurnResult = experiments.ChurnResult
)

// CongestionConfig / CongestionResult parameterize and report the
// concentration→queueing experiment (finite link bandwidth).
type (
	CongestionConfig = experiments.CongestionConfig
	CongestionResult = experiments.CongestionResult
)

// DefaultCongestionConfig returns the default congestion workload.
func DefaultCongestionConfig() CongestionConfig { return experiments.DefaultCongestion() }

// RunCongestion measures delivery delay under finite link bandwidth for one
// tree policy.
func RunCongestion(cfg CongestionConfig, p Protocol) CongestionResult {
	return experiments.RunCongestion(cfg, p)
}

// DefaultChurnConfig returns laptop-scale churn defaults.
func DefaultChurnConfig() ChurnConfig { return experiments.DefaultChurn() }

// RunChurn measures the control cost of membership dynamics.
func RunChurn(cfg ChurnConfig) ChurnResult { return experiments.RunChurn(cfg) }

// RunChurnTrials repeats the churn experiment over independent topologies
// with per-trial derived seeds, fanned across cfg.Workers workers.
func RunChurnTrials(cfg ChurnConfig, trials int) []ChurnResult {
	return experiments.RunChurnTrials(cfg, trials)
}

// Data-plane fast-path benchmark (trie LPM, generation-stamped RPF cache,
// compiled MFIB fan-out — see DESIGN.md "Forwarding fast path").
type (
	// DataplaneConfig parameterizes the N-hop forwarding benchmark.
	DataplaneConfig = experiments.DataplaneConfig
	// DataplaneResult compares reference and fast paths per phase.
	DataplaneResult = experiments.DataplaneResult
	// DataplanePhase is one phase's before/after measurement.
	DataplanePhase = experiments.DataplanePhase
)

// DefaultDataplaneConfig returns the ledger workload for the data-plane
// benchmark.
func DefaultDataplaneConfig() DataplaneConfig { return experiments.DefaultDataplane() }

// RunDataplane times steady-state forwarding over the reference path and the
// fast path on identical workloads, verifying the delivery traces are bit
// identical.
func RunDataplane(cfg DataplaneConfig) DataplaneResult { return experiments.RunDataplane(cfg) }

// Fault-recovery experiment (router crash/restart, lossy links, soft-state
// convergence — see DESIGN.md "Fault plane").
type (
	// RecoveryConfig parameterizes the fault-recovery matrix.
	RecoveryConfig = experiments.RecoveryConfig
	// RecoveryResult is the full protocol × fault matrix outcome.
	RecoveryResult = experiments.RecoveryResult
	// RecoveryCell is one (protocol, fault) cell.
	RecoveryCell = experiments.RecoveryCell
)

// DefaultRecoveryConfig returns the ledger workload for the fault-recovery
// matrix.
func DefaultRecoveryConfig() RecoveryConfig { return experiments.DefaultRecovery() }

// Recovery fault kinds (the matrix columns).
const (
	FaultLoss0  = experiments.FaultLoss0
	FaultLoss5  = experiments.FaultLoss5
	FaultLoss20 = experiments.FaultLoss20
	FaultFlap   = experiments.FaultFlap
	FaultCrash  = experiments.FaultCrash
)

// RunRecovery drives every protocol through the fault matrix (control-plane
// loss, link flap, router crash/restart) and measures recovery time, control
// overhead, and residual state, verifying reference and fast-path delivery
// traces are bit identical in every cell.
func RunRecovery(cfg RecoveryConfig) RecoveryResult { return experiments.RunRecovery(cfg) }

// RecoveryTelemetry runs one recovery cell (protocol × fault) with a
// time-series sampler attached to the deployment's event bus and returns the
// sampler; dump its per-router counter curves with WriteJSON (the
// cmd/pimbench -telemetry output).
func RecoveryTelemetry(cfg RecoveryConfig, p Protocol, fault string, interval Time) *TelemetrySampler {
	return experiments.RecoveryTelemetry(cfg, p, fault, interval)
}

// Scheduler scaling benchmark (hierarchical timing wheel vs reference binary
// heap — see DESIGN.md "Timer subsystem").
type (
	// ScalingBenchConfig names the ledgered scaling sweeps.
	ScalingBenchConfig = experiments.ScalingBenchConfig
	// ScalingBenchResult aggregates the timed sweeps.
	ScalingBenchResult = experiments.ScalingBenchResult
	// ScalingSweep is one timed sweep within the benchmark.
	ScalingSweep = experiments.ScalingSweep
)

// DefaultScalingBenchConfig returns the ledger workload (internets up to
// 1000 routers, every protocol); SmokeScalingBenchConfig the CI-sized one.
func DefaultScalingBenchConfig() ScalingBenchConfig { return experiments.DefaultScalingBench() }

// SmokeScalingBenchConfig returns the make scale-smoke workload.
func SmokeScalingBenchConfig() ScalingBenchConfig { return experiments.SmokeScalingBench() }

// TenKScalingBenchConfig returns the 10 000-router headline workload: one
// size-sweep cell per sparse protocol, ledgered with the shard count.
func TenKScalingBenchConfig() ScalingBenchConfig { return experiments.TenKScalingBench() }

// RunScalingBench runs the size/group/sender sweeps under wall-clock timing
// on the currently selected scheduler backing store.
func RunScalingBench(cfg ScalingBenchConfig) ScalingBenchResult {
	return experiments.RunScalingBench(cfg)
}

// SameScalingGrids reports whether two benchmark runs produced bit-identical
// simulated grids (the heap-vs-wheel ledger gate).
func SameScalingGrids(a, b ScalingBenchResult) bool { return experiments.SameGrids(a, b) }

// SameScalingGridsSharded is the ledger gate for multi-shard runs: grids
// must be bit-identical except the peak live-timer readings, which a
// sharded run reports as a sum of per-shard peaks (see DESIGN.md §12).
// Event counts are NOT masked.
func SameScalingGridsSharded(a, b ScalingBenchResult) bool {
	return experiments.SameGridsSharded(a, b)
}

// Scheduler is the deterministic discrete-event scheduler simulations run
// on (see DESIGN.md "Timer subsystem" for the backing stores).
type Scheduler = netsim.Scheduler

// PrepSchedulerBench returns a scheduler on the requested backing store
// preloaded with the benchmark's parked soft-state timer population;
// SchedulerChurn and SchedulerDense are the deterministic workloads
// cmd/pimbench replays via testing.Benchmark for the BENCH_scale.json
// microbenchmark columns.
func PrepSchedulerBench(wheel bool) *Scheduler { return netsim.PrepSchedulerBench(wheel) }

// SchedulerChurn runs n cancel-heavy soft-state refresh rounds.
func SchedulerChurn(s *Scheduler, n int) { netsim.SchedulerChurn(s, n) }

// SchedulerDense runs n fire-heavy data-pump rounds.
func SchedulerDense(s *Scheduler, n int) { netsim.SchedulerDense(s, n) }

// UseWheel reports whether new simulations schedule on the hierarchical
// timing wheel (the default) rather than the reference binary heap;
// SetUseWheel flips the process-global selection and returns the previous
// setting. The two backing stores are observationally identical — every
// event fires at the same simulated time in the same order — so the switch
// only changes host-side cost.
func UseWheel() bool { return netsim.UseWheel() }

// SetUseWheel selects the scheduler backing store for subsequently built
// simulations and returns the previous setting.
func SetUseWheel(on bool) bool { return netsim.SetUseWheel(on) }

// Shards returns the process-global default shard count for subsequently
// built simulations (1 = sequential); SetShards changes it and returns the
// previous setting. A sharded simulation partitions the topology into
// disjoint shards executed concurrently under conservative lookahead
// (DESIGN.md §12); results are bit-identical to the sequential path for
// any shard count.
func Shards() int { return netsim.Shards() }

// SetShards sets the default shard count for subsequently built simulations
// and returns the previous setting (values below 1 clamp to 1).
func SetShards(n int) int { return netsim.SetShards(n) }

// ParseTopology reads a cmd/topogen edge-list file.
func ParseTopology(r io.Reader) (*Topology, error) { return topology.ParseEdgeList(r) }

// RunSparseOverheadOn is RunSparseOverhead over a caller-supplied topology.
func RunSparseOverheadOn(g *Topology, cfg SparseConfig, p Protocol) OverheadResult {
	return experiments.RunSparseOn(g, cfg, p)
}

// Steady-state control-plane churn benchmark (pooled vs allocating frame
// paths — see DESIGN.md §13 "Buffer ownership").
type (
	// CtrlPlaneConfig parameterizes the steady-state refresh benchmark.
	CtrlPlaneConfig = experiments.CtrlPlaneConfig
	// CtrlPlaneResult aggregates per-protocol pooled/allocating pairs.
	CtrlPlaneResult = experiments.CtrlPlaneResult
	// CtrlPlanePair is one protocol's allocating-oracle/pooled measurement.
	CtrlPlanePair = experiments.CtrlPlanePair
	// CtrlPlaneCell is one (protocol, frame-path) measurement.
	CtrlPlaneCell = experiments.CtrlPlaneCell
)

// DefaultCtrlPlaneConfig returns the ledger workload (1000 routers, every
// protocol, ten simulated minutes of pure refresh).
func DefaultCtrlPlaneConfig() CtrlPlaneConfig { return experiments.DefaultCtrlPlane() }

// SmokeCtrlPlaneConfig returns the make ctrl-smoke workload.
func SmokeCtrlPlaneConfig() CtrlPlaneConfig { return experiments.SmokeCtrlPlane() }

// RunCtrlPlane measures the steady-state control plane under both frame
// paths and gates on bit-identical simulated observables.
func RunCtrlPlane(cfg CtrlPlaneConfig) CtrlPlaneResult { return experiments.RunCtrlPlane(cfg) }

// UseFramePool reports whether netsim transmit frames come from the
// per-scheduler free list; SetFramePool toggles it and returns the previous
// setting. Simulation results are bit-identical either way — the allocating
// path is kept as a differential oracle.
func UseFramePool() bool { return netsim.UseFramePool() }

// SetFramePool selects the pooled (true) or allocating (false) frame path
// and returns the previous setting.
func SetFramePool(on bool) bool { return netsim.SetFramePool(on) }

// SetPoisonFrames makes the frame pool scribble a poison byte over every
// released buffer, so any handler that illegally retains a borrowed frame
// fails loudly. Debug aid; returns the previous setting.
func SetPoisonFrames(on bool) bool { return netsim.SetPoisonFrames(on) }
