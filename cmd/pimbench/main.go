// Command pimbench runs the repository's registered benchmarks and appends
// their measurements to in-repo JSON ledgers, so every optimization PR has
// a before/after record against the same workloads.
//
// Usage:
//
//	pimbench list                     # registered benchmarks, one line each
//	pimbench run <name|all> [flags]   # run one benchmark, or every one
//
// Benchmarks live in the bench registry (internal/bench): each experiment
// harness registers a named Spec at init time, and this command is a thin
// dispatcher — wiring a new experiment into `pimbench run` means one
// bench.Register call next to the experiment code, never a change here or
// in the Makefile (DESIGN.md §15).
//
// Every ledgered benchmark shares two contracts the registry enforces:
// entries are stamped with a LedgerHeader (host parallelism, shard count,
// frame-pool setting, GC figures), and a benchmark whose differential gate
// fails — fast path diverging from reference, sharded grid from sequential,
// pooled frames from allocating, corpus replay regressing — records
// nothing and exits non-zero.
//
// Run flags:
//
//	-smoke         CI-sized workload: every gate runs, no ledger is written
//	-label s       entry label (e.g. seed, after-solver)
//	-out file      ledger path override (default per benchmark)
//	-shards n      simulation shard count (scaling/tenk add a sharded pass)
//	-seed n        faultsearch: search seed
//	-budget n      faultsearch: schedules to evaluate
//	-workers n     faultsearch: evaluation workers (0 = all CPUs)
//	-corpus dir    faultsearch: counterexample corpus to replay first
//	-emit dir      faultsearch: write newly found minimized counterexamples
//	-cpuprofile f  write a CPU profile of the whole run
//	-memprofile f  write a heap profile at clean exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pim/internal/bench"
	"pim/internal/netsim"

	// Benchmark registrations: each blank import wires its package's
	// bench.Register calls into the registry.
	_ "pim/internal/experiments"
	_ "pim/internal/faultsearch"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pimbench list | pimbench run <name|all> [-smoke] [flags]")
	fmt.Fprintf(os.Stderr, "benchmarks: %v\n", bench.Names())
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, name := range bench.Names() {
			spec, _ := bench.Get(name)
			fmt.Printf("%-12s %s\n", name, spec.Summary)
		}
	case "run":
		runCmd(os.Args[2:])
	default:
		usage()
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	label := fs.String("label", "run", "entry label (e.g. seed, after-solver)")
	smoke := fs.Bool("smoke", false, "CI-sized workload: verify every gate, record nothing")
	out := fs.String("out", "", "ledger file to append to (default per benchmark)")
	shards := fs.Int("shards", 1, "simulation shard count (1 = sequential; sharded runs are gated against the sequential grid)")
	seed := fs.Int64("seed", 1, "faultsearch: search seed (fixed seed => bit-identical schedules, violations, and minimized output)")
	budget := fs.Int("budget", 300, "faultsearch: schedules to evaluate")
	workers := fs.Int("workers", 0, "faultsearch: trial evaluation workers (0 = all CPUs; the report is worker-count invariant)")
	corpus := fs.String("corpus", "scenarios/found", "faultsearch: corpus directory to replay before searching (empty to skip)")
	emit := fs.String("emit", "", "faultsearch: directory to write newly found minimized counterexamples to (empty = report only)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at clean exit to this file")
	// The benchmark name comes first (`pimbench run scaling -smoke`), but
	// flags-first (`pimbench run -smoke scaling`) works too.
	name := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name, args = args[0], args[1:]
	}
	fs.Parse(args)
	switch {
	case name == "" && fs.NArg() == 1:
		name = fs.Arg(0)
	case name == "" || fs.NArg() != 0:
		usage()
	}

	netsim.SetShards(*shards)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Written on clean exit only: the gate-failure paths os.Exit and
		// deliberately drop the profile with the refused entry.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pimbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pimbench:", err)
			}
		}()
	}

	names := []string{name}
	if name == "all" {
		names = bench.Names()
	}
	for _, name := range names {
		if len(names) > 1 {
			fmt.Printf("=== %s\n", name)
		}
		ctx := &bench.Context{
			Label: *label, Smoke: *smoke, Out: *out, Shards: *shards,
			Seed: *seed, Budget: *budget, Workers: *workers,
			CorpusDir: *corpus, EmitDir: *emit,
			Logf: func(format string, a ...interface{}) {
				fmt.Printf(format+"\n", a...)
			},
		}
		if err := bench.Run(name, ctx); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimbench:", err)
	os.Exit(1)
}
