// Command pimbench records the wall-clock trajectory of the Figure 2
// experiment engine. It runs the default Figure 2(a) and 2(b) sweeps twice —
// once pinned to a single worker and once across all CPUs — verifies the two
// series are bit-identical, and appends one timestamped entry to a JSON
// ledger (BENCH_fig2.json by default). Keeping the ledger in the repo gives
// every optimization PR a before/after record against the same workload.
//
// Usage:
//
//	pimbench                        # append an entry to BENCH_fig2.json
//	pimbench -label after-solver    # tag the entry
//	pimbench -out /tmp/bench.json   # alternate ledger path
//
// With -dataplane it instead runs the forwarding fast-path benchmark
// (reference linear-scan/per-packet path vs trie LPM + RPF cache + compiled
// MFIB fan-out) and appends to BENCH_dataplane.json. The entry is recorded
// only if the two paths produced bit-identical packet delivery traces in
// every phase.
//
// With -recovery it runs the fault-recovery matrix (every protocol through
// control-plane loss, link flap, and router crash/restart) and appends to
// BENCH_recovery.json, under the same trace-equivalence gate.
//
// With -telemetry <file> it runs the PIM-SM crash/restart recovery cell with
// the telemetry sampler attached and writes the per-router counter curves
// (control messages, state entries, deliveries, drops per 5 s bucket) as
// JSON to the file, then exits without touching any ledger.
//
// With -scaling it runs the large-internet scaling sweeps (size, group
// count, sender count — up to 1000-router internets) twice, once on the
// reference binary-heap scheduler and once on the hierarchical timing wheel,
// plus the cancel-heavy and fire-heavy scheduler microbenchmarks on both
// stores. The simulated grids must be bit-identical between the stores;
// when they are, one entry per store is appended to BENCH_scale.json. Add
// -smoke for the CI-sized workload, which verifies the grid gate and
// records nothing. With -shards N (N > 1) the scaling run adds a third
// sweep on the sharded parallel core, gated on its grid being bit-identical
// to the sequential wheel run; -tenk runs the 10 000-router size cells
// (sequential and sharded) under the same gate. Every ledger entry carries
// a header recording the host's CPU count, GOMAXPROCS, and the shard and
// worker counts the numbers were measured with.
//
// With -ctrlplane it runs the steady-state control-plane churn benchmark
// (a 1000-router internet in pure periodic refresh, every protocol, with
// the allocating frame path as oracle and the pooled zero-allocation path
// as candidate) and appends to BENCH_ctrlplane.json only if every
// protocol's two runs agree on every simulated observable. Add -smoke for
// the CI-sized workload, which verifies the gate and records nothing.
// Every ledger header also records whether the frame pool was on and the
// process GC statistics at record time.
//
// With -faultsearch it runs the systematic fault-schedule search
// (internal/faultsearch): first it replays every counterexample in
// scenarios/found/ and refuses to run if any recorded verdict no longer
// reproduces; then it sweeps -budget fault schedules (seeded by -seed)
// over the small search topologies for all six engine configurations with
// the invariant checker in fail-fast mode, minimizes every violating
// schedule, and — with -emit <dir> — writes each distinct minimized
// counterexample as a self-contained .pim scenario. One entry goes to
// BENCH_faultsearch.json recording schedules explored, violations found,
// and minimized schedule sizes. A fixed seed is bit-reproducible across
// runs and across -workers counts.
//
// -cpuprofile and -memprofile write pprof profiles of whichever mode ran
// (see `make profile`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"pim"
)

// FigBench is the measurement of one figure's sweep.
type FigBench struct {
	Trials      int     `json:"trials"`
	Degrees     int     `json:"degrees"`
	Wall1Ms     float64 `json:"wall_ms_workers_1"`
	WallAllMs   float64 `json:"wall_ms_workers_all"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"series_identical"`
	FirstSeries any     `json:"first_point"`
}

// LedgerHeader is the host/run metadata stamped on every ledger entry of
// every pimbench ledger, so recorded numbers are self-describing: which
// host parallelism, which shard count, and which worker-pool width produced
// them. One helper fills it for all writers.
type LedgerHeader struct {
	Label     string `json:"label"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) — the scheduling width actually
	// available, which bounds any speedup a sharded or worker-fanned run
	// can show on this host.
	GoMaxProcs int `json:"go_max_procs"`
	// Shards is the simulation shard count in effect (1 = sequential).
	Shards int `json:"shards"`
	// Workers is the experiment worker-pool width (trial fan-out).
	Workers int `json:"workers"`
	// FramePool records whether the pooled netsim frame path was on.
	FramePool bool `json:"frame_pool"`
	// GC figures at stamp time (i.e. after the measured work): cumulative
	// collection count, total stop-the-world pause, and live heap. They make
	// every ledger's numbers interpretable as "how hard was the collector
	// working when this was recorded".
	NumGC          uint32 `json:"num_gc"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
}

// newHeader stamps a ledger header for the current process configuration.
func newHeader(label string) LedgerHeader {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return LedgerHeader{
		Label:          label,
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Shards:         pim.Shards(),
		Workers:        runtime.GOMAXPROCS(0),
		FramePool:      pim.UseFramePool(),
		NumGC:          ms.NumGC,
		GCPauseTotalNs: ms.PauseTotalNs,
		HeapAllocBytes: ms.HeapAlloc,
	}
}

// Entry is one appended ledger record.
type Entry struct {
	LedgerHeader
	Fig2a FigBench `json:"fig2a"`
	Fig2b FigBench `json:"fig2b"`
}

// DataplaneEntry is one appended record of the data-plane ledger.
type DataplaneEntry struct {
	LedgerHeader
	Result pim.DataplaneResult `json:"result"`
}

// RecoveryEntry is one appended record of the fault-recovery ledger.
type RecoveryEntry struct {
	LedgerHeader
	Result pim.RecoveryResult `json:"result"`
}

// MicroBench is one scheduler microbenchmark column of the scaling ledger.
type MicroBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ScalingEntry is one appended record of the scaling ledger. A -scaling run
// appends two: one with UseWheel=false (the reference heap, the "seed"
// side) and one with UseWheel=true (the timing wheel, the "after" side),
// both over bit-identical simulated grids.
type ScalingEntry struct {
	LedgerHeader
	UseWheel bool                   `json:"use_wheel"`
	Result   pim.ScalingBenchResult `json:"result"`
	Churn    MicroBench             `json:"sched_churn"`
	Dense    MicroBench             `json:"sched_dense"`
}

func main() {
	label := flag.String("label", "run", "entry label (e.g. seed, after-solver)")
	out := flag.String("out", "", "ledger file to append to (default BENCH_fig2.json, or BENCH_dataplane.json with -dataplane)")
	trials2a := flag.Int("trials2a", 0, "Figure 2(a) trials per degree (0 = package default)")
	trials2b := flag.Int("trials2b", 0, "Figure 2(b) trials per degree (0 = package default)")
	dataplane := flag.Bool("dataplane", false, "run the forwarding fast-path benchmark instead of the Figure 2 sweeps")
	hops := flag.Int("hops", 0, "dataplane chain length (0 = package default)")
	packets := flag.Int("packets", 0, "dataplane measured packets (0 = package default)")
	fillers := flag.Int("fillers", 0, "dataplane filler routes per unicast table (0 = package default)")
	recovery := flag.Bool("recovery", false, "run the fault-recovery matrix instead of the Figure 2 sweeps")
	scaling := flag.Bool("scaling", false, "run the large-internet scaling sweeps on both scheduler backing stores instead of the Figure 2 sweeps")
	smoke := flag.Bool("smoke", false, "with -scaling: CI-sized workload, verify the heap/wheel grid gate, record nothing")
	tenk := flag.Bool("tenk", false, "run the 10000-router scaling cell instead of the Figure 2 sweeps (honors -shards)")
	shards := flag.Int("shards", 1, "simulation shard count (1 = sequential; sharded scaling/tenk runs are gated against the sequential grid)")
	telemetryOut := flag.String("telemetry", "", "write per-router telemetry counter curves for the PIM-SM crash recovery cell to this file (JSON) and exit")
	ctrlplane := flag.Bool("ctrlplane", false, "run the steady-state control-plane churn benchmark (pooled vs allocating frame paths) instead of the Figure 2 sweeps")
	fsearch := flag.Bool("faultsearch", false, "run the fault-schedule search (replay the scenarios/found/ corpus, sweep fault schedules under the invariant checker, minimize and emit counterexamples) instead of the Figure 2 sweeps")
	fsSeed := flag.Int64("seed", 1, "with -faultsearch: search seed (fixed seed => bit-identical schedules, violations, and minimized output)")
	fsBudget := flag.Int("budget", 300, "with -faultsearch: schedules to evaluate")
	fsWorkers := flag.Int("workers", 0, "with -faultsearch: trial evaluation workers (0 = all CPUs; the report is worker-count invariant)")
	fsCorpus := flag.String("corpus", "scenarios/found", "with -faultsearch: corpus directory to replay before searching (empty to skip)")
	fsEmit := flag.String("emit", "", "with -faultsearch: directory to write newly found minimized counterexamples to (empty = report only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at clean exit to this file")
	flag.Parse()

	pim.SetShards(*shards)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pimbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Written on clean exit only: the gate-failure paths os.Exit and
		// deliberately drop the profile with the refused entry.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pimbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pimbench:", err)
			}
		}()
	}

	if *telemetryOut != "" {
		runTelemetry(*telemetryOut)
		return
	}
	if *fsearch {
		if *out == "" {
			*out = "BENCH_faultsearch.json"
		}
		runFaultSearch(*label, *out, *fsSeed, *fsBudget, *fsWorkers, *fsCorpus, *fsEmit)
		return
	}
	if *ctrlplane {
		if *out == "" {
			*out = "BENCH_ctrlplane.json"
		}
		runCtrlPlane(*label, *out, *smoke)
		return
	}
	if *dataplane {
		if *out == "" {
			*out = "BENCH_dataplane.json"
		}
		runDataplane(*label, *out, *hops, *packets, *fillers)
		return
	}
	if *recovery {
		if *out == "" {
			*out = "BENCH_recovery.json"
		}
		runRecovery(*label, *out)
		return
	}
	if *scaling {
		if *out == "" {
			*out = "BENCH_scale.json"
		}
		runScaling(*label, *out, *smoke, *shards)
		return
	}
	if *tenk {
		if *out == "" {
			*out = "BENCH_scale.json"
		}
		runTenK(*label, *out, *shards)
		return
	}
	if *out == "" {
		*out = "BENCH_fig2.json"
	}

	entry := Entry{LedgerHeader: newHeader(*label)}

	{
		cfg := pim.DefaultFigure2a()
		if *trials2a > 0 {
			cfg.Trials = *trials2a
		}
		cfg.Workers = 1
		t0 := time.Now()
		seq := pim.RunFigure2a(cfg)
		wall1 := time.Since(t0)
		cfg.Workers = 0
		t0 = time.Now()
		par := pim.RunFigure2a(cfg)
		wallAll := time.Since(t0)
		entry.Fig2a = FigBench{
			Trials: cfg.Trials, Degrees: len(cfg.Degrees),
			Wall1Ms:   float64(wall1.Microseconds()) / 1000,
			WallAllMs: float64(wallAll.Microseconds()) / 1000,
			Speedup:   float64(wall1) / float64(wallAll),
			Identical: reflect.DeepEqual(seq, par),
			FirstSeries: map[string]float64{
				"degree": seq[0].Degree, "mean_ratio": seq[0].MeanRatio,
			},
		}
		fmt.Printf("fig2a: %d trials × %d degrees  workers=1 %.0f ms  workers=all %.0f ms  speedup %.2fx  identical=%v\n",
			cfg.Trials, len(cfg.Degrees), entry.Fig2a.Wall1Ms, entry.Fig2a.WallAllMs,
			entry.Fig2a.Speedup, entry.Fig2a.Identical)
	}

	{
		cfg := pim.DefaultFigure2b()
		if *trials2b > 0 {
			cfg.Trials = *trials2b
		}
		cfg.Workers = 1
		t0 := time.Now()
		seq := pim.RunFigure2b(cfg)
		wall1 := time.Since(t0)
		cfg.Workers = 0
		t0 = time.Now()
		par := pim.RunFigure2b(cfg)
		wallAll := time.Since(t0)
		entry.Fig2b = FigBench{
			Trials: cfg.Trials, Degrees: len(cfg.Degrees),
			Wall1Ms:   float64(wall1.Microseconds()) / 1000,
			WallAllMs: float64(wallAll.Microseconds()) / 1000,
			Speedup:   float64(wall1) / float64(wallAll),
			Identical: reflect.DeepEqual(seq, par),
			FirstSeries: map[string]float64{
				"degree": seq[0].Degree, "spt_max": seq[0].SPTMax, "cbt_max": seq[0].CBTMax,
			},
		}
		fmt.Printf("fig2b: %d trials × %d degrees  workers=1 %.0f ms  workers=all %.0f ms  speedup %.2fx  identical=%v\n",
			cfg.Trials, len(cfg.Degrees), entry.Fig2b.Wall1Ms, entry.Fig2b.WallAllMs,
			entry.Fig2b.Speedup, entry.Fig2b.Identical)
	}

	if !entry.Fig2a.Identical || !entry.Fig2b.Identical {
		fmt.Fprintln(os.Stderr, "pimbench: parallel series diverged from sequential — not recording")
		os.Exit(1)
	}

	var ledger []Entry
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s exists but is not a valid ledger: %v\n", *out, err)
			os.Exit(1)
		}
	}
	ledger = append(ledger, entry)
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	fmt.Printf("appended %q entry to %s (%d entries)\n", *label, *out, len(ledger))
}

// runTelemetry runs the PIM-SM crash/restart recovery cell with the
// time-series sampler attached and dumps the per-router counter curves.
func runTelemetry(out string) {
	smp := pim.RecoveryTelemetry(pim.DefaultRecoveryConfig(), pim.ProtoPIMSM, pim.FaultCrash, 5*pim.Second)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := smp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote pim-sm/crash telemetry curves to %s\n", out)
}

// runDataplane executes the forwarding fast-path benchmark and appends it to
// the dataplane ledger — refusing to record anything if the fast path's
// packet delivery trace diverged from the reference path's in any phase.
func runDataplane(label, out string, hops, packets, fillers int) {
	cfg := pim.DefaultDataplaneConfig()
	if hops > 0 {
		cfg.Hops = hops
	}
	if packets > 0 {
		cfg.Packets = packets
	}
	if fillers > 0 {
		cfg.FillerRoutes = fillers
	}
	res := pim.RunDataplane(cfg)
	for _, p := range res.Phases {
		fmt.Printf("dataplane %-6s  ref %8.1f ms  fast %8.1f ms  speedup %5.2fx  identical=%v  delivered=%d crossings=%d\n",
			p.Name, p.RefMs, p.FastMs, p.Speedup, p.Identical, p.Delivered, p.Crossings)
	}
	if !res.AllIdentical {
		fmt.Fprintln(os.Stderr, "pimbench: fast-path trace diverged from reference path — not recording")
		os.Exit(1)
	}
	entry := DataplaneEntry{LedgerHeader: newHeader(label), Result: res}
	var ledger []DataplaneEntry
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s exists but is not a valid ledger: %v\n", out, err)
			os.Exit(1)
		}
	}
	ledger = append(ledger, entry)
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	fmt.Printf("appended %q entry to %s (%d entries, overall speedup %.2fx)\n",
		label, out, len(ledger), res.Speedup)
}

// runRecovery executes the fault-recovery matrix and appends it to the
// recovery ledger — refusing to record anything if any cell's fast-path
// delivery trace diverged from the reference path's.
func runRecovery(label, out string) {
	res := pim.RunRecovery(pim.DefaultRecoveryConfig())
	for _, c := range res.Cells {
		rec := "   never"
		if c.Recovered {
			rec = fmt.Sprintf("%7.2fs", c.RecoverySec)
		}
		fmt.Printf("recovery %-13s %-7s %s  ctrl=%4d  residual=%3d  delivered=%4d  identical=%v\n",
			c.Protocol, c.Fault, rec, c.CtrlMessages, c.ResidualState, c.Delivered, c.Identical)
	}
	if !res.AllIdentical {
		fmt.Fprintln(os.Stderr, "pimbench: fast-path trace diverged from reference path — not recording")
		os.Exit(1)
	}
	entry := RecoveryEntry{LedgerHeader: newHeader(label), Result: res}
	var ledger []RecoveryEntry
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s exists but is not a valid ledger: %v\n", out, err)
			os.Exit(1)
		}
	}
	ledger = append(ledger, entry)
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	fmt.Printf("appended %q entry to %s (%d entries, all recovered=%v)\n",
		label, out, len(ledger), res.AllRecovered)
}

// schedMicroBench replays one deterministic scheduler workload on one
// backing store under testing.Benchmark and reports ns/op and allocs/op.
// The parked-timer population is rebuilt outside the timed region on each
// probe.
func schedMicroBench(wheel bool, workload func(*pim.Scheduler, int)) MicroBench {
	r := testing.Benchmark(func(b *testing.B) {
		s := pim.PrepSchedulerBench(wheel)
		b.ReportAllocs()
		b.ResetTimer()
		workload(s, b.N)
	})
	return MicroBench{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// scalingRun executes one scaling sweep pass on the given backing store and
// shard count, printing one line per sweep.
func scalingRun(cfg pim.ScalingBenchConfig, wheel bool, shards int) pim.ScalingBenchResult {
	prevWheel := pim.SetUseWheel(wheel)
	prevShards := pim.SetShards(shards)
	defer func() {
		pim.SetUseWheel(prevWheel)
		pim.SetShards(prevShards)
	}()
	res := pim.RunScalingBench(cfg)
	store := "heap "
	if wheel {
		store = "wheel"
	}
	for _, sw := range res.Sweeps {
		fmt.Printf("scaling %-7s %s shards=%d  %2d cells  %9.1f ms  %9d events  %9.0f events/sec  peak timers %d\n",
			sw.Name, store, shards, sw.Cells, sw.WallMs, sw.Events, sw.EventsPerSec, sw.PeakTimers)
	}
	return res
}

// appendScalingEntries appends ledger records to the scaling ledger file.
func appendScalingEntries(out string, entries []ScalingEntry) {
	var ledger []ScalingEntry
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s exists but is not a valid ledger: %v\n", out, err)
			os.Exit(1)
		}
	}
	ledger = append(ledger, entries...)
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	for _, e := range entries {
		fmt.Printf("appended %q entry to %s (%d entries)\n", e.Label, out, len(ledger))
	}
}

// runScaling executes the scaling sweeps and scheduler microbenchmarks on
// both backing stores — plus, with -shards N > 1, a third pass on the wheel
// store partitioned into N parallel shards — and appends one entry per pass
// to the scaling ledger. Nothing is recorded unless the heap and wheel grids
// are bit-identical and the sharded grid matches the sequential wheel grid
// (peak-timer readings excepted; see SameScalingGridsSharded). With smoke
// set it runs the CI-sized workload, enforces the same gates, and records
// nothing.
func runScaling(label, out string, smoke bool, shards int) {
	cfg := pim.DefaultScalingBenchConfig()
	if smoke {
		cfg = pim.SmokeScalingBenchConfig()
	}
	heap := scalingRun(cfg, false, 1)
	wheel := scalingRun(cfg, true, 1)
	if !pim.SameScalingGrids(heap, wheel) {
		fmt.Fprintln(os.Stderr, "pimbench: heap and wheel scaling grids diverged — not recording")
		os.Exit(1)
	}
	fmt.Printf("scaling grids identical; wall %0.1f ms (heap) vs %0.1f ms (wheel), %.2fx\n",
		heap.WallMs, wheel.WallMs, heap.WallMs/wheel.WallMs)
	var sharded *pim.ScalingBenchResult
	if shards > 1 {
		res := scalingRun(cfg, true, shards)
		if !pim.SameScalingGridsSharded(wheel, res) {
			fmt.Fprintf(os.Stderr, "pimbench: shards=%d grid diverged from sequential — not recording\n", shards)
			os.Exit(1)
		}
		fmt.Printf("sharded grid identical; wall %0.1f ms (shards=1) vs %0.1f ms (shards=%d), %.2fx\n",
			wheel.WallMs, res.WallMs, shards, wheel.WallMs/res.WallMs)
		sharded = &res
	}
	if smoke {
		fmt.Println("smoke run: grid gate passed, nothing recorded")
		return
	}

	type side struct {
		wheel  bool
		shards int
		suffix string
		res    pim.ScalingBenchResult
	}
	sides := []side{
		{false, 1, "-heap", heap},
		{true, 1, "-wheel", wheel},
	}
	if sharded != nil {
		sides = append(sides, side{true, shards, fmt.Sprintf("-shards%d", shards), *sharded})
	}
	entries := make([]ScalingEntry, 0, len(sides))
	for _, sd := range sides {
		h := newHeader(label + sd.suffix)
		h.Shards = sd.shards
		e := ScalingEntry{
			LedgerHeader: h,
			UseWheel:     sd.wheel,
			Result:       sd.res,
			Churn:        schedMicroBench(sd.wheel, pim.SchedulerChurn),
			Dense:        schedMicroBench(sd.wheel, pim.SchedulerDense),
		}
		fmt.Printf("sched micro %s  churn %8.1f ns/op (%d allocs/op)  dense %8.1f ns/op (%d allocs/op)\n",
			sd.suffix[1:], e.Churn.NsPerOp, e.Churn.AllocsPerOp, e.Dense.NsPerOp, e.Dense.AllocsPerOp)
		entries = append(entries, e)
	}
	appendScalingEntries(out, entries)
}

// runTenK executes the 10 000-router scaling cell on the wheel store,
// sequentially and — with -shards N > 1 — sharded, gating the sharded grid
// against the sequential one before anything is recorded. Entries land in
// the scaling ledger alongside the -scaling sweeps.
func runTenK(label, out string, shards int) {
	cfg := pim.TenKScalingBenchConfig()
	seq := scalingRun(cfg, true, 1)
	h := newHeader(label + "-10k-seq")
	h.Shards = 1
	entries := []ScalingEntry{{LedgerHeader: h, UseWheel: true, Result: seq}}
	if shards > 1 {
		res := scalingRun(cfg, true, shards)
		if !pim.SameScalingGridsSharded(seq, res) {
			fmt.Fprintf(os.Stderr, "pimbench: 10k shards=%d grid diverged from sequential — not recording\n", shards)
			os.Exit(1)
		}
		fmt.Printf("10k sharded grid identical; wall %0.1f ms (shards=1) vs %0.1f ms (shards=%d), %.2fx\n",
			seq.WallMs, res.WallMs, shards, seq.WallMs/res.WallMs)
		hs := newHeader(fmt.Sprintf("%s-10k-shards%d", label, shards))
		hs.Shards = shards
		entries = append(entries, ScalingEntry{LedgerHeader: hs, UseWheel: true, Result: res})
	}
	appendScalingEntries(out, entries)
}

// CtrlPlaneEntry is one appended record of the control-plane churn ledger.
type CtrlPlaneEntry struct {
	LedgerHeader
	Result pim.CtrlPlaneResult `json:"result"`
}

// runCtrlPlane executes the steady-state control-plane benchmark — every
// protocol holding a 1000-router internet in pure periodic refresh, once on
// the allocating frame path and once on the pooled path — and appends the
// paired measurements to the ctrlplane ledger. Nothing is recorded unless
// every protocol's two runs produced bit-identical simulated observables
// (forwarding state, control-message count, scheduler events). With smoke
// set it runs the CI-sized workload, enforces the same gate, and records
// nothing.
func runCtrlPlane(label, out string, smoke bool) {
	cfg := pim.DefaultCtrlPlaneConfig()
	if smoke {
		cfg = pim.SmokeCtrlPlaneConfig()
	}
	res := pim.RunCtrlPlane(cfg)
	for _, p := range res.Pairs {
		for _, c := range []pim.CtrlPlaneCell{p.Alloc, p.Pooled} {
			path := "alloc "
			if c.Pooled {
				path = "pooled"
			}
			fmt.Printf("ctrlplane %-13s %s  %8d msgs  %9.1f ms  %9.0f msgs/sec  %6.2f allocs/msg  gc=%d pause %6.2f ms  heap %6.1f MB\n",
				p.Protocol, path, c.CtrlMessages, c.WallMs, c.MsgsPerSec,
				c.AllocsPerMsg, c.GCCycles, c.GCPauseMs, c.HeapMB)
		}
		fmt.Printf("ctrlplane %-13s speedup %.2fx  identical=%v\n", p.Protocol, p.Speedup, p.Identical)
	}
	if !res.AllIdentical {
		fmt.Fprintln(os.Stderr, "pimbench: pooled run diverged from allocating run — not recording")
		os.Exit(1)
	}
	if smoke {
		fmt.Println("smoke run: pooled/allocating gate passed, nothing recorded")
		return
	}
	entry := CtrlPlaneEntry{LedgerHeader: newHeader(label), Result: res}
	var ledger []CtrlPlaneEntry
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s exists but is not a valid ledger: %v\n", out, err)
			os.Exit(1)
		}
	}
	ledger = append(ledger, entry)
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	fmt.Printf("appended %q entry to %s (%d entries)\n", label, out, len(ledger))
}
