package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pim/internal/faultsearch"
	"pim/internal/script"
)

// FaultSearchEntry is one appended record of the fault-schedule-search
// ledger (BENCH_faultsearch.json).
type FaultSearchEntry struct {
	LedgerHeader
	Seed              int64 `json:"seed"`
	Budget            int   `json:"budget"`
	SchedulesExplored int   `json:"schedules_explored"`
	ViolationsFound   int   `json:"violations_found"`
	DistinctBugs      int   `json:"distinct_bugs"`
	// MinScheduleSize is the clause count of the smallest minimized
	// counterexample this run produced (0 = nothing found).
	MinScheduleSize int `json:"min_schedule_size"`
	MinimizeEvals   int `json:"minimize_evals"`
	// CorpusReplayed counts the scenarios/found/ files whose recorded
	// verdicts were re-verified before the sweep ran.
	CorpusReplayed int `json:"corpus_replayed"`
	CorpusEmitted  int `json:"corpus_emitted"`
}

// replayCorpus re-runs every previously-found counterexample and verifies
// its recorded verdict still reproduces. Any regression refuses the whole
// run: a corpus file that stopped failing means either a bug was fixed
// (flip the file's expectations to pin the fix) or the harness drifted —
// both demand a human, not a silently re-passing benchmark.
func replayCorpus(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.pim"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	for _, path := range paths {
		s, err := script.ParseFile(path)
		if err != nil {
			return 0, fmt.Errorf("%s: %v", path, err)
		}
		res, err := s.Run()
		if err != nil {
			return 0, fmt.Errorf("%s: %v", path, err)
		}
		if !res.OK() {
			return 0, fmt.Errorf("%s: recorded verdict no longer reproduces: %v", path, res.Failures)
		}
		fmt.Printf("corpus ok   %s\n", path)
	}
	return len(paths), nil
}

// foundFileName derives the corpus filename for a minimized counterexample:
// one file per distinct bug signature, so re-running the search never
// duplicates the corpus.
func foundFileName(f faultsearch.Found) string {
	sig := f.Verdict.Label()
	for _, r := range []string{"/", ":", "+", " "} {
		sig = strings.ReplaceAll(sig, r, "-")
	}
	return fmt.Sprintf("%s-%s-%s.pim", f.Minimal.Topo, f.Minimal.Proto, sig)
}

func runFaultSearch(label, out string, seed int64, budget, workers int, corpus, emit string) {
	replayed := 0
	if corpus != "" {
		n, err := replayCorpus(corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimbench: corpus replay FAILED, refusing to run:", err)
			os.Exit(1)
		}
		replayed = n
	}

	cfg := faultsearch.Config{
		Seed: seed, Budget: budget, Workers: workers,
		Log: func(format string, a ...interface{}) {
			fmt.Printf("faultsearch: "+format+"\n", a...)
		},
	}
	rep, err := faultsearch.Search(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	fmt.Printf("faultsearch: explored %d schedules, %d violating, %d distinct bug(s), %d minimize evals\n",
		rep.Explored, rep.Violations, len(rep.Found), rep.MinimizeEvals)

	emitted := 0
	for _, f := range rep.Found {
		fmt.Printf("found: %s (%s)\n  minimal: %v\n", f.Verdict.Label(), f.Verdict.Detail, f.Minimal)
		if emit == "" {
			continue
		}
		path := filepath.Join(emit, foundFileName(f))
		if _, err := os.Stat(path); err == nil {
			fmt.Printf("  corpus already holds %s, not overwriting\n", path)
			continue
		}
		src, err := faultsearch.RenderFound(f.Minimal, f.Verdict, seed, f.Trial)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimbench:", err)
			os.Exit(1)
		}
		if err := os.MkdirAll(emit, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "pimbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pimbench:", err)
			os.Exit(1)
		}
		fmt.Printf("  emitted %s\n", path)
		emitted++
	}

	entry := FaultSearchEntry{
		LedgerHeader:      newHeader(label),
		Seed:              seed,
		Budget:            budget,
		SchedulesExplored: rep.Explored,
		ViolationsFound:   rep.Violations,
		DistinctBugs:      len(rep.Found),
		MinScheduleSize:   rep.MinScheduleSize(),
		MinimizeEvals:     rep.MinimizeEvals,
		CorpusReplayed:    replayed,
		CorpusEmitted:     emitted,
	}
	var ledger []FaultSearchEntry
	if data, err := os.ReadFile(out); err == nil && len(strings.TrimSpace(string(data))) > 0 {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s exists but is not a valid ledger: %v\n", out, err)
			os.Exit(1)
		}
	}
	ledger = append(ledger, entry)
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	fmt.Printf("appended %q entry to %s (%d entries)\n", label, out, len(ledger))
}
