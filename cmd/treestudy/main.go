// Command treestudy regenerates the paper's Figure 2 data series: the delay
// ratio of optimal core-based trees to shortest-path trees (2a) and the
// maximum per-link traffic flows under each tree type (2b).
//
// Usage:
//
//	treestudy -fig 2a -trials 500        # the paper's full 2(a) run
//	treestudy -fig 2b -trials 20         # reduced 2(b) sweep
//	treestudy -fig 2b -core optimal      # pairwise-optimal core placement
package main

import (
	"flag"
	"fmt"
	"os"

	"pim"
	"pim/internal/plot"
	"pim/internal/trees"
)

func main() {
	fig := flag.String("fig", "2a", "which figure to regenerate: 2a or 2b")
	trials := flag.Int("trials", 0, "graphs per node degree (0 = package default; the paper used 500)")
	nodes := flag.Int("nodes", 50, "network size")
	groupSize := flag.Int("members", 0, "group size (default: 10 for 2a, 40 for 2b)")
	groups := flag.Int("groups", 300, "active groups (2b)")
	senders := flag.Int("senders", 32, "senders per group (2b)")
	seed := flag.Int64("seed", 1994, "random seed")
	core := flag.String("core", "", "core placement for 2b: center (default) | optimal | member")
	doPlot := flag.Bool("plot", false, "render an ASCII chart of the series")
	workers := flag.Int("workers", 0, "trial worker pool (0 = all CPUs, 1 = sequential; output identical)")
	flag.Parse()

	switch *fig {
	case "2a":
		cfg := pim.DefaultFigure2a()
		cfg.Nodes = *nodes
		cfg.Seed = *seed
		cfg.Workers = *workers
		if *trials > 0 {
			cfg.Trials = *trials
		}
		if *groupSize > 0 {
			cfg.GroupSize = *groupSize
		}
		fmt.Printf("# Figure 2(a): CBT/SPT max-delay ratio — %d-node graphs, %d-member groups, %d trials/degree\n",
			cfg.Nodes, cfg.GroupSize, cfg.Trials)
		points := pim.RunFigure2a(cfg)
		fmt.Printf("%-8s %-10s %-10s %-8s\n", "degree", "mean", "stddev", "max")
		for _, p := range points {
			fmt.Printf("%-8.0f %-10.3f %-10.3f %-8.3f\n", p.Degree, p.MeanRatio, p.StdRatio, p.MaxRatio)
		}
		if *doPlot {
			var xs []string
			var mean, upper []float64
			for _, p := range points {
				xs = append(xs, fmt.Sprintf("%.0f", p.Degree))
				mean = append(mean, p.MeanRatio)
				upper = append(upper, p.MeanRatio+p.StdRatio)
			}
			fmt.Println()
			fmt.Print(plot.Chart("CBT/SPT max-delay ratio vs node degree", xs, []plot.Series{
				{Name: "mean", Marker: '*', Values: mean},
				{Name: "mean+sd", Marker: '.', Values: upper},
			}, 12))
		}
	case "2b":
		cfg := pim.DefaultFigure2b()
		cfg.Nodes = *nodes
		cfg.Groups = *groups
		cfg.Senders = *senders
		cfg.Seed = *seed
		cfg.Workers = *workers
		if *trials > 0 {
			cfg.Trials = *trials
		}
		if *groupSize > 0 {
			cfg.GroupSize = *groupSize
		}
		switch *core {
		case "", "center":
			cfg.Core = trees.CoreEccentricity
		case "optimal":
			cfg.Core = trees.CorePairwiseOptimal
		case "member":
			cfg.Core = trees.CoreRandomMember
		default:
			fmt.Fprintf(os.Stderr, "unknown -core %q\n", *core)
			os.Exit(2)
		}
		fmt.Printf("# Figure 2(b): max per-link flows — %d groups × %d members (%d senders), %d trials/degree\n",
			cfg.Groups, cfg.GroupSize, cfg.Senders, cfg.Trials)
		points := pim.RunFigure2b(cfg)
		fmt.Printf("%-8s %-12s %-14s %-8s\n", "degree", "SPT", "center-tree", "ratio")
		for _, p := range points {
			fmt.Printf("%-8.0f %-12.1f %-14.1f %-8.2f\n", p.Degree, p.SPTMax, p.CBTMax, p.CBTOver)
		}
		if *doPlot {
			var xs []string
			var spt, cbtv []float64
			for _, p := range points {
				xs = append(xs, fmt.Sprintf("%.0f", p.Degree))
				spt = append(spt, p.SPTMax)
				cbtv = append(cbtv, p.CBTMax)
			}
			fmt.Println()
			fmt.Print(plot.Chart("max per-link flows vs node degree", xs, []plot.Series{
				{Name: "SPT", Marker: 'o', Values: spt},
				{Name: "center-tree", Marker: '*', Values: cbtv},
			}, 12))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q (want 2a or 2b)\n", *fig)
		os.Exit(2)
	}
}
