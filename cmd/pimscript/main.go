// Command pimscript runs scenario script files (see internal/script for the
// language): declare a topology, deploy a protocol, schedule joins, sends,
// and link failures, and assert on delivery and state. Exit status is
// non-zero if any script fails an expectation.
//
// Usage:
//
//	pimscript scenarios/*.pim            run scripts
//	pimscript -v scenarios/rendezvous.pim
//	pimscript -update scenarios/*.pim    regenerate embedded goldens
//	pimscript -corpus scenarios          discover + verify the whole corpus
//
// -corpus runs every *.pim below the directory (found/ included) through the
// differential matrix — forwarding reference vs fast path, binary heap vs
// timing wheel, shards 1 vs 2 — under the invariant checker, and verifies
// each file's embedded `-- golden --` digest in every cell (DESIGN.md §15).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pim/internal/script"
)

func main() {
	verbose := flag.Bool("v", false, "print deployment logs and delivery counts")
	check := flag.Bool("check", false, "attach the online invariant checker; violations fail the run, except for scripts that record their own verdict with `expect violations`")
	update := flag.Bool("update", false, "run each script and rewrite its embedded `-- golden --` digest")
	corpus := flag.String("corpus", "", "discover and verify every *.pim under this directory across the differential matrix")
	flag.Parse()

	if *corpus != "" {
		n, err := script.Corpus(*corpus, func(format string, a ...interface{}) {
			fmt.Printf(format+"\n", a...)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimscript:", err)
			os.Exit(1)
		}
		fmt.Printf("corpus PASS: %d scenarios x %d passes\n", n, len(script.Matrix()))
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pimscript [-v] [-check] [-update] <script.pim> ... | pimscript -corpus <dir>")
		os.Exit(2)
	}
	if *update {
		failed := 0
		for _, path := range flag.Args() {
			changed, err := script.Update(path)
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				failed++
			case changed:
				fmt.Printf("updated   %s\n", path)
			default:
				fmt.Printf("unchanged %s\n", path)
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
		return
	}

	failed := 0
	for _, path := range flag.Args() {
		s, err := script.ParseFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		res, err := s.RunWith(script.RunConfig{Checked: *check})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		violations := len(res.Violations)
		if s.ExpectsViolations() {
			// The script records its own verdict on the checker (found
			// counterexamples under scenarios/found/ assert violations >= 1):
			// the expectations decide pass/fail, not the raw violation count.
			violations = 0
		}
		if res.OK() && violations == 0 {
			fmt.Printf("PASS %s\n", path)
		} else {
			failed++
			fmt.Printf("FAIL %s\n", path)
			for _, f := range res.Failures {
				fmt.Printf("     %s\n", f)
			}
			for _, v := range res.Violations {
				fmt.Printf("     invariant: %s\n", v)
			}
		}
		if *verbose {
			for _, l := range res.Log {
				fmt.Printf("     %s\n", l)
			}
			keys := make([]string, 0, len(res.Delivered))
			for k := range res.Delivered {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("     delivered %s = %d\n", k, res.Delivered[k])
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
