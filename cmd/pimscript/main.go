// Command pimscript runs scenario script files (see internal/script for the
// language): declare a topology, deploy a protocol, schedule joins, sends,
// and link failures, and assert on delivery and state. Exit status is
// non-zero if any script fails an expectation.
//
// Usage:
//
//	pimscript scenarios/*.pim
//	pimscript -v scenarios/rendezvous.pim
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pim/internal/script"
	"pim/internal/telemetry"
)

func main() {
	verbose := flag.Bool("v", false, "print deployment logs and delivery counts")
	check := flag.Bool("check", false, "attach the online invariant checker; violations fail the run, except for scripts that record their own verdict with `expect violations`")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pimscript [-v] [-check] <script.pim> ...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		s, err := script.ParseFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		var res *script.Result
		var chk *telemetry.Checker
		if *check {
			res, chk, err = s.RunChecked()
		} else {
			res, err = s.Run()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
			continue
		}
		violations := 0
		if chk != nil {
			violations = len(chk.Violations())
		}
		if s.ExpectsViolations() {
			// The script records its own verdict on the checker (found
			// counterexamples under scenarios/found/ assert violations >= 1):
			// the expectations decide pass/fail, not the raw violation count.
			violations = 0
		}
		if res.OK() && violations == 0 {
			fmt.Printf("PASS %s\n", path)
		} else {
			failed++
			fmt.Printf("FAIL %s\n", path)
			for _, f := range res.Failures {
				fmt.Printf("     %s\n", f)
			}
			if chk != nil {
				for _, v := range chk.Violations() {
					fmt.Printf("     invariant: %s\n", v)
				}
			}
		}
		if *verbose {
			for _, l := range res.Log {
				fmt.Printf("     %s\n", l)
			}
			keys := make([]string, 0, len(res.Delivered))
			for k := range res.Delivered {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("     delivered %s = %d\n", k, res.Delivered[k])
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
