// Command pimsim runs packet-level protocol scenarios and prints the
// paper's overhead ledger (state, control messages, data packet processing,
// links touched).
//
// Usage:
//
//	pimsim -scenario sparse                   # protocol comparison, random internet
//	pimsim -scenario sparse -protocols pim-sm,cbt -nodes 100 -groups 10
//	pimsim -scenario fig1b                    # DVMRP periodic rebroadcast vs PIM
//	pimsim -scenario fig1c                    # CBT traffic concentration vs PIM
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pim"
)

func main() {
	scen := flag.String("scenario", "sparse", "scenario: sparse | fig1b | fig1c | trace | churn | scale-senders | scale-groups | scale-members | scale-size")
	protocols := flag.String("protocols", "", "comma-separated protocol list (default: all)")
	nodes := flag.Int("nodes", 50, "routers in the random internet (sparse)")
	degree := flag.Float64("degree", 4, "average node degree (sparse)")
	groups := flag.Int("groups", 5, "multicast groups (sparse)")
	members := flag.Int("members", 3, "receivers per group (sparse)")
	senders := flag.Int("senders", 1, "senders per group (sparse)")
	seed := flag.Int64("seed", 42, "random seed")
	durationSec := flag.Int("duration", 300, "measured seconds of simulated time (sparse)")
	pruneSec := flag.Int("prune", 60, "dense-mode prune lifetime in seconds")
	topoFile := flag.String("topo", "", "edge-list topology file (see cmd/topogen); overrides -nodes/-degree for the sparse scenario")
	flag.Parse()

	protos := pim.AllProtocols()
	if *protocols != "" {
		protos = nil
		for _, name := range strings.Split(*protocols, ",") {
			protos = append(protos, pim.Protocol(strings.TrimSpace(name)))
		}
	}

	switch *scen {
	case "sparse":
		cfg := pim.DefaultSparseConfig()
		cfg.Nodes = *nodes
		cfg.Degree = *degree
		cfg.Groups = *groups
		cfg.Members = *members
		cfg.Senders = *senders
		cfg.Seed = *seed
		cfg.Duration = pim.Time(*durationSec) * pim.Second
		cfg.PruneLifetime = pim.Time(*pruneSec) * pim.Second
		var topo *pim.Topology
		if *topoFile != "" {
			f, err := os.Open(*topoFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			topo, err = pim.ParseTopology(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			cfg.Nodes = topo.N()
		}
		fmt.Printf("# sparse-group overhead: %d routers (degree %.1f), %d groups × %d members + %d senders, %ds\n",
			cfg.Nodes, cfg.Degree, cfg.Groups, cfg.Members, cfg.Senders, *durationSec)
		fmt.Printf("%-14s %6s %8s %10s %7s %8s %11s\n",
			"protocol", "state", "ctrl", "dataPkts", "links", "maxLink", "delivered")
		results := func() []pim.OverheadResult {
			if topo != nil {
				out := make([]pim.OverheadResult, 0, len(protos))
				for _, p := range protos {
					out = append(out, pim.RunSparseOverheadOn(topo, cfg, p))
				}
				return out
			}
			return pim.CompareSparseOverhead(cfg, protos)
		}()
		for _, r := range results {
			fmt.Printf("%-14s %6d %8d %10d %7d %8d %6d/%d\n",
				r.Protocol, r.State, r.CtrlMessages, r.DataPackets,
				r.LinksTouched, r.MaxLinkData, r.Delivered, r.Expected)
			if r.SPFRuns > 0 {
				fmt.Printf("%-14s (plus %d Dijkstra runs)\n", "", r.SPFRuns)
			}
		}
	case "fig1b":
		prune := pim.Time(*pruneSec) * pim.Second
		fmt.Printf("# Figure 1(b): 3-domain internet, source in A, one member/domain, prune lifetime %ds\n", *pruneSec)
		fmt.Printf("%-14s %9s %7s %10s %10s\n", "protocol", "bb-links", "links", "dataPkts", "delivered")
		for _, p := range protos {
			if p == pim.ProtoMOSPF {
				continue // MOSPF has no Figure 1 dense/sparse story
			}
			r := pim.RunFigure1Broadcast(p, prune)
			fmt.Printf("%-14s %9d %7d %10d %10d\n",
				r.Protocol, r.BackboneLinksTouched, r.TotalLinksTouched, r.DataPackets, r.Delivered)
		}
	case "fig1c":
		fmt.Println("# Figure 1(c): sources Y (domain B) and Z (domain C), shared tree rooted in A")
		fmt.Printf("%-14s %12s %9s %15s %10s\n", "protocol", "bb-dataPkts", "maxLink", "meanDelay(ms)", "delivered")
		for _, p := range protos {
			if p == pim.ProtoMOSPF {
				continue
			}
			r := pim.RunFigure1Concentration(p)
			fmt.Printf("%-14s %12d %9d %15.1f %10d\n",
				r.Protocol, r.BackboneDataPackets, r.MaxLinkData,
				float64(r.MeanDelay)/float64(pim.Millisecond), r.Delivered)
		}
	case "trace":
		runTrace()
	case "churn":
		cfg := pim.DefaultChurnConfig()
		cfg.Nodes = *nodes
		cfg.Degree = *degree
		cfg.Seed = *seed
		cfg.Duration = pim.Time(*durationSec) * pim.Second
		res := pim.RunChurn(cfg)
		fmt.Printf("# group dynamics: %d routers, pool of %d receivers, mean hold %.0fs\n",
			cfg.Nodes, cfg.Pool, cfg.MeanHold.Seconds())
		fmt.Printf("joins=%d leaves=%d ctrlMsgs=%d ctrl/event=%.1f finalState=%d\n",
			res.JoinEvents, res.LeaveEvents, res.CtrlMessages, res.CtrlPerEvent, res.FinalState)
	case "scale-senders", "scale-groups", "scale-members", "scale-size":
		cfg := pim.DefaultSparseConfig()
		cfg.Nodes = *nodes
		cfg.Degree = *degree
		cfg.Groups = *groups
		cfg.Members = *members
		cfg.Senders = *senders
		cfg.Seed = *seed
		cfg.Duration = pim.Time(*durationSec) * pim.Second
		cfg.PruneLifetime = pim.Time(*pruneSec) * pim.Second
		sweep := []int{1, 2, 4, 8}
		var pts []pim.ScalingPoint
		switch *scen {
		case "scale-senders":
			pts = pim.RunSenderScaling(cfg, sweep, protos)
		case "scale-groups":
			pts = pim.RunGroupScaling(cfg, sweep, protos)
		case "scale-size":
			pts = pim.RunSizeScaling(cfg, []int{25, 50, 100, 200}, protos)
		default:
			pts = pim.RunMemberScaling(cfg, sweep, protos)
		}
		axis := (*scen)[len("scale-"):]
		label := "number of " + axis
		if axis == "size" {
			label = "internet size (routers)"
		}
		fmt.Printf("# §1.2 overhead growth with the %s (degree %.1f)\n", label, cfg.Degree)
		fmt.Printf("%-10s %-14s %6s %8s %10s %7s\n", axis, "protocol", "state", "ctrl", "dataPkts", "links")
		for _, pt := range pts {
			for _, r := range pt.Results {
				fmt.Printf("%-10d %-14s %6d %8d %10d %7d\n",
					pt.X, r.Protocol, r.State, r.CtrlMessages, r.DataPackets, r.LinksTouched)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -scenario %q\n", *scen)
		os.Exit(2)
	}
}

// runTrace walks the Figure 3 rendezvous with every packet decoded — the
// protocol conversation the paper's §3 narrates, as a readable dump.
func runTrace() {
	g := pim.NewTopology(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	sim := pim.BuildSim(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3)
	sim.FinishUnicast(pim.UseOracle)
	group := pim.GroupAddress(0)
	sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{RPMapping: map[pim.IP][]pim.IP{group: {sim.RouterAddr(2)}}}))
	sim.Run(2 * pim.Second)
	// Only now start tracing: skip the hello storm.
	sim.Net.Trace = func(ev pim.TraceEvent) { fmt.Println(pim.FormatTrace(ev)) }
	fmt.Println("--- receiver joins (IGMP report -> PIM joins toward the RP)")
	receiver.Join(group)
	sim.Run(200 * pim.Millisecond)
	fmt.Println("--- sender transmits (register -> RP joins the source -> native data)")
	pim.SendData(sender, group, 64)
	sim.Run(200 * pim.Millisecond)
	pim.SendData(sender, group, 64)
	sim.Run(200 * pim.Millisecond)
}
