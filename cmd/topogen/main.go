// Command topogen generates the random connected internets used throughout
// the experiments and prints them as an edge list, for inspection or for
// feeding external tools.
//
// Usage:
//
//	topogen -nodes 50 -degree 4 -seed 7
//	topogen -nodes 50 -degree 6 -mindelay 1 -maxdelay 10
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"pim/internal/topology"
)

func main() {
	nodes := flag.Int("nodes", 50, "number of routers")
	degree := flag.Float64("degree", 4, "target average node degree")
	seed := flag.Int64("seed", 1, "random seed")
	minDelay := flag.Int64("mindelay", 1, "minimum edge delay")
	maxDelay := flag.Int64("maxdelay", 1, "maximum edge delay")
	flag.Parse()

	g := topology.Random(topology.GenConfig{
		Nodes: *nodes, Degree: *degree,
		MinDelay: *minDelay, MaxDelay: *maxDelay,
	}, rand.New(rand.NewSource(*seed)))

	fmt.Printf("# nodes=%d edges=%d avg-degree=%.2f connected=%v\n",
		g.N(), g.M(), g.AvgDegree(), g.Connected())
	fmt.Println("# a b delay")
	for _, e := range g.Edges() {
		fmt.Printf("%d %d %d\n", e.A, e.B, e.Delay)
	}
}
