// Command topogen generates the random connected internets used throughout
// the experiments and prints them as an edge list, for inspection or for
// feeding external tools.
//
// Usage:
//
//	topogen -nodes 50 -degree 4 -seed 7
//	topogen -nodes 50 -degree 6 -mindelay 1 -maxdelay 10
//	topogen -clustered -clusters 8 -clusternodes 32 -wanmindelay 50
//
// With -clustered the generator emits dense low-delay clusters joined by
// sparse high-delay WAN links — the topology shape the sharded simulation
// core partitions best — and reports the partition cut it induces.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"pim/internal/topology"
)

func main() {
	nodes := flag.Int("nodes", 50, "number of routers")
	degree := flag.Float64("degree", 4, "target average node degree")
	seed := flag.Int64("seed", 1, "random seed")
	minDelay := flag.Int64("mindelay", 1, "minimum edge delay")
	maxDelay := flag.Int64("maxdelay", 1, "maximum edge delay")
	clustered := flag.Bool("clustered", false, "generate dense clusters joined by high-delay WAN links")
	clusters := flag.Int("clusters", 4, "number of clusters (-clustered)")
	clusterNodes := flag.Int("clusternodes", 0, "nodes per cluster (-clustered; default nodes/clusters)")
	wanMinDelay := flag.Int64("wanmindelay", 0, "minimum WAN link delay (-clustered; default 10x maxdelay)")
	wanMaxDelay := flag.Int64("wanmaxdelay", 0, "maximum WAN link delay (-clustered)")
	extraWAN := flag.Int("extrawan", 0, "extra WAN links beyond the inter-cluster spanning tree")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *topology.Graph
	if *clustered {
		per := *clusterNodes
		if per <= 0 {
			per = *nodes / *clusters
			if per < 2 {
				per = 2
			}
		}
		g = topology.Clustered(topology.ClusteredConfig{
			Clusters: *clusters, ClusterNodes: per, Degree: *degree,
			MinDelay: *minDelay, MaxDelay: *maxDelay,
			WANMinDelay: *wanMinDelay, WANMaxDelay: *wanMaxDelay,
			ExtraWAN: *extraWAN,
		}, rng)
	} else {
		g = topology.Random(topology.GenConfig{
			Nodes: *nodes, Degree: *degree,
			MinDelay: *minDelay, MaxDelay: *maxDelay,
		}, rng)
	}

	fmt.Printf("# nodes=%d edges=%d avg-degree=%.2f connected=%v\n",
		g.N(), g.M(), g.AvgDegree(), g.Connected())
	if *clustered {
		asn := topology.Partition(g, *clusters)
		cut := topology.CutEdges(g, asn)
		fmt.Printf("# clusters=%d cut-links=%d min-cut-delay=%d\n",
			*clusters, len(cut), topology.MinCutDelay(g, asn))
	}
	fmt.Println("# a b delay")
	for _, e := range g.Edges() {
		fmt.Printf("%d %d %d\n", e.A, e.B, e.Delay)
	}
}
