// Command quickstart walks the paper's Figures 3 and 4: a receiver joins a
// group through its designated router, the shared tree forms hop by hop
// toward the rendezvous point, a sender registers, the RP joins back toward
// the source, and data flows end to end.
//
// Topology (the figures' layout):
//
//	receiver — A — B — C(RP) — D — sender
package main

import (
	"fmt"

	"pim"
)

func main() {
	// Routers 0..3 are A, B, C, D.
	g := pim.NewTopology(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)

	sim := pim.BuildSim(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3)
	sim.FinishUnicast(pim.UseOracle)

	group := pim.GroupAddress(0)
	rp := sim.RouterAddr(2) // router C is the RP
	dep := sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{RPMapping: map[pim.IP][]pim.IP{group: {rp}}})).(*pim.PIMDeployment)
	sim.Run(2 * pim.Second) // neighbor discovery

	fmt.Printf("group %v, RP at router C (%v)\n\n", group, rp)

	// Step 1 (Figure 3): the receiver joins; A sends a PIM join toward the
	// RP and every hop instantiates (*,G) state.
	fmt.Println("receiver joins ->")
	receiver.Join(group)
	sim.Run(2 * pim.Second)
	for i, name := range []string{"A", "B", "C(RP)", "D"} {
		wc := dep.Routers[i].MFIB.Wildcard(group)
		if wc == nil {
			fmt.Printf("  %-6s no state\n", name)
			continue
		}
		iif := "null (this router is the RP)"
		if wc.IIF != nil {
			iif = wc.IIF.String()
		}
		fmt.Printf("  %-6s %v  iif=%s  oifs=%d\n", name, wc, iif, wc.OIFCount())
	}

	// Step 2 (Figure 3): the sender transmits; D piggybacks the data on a
	// register to the RP; the RP joins toward the source.
	fmt.Println("\nsender transmits 5 packets ->")
	for i := 0; i < 5; i++ {
		pim.SendData(sender, group, 128)
		sim.Run(pim.Second)
	}
	src := sender.Iface.Addr
	for i, name := range []string{"A", "B", "C(RP)", "D"} {
		sg := dep.Routers[i].MFIB.SG(src, group)
		if sg == nil {
			fmt.Printf("  %-6s no (S,G) state\n", name)
			continue
		}
		fmt.Printf("  %-6s %v  SPTbit=%v\n", name, sg, sg.SPTBit)
	}
	fmt.Printf("\nreceiver delivered %d of 5 packets\n", receiver.Received[group])
	fmt.Printf("registers sent by D: %d (stop once the native path forms)\n",
		dep.Routers[3].Metrics.Get("ctrl.register"))
}
