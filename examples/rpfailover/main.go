// Command rpfailover demonstrates §3.9 of the paper: multiple rendezvous
// points. Sources register toward every RP; receivers join toward one. When
// the primary RP becomes unreachable, its RP-reachability beacons stop, the
// receivers' RP timers expire, and they re-join toward the alternate RP —
// no single point of failure.
package main

import (
	"fmt"

	"pim"
)

func main() {
	//   0=A(receiver) — 1=B —— 2=RP1 —— 4=E(sender)
	//                    \______3=RP2 ____/
	g := pim.NewTopology(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 2)
	g.AddEdge(2, 4, 1)
	g.AddEdge(3, 4, 1)

	sim := pim.BuildSim(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(4)
	sim.FinishUnicast(pim.UseOracle)
	group := pim.GroupAddress(0)
	rp1, rp2 := sim.RouterAddr(2), sim.RouterAddr(3)

	dep := sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{
		RPMapping: map[pim.IP][]pim.IP{group: {rp1, rp2}},
		SPTPolicy: pim.SwitchNever, // keep the flow visibly on the RP trees
	})).(*pim.PIMDeployment)
	sim.Run(2 * pim.Second)
	receiver.Join(group)
	sim.Run(2 * pim.Second)

	// Steady 1 packet/s traffic.
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		pim.SendData(sender, group, 128)
		sim.Net.Sched.After(pim.Second, pump)
	}
	sim.Net.Sched.After(0, pump)

	report := func(label string) {
		wc := dep.Routers[0].MFIB.Wildcard(group)
		cur := pim.IP(0)
		if wc != nil {
			cur = wc.RP
		}
		fmt.Printf("%-28s t=%5.0fs  receiver RP=%v  delivered=%d\n",
			label, sim.Net.Sched.Now().Seconds(), cur, receiver.Received[group])
	}

	sim.Run(20 * pim.Second)
	report("steady state on RP1:")

	fmt.Println("\n-- cutting both links of RP1 --")
	sim.Net.SetLinkUp(sim.EdgeLinks[1], false)
	sim.Net.SetLinkUp(sim.EdgeLinks[3], false)

	// RP-reachability hold time is 3 × 30 s.
	sim.Run(95 * pim.Second)
	report("after reachability timeout:")
	before := receiver.Received[group]
	sim.Run(30 * pim.Second)
	report("resumed delivery:")
	stop = true
	fmt.Printf("\npackets delivered after fail-over: %d\n", receiver.Received[group]-before)
}
