// Command sptswitch walks the paper's Figure 5: a receiver on the shared
// tree switches to the source's shortest-path tree. Router B, where the two
// trees diverge, sets the SPT bit when data arrives over the shortcut and
// prunes the source off the RP tree; the RP records the negative cache.
//
// Topology:
//
//	receiver — A — B — C(RP) — D — sender
//	               \__________/
//	              (B—D shortcut)
package main

import (
	"fmt"

	"pim"
)

func main() {
	g := pim.NewTopology(4)
	g.AddEdge(0, 1, 1) // A-B
	g.AddEdge(1, 2, 1) // B-C
	g.AddEdge(2, 3, 1) // C-D
	g.AddEdge(1, 3, 1) // B-D: the shortest path bypassing the RP

	sim := pim.BuildSim(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3)
	sim.FinishUnicast(pim.UseOracle)
	group := pim.GroupAddress(0)
	rp := sim.RouterAddr(2)

	for _, policy := range []struct {
		name string
		p    pim.SPTPolicy
	}{
		{"stay on shared tree (SwitchNever)", pim.SwitchNever},
		{"switch immediately (SwitchImmediate)", pim.SwitchImmediate},
	} {
		// Fresh simulation per policy so state comparisons are clean.
		sim = pim.BuildSim(g)
		receiver = sim.AddHost(0)
		sender = sim.AddHost(3)
		sim.FinishUnicast(pim.UseOracle)
		dep := sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{
			RPMapping: map[pim.IP][]pim.IP{group: {rp}},
			SPTPolicy: policy.p,
		})).(*pim.PIMDeployment)
		sim.Run(2 * pim.Second)
		receiver.Join(group)
		sim.Run(2 * pim.Second)
		sim.Net.Stats.Reset()
		for i := 0; i < 10; i++ {
			pim.SendData(sender, group, 128)
			sim.Run(pim.Second)
		}
		src := sender.Iface.Addr
		fmt.Printf("policy: %s\n", policy.name)
		fmt.Printf("  delivered: %d/10\n", receiver.Received[group])
		b := dep.Routers[1]
		if sg := b.MFIB.SG(src, group); sg != nil {
			fmt.Printf("  B (S,G): %v  iif=%v  SPTbit=%v\n", sg, sg.IIF, sg.SPTBit)
		} else {
			fmt.Println("  B (S,G): none (data follows the RP tree)")
		}
		if rpt := dep.Routers[2].MFIB.SGRpt(src, group); rpt != nil {
			fmt.Printf("  C (RP) negative cache: %v (source pruned off the shared tree)\n", rpt)
		} else {
			fmt.Println("  C (RP) negative cache: none")
		}
		// Per-link data footprint shows which path the packets took.
		names := []string{"A-B", "B-C", "C-D", "B-D"}
		fmt.Print("  data packets per link:")
		for ei, l := range sim.EdgeLinks {
			fmt.Printf("  %s=%d", names[ei], sim.Net.Stats.PerLink[l.ID].DataPackets)
		}
		fmt.Println()
		fmt.Println()
	}
}
