// Command trafficstudy runs a reduced-trial version of the paper's Figure 2
// experiments (§1.3): the delay penalty of optimal core-based trees versus
// shortest-path trees, and the traffic-concentration comparison, over random
// 50-node internets. Use cmd/treestudy for full-scale runs with flags.
package main

import (
	"fmt"

	"pim"
)

func main() {
	fmt.Println("Figure 2(a): CBT max delay / SPT max delay")
	fmt.Println("(50-node graphs, 10-member groups, optimal core placement)")
	cfgA := pim.DefaultFigure2a()
	cfgA.Trials = 100
	fmt.Printf("%-7s %-10s %-10s %-8s\n", "degree", "mean", "stddev", "max")
	for _, p := range pim.RunFigure2a(cfgA) {
		fmt.Printf("%-7.0f %-10.3f %-10.3f %-8.3f\n", p.Degree, p.MeanRatio, p.StdRatio, p.MaxRatio)
	}

	fmt.Println("\nFigure 2(b): max traffic flows on any link")
	fmt.Println("(300 groups × 40 members, 32 senders each)")
	cfgB := pim.DefaultFigure2b()
	cfgB.Trials = 5
	fmt.Printf("%-7s %-12s %-12s %-8s\n", "degree", "SPT", "center-tree", "ratio")
	for _, p := range pim.RunFigure2b(cfgB) {
		fmt.Printf("%-7.0f %-12.1f %-12.1f %-8.2f\n", p.Degree, p.SPTMax, p.CBTMax, p.CBTOver)
	}
	fmt.Println("\n(The paper's Figure 2(b) shape: the SPT curve falls with node degree")
	fmt.Println("while the center-based tree curve stays flat — shared trees concentrate.)")

	fmt.Println("\nConcentration made operational: delivery delay under finite bandwidth")
	fmt.Println("(8 groups rendezvous at one router, 20kB/s links, identical load)")
	cfgC := pim.DefaultCongestionConfig()
	cfgC.Duration = 30 * pim.Second
	for _, p := range []pim.Protocol{pim.ProtoPIMSMShared, pim.ProtoPIMSM} {
		r := pim.RunCongestion(cfgC, p)
		fmt.Printf("%-15s meanDelay=%5.1fms  worstQueue=%5.1fms\n",
			r.Protocol, r.MeanDelay.Seconds()*1000, r.MaxQueueDelay.Seconds()*1000)
	}
}
