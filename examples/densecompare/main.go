// Command densecompare reproduces the paper's Figure 1 arguments on the
// three-domain internet (§1.3): a dense-mode protocol periodically
// re-broadcasts data across the whole internet when prunes expire, a shared
// tree concentrates traffic and lengthens sender paths, and PIM's
// receiver-initiated trees avoid both.
package main

import (
	"fmt"

	"pim"
)

func main() {
	prune := 30 * pim.Second

	fmt.Println("Figure 1(b): one source in domain A, one member per domain")
	fmt.Println("(data footprint over 4 prune lifetimes; 5 backbone links, 11 total)")
	fmt.Printf("%-14s %9s %9s %10s %10s\n",
		"protocol", "bb-links", "links", "dataPkts", "delivered")
	for _, p := range []pim.Protocol{pim.ProtoDVMRP, pim.ProtoPIMDM, pim.ProtoPIMSM, pim.ProtoPIMSMShared, pim.ProtoCBT} {
		r := pim.RunFigure1Broadcast(p, prune)
		fmt.Printf("%-14s %9d %9d %10d %10d\n",
			r.Protocol, r.BackboneLinksTouched, r.TotalLinksTouched, r.DataPackets, r.Delivered)
	}

	fmt.Println("\nFigure 1(c): sources Y (domain B) and Z (domain C) both send")
	fmt.Printf("%-14s %12s %12s %14s\n", "protocol", "bb-dataPkts", "maxLink", "meanDelay(ms)")
	for _, p := range []pim.Protocol{pim.ProtoCBT, pim.ProtoPIMSMShared, pim.ProtoPIMSM} {
		r := pim.RunFigure1Concentration(p)
		fmt.Printf("%-14s %12d %12d %14.1f\n",
			r.Protocol, r.BackboneDataPackets, r.MaxLinkData, float64(r.MeanDelay)/float64(pim.Millisecond))
	}

	fmt.Println("\nSparse-group overhead on a random 50-node internet (§1.2 ledger)")
	cfg := pim.DefaultSparseConfig()
	fmt.Printf("%-14s %6s %8s %10s %7s %9s\n",
		"protocol", "state", "ctrl", "dataPkts", "links", "delivered")
	for _, r := range pim.CompareSparseOverhead(cfg, pim.AllProtocols()) {
		fmt.Printf("%-14s %6d %8d %10d %7d %6d/%d\n",
			r.Protocol, r.State, r.CtrlMessages, r.DataPackets, r.LinksTouched, r.Delivered, r.Expected)
	}
}
