// Command interop demonstrates the paper's §4 dense/sparse interoperation
// mechanism: a dense-mode (flood-and-prune) region spliced onto a PIM
// sparse-mode tree by a border router. Member existence inside the dense
// region is flooded to the border, which sends explicit joins into the
// sparse region on the region's behalf; sources inside the region are
// registered toward the RP by the border acting as their designated router.
//
//	sparse:  RP(0) —— 1 —— [2 border] —— 3 —— 4   :dense
package main

import (
	"fmt"

	"pim"
)

func main() {
	g := pim.NewTopology(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	sim := pim.BuildSim(g)
	sparseHost := sim.AddHost(1) // sender + member in the sparse region
	denseHost := sim.AddHost(4)  // member + sender deep in the dense region
	sim.FinishUnicast(pim.UseOracle)

	group := pim.GroupAddress(0)
	dep := sim.DeployInterop(
		pim.Config{RPMapping: map[pim.IP][]pim.IP{group: {sim.RouterAddr(0)}}},
		pim.DenseConfig{PruneHoldTime: 600 * pim.Second},
		map[int]bool{3: true, 4: true}, // routers 3 and 4 form the dense region
	)
	sim.Run(2 * pim.Second)

	fmt.Println("deployment roles:")
	for i := range sim.Routers {
		role := "sparse (PIM-SM)"
		switch {
		case dep.Dense[i] != nil:
			role = "dense (PIM-DM flood-and-prune)"
		case dep.Borders[i] != nil:
			role = "BORDER (sparse+dense splice)"
		}
		fmt.Printf("  router %d: %s\n", i, role)
	}

	fmt.Println("\n1. a member joins deep inside the dense region (router 4)")
	denseHost.Join(group)
	sim.Run(3 * pim.Second)
	b := dep.Borders[2]
	fmt.Printf("   member-existence flooded to the border: %v\n", b.Dense.RegionHasMembers(group))
	fmt.Printf("   border joined the sparse shared tree:   %v\n", b.Sparse.MFIB.Wildcard(group) != nil)

	fmt.Println("\n2. a sparse-region source transmits 5 packets")
	for i := 0; i < 5; i++ {
		pim.SendData(sparseHost, group, 128)
		sim.Run(pim.Second)
	}
	fmt.Printf("   dense-region member received: %d/5\n", denseHost.Received[group])

	fmt.Println("\n3. the dense-region host transmits 5 packets back")
	sparseHost.Join(group)
	sim.Run(2 * pim.Second)
	before := sparseHost.Received[group]
	for i := 0; i < 5; i++ {
		pim.SendData(denseHost, group, 128)
		sim.Run(pim.Second)
	}
	fmt.Printf("   sparse-region member received: %d/5 (border registered the dense source)\n",
		sparseHost.Received[group]-before)
}
