package pim_test

import (
	"fmt"

	"pim"
)

// Example reproduces the paper's Figure 3 rendezvous on a four-router line:
// the receiver joins toward the RP, the sender's designated router registers
// the source, the RP joins back, and data flows end to end.
func Example() {
	g := pim.NewTopology(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)

	sim := pim.BuildSim(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3)
	sim.FinishUnicast(pim.UseOracle)

	group := pim.GroupAddress(0)
	sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{
		RPMapping: map[pim.IP][]pim.IP{group: {sim.RouterAddr(2)}},
	}))
	sim.Run(2 * pim.Second)

	receiver.Join(group)
	sim.Run(2 * pim.Second)
	for i := 0; i < 3; i++ {
		pim.SendData(sender, group, 128)
		sim.Run(pim.Second)
	}
	fmt.Println("delivered:", receiver.Received[group])
	// Output: delivered: 3
}

// ExampleRunFigure2a regenerates a reduced-trial Figure 2(a) point: the
// delay penalty of an optimal core-based tree at node degree 4.
func ExampleRunFigure2a() {
	cfg := pim.DefaultFigure2a()
	cfg.Degrees = []float64{4}
	cfg.Trials = 50
	p := pim.RunFigure2a(cfg)[0]
	fmt.Printf("ratio >= 1: %v, within Wall bound: %v\n", p.MeanRatio >= 1, p.MeanRatio <= 2)
	// Output: ratio >= 1: true, within Wall bound: true
}

// ExampleRunSparseOverhead measures PIM-SM's overhead ledger on a sparse
// workload.
func ExampleRunSparseOverhead() {
	cfg := pim.DefaultSparseConfig()
	cfg.Duration = 60 * pim.Second
	r := pim.RunSparseOverhead(cfg, pim.ProtoPIMSM)
	fmt.Printf("delivered everything: %v, off-tree links clean: %v\n",
		r.Delivered >= r.Expected*9/10, r.LinksTouched < 100)
	// Output: delivered everything: true, off-tree links clean: true
}
