// Benchmarks regenerating the paper's evaluation data. Each figure of the
// paper has a benchmark that reports the figure's quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the experiment
// harness (EXPERIMENTS.md records the expected shapes):
//
//	Figure 2(a)  BenchmarkFig2aDelayRatio/degree=N      -> ratio, ratio_std
//	Figure 2(b)  BenchmarkFig2bTrafficConcentration/... -> spt_max, cbt_max
//	Figure 1(b)  BenchmarkFig1Broadcast/<protocol>      -> links, data_pkts
//	Figure 1(c)  BenchmarkFig1Concentration/<protocol>  -> delay_ms, bb_pkts
//	§1.2 ledger  BenchmarkSparseOverhead/<protocol>     -> state, ctrl, ...
//
// Ablation benches cover the design choices DESIGN.md §5 calls out.
package pim_test

import (
	"fmt"
	"testing"

	"pim"
	"pim/internal/trees"
)

// BenchmarkFig2aDelayRatio regenerates Figure 2(a): the ratio of optimal
// core-based tree max delay to shortest-path max delay on 50-node random
// graphs with 10-member groups, per node degree.
func BenchmarkFig2aDelayRatio(b *testing.B) {
	for _, degree := range []float64{3, 4, 5, 6, 7, 8} {
		degree := degree
		b.Run(fmt.Sprintf("degree=%.0f", degree), func(b *testing.B) {
			cfg := pim.DefaultFigure2a()
			cfg.Degrees = []float64{degree}
			cfg.Trials = 50
			var last pim.Fig2aPoint
			for i := 0; i < b.N; i++ {
				cfg.Seed = 1994 + int64(i)
				last = pim.RunFigure2a(cfg)[0]
			}
			b.ReportMetric(last.MeanRatio, "ratio")
			b.ReportMetric(last.StdRatio, "ratio_std")
		})
	}
}

// BenchmarkFig2bTrafficConcentration regenerates Figure 2(b): the maximum
// per-link flow count with 300 40-member groups (32 senders each), per node
// degree, under per-source SPTs and under center-based shared trees.
func BenchmarkFig2bTrafficConcentration(b *testing.B) {
	for _, degree := range []float64{3, 4, 5, 6, 7, 8} {
		degree := degree
		b.Run(fmt.Sprintf("degree=%.0f", degree), func(b *testing.B) {
			cfg := pim.DefaultFigure2b()
			cfg.Degrees = []float64{degree}
			cfg.Trials = 3
			var last pim.Fig2bPoint
			for i := 0; i < b.N; i++ {
				cfg.Seed = 1994 + int64(i)
				last = pim.RunFigure2b(cfg)[0]
			}
			b.ReportMetric(last.SPTMax, "spt_max")
			b.ReportMetric(last.CBTMax, "cbt_max")
			b.ReportMetric(last.CBTOver, "cbt_over_spt")
		})
	}
}

// BenchmarkFig1Broadcast regenerates Figure 1(b): the data-plane footprint
// of one sparse source on the three-domain internet, per protocol. Dense
// mode re-floods every prune lifetime; sparse mode touches only the tree.
func BenchmarkFig1Broadcast(b *testing.B) {
	for _, p := range []pim.Protocol{pim.ProtoDVMRP, pim.ProtoPIMDM, pim.ProtoPIMSM, pim.ProtoPIMSMShared, pim.ProtoCBT} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var last pim.Fig1Result
			for i := 0; i < b.N; i++ {
				last = pim.RunFigure1Broadcast(p, 30*pim.Second)
			}
			b.ReportMetric(float64(last.TotalLinksTouched), "links")
			b.ReportMetric(float64(last.BackboneLinksTouched), "bb_links")
			b.ReportMetric(float64(last.DataPackets), "data_pkts")
		})
	}
}

// BenchmarkFig1Concentration regenerates Figure 1(c): shared-tree traffic
// concentration and the delay penalty for sources Y and Z.
func BenchmarkFig1Concentration(b *testing.B) {
	for _, p := range []pim.Protocol{pim.ProtoCBT, pim.ProtoPIMSMShared, pim.ProtoPIMSM} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var last pim.Fig1Result
			for i := 0; i < b.N; i++ {
				last = pim.RunFigure1Concentration(p)
			}
			b.ReportMetric(float64(last.MeanDelay)/float64(pim.Millisecond), "delay_ms")
			b.ReportMetric(float64(last.BackboneDataPackets), "bb_pkts")
			b.ReportMetric(float64(last.MaxLinkData), "max_link")
		})
	}
}

// BenchmarkSparseOverhead regenerates the paper's §1.2 overhead ledger on a
// random 50-node internet with sparse groups, per protocol: total state,
// control messages, data packet link-crossings, and links touched by data.
func BenchmarkSparseOverhead(b *testing.B) {
	cfg := pim.DefaultSparseConfig()
	cfg.Duration = 120 * pim.Second
	for _, p := range pim.AllProtocols() {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var last pim.OverheadResult
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Seed = cfg.Seed + int64(i)
				last = pim.RunSparseOverhead(c, p)
			}
			b.ReportMetric(float64(last.State), "state")
			b.ReportMetric(float64(last.CtrlMessages), "ctrl_msgs")
			b.ReportMetric(float64(last.DataPackets), "data_pkts")
			b.ReportMetric(float64(last.LinksTouched), "links")
		})
	}
}

// BenchmarkAblationSPTPolicy measures the §3.3 policy knob: delivery delay
// and data-plane cost on the Figure 1 topology when receivers stay on the
// shared tree versus switching to SPTs.
func BenchmarkAblationSPTPolicy(b *testing.B) {
	for _, tc := range []struct {
		name string
		p    pim.Protocol
	}{
		{"shared-tree", pim.ProtoPIMSMShared},
		{"spt-switch", pim.ProtoPIMSM},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var last pim.Fig1Result
			for i := 0; i < b.N; i++ {
				last = pim.RunFigure1Concentration(tc.p)
			}
			b.ReportMetric(float64(last.MeanDelay)/float64(pim.Millisecond), "delay_ms")
			b.ReportMetric(float64(last.DataPackets), "data_pkts")
		})
	}
}

// BenchmarkAblationCorePlacement quantifies how much optimal core placement
// buys over naive member-rooted trees (DESIGN.md §5).
func BenchmarkAblationCorePlacement(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    trees.CorePolicy
	}{
		{"pairwise-optimal", trees.CorePairwiseOptimal},
		{"eccentricity-center", trees.CoreEccentricity},
		{"first-member", trees.CoreRandomMember},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := pim.DefaultFigure2b()
			cfg.Trials = 2
			cfg.Groups = 100
			cfg.Degrees = []float64{4}
			cfg.Core = tc.c
			var last pim.Fig2bPoint
			for i := 0; i < b.N; i++ {
				cfg.Seed = 7 + int64(i)
				last = pim.RunFigure2b(cfg)[0]
			}
			b.ReportMetric(last.CBTMax, "cbt_max_flows")
		})
	}
}

// BenchmarkAblationRefreshInterval measures soft-state control overhead
// versus the §3.4 refresh period.
func BenchmarkAblationRefreshInterval(b *testing.B) {
	for _, interval := range []pim.Time{30 * pim.Second, 60 * pim.Second, 120 * pim.Second} {
		interval := interval
		b.Run(fmt.Sprintf("interval=%.0fs", interval.Seconds()), func(b *testing.B) {
			var ctrl int64
			for i := 0; i < b.N; i++ {
				g := pim.NewTopology(6)
				for j := 0; j < 5; j++ {
					g.AddEdge(j, j+1, 1)
				}
				sim := pim.BuildSim(g)
				receiver := sim.AddHost(0)
				sim.FinishUnicast(pim.UseOracle)
				group := pim.GroupAddress(0)
				dep := sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{
					RPMapping:         map[pim.IP][]pim.IP{group: {sim.RouterAddr(5)}},
					JoinPruneInterval: interval,
				})).(*pim.PIMDeployment)
				sim.Run(2 * pim.Second)
				receiver.Join(group)
				sim.Run(10 * 60 * pim.Second)
				ctrl = 0
				for _, r := range dep.Routers {
					ctrl += r.Metrics.Get("ctrl.joinprune")
				}
			}
			b.ReportMetric(float64(ctrl), "joinprune_msgs_10min")
		})
	}
}

// BenchmarkAblationUnicastSubstrate runs the identical PIM-SM rendezvous
// over each unicast substrate (DESIGN.md §5: protocol independence cost).
func BenchmarkAblationUnicastSubstrate(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode pim.UnicastMode
	}{
		{"oracle", pim.UseOracle},
		{"distance-vector", pim.UseDV},
		{"link-state", pim.UseLS},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			delivered := 0
			for i := 0; i < b.N; i++ {
				g := pim.NewTopology(4)
				g.AddEdge(0, 1, 1)
				g.AddEdge(1, 2, 1)
				g.AddEdge(2, 3, 1)
				sim := pim.BuildSim(g)
				receiver := sim.AddHost(0)
				sender := sim.AddHost(3)
				sim.FinishUnicast(tc.mode)
				sim.Run(sim.ConvergenceTime())
				group := pim.GroupAddress(0)
				sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{RPMapping: map[pim.IP][]pim.IP{group: {sim.RouterAddr(2)}}}))
				sim.Run(2 * pim.Second)
				receiver.Join(group)
				sim.Run(2 * pim.Second)
				for j := 0; j < 5; j++ {
					pim.SendData(sender, group, 128)
					sim.Run(pim.Second)
				}
				delivered = receiver.Received[group]
			}
			b.ReportMetric(float64(delivered), "delivered_of_5")
		})
	}
}

// BenchmarkSimulatorEventThroughput is a pure substrate micro-benchmark:
// events per second through the discrete-event core under a realistic PIM
// workload.
func BenchmarkSimulatorEventThroughput(b *testing.B) {
	g := pim.RandomTopology(30, 4, 3)
	sim := pim.BuildSim(g)
	var hosts []*pim.Host
	for i := 0; i < 6; i++ {
		hosts = append(hosts, sim.AddHost(i*5))
	}
	sim.FinishUnicast(pim.UseOracle)
	group := pim.GroupAddress(0)
	sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{RPMapping: map[pim.IP][]pim.IP{group: {sim.RouterAddr(0)}}}))
	sim.Run(2 * pim.Second)
	for _, h := range hosts[:5] {
		h.Join(group)
	}
	sim.Run(2 * pim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pim.SendData(hosts[5], group, 128)
		sim.Run(pim.Second)
	}
	b.ReportMetric(float64(sim.Net.Sched.Processed)/float64(b.N), "events/op")
}

// BenchmarkEngineFig2a measures the parallel experiment engine on the
// Figure 2(a) workload: identical trial set at one worker versus all CPUs.
// The sub-benchmark ns/op ratio is the engine's speedup (the output series
// is bit-identical either way; TestFig2DeterministicAcrossWorkers pins that).
func BenchmarkEngineFig2a(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=all", 0}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := pim.DefaultFigure2a()
			cfg.Trials = 30
			cfg.Degrees = []float64{4}
			cfg.Workers = tc.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pim.RunFigure2a(cfg)
			}
		})
	}
}

// BenchmarkEngineFig2b is the same comparison on the heavier Figure 2(b)
// workload (full flow-count accounting per trial).
func BenchmarkEngineFig2b(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=all", 0}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := pim.DefaultFigure2b()
			cfg.Trials = 4
			cfg.Groups = 100
			cfg.Degrees = []float64{4}
			cfg.Workers = tc.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pim.RunFigure2b(cfg)
			}
		})
	}
}

// BenchmarkScalingSenders regenerates the §1.2 sender-set growth series:
// PIM state "require[s] enumeration of sources" and grows with the sender
// count; CBT's single shared tree per group does not.
func BenchmarkScalingSenders(b *testing.B) {
	base := pim.DefaultSparseConfig()
	base.Groups = 2
	base.Duration = 120 * pim.Second
	for _, tc := range []struct {
		proto pim.Protocol
	}{{pim.ProtoPIMSM}, {pim.ProtoPIMSMShared}, {pim.ProtoCBT}} {
		tc := tc
		for _, senders := range []int{1, 8} {
			senders := senders
			b.Run(fmt.Sprintf("%s/senders=%d", tc.proto, senders), func(b *testing.B) {
				cfg := base
				cfg.Senders = senders
				var last pim.OverheadResult
				for i := 0; i < b.N; i++ {
					last = pim.RunSparseOverhead(cfg, tc.proto)
				}
				b.ReportMetric(float64(last.State), "state")
				b.ReportMetric(float64(last.CtrlMessages), "ctrl_msgs")
			})
		}
	}
}

// BenchmarkAblationSourceAggregation measures the §4 aggregation knob:
// total (S,G) state with many senders sharing subnets, host-granular vs
// subnet-aggregated.
func BenchmarkAblationSourceAggregation(b *testing.B) {
	run := func(aggregate bool) int {
		g := pim.NewTopology(3)
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 2, 1)
		sim := pim.BuildSim(g)
		receiver := sim.AddHost(0)
		var senders []*pim.Host
		for i := 0; i < 8; i++ {
			senders = append(senders, sim.AddHost(2)) // all on one subnet
		}
		sim.FinishUnicast(pim.UseOracle)
		group := pim.GroupAddress(0)
		dep := sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{
			RPMapping:        map[pim.IP][]pim.IP{group: {sim.RouterAddr(1)}},
			AggregateSources: aggregate,
		})).(*pim.PIMDeployment)
		sim.Run(2 * pim.Second)
		receiver.Join(group)
		sim.Run(2 * pim.Second)
		for _, s := range senders {
			pim.SendData(s, group, 64)
			sim.Run(200 * pim.Millisecond)
		}
		sim.Run(2 * pim.Second)
		return dep.TotalState()
	}
	for _, tc := range []struct {
		name string
		agg  bool
	}{{"host-granular", false}, {"subnet-aggregated", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			state := 0
			for i := 0; i < b.N; i++ {
				state = run(tc.agg)
			}
			b.ReportMetric(float64(state), "state")
		})
	}
}

// BenchmarkCongestionDelay measures the operational consequence of traffic
// concentration (Figure 2(b)) under finite link bandwidth: mean delivery
// delay with every group rendezvousing at one RP, shared trees vs SPTs.
func BenchmarkCongestionDelay(b *testing.B) {
	cfg := pim.DefaultCongestionConfig()
	cfg.Duration = 30 * pim.Second
	for _, p := range []pim.Protocol{pim.ProtoPIMSMShared, pim.ProtoPIMSM} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var last pim.CongestionResult
			for i := 0; i < b.N; i++ {
				last = pim.RunCongestion(cfg, p)
			}
			b.ReportMetric(last.MeanDelay.Seconds()*1000, "delay_ms")
			b.ReportMetric(last.MaxQueueDelay.Seconds()*1000, "max_queue_ms")
		})
	}
}
