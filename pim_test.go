package pim_test

import (
	"testing"

	"pim"
)

// TestQuickstart runs the doc-comment example end to end.
func TestQuickstart(t *testing.T) {
	g := pim.NewTopology(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	sim := pim.BuildSim(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3)
	sim.FinishUnicast(pim.UseOracle)
	group := pim.GroupAddress(0)
	rp := sim.RouterAddr(2)
	sim.Deploy(pim.SparseMode, pim.WithCoreConfig(pim.Config{RPMapping: map[pim.IP][]pim.IP{group: {rp}}}))
	sim.Run(2 * pim.Second)
	receiver.Join(group)
	sim.Run(2 * pim.Second)
	pim.SendData(sender, group, 128)
	sim.Run(pim.Second)
	if receiver.Received[group] != 1 {
		t.Fatalf("received = %d, want 1", receiver.Received[group])
	}
}

func TestRandomTopologyHelper(t *testing.T) {
	g := pim.RandomTopology(50, 4, 7)
	if g.N() != 50 || !g.Connected() {
		t.Fatalf("N=%d connected=%v", g.N(), g.Connected())
	}
	if got := g.AvgDegree(); got < 3.9 || got > 4.1 {
		t.Errorf("avg degree = %v", got)
	}
}

func TestGroupAndParse(t *testing.T) {
	if !pim.GroupAddress(3).IsMulticast() {
		t.Error("group address not multicast")
	}
	ip, err := pim.ParseIP("10.0.0.1")
	if err != nil || ip.String() != "10.0.0.1" {
		t.Errorf("ParseIP: %v %v", ip, err)
	}
}

func TestFigure2FacadesRun(t *testing.T) {
	cfgA := pim.DefaultFigure2a()
	cfgA.Trials = 3
	if pts := pim.RunFigure2a(cfgA); len(pts) != 6 {
		t.Errorf("fig2a points = %d", len(pts))
	}
	cfgB := pim.DefaultFigure2b()
	cfgB.Trials = 1
	cfgB.Groups = 20
	if pts := pim.RunFigure2b(cfgB); len(pts) != 6 {
		t.Errorf("fig2b points = %d", len(pts))
	}
}

func TestProtocolListedConstantsMatch(t *testing.T) {
	all := pim.AllProtocols()
	want := map[pim.Protocol]bool{
		pim.ProtoPIMSM: true, pim.ProtoPIMSMShared: true, pim.ProtoCBT: true,
		pim.ProtoDVMRP: true, pim.ProtoPIMDM: true, pim.ProtoMOSPF: true,
	}
	if len(all) != len(want) {
		t.Fatalf("AllProtocols = %v", all)
	}
	for _, p := range all {
		if !want[p] {
			t.Errorf("unexpected protocol %q", p)
		}
	}
}
