// Corpus discovery: every scenario under a root directory is a
// self-verifying document. Each file embeds its golden digest after a
// `-- golden --` marker (see Parse), and Corpus re-runs every file across
// the differential matrix — forwarding reference vs fast path, binary heap
// vs timing wheel, shards 1 vs 2, flat vs map MFIB store — requiring the
// scripted expectations, the
// §3.8 invariants, and the embedded digest to hold in every cell. One drift
// anywhere (a changed delivery count, a new telemetry event, a reordered
// stream) fails the corpus with a pointer to `pimscript -update`.
package script

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pim/internal/fastpath"
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/telemetry"
)

// Pass is one cell of the corpus differential matrix.
type Pass struct {
	Name string
	// Fast selects the forwarding fast path (LPM trie, RPF cache, compiled
	// fan-out) over the linear reference implementations.
	Fast bool
	// Wheel selects the hierarchical timing wheel over the binary heap.
	Wheel bool
	// Shards is the partition count the run executes under.
	Shards int
	// MapStore selects the reference map-of-pointers MFIB store over the
	// default flat arena store (DESIGN.md §16).
	MapStore bool
}

// Matrix is the corpus verification matrix: the default configuration plus
// one pass flipping each axis, so every scenario witnesses ref==fast,
// heap==wheel, sequential==sharded, and flat==map store equivalence on
// every run.
func Matrix() []Pass {
	return []Pass{
		{Name: "fast+wheel+shards=1", Fast: true, Wheel: true, Shards: 1},
		{Name: "ref+wheel+shards=1", Fast: false, Wheel: true, Shards: 1},
		{Name: "fast+heap+shards=1", Fast: true, Wheel: false, Shards: 1},
		{Name: "fast+wheel+shards=2", Fast: true, Wheel: true, Shards: 2},
		{Name: "fast+wheel+shards=1+mapstore", Fast: true, Wheel: true, Shards: 1, MapStore: true},
	}
}

// runPass executes the scenario captured and checked under one matrix cell,
// restoring the process-wide toggles afterwards.
func runPass(s *Script, p Pass) (*Result, error) {
	prevFast := fastpath.Set(p.Fast)
	defer fastpath.Set(prevFast)
	prevWheel := netsim.SetUseWheel(p.Wheel)
	defer netsim.SetUseWheel(prevWheel)
	prevShards := netsim.SetShards(p.Shards)
	defer netsim.SetShards(prevShards)
	prevStore := mfib.SetFlatStore(!p.MapStore)
	defer mfib.SetFlatStore(prevStore)
	return s.RunWith(RunConfig{Captured: true, Checked: true})
}

// DigestLines renders a run's golden digest: the delivery counts, the
// per-kind telemetry event counts, and an FNV-64a hash of the canonical
// captured stream. Every line is a stable function of the simulation —
// independent of forwarding path, scheduler store, and shard count — so the
// digest doubles as the corpus equivalence witness.
func DigestLines(res *Result) []string {
	var lines []string
	keys := make([]string, 0, len(res.Delivered))
	for k := range res.Delivered {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		lines = append(lines, fmt.Sprintf("delivered %s %d", k, res.Delivered[k]))
	}
	counts := map[string]int{}
	for _, ev := range res.Events {
		counts[ev.Kind.String()]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		lines = append(lines, fmt.Sprintf("events %s %d", k, counts[k]))
	}
	lines = append(lines, fmt.Sprintf("stream %016x", streamHash(res.Events)))
	return lines
}

// streamHash is an order-sensitive FNV-64a over every field of every event
// in the canonical stream: any reordering, retiming, or mutation anywhere
// in the run changes it.
func streamHash(events []telemetry.Event) uint64 {
	h := fnv.New64a()
	var buf [8 * 8]byte
	for _, ev := range events {
		fields := [...]uint64{
			uint64(ev.At), uint64(ev.Kind), uint64(int64(ev.Router)),
			uint64(int64(ev.Iface)), ev.Epoch, uint64(ev.Source),
			uint64(ev.Group), uint64(ev.Value),
		}
		for i, f := range fields {
			binary.LittleEndian.PutUint64(buf[i*8:], f)
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Compose renders a scenario file from its script body and digest lines.
func Compose(body string, digest []string) string {
	var b strings.Builder
	b.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		b.WriteByte('\n')
	}
	b.WriteString(GoldenMarker)
	b.WriteByte('\n')
	for _, ln := range digest {
		b.WriteString(ln)
		b.WriteByte('\n')
	}
	return b.String()
}

// Update runs the scenario at path under the default matrix cell and
// rewrites the file with a regenerated golden section, preserving the
// script body byte-for-byte. It refuses to record a failing run: a golden
// must always describe a scenario that passes its own expectations with the
// invariants intact. It reports whether the file changed.
func Update(path string) (bool, error) {
	old, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	s, err := Parse(string(old))
	if err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	res, err := runPass(s, Matrix()[0])
	if err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	if len(res.Failures) > 0 {
		return false, fmt.Errorf("%s: refusing to record a failing scenario: %v", path, res.Failures)
	}
	if !s.ExpectsViolations() && len(res.Violations) > 0 {
		return false, fmt.Errorf("%s: refusing to record an invariant-violating scenario: %s", path, res.Violations[0])
	}
	content := Compose(s.Body(), DigestLines(res))
	if content == string(old) {
		return false, nil
	}
	return true, os.WriteFile(path, []byte(content), 0o644)
}

// Discover returns every *.pim file under root (recursively), sorted, so
// the corpus needs no registration: dropping a scenario anywhere below
// scenarios/ — including search-emitted counterexamples under found/ —
// enrolls it.
func Discover(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".pim") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no scenarios under %s", root)
	}
	return paths, nil
}

// Verify runs one scenario through the full matrix: in every cell the
// scripted expectations must hold, the invariants must be clean (unless the
// scenario records violations as its verdict), and the digest must equal
// the embedded golden.
func Verify(path string) error {
	for _, pass := range Matrix() {
		s, err := ParseFile(path)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if s.Golden() == nil {
			return fmt.Errorf("%s: no embedded golden; run `pimscript -update %s`", path, path)
		}
		res, err := runPass(s, pass)
		if err != nil {
			return fmt.Errorf("%s [%s]: %v", path, pass.Name, err)
		}
		if len(res.Failures) > 0 {
			return fmt.Errorf("%s [%s]: %v", path, pass.Name, res.Failures)
		}
		if !s.ExpectsViolations() && len(res.Violations) > 0 {
			return fmt.Errorf("%s [%s]: invariant violation: %s", path, pass.Name, res.Violations[0])
		}
		if diff := diffDigest(s.Golden(), DigestLines(res)); diff != "" {
			return fmt.Errorf("%s [%s]: golden mismatch (%s); run `pimscript -update %s` if intended",
				path, pass.Name, diff, path)
		}
	}
	return nil
}

// diffDigest names the first divergence between the recorded and computed
// digests ("" when identical).
func diffDigest(want, got []string) string {
	for i := 0; i < len(want) || i < len(got); i++ {
		w, g := "", ""
		if i < len(want) {
			w = want[i]
		}
		if i < len(got) {
			g = got[i]
		}
		if w != g {
			return fmt.Sprintf("recorded %q, got %q", w, g)
		}
	}
	return ""
}

// Corpus discovers and verifies every scenario under root, logging one line
// per file through logf (nil for silent). It returns the number of verified
// scenarios; the first failure aborts.
func Corpus(root string, logf func(format string, a ...interface{})) (int, error) {
	paths, err := Discover(root)
	if err != nil {
		return 0, err
	}
	for _, path := range paths {
		if err := Verify(path); err != nil {
			return 0, err
		}
		if logf != nil {
			logf("corpus ok   %s (%d passes)", path, len(Matrix()))
		}
	}
	return len(paths), nil
}
