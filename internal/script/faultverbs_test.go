package script

import (
	"strings"
	"testing"
)

// mustParse/mustRunOK are tiny local helpers for the fault-verb scenarios.
func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRunOK(t *testing.T, src string) {
	t.Helper()
	s := mustParse(t, src)
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}

// TestReorderVerbScript puts a dense-mode chain under heavy reordering —
// control and data alike — for most of the run. Reordering delays frames
// but never drops them, so delivery must stay complete, and the §3.8
// invariants must hold throughout (asserted via the recorded-verdict form,
// which auto-attaches the checker).
func TestReorderVerbScript(t *testing.T) {
	mustRunOK(t, `
topo edges 0-1 1-2
unicast oracle
group G0
protocol pim-dm timers=fast
host src r0
host recv r2
at 1s join recv G0
at 3s send src G0 count=60 every=1s
at 5s reorder all 50ms
at 40s reorder 1 200ms control
at 70s reorder all 0
at 70s reorder 1 0
run 120s
expect recv received G0 >= 60
expect violations == 0
`)
}

// TestFaultSeedChangesLossRealization pins that the faultseed statement
// reaches the injector: the same lossy script under different seeds drops a
// different set of packets, while the same seed reproduces bit-identically.
func TestFaultSeedChangesLossRealization(t *testing.T) {
	run := func(seed string) int {
		s := mustParse(t, `
topo edges 0-1 1-2
unicast oracle
group G0 rp r1
faultseed `+seed+`
protocol pim-sm
host src r0
host recv r2
at 1s join recv G0
at 2s loss all 0.5 data
at 3s send src G0 count=60 every=100ms
run 60s
`)
		res, err := s.RunWith(RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Delivered["recv/G0"]
	}
	a1, a2, b := run("1"), run("1"), run("2")
	if a1 != a2 {
		t.Fatalf("same faultseed delivered %d then %d", a1, a2)
	}
	if a1 == b {
		t.Fatalf("faultseed 1 and 2 delivered identically (%d) — seed not reaching the injector", a1)
	}
}

// TestCrashDuringGraftRetransmission covers the injector edge the search
// sweeps: a router fail-stops while it holds an armed graft-retransmission
// timer (its graft was sent upstream into total control loss and never
// acked). The crash must cancel the pending state cleanly — no timer from
// the dead epoch may fire after the restart — and once the loss clears the
// restarted router re-grafts from refresh alone.
func TestCrashDuringGraftRetransmission(t *testing.T) {
	s := mustParse(t, `
topo edges 0-1 1-2
unicast oracle
group G0
protocol pim-dm timers=fast
host src r0
host recv r2
at 3s send src G0 count=110 every=1s
# r2 prunes (no members), then joins into a control blackout: its graft and
# every retransmission (3s doubling retry) vanish upstream.
at 35s loss 1 1.0 control
at 40s join recv G0
# Crash lands between the first retry and the next: the graft is in flight,
# the retransmission timer armed.
at 44s crash r2
at 50s loss 1 0 control
at 60s restart r2
run 180s
expect recv received G0 >= 10
expect violations == 0
`)
	res, err := s.RunWith(RunConfig{Checked: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
	if res.Checker == nil || len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

// TestRestartOnTimerTick covers the other swept edge: a restart scheduled
// on the exact instant the protocol's periodic clocks tick (engines start
// at unicast convergence C; with timers=fast the 10s hellos and 20s
// join/prune refresh land on C+10k; script time t maps to C+2+t, so t=38s
// is the C+40s tick). Any timer the dead epoch left on that tick fires
// before the restart event — the epoch guard must suppress it, and the
// checker proves no stale fire leaks through.
func TestRestartOnTimerTick(t *testing.T) {
	s := mustParse(t, `
topo edges 0-1 1-2
unicast oracle
group G0 rp r1
protocol pim-sm timers=fast
host src r0
host recv r2
at 1s join recv G0
at 3s send src G0 count=110 every=1s
at 17s crash r1
at 38s restart r1
run 180s
expect recv received G0 >= 40
expect violations == 0
`)
	res, err := s.RunWith(RunConfig{Checked: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
	if res.Checker == nil || len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

// TestExpectViolationsAutoChecks pins the recorded-verdict contract: a
// script declaring `expect violations` attaches the checker whatever the
// RunConfig, so the expectation always has a checker to read.
func TestExpectViolationsAutoChecks(t *testing.T) {
	s := mustParse(t, `
topo edges 0-1
unicast oracle
group G0 rp r1
protocol pim-sm
host src r0
host recv r1
at 1s join recv G0
at 2s send src G0 count=5
run 30s
expect recv received G0 == 5
expect violations == 0
`)
	if !s.ExpectsViolations() {
		t.Fatal("ExpectsViolations = false for a script with the expectation")
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}

// TestFailFastRunCleanScenario: arming fail-fast on a violation-free
// scenario must not disturb the run.
func TestFailFastRunCleanScenario(t *testing.T) {
	s := mustParse(t, `
topo edges 0-1 1-2
unicast oracle
group G0 rp r1
protocol pim-sm
host src r0
host recv r2
at 1s join recv G0
at 2s send src G0 count=5
run 30s
expect recv received G0 == 5
`)
	res, err := s.RunWith(RunConfig{FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
	if res.Checker == nil {
		t.Fatal("fail-fast run attached no checker")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

// TestNewVerbErrors extends the fault-verb error cases to the search verbs.
func TestNewVerbErrors(t *testing.T) {
	cases := []string{
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s reorder 9 10ms\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s reorder all 5ms bogus\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s reorder all\n",
		"topo edges 0-1\nfaultseed nope\ngroup G0 rp r1\nprotocol pim-sm\nrun 1s\n",
		"topo edges 0-1\nfaultseed 1 2\ngroup G0 rp r1\nprotocol pim-sm\nrun 1s\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm timers=slow\nrun 1s\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nrun 1s\nexpect violations >= x\n",
	}
	for _, src := range cases {
		s, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := s.RunWith(RunConfig{}); err == nil {
			t.Errorf("script %q ran without error", src)
		}
	}
}

// TestExpectViolationsNeedsChecker: the interop (mixed sparse/dense)
// deployment has no uniform checker; asserting on violations there must be
// a script error, not a silent pass.
func TestExpectViolationsNeedsChecker(t *testing.T) {
	s := mustParse(t, `
topo edges 0-1 1-2
group G0 rp r0
protocol pim-sm dense=2
run 1s
expect violations == 0
`)
	_, err := s.RunWith(RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "invariant checker") {
		t.Fatalf("err = %v, want checker-required error", err)
	}
}
