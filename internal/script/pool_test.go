package script

import (
	"path/filepath"
	"testing"

	"pim/internal/netsim"
	"pim/internal/telemetry"
)

// runScenario executes one scenario under the given frame-pool/poison
// settings and returns its telemetry stream and result.
func runScenario(t *testing.T, path string, pooled, poison bool) ([]telemetry.Event, *Result) {
	t.Helper()
	prevPool := netsim.SetFramePool(pooled)
	defer netsim.SetFramePool(prevPool)
	prevPoison := netsim.SetPoisonFrames(poison)
	defer netsim.SetPoisonFrames(prevPoison)
	s, err := ParseFile(path)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bus := telemetry.NewBus()
	var events []telemetry.Event
	bus.Subscribe(func(ev telemetry.Event) { events = append(events, ev) })
	res, err := s.RunWith(RunConfig{Bus: bus})
	if err != nil {
		t.Fatalf("run (pool=%v poison=%v): %v", pooled, poison, err)
	}
	return events, res
}

// TestScenariosFramePoolEquivalence holds pooled frame delivery to the
// allocating closure path (the differential oracle): every scenario must
// produce a bit-identical telemetry event stream and identical scripted
// outcomes either way.
func TestScenariosFramePoolEquivalence(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.pim")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario scripts found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			allocEvents, allocRes := runScenario(t, path, false, false)
			poolEvents, poolRes := runScenario(t, path, true, false)

			if len(allocEvents) == 0 && len(poolEvents) == 0 {
				total := 0
				for _, n := range allocRes.Delivered {
					total += n
				}
				if total == 0 {
					t.Fatal("no telemetry events and no deliveries; equivalence check is vacuous")
				}
			}
			if len(allocEvents) != len(poolEvents) {
				t.Fatalf("event streams differ in length: alloc=%d pooled=%d",
					len(allocEvents), len(poolEvents))
			}
			for i := range allocEvents {
				if allocEvents[i] != poolEvents[i] {
					t.Fatalf("event %d diverged:\nalloc  = %+v\npooled = %+v",
						i, allocEvents[i], poolEvents[i])
				}
			}
			if len(allocRes.Failures) != len(poolRes.Failures) {
				t.Errorf("expectation outcomes differ: alloc=%v pooled=%v",
					allocRes.Failures, poolRes.Failures)
			}
			for host, n := range allocRes.Delivered {
				if poolRes.Delivered[host] != n {
					t.Errorf("host %s delivered %d allocating, %d pooled",
						host, n, poolRes.Delivered[host])
				}
			}
		})
	}
}

// TestScenariosPoisonedPool enforces the borrowed-frame ownership contract
// (DESIGN.md §13) over the whole scenario corpus: with released frames
// poisoned to 0xDB, any handler that retained a borrowed packet, payload, or
// decoded alias past its HandlePacket call reads garbage — and the telemetry
// stream diverges from the clean allocating run. Matching streams mean no
// protocol engine reads a frame after its fan-out completed.
func TestScenariosPoisonedPool(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.pim")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario scripts found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			cleanEvents, cleanRes := runScenario(t, path, false, false)
			poisonEvents, poisonRes := runScenario(t, path, true, true)

			if len(cleanEvents) != len(poisonEvents) {
				t.Fatalf("event streams differ in length: clean=%d poisoned=%d",
					len(cleanEvents), len(poisonEvents))
			}
			for i := range cleanEvents {
				if cleanEvents[i] != poisonEvents[i] {
					t.Fatalf("event %d diverged under poison (stale frame read?):\nclean    = %+v\npoisoned = %+v",
						i, cleanEvents[i], poisonEvents[i])
				}
			}
			if len(cleanRes.Failures) != len(poisonRes.Failures) {
				t.Errorf("expectation outcomes differ: clean=%v poisoned=%v",
					cleanRes.Failures, poisonRes.Failures)
			}
			for host, n := range cleanRes.Delivered {
				if poisonRes.Delivered[host] != n {
					t.Errorf("host %s delivered %d clean, %d poisoned",
						host, n, poisonRes.Delivered[host])
				}
			}
		})
	}
}
