package script

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiscoverComplete pins the corpus enrollment contract: every *.pim
// file anywhere below scenarios/ — any nesting depth, found/ included — is
// discovered, and every discovered scenario embeds a golden section. A new
// scenario dropped into the tree without `pimscript -update` fails here,
// not silently skips corpus verification.
func TestDiscoverComplete(t *testing.T) {
	paths, err := Discover("../../scenarios")
	if err != nil {
		t.Fatal(err)
	}
	// Independent walk: Discover must match exactly.
	want := map[string]bool{}
	err = filepath.WalkDir("../../scenarios", func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".pim") {
			want[path] = true
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(want) {
		t.Fatalf("Discover found %d scenarios, walk found %d", len(paths), len(want))
	}
	for _, p := range paths {
		if !want[p] {
			t.Errorf("Discover returned %s, not found by the walk", p)
		}
		s, err := ParseFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if s.Golden() == nil {
			t.Errorf("%s has no embedded golden; run `pimscript -update %s`", p, p)
		}
	}
	// found/ must be reachable — the search-emitted counterexamples are
	// part of the corpus, not a side directory.
	anyFound := false
	for _, p := range paths {
		if strings.Contains(p, string(filepath.Separator)+"found"+string(filepath.Separator)) {
			anyFound = true
		}
	}
	if !anyFound {
		t.Error("no scenarios/found/ files discovered — recursion broken?")
	}
}

func TestDiscoverNested(t *testing.T) {
	dir := t.TempDir()
	deep := filepath.Join(dir, "a", "b")
	if err := os.MkdirAll(deep, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(dir, "top.pim"),
		filepath.Join(deep, "nested.pim"),
		filepath.Join(dir, "a", "notes.txt"), // not a scenario
	} {
		if err := os.WriteFile(p, []byte("# stub\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("Discover = %v, want the two .pim files", paths)
	}
	if _, err := Discover(filepath.Join(dir, "a", "b", "empty-nowhere")); err == nil {
		t.Error("Discover on a missing root did not error")
	}
}

// TestUpdateRoundTrip is the self-verification round trip: strip a
// scenario's golden, regenerate it with Update, and require (1) the script
// body survives byte-for-byte, (2) the regenerated file equals the
// committed one (the repo goldens are current), and (3) a second Update is
// a no-op — Compose∘Parse is idempotent.
func TestUpdateRoundTrip(t *testing.T) {
	committed, err := os.ReadFile("../../scenarios/rendezvous.pim")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(string(committed))
	if err != nil {
		t.Fatal(err)
	}
	if s.Golden() == nil {
		t.Fatal("committed scenario has no golden")
	}

	path := filepath.Join(t.TempDir(), "rendezvous.pim")
	// Start from the bare body: Update must add the golden section.
	if err := os.WriteFile(path, []byte(s.Body()), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err := Update(path)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("Update reported unchanged for a golden-less file")
	}
	regenerated, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(regenerated) != string(committed) {
		t.Errorf("regenerated file differs from committed scenario:\n%s", regenerated)
	}
	rs, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Body() != s.Body() {
		t.Error("script body not preserved byte-for-byte through Update")
	}
	changed, err = Update(path)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("second Update is not a no-op")
	}
	if err := Verify(path); err != nil {
		t.Errorf("updated scenario fails Verify: %v", err)
	}
}

// TestUpdateRefusesFailingScenario: a golden must never describe a scenario
// that fails its own expectations.
func TestUpdateRefusesFailingScenario(t *testing.T) {
	src := `topo edges 0-1
unicast oracle
group G0 rp r1
protocol pim-sm
host recv r0
host send r1
at 1s join recv G0
at 3s send send G0 count=2 every=1s
run 8s
expect recv received G0 >= 1000
`
	path := filepath.Join(t.TempDir(), "failing.pim")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Update(path); err == nil {
		t.Fatal("Update recorded a golden for a failing scenario")
	}
}

// TestCorpusMatrix runs the whole committed corpus through the full
// differential matrix — the same verification `pimscript -corpus scenarios`
// and `make corpus` perform. Every scenario must pass its expectations,
// keep the §3.8 invariants, and reproduce its embedded digest under
// ref/fast, heap/wheel, and shards 1/2.
func TestCorpusMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full 4-pass corpus matrix; run without -short")
	}
	n, err := Corpus("../../scenarios", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("corpus verified zero scenarios")
	}
}

// TestComposeParse: Compose output parses back into the same body/golden
// split, including the empty-digest edge case.
func TestComposeParse(t *testing.T) {
	body := "topo edges 0-1\nunicast oracle\nprotocol pim-sm\nrun 1s\n"
	digest := []string{"delivered a/G0 1", "stream 0000000000000000"}
	s, err := Parse(Compose(body, digest))
	if err != nil {
		t.Fatal(err)
	}
	if s.Body() != body {
		t.Errorf("body = %q, want %q", s.Body(), body)
	}
	got := s.Golden()
	if len(got) != len(digest) {
		t.Fatalf("golden = %v, want %v", got, digest)
	}
	for i := range digest {
		if got[i] != digest[i] {
			t.Errorf("golden[%d] = %q, want %q", i, got[i], digest[i])
		}
	}
	// Marker with no lines: golden present but empty.
	s, err = Parse(Compose(body, nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Golden() == nil || len(s.Golden()) != 0 {
		t.Errorf("empty golden section = %v, want present-but-empty", s.Golden())
	}
}
