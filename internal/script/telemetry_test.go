package script

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pim/internal/netsim"
	"pim/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current run")

// TestScenariosUpholdInvariants runs every scenario script in the repository
// under the online invariant checker: the §3.8 soft-state contracts must
// hold through every documented workload, including the fault scripts. The
// interop scenario deploys the mixed sparse/dense form the checker does not
// cover; the run attaches no checker there and the script still must
// pass its own expectations.
// Counterexamples emitted by the fault-schedule search live under
// scenarios/found/ and RECORD their bug in their expectations (`expect
// violations >= 1`, or a negated delivery oracle): for those, the script's
// own verdict is the contract — a violation is the expected outcome, and
// the file failing means the bug stopped reproducing (fix the file to pin
// the fix, don't delete it).
func TestScenariosUpholdInvariants(t *testing.T) {
	paths, err := Discover("../../scenarios")
	if err != nil {
		t.Fatalf("no scenario scripts found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := ParseFile(path)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := s.RunWith(RunConfig{Checked: true})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, f := range res.Failures {
				t.Errorf("expectation failed: %s", f)
			}
			if !s.ExpectsViolations() {
				for _, v := range res.Violations {
					t.Errorf("invariant violation: %s", v)
				}
			}
		})
	}
}

// TestTelemetryGoldenDump pins the sampler's JSON dump for the RP-failover
// scenario byte-for-byte: the per-router counter curves are a deterministic
// function of the simulation, so any drift in event emission, bucketing, or
// serialization shows up as a golden-file diff. Regenerate with
//
//	go test ./internal/script/ -run TestTelemetryGoldenDump -update
func TestTelemetryGoldenDump(t *testing.T) {
	s, err := ParseFile("../../scenarios/rpfailover.pim")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bus := telemetry.NewBus()
	smp := telemetry.NewSampler(bus, 5*netsim.Second)
	res, err := s.RunWith(RunConfig{Checked: true, Bus: bus})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.OK() {
		t.Fatalf("scenario failed: %v", res.Failures)
	}
	if res.Checker == nil {
		t.Fatal("checked instrumented run attached no checker")
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violation: %s", v)
	}

	var buf bytes.Buffer
	if err := smp.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	golden := filepath.Join("testdata", "rpfailover_telemetry.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("telemetry dump drifted from %s (rerun with -update if intended)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}
