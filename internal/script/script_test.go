package script

import (
	"strings"
	"testing"
)

const rendezvousScript = `
# Figure 3 rendezvous as a script.
topo edges 0-1 1-2 2-3
unicast oracle
group G0 rp r2
protocol pim-sm
host recv r0
host send r3
at 1s join recv G0
at 3s send send G0 count=5 every=1s
run 20s
expect recv received G0 >= 4
expect router r1 state >= 1
expect links-with-data >= 3
`

func TestRendezvousScript(t *testing.T) {
	s, err := Parse(rendezvousScript)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
	if res.Delivered["recv/G0"] < 4 {
		t.Errorf("delivered map: %v", res.Delivered)
	}
	if len(res.Log) == 0 {
		t.Error("no deployment log")
	}
}

func TestFailedExpectationReported(t *testing.T) {
	s, err := Parse(strings.Replace(rendezvousScript,
		"expect recv received G0 >= 4",
		"expect recv received G0 == 999", 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("impossible expectation passed")
	}
	if !strings.Contains(res.Failures[0], "recv received G0") {
		t.Errorf("failure text: %q", res.Failures[0])
	}
}

func TestLinkFailureScript(t *testing.T) {
	src := `
topo edges 0-1 1-3 0-2:3 2-3:3
unicast oracle
group G0 rp r3
protocol pim-sm spt=never
host recv r0
host send r3
at 1s join recv G0
at 3s send send G0 count=20 every=1s
at 8s linkdown 0
run 40s
expect recv received G0 >= 15
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}

func TestAllProtocolsRunnable(t *testing.T) {
	for _, proto := range []string{"pim-sm", "pim-sm spt=never", "pim-sm aggregate",
		"pim-dm prune=300s", "dvmrp prune=300s", "cbt", "mospf"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			src := `
topo edges 0-1 1-2
unicast oracle
group G0 rp r1
protocol ` + proto + `
host recv r0
host send r2
at 1s join recv G0
at 3s send send G0 count=4 every=1s
run 15s
expect recv received G0 >= 3
`
			s, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.RunWith(RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("failures: %v", res.Failures)
			}
		})
	}
}

func TestUnicastModesInScripts(t *testing.T) {
	for _, mode := range []string{"oracle", "dv", "ls"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			src := `
topo edges 0-1 1-2
unicast ` + mode + `
group G0 rp r1
protocol pim-sm
host recv r0
host send r2
at 1s join recv G0
at 3s send send G0 count=4 every=1s
run 15s
expect recv received G0 >= 3
`
			s, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.RunWith(RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("failures: %v", res.Failures)
			}
		})
	}
}

func TestRandomTopoAndLeave(t *testing.T) {
	src := `
topo random nodes=20 degree=4 seed=5
unicast oracle
group G0 rp r0
protocol pim-sm
host a r3
host b r17
at 1s join a G0
at 1s join b G0
at 3s send a G0 count=3 every=1s
at 10s leave b G0
run 300s
expect a received G0 >= 0
expect router r3 state >= 1
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"frobnicate\n",
		"topo bogus\n",
		"topo edges x-y\n",
		"topo edges 0-0\n",
		"topo edges 0-1:0\n",
	}
	for _, src := range cases {
		if s, err := Parse(src); err == nil {
			if _, err := s.RunWith(RunConfig{}); err == nil {
				t.Errorf("script %q ran without error", src)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []string{
		"unicast bogus\n",
		"host h r0\n", // host before topo
		"topo edges 0-1\nprotocol nosuch\n",
		"topo edges 0-1\ngroup G0\nprotocol pim-sm\nat 1s join nosuch G0\n",
		"topo edges 0-1\nprotocol pim-sm\nexpect router r9 state >= 1\n",
		"topo edges 0-1\nprotocol pim-sm\nrun 1x\n",
		"topo edges 0-1\ngroup G0 rp r7\n",
		"at 1s join h G0\n", // at before protocol
	}
	for _, src := range cases {
		s, err := Parse(src)
		if err != nil {
			continue // parse-time rejection also acceptable
		}
		if _, err := s.RunWith(RunConfig{}); err == nil {
			t.Errorf("script %q ran without error", src)
		}
	}
}

func TestParseDuration(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64 // microseconds
	}{
		{"150ms", 150_000},
		{"2s", 2_000_000},
		{"1m", 60_000_000},
		{"3", 3_000_000},
		{"0.5s", 500_000},
	} {
		got, err := parseDuration(tc.in)
		if err != nil || int64(got) != tc.want {
			t.Errorf("parseDuration(%q) = %v, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "-1s"} {
		if _, err := parseDuration(bad); err == nil {
			t.Errorf("parseDuration(%q) succeeded", bad)
		}
	}
}

func TestInteropScript(t *testing.T) {
	src := `
# sparse 0-1, border 2, dense 3-4 (the §4 splice)
topo edges 0-1 1-2 2-3 3-4
unicast oracle
group G0 rp r0
protocol pim-sm dense=3,4 prune=300s
host sparse r1
host deep r4
at 1s join deep G0
at 4s send sparse G0 count=5 every=1s
run 20s
expect deep received G0 >= 4
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}

func TestMeanDelayExpectation(t *testing.T) {
	src := `
topo edges 0-1:5 1-2:5
unicast oracle
group G0 rp r1
protocol pim-sm
host recv r0
host send r2
at 1s join recv G0
at 3s send send G0 count=5 every=1s
run 15s
expect recv mean-delay G0 <= 60ms
expect recv mean-delay G0 > 5ms
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}

func TestMeanDelayNothingDelivered(t *testing.T) {
	src := `
topo edges 0-1
unicast oracle
group G0 rp r1
protocol pim-sm
host recv r0
run 5s
expect recv mean-delay G0 <= 1s
`
	s, _ := Parse(src)
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("mean-delay over zero deliveries should fail the expectation")
	}
}

func TestFaultVerbsScript(t *testing.T) {
	src := `
# Crash the mid-chain router under light control loss; delivery must
# resume after the restart with state rebuilt from refresh.
topo edges 0-1 1-2 2-3 1-4:2 4-3:2
unicast oracle
group G0 rp r3
protocol pim-sm
host send r0
host recv r3
at 1s join recv G0
at 3s send recv G0 count=1       # non-member source exercises register path too
at 3s send send G0 count=120 every=1s
at 10s loss all 0.05 control
at 30s crash r2
at 60s restart r2
at 80s loss all 0 control
run 200s
expect recv received G0 >= 60
expect router r2 state >= 1
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}

func TestPartitionHealScript(t *testing.T) {
	src := `
topo edges 0-1 1-2
unicast oracle
group G0 rp r2
protocol pim-dm
host send r0
host recv r2
at 1s join recv G0
at 3s send send G0 count=60 every=1s
at 10s partition 1
at 40s heal
run 120s
expect recv received G0 >= 25
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
	// The 30s cut must actually have cost traffic.
	if res.Delivered["recv/G0"] >= 60 {
		t.Errorf("partition lost no packets: %v", res.Delivered)
	}
}

func TestFlapVerbScript(t *testing.T) {
	src := `
topo edges 0-1 1-2 0-2:5
unicast oracle
group G0 rp r2
protocol dvmrp
host send r0
host recv r2
at 1s join recv G0
at 3s send send G0 count=90 every=1s
at 20s flap 1 down=5s up=5s cycles=3
run 120s
expect recv received G0 >= 50
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}

func TestFaultVerbErrors(t *testing.T) {
	cases := []string{
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s loss 9 0.5\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s loss all 2.0\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s loss all 0.5 bogus\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s flap 9\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s crash r9\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s partition\n",
		"topo edges 0-1\ngroup G0 rp r1\nprotocol pim-sm\nat 1s heal now\n",
		"topo edges 0-1 1-2\ngroup G0 rp r1\nprotocol pim-sm dense=2\nat 1s crash r1\n",
	}
	for _, src := range cases {
		s, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := s.RunWith(RunConfig{}); err == nil {
			t.Errorf("script %q ran without error", src)
		}
	}
}

func TestPartitionScenarioFile(t *testing.T) {
	s, err := ParseFile("../../scenarios/partition.pim")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWith(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failures: %v", res.Failures)
	}
}
