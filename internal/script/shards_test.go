package script

import (
	"path/filepath"
	"reflect"
	"testing"

	"pim/internal/netsim"
	"pim/internal/telemetry"
)

// TestScenariosShardEquivalence is the scenario-level half of the sharding
// acceptance: every scripted workload in the repository must produce the
// same canonical telemetry stream — every join/prune, entry mutation, timer
// fire, delivery, and drop, with identical timestamps — whether it runs
// sequentially or partitioned across 2 or 4 parallel shards. The canonical
// form (RunConfig.Captured: lane buffers merged, stable-sorted by (At, Router))
// preserves each router's publication order, so a match means no router
// anywhere observed the shard count. The scripts cover RP failover, SPT
// switchover, dense-mode grafting, interop, and the fault verbs (loss,
// flap, crash/restart, partition), so this is the broadest
// shard-determinism check in the tree.
func TestScenariosShardEquivalence(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.pim")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario scripts found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			capture := func(shards int) ([]telemetry.Event, *Result) {
				prev := netsim.SetShards(shards)
				defer netsim.SetShards(prev)
				s, err := ParseFile(path)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				res, err := s.RunWith(RunConfig{Captured: true})
				if err != nil {
					t.Fatalf("run (shards=%d): %v", shards, err)
				}
				return res.Events, res
			}
			baseEvents, baseRes := capture(1)
			if len(baseEvents) == 0 {
				// The mixed sparse/dense interop deployment does not attach
				// telemetry (and pins to sequential execution anyway); the
				// scripted delivery counts must still be non-trivial and
				// identical across shard settings.
				total := 0
				for _, n := range baseRes.Delivered {
					total += n
				}
				if total == 0 {
					t.Fatal("no telemetry events and no deliveries; equivalence check is vacuous")
				}
			}
			for _, n := range []int{2, 4} {
				gotEvents, gotRes := capture(n)
				if len(gotEvents) != len(baseEvents) {
					t.Fatalf("shards=%d: event streams differ in length: seq=%d shd=%d",
						n, len(baseEvents), len(gotEvents))
				}
				for i := range baseEvents {
					if gotEvents[i] != baseEvents[i] {
						t.Fatalf("shards=%d: event %d diverged:\nseq = %+v\nshd = %+v",
							n, i, baseEvents[i], gotEvents[i])
					}
				}
				if !reflect.DeepEqual(gotRes.Failures, baseRes.Failures) {
					t.Errorf("shards=%d: expectation outcomes differ: seq=%v shd=%v",
						n, baseRes.Failures, gotRes.Failures)
				}
				if !reflect.DeepEqual(gotRes.Delivered, baseRes.Delivered) {
					t.Errorf("shards=%d: delivery counts differ:\nseq = %v\nshd = %v",
						n, baseRes.Delivered, gotRes.Delivered)
				}
			}
		})
	}
}
