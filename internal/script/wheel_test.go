package script

import (
	"path/filepath"
	"testing"

	"pim/internal/netsim"
	"pim/internal/telemetry"
)

// TestScenariosWheelEquivalence is the scenario-level half of the scheduler
// swap's acceptance: every scripted workload in the repository must produce
// a bit-identical telemetry event stream — every join/prune, entry mutation,
// timer fire, delivery, and drop, in order, with identical timestamps —
// whether the simulation runs on the reference binary heap or on the
// hierarchical timing wheel. The scripts cover RP failover, SPT switchover,
// dense-mode grafting, interop, and the fault workloads, so this is the
// broadest same-deadline-ordering check in the tree.
func TestScenariosWheelEquivalence(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.pim")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario scripts found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			capture := func(wheel bool) ([]telemetry.Event, *Result) {
				prev := netsim.SetUseWheel(wheel)
				defer netsim.SetUseWheel(prev)
				s, err := ParseFile(path)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				bus := telemetry.NewBus()
				var events []telemetry.Event
				bus.Subscribe(func(ev telemetry.Event) { events = append(events, ev) })
				res, err := s.RunWith(RunConfig{Bus: bus})
				if err != nil {
					t.Fatalf("run (wheel=%v): %v", wheel, err)
				}
				return events, res
			}
			heapEvents, heapRes := capture(false)
			wheelEvents, wheelRes := capture(true)

			if len(heapEvents) == 0 && len(wheelEvents) == 0 {
				// The mixed sparse/dense interop deployment does not attach
				// the bus; fall back to the scripted delivery counts, which
				// must still be non-trivial and identical.
				total := 0
				for _, n := range heapRes.Delivered {
					total += n
				}
				if total == 0 {
					t.Fatal("no telemetry events and no deliveries; equivalence check is vacuous")
				}
			}
			if len(heapEvents) != len(wheelEvents) {
				t.Fatalf("event streams differ in length: heap=%d wheel=%d",
					len(heapEvents), len(wheelEvents))
			}
			for i := range heapEvents {
				if heapEvents[i] != wheelEvents[i] {
					t.Fatalf("event %d diverged:\nheap  = %+v\nwheel = %+v",
						i, heapEvents[i], wheelEvents[i])
				}
			}
			// The scripted expectations and delivery counts must agree too.
			if len(heapRes.Failures) != len(wheelRes.Failures) {
				t.Errorf("expectation outcomes differ: heap=%v wheel=%v",
					heapRes.Failures, wheelRes.Failures)
			}
			for host, n := range heapRes.Delivered {
				if wheelRes.Delivered[host] != n {
					t.Errorf("host %s delivered %d on heap, %d on wheel",
						host, n, wheelRes.Delivered[host])
				}
			}
		})
	}
}
