// Package script implements the scenario scripting language of cmd/pimscript:
// small line-oriented text files that declare a topology, deploy a multicast
// protocol, schedule joins/leaves/sends/link failures, run the simulation,
// and assert on the outcome. Scripts double as executable protocol
// documentation (see the scenarios/ directory) and as an acceptance-test
// harness for protocol changes.
//
// Grammar (one statement per line, '#' comments):
//
//	topo random nodes=<n> degree=<f> [seed=<n>] [mindelay=<n>] [maxdelay=<n>]
//	topo file <path>
//	topo edges <a>-<b>[:<delay>] ...
//	unicast oracle|dv|ls
//	group <name> [rp <router>]          # rp doubles as the CBT core
//	faultseed <n>                       # seed of the loss/reorder streams (default 1)
//	protocol pim-sm [spt=immediate|never|threshold] [aggregate]
//	protocol pim-dm | dvmrp | cbt | mospf [prune=<dur>]
//	protocol ... [timers=fast]          # shrunk soft-state clocks (fault scenarios)
//	host <name> <router>
//	at <time> join <host> <group>
//	at <time> leave <host> <group>
//	at <time> send <host> <group> [count=<n>] [every=<dur>] [size=<n>]
//	at <time> linkdown <edge> | linkup <edge>
//	at <time> loss <edge>|all <rate> [control|data]   # Bernoulli loss; rate 0 clears
//	at <time> reorder <edge>|all <window> [control|data]  # bounded reordering; 0 clears
//	at <time> flap <edge> [down=<dur>] [up=<dur>] [cycles=<n>]
//	at <time> crash <router> | restart <router>
//	at <time> partition <edge> ... | heal
//	run <duration>
//	expect <host> received <group> <op> <n>      # op: >= <= == != > <
//	expect router <router> state <op> <n>
//	expect links-with-data <op> <n>
//	expect violations <op> <n>          # invariant-checker violations (checked runs)
//
// Routers are written r0, r1, ... (or bare indexes); durations use Go-like
// suffixes (150ms, 2s, 1m).
//
// A script that declares `expect violations` runs with the invariant checker
// attached regardless of RunConfig — the expectation is the scenario's
// recorded verdict. The fault-schedule search (internal/faultsearch) emits
// its minimized counterexamples in exactly this form: the scenario passes
// iff the violation still reproduces, so the corpus under scenarios/found/
// enforces every found bug forever.
//
// A scenario may additionally embed its golden digest after a line holding
// exactly `-- golden --` (txtar-style): `delivered`, `events`, and `stream`
// lines recording the delivery counts, per-kind telemetry event counts, and
// the FNV-64a hash of the canonical captured stream. `pimscript -update`
// regenerates the section; corpus discovery (Corpus, `pimscript -corpus`)
// re-runs every scenario under ref+fast × heap+wheel × shards∈{1,2} and
// fails on any digest drift. See DESIGN.md §15.
package script

import (
	"cmp"
	"fmt"
	"math/rand"
	"os"
	"slices"
	"strconv"
	"strings"

	"pim/internal/addr"
	"pim/internal/cbt"
	"pim/internal/core"
	"pim/internal/dvmrp"
	"pim/internal/faults"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimdm"
	"pim/internal/scenario"
	"pim/internal/telemetry"
	"pim/internal/topology"
)

// GoldenMarker separates a scenario's script body from its embedded golden
// digest (txtar-style): everything before the marker line is the script,
// everything after is the recorded digest of the run's canonical telemetry
// stream and delivery counts. `pimscript -update` regenerates the section.
const GoldenMarker = "-- golden --"

// Script is a parsed scenario.
type Script struct {
	stmts []stmt
	// body is the raw script text up to (and excluding) the golden marker,
	// preserved byte-for-byte so -update round-trips.
	body string
	// golden holds the embedded digest lines (nil when the scenario has no
	// golden section yet).
	golden []string
}

// Body returns the raw script text before the golden marker, exactly as
// read, so regeneration preserves comments and formatting.
func (s *Script) Body() string { return s.body }

// Golden returns the embedded digest lines, or nil when the scenario has no
// golden section.
func (s *Script) Golden() []string { return s.golden }

type stmt struct {
	line int
	kind string
	args []string
	kv   map[string]string
}

func (st stmt) errf(format string, a ...interface{}) error {
	return fmt.Errorf("line %d: %s", st.line, fmt.Sprintf(format, a...))
}

// Parse reads a scenario from text. A line equal to GoldenMarker splits the
// file: statements before it, the recorded golden digest after it.
func Parse(text string) (*Script, error) {
	s := &Script{body: text}
	if body, rest, ok := cutGolden(text); ok {
		s.body = body
		s.golden = []string{} // a present-but-empty section is still a golden
		for _, ln := range strings.Split(rest, "\n") {
			if ln = strings.TrimSpace(ln); ln != "" {
				s.golden = append(s.golden, ln)
			}
		}
	}
	for i, raw := range strings.Split(s.body, "\n") {
		line := i + 1
		if idx := strings.IndexByte(raw, '#'); idx >= 0 {
			raw = raw[:idx]
		}
		fields := strings.Fields(raw)
		if len(fields) == 0 {
			continue
		}
		st := stmt{line: line, kind: fields[0], kv: map[string]string{}}
		for _, f := range fields[1:] {
			if k, v, ok := strings.Cut(f, "="); ok && k != "" && st.kind != "expect" {
				st.kv[k] = v
			} else {
				st.args = append(st.args, f)
			}
		}
		switch st.kind {
		case "topo", "unicast", "group", "protocol", "host", "at", "run", "expect", "faultseed":
		default:
			return nil, fmt.Errorf("line %d: unknown statement %q", line, st.kind)
		}
		s.stmts = append(s.stmts, st)
	}
	return s, nil
}

// cutGolden splits text at the first line that is exactly the golden marker;
// the marker line belongs to neither half.
func cutGolden(text string) (body, golden string, ok bool) {
	for off := 0; off < len(text); {
		end := strings.IndexByte(text[off:], '\n')
		line := text[off:]
		next := len(text)
		if end >= 0 {
			line = text[off : off+end]
			next = off + end + 1
		}
		if line == GoldenMarker {
			return text[:off], text[next:], true
		}
		off = next
	}
	return text, "", false
}

// ParseFile reads a scenario file.
func ParseFile(path string) (*Script, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(string(b))
}

// Result reports a script run.
type Result struct {
	// Failures lists failed expectations.
	Failures []string
	// Log carries informational lines (deployment summary, counters).
	Log []string
	// Delivered maps "<host>/<group>" to reception counts.
	Delivered map[string]int
	// Checker is the single invariant checker of a checked sequential run;
	// nil when unchecked, when the deployment is not covered (the mixed
	// sparse/dense interop form), or when a sharded run attached one checker
	// per lane — read Violations either way.
	Checker *telemetry.Checker
	// Violations aggregates invariant-checker findings across every lane,
	// sorted by time then router (nil on unchecked runs).
	Violations []telemetry.Violation
	// Events is the canonical captured telemetry stream of a Captured run:
	// per-shard lane buffers concatenated and stable-sorted by (At, Router),
	// identical for any shard count.
	Events []telemetry.Event
}

// OK reports whether every expectation held.
func (r *Result) OK() bool { return len(r.Failures) == 0 }

// ExpectsViolations reports whether the script asserts on invariant-checker
// violations (`expect violations ...`). Corpus runners use it to tell
// found-counterexample scenarios — which *record* a violation as their
// verdict — from ordinary scenarios, where any violation is a failure.
func (s *Script) ExpectsViolations() bool {
	for _, st := range s.stmts {
		if st.kind == "expect" && len(st.args) > 0 && st.args[0] == "violations" {
			return true
		}
	}
	return false
}

type hostRef struct {
	host   *igmp.Host
	router int
	// delaySum/delayN accumulate delivery latency per group for the
	// mean-delay expectation.
	delaySum map[addr.IP]netsim.Time
	delayN   map[addr.IP]int64
}

type runner struct {
	sim   *scenario.Sim
	graph *topology.Graph

	uniMode  scenario.UnicastMode
	groups   map[string]addr.IP
	groupRP  map[addr.IP][]int // group -> ordered RP/core router indexes
	hosts    map[string]*hostRef
	stateFn  func(router int) int
	deployed bool
	// dep is the uniform crash/restart surface; nil for the mixed
	// sparse/dense deployment, which has no whole-router lifecycle.
	dep scenario.Deployment
	// checked attaches the telemetry bus and online invariant checker to
	// the deployment (RunConfig.Checked); checker holds it after deploy.
	// failFast additionally arms the checker's first-violation halt. bus,
	// when non-nil, is an externally supplied event bus (RunConfig.Bus)
	// whose subscribers — samplers, probes — observe the deployment.
	checked  bool
	failFast bool
	bus      *telemetry.Bus
	checker  *telemetry.Checker
	// fastTimers records protocol ... timers=fast, so deployOpts can shrink
	// the IGMP clocks alongside the engine's.
	fastTimers bool
	// captured (RunConfig.Captured) records the deployment's event stream
	// on per-shard lanes; laneEvents[i] is appended only by shard i's
	// goroutine, so capture stays race-free under parallel execution.
	captured   bool
	lanes      []*telemetry.Bus
	laneEvents [][]telemetry.Event
	// inj is the lazily created fault injector (loss/reorder/flap/partition
	// verbs); faultSeed is the stream seed it is created with (the
	// `faultseed` statement; default 1).
	inj       *faults.Injector
	faultSeed int64

	res *Result
}

// injector returns the script's fault injector, installing it on first use.
// The seed defaults to 1 — script runs are reproducible documents — and the
// `faultseed` statement overrides it, so emitted search counterexamples can
// round-trip the loss/reorder realization that triggered them.
func (r *runner) injector() *faults.Injector {
	if r.inj == nil {
		r.inj = faults.New(r.sim.Net, r.faultSeed)
	}
	return r.inj
}

// RunConfig selects the script execution mode; the zero value is the plain
// sequential-or-sharded run with no observation attached.
type RunConfig struct {
	// Checked attaches a telemetry bus and the online §3.8 invariant
	// checker (forced on when the script declares `expect violations`).
	Checked bool
	// FailFast additionally arms the checker's first-violation halt: the
	// simulation freezes at the violation instant and the rest of the
	// scripted run is skipped. Implies Checked.
	FailFast bool
	// Bus, when non-nil, is an externally supplied event bus whose
	// subscribers (samplers, convergence probes) observe the deployment;
	// subscribe them before calling RunWith. Pins the run to one shard.
	Bus *telemetry.Bus
	// Captured records the event stream on per-shard telemetry lanes and
	// returns the canonical merged stream in Result.Events: lane buffers
	// concatenated and stable-sorted by (At, Router), preserving each
	// router's publication order while normalizing cross-router
	// same-instant interleaving — identical for any shard count. This is
	// the sharded observation path and every equivalence gate's witness.
	Captured bool
}

// RunWith is the single execution entrypoint: it runs the script in the
// mode cfg selects and folds every observation — checker, violations, the
// captured canonical stream — into the Result. The zero RunConfig is the
// plain run.
//
// Sharding: unchecked and captured runs execute under the configured shard
// count (netsim.Shards()); a captured checked run attaches one checker per
// lane (read Result.Violations). Runs with an external Bus, checked
// uncaptured runs, and FailFast runs pin to sequential execution — their
// consumers share one bus, which parallel shards would race on.
func (s *Script) RunWith(cfg RunConfig) (*Result, error) {
	// A recorded-verdict scenario needs its checker regardless of how the
	// caller invoked it: the violation count is part of the outcome.
	if s.ExpectsViolations() {
		cfg.Checked = true
	}
	if cfg.FailFast {
		cfg.Checked = true
	}
	r := &runner{
		checked:   cfg.Checked,
		failFast:  cfg.FailFast,
		bus:       cfg.Bus,
		captured:  cfg.Captured,
		faultSeed: 1,
		groups:    map[string]addr.IP{},
		groupRP:   map[addr.IP][]int{},
		hosts:     map[string]*hostRef{},
		res:       &Result{Delivered: map[string]int{}},
	}
	// Pass 1: structure (topology, unicast mode, groups, hosts) so the
	// script order of declarations versus the protocol statement does not
	// matter.
	for _, st := range s.stmts {
		var err error
		switch st.kind {
		case "topo":
			err = r.doTopo(st)
		case "unicast":
			err = r.doUnicast(st)
		case "group":
			err = r.doGroup(st)
		case "host":
			err = r.doHost(st)
		case "faultseed":
			err = r.doFaultSeed(st)
		}
		if err != nil {
			return nil, err
		}
	}
	// Pass 2: deployment, timed actions, runs, and expectations in order.
	for _, st := range s.stmts {
		var err error
		switch st.kind {
		case "protocol":
			err = r.deploy(st)
		case "at":
			err = r.doAt(st)
		case "run":
			err = r.doRun(st)
		case "expect":
			err = r.doExpect(st)
		}
		if err != nil {
			return nil, err
		}
	}
	for name, h := range r.hosts {
		for gname, g := range r.groups {
			r.res.Delivered[name+"/"+gname] = h.host.Received[g]
		}
	}
	// Canonical captured stream: concatenate the per-shard lane buffers and
	// stable-sort by (At, Router). Within one router all events come from
	// one lane in publication order, which the stable sort preserves.
	if r.captured {
		for _, buf := range r.laneEvents {
			r.res.Events = append(r.res.Events, buf...)
		}
		slices.SortStableFunc(r.res.Events, func(x, y telemetry.Event) int {
			if x.At != y.At {
				return cmp.Compare(x.At, y.At)
			}
			return cmp.Compare(x.Router, y.Router)
		})
	}
	r.res.Checker = r.checker
	if r.checked {
		r.res.Violations = r.violations()
	}
	return r.res, nil
}

// violations aggregates the run's invariant-checker findings: across every
// lane of a uniform deployment, or from the single externally attached
// checker otherwise. Nil when no checker observed the run.
func (r *runner) violations() []telemetry.Violation {
	if r.dep != nil {
		return r.dep.Violations()
	}
	if r.checker != nil {
		return r.checker.Violations()
	}
	return nil
}

func (r *runner) doTopo(st stmt) error {
	if r.graph != nil {
		return st.errf("duplicate topo")
	}
	if len(st.args) == 0 {
		return st.errf("topo needs a form: random | file <path> | edges ...")
	}
	switch st.args[0] {
	case "random":
		nodes, err := st.intKV("nodes", 0)
		if err != nil || nodes <= 0 {
			return st.errf("topo random needs nodes=<n>")
		}
		degree, err := st.floatKV("degree", 4)
		if err != nil {
			return err
		}
		seed, err := st.intKV("seed", 1)
		if err != nil {
			return err
		}
		minD, err := st.intKV("mindelay", 1)
		if err != nil {
			return err
		}
		maxD, err := st.intKV("maxdelay", minD)
		if err != nil {
			return err
		}
		r.graph = topology.Random(topology.GenConfig{
			Nodes: nodes, Degree: degree,
			MinDelay: int64(minD), MaxDelay: int64(maxD),
		}, rand.New(rand.NewSource(int64(seed))))
	case "file":
		if len(st.args) != 2 {
			return st.errf("topo file needs a path")
		}
		f, err := os.Open(st.args[1])
		if err != nil {
			return st.errf("%v", err)
		}
		defer f.Close()
		g, err := topology.ParseEdgeList(f)
		if err != nil {
			return st.errf("%v", err)
		}
		r.graph = g
	case "edges":
		type edge struct {
			a, b int
			d    int64
		}
		var edges []edge
		maxNode := -1
		for _, spec := range st.args[1:] {
			delay := int64(1)
			epart := spec
			if ep, dp, ok := strings.Cut(spec, ":"); ok {
				epart = ep
				d, err := strconv.ParseInt(dp, 10, 64)
				if err != nil || d <= 0 {
					return st.errf("bad delay in %q", spec)
				}
				delay = d
			}
			as, bs, ok := strings.Cut(epart, "-")
			if !ok {
				return st.errf("bad edge %q (want a-b[:delay])", spec)
			}
			a, errA := strconv.Atoi(as)
			b, errB := strconv.Atoi(bs)
			if errA != nil || errB != nil || a < 0 || b < 0 || a == b {
				return st.errf("bad edge %q", spec)
			}
			edges = append(edges, edge{a, b, delay})
			if a > maxNode {
				maxNode = a
			}
			if b > maxNode {
				maxNode = b
			}
		}
		if len(edges) == 0 {
			return st.errf("topo edges needs at least one edge")
		}
		g := topology.New(maxNode + 1)
		for _, e := range edges {
			g.AddEdge(e.a, e.b, e.d)
		}
		r.graph = g
	default:
		return st.errf("unknown topo form %q", st.args[0])
	}
	r.sim = scenario.Build(r.graph)
	return nil
}

func (r *runner) doFaultSeed(st stmt) error {
	if len(st.args) != 1 {
		return st.errf("faultseed syntax: faultseed <n>")
	}
	n, err := strconv.ParseInt(st.args[0], 10, 64)
	if err != nil {
		return st.errf("bad faultseed %q", st.args[0])
	}
	r.faultSeed = n
	return nil
}

func (r *runner) doUnicast(st stmt) error {
	if len(st.args) != 1 {
		return st.errf("unicast needs oracle|dv|ls")
	}
	switch st.args[0] {
	case "oracle":
		r.uniMode = scenario.UseOracle
	case "dv":
		r.uniMode = scenario.UseDV
	case "ls":
		r.uniMode = scenario.UseLS
	default:
		return st.errf("unknown unicast mode %q", st.args[0])
	}
	return nil
}

func (r *runner) doGroup(st stmt) error {
	if len(st.args) < 1 {
		return st.errf("group needs a name")
	}
	name := st.args[0]
	if _, dup := r.groups[name]; dup {
		return st.errf("duplicate group %q", name)
	}
	g := addr.GroupForIndex(len(r.groups))
	r.groups[name] = g
	if len(st.args) >= 3 && st.args[1] == "rp" {
		for _, arg := range st.args[2:] {
			idx, err := r.routerIndex(st, arg)
			if err != nil {
				return err
			}
			r.groupRP[g] = append(r.groupRP[g], idx)
		}
	} else if len(st.args) != 1 {
		return st.errf("group syntax: group <name> [rp <router>...]")
	}
	return nil
}

func (r *runner) doHost(st stmt) error {
	if r.sim == nil {
		return st.errf("host before topo")
	}
	if len(st.args) != 2 {
		return st.errf("host syntax: host <name> <router>")
	}
	name := st.args[0]
	if _, dup := r.hosts[name]; dup {
		return st.errf("duplicate host %q", name)
	}
	idx, err := r.routerIndex(st, st.args[1])
	if err != nil {
		return err
	}
	ref := &hostRef{
		host: r.sim.AddHost(idx), router: idx,
		delaySum: map[addr.IP]netsim.Time{}, delayN: map[addr.IP]int64{},
	}
	// Latency is read off the host's own scheduler clock: under sharded
	// execution the callback fires on the host's shard, where the root
	// clock may still sit at the window base.
	hostNode := ref.host.Node
	ref.host.OnData = func(g addr.IP, pkt *packet.Packet) {
		if d, ok := scenario.Latency(hostNode.Sched().Now(), pkt); ok {
			ref.delaySum[g] += d
			ref.delayN[g]++
		}
	}
	r.hosts[name] = ref
	return nil
}

// Shrunk soft-state clocks selected by `protocol ... timers=fast` — the
// same grade the recovery experiment uses (internal/experiments).
const (
	fastRefresh = 20 * netsim.Second
	fastHello   = 10 * netsim.Second
	fastPrune   = 60 * netsim.Second
)

// deployOpts returns the options shared by every protocol statement.
func (r *runner) deployOpts() []scenario.DeployOption {
	var opts []scenario.DeployOption
	if r.fastTimers {
		opts = append(opts, scenario.WithIGMPTimers(fastHello, 3*fastHello))
	}
	if r.bus != nil {
		opts = append(opts, scenario.WithTelemetry(r.bus))
	}
	if r.lanes != nil {
		opts = append(opts, scenario.WithTelemetry(r.lanes[0]))
		if len(r.lanes) > 1 {
			opts = append(opts, scenario.WithShardTelemetry(r.lanes))
		}
	}
	if r.failFast {
		opts = append(opts, scenario.WithFailFast())
	} else if r.checked {
		opts = append(opts, scenario.WithInvariantChecker())
	}
	return opts
}

// install records a uniform deployment as the script's fault/state surface.
func (r *runner) install(dep scenario.Deployment) {
	r.dep = dep
	r.stateFn = dep.StateAt
	r.checker = dep.Checker()
}

func (r *runner) deploy(st stmt) error {
	if r.sim == nil {
		return st.errf("protocol before topo")
	}
	if r.deployed {
		return st.errf("duplicate protocol statement")
	}
	if len(st.args) < 1 {
		return st.errf("protocol needs a name")
	}
	// Shard before the unicast substrate schedules its first event.
	// Externally instrumented runs, checked uncaptured runs, and fail-fast
	// runs stay sequential (their consumers share one bus); a captured
	// checked run shards fine — the deployment attaches one checker per
	// lane, and the §3.8 invariants are per-router, so each lane checker
	// sees everything it needs. MOSPF pins to one shard (shared link-state
	// Domain), as does the mixed sparse/dense interop form.
	if r.bus == nil && (!r.checked || r.captured) && !r.failFast &&
		st.args[0] != "mospf" && st.kv["dense"] == "" {
		r.sim.AutoShard()
	}
	if r.captured {
		nlanes := r.sim.Net.ShardCount()
		r.laneEvents = make([][]telemetry.Event, nlanes)
		for i := 0; i < nlanes; i++ {
			i := i
			lane := telemetry.NewBus()
			lane.Subscribe(func(ev telemetry.Event) {
				r.laneEvents[i] = append(r.laneEvents[i], ev)
			})
			r.lanes = append(r.lanes, lane)
		}
	}
	r.sim.FinishUnicast(r.uniMode)
	r.sim.Run(r.sim.ConvergenceTime())

	rpMap := map[addr.IP][]addr.IP{}
	coreMap := map[addr.IP]addr.IP{}
	for _, g := range r.groups {
		if idxs, ok := r.groupRP[g]; ok && len(idxs) > 0 {
			for _, idx := range idxs {
				rpMap[g] = append(rpMap[g], r.sim.RouterAddr(idx))
			}
			coreMap[g] = r.sim.RouterAddr(idxs[0]) // CBT uses one core
		}
	}
	// timers=fast shrinks every soft-state clock to the recovery-experiment
	// grade (join/prune and LSA refresh 20 s, hellos/queries 10 s, prune
	// state 60 s, IGMP query 10 s / hold 30 s), so crash recovery and
	// membership re-learning complete within a few-minute scripted run.
	// Fault scenarios — hand-written and search-emitted alike — depend on
	// it: with the default clocks a crashed router's state can outlive the
	// script.
	fast := false
	switch st.kv["timers"] {
	case "":
	case "fast":
		fast = true
	default:
		return st.errf("unknown timers=%q (want fast)", st.kv["timers"])
	}
	r.fastTimers = fast
	prune := 120 * netsim.Second
	if fast {
		prune = fastPrune
	}
	if v, ok := st.kv["prune"]; ok {
		d, err := parseDuration(v)
		if err != nil {
			return st.errf("bad prune=%q", v)
		}
		prune = d
	}
	name := st.args[0]
	switch name {
	case "pim-sm":
		cfg := core.Config{RPMapping: rpMap}
		if fast {
			cfg.JoinPruneInterval = fastRefresh
			cfg.QueryInterval = fastHello
			cfg.RPReachInterval = fastRefresh
		}
		switch st.kv["spt"] {
		case "", "immediate":
			cfg.SPTPolicy = core.SwitchImmediate
		case "never":
			cfg.SPTPolicy = core.SwitchNever
		case "threshold":
			cfg.SPTPolicy = core.SwitchThreshold
		default:
			return st.errf("unknown spt=%q", st.kv["spt"])
		}
		for _, a := range st.args[1:] {
			if a == "aggregate" {
				cfg.AggregateSources = true
			}
		}
		if v, ok := st.kv["dense"]; ok {
			// Mixed sparse/dense internet (§4): dense=3,4 marks dense-mode
			// routers; adjacent sparse routers become borders.
			denseSet := map[int]bool{}
			for _, part := range strings.Split(v, ",") {
				idx, err := r.routerIndex(st, part)
				if err != nil {
					return err
				}
				denseSet[idx] = true
			}
			dep := r.sim.DeployInterop(cfg, pimdm.Config{PruneHoldTime: prune}, denseSet)
			r.stateFn = func(i int) int {
				switch {
				case dep.Sparse[i] != nil:
					return dep.Sparse[i].StateCount()
				case dep.Dense[i] != nil:
					return dep.Dense[i].StateCount()
				default:
					return dep.Borders[i].StateCount()
				}
			}
			break
		}
		r.install(r.sim.Deploy(scenario.SparseMode,
			append(r.deployOpts(), scenario.WithCoreConfig(cfg))...))
	case "pim-dm":
		dcfg := pimdm.Config{PruneHoldTime: prune}
		if fast {
			dcfg.QueryInterval = fastHello
		}
		r.install(r.sim.Deploy(scenario.DenseMode, append(r.deployOpts(),
			scenario.WithDenseConfig(dcfg))...))
	case "dvmrp":
		vcfg := dvmrp.Config{PruneLifetime: prune}
		if fast {
			vcfg.ProbeInterval = fastHello
		}
		r.install(r.sim.Deploy(scenario.DVMRPMode, append(r.deployOpts(),
			scenario.WithDVMRPConfig(vcfg))...))
	case "cbt":
		ccfg := cbt.Config{CoreMapping: coreMap}
		if fast {
			ccfg.EchoInterval = fastHello
		}
		r.install(r.sim.Deploy(scenario.CBTMode, append(r.deployOpts(),
			scenario.WithCBTConfig(ccfg))...))
	case "mospf":
		opts := r.deployOpts()
		if fast {
			opts = append(opts, scenario.WithMOSPFRefresh(fastRefresh))
		}
		r.install(r.sim.Deploy(scenario.MOSPFMode, opts...))
	default:
		return st.errf("unknown protocol %q", name)
	}
	r.deployed = true
	// Neighbor discovery before scripted events begin.
	r.sim.Run(2 * netsim.Second)
	r.res.Log = append(r.res.Log,
		fmt.Sprintf("deployed %s on %d routers (%d links)", name, r.graph.N(), r.graph.M()))
	return nil
}

// doAt schedules one timed action. Times are absolute script time measured
// from deployment.
func (r *runner) doAt(st stmt) error {
	if !r.deployed {
		return st.errf("at before protocol")
	}
	if len(st.args) < 2 {
		return st.errf("at syntax: at <time> <action> ...")
	}
	when, err := parseDuration(st.args[0])
	if err != nil {
		return st.errf("bad time %q", st.args[0])
	}
	action := st.args[1]
	rest := st.args[2:]
	// Globally scoped verbs (link flaps, loss models, crash/restart) run as
	// root-scheduler actions: under sharded execution they fire at epoch
	// barriers with every shard quiesced. Verbs that touch a single host
	// (join/leave/send) run on that host's own scheduler instead, so the
	// membership change or packet send originates inside its shard exactly
	// as it would sequentially.
	schedule := func(fn func()) {
		r.sim.Net.Sched.At(r.sim.Net.Sched.Now()+when, fn)
	}
	scheduleOn := func(nd *netsim.Node, fn func()) {
		sched := nd.Sched()
		sched.At(sched.Now()+when, fn)
	}
	switch action {
	case "join", "leave":
		if len(rest) != 2 {
			return st.errf("%s syntax: at <t> %s <host> <group>", action, action)
		}
		h, g, err := r.hostGroup(st, rest[0], rest[1])
		if err != nil {
			return err
		}
		if action == "join" {
			rps := []addr.IP{}
			for _, idx := range r.groupRP[g] {
				rps = append(rps, r.sim.RouterAddr(idx))
			}
			scheduleOn(h.host.Node, func() { h.host.Join(g, rps...) })
		} else {
			scheduleOn(h.host.Node, func() { h.host.Leave(g) })
		}
	case "send":
		if len(rest) != 2 {
			return st.errf("send syntax: at <t> send <host> <group> [count= every= size=]")
		}
		h, g, err := r.hostGroup(st, rest[0], rest[1])
		if err != nil {
			return err
		}
		count, err := st.intKV("count", 1)
		if err != nil {
			return err
		}
		size, err := st.intKV("size", 128)
		if err != nil {
			return err
		}
		every := netsim.Second
		if v, ok := st.kv["every"]; ok {
			every, err = parseDuration(v)
			if err != nil {
				return st.errf("bad every=%q", v)
			}
		}
		hostSched := h.host.Node.Sched()
		scheduleOn(h.host.Node, func() {
			sent := 0
			var pump func()
			pump = func() {
				scenario.SendData(h.host, g, size)
				sent++
				if sent < count {
					hostSched.After(every, pump)
				}
			}
			pump()
		})
	case "linkdown", "linkup":
		if len(rest) != 1 {
			return st.errf("%s syntax: at <t> %s <edge>", action, action)
		}
		link, err := r.edgeLink(st, rest[0])
		if err != nil {
			return err
		}
		up := action == "linkup"
		schedule(func() { r.sim.Net.SetLinkUp(link, up) })
	case "loss":
		if len(rest) != 2 && len(rest) != 3 {
			return st.errf("loss syntax: at <t> loss <edge>|all <rate> [control|data]")
		}
		var link *netsim.Link
		if rest[0] != "all" {
			var err error
			if link, err = r.edgeLink(st, rest[0]); err != nil {
				return err
			}
		}
		rate, err := strconv.ParseFloat(rest[1], 64)
		if err != nil || rate < 0 || rate > 1 {
			return st.errf("bad loss rate %q (want 0..1)", rest[1])
		}
		class := faults.All
		if len(rest) == 3 {
			switch rest[2] {
			case "control":
				class = faults.ControlOnly
			case "data":
				class = faults.DataOnly
			default:
				return st.errf("bad loss class %q (want control|data)", rest[2])
			}
		}
		in := r.injector()
		schedule(func() { in.SetBernoulli(link, rate, class) })
	case "reorder":
		if len(rest) != 2 && len(rest) != 3 {
			return st.errf("reorder syntax: at <t> reorder <edge>|all <window> [control|data]")
		}
		var link *netsim.Link
		if rest[0] != "all" {
			var err error
			if link, err = r.edgeLink(st, rest[0]); err != nil {
				return err
			}
		}
		window, err := parseDuration(rest[1])
		if err != nil {
			return st.errf("bad reorder window %q", rest[1])
		}
		class := faults.All
		if len(rest) == 3 {
			switch rest[2] {
			case "control":
				class = faults.ControlOnly
			case "data":
				class = faults.DataOnly
			default:
				return st.errf("bad reorder class %q (want control|data)", rest[2])
			}
		}
		in := r.injector()
		schedule(func() { in.SetReorder(link, window, class) })
	case "flap":
		if len(rest) != 1 {
			return st.errf("flap syntax: at <t> flap <edge> [down=<dur>] [up=<dur>] [cycles=<n>]")
		}
		link, err := r.edgeLink(st, rest[0])
		if err != nil {
			return err
		}
		down, up := 5*netsim.Second, 5*netsim.Second
		if v, ok := st.kv["down"]; ok {
			if down, err = parseDuration(v); err != nil {
				return st.errf("bad down=%q", v)
			}
		}
		if v, ok := st.kv["up"]; ok {
			if up, err = parseDuration(v); err != nil {
				return st.errf("bad up=%q", v)
			}
		}
		cycles, err := st.intKV("cycles", 1)
		if err != nil {
			return err
		}
		in := r.injector()
		schedule(func() { in.Flap(link, 0, down, up, cycles) })
	case "crash", "restart":
		if len(rest) != 1 {
			return st.errf("%s syntax: at <t> %s <router>", action, action)
		}
		idx, err := r.routerIndex(st, rest[0])
		if err != nil {
			return err
		}
		if r.dep == nil {
			return st.errf("%s is not supported for this deployment", action)
		}
		if action == "crash" {
			schedule(func() { r.dep.Crash(idx) })
		} else {
			schedule(func() { r.dep.Restart(idx) })
		}
	case "partition":
		if len(rest) == 0 {
			return st.errf("partition syntax: at <t> partition <edge> ...")
		}
		var links []*netsim.Link
		for _, spec := range rest {
			link, err := r.edgeLink(st, spec)
			if err != nil {
				return err
			}
			links = append(links, link)
		}
		in := r.injector()
		schedule(func() { in.Partition(links...) })
	case "heal":
		if len(rest) != 0 {
			return st.errf("heal syntax: at <t> heal")
		}
		in := r.injector()
		schedule(func() { in.Heal() })
	default:
		return st.errf("unknown action %q", action)
	}
	return nil
}

func (r *runner) doRun(st stmt) error {
	if !r.deployed {
		return st.errf("run before protocol")
	}
	if len(st.args) != 1 {
		return st.errf("run syntax: run <duration>")
	}
	d, err := parseDuration(st.args[0])
	if err != nil {
		return st.errf("bad duration %q", st.args[0])
	}
	r.sim.Run(d)
	return nil
}

func (r *runner) doExpect(st stmt) error {
	if !r.deployed {
		return st.errf("expect before protocol")
	}
	fail := func(format string, a ...interface{}) {
		r.res.Failures = append(r.res.Failures,
			fmt.Sprintf("line %d: %s", st.line, fmt.Sprintf(format, a...)))
	}
	a := st.args
	switch {
	case len(a) == 5 && a[1] == "received":
		h, g, err := r.hostGroup(st, a[0], a[2])
		if err != nil {
			return err
		}
		want, op, err := opValue(st, a[3], a[4])
		if err != nil {
			return err
		}
		got := h.host.Received[g]
		if !op(got, want) {
			fail("%s received %s = %d, want %s %d", a[0], a[2], got, a[3], want)
		}
	case len(a) == 5 && a[0] == "router" && a[2] == "state":
		idx, err := r.routerIndex(st, a[1])
		if err != nil {
			return err
		}
		want, op, err := opValue(st, a[3], a[4])
		if err != nil {
			return err
		}
		got := r.stateFn(idx)
		if !op(got, want) {
			fail("router %s state = %d, want %s %d", a[1], got, a[3], want)
		}
	case len(a) == 5 && a[1] == "mean-delay":
		h, g, err := r.hostGroup(st, a[0], a[2])
		if err != nil {
			return err
		}
		wantD, err := parseDuration(a[4])
		if err != nil {
			return st.errf("bad duration %q", a[4])
		}
		if h.delayN[g] == 0 {
			fail("%s mean-delay %s: nothing delivered", a[0], a[2])
			break
		}
		got := h.delaySum[g] / netsim.Time(h.delayN[g])
		ok := false
		switch a[3] {
		case "<=":
			ok = got <= wantD
		case ">=":
			ok = got >= wantD
		case "<":
			ok = got < wantD
		case ">":
			ok = got > wantD
		default:
			return st.errf("bad operator %q for mean-delay", a[3])
		}
		if !ok {
			fail("%s mean-delay %s = %v, want %s %v", a[0], a[2], got, a[3], wantD)
		}
	case len(a) == 3 && a[0] == "violations":
		if r.dep == nil && r.checker == nil {
			return st.errf("expect violations requires the invariant checker (checked run, uniform deployment)")
		}
		want, op, err := opValue(st, a[1], a[2])
		if err != nil {
			return err
		}
		vs := r.violations()
		got := len(vs)
		if !op(got, want) {
			detail := ""
			if got > 0 {
				detail = " (first: " + vs[0].String() + ")"
			}
			fail("violations = %d, want %s %d%s", got, a[1], want, detail)
		}
	case len(a) == 3 && a[0] == "links-with-data":
		want, op, err := opValue(st, a[1], a[2])
		if err != nil {
			return err
		}
		got := 0
		for _, l := range r.sim.EdgeLinks {
			if r.sim.Net.Stats.PerLink[l.ID].DataPackets > 0 {
				got++
			}
		}
		if !op(got, want) {
			fail("links-with-data = %d, want %s %d", got, a[1], want)
		}
	default:
		return st.errf("unknown expect form %v", a)
	}
	return nil
}

// --- helpers ---

func (r *runner) routerIndex(st stmt, s string) (int, error) {
	s = strings.TrimPrefix(s, "r")
	idx, err := strconv.Atoi(s)
	if err != nil || r.graph == nil || idx < 0 || idx >= r.graph.N() {
		return 0, st.errf("bad router %q", s)
	}
	return idx, nil
}

// edgeLink resolves a backbone edge index to its link.
func (r *runner) edgeLink(st stmt, s string) (*netsim.Link, error) {
	edge, err := strconv.Atoi(s)
	if err != nil || edge < 0 || edge >= len(r.sim.EdgeLinks) {
		return nil, st.errf("bad edge %q", s)
	}
	return r.sim.EdgeLinks[edge], nil
}

func (r *runner) hostGroup(st stmt, hname, gname string) (*hostRef, addr.IP, error) {
	h, ok := r.hosts[hname]
	if !ok {
		return nil, 0, st.errf("unknown host %q", hname)
	}
	g, ok := r.groups[gname]
	if !ok {
		return nil, 0, st.errf("unknown group %q", gname)
	}
	return h, g, nil
}

func (st stmt) intKV(key string, def int) (int, error) {
	v, ok := st.kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, st.errf("bad %s=%q", key, v)
	}
	return n, nil
}

func (st stmt) floatKV(key string, def float64) (float64, error) {
	v, ok := st.kv[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, st.errf("bad %s=%q", key, v)
	}
	return f, nil
}

// parseDuration accepts 150ms / 2s / 3m / bare-seconds forms.
func parseDuration(s string) (netsim.Time, error) {
	mult := netsim.Second
	switch {
	case strings.HasSuffix(s, "ms"):
		mult = netsim.Millisecond
		s = strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		s = strings.TrimSuffix(s, "s")
	case strings.HasSuffix(s, "m"):
		mult = 60 * netsim.Second
		s = strings.TrimSuffix(s, "m")
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return netsim.Time(f * float64(mult)), nil
}

func opValue(st stmt, opStr, valStr string) (int, func(got, want int) bool, error) {
	want, err := strconv.Atoi(valStr)
	if err != nil {
		return 0, nil, st.errf("bad value %q", valStr)
	}
	var op func(got, want int) bool
	switch opStr {
	case ">=":
		op = func(g, w int) bool { return g >= w }
	case "<=":
		op = func(g, w int) bool { return g <= w }
	case "==":
		op = func(g, w int) bool { return g == w }
	case "!=":
		op = func(g, w int) bool { return g != w }
	case ">":
		op = func(g, w int) bool { return g > w }
	case "<":
		op = func(g, w int) bool { return g < w }
	default:
		return 0, nil, st.errf("bad operator %q", opStr)
	}
	return want, op, nil
}
