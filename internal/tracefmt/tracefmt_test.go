package tracefmt

import (
	"strings"
	"testing"

	"pim/internal/netsim"

	"pim/internal/addr"
	"pim/internal/cbt"
	"pim/internal/dvmrp"
	"pim/internal/igmp"
	"pim/internal/packet"
	"pim/internal/pimmsg"
)

func mk(proto byte, payload []byte) *packet.Packet {
	return packet.New(addr.V4(10, 0, 0, 1), addr.V4(225, 0, 0, 1), proto, payload)
}

func TestDataRendering(t *testing.T) {
	got := Packet(mk(packet.ProtoUDP, make([]byte, 100)))
	if !strings.Contains(got, "DATA 100B") {
		t.Errorf("got %q", got)
	}
}

func TestIGMPRendering(t *testing.T) {
	for _, tc := range []struct {
		m    igmp.Message
		want string
	}{
		{igmp.Message{Type: igmp.TypeQuery}, "IGMP query"},
		{igmp.Message{Type: igmp.TypeReport, Group: addr.GroupForIndex(0)}, "IGMP report 225.0.0.0"},
		{igmp.Message{Type: igmp.TypeLeave, Group: addr.GroupForIndex(0)}, "IGMP leave"},
		{igmp.Message{Type: igmp.TypeRPMap, Group: addr.GroupForIndex(0), RPs: []addr.IP{1}}, "rp-map"},
	} {
		got := Packet(mk(packet.ProtoIGMP, tc.m.Marshal()))
		if !strings.Contains(got, tc.want) {
			t.Errorf("got %q, want substring %q", got, tc.want)
		}
	}
	if got := Packet(mk(packet.ProtoIGMP, []byte{1})); !strings.Contains(got, "malformed") {
		t.Errorf("malformed IGMP: %q", got)
	}
}

func TestPIMJoinPruneRendering(t *testing.T) {
	m := &pimmsg.JoinPrune{
		UpstreamNeighbor: addr.V4(10, 200, 0, 2),
		HoldTime:         180,
		Groups: []pimmsg.GroupRecord{{
			Group:  addr.GroupForIndex(0),
			Joins:  []pimmsg.Addr{{Addr: addr.V4(10, 0, 0, 9), WC: true, RP: true}},
			Prunes: []pimmsg.Addr{{Addr: addr.V4(10, 100, 1, 1), RP: true}},
		}},
	}
	got := Packet(mk(packet.ProtoPIM, pimmsg.Envelope(pimmsg.TypeJoinPrune, m.Marshal())))
	for _, want := range []string{"join/prune", "10.200.0.2", "join[10.0.0.9,WC,RP]", "prune[10.100.1.1,RP]"} {
		if !strings.Contains(got, want) {
			t.Errorf("got %q, want substring %q", got, want)
		}
	}
}

func TestPIMRegisterRendering(t *testing.T) {
	inner := packet.New(addr.V4(10, 100, 3, 1), addr.GroupForIndex(0), packet.ProtoUDP, make([]byte, 64))
	raw, _ := inner.Marshal()
	body := (&pimmsg.Register{Inner: raw}).Marshal()
	got := Packet(mk(packet.ProtoPIMData, pimmsg.Envelope(pimmsg.TypeRegister, body)))
	if !strings.Contains(got, "register [10.100.3.1 > 225.0.0.0 64B]") {
		t.Errorf("got %q", got)
	}
}

func TestPIMOtherTypes(t *testing.T) {
	cases := []struct {
		typ  byte
		body []byte
		want string
	}{
		{pimmsg.TypeQuery, (&pimmsg.Query{HoldTime: 105}).Marshal(), "PIM query"},
		{pimmsg.TypeRPReach, (&pimmsg.RPReach{Group: addr.GroupForIndex(0), RP: 9, HoldTime: 90}).Marshal(), "rp-reachability"},
		{pimmsg.TypeAssert, (&pimmsg.Assert{Group: addr.GroupForIndex(0), Source: 3, Metric: 7}).Marshal(), "assert"},
		{pimmsg.TypeMemberAd, (&pimmsg.MemberAd{Origin: 1, Seq: 2}).Marshal(), "member-ad"},
		{pimmsg.TypeRPReport, (&pimmsg.RPReport{RP: 1, Seq: 2}).Marshal(), "rp-report"},
		{pimmsg.TypeGraft, (&pimmsg.JoinPrune{Groups: []pimmsg.GroupRecord{{Group: addr.GroupForIndex(0), Joins: []pimmsg.Addr{{Addr: 7}}}}}).Marshal(), "graft (0.0.0.7,225.0.0.0)"},
	}
	for _, tc := range cases {
		got := Packet(mk(packet.ProtoPIM, pimmsg.Envelope(tc.typ, tc.body)))
		if !strings.Contains(got, tc.want) {
			t.Errorf("type %d: got %q, want %q", tc.typ, got, tc.want)
		}
	}
}

func TestDVMRPAndCBTRendering(t *testing.T) {
	d := &dvmrp.Message{Type: dvmrp.TypePrune, Source: 5, Group: addr.GroupForIndex(0), Lifetime: 120}
	if got := Packet(mk(packet.ProtoDVMRP, d.Marshal())); !strings.Contains(got, "DVMRP prune") {
		t.Errorf("got %q", got)
	}
	c := &cbt.Message{Type: cbt.TypeJoinReq, Group: addr.GroupForIndex(0), Core: 9}
	if got := Packet(mk(packet.ProtoCBT, c.Marshal())); !strings.Contains(got, "CBT join-request") {
		t.Errorf("got %q", got)
	}
}

func TestRoutingAndUnknownRendering(t *testing.T) {
	if got := Packet(mk(packet.ProtoRIPSim, nil)); !strings.Contains(got, "RIP") {
		t.Errorf("got %q", got)
	}
	if got := Packet(mk(packet.ProtoLSSim, nil)); !strings.Contains(got, "LSA") {
		t.Errorf("got %q", got)
	}
	if got := Packet(mk(packet.ProtoMOSPF, nil)); !strings.Contains(got, "MOSPF") {
		t.Errorf("got %q", got)
	}
	if got := Packet(mk(99, []byte{1, 2})); !strings.Contains(got, "proto=99") {
		t.Errorf("got %q", got)
	}
}

// Rendering must never panic on arbitrary payload bytes for any protocol.
func TestRenderingNeverPanics(t *testing.T) {
	protos := []byte{packet.ProtoIGMP, packet.ProtoPIM, packet.ProtoPIMData,
		packet.ProtoUDP, packet.ProtoDVMRP, packet.ProtoCBT, 77}
	payloads := [][]byte{nil, {0}, {1, 3}, make([]byte, 64)}
	for _, proto := range protos {
		for _, pl := range payloads {
			_ = Packet(mk(proto, pl))
		}
	}
}

func netsimNew() *netsim.Network { return netsim.NewNetwork() }

type netsimTraceEvent = netsim.TraceEvent

func TestEventRendering(t *testing.T) {
	net := netsimNew()
	a := net.AddNode("a")
	b := net.AddNode("b")
	ia := net.AddIface(a, addr.V4(10, 0, 0, 1))
	ib := net.AddIface(b, addr.V4(10, 0, 0, 2))
	net.Connect(ia, ib, 1000)
	ev := netsimTraceEvent{
		At:   2_500_000,
		From: ia, To: ib,
		Pkt: mk(packet.ProtoUDP, make([]byte, 10)),
	}
	got := Event(ev)
	for _, want := range []string{"t=2.500s", "a/if0 -> b/if0", "DATA 10B"} {
		if !strings.Contains(got, want) {
			t.Errorf("Event() = %q, missing %q", got, want)
		}
	}
}
