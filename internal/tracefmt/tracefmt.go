// Package tracefmt renders simulated packets as human-readable protocol
// trace lines — the tcpdump of this repository. Every control protocol's
// payload is decoded (PIM join/prune lists with their WC/RP bits, registers
// with the inner datagram, IGMP reports, DVMRP prunes, CBT handshakes,
// routing advertisements), so `pimsim -trace` and debugging sessions show
// the protocol conversation rather than byte counts.
package tracefmt

import (
	"fmt"
	"strings"

	"pim/internal/cbt"
	"pim/internal/dvmrp"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimmsg"
)

// Event renders one delivery trace event as a single line:
//
//	t=12.345s  r1/if0 -> r2/if1  PIM join/prune to 10.200.0.2: 225.0.0.1 join[10.0.0.9 WC RP]
func Event(ev netsim.TraceEvent) string {
	return fmt.Sprintf("t=%.3fs  %s -> %s  %s",
		ev.At.Seconds(), ev.From, ev.To, Packet(ev.Pkt))
}

// Packet renders a decoded one-line summary of any simulated packet.
func Packet(p *packet.Packet) string {
	body := payload(p)
	return fmt.Sprintf("%v > %v %s", p.Src, p.Dst, body)
}

func payload(p *packet.Packet) string {
	switch p.Protocol {
	case packet.ProtoUDP:
		return fmt.Sprintf("DATA %dB ttl=%d", len(p.Payload), p.TTL)
	case packet.ProtoIGMP:
		return igmpString(p.Payload)
	case packet.ProtoPIM, packet.ProtoPIMData:
		return pimString(p.Payload)
	case packet.ProtoDVMRP:
		return dvmrpString(p.Payload)
	case packet.ProtoCBT:
		return cbtString(p.Payload)
	case packet.ProtoRIPSim:
		return "RIP advertisement"
	case packet.ProtoLSSim:
		return "LSA flood"
	case packet.ProtoMOSPF:
		return "MOSPF membership LSA"
	default:
		return fmt.Sprintf("proto=%d %dB", p.Protocol, len(p.Payload))
	}
}

func igmpString(b []byte) string {
	m, err := igmp.Unmarshal(b)
	if err != nil {
		return "IGMP <malformed>"
	}
	switch m.Type {
	case igmp.TypeQuery:
		return "IGMP query"
	case igmp.TypeReport:
		return fmt.Sprintf("IGMP report %v", m.Group)
	case igmp.TypeLeave:
		return fmt.Sprintf("IGMP leave %v", m.Group)
	case igmp.TypeRPMap:
		return fmt.Sprintf("IGMP rp-map %v -> %v", m.Group, m.RPs)
	default:
		return fmt.Sprintf("IGMP type=%#x", m.Type)
	}
}

func pimString(b []byte) string {
	typ, body, err := pimmsg.Open(b)
	if err != nil {
		return "PIM <malformed>"
	}
	switch typ {
	case pimmsg.TypeQuery:
		return "PIM query"
	case pimmsg.TypeJoinPrune:
		m, err := pimmsg.UnmarshalJoinPrune(body)
		if err != nil {
			return "PIM join/prune <malformed>"
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "PIM join/prune to %v hold=%ds", m.UpstreamNeighbor, m.HoldTime)
		for _, g := range m.Groups {
			fmt.Fprintf(&sb, " %v", g.Group)
			if len(g.Joins) > 0 {
				fmt.Fprintf(&sb, " join%v", addrList(g.Joins))
			}
			if len(g.Prunes) > 0 {
				fmt.Fprintf(&sb, " prune%v", addrList(g.Prunes))
			}
		}
		return sb.String()
	case pimmsg.TypeRegister:
		m, err := pimmsg.UnmarshalRegister(body)
		if err != nil {
			return "PIM register <malformed>"
		}
		inner, err := packet.Unmarshal(m.Inner)
		if err != nil {
			return fmt.Sprintf("PIM register %dB <undecodable inner>", len(m.Inner))
		}
		return fmt.Sprintf("PIM register [%v > %v %dB]", inner.Src, inner.Dst, len(inner.Payload))
	case pimmsg.TypeRPReach:
		m, err := pimmsg.UnmarshalRPReach(body)
		if err != nil {
			return "PIM rp-reach <malformed>"
		}
		return fmt.Sprintf("PIM rp-reachability %v rp=%v hold=%ds", m.Group, m.RP, m.HoldTime)
	case pimmsg.TypeAssert:
		m, err := pimmsg.UnmarshalAssert(body)
		if err != nil {
			return "PIM assert <malformed>"
		}
		return fmt.Sprintf("PIM assert (%v,%v) metric=%d", m.Source, m.Group, m.Metric)
	case pimmsg.TypeGraft, pimmsg.TypeGraftAck:
		kind := "graft"
		if typ == pimmsg.TypeGraftAck {
			kind = "graft-ack"
		}
		m, err := pimmsg.UnmarshalJoinPrune(body)
		if err != nil {
			return "PIM " + kind + " <malformed>"
		}
		var parts []string
		for _, g := range m.Groups {
			for _, a := range g.Joins {
				parts = append(parts, fmt.Sprintf("(%v,%v)", a.Addr, g.Group))
			}
		}
		return fmt.Sprintf("PIM %s %s", kind, strings.Join(parts, " "))
	case pimmsg.TypeMemberAd:
		m, err := pimmsg.UnmarshalMemberAd(body)
		if err != nil {
			return "PIM member-ad <malformed>"
		}
		return fmt.Sprintf("PIM member-ad from %v groups=%v", m.Origin, m.Groups)
	case pimmsg.TypeRPReport:
		m, err := pimmsg.UnmarshalRPReport(body)
		if err != nil {
			return "PIM rp-report <malformed>"
		}
		return fmt.Sprintf("PIM rp-report rp=%v groups=%v", m.RP, m.Groups)
	default:
		return fmt.Sprintf("PIM type=%d", typ)
	}
}

func addrList(addrs []pimmsg.Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func dvmrpString(b []byte) string {
	m, err := dvmrp.Unmarshal(b)
	if err != nil {
		return "DVMRP <malformed>"
	}
	switch m.Type {
	case dvmrp.TypeProbe:
		return "DVMRP probe"
	case dvmrp.TypePrune:
		return fmt.Sprintf("DVMRP prune (%v,%v) lifetime=%ds", m.Source, m.Group, m.Lifetime)
	case dvmrp.TypeGraft:
		return fmt.Sprintf("DVMRP graft (%v,%v)", m.Source, m.Group)
	case dvmrp.TypeGraftAck:
		return fmt.Sprintf("DVMRP graft-ack (%v,%v)", m.Source, m.Group)
	default:
		return fmt.Sprintf("DVMRP type=%d", m.Type)
	}
}

func cbtString(b []byte) string {
	m, err := cbt.Unmarshal(b)
	if err != nil {
		return "CBT <malformed>"
	}
	switch m.Type {
	case cbt.TypeJoinReq:
		return fmt.Sprintf("CBT join-request %v core=%v", m.Group, m.Core)
	case cbt.TypeJoinAck:
		return fmt.Sprintf("CBT join-ack %v core=%v", m.Group, m.Core)
	case cbt.TypeQuit:
		return fmt.Sprintf("CBT quit %v", m.Group)
	case cbt.TypeEchoReq:
		return fmt.Sprintf("CBT echo-request %v", m.Group)
	case cbt.TypeEchoReply:
		return fmt.Sprintf("CBT echo-reply %v", m.Group)
	case cbt.TypeFlush:
		return fmt.Sprintf("CBT flush %v", m.Group)
	default:
		return fmt.Sprintf("CBT type=%d", m.Type)
	}
}
