package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
)

func TestBusFanOutInOrder(t *testing.T) {
	b := NewBus()
	var got []string
	b.Subscribe(func(ev Event) { got = append(got, "a:"+ev.Kind.String()) })
	b.Subscribe(func(ev Event) { got = append(got, "b:"+ev.Kind.String()) })
	b.Publish(Event{Kind: JoinPruneSend})
	b.Publish(Event{Kind: Deliver})
	want := []string{"a:joinprune-send", "b:joinprune-send", "a:deliver", "b:deliver"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestSamplerCurves(t *testing.T) {
	b := NewBus()
	s := NewSampler(b, netsim.Second)
	// Router 0: two entries created in bucket 0, one expires in bucket 2.
	b.Publish(Event{At: 100 * netsim.Millisecond, Kind: EntryCreate, Router: 0})
	b.Publish(Event{At: 200 * netsim.Millisecond, Kind: EntryCreate, Router: 0})
	b.Publish(Event{At: 500 * netsim.Millisecond, Kind: JoinPruneSend, Router: 0})
	b.Publish(Event{At: 2500 * netsim.Millisecond, Kind: EntryExpire, Router: 0})
	// Router 3: a delivery, a drop, and two timer fires in bucket 1. The
	// live-timer gauge is polled on each observed event; the dump keeps the
	// peak reading.
	live := int64(7)
	s.AttachLiveTimerGauge(func() int64 { return live })
	stateBytes := int64(4096)
	s.AttachStateBytesGauge(func() int64 { return stateBytes })
	b.Publish(Event{At: 1200 * netsim.Millisecond, Kind: Deliver, Router: 3})
	live = 42
	b.Publish(Event{At: 1300 * netsim.Millisecond, Kind: RPFDrop, Router: 3})
	live = 3
	b.Publish(Event{At: 1400 * netsim.Millisecond, Kind: TimerFire, Router: 3})
	b.Publish(Event{At: 1500 * netsim.Millisecond, Kind: TimerFire, Router: 3})

	d := s.Curves()
	if len(d.Routers) != 2 || d.Routers[0].Router != 0 || d.Routers[1].Router != 3 {
		t.Fatalf("routers = %+v", d.Routers)
	}
	r0 := d.Routers[0].Samples
	if len(r0) != 3 {
		t.Fatalf("r0 has %d samples, want 3", len(r0))
	}
	if r0[0].State != 2 || r0[0].Ctrl != 1 {
		t.Errorf("r0 bucket0 = %+v, want state=2 ctrl=1", r0[0])
	}
	if r0[1].State != 2 {
		t.Errorf("r0 bucket1 state = %d, want carried-forward 2", r0[1].State)
	}
	if r0[2].State != 1 {
		t.Errorf("r0 bucket2 state = %d, want 1", r0[2].State)
	}
	r3 := d.Routers[1].Samples
	if r3[1].Delivered != 1 || r3[1].Drops != 1 || r3[1].TimerFires != 2 {
		t.Errorf("r3 bucket1 = %+v, want delivered=1 drops=1 timerFires=2", r3[1])
	}
	if d.LiveTimerPeak != 42 {
		t.Errorf("LiveTimerPeak = %d, want 42", d.LiveTimerPeak)
	}
	// Two entries were simultaneously installed at the peak, and the
	// state-bytes gauge never moved off its attached reading.
	if d.LiveEntryPeak != 2 {
		t.Errorf("LiveEntryPeak = %d, want 2", d.LiveEntryPeak)
	}
	if d.StateBytesPeak != 4096 {
		t.Errorf("StateBytesPeak = %d, want 4096", d.StateBytesPeak)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"interval_sec": 1`) {
		t.Errorf("JSON dump missing interval: %s", buf.String())
	}
}

func TestProbeDeliveryQueries(t *testing.T) {
	b := NewBus()
	p := NewConvergenceProbe(b)
	b.Publish(Event{At: 10 * netsim.Second, Kind: Deliver, Router: 3, Value: int64(9 * netsim.Second)})
	b.Publish(Event{At: 20 * netsim.Second, Kind: Deliver, Router: 3, Value: int64(19 * netsim.Second)})
	b.Publish(Event{At: 70 * netsim.Second, Kind: Deliver, Router: 3, Value: int64(65 * netsim.Second)})

	if at, ok := p.FirstDelivery(3); !ok || at != 10*netsim.Second {
		t.Errorf("FirstDelivery = %v,%v", at, ok)
	}
	if _, ok := p.FirstDelivery(4); ok {
		t.Error("FirstDelivery for silent site should report none")
	}
	if at, ok := p.FirstDeliveryAt(3, 15*netsim.Second); !ok || at != 20*netsim.Second {
		t.Errorf("FirstDeliveryAt = %v,%v", at, ok)
	}
	// Fault at t=60: the packet delivered at t=70 was sent at 65 (>60), the
	// earlier ones were in flight before the fault.
	if at, ok := p.FirstDeliverySentAfter(3, 60*netsim.Second); !ok || at != 70*netsim.Second {
		t.Errorf("FirstDeliverySentAfter = %v,%v", at, ok)
	}
	if p.Delivered(3) != 3 {
		t.Errorf("Delivered = %d", p.Delivered(3))
	}
}

func TestProbeStabilization(t *testing.T) {
	b := NewBus()
	p := NewConvergenceProbe(b)
	if !p.StabilizedFor(100*netsim.Second, 10*netsim.Second) {
		t.Error("no mutations ever: should count as stabilized")
	}
	b.Publish(Event{At: 50 * netsim.Second, Kind: EntryCreate, Router: 1})
	if p.StabilizedFor(55*netsim.Second, 10*netsim.Second) {
		t.Error("mutation 5s ago with 10s quiet window: not stabilized")
	}
	if !p.StabilizedFor(60*netsim.Second, 10*netsim.Second) {
		t.Error("mutation 10s ago: stabilized")
	}
	if at, ok := p.LastTreeMutation(); !ok || at != 50*netsim.Second {
		t.Errorf("LastTreeMutation = %v,%v", at, ok)
	}
}

// TestCheckerStaleEpochTimer injects a forged timer firing from a dead epoch
// and asserts the checker trips. A live engine can never produce this event
// (the epoch guard makes stale closures inert before the publish site), so
// the negative test feeds the checker directly.
func TestCheckerStaleEpochTimer(t *testing.T) {
	b := NewBus()
	c := NewChecker(b)
	// Router 2 restarts into epoch 1 with a clean table, then a timer armed
	// under epoch 0 fires.
	b.Publish(Event{At: 5 * netsim.Second, Kind: EpochStart, Router: 2, Epoch: 1, Value: 0})
	b.Publish(Event{At: 6 * netsim.Second, Kind: TimerFire, Router: 2, Epoch: 1})
	if err := c.Err(); err != nil {
		t.Fatalf("current-epoch timer flagged: %v", err)
	}
	b.Publish(Event{At: 7 * netsim.Second, Kind: TimerFire, Router: 2, Epoch: 0})
	if err := c.Err(); err == nil {
		t.Fatal("stale-epoch timer not flagged")
	}
	if n := len(c.Violations()); n != 1 {
		t.Fatalf("violations = %d, want 1", n)
	}
}

func TestCheckerDirtyRestart(t *testing.T) {
	b := NewBus()
	c := NewChecker(b)
	b.Publish(Event{Kind: EpochStart, Router: 1, Epoch: 0, Value: 0})
	b.Publish(Event{Kind: EpochStart, Router: 1, Epoch: 1, Value: 3})
	if err := c.Err(); err == nil {
		t.Fatal("restart with learned state not flagged")
	}
}

func TestCheckerBoundCallbacks(t *testing.T) {
	b := NewBus()
	c := NewChecker(b)
	c.ExpectedIIF = func(router int, target addr.IP) (int, bool) { return 7, true }
	c.NegativeCached = func(router int, s, g addr.IP, iface int) bool { return iface == 4 }

	b.Publish(Event{Kind: IIFSet, Router: 0, Iface: 7, Source: addr.V4(10, 0, 0, 1)})
	b.Publish(Event{Kind: DataForward, Router: 0, Iface: 3, Value: 1})
	b.Publish(Event{Kind: DataForward, Router: 0, Iface: 4, Value: 0}) // SPT list: exempt
	if err := c.Err(); err != nil {
		t.Fatalf("clean events flagged: %v", err)
	}
	b.Publish(Event{Kind: IIFSet, Router: 0, Iface: 2, Source: addr.V4(10, 0, 0, 1)})
	b.Publish(Event{Kind: DataForward, Router: 0, Iface: 4, Value: 1})
	if n := len(c.Violations()); n != 2 {
		t.Fatalf("violations = %d, want 2 (RPF mismatch + negative-cache fan-out)", n)
	}
}

// failFastStream is a forged event sequence carrying three violations: a
// stale-epoch timer at t=7s, a dirty restart at t=8s, and a second stale
// timer at t=9s.
func failFastStream(b *Bus) {
	b.Publish(Event{At: 5 * netsim.Second, Kind: EpochStart, Router: 2, Epoch: 1, Value: 0})
	b.Publish(Event{At: 7 * netsim.Second, Kind: TimerFire, Router: 2, Epoch: 0})
	b.Publish(Event{At: 8 * netsim.Second, Kind: EpochStart, Router: 3, Epoch: 2, Value: 5})
	b.Publish(Event{At: 9 * netsim.Second, Kind: TimerFire, Router: 2, Epoch: 0})
}

// TestCheckerFailFastHaltsOnceDeterministically pins the fail-fast
// contract: Halt fires exactly once, at the first violation, and the
// recorded outcome is exactly that violation — identically on every run of
// the same stream.
func TestCheckerFailFastHaltsOnceDeterministically(t *testing.T) {
	run := func() (halts int, violations []Violation) {
		b := NewBus()
		c := NewChecker(b)
		c.SetFailFast(true)
		c.Halt = func() { halts++ }
		failFastStream(b)
		return halts, c.Violations()
	}
	h1, v1 := run()
	h2, v2 := run()
	if h1 != 1 {
		t.Fatalf("Halt called %d times, want exactly 1", h1)
	}
	if len(v1) != 1 {
		t.Fatalf("fail-fast recorded %d violations, want exactly the first", len(v1))
	}
	if v1[0].At != 7*netsim.Second || v1[0].Router != 2 {
		t.Fatalf("first violation = %v, want the t=7s stale timer on r2", v1[0])
	}
	if h1 != h2 || len(v1) != len(v2) || v1[0] != v2[0] {
		t.Fatalf("halt not deterministic: (%d,%v) vs (%d,%v)", h1, v1, h2, v2)
	}
	// The same stream without fail-fast accumulates all three.
	b := NewBus()
	c := NewChecker(b)
	failFastStream(b)
	if n := len(c.Violations()); n != 3 {
		t.Fatalf("accumulating checker saw %d violations, want 3", n)
	}
}

// TestCheckerFailFastWithoutHalt verifies SetFailFast alone (no Halt bound)
// still caps the record at the first violation without panicking.
func TestCheckerFailFastWithoutHalt(t *testing.T) {
	b := NewBus()
	c := NewChecker(b)
	c.SetFailFast(true)
	failFastStream(b)
	if n := len(c.Violations()); n != 1 {
		t.Fatalf("violations = %d, want 1", n)
	}
}
