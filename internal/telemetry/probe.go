package telemetry

import "pim/internal/netsim"

// ConvergenceProbe detects delivery convergence from the event stream: the
// time to first delivery at a receiver site, the first delivery after a
// chosen instant (recovery from a membership change), the first delivery of
// a packet *sent* after a chosen instant (recovery from a topology fault —
// pre-fault packets still in flight must not count), and tree stabilization
// (no forwarding-state mutation for a configurable quiet period).
//
// Deliveries are keyed by the receiver's attached router index (the Router
// field of Deliver events). The probe stores the full per-site delivery
// sequence so the recovery questions can be asked both mid-run (from a bus
// subscriber, observing the run as it executes) and after it.
type ConvergenceProbe struct {
	deliveries map[int][]probeDelivery
	// lastMutation is the time of the most recent forwarding-state mutation
	// anywhere (entry create/expire, iif change) — the signal for
	// tree-stabilization detection.
	lastMutation netsim.Time
	sawMutation  bool
}

type probeDelivery struct {
	at   netsim.Time
	sent netsim.Time // -1 when the packet carried no timestamp
}

// NewConvergenceProbe attaches a probe to the bus.
func NewConvergenceProbe(bus *Bus) *ConvergenceProbe {
	p := &ConvergenceProbe{deliveries: map[int][]probeDelivery{}}
	bus.Subscribe(p.observe)
	return p
}

func (p *ConvergenceProbe) observe(ev Event) {
	switch ev.Kind {
	case Deliver:
		p.deliveries[ev.Router] = append(p.deliveries[ev.Router],
			probeDelivery{at: ev.At, sent: netsim.Time(ev.Value)})
	case EntryCreate, EntryExpire, IIFSet:
		p.lastMutation = ev.At
		p.sawMutation = true
	}
}

// FirstDelivery returns the time of the first delivery at the site.
func (p *ConvergenceProbe) FirstDelivery(router int) (netsim.Time, bool) {
	ds := p.deliveries[router]
	if len(ds) == 0 {
		return 0, false
	}
	return ds[0].at, true
}

// FirstDeliveryAt returns the time of the first delivery at the site at or
// after t — the recovery instant for a membership change at t.
func (p *ConvergenceProbe) FirstDeliveryAt(router int, t netsim.Time) (netsim.Time, bool) {
	for _, d := range p.deliveries[router] {
		if d.at >= t {
			return d.at, true
		}
	}
	return 0, false
}

// FirstDeliverySentAfter returns the arrival time of the first delivery at
// the site whose packet was sent at or after t — the recovery instant for a
// topology fault at t (packets already in flight when the fault hit do not
// prove the repaired tree works).
func (p *ConvergenceProbe) FirstDeliverySentAfter(router int, t netsim.Time) (netsim.Time, bool) {
	for _, d := range p.deliveries[router] {
		if d.sent >= 0 && d.sent >= t {
			return d.at, true
		}
	}
	return 0, false
}

// Delivered returns the number of deliveries observed at the site.
func (p *ConvergenceProbe) Delivered(router int) int { return len(p.deliveries[router]) }

// LastTreeMutation returns the time of the most recent forwarding-state
// mutation, and whether any was observed.
func (p *ConvergenceProbe) LastTreeMutation() (netsim.Time, bool) {
	return p.lastMutation, p.sawMutation
}

// StabilizedFor reports whether no forwarding-state mutation has occurred in
// the window (now-quiet, now] — the tree-stabilization criterion "no MFIB
// mutation for N refresh intervals" with quiet = N × refresh.
func (p *ConvergenceProbe) StabilizedFor(now, quiet netsim.Time) bool {
	if !p.sawMutation {
		return true
	}
	return now-p.lastMutation >= quiet
}
