// Package telemetry is the observability plane of the repository: a
// zero-cost-when-disabled event bus that every protocol engine (core, pimdm,
// dvmrp, cbt, mospf, igmp) publishes structured events to. The paper defines
// its protocols entirely by soft-state transitions (§3.8: timers, refreshes,
// implicit teardown); the bus makes those transitions observable as data —
// each event is stamped with the simulated time, the router, and the
// (S,G)/(*,G) key it concerns.
//
// Three consumers build on the raw stream:
//
//   - Sampler (sampler.go): per-router time-series counter curves (control
//     messages, state entries, deliveries, drops), dumped as JSON for
//     cmd/pimbench and plotting.
//   - ConvergenceProbe (probe.go): time-to-first-delivery and
//     tree-stabilization detection, the structured replacement for ad-hoc
//     recovery-time measurement.
//   - Checker (invariant.go): an online §3.8 invariant checker that trips
//     the moment a soft-state contract is violated mid-run.
//
// The zero-cost contract: engines hold a nil *Bus when no subscriber is
// attached and guard every publication with a single nil-check branch, with
// event construction inside the branch. A run without telemetry therefore
// pays one predictable-not-taken compare per would-be event and allocates
// nothing, keeping the data-plane benchmark ledgers valid.
package telemetry

import (
	"pim/internal/addr"
	"pim/internal/netsim"
)

// Kind enumerates the event taxonomy.
type Kind uint8

const (
	// EntryCreate: a multicast forwarding entry was installed. Source/Group
	// carry the key; Value is 1 for (*,G), 2 for (S,G)RPbit negative-cache
	// entries, 0 for plain (S,G).
	EntryCreate Kind = iota
	// EntryExpire: an entry was removed (swept, cancelled, or torn down).
	EntryExpire
	// IIFSet: an entry's incoming interface was resolved via RPF. Iface is
	// the installed iif (-1 when the target is local/unreachable); Source
	// carries the RPF target (the source, or the RP for (*,G)).
	IIFSet
	// JoinPruneSend / JoinPruneRecv: a join/prune message left / was
	// processed on Iface. Value counts the group records.
	JoinPruneSend
	JoinPruneRecv
	// GraftSend / PruneSend: dense-mode graft/prune control traffic.
	GraftSend
	PruneSend
	// RegisterSend: a sender-side register left toward an RP (Source=S).
	RegisterSend
	// SPTSwitch: shared-tree→SPT transition for (S,G). Value 0 = initiated
	// (join sent toward the source), 1 = completed (SPT bit set, §3.5
	// exception 2).
	SPTSwitch
	// RPFailover: the router abandoned an unreachable RP for the next
	// candidate (§3.9).
	RPFailover
	// LSAFlood: an MOSPF membership LSA was originated or relayed.
	LSAFlood
	// NeighborUp / NeighborDown: PIM-query neighbor liveness on Iface.
	NeighborUp
	NeighborDown
	// TimerFire: an epoch-guarded timer body executed. Epoch carries the
	// epoch the timer was armed under; the invariant checker trips if it is
	// not the router's current epoch.
	TimerFire
	// EpochStart / EpochEnd: engine lifecycle. Epoch is the new/old epoch;
	// on EpochStart, Value is the entry count visible at start (must be 0
	// for a restarted router — the soft-state-only restart contract).
	EpochStart
	EpochEnd
	// MemberJoin / MemberLeave: IGMP membership edges on Iface.
	MemberJoin
	MemberLeave
	// DataForward: a data packet was transmitted out Iface. Value is 1 when
	// forwarded off the shared (*,G) list (where negative-cache subtraction
	// applies), 0 otherwise.
	DataForward
	// RPFDrop: a data packet arrived on an interface that failed the
	// incoming-interface check.
	RPFDrop
	// NoState: a data packet matched no forwarding entry.
	NoState
	// Deliver: a host received a data packet. Router is the attached
	// router's index, Iface the host's index on that router's LAN, Value
	// the send timestamp in microseconds (-1 when unstamped).
	Deliver

	kindCount // sentinel
)

var kindNames = [kindCount]string{
	EntryCreate:   "entry-create",
	EntryExpire:   "entry-expire",
	IIFSet:        "iif-set",
	JoinPruneSend: "joinprune-send",
	JoinPruneRecv: "joinprune-recv",
	GraftSend:     "graft-send",
	PruneSend:     "prune-send",
	RegisterSend:  "register-send",
	SPTSwitch:     "spt-switch",
	RPFailover:    "rp-failover",
	LSAFlood:      "lsa-flood",
	NeighborUp:    "neighbor-up",
	NeighborDown:  "neighbor-down",
	TimerFire:     "timer-fire",
	EpochStart:    "epoch-start",
	EpochEnd:      "epoch-end",
	MemberJoin:    "member-join",
	MemberLeave:   "member-leave",
	DataForward:   "data-forward",
	RPFDrop:       "rpf-drop",
	NoState:       "no-state",
	Deliver:       "deliver",
}

// String returns the stable kebab-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Entry-kind values carried by EntryCreate/EntryExpire events.
const (
	EntrySG  = 0 // (S,G) shortest-path entry
	EntryWC  = 1 // (*,G) wildcard entry
	EntryRpt = 2 // (S,G)RPbit negative-cache entry
)

// Event is one observation. It is a small value struct so publication with
// no allocation is possible; fields not meaningful for a kind are zero
// (Iface uses -1 for "not interface-scoped").
type Event struct {
	// At is the simulated time of the observation.
	At netsim.Time
	// Kind selects the taxonomy entry above.
	Kind Kind
	// Router is the publishing router's index (node ID); for Deliver events
	// it is the index of the router the host hangs off.
	Router int
	// Iface is the interface index the event concerns, or -1.
	Iface int
	// Epoch is the engine incarnation the event belongs to.
	Epoch uint64
	// Source, Group carry the (S,G)/(*,G) key (Source 0 for (*,G)).
	Source addr.IP
	Group  addr.IP
	// Value is kind-specific (see the Kind constants).
	Value int64
}

// Bus fans events out to subscribers in subscription order, synchronously.
// A nil *Bus held by an engine means telemetry is disabled; engines must
// guard Publish with `if bus != nil`.
type Bus struct {
	subs []func(Event)
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers a callback invoked for every subsequent event.
// Subscribers run synchronously inside Publish, in subscription order, so a
// subscriber observes the simulation state at the instant of the event.
func (b *Bus) Subscribe(fn func(Event)) { b.subs = append(b.subs, fn) }

// Publish delivers the event to every subscriber.
func (b *Bus) Publish(ev Event) {
	for _, fn := range b.subs {
		fn(ev)
	}
}
