package telemetry

import (
	"encoding/json"
	"io"
	"sort"

	"pim/internal/netsim"
)

// Sampler derives per-router time-series counter curves from the event
// stream: control messages sent, installed state entries, deliveries, and
// data-plane drops, bucketed by a fixed interval. It needs no polling — the
// curves are folded incrementally from events — so attaching a sampler never
// perturbs protocol timing.
type Sampler struct {
	interval netsim.Time
	routers  map[int]*samplerSeries
	last     int // highest bucket index seen anywhere
	// gauge, when attached, reads the scheduler's live-timer count; it is
	// sampled on every observed event (never on its own schedule, so it adds
	// no events of its own) and the dump carries the peak reading.
	gauge     func() int64
	gaugePeak int64
}

type samplerSeries struct {
	buckets map[int]*samplerBucket
}

type samplerBucket struct {
	ctrl       int64
	stateDelta int64
	delivered  int64
	drops      int64
	timerFires int64
}

// Sample is one point of a router's curve, serialized in the JSON dump.
type Sample struct {
	// TSec is the bucket's start time in simulated seconds.
	TSec float64 `json:"t_sec"`
	// Ctrl counts control messages sent in the bucket.
	Ctrl int64 `json:"ctrl"`
	// State is the installed entry count at the end of the bucket
	// (cumulative: creates minus expiries).
	State int64 `json:"state"`
	// Delivered counts host deliveries at the router's site.
	Delivered int64 `json:"delivered"`
	// Drops counts RPF-failure and no-state data drops.
	Drops int64 `json:"drops"`
	// TimerFires counts epoch-guarded soft-state timer bodies that executed
	// in the bucket — the refresh-load side of the §2.3 soft-state design.
	TimerFires int64 `json:"timer_fires"`
}

// RouterCurve is one router's full series.
type RouterCurve struct {
	Router  int      `json:"router"`
	Samples []Sample `json:"samples"`
}

// Dump is the JSON document Write produces.
type Dump struct {
	IntervalSec float64       `json:"interval_sec"`
	Routers     []RouterCurve `json:"routers"`
	// LiveTimerPeak is the highest live-timer gauge reading observed across
	// the run — total armed timers in the scheduler, the backing store's
	// population pressure. Zero (and omitted) when no gauge was attached.
	LiveTimerPeak int64 `json:"live_timer_peak,omitempty"`
}

// NewSampler attaches a sampler with the given bucket interval to the bus.
func NewSampler(bus *Bus, interval netsim.Time) *Sampler {
	if interval <= 0 {
		interval = netsim.Second
	}
	s := &Sampler{interval: interval, routers: map[int]*samplerSeries{}}
	bus.Subscribe(s.observe)
	return s
}

// AttachLiveTimerGauge wires a live-timer reader (typically the simulation
// scheduler's LiveTimers count) into the sampler. The gauge is polled on each
// observed event, so attaching it is timing-neutral; the peak reading lands
// in Dump.LiveTimerPeak.
func (s *Sampler) AttachLiveTimerGauge(read func() int64) {
	s.gauge = read
}

func (s *Sampler) observe(ev Event) {
	if s.gauge != nil {
		if v := s.gauge(); v > s.gaugePeak {
			s.gaugePeak = v
		}
	}
	var ctrl, stateDelta, delivered, drops, timerFires int64
	switch ev.Kind {
	case JoinPruneSend, GraftSend, PruneSend, RegisterSend, LSAFlood:
		ctrl = 1
	case EntryCreate:
		stateDelta = 1
	case EntryExpire:
		stateDelta = -1
	case Deliver:
		delivered = 1
	case RPFDrop, NoState:
		drops = 1
	case TimerFire:
		timerFires = 1
	default:
		return
	}
	rs := s.routers[ev.Router]
	if rs == nil {
		rs = &samplerSeries{buckets: map[int]*samplerBucket{}}
		s.routers[ev.Router] = rs
	}
	bi := int(ev.At / s.interval)
	if bi > s.last {
		s.last = bi
	}
	b := rs.buckets[bi]
	if b == nil {
		b = &samplerBucket{}
		rs.buckets[bi] = b
	}
	b.ctrl += ctrl
	b.stateDelta += stateDelta
	b.delivered += delivered
	b.drops += drops
	b.timerFires += timerFires
}

// Curves folds the observed events into the dump document: routers sorted by
// index, every bucket from 0 through the last observed one present (state is
// carried forward through empty buckets).
func (s *Sampler) Curves() Dump {
	d := Dump{
		IntervalSec:   float64(s.interval) / float64(netsim.Second),
		LiveTimerPeak: s.gaugePeak,
	}
	idxs := make([]int, 0, len(s.routers))
	for i := range s.routers {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		rs := s.routers[i]
		curve := RouterCurve{Router: i, Samples: make([]Sample, 0, s.last+1)}
		var state int64
		for bi := 0; bi <= s.last; bi++ {
			sm := Sample{TSec: float64(bi) * d.IntervalSec, State: state}
			if b := rs.buckets[bi]; b != nil {
				state += b.stateDelta
				sm.State = state
				sm.Ctrl = b.ctrl
				sm.Delivered = b.delivered
				sm.Drops = b.drops
				sm.TimerFires = b.timerFires
			}
			curve.Samples = append(curve.Samples, sm)
		}
		d.Routers = append(d.Routers, curve)
	}
	return d
}

// WriteJSON writes the curves as indented JSON. The output is deterministic
// for a deterministic run, so it is suitable for golden-file tests and the
// cmd/pimbench ledgers.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Curves())
}
