package telemetry

import (
	"encoding/json"
	"io"
	"sort"

	"pim/internal/netsim"
)

// Sampler derives per-router time-series counter curves from the event
// stream: control messages sent, installed state entries, deliveries, and
// data-plane drops, bucketed by a fixed interval. It needs no polling — the
// curves are folded incrementally from events — so attaching a sampler never
// perturbs protocol timing.
//
// A sharded simulation publishes on one bus per shard; NewShardedSampler
// attaches one isolated lane of sampler state to each bus, so observation
// stays race-free (a lane is only touched by its shard's goroutine) and the
// curves merge at dump time — every router lives on exactly one shard, so
// the union is disjoint.
type Sampler struct {
	interval netsim.Time
	lanes    []*samplerLane
	// shardLoads, when attached, reads the per-shard execution counters at
	// dump time; the readings land in Dump.Shards.
	shardLoads func() []netsim.ShardLoad
}

// samplerLane is the per-bus observation state: everything mutated while the
// simulation runs lives here, touched only by the owning shard.
type samplerLane struct {
	interval netsim.Time
	routers  map[int]*samplerSeries
	last     int // highest bucket index seen on this lane
	// gauge, when attached, reads the owning shard's live-timer count; it is
	// sampled on every observed event (never on its own schedule, so it adds
	// no events of its own) and the dump carries the peak reading.
	gauge     func() int64
	gaugePeak int64
	// liveEntries folds EntryCreate/EntryExpire into the lane's installed
	// multicast state population; the dump carries the peak.
	liveEntries   int64
	liveEntryPeak int64
	// stateBytes, when attached, reads the shard's MFIB memory footprint
	// (the flat store's Bytes estimator); sampled like gauge, peak reported.
	stateBytes     func() int64
	stateBytesPeak int64
}

type samplerSeries struct {
	buckets map[int]*samplerBucket
}

type samplerBucket struct {
	ctrl       int64
	stateDelta int64
	delivered  int64
	drops      int64
	timerFires int64
}

// Sample is one point of a router's curve, serialized in the JSON dump.
type Sample struct {
	// TSec is the bucket's start time in simulated seconds.
	TSec float64 `json:"t_sec"`
	// Ctrl counts control messages sent in the bucket.
	Ctrl int64 `json:"ctrl"`
	// State is the installed entry count at the end of the bucket
	// (cumulative: creates minus expiries).
	State int64 `json:"state"`
	// Delivered counts host deliveries at the router's site.
	Delivered int64 `json:"delivered"`
	// Drops counts RPF-failure and no-state data drops.
	Drops int64 `json:"drops"`
	// TimerFires counts epoch-guarded soft-state timer bodies that executed
	// in the bucket — the refresh-load side of the §2.3 soft-state design.
	TimerFires int64 `json:"timer_fires"`
}

// RouterCurve is one router's full series.
type RouterCurve struct {
	Router  int      `json:"router"`
	Samples []Sample `json:"samples"`
}

// Dump is the JSON document Write produces.
type Dump struct {
	IntervalSec float64       `json:"interval_sec"`
	Routers     []RouterCurve `json:"routers"`
	// LiveTimerPeak is the highest live-timer gauge reading observed across
	// the run — total armed timers in the scheduler, the backing store's
	// population pressure. Sharded runs report the sum of per-lane peaks.
	// Zero (and omitted) when no gauge was attached.
	LiveTimerPeak int64 `json:"live_timer_peak,omitempty"`
	// LiveEntryPeak is the highest simultaneously-installed multicast state
	// entry count observed across the run, folded from the
	// EntryCreate/EntryExpire stream (no gauge needed). Sharded runs report
	// the sum of per-lane peaks.
	LiveEntryPeak int64 `json:"live_entry_peak,omitempty"`
	// StateBytesPeak is the highest MFIB memory-footprint reading observed,
	// in bytes, when a state-bytes gauge (mfib.Table.Bytes) is attached.
	StateBytesPeak int64 `json:"state_bytes_peak,omitempty"`
	// Shards carries the per-shard execution counters of a sharded run:
	// events executed, barrier-wait time, and lookahead stalls per shard.
	// Omitted for sequential runs.
	Shards []netsim.ShardLoad `json:"shards,omitempty"`
}

// NewSampler attaches a sampler with the given bucket interval to the bus.
func NewSampler(bus *Bus, interval netsim.Time) *Sampler {
	return NewShardedSampler([]*Bus{bus}, interval)
}

// NewShardedSampler attaches one sampler lane per bus — the per-shard
// telemetry lanes of a sharded deployment — and merges the curves at dump
// time.
func NewShardedSampler(buses []*Bus, interval netsim.Time) *Sampler {
	if interval <= 0 {
		interval = netsim.Second
	}
	s := &Sampler{interval: interval}
	for _, bus := range buses {
		lane := &samplerLane{interval: interval, routers: map[int]*samplerSeries{}}
		bus.Subscribe(lane.observe)
		s.lanes = append(s.lanes, lane)
	}
	return s
}

// AttachLiveTimerGauge wires a live-timer reader (typically the simulation
// scheduler's LiveTimers count) into the sampler's first lane. The gauge is
// polled on each observed event, so attaching it is timing-neutral; the peak
// reading lands in Dump.LiveTimerPeak. On sharded samplers use
// AttachLaneGauge with each shard's own scheduler instead.
func (s *Sampler) AttachLiveTimerGauge(read func() int64) {
	s.AttachLaneGauge(0, read)
}

// AttachLaneGauge wires a live-timer reader into lane i. The reader runs on
// shard i's goroutine, so it must touch only that shard's scheduler.
func (s *Sampler) AttachLaneGauge(i int, read func() int64) {
	s.lanes[i].gauge = read
}

// AttachStateBytesGauge wires a state-footprint reader (typically the sum of
// the deployment's mfib.Table.Bytes) into the sampler's first lane. Like the
// live-timer gauge it is polled on observed events only, so it is
// timing-neutral; the peak reading lands in Dump.StateBytesPeak. On sharded
// samplers use AttachLaneStateBytesGauge with per-shard readers.
func (s *Sampler) AttachStateBytesGauge(read func() int64) {
	s.AttachLaneStateBytesGauge(0, read)
}

// AttachLaneStateBytesGauge wires a state-footprint reader into lane i. The
// reader runs on shard i's goroutine, so it must touch only that shard's
// routers.
func (s *Sampler) AttachLaneStateBytesGauge(i int, read func() int64) {
	s.lanes[i].stateBytes = read
}

// AttachShardLoads wires a per-shard execution-counter reader (typically
// netsim.Network.ShardLoads), polled once at dump time.
func (s *Sampler) AttachShardLoads(read func() []netsim.ShardLoad) {
	s.shardLoads = read
}

func (l *samplerLane) observe(ev Event) {
	if l.gauge != nil {
		if v := l.gauge(); v > l.gaugePeak {
			l.gaugePeak = v
		}
	}
	if l.stateBytes != nil {
		if v := l.stateBytes(); v > l.stateBytesPeak {
			l.stateBytesPeak = v
		}
	}
	var ctrl, stateDelta, delivered, drops, timerFires int64
	switch ev.Kind {
	case JoinPruneSend, GraftSend, PruneSend, RegisterSend, LSAFlood:
		ctrl = 1
	case EntryCreate:
		stateDelta = 1
		if l.liveEntries++; l.liveEntries > l.liveEntryPeak {
			l.liveEntryPeak = l.liveEntries
		}
	case EntryExpire:
		stateDelta = -1
		l.liveEntries--
	case Deliver:
		delivered = 1
	case RPFDrop, NoState:
		drops = 1
	case TimerFire:
		timerFires = 1
	default:
		return
	}
	rs := l.routers[ev.Router]
	if rs == nil {
		rs = &samplerSeries{buckets: map[int]*samplerBucket{}}
		l.routers[ev.Router] = rs
	}
	bi := int(ev.At / l.interval)
	if bi > l.last {
		l.last = bi
	}
	b := rs.buckets[bi]
	if b == nil {
		b = &samplerBucket{}
		rs.buckets[bi] = b
	}
	b.ctrl += ctrl
	b.stateDelta += stateDelta
	b.delivered += delivered
	b.drops += drops
	b.timerFires += timerFires
}

// Curves folds the observed events into the dump document: routers sorted by
// index, every bucket from 0 through the last observed one present (state is
// carried forward through empty buckets). A router's series lives wholly on
// its shard's lane, so merging lanes is a disjoint union.
func (s *Sampler) Curves() Dump {
	d := Dump{IntervalSec: float64(s.interval) / float64(netsim.Second)}
	routers := map[int]*samplerSeries{}
	last := 0
	for _, l := range s.lanes {
		d.LiveTimerPeak += l.gaugePeak
		d.LiveEntryPeak += l.liveEntryPeak
		d.StateBytesPeak += l.stateBytesPeak
		if l.last > last {
			last = l.last
		}
		for i, rs := range l.routers {
			routers[i] = rs
		}
	}
	if s.shardLoads != nil {
		d.Shards = s.shardLoads()
	}
	idxs := make([]int, 0, len(routers))
	for i := range routers {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		rs := routers[i]
		curve := RouterCurve{Router: i, Samples: make([]Sample, 0, last+1)}
		var state int64
		for bi := 0; bi <= last; bi++ {
			sm := Sample{TSec: float64(bi) * d.IntervalSec, State: state}
			if b := rs.buckets[bi]; b != nil {
				state += b.stateDelta
				sm.State = state
				sm.Ctrl = b.ctrl
				sm.Delivered = b.delivered
				sm.Drops = b.drops
				sm.TimerFires = b.timerFires
			}
			curve.Samples = append(curve.Samples, sm)
		}
		d.Routers = append(d.Routers, curve)
	}
	return d
}

// WriteJSON writes the curves as indented JSON. The output is deterministic
// for a deterministic run, so it is suitable for golden-file tests and the
// cmd/pimbench ledgers.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Curves())
}
