package telemetry

import (
	"fmt"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// Checker is the online §3.8 invariant checker: it subscribes to a bus and
// asserts the soft-state contracts while the run executes, so a violation is
// caught at the instant it happens instead of surfacing later as a wrong
// aggregate. The contracts checked from the raw stream:
//
//   - epoch isolation: no timer armed by a dead incarnation ever executes
//     (TimerFire.Epoch must equal the router's current epoch);
//   - clean restart: a restarted router holds zero learned state at epoch
//     start (EpochStart with Epoch > 0 must carry Value 0).
//
// Two further contracts need simulation state the stream alone cannot carry;
// the deployment glue binds them as callbacks:
//
//   - ExpectedIIF: RPF-failing incoming interfaces never enter the MFIB —
//     every IIFSet event's interface must match an independent unicast
//     lookup of the RPF target at the instant of the event;
//   - NegativeCached: negative-cache entries never appear on the shared-tree
//     fan-out — no DataForward event off the (*,G) list may target an
//     interface carrying an effective (S,G)RPbit prune.
type Checker struct {
	// ExpectedIIF, when bound, returns the RPF interface index an
	// independent unicast lookup resolves for target at router. ok=false
	// means no route (the check is skipped).
	ExpectedIIF func(router int, target addr.IP) (iface int, ok bool)
	// NegativeCached, when bound, reports whether the router holds an
	// effective (live, not override-pending) negative-cache prune for
	// (source, group) on iface.
	NegativeCached func(router int, source, group addr.IP, iface int) bool

	// Halt, when bound, is invoked exactly once — at the first violation —
	// while fail-fast mode is on. The deployment glue binds it to the
	// simulation scheduler's Halt so the run stops at the violation's exact
	// simulated time.
	Halt func()

	epochs     map[int]uint64
	violations []Violation
	failFast   bool
}

// Violation is one failed invariant.
type Violation struct {
	At     netsim.Time
	Router int
	Msg    string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v r%d: %s", v.At, v.Router, v.Msg)
}

// NewChecker attaches a checker to the bus.
func NewChecker(bus *Bus) *Checker {
	c := &Checker{epochs: map[int]uint64{}}
	bus.Subscribe(c.Check)
	return c
}

// Check evaluates one event. It is exported so tests can feed forged events
// directly (e.g. a stale-epoch timer that the engines' epoch guards would
// never let fire).
func (c *Checker) Check(ev Event) {
	if c.failFast && len(c.violations) > 0 {
		// The run is already stopping; suppressing further checks keeps the
		// recorded outcome exactly "the first violation", deterministically,
		// even for events published later within the same halting instant.
		return
	}
	switch ev.Kind {
	case EpochStart:
		c.epochs[ev.Router] = ev.Epoch
		if ev.Epoch > 0 && ev.Value != 0 {
			c.fail(ev, fmt.Sprintf("restarted router holds %d entries at start of epoch %d (want 0)",
				ev.Value, ev.Epoch))
		}
	case TimerFire:
		if cur, ok := c.epochs[ev.Router]; ok && ev.Epoch != cur {
			c.fail(ev, fmt.Sprintf("timer from dead epoch %d fired in epoch %d", ev.Epoch, cur))
		}
	case IIFSet:
		if c.ExpectedIIF == nil || ev.Iface < 0 {
			return
		}
		if want, ok := c.ExpectedIIF(ev.Router, ev.Source); ok && want != ev.Iface {
			c.fail(ev, fmt.Sprintf("MFIB iif %d for target %v fails RPF (unicast route says %d)",
				ev.Iface, ev.Source, want))
		}
	case DataForward:
		// Value 1 marks forwarding off the shared (*,G) list, the only list
		// negative-cache subtraction applies to ((S,G) joins legitimately
		// override an RP-bit prune on the source tree).
		if c.NegativeCached == nil || ev.Value != 1 || ev.Iface < 0 {
			return
		}
		if c.NegativeCached(ev.Router, ev.Source, ev.Group, ev.Iface) {
			c.fail(ev, fmt.Sprintf("negative-cached (%v,%v) forwarded on shared tree out iface %d",
				ev.Source, ev.Group, ev.Iface))
		}
	}
}

func (c *Checker) fail(ev Event, msg string) {
	c.violations = append(c.violations, Violation{At: ev.At, Router: ev.Router, Msg: msg})
	if c.failFast && len(c.violations) == 1 && c.Halt != nil {
		c.Halt()
	}
}

// SetFailFast arms fail-fast mode: the first violation invokes Halt (if
// bound) and suppresses all further checking, so the checker's outcome is
// exactly one violation — the earliest — instead of an accumulating list.
// Fault-schedule search depends on it for throughput: a violating schedule
// costs one violation's worth of simulation, not the full run.
func (c *Checker) SetFailFast(on bool) { c.failFast = on }

// Violations returns every failed invariant in observation order.
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil when every invariant held, or an error naming the first
// violation and the total count.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("%d invariant violation(s), first: %s", len(c.violations), c.violations[0])
}
