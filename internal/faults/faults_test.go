package faults

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
)

// twoNodes wires a-b with a point-to-point link and a counting UDP handler
// on b.
func twoNodes(t *testing.T) (*netsim.Network, *netsim.Node, *netsim.Node, *netsim.Link, *int) {
	t.Helper()
	n := netsim.NewNetwork()
	a := n.AddNode("a")
	b := n.AddNode("b")
	ai := n.AddIface(a, addr.V4(10, 0, 0, 1))
	bi := n.AddIface(b, addr.V4(10, 0, 0, 2))
	l := n.Connect(ai, bi, netsim.Millisecond)
	got := 0
	b.Handle(packet.ProtoUDP, netsim.HandlerFunc(func(in *netsim.Iface, pkt *packet.Packet) { got++ }))
	b.Handle(packet.ProtoPIM, netsim.HandlerFunc(func(in *netsim.Iface, pkt *packet.Packet) { got++ }))
	return n, a, b, l, &got
}

func TestBernoulliLossRate(t *testing.T) {
	n, a, _, l, got := twoNodes(t)
	in := New(n, 42)
	in.SetBernoulli(l, 0.5, All)
	const N = 2000
	for i := 0; i < N; i++ {
		pkt := packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8))
		a.Send(a.Ifaces[0], pkt, 0)
	}
	n.Sched.RunUntil(netsim.Second)
	if *got < N*4/10 || *got > N*6/10 {
		t.Fatalf("50%% loss delivered %d of %d", *got, N)
	}
	if n.Stats.Drops[netsim.DropInjectedLoss] != int64(N-*got) {
		t.Fatalf("drop ledger %v inconsistent with delivered %d", n.Stats.DropsByName(), *got)
	}
}

func TestBernoulliDeterministicAcrossRuns(t *testing.T) {
	run := func() int {
		n, a, _, l, got := twoNodes(t)
		in := New(n, 7)
		in.SetBernoulli(l, 0.3, All)
		for i := 0; i < 500; i++ {
			pkt := packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8))
			a.Send(a.Ifaces[0], pkt, 0)
		}
		n.Sched.RunUntil(netsim.Second)
		return *got
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed delivered %d then %d packets", a, b)
	}
}

func TestClassFilterControlOnly(t *testing.T) {
	n, a, _, l, got := twoNodes(t)
	in := New(n, 1)
	in.SetBernoulli(l, 1.0, ControlOnly) // drop ALL control
	for i := 0; i < 10; i++ {
		u := packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8))
		a.Send(a.Ifaces[0], u, 0)
		c := packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoPIM, make([]byte, 8))
		a.Send(a.Ifaces[0], c, 0)
	}
	n.Sched.RunUntil(netsim.Second)
	if *got != 10 {
		t.Fatalf("expected the 10 data packets to survive control-only loss, got %d", *got)
	}
}

func TestGilbertBurstsAndRecovers(t *testing.T) {
	n, a, _, l, got := twoNodes(t)
	in := New(n, 99)
	// Hard two-state: long good runs, lossy bad bursts.
	in.SetGilbert(l, GilbertParams{PGoodBad: 0.05, PBadGood: 0.3, LossGood: 0, LossBad: 1}, All)
	const N = 3000
	for i := 0; i < N; i++ {
		pkt := packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8))
		a.Send(a.Ifaces[0], pkt, 0)
	}
	n.Sched.RunUntil(netsim.Second)
	// Stationary bad-state probability is 0.05/(0.05+0.3) ≈ 14%; allow slack.
	if *got < N*7/10 || *got >= N {
		t.Fatalf("gilbert delivered %d of %d, expected bursty partial loss", *got, N)
	}
}

func TestClearLoss(t *testing.T) {
	n, a, _, l, got := twoNodes(t)
	in := New(n, 3)
	in.SetBernoulli(l, 1.0, All)
	in.SetBernoulli(nil, 1.0, All)
	in.ClearLoss()
	pkt := packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8))
	a.Send(a.Ifaces[0], pkt, 0)
	n.Sched.RunUntil(netsim.Second)
	if *got != 1 {
		t.Fatalf("ClearLoss left loss active: delivered %d", *got)
	}
}

func TestLossHookChaining(t *testing.T) {
	n, a, _, _, got := twoNodes(t)
	dropAll := true
	n.Loss = func(from, to *netsim.Iface, pkt *packet.Packet) bool { return dropAll }
	New(n, 5) // no models installed; must still honor the previous hook
	pkt := packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8))
	a.Send(a.Ifaces[0], pkt, 0)
	n.Sched.RunUntil(netsim.Second)
	if *got != 0 {
		t.Fatal("injector did not chain the pre-existing loss hook")
	}
	dropAll = false
	a.Send(a.Ifaces[0], packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8)), 0)
	n.Sched.RunUntil(2 * netsim.Second)
	if *got != 1 {
		t.Fatal("chained hook blocked delivery after being disabled")
	}
}

func TestFlapSchedulesDownUpCycles(t *testing.T) {
	n, _, _, l, _ := twoNodes(t)
	in := New(n, 1)
	in.Flap(l, netsim.Second, netsim.Second, netsim.Second, 2)
	type sample struct {
		at netsim.Time
		up bool
	}
	var samples []sample
	for _, at := range []netsim.Time{500 * netsim.Millisecond, 1500 * netsim.Millisecond,
		2500 * netsim.Millisecond, 3500 * netsim.Millisecond, 4500 * netsim.Millisecond} {
		at := at
		n.Sched.At(at, func() { samples = append(samples, sample{at, l.Up()}) })
	}
	n.Sched.RunUntil(5 * netsim.Second)
	want := []bool{true, false, true, false, true}
	for i, s := range samples {
		if s.up != want[i] {
			t.Fatalf("at %v link up=%v, want %v", s.at, s.up, want[i])
		}
	}
}

func TestPartitionHeal(t *testing.T) {
	n, _, _, l, _ := twoNodes(t)
	in := New(n, 1)
	in.Partition(l)
	if l.Up() {
		t.Fatal("partition left link up")
	}
	in.Heal()
	if !l.Up() {
		t.Fatal("heal did not restore link")
	}
	if in.partitioned != nil {
		t.Fatal("heal did not clear the partitioned set")
	}
}

// stubEngine counts lifecycle transitions.
type stubEngine struct{ stops, restarts int }

func (s *stubEngine) Stop()    { s.stops++ }
func (s *stubEngine) Restart() { s.restarts++ }

func TestCrashRestartRouter(t *testing.T) {
	n, a, _, _, _ := twoNodes(t)
	eng := &stubEngine{}
	CrashRouter(n, a, eng)
	if eng.stops != 1 {
		t.Fatalf("engine stopped %d times", eng.stops)
	}
	for _, ifc := range a.Ifaces {
		if ifc.Up() {
			t.Fatalf("%v still up after crash", ifc)
		}
	}
	RestartRouter(n, a, eng)
	if eng.restarts != 1 {
		t.Fatalf("engine restarted %d times", eng.restarts)
	}
	for _, ifc := range a.Ifaces {
		if !ifc.Up() {
			t.Fatalf("%v still down after restart", ifc)
		}
	}
}
