// Package faults is the fault-injection layer over the netsim substrate: it
// composes deterministic, seedable fault models — per-link Bernoulli and
// burst (Gilbert two-state) loss, scheduled link flapping, network
// partition/heal, and fail-stop router crash/restart — onto a running
// simulation.
//
// The paper's robustness claim (§2, §3.8) is that PIM keeps only
// timer-refreshed soft state and therefore survives lost control messages,
// link failures, and router restarts without any reliability machinery. The
// recovery experiment (internal/experiments/recovery.go) and the scenario
// verbs (internal/script: loss/flap/crash/restart/partition/heal) drive the
// protocols through exactly those faults using this package.
//
// Determinism: the Injector owns one rand stream per directed interface
// pair, seeded from the construction seed and the pair's stable identity
// (link ID plus both endpoints' positions on the link). Loss decisions for
// a pair are consumed in that pair's delivery order, which the scheduler
// makes deterministic, and distinct pairs never share a stream — so a run
// with a given seed is bit-reproducible regardless of how deliveries from
// different links interleave. That last property is what lets the sharded
// simulation core replay identical loss patterns at any shard count: each
// pair's deliveries execute on one shard, in an order the determinism
// argument of internal/netsim fixes, while a single shared stream would
// observe the (varying) global interleaving.
//
// Pair streams are pre-populated when a model is installed, never lazily
// during delivery, so concurrently executing shards only read the maps.
// Install mutators (SetBernoulli, SetGilbert, ClearLoss) must run in a
// serial phase: setup code or a scheduled event on the root scheduler.
package faults

import (
	"math/rand"

	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/parallel"
)

// Class selects which packets a loss model applies to, using the control /
// data split of the paper's overhead ledger (netsim.IsData).
type Class int

// Loss classes.
const (
	All Class = iota
	ControlOnly
	DataOnly
)

func (c Class) matches(proto byte) bool {
	switch c {
	case ControlOnly:
		return !netsim.IsData(proto)
	case DataOnly:
		return netsim.IsData(proto)
	default:
		return true
	}
}

// GilbertParams parameterizes the two-state burst-loss model: the channel
// alternates between a good and a bad state with the given per-packet
// transition probabilities, dropping packets at LossGood / LossBad in the
// respective states. Classic bursty links have small PGoodBad, larger
// PBadGood, LossGood ~ 0, LossBad near 1.
type GilbertParams struct {
	PGoodBad float64 // P(good -> bad) evaluated per consulted packet
	PBadGood float64 // P(bad -> good)
	LossGood float64 // drop probability in the good state
	LossBad  float64 // drop probability in the bad state
}

// lossModel is one installed loss process (per link or global). The model
// itself is immutable once installed; mutable channel state (the rand
// stream, the Gilbert good/bad bit) lives per directed pair in pairState.
type lossModel struct {
	class Class
	// bernoulli rate when gilbert is nil.
	rate    float64
	gilbert *GilbertParams
}

func (m *lossModel) drop(ps *pairState, bad *bool, proto byte) bool {
	if !m.class.matches(proto) {
		return false
	}
	if m.gilbert == nil {
		return m.rate > 0 && ps.rng.Float64() < m.rate
	}
	// Advance the channel, then sample the state's loss rate.
	if *bad {
		if ps.rng.Float64() < m.gilbert.PBadGood {
			*bad = false
		}
	} else if ps.rng.Float64() < m.gilbert.PGoodBad {
		*bad = true
	}
	p := m.gilbert.LossGood
	if *bad {
		p = m.gilbert.LossBad
	}
	return p > 0 && ps.rng.Float64() < p
}

// pairKey identifies one direction of one link.
type pairKey struct{ from, to *netsim.Iface }

// pairState is the mutable loss state of one directed pair: its private
// rand stream plus the Gilbert channel bits for the link-scoped and
// global-scoped models.
type pairState struct {
	rng       *rand.Rand
	linkBad   bool
	globalBad bool
}

// Lifecycle is the crash/restart surface of a protocol engine (implemented
// by the five multicast engines and the IGMP querier). Stop detaches the
// instance and discards all of its soft state; Restart brings it back empty,
// to be rebuilt purely from periodic refresh.
type Lifecycle interface {
	Stop()
	Restart()
}

// Injector owns the fault state of one simulation. Construct with New; all
// mutators may be called at any simulated time (typically from scheduled
// events).
type Injector struct {
	Net  *netsim.Network
	seed int64

	// prev chains a pre-existing Network.Loss hook: the injector composes
	// onto it rather than replacing it.
	prev func(from, to *netsim.Iface, pkt *packet.Packet) bool

	perLink map[*netsim.Link]*lossModel
	global  *lossModel
	// pairs holds each directed pair's private rand stream and channel
	// state, created eagerly at model-install time (delivery only reads).
	pairs map[pairKey]*pairState

	// partitioned remembers the links Partition took down, so Heal can
	// restore exactly that set.
	partitioned []*netsim.Link
}

// New installs a fault injector on the network, composing with any loss hook
// already present (the previous hook is consulted first).
func New(net *netsim.Network, seed int64) *Injector {
	in := &Injector{
		Net:     net,
		seed:    seed,
		prev:    net.Loss,
		perLink: map[*netsim.Link]*lossModel{},
		pairs:   map[pairKey]*pairState{},
	}
	net.Loss = in.loss
	return in
}

// ensurePairs creates the pair streams for every direction of l. The seed
// derives from the link's ID and both endpoints' positions on it — stable
// identities that don't depend on install order or memory layout.
func (in *Injector) ensurePairs(l *netsim.Link) {
	for i, from := range l.Ifaces {
		for j, to := range l.Ifaces {
			if i == j {
				continue
			}
			k := pairKey{from, to}
			if in.pairs[k] == nil {
				seed := parallel.DeriveSeed(in.seed, int64(l.ID), int64(i), int64(j))
				in.pairs[k] = &pairState{rng: rand.New(rand.NewSource(seed))}
			}
		}
	}
}

func (in *Injector) ensureAllPairs() {
	for _, l := range in.Net.Links {
		in.ensurePairs(l)
	}
}

func (in *Injector) loss(from, to *netsim.Iface, pkt *packet.Packet) bool {
	if in.prev != nil && in.prev(from, to, pkt) {
		return true
	}
	lm, gm := in.perLink[from.Link], in.global
	if lm == nil && gm == nil {
		return false
	}
	ps := in.pairs[pairKey{from, to}]
	if ps == nil {
		// An interface joined the link after its model was installed;
		// re-install the model (from a serial phase) to pick it up.
		panic("faults: delivery on a pair with no installed stream")
	}
	if lm != nil && lm.drop(ps, &ps.linkBad, pkt.Protocol) {
		return true
	}
	if gm != nil && gm.drop(ps, &ps.globalBad, pkt.Protocol) {
		return true
	}
	return false
}

// SetBernoulli installs independent per-packet loss at the given rate on one
// link (or on every link when l is nil), replacing any model already on that
// scope. Rate 0 removes the model.
func (in *Injector) SetBernoulli(l *netsim.Link, rate float64, class Class) {
	m := &lossModel{class: class, rate: rate}
	if rate <= 0 {
		m = nil
	}
	if l == nil {
		in.global = m
		if m != nil {
			in.ensureAllPairs()
		}
		return
	}
	if m == nil {
		delete(in.perLink, l)
		return
	}
	in.perLink[l] = m
	in.ensurePairs(l)
}

// SetGilbert installs the two-state burst-loss model on one link (or every
// link when l is nil), replacing any model already on that scope.
func (in *Injector) SetGilbert(l *netsim.Link, p GilbertParams, class Class) {
	m := &lossModel{class: class, gilbert: &p}
	if l == nil {
		in.global = m
		in.ensureAllPairs()
		return
	}
	in.perLink[l] = m
	in.ensurePairs(l)
}

// ClearLoss removes every installed loss model. Scheduled flaps and an
// active partition are unaffected.
func (in *Injector) ClearLoss() {
	in.global = nil
	in.perLink = map[*netsim.Link]*lossModel{}
}

// Flap schedules cycles of link down/up starting at `first` from now: the
// link goes down for downFor, comes back up for upFor, repeated `cycles`
// times (ending up). Cycles <= 0 schedules nothing.
func (in *Injector) Flap(l *netsim.Link, first, downFor, upFor netsim.Time, cycles int) {
	sched := in.Net.Sched
	at := first
	for c := 0; c < cycles; c++ {
		sched.After(at, func() { in.Net.SetLinkUp(l, false) })
		sched.After(at+downFor, func() { in.Net.SetLinkUp(l, true) })
		at += downFor + upFor
	}
}

// Partition takes the given cut set of links down at once, splitting the
// network; Heal restores them. A second Partition before Heal extends the
// remembered set.
func (in *Injector) Partition(links ...*netsim.Link) {
	for _, l := range links {
		if l.Up() {
			in.Net.SetLinkUp(l, false)
			in.partitioned = append(in.partitioned, l)
		}
	}
}

// Heal brings every partitioned link back up.
func (in *Injector) Heal() {
	for _, l := range in.partitioned {
		in.Net.SetLinkUp(l, true)
	}
	in.partitioned = nil
}

// CrashRouter fail-stops a router: every interface of the node goes down
// (neighbors see the loss through unicast routing, per §3.8) and every
// engine running on it is stopped, discarding all protocol soft state.
// Package-level because crashing needs no loss state — an Injector is not
// required to kill a router.
func CrashRouter(net *netsim.Network, nd *netsim.Node, engines ...Lifecycle) {
	for _, e := range engines {
		e.Stop()
	}
	for _, ifc := range nd.Ifaces {
		net.SetIfaceUp(ifc, false)
	}
}

// RestartRouter brings a crashed router back: interfaces come up and every
// engine restarts empty, rebuilding purely from soft-state refresh.
func RestartRouter(net *netsim.Network, nd *netsim.Node, engines ...Lifecycle) {
	for _, ifc := range nd.Ifaces {
		net.SetIfaceUp(ifc, true)
	}
	for _, e := range engines {
		e.Restart()
	}
}

// CrashRouter is the Injector convenience form of the package function.
func (in *Injector) CrashRouter(nd *netsim.Node, engines ...Lifecycle) {
	CrashRouter(in.Net, nd, engines...)
}

// RestartRouter is the Injector convenience form of the package function.
func (in *Injector) RestartRouter(nd *netsim.Node, engines ...Lifecycle) {
	RestartRouter(in.Net, nd, engines...)
}
