// Package faults is the fault-injection layer over the netsim substrate: it
// composes deterministic, seedable fault models — per-link Bernoulli and
// burst (Gilbert two-state) loss, bounded message reordering, scheduled
// link flapping, network partition/heal, and fail-stop router crash/restart
// — onto a running simulation.
//
// The paper's robustness claim (§2, §3.8) is that PIM keeps only
// timer-refreshed soft state and therefore survives lost control messages,
// link failures, and router restarts without any reliability machinery. The
// recovery experiment (internal/experiments/recovery.go) and the scenario
// verbs (internal/script: loss/flap/crash/restart/partition/heal) drive the
// protocols through exactly those faults using this package.
//
// Determinism: the Injector owns one rand stream per directed interface
// pair, seeded from the construction seed and the pair's stable identity
// (link ID plus both endpoints' positions on the link). Loss decisions for
// a pair are consumed in that pair's delivery order, which the scheduler
// makes deterministic, and distinct pairs never share a stream — so a run
// with a given seed is bit-reproducible regardless of how deliveries from
// different links interleave. That last property is what lets the sharded
// simulation core replay identical loss patterns at any shard count: each
// pair's deliveries execute on one shard, in an order the determinism
// argument of internal/netsim fixes, while a single shared stream would
// observe the (varying) global interleaving.
//
// Pair streams are pre-populated when a model is installed, never lazily
// during delivery, so concurrently executing shards only read the maps.
// Install mutators (SetBernoulli, SetGilbert, ClearLoss) must run in a
// serial phase: setup code or a scheduled event on the root scheduler.
package faults

import (
	"math/rand"

	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/parallel"
)

// Class selects which packets a loss model applies to, using the control /
// data split of the paper's overhead ledger (netsim.IsData).
type Class int

// Loss classes.
const (
	All Class = iota
	ControlOnly
	DataOnly
)

func (c Class) matches(proto byte) bool {
	switch c {
	case ControlOnly:
		return !netsim.IsData(proto)
	case DataOnly:
		return netsim.IsData(proto)
	default:
		return true
	}
}

// GilbertParams parameterizes the two-state burst-loss model: the channel
// alternates between a good and a bad state with the given per-packet
// transition probabilities, dropping packets at LossGood / LossBad in the
// respective states. Classic bursty links have small PGoodBad, larger
// PBadGood, LossGood ~ 0, LossBad near 1.
type GilbertParams struct {
	PGoodBad float64 // P(good -> bad) evaluated per consulted packet
	PBadGood float64 // P(bad -> good)
	LossGood float64 // drop probability in the good state
	LossBad  float64 // drop probability in the bad state
}

// lossModel is one installed loss process (per link or global). The model
// itself is immutable once installed; mutable channel state (the rand
// stream, the Gilbert good/bad bit) lives per directed pair in pairState.
type lossModel struct {
	class Class
	// bernoulli rate when gilbert is nil.
	rate    float64
	gilbert *GilbertParams
}

func (m *lossModel) drop(ps *pairState, bad *bool, proto byte) bool {
	if !m.class.matches(proto) {
		return false
	}
	if m.gilbert == nil {
		return m.rate > 0 && ps.rng.Float64() < m.rate
	}
	// Advance the channel, then sample the state's loss rate.
	if *bad {
		if ps.rng.Float64() < m.gilbert.PBadGood {
			*bad = false
		}
	} else if ps.rng.Float64() < m.gilbert.PGoodBad {
		*bad = true
	}
	p := m.gilbert.LossGood
	if *bad {
		p = m.gilbert.LossBad
	}
	return p > 0 && ps.rng.Float64() < p
}

// pairKey identifies one direction of one link.
type pairKey struct{ from, to *netsim.Iface }

// pairState is the mutable loss state of one directed pair: its private
// rand stream plus the Gilbert channel bits for the link-scoped and
// global-scoped models.
type pairState struct {
	rng       *rand.Rand
	linkBad   bool
	globalBad bool
}

// Lifecycle is the crash/restart surface of a protocol engine (implemented
// by the five multicast engines and the IGMP querier). Stop detaches the
// instance and discards all of its soft state; Restart brings it back empty,
// to be rebuilt purely from periodic refresh.
type Lifecycle interface {
	Stop()
	Restart()
}

// Injector owns the fault state of one simulation. Construct with New; all
// mutators may be called at any simulated time (typically from scheduled
// events).
type Injector struct {
	Net  *netsim.Network
	seed int64

	// prev chains a pre-existing Network.Loss hook: the injector composes
	// onto it rather than replacing it; prevJitter does the same for the
	// Network.Jitter hook (contributions are summed).
	prev       func(from, to *netsim.Iface, pkt *packet.Packet) bool
	prevJitter func(from *netsim.Iface, pkt *packet.Packet) netsim.Time

	perLink map[*netsim.Link]*lossModel
	global  *lossModel
	// pairs holds each directed pair's private rand stream and channel
	// state, created eagerly at model-install time (delivery only reads).
	pairs map[pairKey]*pairState

	// reorderLink / reorderGlobal are the installed reorder models;
	// reorderStreams holds one private rand stream per transmitting
	// interface, created eagerly at install time like the loss pair streams.
	reorderLink    map[*netsim.Link]*reorderModel
	reorderGlobal  *reorderModel
	reorderStreams map[*netsim.Iface]*rand.Rand

	// partitioned remembers the links Partition took down, so Heal can
	// restore exactly that set.
	partitioned []*netsim.Link
}

// New installs a fault injector on the network, composing with any loss hook
// already present (the previous hook is consulted first).
func New(net *netsim.Network, seed int64) *Injector {
	in := &Injector{
		Net:            net,
		seed:           seed,
		prev:           net.Loss,
		prevJitter:     net.Jitter,
		perLink:        map[*netsim.Link]*lossModel{},
		pairs:          map[pairKey]*pairState{},
		reorderLink:    map[*netsim.Link]*reorderModel{},
		reorderStreams: map[*netsim.Iface]*rand.Rand{},
	}
	net.Loss = in.loss
	net.Jitter = in.jitter
	return in
}

// ensurePairs creates the pair streams for every direction of l. The seed
// derives from the link's ID and both endpoints' positions on it — stable
// identities that don't depend on install order or memory layout.
func (in *Injector) ensurePairs(l *netsim.Link) {
	for i, from := range l.Ifaces {
		for j, to := range l.Ifaces {
			if i == j {
				continue
			}
			k := pairKey{from, to}
			if in.pairs[k] == nil {
				seed := parallel.DeriveSeed(in.seed, int64(l.ID), int64(i), int64(j))
				in.pairs[k] = &pairState{rng: rand.New(rand.NewSource(seed))}
			}
		}
	}
}

func (in *Injector) ensureAllPairs() {
	for _, l := range in.Net.Links {
		in.ensurePairs(l)
	}
}

func (in *Injector) loss(from, to *netsim.Iface, pkt *packet.Packet) bool {
	if in.prev != nil && in.prev(from, to, pkt) {
		return true
	}
	lm, gm := in.perLink[from.Link], in.global
	if lm == nil && gm == nil {
		return false
	}
	ps := in.pairs[pairKey{from, to}]
	if ps == nil {
		// An interface joined the link after its model was installed;
		// re-install the model (from a serial phase) to pick it up.
		panic("faults: delivery on a pair with no installed stream")
	}
	if lm != nil && lm.drop(ps, &ps.linkBad, pkt.Protocol) {
		return true
	}
	if gm != nil && gm.drop(ps, &ps.globalBad, pkt.Protocol) {
		return true
	}
	return false
}

// SetBernoulli installs independent per-packet loss at the given rate on one
// link (or on every link when l is nil), replacing any model already on that
// scope. Rate 0 removes the model.
func (in *Injector) SetBernoulli(l *netsim.Link, rate float64, class Class) {
	m := &lossModel{class: class, rate: rate}
	if rate <= 0 {
		m = nil
	}
	if l == nil {
		in.global = m
		if m != nil {
			in.ensureAllPairs()
		}
		return
	}
	if m == nil {
		delete(in.perLink, l)
		return
	}
	in.perLink[l] = m
	in.ensurePairs(l)
}

// SetGilbert installs the two-state burst-loss model on one link (or every
// link when l is nil), replacing any model already on that scope.
func (in *Injector) SetGilbert(l *netsim.Link, p GilbertParams, class Class) {
	m := &lossModel{class: class, gilbert: &p}
	if l == nil {
		in.global = m
		in.ensureAllPairs()
		return
	}
	in.perLink[l] = m
	in.ensurePairs(l)
}

// ClearLoss removes every installed loss model. Scheduled flaps, reorder
// models, and an active partition are unaffected.
func (in *Injector) ClearLoss() {
	in.global = nil
	in.perLink = map[*netsim.Link]*lossModel{}
}

// reorderModel is one installed message-reorder process: matching frames
// sent onto the scope's link(s) get uniform extra propagation delay in
// [0, window], so back-to-back transmissions from one station can overtake
// each other — the classic LAN reordering that soft-state protocols must
// tolerate (a prune heard after the join that was sent to override it, a
// graft overtaken by the retransmission timer's copy, ...).
type reorderModel struct {
	class  Class
	window netsim.Time
}

// reorderSalt separates the reorder streams' seed space from the loss pair
// streams' (which derive from the same injector seed).
const reorderSalt = 0x5eed4e02

// ensureReorderStreams creates the per-transmitting-interface rand streams
// for l. Seeds derive from the link ID and the interface's position on the
// link — stable identities independent of install order and memory layout,
// exactly like the loss pair streams. One iface transmits from exactly one
// shard, so per-iface streams keep sharded runs race-free and make the
// jitter sequence a function of that iface's send order alone, which the
// scheduler's determinism argument fixes for any shard count.
func (in *Injector) ensureReorderStreams(l *netsim.Link) {
	for i, from := range l.Ifaces {
		if in.reorderStreams[from] == nil {
			seed := parallel.DeriveSeed(in.seed, reorderSalt, int64(l.ID), int64(i))
			in.reorderStreams[from] = rand.New(rand.NewSource(seed))
		}
	}
}

// jitter is the Network.Jitter hook: one draw per matching transmission from
// the sender's private stream.
func (in *Injector) jitter(from *netsim.Iface, pkt *packet.Packet) netsim.Time {
	var j netsim.Time
	if in.prevJitter != nil {
		j = in.prevJitter(from, pkt)
	}
	lm, gm := in.reorderLink[from.Link], in.reorderGlobal
	if lm == nil && gm == nil {
		return j
	}
	rng := in.reorderStreams[from]
	if rng == nil {
		// An interface joined the link after the model was installed;
		// re-install the model (from a serial phase) to pick it up.
		panic("faults: transmission on an iface with no reorder stream")
	}
	if lm != nil && lm.class.matches(pkt.Protocol) {
		j += netsim.Time(rng.Int63n(int64(lm.window) + 1))
	}
	if gm != nil && gm.class.matches(pkt.Protocol) {
		j += netsim.Time(rng.Int63n(int64(gm.window) + 1))
	}
	return j
}

// SetReorder installs bounded message reordering on one link (or on every
// link when l is nil), replacing any reorder model already on that scope:
// each matching frame is delayed by a seeded uniform draw from [0, window]
// on top of the link's propagation delay. Window 0 removes the model.
// Like the loss installers, SetReorder must run in a serial phase (setup
// code or a root-scheduler action).
func (in *Injector) SetReorder(l *netsim.Link, window netsim.Time, class Class) {
	m := &reorderModel{class: class, window: window}
	if window <= 0 {
		m = nil
	}
	if l == nil {
		in.reorderGlobal = m
		if m != nil {
			for _, link := range in.Net.Links {
				in.ensureReorderStreams(link)
			}
		}
		return
	}
	if m == nil {
		delete(in.reorderLink, l)
		return
	}
	in.reorderLink[l] = m
	in.ensureReorderStreams(l)
}

// ClearReorder removes every installed reorder model.
func (in *Injector) ClearReorder() {
	in.reorderGlobal = nil
	in.reorderLink = map[*netsim.Link]*reorderModel{}
}

// Flap schedules cycles of link down/up starting at `first` from now: the
// link goes down for downFor, comes back up for upFor, repeated `cycles`
// times (ending up). Cycles <= 0 schedules nothing.
func (in *Injector) Flap(l *netsim.Link, first, downFor, upFor netsim.Time, cycles int) {
	sched := in.Net.Sched
	at := first
	for c := 0; c < cycles; c++ {
		sched.After(at, func() { in.Net.SetLinkUp(l, false) })
		sched.After(at+downFor, func() { in.Net.SetLinkUp(l, true) })
		at += downFor + upFor
	}
}

// Partition takes the given cut set of links down at once, splitting the
// network; Heal restores them. A second Partition before Heal extends the
// remembered set.
func (in *Injector) Partition(links ...*netsim.Link) {
	for _, l := range links {
		if l.Up() {
			in.Net.SetLinkUp(l, false)
			in.partitioned = append(in.partitioned, l)
		}
	}
}

// Heal brings every partitioned link back up.
func (in *Injector) Heal() {
	for _, l := range in.partitioned {
		in.Net.SetLinkUp(l, true)
	}
	in.partitioned = nil
}

// CrashRouter fail-stops a router: every interface of the node goes down
// (neighbors see the loss through unicast routing, per §3.8) and every
// engine running on it is stopped, discarding all protocol soft state.
// Package-level because crashing needs no loss state — an Injector is not
// required to kill a router.
func CrashRouter(net *netsim.Network, nd *netsim.Node, engines ...Lifecycle) {
	for _, e := range engines {
		e.Stop()
	}
	for _, ifc := range nd.Ifaces {
		net.SetIfaceUp(ifc, false)
	}
}

// RestartRouter brings a crashed router back: interfaces come up and every
// engine restarts empty, rebuilding purely from soft-state refresh.
func RestartRouter(net *netsim.Network, nd *netsim.Node, engines ...Lifecycle) {
	for _, ifc := range nd.Ifaces {
		net.SetIfaceUp(ifc, true)
	}
	for _, e := range engines {
		e.Restart()
	}
}

// CrashRouter is the Injector convenience form of the package function.
func (in *Injector) CrashRouter(nd *netsim.Node, engines ...Lifecycle) {
	CrashRouter(in.Net, nd, engines...)
}

// RestartRouter is the Injector convenience form of the package function.
func (in *Injector) RestartRouter(nd *netsim.Node, engines ...Lifecycle) {
	RestartRouter(in.Net, nd, engines...)
}
