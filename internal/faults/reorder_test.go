package faults

import (
	"fmt"
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
)

// sendNumbered pumps n numbered UDP packets from a in one burst; the
// receiver handler must record arrival order.
func sendNumbered(a *netsim.Node, n int) {
	for i := 0; i < n; i++ {
		pkt := packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, []byte{byte(i)})
		a.Send(a.Ifaces[0], pkt, 0)
	}
}

func TestReorderShufflesWithinWindow(t *testing.T) {
	n := netsim.NewNetwork()
	a := n.AddNode("a")
	b := n.AddNode("b")
	ai := n.AddIface(a, addr.V4(10, 0, 0, 1))
	bi := n.AddIface(b, addr.V4(10, 0, 0, 2))
	l := n.Connect(ai, bi, netsim.Millisecond)
	var order []int
	var last netsim.Time
	b.Handle(packet.ProtoUDP, netsim.HandlerFunc(func(in *netsim.Iface, pkt *packet.Packet) {
		order = append(order, int(pkt.Payload[0]))
		last = n.Sched.Now()
	}))
	in := New(n, 42)
	const window = 10 * netsim.Millisecond
	in.SetReorder(l, window, All)
	const N = 64
	sendNumbered(a, N)
	n.Sched.RunUntil(netsim.Second)
	if len(order) != N {
		t.Fatalf("delivered %d of %d (reorder must not drop)", len(order), N)
	}
	inOrder := true
	for i, v := range order {
		if v != i {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("64 same-instant sends arrived in order under a 10ms reorder window")
	}
	if max := netsim.Millisecond + window; last > max {
		t.Fatalf("last delivery at %v exceeds delay+window bound %v", last, max)
	}
}

func TestReorderDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		n := netsim.NewNetwork()
		a := n.AddNode("a")
		b := n.AddNode("b")
		ai := n.AddIface(a, addr.V4(10, 0, 0, 1))
		bi := n.AddIface(b, addr.V4(10, 0, 0, 2))
		l := n.Connect(ai, bi, netsim.Millisecond)
		var log string
		b.Handle(packet.ProtoUDP, netsim.HandlerFunc(func(in *netsim.Iface, pkt *packet.Packet) {
			log += fmt.Sprintf("%d@%d ", pkt.Payload[0], n.Sched.Now())
		}))
		New(n, 17).SetReorder(l, 5*netsim.Millisecond, All)
		sendNumbered(a, 100)
		n.Sched.RunUntil(netsim.Second)
		return log
	}
	if x, y := run(), run(); x != y {
		t.Fatalf("same seed produced different delivery orders:\n%s\nvs\n%s", x, y)
	}
}

func TestReorderClassFilterLeavesDataOrdered(t *testing.T) {
	n, a, _, l, _ := twoNodes(t)
	var dataOrder, ctrlOrder []int
	nb := n.Nodes[1]
	nb.Handle(packet.ProtoUDP, netsim.HandlerFunc(func(in *netsim.Iface, pkt *packet.Packet) {
		dataOrder = append(dataOrder, int(pkt.Payload[0]))
	}))
	nb.Handle(packet.ProtoPIM, netsim.HandlerFunc(func(in *netsim.Iface, pkt *packet.Packet) {
		ctrlOrder = append(ctrlOrder, int(pkt.Payload[0]))
	}))
	in := New(n, 9)
	in.SetReorder(l, 20*netsim.Millisecond, ControlOnly)
	for i := 0; i < 32; i++ {
		a.Send(a.Ifaces[0], packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, []byte{byte(i)}), 0)
		a.Send(a.Ifaces[0], packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoPIM, []byte{byte(i)}), 0)
	}
	n.Sched.RunUntil(netsim.Second)
	for i, v := range dataOrder {
		if v != i {
			t.Fatalf("control-only reorder shuffled data: %v", dataOrder)
		}
	}
	ctrlShuffled := false
	for i, v := range ctrlOrder {
		if v != i {
			ctrlShuffled = true
			break
		}
	}
	if !ctrlShuffled {
		t.Fatal("control packets stayed in order under a 20ms control-only window")
	}
}

func TestReorderClearRestoresOrder(t *testing.T) {
	n := netsim.NewNetwork()
	a := n.AddNode("a")
	b := n.AddNode("b")
	ai := n.AddIface(a, addr.V4(10, 0, 0, 1))
	bi := n.AddIface(b, addr.V4(10, 0, 0, 2))
	l := n.Connect(ai, bi, netsim.Millisecond)
	var order []int
	b.Handle(packet.ProtoUDP, netsim.HandlerFunc(func(in *netsim.Iface, pkt *packet.Packet) {
		order = append(order, int(pkt.Payload[0]))
	}))
	in := New(n, 4)
	in.SetReorder(l, 10*netsim.Millisecond, All)
	in.SetReorder(l, 0, All) // window 0 removes the scope's model
	in.SetReorder(nil, 10*netsim.Millisecond, All)
	in.ClearReorder()
	sendNumbered(a, 32)
	n.Sched.RunUntil(netsim.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("cleared reorder still shuffles: %v", order)
		}
	}
}

// reorderChainLogs runs a 4-node chain under global reordering at the given
// shard count and returns each node's receive log. Every node pumps bursts
// toward the chain end; the logs are the determinism witness.
func reorderChainLogs(t *testing.T, shards int) []string {
	t.Helper()
	n := netsim.NewNetwork()
	const N = 4
	nodes := make([]*netsim.Node, N)
	for i := range nodes {
		nodes[i] = n.AddNode(fmt.Sprintf("r%d", i))
		n.AddIface(nodes[i], addr.V4(10, byte(i), 0, 1))
		n.AddIface(nodes[i], addr.V4(10, byte(i), 0, 2))
	}
	for i := 0; i+1 < N; i++ {
		n.Connect(nodes[i].Ifaces[1], nodes[i+1].Ifaces[0], 10)
	}
	in := New(n, 23)
	in.SetReorder(nil, 40, All) // install before sharding: serial phase
	if shards > 1 {
		n.Shard(shards, func(nd *netsim.Node) int {
			return nd.ID * shards / N
		})
	}
	logs := make([]string, N)
	for i := range nodes {
		i := i
		nd := nodes[i]
		nd.Handle(packet.ProtoUDP, netsim.HandlerFunc(func(in *netsim.Iface, pkt *packet.Packet) {
			logs[i] += fmt.Sprintf("%d@%d ", pkt.Payload[0], nd.Sched().Now())
			// Forward rightwards so frames cross shard boundaries.
			if nd.ID+1 < N {
				fwd := packet.New(pkt.Src, pkt.Dst, packet.ProtoUDP, []byte{pkt.Payload[0]})
				nd.Send(nd.Ifaces[1], fwd, 0)
			}
		}))
	}
	for i := 0; i+1 < N; i++ {
		nd := nodes[i]
		sched := nd.Sched()
		for k := 0; k < 20; k++ {
			k := k
			nd := nd
			sched.At(netsim.Time(k*5), func() {
				pkt := packet.New(nd.Ifaces[1].Addr, addr.V4(10, 9, 0, 1), packet.ProtoUDP, []byte{byte(k)})
				nd.Send(nd.Ifaces[1], pkt, 0)
			})
		}
	}
	n.Sched.RunUntil(5 * netsim.Second)
	return logs
}

// TestReorderDeterministicAcrossShards pins the primitive's core guarantee:
// per-transmitting-interface streams make the jitter sequence a function of
// each sender's own send order, so the delivery schedule is bit-identical
// at any shard count.
func TestReorderDeterministicAcrossShards(t *testing.T) {
	base := reorderChainLogs(t, 1)
	for _, shards := range []int{2, 4} {
		got := reorderChainLogs(t, shards)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("shards=%d node %d log diverged:\nseq: %s\nshd: %s",
					shards, i, base[i], got[i])
			}
		}
	}
}

// --- Gilbert boundary transitions (satellite: p=0 / p=1 edges) ---

// TestGilbertPOneAlternatesDeterministically pins the p=1 boundary: with
// both transition probabilities 1 the channel flips state on every consulted
// packet, so LossBad=1/LossGood=0 drops exactly every other packet starting
// with the first — independent of the seed.
func TestGilbertPOneAlternatesDeterministically(t *testing.T) {
	for _, seed := range []int64{1, 99, 12345} {
		n, a, _, l, got := twoNodes(t)
		in := New(n, seed)
		in.SetGilbert(l, GilbertParams{PGoodBad: 1, PBadGood: 1, LossGood: 0, LossBad: 1}, All)
		const N = 10
		for i := 0; i < N; i++ {
			a.Send(a.Ifaces[0], packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8)), 0)
		}
		n.Sched.RunUntil(netsim.Second)
		if *got != N/2 {
			t.Fatalf("seed %d: alternating channel delivered %d of %d, want exactly %d",
				seed, *got, N, N/2)
		}
	}
}

// TestGilbertPZeroNeverLeavesGood pins the p=0 boundary: PGoodBad=0 can
// never enter the bad state, so even LossBad=1 drops nothing.
func TestGilbertPZeroNeverLeavesGood(t *testing.T) {
	n, a, _, l, got := twoNodes(t)
	in := New(n, 7)
	in.SetGilbert(l, GilbertParams{PGoodBad: 0, PBadGood: 0, LossGood: 0, LossBad: 1}, All)
	const N = 200
	for i := 0; i < N; i++ {
		a.Send(a.Ifaces[0], packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8)), 0)
	}
	n.Sched.RunUntil(netsim.Second)
	if *got != N {
		t.Fatalf("PGoodBad=0 channel dropped packets: delivered %d of %d", *got, N)
	}
}

// TestGilbertAbsorbingBadState pins the other p=0/p=1 corner: PGoodBad=1
// with PBadGood=0 enters the bad state on the first packet and never
// leaves, so LossBad=1 drops everything.
func TestGilbertAbsorbingBadState(t *testing.T) {
	n, a, _, l, got := twoNodes(t)
	in := New(n, 11)
	in.SetGilbert(l, GilbertParams{PGoodBad: 1, PBadGood: 0, LossGood: 0, LossBad: 1}, All)
	const N = 50
	for i := 0; i < N; i++ {
		a.Send(a.Ifaces[0], packet.New(a.Ifaces[0].Addr, addr.V4(10, 0, 0, 2), packet.ProtoUDP, make([]byte, 8)), 0)
	}
	n.Sched.RunUntil(netsim.Second)
	if *got != 0 {
		t.Fatalf("absorbing bad state delivered %d packets, want 0", *got)
	}
	if n.Stats.Drops[netsim.DropInjectedLoss] != N {
		t.Fatalf("drop ledger %v, want %d injected drops", n.Stats.DropsByName(), N)
	}
}
