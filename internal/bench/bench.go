// Package bench is the benchmark registry behind cmd/pimbench. Every
// experiment harness registers one named Spec at package-init time, and
// `pimbench run <name|all>` dispatches through the registry — so wiring a
// new benchmark means writing one Register call next to the experiment
// code, never touching the command or the Makefile (DESIGN.md §15).
//
// The registry owns the two invariants every ledgered benchmark shares:
//
//   - the refuse-to-record gate: a Spec.Run that returns an error (its
//     differential gate failed, its corpus replay regressed) records
//     nothing — queued entries are dropped, the error propagates;
//   - the ledger protocol: entries queued with Context.Append are flushed
//     to a single JSON-array ledger file only after Run returns nil, each
//     stamped with a LedgerHeader so recorded numbers are self-describing.
//
// Smoke runs (Context.Smoke) execute the CI-sized workload and enforce the
// same gates, but never write a ledger regardless of what Run queued.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"pim/internal/netsim"
)

// LedgerHeader is the host/run metadata stamped on every ledger entry of
// every pimbench ledger, so recorded numbers are self-describing: which
// host parallelism, which shard count, and which worker-pool width produced
// them. One helper fills it for all writers.
type LedgerHeader struct {
	Label     string `json:"label"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) — the scheduling width actually
	// available, which bounds any speedup a sharded or worker-fanned run
	// can show on this host.
	GoMaxProcs int `json:"go_max_procs"`
	// Shards is the simulation shard count in effect (1 = sequential).
	Shards int `json:"shards"`
	// Workers is the experiment worker-pool width (trial fan-out).
	Workers int `json:"workers"`
	// FramePool records whether the pooled netsim frame path was on.
	FramePool bool `json:"frame_pool"`
	// GC figures at stamp time (i.e. after the measured work): cumulative
	// collection count, total stop-the-world pause, and live heap. They make
	// every ledger's numbers interpretable as "how hard was the collector
	// working when this was recorded".
	NumGC          uint32 `json:"num_gc"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
}

// NewHeader stamps a ledger header for the current process configuration.
func NewHeader(label string) LedgerHeader {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return LedgerHeader{
		Label:          label,
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Shards:         netsim.Shards(),
		Workers:        runtime.GOMAXPROCS(0),
		FramePool:      netsim.UseFramePool(),
		NumGC:          ms.NumGC,
		GCPauseTotalNs: ms.PauseTotalNs,
		HeapAllocBytes: ms.HeapAlloc,
	}
}

// Context carries one invocation's knobs into a benchmark and collects the
// ledger entries it produces. The flag surface of cmd/pimbench maps onto
// these fields; benchmarks read only what they need.
type Context struct {
	// Label tags the ledger entries (e.g. "seed", "after-solver").
	Label string
	// Smoke selects the CI-sized workload: the gates run, nothing records.
	Smoke bool
	// Out overrides the Spec's default ledger path ("" = use Spec.Ledger).
	// For benchmarks that write a report file instead of a ledger
	// (telemetry), it is the report path.
	Out string
	// Shards is the requested simulation shard count (1 = sequential).
	Shards int
	// Seed, Budget, Workers parameterize search-style benchmarks.
	Seed    int64
	Budget  int
	Workers int
	// CorpusDir is the counterexample corpus to replay before a fault
	// search ("" = skip); EmitDir receives newly found counterexamples.
	CorpusDir string
	EmitDir   string
	// Logf receives human progress lines (nil = silent).
	Logf func(format string, a ...interface{})

	entries []any
}

// Printf logs a progress line through Logf, if set.
func (c *Context) Printf(format string, a ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, a...)
	}
}

// Header stamps a ledger header labelled Label+suffix.
func (c *Context) Header(suffix string) LedgerHeader {
	return NewHeader(c.Label + suffix)
}

// Append queues one ledger entry. Entries are written only if the
// benchmark's Run returns nil and the run is not a smoke run.
func (c *Context) Append(entry any) { c.entries = append(c.entries, entry) }

// Spec is one registered benchmark.
type Spec struct {
	// Summary is the one-line description `pimbench list` prints.
	Summary string
	// Ledger is the default ledger file entries append to ("" = the
	// benchmark writes no ledger).
	Ledger string
	// Run executes the benchmark: measure, print, gate, and queue entries
	// via Context.Append. Returning an error refuses the record — nothing
	// queued is written — and fails the invocation.
	Run func(*Context) error
}

var registry = map[string]Spec{}

// Register adds a named benchmark. It panics on a duplicate or empty name
// or a nil Run — registration bugs are programmer errors caught at init.
func Register(name string, s Spec) {
	if name == "" || s.Run == nil {
		panic("bench: Register needs a name and a Run func")
	}
	if _, dup := registry[name]; dup {
		panic("bench: duplicate benchmark " + name)
	}
	registry[name] = s
}

// Names lists the registered benchmarks, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns a registered Spec.
func Get(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Run dispatches one benchmark by name: execute its Spec.Run, and — unless
// it errored, the run is smoke, or nothing was queued — flush the queued
// entries to the ledger (ctx.Out, defaulting to Spec.Ledger).
func Run(name string, ctx *Context) error {
	spec, ok := registry[name]
	if !ok {
		return fmt.Errorf("bench: unknown benchmark %q (have %v)", name, Names())
	}
	ctx.entries = nil
	if err := spec.Run(ctx); err != nil {
		return err
	}
	if ctx.Smoke || len(ctx.entries) == 0 {
		return nil
	}
	out := ctx.Out
	if out == "" {
		out = spec.Ledger
	}
	if out == "" {
		return nil
	}
	n, err := appendEntries(out, ctx.entries)
	if err != nil {
		return err
	}
	for range ctx.entries {
		ctx.Printf("appended %q entry to %s (%d entries)", ctx.Label, out, n)
	}
	return nil
}

// appendEntries appends records to a JSON-array ledger file, preserving
// existing entries of any shape, and returns the new ledger length.
func appendEntries(out string, entries []any) (int, error) {
	var ledger []json.RawMessage
	if data, err := os.ReadFile(out); err == nil && len(bytes.TrimSpace(data)) > 0 {
		if err := json.Unmarshal(data, &ledger); err != nil {
			return 0, fmt.Errorf("%s exists but is not a valid ledger: %v", out, err)
		}
	}
	for _, e := range entries {
		raw, err := json.Marshal(e)
		if err != nil {
			return 0, err
		}
		ledger = append(ledger, raw)
	}
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return 0, err
	}
	return len(ledger), nil
}
