package bench_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pim/internal/bench"

	// The real registrations, exactly as cmd/pimbench links them.
	_ "pim/internal/experiments"
	_ "pim/internal/faultsearch"
)

// TestRegistryCoversEveryBenchmark pins the `pimbench run all` surface:
// every benchmark the Makefile and EXPERIMENTS.md reference must be
// registered, each with a summary, and the ledgered ones with their ledger
// path. A registration dropped in a refactor fails here, not at the first
// CI smoke run.
func TestRegistryCoversEveryBenchmark(t *testing.T) {
	want := map[string]string{
		"fig2":        "BENCH_fig2.json",
		"dataplane":   "BENCH_dataplane.json",
		"recovery":    "BENCH_recovery.json",
		"scaling":     "BENCH_scale.json",
		"tenk":        "BENCH_scale.json",
		"ctrlplane":   "BENCH_ctrlplane.json",
		"stateplane":  "BENCH_stateplane.json",
		"faultsearch": "BENCH_faultsearch.json",
		"telemetry":   "", // report file, no ledger
	}
	names := bench.Names()
	real := 0
	for _, n := range names {
		if n != "selftest" { // this test file's own fixture
			real++
		}
	}
	if real != len(want) {
		t.Errorf("registry holds %v, want exactly %d benchmarks", names, len(want))
	}
	for name, ledger := range want {
		spec, ok := bench.Get(name)
		if !ok {
			t.Errorf("benchmark %q not registered", name)
			continue
		}
		if spec.Summary == "" {
			t.Errorf("%q has no summary", name)
		}
		if spec.Ledger != ledger {
			t.Errorf("%q ledger = %q, want %q", name, spec.Ledger, ledger)
		}
	}
}

func init() {
	bench.Register("selftest", bench.Spec{
		Summary: "registry unit-test fixture",
		Ledger:  "BENCH_selftest.json",
		Run: func(ctx *bench.Context) error {
			ctx.Printf("running selftest label=%s smoke=%v", ctx.Label, ctx.Smoke)
			if ctx.Budget < 0 {
				return errors.New("gate refused")
			}
			type entry struct {
				bench.LedgerHeader
				Value int `json:"value"`
			}
			ctx.Append(entry{LedgerHeader: ctx.Header("-x"), Value: ctx.Budget})
			return nil
		},
	})
}

func readLedger(t *testing.T, path string) []map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ledger []map[string]any
	if err := json.Unmarshal(data, &ledger); err != nil {
		t.Fatalf("%s is not a ledger: %v", path, err)
	}
	return ledger
}

func TestRunAppendsToLedger(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ledger.json")
	// Pre-existing entries of a foreign shape must survive an append.
	if err := os.WriteFile(out, []byte(`[{"legacy": true}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged bool
	ctx := &bench.Context{Label: "t", Out: out, Budget: 7,
		Logf: func(string, ...interface{}) { logged = true }}
	if err := bench.Run("selftest", ctx); err != nil {
		t.Fatal(err)
	}
	if !logged {
		t.Error("benchmark output did not flow through Logf")
	}
	ledger := readLedger(t, out)
	if len(ledger) != 2 {
		t.Fatalf("ledger has %d entries, want legacy + new", len(ledger))
	}
	if ledger[0]["legacy"] != true {
		t.Error("pre-existing entry not preserved")
	}
	if ledger[1]["value"] != float64(7) || ledger[1]["label"] != "t-x" {
		t.Errorf("appended entry wrong: %v", ledger[1])
	}
	// A second run appends, never truncates.
	if err := bench.Run("selftest", ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(readLedger(t, out)); got != 3 {
		t.Fatalf("ledger has %d entries after second run, want 3", got)
	}
}

func TestGateRefusalRecordsNothing(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ledger.json")
	ctx := &bench.Context{Label: "t", Out: out, Budget: -1}
	if err := bench.Run("selftest", ctx); err == nil {
		t.Fatal("gate refusal did not propagate")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("refused run wrote a ledger")
	}
}

func TestSmokeRecordsNothing(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ledger.json")
	ctx := &bench.Context{Label: "t", Out: out, Smoke: true, Budget: 1}
	if err := bench.Run("selftest", ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("smoke run wrote a ledger")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := bench.Run("no-such-benchmark", &bench.Context{}); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestRunRefusesCorruptLedger(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ledger.json")
	if err := os.WriteFile(out, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := bench.Run("selftest", &bench.Context{Out: out, Budget: 1}); err == nil {
		t.Fatal("corrupt ledger did not refuse the append")
	}
}

func TestHeaderRecordsProcessConfig(t *testing.T) {
	h := bench.NewHeader("lbl")
	if h.Label != "lbl" || h.GoVersion == "" || h.NumCPU < 1 || h.Shards < 1 {
		t.Errorf("header incomplete: %+v", h)
	}
}
