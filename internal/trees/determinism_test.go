package trees

import (
	"reflect"
	"testing"
)

// TestFig2DeterministicAcrossWorkers is the parallel-engine contract: the
// Figure 2 series are bit-identical whether trials run on one worker or
// fanned across eight, because every trial derives its own seed from its
// coordinates and reductions happen sequentially in trial order.
func TestFig2DeterministicAcrossWorkers(t *testing.T) {
	ca := DefaultFig2a()
	ca.Trials = 10
	ca.Degrees = []float64{3, 5}
	ca.Workers = 1
	seqA := RunFig2a(ca)
	for _, w := range []int{2, 8} {
		ca.Workers = w
		if got := RunFig2a(ca); !reflect.DeepEqual(seqA, got) {
			t.Errorf("Fig2a workers=%d diverged:\nseq = %+v\npar = %+v", w, seqA, got)
		}
	}

	cb := DefaultFig2b()
	cb.Trials = 4
	cb.Groups = 40
	cb.Degrees = []float64{3, 5}
	cb.Workers = 1
	seqB := RunFig2b(cb)
	for _, w := range []int{2, 8} {
		cb.Workers = w
		if got := RunFig2b(cb); !reflect.DeepEqual(seqB, got) {
			t.Errorf("Fig2b workers=%d diverged:\nseq = %+v\npar = %+v", w, seqB, got)
		}
	}
}

// TestFig2SeedChangesSeries guards the seed plumbing: a different base seed
// must actually reach the per-trial derived seeds.
func TestFig2SeedChangesSeries(t *testing.T) {
	cfg := DefaultFig2a()
	cfg.Trials = 5
	cfg.Degrees = []float64{4}
	a := RunFig2a(cfg)
	cfg.Seed++
	b := RunFig2a(cfg)
	if reflect.DeepEqual(a, b) {
		t.Error("changing Seed did not change the series")
	}
}
