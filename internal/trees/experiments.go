package trees

import (
	"math"
	"math/rand"

	"pim/internal/parallel"
	"pim/internal/topology"
)

// The Figure 2 sweeps are loops of fully independent trials: each trial
// generates its own random graph and group and reduces to one number. The
// engine below fans trials across a bounded worker pool with per-trial
// derived seeds (parallel.DeriveSeed over degree index and trial number), so
// a trial's randomness is a pure function of its coordinates and the series
// is bit-identical for every Workers value — asserted by
// TestFig2DeterministicAcrossWorkers.

// Fig2aConfig parameterizes the Figure 2(a) sweep. The paper's run used 500
// 50-node graphs per degree with 10-member groups; Trials scales that down
// for quick runs (EXPERIMENTS.md records both).
type Fig2aConfig struct {
	Nodes     int
	GroupSize int
	Trials    int // graphs per node degree
	Degrees   []float64
	Seed      int64
	// MinDelay/MaxDelay set the per-edge delay range (1/1 = hop count).
	MinDelay, MaxDelay int64
	// Workers bounds the trial worker pool: 0 = GOMAXPROCS, 1 = sequential.
	// The results are identical for every value.
	Workers int
}

// DefaultFig2a returns the paper's parameters with a reduced trial count.
func DefaultFig2a() Fig2aConfig {
	return Fig2aConfig{
		Nodes: 50, GroupSize: 10, Trials: 100,
		Degrees: []float64{3, 4, 5, 6, 7, 8},
		Seed:    1994,
	}
}

// Fig2aPoint is one plotted point: the mean and standard deviation of the
// delay ratio at one node degree (the paper's error bars).
type Fig2aPoint struct {
	Degree    float64
	MeanRatio float64
	StdRatio  float64
	MaxRatio  float64
	Trials    int
}

// RunFig2a regenerates the Figure 2(a) series.
func RunFig2a(cfg Fig2aConfig) []Fig2aPoint {
	out := make([]Fig2aPoint, 0, len(cfg.Degrees))
	ratios := make([]float64, cfg.Trials)
	for di, deg := range cfg.Degrees {
		deg := deg
		di := int64(di)
		parallel.For(cfg.Trials, cfg.Workers, func(trial int) {
			rng := rand.New(rand.NewSource(parallel.DeriveSeed(cfg.Seed, di, int64(trial))))
			g := topology.Random(topology.GenConfig{
				Nodes: cfg.Nodes, Degree: deg,
				MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
			}, rng)
			sps := AllRootSP(g)
			members := topology.PickDistinct(cfg.Nodes, cfg.GroupSize, rng)
			ratios[trial] = DelayRatio(g, sps, members)
		})
		// Sequential reduction in trial order keeps the floating-point sums
		// independent of the worker schedule.
		var sum, sumSq, maxR float64
		for _, r := range ratios {
			sum += r
			sumSq += r * r
			if r > maxR {
				maxR = r
			}
		}
		n := float64(cfg.Trials)
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		out = append(out, Fig2aPoint{
			Degree: deg, MeanRatio: mean, StdRatio: math.Sqrt(variance),
			MaxRatio: maxR, Trials: cfg.Trials,
		})
	}
	return out
}

// Fig2bConfig parameterizes the Figure 2(b) sweep. Paper values: 50-node
// networks, 300 groups of 40 members with 32 senders, 500 networks per
// degree, averaged maximum per-link flow count.
type Fig2bConfig struct {
	Nodes     int
	Groups    int
	GroupSize int
	Senders   int
	Trials    int // networks per node degree
	Degrees   []float64
	Seed      int64
	Core      CorePolicy
	// Workers bounds the trial worker pool: 0 = GOMAXPROCS, 1 = sequential.
	// The results are identical for every value.
	Workers int
}

// DefaultFig2b returns the paper's parameters with a reduced trial count.
func DefaultFig2b() Fig2bConfig {
	return Fig2bConfig{
		Nodes: 50, Groups: 300, GroupSize: 40, Senders: 32,
		Trials: 20, Degrees: []float64{3, 4, 5, 6, 7, 8},
		Seed: 1994, Core: CoreEccentricity,
	}
}

// Fig2bPoint is one plotted point: the mean (over networks) of the maximum
// per-link flow count for each tree type.
type Fig2bPoint struct {
	Degree  float64
	SPTMax  float64
	CBTMax  float64
	Trials  int
	CBTOver float64 // concentration factor CBTMax/SPTMax
}

// RunFig2b regenerates the Figure 2(b) series.
func RunFig2b(cfg Fig2bConfig) []Fig2bPoint {
	out := make([]Fig2bPoint, 0, len(cfg.Degrees))
	sptMax := make([]float64, cfg.Trials)
	cbtMax := make([]float64, cfg.Trials)
	for di, deg := range cfg.Degrees {
		deg := deg
		di := int64(di)
		parallel.For(cfg.Trials, cfg.Workers, func(trial int) {
			rng := rand.New(rand.NewSource(parallel.DeriveSeed(cfg.Seed, di, int64(trial))))
			g := topology.Random(topology.GenConfig{Nodes: cfg.Nodes, Degree: deg}, rng)
			sps := AllRootSP(g)
			groups := make([]Group, cfg.Groups)
			for i := range groups {
				groups[i] = Group{
					Members: topology.PickDistinct(cfg.Nodes, cfg.GroupSize, rng),
					Senders: cfg.Senders,
				}
			}
			spt := make(FlowCounts, g.M())
			AddSPTFlows(g, sps, groups, spt)
			cbt := make(FlowCounts, g.M())
			AddCBTFlows(g, sps, groups, cfg.Core, cbt)
			sptMax[trial] = float64(spt.Max())
			cbtMax[trial] = float64(cbt.Max())
		})
		var sptSum, cbtSum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			sptSum += sptMax[trial]
			cbtSum += cbtMax[trial]
		}
		n := float64(cfg.Trials)
		p := Fig2bPoint{Degree: deg, SPTMax: sptSum / n, CBTMax: cbtSum / n, Trials: cfg.Trials}
		if p.SPTMax > 0 {
			p.CBTOver = p.CBTMax / p.SPTMax
		}
		out = append(out, p)
	}
	return out
}
