// Package trees implements the tree-quality analyses behind the paper's
// Figure 2 (§1.3): the comparison of shortest-path trees (SPTs) against
// optimal core-based ("center-based", after Wall [11]) shared trees on
// random graphs, measuring
//
//   - Figure 2(a): the ratio of maximum intra-group delay over the optimal
//     core-based tree to the maximum delay over shortest paths ("the
//     maximum delays of core-based trees with optimal core placement are up
//     to 1.4 times of the shortest-path trees"), and
//   - Figure 2(b): traffic concentration — the maximum number of traffic
//     flows carried by any single link when many multi-sender groups use
//     shared trees versus per-source SPTs ("it is clear from this
//     experiment that CBT exhibits greater traffic concentrations").
//
// The original data came from the USC simulator of Wei and Estrin [12];
// this package reimplements the stated algorithms from the figure captions
// (DESIGN.md §4).
package trees

import (
	"math"

	"pim/internal/topology"
)

// Group is one multicast group for the flow analyses: Members indexes graph
// nodes; the first Senders of them also transmit (Figure 2(b): "300 active
// groups all having 40 members, of which 32 members were also senders").
type Group struct {
	Members []int
	Senders int
}

// AllRootSP precomputes single-source shortest paths from every node,
// shared by the core search and the per-sender SPT construction. One solver
// serves all roots so the scratch state (visited marks, heap) is paid once.
func AllRootSP(g *topology.Graph) []*topology.ShortestPaths {
	out := make([]*topology.ShortestPaths, g.N())
	solver := g.NewSolver()
	for v := 0; v < g.N(); v++ {
		out[v] = solver.Solve(v)
	}
	return out
}

// MaxPairShortestDelay is the max over ordered member pairs of the
// shortest-path delay — the worst delay any member sees from any other
// member when per-source SPTs deliver the traffic.
func MaxPairShortestDelay(sps []*topology.ShortestPaths, members []int) int64 {
	var max int64
	for _, u := range members {
		for _, v := range members {
			if u == v {
				continue
			}
			if d := sps[u].Dist[v]; d > max {
				max = d
			}
		}
	}
	return max
}

// TreeMaxPairDelay is the max over member pairs of the delay through the
// shared tree.
func TreeMaxPairDelay(t *topology.Tree, members []int) int64 {
	var max int64
	for i, u := range members {
		for _, v := range members[i+1:] {
			if d := t.DistInTree(u, v); d > max {
				max = d
			}
		}
	}
	return max
}

// CorePolicy selects how the core router of a shared tree is placed.
type CorePolicy int

const (
	// CorePairwiseOptimal tries every node as core and keeps the one whose
	// tree minimizes the maximum member-pair delay — the "optimal core
	// placement" of Figure 2(a). O(N) tree constructions per group.
	CorePairwiseOptimal CorePolicy = iota
	// CoreEccentricity picks the node minimizing the maximum shortest-path
	// distance to any member (the classic graph center), a cheaper
	// placement used for the large Figure 2(b) sweeps.
	CoreEccentricity
	// CoreRandomMember roots the tree at the first member — the naive
	// placement used by the ablation benchmarks to show how much optimal
	// placement buys.
	CoreRandomMember
)

// CenterTree builds the core-based tree for the members under the given
// placement policy, returning the tree, the chosen core, and the tree's
// maximum member-pair delay.
func CenterTree(g *topology.Graph, sps []*topology.ShortestPaths, members []int, policy CorePolicy) (*topology.Tree, int, int64) {
	switch policy {
	case CoreEccentricity:
		core := centerByEccentricity(sps, members, g.N())
		t := g.SPTreeFromSP(sps[core], members)
		return t, core, TreeMaxPairDelay(t, members)
	case CoreRandomMember:
		core := members[0]
		t := g.SPTreeFromSP(sps[core], members)
		return t, core, TreeMaxPairDelay(t, members)
	default: // CorePairwiseOptimal
		bestDelay := int64(math.MaxInt64)
		bestCore := -1
		// Two tree buffers flip between "current candidate" and "best so
		// far", so the N-core search allocates at most two trees total.
		var bestTree, scratch *topology.Tree
		for c := 0; c < g.N(); c++ {
			scratch = g.SPTreeInto(scratch, sps[c], members)
			d := TreeMaxPairDelay(scratch, members)
			if d < bestDelay || (d == bestDelay && c < bestCore) {
				bestDelay, bestCore = d, c
				bestTree, scratch = scratch, bestTree
			}
		}
		return bestTree, bestCore, bestDelay
	}
}

func centerByEccentricity(sps []*topology.ShortestPaths, members []int, n int) int {
	best := -1
	bestEcc := int64(math.MaxInt64)
	for c := 0; c < n; c++ {
		var ecc int64
		for _, m := range members {
			if d := sps[c].Dist[m]; d > ecc {
				ecc = d
			}
		}
		if ecc < bestEcc {
			bestEcc, best = ecc, c
		}
	}
	return best
}

// DelayRatio computes the Figure 2(a) metric for one group on one graph:
// (optimal core-based tree max delay) / (shortest-path max delay).
func DelayRatio(g *topology.Graph, sps []*topology.ShortestPaths, members []int) float64 {
	spt := MaxPairShortestDelay(sps, members)
	if spt == 0 {
		return 1
	}
	_, _, cbt := CenterTree(g, sps, members, CorePairwiseOptimal)
	return float64(cbt) / float64(spt)
}

// FlowCounts accumulates per-edge flow counts; index = graph edge index.
type FlowCounts []int64

// Max returns the largest per-link flow count — Figure 2(b)'s y axis.
func (f FlowCounts) Max() int64 {
	var max int64
	for _, c := range f {
		if c > max {
			max = c
		}
	}
	return max
}

// AddSPTFlows adds, for each sender of each group, one flow on every edge
// of that sender's shortest-path tree spanning the group members.
func AddSPTFlows(g *topology.Graph, sps []*topology.ShortestPaths, groups []Group, counts FlowCounts) {
	var t *topology.Tree
	for _, grp := range groups {
		for _, s := range grp.Members[:grp.Senders] {
			t = g.SPTreeInto(t, sps[s], grp.Members)
			for v, e := range t.ParentEdge {
				if e != -1 && t.InTree[v] {
					counts[e]++
				}
			}
		}
	}
}

// AddCBTFlows adds, for each group, Senders flows on every edge of the
// group's shared tree: with a bidirectional center-based tree every
// sender's traffic traverses the whole tree to reach the spread-out
// membership.
func AddCBTFlows(g *topology.Graph, sps []*topology.ShortestPaths, groups []Group, policy CorePolicy, counts FlowCounts) {
	for _, grp := range groups {
		t, _, _ := CenterTree(g, sps, grp.Members, policy)
		for v, e := range t.ParentEdge {
			if e != -1 && t.InTree[v] {
				counts[e] += int64(grp.Senders)
			}
		}
	}
}
