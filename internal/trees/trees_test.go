package trees

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pim/internal/topology"
)

// lineGraph 0-1-2-3-4 with unit delays.
func lineGraph() *topology.Graph {
	g := topology.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestMaxPairShortestDelayLine(t *testing.T) {
	g := lineGraph()
	sps := AllRootSP(g)
	if d := MaxPairShortestDelay(sps, []int{0, 4}); d != 4 {
		t.Errorf("d = %d, want 4", d)
	}
	if d := MaxPairShortestDelay(sps, []int{1, 2, 3}); d != 2 {
		t.Errorf("d = %d, want 2", d)
	}
	if d := MaxPairShortestDelay(sps, []int{2}); d != 0 {
		t.Errorf("single member d = %d, want 0", d)
	}
}

func TestCenterTreeOnLine(t *testing.T) {
	g := lineGraph()
	sps := AllRootSP(g)
	members := []int{0, 4}
	tree, core, d := CenterTree(g, sps, members, CorePairwiseOptimal)
	// On a line any core yields tree delay 4 (the line itself).
	if d != 4 {
		t.Errorf("tree max delay = %d, want 4", d)
	}
	if !tree.InTree[0] || !tree.InTree[4] {
		t.Error("members missing from tree")
	}
	if core < 0 || core > 4 {
		t.Errorf("core = %d", core)
	}
}

func TestDelayRatioNeverBelowOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Random(topology.GenConfig{Nodes: 20, Degree: 4}, rng)
		sps := AllRootSP(g)
		members := topology.PickDistinct(20, 5, rng)
		return DelayRatio(g, sps, members) >= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalCoreBeatsNaivePlacement(t *testing.T) {
	// Optimal pairwise placement can never be worse than rooting at the
	// first member.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := topology.Random(topology.GenConfig{Nodes: 30, Degree: 4}, rng)
		sps := AllRootSP(g)
		members := topology.PickDistinct(30, 8, rng)
		_, _, opt := CenterTree(g, sps, members, CorePairwiseOptimal)
		_, _, naive := CenterTree(g, sps, members, CoreRandomMember)
		if opt > naive {
			t.Fatalf("optimal %d worse than naive %d", opt, naive)
		}
	}
}

func TestWallBound(t *testing.T) {
	// Wall's theorem: the optimal center-based tree max delay is at most 2×
	// the shortest-path max delay. Our optimal placement must respect it.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		g := topology.Random(topology.GenConfig{Nodes: 30, Degree: 4, MinDelay: 1, MaxDelay: 10}, rng)
		sps := AllRootSP(g)
		members := topology.PickDistinct(30, 6, rng)
		r := DelayRatio(g, sps, members)
		if r > 2.0+1e-9 {
			t.Fatalf("trial %d: ratio %.3f exceeds Wall's bound of 2", trial, r)
		}
	}
}

func TestSPTFlowsStar(t *testing.T) {
	// Star with center 0: each sender's SPT to members uses only the edges
	// to the members.
	g := topology.New(4)
	e01 := g.AddEdge(0, 1, 1)
	e02 := g.AddEdge(0, 2, 1)
	e03 := g.AddEdge(0, 3, 1)
	sps := AllRootSP(g)
	groups := []Group{{Members: []int{1, 2, 3}, Senders: 2}} // 1 and 2 send
	counts := make(FlowCounts, g.M())
	AddSPTFlows(g, sps, groups, counts)
	// Sender 1: tree edges {01,02,03}; sender 2: {01,02,03} too (members
	// include the sender's own node which is already root).
	if counts[e01] != 2 || counts[e02] != 2 || counts[e03] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if counts.Max() != 2 {
		t.Errorf("max = %d", counts.Max())
	}
}

func TestCBTFlowsCountSendersPerEdge(t *testing.T) {
	g := lineGraph()
	sps := AllRootSP(g)
	groups := []Group{{Members: []int{0, 4}, Senders: 2}}
	counts := make(FlowCounts, g.M())
	AddCBTFlows(g, sps, groups, CorePairwiseOptimal, counts)
	// The tree is the whole line; every edge carries both senders' flows.
	for e, c := range counts {
		if c != 2 {
			t.Errorf("edge %d carries %d flows, want 2", e, c)
		}
	}
}

func TestCBTConcentratesMoreThanSPT(t *testing.T) {
	// The Figure 2(b) claim on a moderate workload: CBT max-link flows
	// should exceed SPT max-link flows on random graphs.
	rng := rand.New(rand.NewSource(3))
	higher := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		g := topology.Random(topology.GenConfig{Nodes: 30, Degree: 4}, rng)
		sps := AllRootSP(g)
		var groups []Group
		for i := 0; i < 50; i++ {
			groups = append(groups, Group{Members: topology.PickDistinct(30, 12, rng), Senders: 8})
		}
		spt := make(FlowCounts, g.M())
		AddSPTFlows(g, sps, groups, spt)
		cbt := make(FlowCounts, g.M())
		AddCBTFlows(g, sps, groups, CoreEccentricity, cbt)
		if cbt.Max() > spt.Max() {
			higher++
		}
	}
	if higher < trials*8/10 {
		t.Errorf("CBT concentrated more in only %d/%d trials", higher, trials)
	}
}

func TestRunFig2aShape(t *testing.T) {
	cfg := DefaultFig2a()
	cfg.Trials = 15
	points := RunFig2a(cfg)
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.MeanRatio < 1.0 {
			t.Errorf("degree %v: mean ratio %.3f < 1", p.Degree, p.MeanRatio)
		}
		if p.MeanRatio > 2.0 {
			t.Errorf("degree %v: mean ratio %.3f violates Wall bound", p.Degree, p.MeanRatio)
		}
		if p.MaxRatio < p.MeanRatio {
			t.Error("max below mean")
		}
	}
	// The paper's qualitative shape: denser graphs show a larger gap
	// between shared-tree and shortest-path delays.
	if points[5].MeanRatio <= points[0].MeanRatio {
		t.Errorf("ratio did not grow with degree: deg3=%.3f deg8=%.3f",
			points[0].MeanRatio, points[5].MeanRatio)
	}
}

func TestRunFig2bShape(t *testing.T) {
	cfg := DefaultFig2b()
	cfg.Trials = 2
	cfg.Groups = 60
	points := RunFig2b(cfg)
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.CBTMax <= p.SPTMax {
			t.Errorf("degree %v: CBT max %.1f not above SPT max %.1f",
				p.Degree, p.CBTMax, p.SPTMax)
		}
	}
}

func BenchmarkDelayRatio50(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := topology.Random(topology.GenConfig{Nodes: 50, Degree: 6}, rng)
	sps := AllRootSP(g)
	members := topology.PickDistinct(50, 10, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DelayRatio(g, sps, members)
	}
}
