package netsim

import (
	"runtime"
	"testing"
)

// ---------------------------------------------------------------------------
// Randomized differential test: the timing wheel must produce bit-identical
// fire order to the reference heap over arbitrary mixes of After/At/Post/
// Stop/Step/RunUntil/Run, including nested scheduling from callbacks and
// deadlines beyond the wheel's 2^32 µs span (overflow heap + block
// migration). This is the tentpole's determinism gate.
// ---------------------------------------------------------------------------

type schedOp struct {
	kind int  // 0 After, 1 At, 2 Post, 3 Stop, 4 Step, 5 RunUntil, 6 Run, 7 Reset
	arg  Time // delay / absolute time / stop index / run budget
	arg2 Time // Reset: new delay
}

type fireRec struct {
	id int
	at Time
}

// genOps derives a deterministic op sequence from seed. Deadline mixes are
// chosen to exercise every wheel path: same-µs bursts (level-0 FIFO),
// sub-window and cross-window delays (cascades), and multi-block far
// deadlines (overflow migration).
func genOps(seed uint64, n int) []schedOp {
	ops := make([]schedOp, 0, n)
	rng := seed
	next := func() uint64 { rng = benchLCG(rng); return rng >> 11 }
	for i := 0; i < n; i++ {
		switch r := next() % 100; {
		case r < 30: // After
			ops = append(ops, schedOp{kind: 0, arg: diffDelay(next)})
		case r < 40: // At (absolute; clamping to now is part of the contract)
			ops = append(ops, schedOp{kind: 1, arg: Time(next() % uint64(20*Second))})
		case r < 65: // Post
			ops = append(ops, schedOp{kind: 2, arg: diffDelay(next)})
		case r < 73: // Stop a previously created timer
			ops = append(ops, schedOp{kind: 3, arg: Time(next())})
		case r < 80: // Reset a previously created timer
			ops = append(ops, schedOp{kind: 7, arg: Time(next()), arg2: diffDelay(next)})
		case r < 90: // Step
			ops = append(ops, schedOp{kind: 4})
		case r < 98: // RunUntil(now + delta)
			ops = append(ops, schedOp{kind: 5, arg: Time(next() % uint64(2*Second))})
		default: // Run with a small event budget
			ops = append(ops, schedOp{kind: 6, arg: Time(next()%40 + 1)})
		}
	}
	return ops
}

// diffDelay picks a delay from a mix of ranges: same-instant, sub-window,
// in-block, and past the 2^32 µs block boundary (overflow). Occasionally
// negative, to pin the clamp.
func diffDelay(next func() uint64) Time {
	switch next() % 10 {
	case 0:
		return 0
	case 1:
		return -Time(next() % 1000) // clamped to "now"
	case 2, 3, 4:
		return Time(next() % 256) // inside the level-0 window
	case 5, 6:
		return Time(next() % uint64(Second)) // cascade territory
	case 7, 8:
		return Time(next() % uint64(100*Second)) // upper levels
	default:
		return Time(next() % uint64(Time(3)<<32)) // overflow blocks
	}
}

// applyOps replays one op sequence on s and returns the (id, time) fire
// trace. Every scheduled callback records; ids below the nested base also
// spawn a nested Post from inside their callback, exercising scheduling
// during the drain of the very slot being fired.
func applyOps(s *Scheduler, ops []schedOp) []fireRec {
	const nestedBase = 1 << 20
	var trace []fireRec
	timers := make(map[int]*Timer)
	nextID := 0
	var record func(id int) func()
	record = func(id int) func() {
		return func() {
			trace = append(trace, fireRec{id, s.Now()})
			if id < nestedBase && id%5 == 0 {
				s.Post(Time(id%97), record(nestedBase+id))
			}
		}
	}
	for _, op := range ops {
		switch op.kind {
		case 0:
			timers[nextID] = s.After(op.arg, record(nextID))
			nextID++
		case 1:
			timers[nextID] = s.At(op.arg, record(nextID))
			nextID++
		case 2:
			s.Post(op.arg, record(nextID))
			nextID++
		case 3:
			if nextID > 0 {
				if tm := timers[int(uint64(op.arg)%uint64(nextID))]; tm != nil {
					tm.Stop()
				}
			}
		case 4:
			s.Step()
		case 5:
			s.RunUntil(s.Now() + op.arg)
		case 6:
			s.Run(int64(op.arg))
		case 7:
			if nextID > 0 {
				if tm := timers[int(uint64(op.arg)%uint64(nextID))]; tm != nil {
					tm.Reset(op.arg2)
				}
			}
		}
	}
	s.Run(0) // drain everything that remains
	return trace
}

func TestWheelDifferentialRandomOps(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 0xDEADBEEF, 0xC0FFEE} {
		ops := genOps(seed, 4000)
		ref := applyOps(NewSchedulerWith(false), ops)
		got := applyOps(NewSchedulerWith(true), ops)
		if len(ref) != len(got) {
			t.Fatalf("seed %#x: heap fired %d events, wheel fired %d", seed, len(ref), len(got))
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("seed %#x: fire %d diverges: heap %+v, wheel %+v", seed, i, ref[i], got[i])
			}
		}
		if len(ref) == 0 {
			t.Fatalf("seed %#x: degenerate sequence fired nothing", seed)
		}
	}
}

// ---------------------------------------------------------------------------
// Targeted wheel unit tests.
// ---------------------------------------------------------------------------

// TestWheelOverflowOrder: deadlines past the wheels' 2^32 µs span park in
// the overflow heap and migrate block-by-block, preserving (time, seq) order
// across block boundaries and within a same-instant burst.
func TestWheelOverflowOrder(t *testing.T) {
	s := NewSchedulerWith(true)
	var order []int
	add := func(id int, at Time) { s.At(at, func() { order = append(order, id) }) }
	far := Time(5) << 32 // five blocks out
	add(0, far)          // same instant, insertion order 0,1,2
	add(1, far)
	add(2, far)
	add(3, Time(2)<<32+7) // middle block
	add(4, 50)            // in the current block
	add(5, far+Second)    // after the burst
	s.Run(0)
	want := []int{4, 3, 0, 1, 2, 5}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if s.Pending() != 0 || s.LiveTimers() != 0 {
		t.Fatalf("Pending=%d Live=%d after drain, want 0/0", s.Pending(), s.LiveTimers())
	}
}

// TestWheelRunUntilThenEarlierInsert: a bounded RunUntil must not advance
// the cursor past its deadline; an event scheduled afterwards, earlier than
// the parked one, still fires first. (This is the cursor-invariant trap a
// peek-style implementation falls into.)
func TestWheelRunUntilThenEarlierInsert(t *testing.T) {
	s := NewSchedulerWith(true)
	var order []int
	s.At(600*Second, func() { order = append(order, 600) })
	s.RunUntil(550 * Second)
	if len(order) != 0 {
		t.Fatalf("event fired early: %v", order)
	}
	s.At(560*Second, func() { order = append(order, 560) })
	s.After(Millisecond, func() { order = append(order, 550) }) // now+1ms
	s.Run(0)
	want := []int{550, 560, 600}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestWheelCrossWindowFIFO: two events at the same absolute deadline, one
// scheduled while the deadline was several levels upstairs and one scheduled
// just before it fires, preserve global insertion order.
func TestWheelCrossWindowFIFO(t *testing.T) {
	s := NewSchedulerWith(true)
	deadline := 300*Second + 41*Microsecond
	var order []int
	s.At(deadline, func() { order = append(order, 0) }) // far away: upper level
	s.RunUntil(300 * Second)                            // cursor now close to the deadline
	s.At(deadline, func() { order = append(order, 1) }) // near: lands low
	s.At(deadline-1, func() { order = append(order, 2) })
	s.Run(0)
	want := []int{2, 0, 1}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestWheelStopReclaim: Stop is lazy on the wheel — individual entries
// linger until the cursor, a cascade, or the dead-majority compaction sweep
// touches them — but they must never fire, and once dead entries outnumber
// live ones the sweep reclaims them all at once.
func TestWheelStopReclaim(t *testing.T) {
	s := NewSchedulerWith(true)
	const n = 1000
	timers := make([]*Timer, n)
	for i := range timers {
		timers[i] = s.After(Second+Time(i)*Millisecond, func() { t.Error("stopped timer fired") })
	}
	// Stopping exactly half leaves the dead entries parked: no sweep yet
	// (the sweep needs a strict dead majority).
	for _, tm := range timers[:n/2] {
		tm.Stop()
	}
	if p := s.Pending(); p != n {
		t.Errorf("Pending = %d with dead entries not yet a majority, want %d (lazy cancel leaves entries queued)", p, n)
	}
	// One more Stop tips the dead entries into the majority and triggers the
	// compaction sweep, which reclaims every dead entry in one pass.
	timers[n/2].Stop()
	if p := s.Pending(); p != n/2-1 {
		t.Errorf("Pending = %d after dead-majority sweep, want %d", p, n/2-1)
	}
	for _, tm := range timers[n/2+1:] {
		tm.Stop()
	}
	if l := s.LiveTimers(); l != 0 {
		t.Errorf("LiveTimers = %d after stopping all, want 0", l)
	}
	s.RunUntil(3 * Second)
	if p := s.Pending(); p != 0 {
		t.Errorf("Pending = %d after the deadlines passed, want 0 (slots reclaimed)", p)
	}
}

// TestLiveTimerAccounting: the live/peak gauges are identical across
// backing stores (the scaling ledger DeepEquals them) and track schedule,
// cancel, and fire.
func TestLiveTimerAccounting(t *testing.T) {
	for _, wheel := range []bool{false, true} {
		s := NewSchedulerWith(wheel)
		timers := make([]*Timer, 10)
		for i := range timers {
			timers[i] = s.After(Time(i+1)*Millisecond, func() {})
		}
		s.Post(5*Millisecond, func() {})
		if got := s.LiveTimers(); got != 11 {
			t.Errorf("wheel=%v: LiveTimers = %d, want 11", wheel, got)
		}
		for _, tm := range timers[:3] {
			tm.Stop()
		}
		if got := s.LiveTimers(); got != 8 {
			t.Errorf("wheel=%v: LiveTimers = %d after 3 stops, want 8", wheel, got)
		}
		s.Run(0)
		if got := s.LiveTimers(); got != 0 {
			t.Errorf("wheel=%v: LiveTimers = %d after drain, want 0", wheel, got)
		}
		if got := s.PeakLiveTimers(); got != 11 {
			t.Errorf("wheel=%v: PeakLiveTimers = %d, want 11", wheel, got)
		}
	}
}

// TestTimerReset: Reset re-arms without allocating a new handle — the old
// entry never fires, the new deadline and FIFO position follow the re-arm,
// and Reset on a fired or stopped timer refuses and leaves it untouched.
func TestTimerReset(t *testing.T) {
	for _, wheel := range []bool{false, true} {
		s := NewSchedulerWith(wheel)
		var order []int
		tm := s.After(10, func() { order = append(order, 0) })
		s.Post(50, func() { order = append(order, 1) })
		if !tm.Reset(100) {
			t.Fatalf("wheel=%v: Reset on an active timer refused", wheel)
		}
		s.RunUntil(60)
		if len(order) != 1 || order[0] != 1 {
			t.Fatalf("wheel=%v: old arm fired or order wrong: %v", wheel, order)
		}
		if tm.When() != 100 || !tm.Active() {
			t.Fatalf("wheel=%v: When=%d Active=%v after Reset, want 100/true", wheel, tm.When(), tm.Active())
		}
		// Same-deadline FIFO follows the re-arm, not the original schedule.
		s.Post(40, func() { order = append(order, 2) }) // also at t=100
		if !tm.Reset(40) {
			t.Fatalf("wheel=%v: second Reset refused", wheel)
		}
		s.Run(0)
		want := []int{1, 2, 0}
		for i := range want {
			if i >= len(order) || order[i] != want[i] {
				t.Fatalf("wheel=%v: order = %v, want %v", wheel, order, want)
			}
		}
		if tm.Reset(5) {
			t.Errorf("wheel=%v: Reset on a fired timer re-armed it", wheel)
		}
		stopped := s.After(10, func() { t.Error("stopped timer fired") })
		stopped.Stop()
		if stopped.Reset(5) {
			t.Errorf("wheel=%v: Reset on a stopped timer re-armed it", wheel)
		}
		if s.LiveTimers() != 0 {
			t.Errorf("wheel=%v: LiveTimers = %d after drain, want 0", wheel, s.LiveTimers())
		}
		s.Run(0)
	}
}

// ---------------------------------------------------------------------------
// GC-visibility regression: a retained Timer handle must not pin the
// Scheduler once the timer can no longer fire (ISSUE 5 satellite — Stop
// used to leave t.s set).
// ---------------------------------------------------------------------------

func TestStopUnpinsScheduler(t *testing.T) {
	for _, wheel := range []bool{false, true} {
		collected := make(chan struct{})
		tm := func() *Timer {
			s := NewSchedulerWith(wheel)
			runtime.SetFinalizer(s, func(*Scheduler) { close(collected) })
			tm := s.After(Second, benchNop)
			tm.Stop()
			return tm
		}()
		if tm.s != nil {
			t.Fatalf("wheel=%v: Stop left the scheduler back-pointer set", wheel)
		}
		ok := false
		for i := 0; i < 100 && !ok; i++ {
			runtime.GC()
			select {
			case <-collected:
				ok = true
			default:
			}
		}
		if !ok {
			t.Errorf("wheel=%v: scheduler not collected while a stopped Timer handle is retained", wheel)
		}
		runtime.KeepAlive(tm)
	}
}

// TestFireUnpinsScheduler: same property for a handle whose timer fired.
func TestFireUnpinsScheduler(t *testing.T) {
	s := NewScheduler()
	tm := s.After(Millisecond, benchNop)
	s.Run(0)
	if tm.s != nil || tm.fn != nil {
		t.Error("fired timer still references the scheduler or its callback")
	}
	if tm.Stop() {
		t.Error("Stop on a fired timer reported cancellation")
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks (ISSUE 5 satellite): cancel-heavy and fire-heavy mixes,
// heap vs wheel, on a 64k parked-timer background. cmd/pimbench -scaling
// replays the same workloads into BENCH_scale.json.
// ---------------------------------------------------------------------------

func BenchmarkSchedulerChurn(b *testing.B) {
	for _, impl := range []struct {
		name  string
		wheel bool
	}{{"Heap", false}, {"Wheel", true}} {
		b.Run(impl.name, func(b *testing.B) {
			s := PrepSchedulerBench(impl.wheel)
			b.ReportAllocs()
			b.ResetTimer()
			SchedulerChurn(s, b.N)
		})
	}
}

func BenchmarkSchedulerDense(b *testing.B) {
	for _, impl := range []struct {
		name  string
		wheel bool
	}{{"Heap", false}, {"Wheel", true}} {
		b.Run(impl.name, func(b *testing.B) {
			s := PrepSchedulerBench(impl.wheel)
			b.ReportAllocs()
			b.ResetTimer()
			SchedulerDense(s, b.N)
		})
	}
}
