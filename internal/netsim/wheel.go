package netsim

// Hierarchical timing wheel (Varghese & Lauck, SOSP '87): the default
// backing store for the Scheduler. Four levels of 256 slots at a 1µs base
// tick cover 2^32 µs (~71.6 simulated minutes) of lookahead; anything
// further out parks in an overflow heap and migrates into the wheels one
// 2^32 µs block at a time. Insert is O(1) (a byte extraction and a slice
// append), cancel is O(1) lazy (the entry is dropped when the cursor or a
// cascade next touches it), and advancing costs O(slots skipped) amortized
// — versus O(log n) per operation plus compaction sweeps on the reference
// heap, which dominates at soft-state scale (ISSUE 5, DESIGN.md §11).
//
// The ISSUE sketches a 1ms base tick; we use 1µs so that a level-0 slot
// holds exactly one timestamp. That makes same-deadline FIFO trivial —
// slot append order IS global insertion order — instead of requiring a
// sort or a sub-slot bucket walk at fire time, and 4×256 slots still span
// over an hour of simulated time, far beyond any timer the protocols set.
//
// Determinism contract (what the differential tests in wheel_test.go pin):
// events fire in strictly increasing (at, seq) order, bit-identical to the
// reference heap. The argument, for the auditors:
//
//   - Placement is a pure function of (at, cur): an event lands at level
//     l = index of the highest byte where at differs from cur (level 0 if
//     none). So two same-deadline events placed under the same cursor go
//     to the same slot, in push (= seq) order.
//   - The cursor never skips an occupied slot. It only advances to the
//     exact base of the next occupied slot (draining it at level 0,
//     cascading it at levels 1-3), so any upper-level slot holding an
//     event is cascaded before the cursor enters that slot's time range —
//     a later same-deadline push therefore can never land "below" an
//     earlier one that is still waiting upstairs.
//   - Cascades preserve slot order, and a cascaded slot re-places into
//     strictly lower levels, so the drain loop always makes progress.
//   - All overflow events lie in later 2^32 µs blocks than every in-wheel
//     event (they differ from cur above bit 32, and at >= now >= cur), so
//     migrating a whole block only when the wheels are empty keeps the
//     global order intact; the overflow heap itself pops in (at, seq)
//     order.
//
// Cursor invariant: cur <= now whenever the wheel holds any entry, so a
// new push (at >= now) is never behind the cursor. next(limit) never moves
// cur past limit, RunUntil sets now to the deadline afterwards, and a push
// into a fully empty wheel re-seats cur at the scheduler clock.

import (
	"cmp"
	"math/bits"
	"slices"
	"sync/atomic"
)

// useWheel selects the Scheduler's backing store at construction: the
// timing wheel (default) or the reference binary heap. Same shape as the
// internal/fastpath toggle: a process-global atomic flipped by differential
// tests and the pimbench before/after sweeps.
var useWheel atomic.Bool

func init() { useWheel.Store(true) }

// UseWheel reports whether new Schedulers are backed by the timing wheel.
func UseWheel() bool { return useWheel.Load() }

// SetUseWheel selects the backing store for subsequently constructed
// Schedulers and returns the previous setting. Existing Schedulers are
// unaffected.
func SetUseWheel(on bool) (prev bool) { return useWheel.Swap(on) }

const (
	wheelLevels = 4
	wheelSlots  = 256
	wheelMask   = wheelSlots - 1
	// blockMask isolates the low 32 bits: the span of all four levels.
	// Events beyond cur's 2^32 µs block go to the overflow heap.
	blockMask = Time(1)<<32 - 1
)

type schedWheel struct {
	// cur is the wheel cursor: the time whose byte decomposition indexes
	// the four levels. All in-wheel events have at >= cur.
	cur Time
	// total counts every entry anywhere in the wheel (slots, due buffer,
	// overflow), including stopped-but-unreaped ones; backs Pending().
	total int
	// nwheel counts entries currently in level slots (not due/overflow),
	// so the drain loop knows when to fall through to overflow migration.
	nwheel int
	// levels[l][i] holds events whose deadline matches cur above byte l
	// and has byte l equal to i. At level 0 a slot is a single timestamp,
	// so append order is fire order.
	levels [wheelLevels][wheelSlots][]event
	// occ[l] is a 256-bit occupancy bitmap per level so the cursor can
	// jump straight to the next non-empty slot.
	occ [wheelLevels][wheelSlots / 64]uint64
	// ndead counts cancelled entries still parked in the structure. Lazy
	// cancel alone is quadratic-ish at soft-state scale: protocols re-arm
	// long-deadline timers on every refresh, so far-future slots accumulate
	// dead entries for simulated minutes before the cursor would reclaim
	// them, and the slot slices grow without bound. Scheduler.Stop/Reset
	// trigger compact() once the dead outnumber the live (the same policy
	// as the reference heap's compaction).
	ndead int
	// due is the slot currently being fired, copied out so callbacks can
	// push into the very slot being drained (nested same-time scheduling)
	// without invalidating iteration. Backing array is reused forever.
	due     []event
	dueHead int
	// overflow holds events beyond the wheels' span, as a heap ordered by
	// event.before, sharing the sift helpers with schedHeap.
	overflow []event
	// dirty marks timestamps that received a packet-delivery event. A level-0
	// slot normally fires in append order (= scheduling order), which matches
	// event.before for timer/Post entries (seq is monotone), but a delivery's
	// structural (bs, deliveryOrd) key need not match its push position — a
	// lower-numbered node may transmit after a higher-numbered one, and a
	// cross-shard arrival spliced in at a barrier carries a birth instant that
	// may precede locally appended entries. A dirty slot's batch is therefore
	// checked (and if needed sorted) by (bs, ord) when moved to the due
	// buffer. The mark is keyed by timestamp — not slot index — so it
	// survives cascades and overflow migration; cleared when the timestamp
	// fires.
	dirty map[Time]bool
}

func newWheel() *schedWheel { return &schedWheel{} }

// push inserts one event; now is the scheduler clock, a lower bound on
// every current and future deadline. O(1): a level computation, a slice
// append, a bitmap OR — no sifting, no sorting.
func (w *schedWheel) push(ev event, now Time) {
	if w.total == 0 {
		// Empty wheel: the cursor is unconstrained, so re-seat it at the
		// clock. Anything scheduled from here on has at >= now, keeping
		// the cursor invariant. This also repairs the one case where cur
		// can drift past now (a Step() that drained only dead entries).
		w.cur = now
	}
	w.total++
	if uint64(ev.at^w.cur) > uint64(blockMask) {
		w.overflow = append(w.overflow, ev)
		siftUp(w.overflow)
		return
	}
	w.place(ev)
}

// place files an in-block event (at within cur's 2^32 µs block, at >= cur)
// into the level addressed by the highest byte where at differs from cur.
func (w *schedWheel) place(ev event) {
	x := uint64(ev.at ^ w.cur)
	l := 0
	if x != 0 {
		l = (bits.Len64(x) - 1) >> 3
	}
	idx := int(uint64(ev.at)>>(8*uint(l))) & wheelMask
	w.levels[l][idx] = append(w.levels[l][idx], ev)
	w.occ[l][idx>>6] |= 1 << (uint(idx) & 63)
	w.nwheel++
}

// next removes and returns the earliest live event with at <= limit,
// advancing the cursor no further than limit. Dead (stopped) entries met
// along the way are reclaimed here — this is where lazy cancel pays.
func (w *schedWheel) next(limit Time) (event, bool) {
	for {
		// Drain the due buffer first: it holds the slot at exactly cur,
		// including events pushed into it by callbacks mid-drain.
		for w.dueHead < len(w.due) {
			ev := w.due[w.dueHead]
			w.due[w.dueHead] = event{} // release for GC
			w.dueHead++
			if w.dueHead == len(w.due) {
				w.due = w.due[:0] // keep capacity
				w.dueHead = 0
			}
			w.total--
			if ev.dead() {
				w.ndead--
				continue
			}
			return ev, true
		}

		if w.nwheel > 0 {
			// Level 0: the slot index is the timestamp's low byte, so the
			// next occupied slot at or after cur's is the next deadline in
			// this 256 µs window.
			if i := nextSet(&w.occ[0], int(w.cur)&wheelMask); i >= 0 {
				slotTime := (w.cur &^ wheelMask) + Time(i)
				if slotTime > limit {
					return event{}, false
				}
				w.cur = slotTime
				w.fillDue(i)
				continue
			}
			// Levels 1-3: jump the cursor to the base of the next occupied
			// slot and cascade its events down. The slot at the cursor's
			// own index is always empty (placement puts an event there
			// only if its byte differs from cur's), so scanning from the
			// cursor's index inclusive is safe.
			advanced := false
			for l := 1; l < wheelLevels; l++ {
				j := nextSet(&w.occ[l], int(uint64(w.cur)>>(8*uint(l)))&wheelMask)
				if j < 0 {
					continue
				}
				shift := 8 * uint(l)
				base := (w.cur &^ (Time(1)<<(shift+8) - 1)) + Time(j)<<shift
				if base > limit {
					return event{}, false
				}
				if base <= w.cur {
					panic("netsim: timing wheel cursor failed to advance")
				}
				w.cur = base
				w.cascade(l, j)
				advanced = true
				break
			}
			if advanced {
				continue
			}
			panic("netsim: timing wheel count positive but no occupied slot")
		}

		// Wheels empty: migrate the earliest overflow block, if it is
		// within the limit. Every overflow event is in a later block than
		// anything the wheels held, so order is preserved.
		for len(w.overflow) > 0 && w.overflow[0].dead() {
			eventHeapPop(&w.overflow)
			w.total--
			w.ndead--
		}
		if len(w.overflow) == 0 {
			return event{}, false
		}
		blockBase := w.overflow[0].at &^ blockMask
		if blockBase > limit {
			return event{}, false
		}
		w.cur = blockBase
		for len(w.overflow) > 0 && w.overflow[0].at&^blockMask == blockBase {
			ev := eventHeapPop(&w.overflow)
			if ev.dead() {
				w.total--
				w.ndead--
				continue
			}
			w.place(ev)
		}
	}
}

// markDirty records that a packet-delivery event was inserted for timestamp
// at, so the slot's batch gets an order check (and sort if violated) when it
// fires. Most slots stay clean — timer-only slots never pay anything, and
// dirty slots that happen to be in order pay one linear scan.
func (w *schedWheel) markDirty(at Time) {
	if w.dirty == nil {
		w.dirty = map[Time]bool{}
	}
	w.dirty[at] = true
}

// fillDue moves level-0 slot i into the due buffer (append order = fire
// order), clearing the slot but keeping its capacity so steady-state
// scheduling stays allocation-free. Slots dirtied by deliveries get a linear
// sortedness check, then a (birth instant, order key) sort only when out of
// order — all entries share the same deadline (the cursor's timestamp), so
// this restores event.before order exactly.
func (w *schedWheel) fillDue(i int) {
	slot := w.levels[0][i]
	n := len(slot)
	start := len(w.due)
	w.due = append(w.due, slot...)
	for k := range slot {
		slot[k] = event{}
	}
	w.levels[0][i] = slot[:0]
	w.occ[0][i>>6] &^= 1 << (uint(i) & 63)
	w.nwheel -= n
	if len(w.dirty) > 0 && w.dirty[w.cur] {
		delete(w.dirty, w.cur)
		batch := w.due[start:]
		sorted := true
		for k := 1; k < len(batch); k++ {
			if batch[k].bs < batch[k-1].bs ||
				(batch[k].bs == batch[k-1].bs && batch[k].ord < batch[k-1].ord) {
				sorted = false
				break
			}
		}
		if !sorted {
			slices.SortFunc(batch, func(a, b event) int {
				if a.bs != b.bs {
					return cmp.Compare(a.bs, b.bs)
				}
				return cmp.Compare(a.ord, b.ord)
			})
		}
	}
}

// peek returns a lower bound on the earliest live deadline anywhere in the
// wheel (exact for due-buffer, level-0, and overflow entries; the slot base
// for events parked in levels 1-3), reaping dead entries that surface at
// the front of the due buffer or the overflow heap.
func (w *schedWheel) peek() (Time, bool) {
	for w.dueHead < len(w.due) {
		ev := w.due[w.dueHead]
		if !ev.dead() {
			return ev.at, true
		}
		w.due[w.dueHead] = event{}
		w.dueHead++
		if w.dueHead == len(w.due) {
			w.due = w.due[:0]
			w.dueHead = 0
		}
		w.total--
		w.ndead--
	}
	if w.nwheel > 0 {
		if i := nextSet(&w.occ[0], int(w.cur)&wheelMask); i >= 0 {
			return (w.cur &^ wheelMask) + Time(i), true
		}
		best := maxTime
		for l := 1; l < wheelLevels; l++ {
			j := nextSet(&w.occ[l], int(uint64(w.cur)>>(8*uint(l)))&wheelMask)
			if j < 0 {
				continue
			}
			shift := 8 * uint(l)
			base := (w.cur &^ (Time(1)<<(shift+8) - 1)) + Time(j)<<shift
			if base < best {
				best = base
			}
		}
		if best != maxTime {
			return best, true
		}
	}
	for len(w.overflow) > 0 && w.overflow[0].dead() {
		eventHeapPop(&w.overflow)
		w.total--
		w.ndead--
	}
	if len(w.overflow) > 0 {
		return w.overflow[0].at, true
	}
	return 0, false
}

// cascade re-places the events of slot (l, j) — the cursor has just reached
// the slot's base — into strictly lower levels, dropping dead entries.
// Iteration order is preserved, and place never appends back into the slot
// being drained, so the backing array is safely reused.
func (w *schedWheel) cascade(l, j int) {
	slot := w.levels[l][j]
	w.occ[l][j>>6] &^= 1 << (uint(j) & 63)
	w.nwheel -= len(slot)
	for k := range slot {
		ev := slot[k]
		slot[k] = event{}
		if ev.dead() {
			w.total--
			w.ndead--
			continue
		}
		w.place(ev)
	}
	w.levels[l][j] = slot[:0]
}

// compact sweeps every slot, the due buffer, and the overflow heap,
// dropping dead entries in place. Order is preserved: each slot (and the
// due buffer) is filtered without reordering, and the overflow heap is
// re-heapified, which keeps its (at, seq) pop order. O(entries + slots);
// triggered by Scheduler.Stop/Reset when the dead outnumber the live, so
// its cost amortizes against the cancellations that created the garbage.
func (w *schedWheel) compact() {
	live := func(evs []event) []event {
		kept := evs[:0]
		for _, ev := range evs {
			if !ev.dead() {
				kept = append(kept, ev)
			}
		}
		for i := len(kept); i < len(evs); i++ {
			evs[i] = event{} // release Timer pointers for GC
		}
		return kept
	}

	// The consumed prefix of due is already zeroed; filter the remainder
	// down onto the front of the backing array.
	rest := live(append(w.due[:0], w.due[w.dueHead:]...))
	for i := len(rest); i < len(w.due); i++ {
		w.due[i] = event{}
	}
	w.due = rest
	w.dueHead = 0

	w.nwheel = 0
	for l := 0; l < wheelLevels; l++ {
		for j := 0; j < wheelSlots; j++ {
			if len(w.levels[l][j]) == 0 {
				continue
			}
			slot := live(w.levels[l][j])
			w.levels[l][j] = slot
			if len(slot) == 0 {
				w.occ[l][j>>6] &^= 1 << (uint(j) & 63)
			}
			w.nwheel += len(slot)
		}
	}

	w.overflow = live(w.overflow)
	for i := len(w.overflow)/2 - 1; i >= 0; i-- {
		siftDown(w.overflow, i)
	}

	w.total = len(w.due) + w.nwheel + len(w.overflow)
	w.ndead = 0
}

// nextSet returns the index of the first set bit at or after from in a
// 256-bit bitmap, or -1.
func nextSet(bm *[wheelSlots / 64]uint64, from int) int {
	word := from >> 6
	mask := ^uint64(0) << (uint(from) & 63)
	for ; word < len(bm); word++ {
		if b := bm[word] & mask; b != 0 {
			return word<<6 + bits.TrailingZeros64(b)
		}
		mask = ^uint64(0)
	}
	return -1
}
