package netsim

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/packet"
)

// TestStoppedTimerCompaction pins the timer-heap leak fix on the reference
// heap: cancelling long-deadline timers must reclaim their heap slots well
// before the deadline, or churn experiments grow the heap without bound.
// (The timing wheel reclaims lazily instead — see TestWheelStopReclaim.)
func TestStoppedTimerCompaction(t *testing.T) {
	s := NewSchedulerWith(false)
	const n = 1000
	timers := make([]*Timer, n)
	for i := range timers {
		timers[i] = s.After(Time(1000000+i), func() { t.Error("stopped timer fired") })
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if p := s.Pending(); p != 0 {
		t.Errorf("Pending = %d after stopping every timer, want 0 (compacted)", p)
	}
	// The scheduler must still work normally afterwards.
	fired := false
	s.After(5, func() { fired = true })
	s.Run(0)
	if !fired {
		t.Error("scheduler broken after compaction")
	}
}

// TestCompactionPreservesOrder: cancelling a random half of a same-time
// burst must not disturb the FIFO order of the survivors.
func TestCompactionPreservesOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	var cancel []*Timer
	for i := 0; i < 200; i++ {
		i := i
		tm := s.After(7, func() { order = append(order, i) })
		if i%2 == 1 {
			cancel = append(cancel, tm)
		}
	}
	for _, tm := range cancel {
		tm.Stop()
	}
	s.Run(0)
	if len(order) != 100 {
		t.Fatalf("fired %d, want 100", len(order))
	}
	for k := 1; k < len(order); k++ {
		if order[k] <= order[k-1] {
			t.Fatalf("order not FIFO after compaction: %v...", order[:k+1])
		}
	}
}

// TestPostOrderInterleavesWithTimers: Post events share the same (time,
// scheduling order) sequence as After timers.
func TestPostOrderInterleavesWithTimers(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(5, func() { order = append(order, 0) })
	s.Post(5, func() { order = append(order, 1) })
	s.After(5, func() { order = append(order, 2) })
	s.Post(3, func() { order = append(order, 3) })
	s.Run(0)
	want := []int{3, 0, 1, 2}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestLANReceiversGetIndependentHeaders: with the frame decoded once per
// crossing, a handler that mutates its packet header must not affect what
// the next station on the LAN sees.
func TestLANReceiversGetIndependentHeaders(t *testing.T) {
	n := NewNetwork()
	var ifaces []*Iface
	var ttls []byte
	for i := 0; i < 4; i++ {
		nd := n.AddNode("r")
		ifc := n.AddIface(nd, addr.V4(10, 1, 0, byte(i+1)))
		ifaces = append(ifaces, ifc)
		nd.Handle(packet.ProtoPIM, HandlerFunc(func(in *Iface, pkt *packet.Packet) {
			ttls = append(ttls, pkt.TTL)
			pkt.TTL = 0 // deliberate in-place mutation
		}))
	}
	n.ConnectLAN(1, ifaces...)
	pkt := packet.New(ifaces[0].Addr, addr.AllRouters, packet.ProtoPIM, []byte{1})
	ifaces[0].Node.Send(ifaces[0], pkt, 0)
	n.Sched.Run(0)
	if len(ttls) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(ttls))
	}
	for i, ttl := range ttls {
		if ttl != packet.DefaultTTL {
			t.Errorf("station %d saw TTL %d, want %d (header leaked between receivers)",
				i, ttl, packet.DefaultTTL)
		}
	}
}

// TestLANDeliverAllocs bounds the allocation cost of one LAN broadcast
// crossing with testing.AllocsPerRun: one frame buffer, one decoded packet,
// one delivery closure/event — not one of each per receiver.
func TestLANDeliverAllocs(t *testing.T) {
	n := NewNetwork()
	var ifaces []*Iface
	for i := 0; i < 8; i++ {
		nd := n.AddNode("r")
		nd.Handle(packet.ProtoPIM, HandlerFunc(func(in *Iface, pkt *packet.Packet) {}))
		ifaces = append(ifaces, n.AddIface(nd, addr.V4(10, 1, 0, byte(i+1))))
	}
	n.ConnectLAN(1, ifaces...)
	pkt := packet.New(ifaces[0].Addr, addr.AllRouters, packet.ProtoPIM, make([]byte, 32))
	allocs := testing.AllocsPerRun(200, func() {
		ifaces[0].Node.Send(ifaces[0], pkt, 0)
		n.Sched.Run(0)
	})
	// Marshal buffer, unmarshalled packet, Send closure, 7 per-receiver
	// header copies that escape into handlers, plus small slack. The old
	// per-receiver path cost ~3 heap objects per station on top of that.
	if allocs > 14 {
		t.Errorf("LAN crossing allocates %.1f objects, want <= 14", allocs)
	}
}

// TestSchedulerPostAllocs: the fire-and-forget scheduling path must not
// allocate per event beyond the caller's closure (heap growth amortizes to
// zero with a warm backing array).
func TestSchedulerPostAllocs(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm the backing arrays: on the wheel each level-0 slot has its own,
	// so the warmup must first-touch every slot the measured loop can hit.
	for i := 0; i < 512; i++ {
		s.Post(Time(i), fn)
	}
	s.Run(0)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Post(1, fn)
		s.Step()
	})
	if allocs > 0 {
		t.Errorf("Post allocates %.2f per event, want 0", allocs)
	}
}

// BenchmarkLANDeliver measures one frame crossing a 10-station LAN: flat
// handler table, single unmarshal, one event per crossing.
func BenchmarkLANDeliver(b *testing.B) {
	n := NewNetwork()
	var ifaces []*Iface
	for i := 0; i < 10; i++ {
		nd := n.AddNode("n")
		nd.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {}))
		ifaces = append(ifaces, n.AddIface(nd, addr.V4(10, 0, 0, byte(i+1))))
	}
	n.ConnectLAN(1, ifaces...)
	pkt := packet.New(ifaces[0].Addr, addr.AllSystems, packet.ProtoUDP, make([]byte, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ifaces[0].Node.Send(ifaces[0], pkt, 0)
		n.Sched.Run(0)
	}
}
