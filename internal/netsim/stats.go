package netsim

import "pim/internal/packet"

// The paper (§1, §1.2) measures protocol overhead in three currencies:
// state, control message processing, and data packet processing, "required
// across the entire network". Stats accumulates the message-processing side
// of that ledger: per-link and aggregate counts of control and data packets.
// State counts come from the protocol implementations themselves (see
// internal/metrics.Collector).

// DropReason classifies why a frame was not delivered. The fault-injection
// experiments report drop ledgers by name, so the reasons are exported and
// printable.
type DropReason int

// Drop reasons.
const (
	DropIfaceDown DropReason = iota
	DropLinkDown
	DropMalformed
	DropNoHandler
	DropInjectedLoss
	NumDropReasons
)

// dropNames indexes DropReason to its report label.
var dropNames = [NumDropReasons]string{
	DropIfaceDown:    "dropIfaceDown",
	DropLinkDown:     "dropLinkDown",
	DropMalformed:    "dropMalformed",
	DropNoHandler:    "dropNoHandler",
	DropInjectedLoss: "dropInjectedLoss",
}

// String names the drop reason for reports and test failures.
func (d DropReason) String() string {
	if d < 0 || d >= NumDropReasons {
		return "dropUnknown"
	}
	return dropNames[d]
}

// LinkStats counts traffic over a single link.
type LinkStats struct {
	DataPackets    int64
	ControlPackets int64
	DataBytes      int64
	ControlBytes   int64
}

// Stats aggregates network-wide traffic counters.
type Stats struct {
	PerLink []LinkStats // indexed by Link.ID
	Totals  LinkStats
	// Received counts packets successfully delivered to a handler's node.
	Received int64
	Drops    [NumDropReasons]int64
}

// IsData classifies a protocol number as data-plane. Application payloads
// (UDP) and register-encapsulated data count as data; everything else is
// control. This is the classification the paper's overhead discussion uses:
// registers carry data toward the RP, joins/prunes/reports are control.
func IsData(proto byte) bool {
	return proto == packet.ProtoUDP || proto == packet.ProtoPIMData
}

// Transmit records a packet entering a link.
func (s *Stats) Transmit(l *Link, pkt *packet.Packet) {
	for len(s.PerLink) <= l.ID {
		s.PerLink = append(s.PerLink, LinkStats{})
	}
	ls := &s.PerLink[l.ID]
	n := int64(pkt.Len())
	if IsData(pkt.Protocol) {
		ls.DataPackets++
		ls.DataBytes += n
		s.Totals.DataPackets++
		s.Totals.DataBytes += n
	} else {
		ls.ControlPackets++
		ls.ControlBytes += n
		s.Totals.ControlPackets++
		s.Totals.ControlBytes += n
	}
}

// Receive records a successful delivery.
func (s *Stats) Receive(pkt *packet.Packet) { s.Received++ }

// Drop records a dropped frame.
func (s *Stats) Drop(reason DropReason) { s.Drops[reason]++ }

// Dropped returns the total frames dropped for any reason.
func (s *Stats) Dropped() int64 {
	var t int64
	for _, d := range s.Drops {
		t += d
	}
	return t
}

// DropsByName returns the nonzero drop counters labeled by reason name, the
// form experiment ledgers and failure messages report.
func (s *Stats) DropsByName() map[string]int64 {
	out := map[string]int64{}
	for r, n := range s.Drops {
		if n != 0 {
			out[DropReason(r).String()] = n
		}
	}
	return out
}

// LinksCarryingData returns how many links carried at least one data packet
// — the paper's measure of how widely a distribution scheme touches the
// network (sparse-mode efficiency, §1.2).
func (s *Stats) LinksCarryingData() int {
	c := 0
	for _, ls := range s.PerLink {
		if ls.DataPackets > 0 {
			c++
		}
	}
	return c
}

// MaxLinkDataPackets returns the largest per-link data packet count — the
// traffic-concentration measure of Figure 2(b).
func (s *Stats) MaxLinkDataPackets() int64 {
	var max int64
	for _, ls := range s.PerLink {
		if ls.DataPackets > max {
			max = ls.DataPackets
		}
	}
	return max
}

// Merge folds another Stats into this one, summing every counter; the
// sharded runner uses it to collapse per-shard lanes into the network-wide
// aggregate at the end of a run.
func (s *Stats) Merge(o *Stats) {
	for len(s.PerLink) < len(o.PerLink) {
		s.PerLink = append(s.PerLink, LinkStats{})
	}
	for i := range o.PerLink {
		s.PerLink[i].DataPackets += o.PerLink[i].DataPackets
		s.PerLink[i].ControlPackets += o.PerLink[i].ControlPackets
		s.PerLink[i].DataBytes += o.PerLink[i].DataBytes
		s.PerLink[i].ControlBytes += o.PerLink[i].ControlBytes
	}
	s.Totals.DataPackets += o.Totals.DataPackets
	s.Totals.ControlPackets += o.Totals.ControlPackets
	s.Totals.DataBytes += o.Totals.DataBytes
	s.Totals.ControlBytes += o.Totals.ControlBytes
	s.Received += o.Received
	for i := range o.Drops {
		s.Drops[i] += o.Drops[i]
	}
}

// Reset zeroes all counters (used between measurement phases so warm-up
// traffic is excluded).
func (s *Stats) Reset() { *s = Stats{} }
