package netsim

import (
	"fmt"

	"pim/internal/addr"
	"pim/internal/packet"
)

// Handler consumes packets delivered to a node for one IP protocol number.
// in is the interface the packet arrived on.
//
// Borrowed-frame contract (DESIGN.md §13): pkt, its Payload, and anything
// aliasing the Payload (decoded message views, Register inner bytes) are
// only valid for the duration of the HandlePacket call — the backing frame
// returns to its scheduler's pool when the delivery fan-out completes. A
// handler that retains any of it must copy. SetPoisonFrames turns
// violations into deterministic garbage reads.
type Handler interface {
	HandlePacket(in *Iface, pkt *packet.Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(in *Iface, pkt *packet.Packet)

// HandlePacket implements Handler.
func (f HandlerFunc) HandlePacket(in *Iface, pkt *packet.Packet) { f(in, pkt) }

// Node is a simulated router or host. Protocol stacks register per-protocol
// handlers; packets with no handler are counted as dropped.
type Node struct {
	Net    *Network
	ID     int
	Name   string
	Ifaces []*Iface

	// handlers is a flat demux table indexed by IP protocol number: the
	// per-delivery lookup is one array load instead of a map probe, which
	// matters because every packet crossing every link goes through it.
	handlers     [256]Handler
	onLinkChange []func(*Iface)
	// shard is the index of the shard that owns this node's events in a
	// sharded run (0 always, otherwise). -1 marks a node added after
	// Shard() that has not been placed yet.
	shard int
	// xmit sequences the node's transmissions; part of the deterministic
	// merge key for cross-shard deliveries.
	xmit uint64
}

// Sched returns the scheduler that owns this node's events: its shard's
// scheduler in a sharded run, the network's root scheduler otherwise.
// Protocol engines must schedule node-scoped timers through this (never
// through Net.Sched directly), so the same engine code runs unchanged on
// both paths.
func (nd *Node) Sched() *Scheduler { return nd.Net.schedFor(nd) }

// Shard returns the index of the shard owning the node (0 when unsharded).
func (nd *Node) Shard() int {
	if nd.shard < 0 {
		return 0
	}
	return nd.shard
}

// Iface is one network attachment point of a node.
type Iface struct {
	Node  *Node
	Index int // position within Node.Ifaces
	Addr  addr.IP
	Link  *Link
	up    bool
}

// Up reports whether both the interface and its link are operational.
func (i *Iface) Up() bool { return i.up && i.Link != nil && i.Link.up }

// String names the interface for traces: "node/ifN".
func (i *Iface) String() string { return fmt.Sprintf("%s/if%d", i.Node.Name, i.Index) }

// Link joins two or more interfaces. Two interfaces make a point-to-point
// link; three or more make a multi-access LAN on which every attached
// interface hears every frame (the §3.7 prune-override behaviour depends on
// this).
type Link struct {
	Net    *Network
	ID     int
	Delay  Time
	Ifaces []*Iface
	up     bool

	// Bandwidth, when nonzero, is the link capacity in bytes per second:
	// each frame occupies the transmitter for len/Bandwidth and later
	// frames queue FIFO behind it. Zero means infinite capacity (pure
	// propagation delay), the default. Finite bandwidth turns traffic
	// concentration (Figure 1(c)/2(b)) into measurable queueing delay.
	Bandwidth int64
	// nextFree[iface] is when the transmitter side of the link frees up.
	nextFree map[*Iface]Time
	// MaxQueueDelay records the worst queueing delay any frame saw.
	MaxQueueDelay Time
}

// IsLAN reports whether the link attaches more than two interfaces.
func (l *Link) IsLAN() bool { return len(l.Ifaces) > 2 }

// Up reports whether the link is operational.
func (l *Link) Up() bool { return l.up }

// TraceEvent describes one packet delivery for test and example hooks.
// Pkt is borrowed under the same contract as Handler deliveries: copy
// whatever outlives the callback.
type TraceEvent struct {
	At   Time
	From *Iface // transmitting interface
	To   *Iface // receiving interface
	Pkt  *packet.Packet
}

// Network owns the scheduler, nodes, and links of one simulation.
type Network struct {
	Sched *Scheduler
	Nodes []*Node
	Links []*Link
	Stats Stats
	// Trace, if non-nil, observes every packet delivery.
	Trace func(TraceEvent)
	// Loss, if non-nil, is consulted for every frame delivery; returning
	// true drops the frame. Used by failure-injection tests to verify the
	// soft-state robustness claims (§2): lost control messages must be
	// recovered by the next periodic refresh, not retransmission.
	Loss func(from, to *Iface, pkt *packet.Packet) bool
	// Jitter, if non-nil, is consulted once per transmission (per link
	// crossing, not per receiver) and returns extra propagation delay added
	// to the link's Delay for that frame. The fault layer's message-reorder
	// primitive rides on it: jittered frames from one sender can overtake
	// each other. Extra delay only ever increases arrival time, so the
	// sharded core's conservative lookahead (min cross-shard link delay)
	// stays valid. Under sharded execution the hook is invoked from shard
	// goroutines concurrently: implementations must partition any mutable
	// state by transmitting interface (one iface sends from one shard).
	Jitter func(from *Iface, pkt *packet.Packet) Time

	byAddr map[addr.IP]*Iface
	// set is non-nil once Shard() has partitioned the network for parallel
	// execution (see shards.go).
	set *shardSet
}

// NewNetwork creates an empty network with a fresh scheduler.
func NewNetwork() *Network {
	return &Network{Sched: NewScheduler(), byAddr: map[addr.IP]*Iface{}}
}

// AddNode creates a node. Names must be unique only for readable traces.
// On a sharded network the new node starts unplaced; assign it with
// SetNodeShard before it schedules or receives anything.
func (n *Network) AddNode(name string) *Node {
	nd := &Node{Net: n, ID: len(n.Nodes), Name: name}
	if n.set != nil {
		nd.shard = -1
	}
	n.Nodes = append(n.Nodes, nd)
	return nd
}

// AddIface attaches a new interface with the given address to the node. The
// interface starts up but unlinked; use Connect/ConnectLAN to join links.
func (n *Network) AddIface(nd *Node, ip addr.IP) *Iface {
	ifc := &Iface{Node: nd, Index: len(nd.Ifaces), Addr: ip, up: true}
	nd.Ifaces = append(nd.Ifaces, ifc)
	if ip != 0 {
		n.byAddr[ip] = ifc
	}
	return ifc
}

// Connect joins exactly two interfaces with a point-to-point link.
func (n *Network) Connect(a, b *Iface, delay Time) *Link {
	return n.link(delay, a, b)
}

// ConnectLAN joins any number of interfaces on a shared multi-access link.
func (n *Network) ConnectLAN(delay Time, ifaces ...*Iface) *Link {
	return n.link(delay, ifaces...)
}

func (n *Network) link(delay Time, ifaces ...*Iface) *Link {
	if len(ifaces) < 2 {
		panic("netsim: link needs at least two interfaces")
	}
	if delay <= 0 {
		delay = 1
	}
	l := &Link{Net: n, ID: len(n.Links), Delay: delay, up: true}
	for _, ifc := range ifaces {
		if ifc.Link != nil {
			panic("netsim: interface already linked: " + ifc.String())
		}
		ifc.Link = l
		l.Ifaces = append(l.Ifaces, ifc)
	}
	n.Links = append(n.Links, l)
	return l
}

// SetLinkUp changes a link's operational state and notifies link-change
// subscribers on every attached node (unicast routing reacts to this; PIM
// then adapts per §3.8).
func (n *Network) SetLinkUp(l *Link, up bool) {
	if l.up == up {
		return
	}
	l.up = up
	for _, ifc := range l.Ifaces {
		for _, fn := range ifc.Node.onLinkChange {
			fn(ifc)
		}
	}
}

// SetIfaceUp changes one interface's operational state and notifies
// link-change subscribers on every node sharing its link. This is the
// fail-stop router model of the fault-injection layer (internal/faults): a
// crashed router's interfaces all go down while the links — and, on a LAN,
// the other stations — stay up.
func (n *Network) SetIfaceUp(ifc *Iface, up bool) {
	if ifc.up == up {
		return
	}
	ifc.up = up
	if ifc.Link == nil {
		for _, fn := range ifc.Node.onLinkChange {
			fn(ifc)
		}
		return
	}
	for _, peer := range ifc.Link.Ifaces {
		for _, fn := range peer.Node.onLinkChange {
			fn(peer)
		}
	}
}

// IfaceByAddr resolves an interface address.
func (n *Network) IfaceByAddr(ip addr.IP) *Iface { return n.byAddr[ip] }

// Handle registers h for an IP protocol number on the node.
func (nd *Node) Handle(proto byte, h Handler) { nd.handlers[proto] = h }

// OnLinkChange registers a callback invoked when any of the node's links
// change operational state.
func (nd *Node) OnLinkChange(fn func(*Iface)) {
	nd.onLinkChange = append(nd.onLinkChange, fn)
}

// Addr returns the node's primary address (interface 0), or 0 if none.
func (nd *Node) Addr() addr.IP {
	if len(nd.Ifaces) == 0 {
		return 0
	}
	return nd.Ifaces[0].Addr
}

// OwnsAddr reports whether ip is one of the node's interface addresses.
func (nd *Node) OwnsAddr(ip addr.IP) bool {
	for _, ifc := range nd.Ifaces {
		if ifc.Addr == ip {
			return true
		}
	}
	return false
}

// IfaceTo returns the node's interface on the same link as the neighbor
// address, or nil.
func (nd *Node) IfaceTo(neighbor addr.IP) *Iface {
	for _, ifc := range nd.Ifaces {
		if ifc.Link == nil {
			continue
		}
		for _, peer := range ifc.Link.Ifaces {
			if peer != ifc && peer.Addr == neighbor {
				return ifc
			}
		}
	}
	return nil
}

// Send transmits pkt out the given interface. nextHop selects the receiving
// interface on a LAN (the link-layer destination); pass 0 to deliver to all
// other attached interfaces, which is what multicast and broadcast frames
// do. On point-to-point links nextHop is ignored.
//
// The packet is marshalled to bytes here and the frame unmarshalled once
// when it comes off the link — one codec round trip per link crossing, the
// same coverage as before, but a LAN frame heard by k stations no longer
// decodes k times. Each receiving handler still gets its own Packet header
// (payload bytes are shared, exactly as the per-receiver decode shared the
// frame buffer). Malformed packets panic (they indicate a protocol
// implementation bug, not a runtime condition).
func (nd *Node) Send(out *Iface, pkt *packet.Packet, nextHop addr.IP) {
	if out == nil || !out.Up() {
		nd.Net.statsFor(nd).Drop(DropIfaceDown)
		return
	}
	link := out.Link
	net := nd.Net
	// Pooled path (the default): marshal straight into a recycled frame, so
	// pkt — and any scratch buffer backing its Payload — is free for reuse
	// the moment Send returns. The allocating closure path below is the
	// differential oracle (SetFramePool).
	var f *frame
	var buf []byte
	var err error
	if framePoolOn.Load() {
		f = net.schedFor(nd).frames.get()
		f.buf, err = pkt.MarshalTo(f.buf[:0])
		buf = f.buf
	} else {
		buf, err = pkt.Marshal()
	}
	if err != nil {
		panic("netsim: marshal failed: " + err.Error())
	}
	net.statsFor(nd).Transmit(link, pkt)
	// Jitter is drawn once per transmission, before the sharded dispatch:
	// the hook needs the packet header, which sendSharded does not carry.
	var jit Time
	if net.Jitter != nil {
		jit = net.Jitter(out, pkt)
	}
	if set := net.set; set != nil {
		nd.sendSharded(set, out, link, f, buf, nextHop, jit)
		return
	}
	// Serialization and queueing under finite bandwidth.
	var txDone Time
	now := net.Sched.Now()
	if link.Bandwidth > 0 {
		if link.nextFree == nil {
			link.nextFree = map[*Iface]Time{}
		}
		start := link.nextFree[out]
		if start < now {
			start = now
		}
		if q := start - now; q > link.MaxQueueDelay {
			link.MaxQueueDelay = q
		}
		tx := Time(int64(pkt.Len()) * int64(Second) / link.Bandwidth)
		if tx < 1 {
			tx = 1
		}
		txDone = start + tx - now
		link.nextFree[out] = start + tx
	}
	// One scheduler event per link crossing (not per receiver): the frame is
	// decoded once at arrival and fanned to every station in attachment
	// order. The event carries the structural (sender, transmit sequence)
	// order key, so same-instant deliveries fire in an order independent of
	// shard count.
	delay := link.Delay + jit
	nd.xmit++
	if f != nil {
		f.net, f.from, f.link, f.nextHop, f.shard = net, out, link, nextHop, -1
		net.Sched.enqueueDeliveryFrame(now+txDone+delay, now, deliveryOrd(nd.ID, nd.xmit), f)
	} else {
		net.Sched.enqueueDelivery(now+txDone+delay, now, deliveryOrd(nd.ID, nd.xmit),
			func() { net.deliverFrame(out, link, buf, nextHop, -1) })
	}
}

// sendSharded routes one transmission in a sharded run: stations on the
// sender's own shard get a local delivery event (the same single frame
// event per link crossing as the sequential path), stations on foreign
// shards get an outbox record per destination shard, merged at the next
// barrier. Finite bandwidth is rejected up front by shardSet.prepare, so
// the deadline is propagation delay plus any jitter (jitter only adds
// delay, so the conservative lookahead bound still holds).
func (nd *Node) sendSharded(set *shardSet, out *Iface, link *Link, f *frame, buf []byte, nextHop addr.IP, jit Time) {
	net := nd.Net
	sched := set.scheds[nd.shard]
	now := sched.Now()
	delay := link.Delay + jit
	nd.xmit++
	local := false
	foreign := -1
	for _, to := range link.Ifaces {
		if to == out {
			continue
		}
		if to.Node.shard == nd.shard {
			local = true
		} else {
			// prepare() guarantees cross-shard links are point-to-point, so
			// at most one foreign shard is ever involved.
			foreign = to.Node.shard
		}
	}
	if foreign >= 0 {
		// The frame bytes are copied so the two shards never share a
		// payload backing array; the copy happens before any pooled frame
		// can be released below.
		set.outboxes[nd.shard] = append(set.outboxes[nd.shard], xrec{
			at:      now + delay,
			bs:      now,
			src:     nd.ID,
			xmit:    nd.xmit,
			dst:     foreign,
			from:    out,
			link:    link,
			frame:   append([]byte(nil), buf...),
			nextHop: nextHop,
		})
	}
	if local {
		if f != nil {
			f.net, f.from, f.link, f.nextHop, f.shard = net, out, link, nextHop, nd.shard
			sched.enqueueDeliveryFrame(now+delay, now, deliveryOrd(nd.ID, nd.xmit), f)
		} else {
			myShard := nd.shard
			sched.enqueueDelivery(now+delay, now, deliveryOrd(nd.ID, nd.xmit),
				func() { net.deliverFrame(out, link, buf, nextHop, myShard) })
		}
	} else if f != nil {
		// Purely cross-shard: the outbox record owns a copy, so the frame
		// goes straight back to its pool.
		sched.frames.put(f)
	}
}

// deliverFrame takes one frame off the link: a single unmarshal, then
// delivery to every eligible attached interface. shard restricts delivery
// to stations owned by that shard (-1 delivers to all stations — the
// sequential path).
func (n *Network) deliverFrame(from *Iface, link *Link, frame []byte, nextHop addr.IP, shard int) {
	pkt, err := packet.Unmarshal(frame)
	n.fanout(from, link, pkt, err, nextHop, shard, nil)
}

// fanout delivers one decoded frame to every eligible station. rcv, when
// non-nil, is a reusable per-receiver header scratch (the pooled path);
// nil makes each receiver's header copy a fresh allocation (the oracle
// path). Either way a handler mutating its view (TTL etc.) cannot leak
// into the next station's delivery.
func (n *Network) fanout(from *Iface, link *Link, pkt *packet.Packet, err error, nextHop addr.IP, shard int, rcv *packet.Packet) {
	lan := link.IsLAN()
	for _, to := range link.Ifaces {
		if to == from {
			continue
		}
		if shard >= 0 && to.Node.shard != shard {
			continue
		}
		if lan && nextHop != 0 && to.Addr != nextHop {
			continue
		}
		if !to.Up() || !from.Up() {
			n.statsFor(to.Node).Drop(DropLinkDown)
			continue
		}
		if err != nil {
			n.statsFor(to.Node).Drop(DropMalformed)
			continue
		}
		if rcv != nil {
			*rcv = *pkt
			n.deliver(from, to, rcv)
		} else {
			cp := *pkt
			n.deliver(from, to, &cp)
		}
	}
}

func (n *Network) deliver(from, to *Iface, pkt *packet.Packet) {
	stats := n.statsFor(to.Node)
	if n.Loss != nil && n.Loss(from, to, pkt) {
		stats.Drop(DropInjectedLoss)
		return
	}
	stats.Receive(pkt)
	if n.Trace != nil {
		n.Trace(TraceEvent{At: n.Sched.Now(), From: from, To: to, Pkt: pkt})
	}
	h := to.Node.handlers[pkt.Protocol]
	if h == nil {
		stats.Drop(DropNoHandler)
		return
	}
	h.HandlePacket(to, pkt)
}

// LocalSend injects a locally originated packet into the node's own stack as
// if it had arrived on the given interface; used for loopback-style delivery
// (e.g. an RP processing its own register) without crossing a link.
func (nd *Node) LocalSend(ifc *Iface, pkt *packet.Packet) {
	h := nd.handlers[pkt.Protocol]
	if h == nil {
		nd.Net.statsFor(nd).Drop(DropNoHandler)
		return
	}
	h.HandlePacket(ifc, pkt)
}
