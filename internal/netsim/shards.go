package netsim

// Sharded parallel execution: the topology is partitioned into shards, each
// owning a disjoint set of nodes and a private Scheduler (its own timing
// wheel), and the shards execute concurrently under conservative lookahead.
//
// The synchronization protocol (DESIGN.md §12):
//
//   - Lookahead. Let L be the minimum delay over links whose endpoints live
//     on different shards. A packet sent at time t across a shard boundary
//     cannot arrive before t+L, so if every shard has executed everything
//     before a window boundary W, no shard can receive a foreign event
//     before W+L. The epoch loop therefore runs all shards in parallel over
//     the window [W, W+L), with no communication inside the window.
//   - Exchange. Cross-shard transmissions are buffered as timestamped
//     outbox records during the window and merged at the barrier, each
//     record carrying the packet bytes plus the ordering pedigree below.
//     Every arrival's deadline lies at or beyond the next window boundary,
//     so no shard ever receives an event in its past.
//   - Root actions. Globally scoped work — link flaps, router crashes,
//     loss-model installs, experiment snapshots — stays on the Network's
//     root scheduler. The epoch loop treats each pending root deadline as a
//     window boundary: shards quiesce, clocks align on the instant, the
//     actions run serially (before any shard-local event at that instant),
//     and their own transmissions join the next exchange.
//
// Determinism: shard count must be unobservable in results. Within a shard,
// events fire in event.before order — (deadline, birth instant, order key)
// — and every component of that key is computed from values that do not
// depend on shard count:
//
//   - Packet deliveries (the only events that ever cross a shard boundary)
//     carry the structural deliveryOrd key: (sending node ID, per-node
//     transmit sequence). A merged arrival therefore interleaves with local
//     deliveries at the same instant in exactly the order the sequential
//     path fires them, regardless of which shard flushed first.
//   - Timer/Post events carry scheduler-private sequence numbers. They
//     never cross shards, and the relative creation order of two events on
//     one shard is the same in a sequential run (the shard's events fire in
//     the same relative order, by induction), so private counters suffice.
//
// The sequential path (shards=1, the default) runs the identical ordering
// rule on a single scheduler, and the differential gates (scenario
// telemetry streams, the recovery matrix, the scaling grids) hold shards=N
// to its output.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pim/internal/addr"
)

// numShards is the process-global default shard count for subsequently
// built simulations, mirroring the UseWheel/fastpath toggles. 1 (the
// default) means fully sequential execution.
var numShards atomic.Int32

func init() { numShards.Store(1) }

// Shards returns the current default shard count.
func Shards() int { return int(numShards.Load()) }

// SetShards sets the default shard count for subsequently built simulations
// and returns the previous setting. Values below 1 are clamped to 1.
// Existing networks are unaffected.
func SetShards(n int) (prev int) {
	if n < 1 {
		n = 1
	}
	return int(numShards.Swap(int32(n)))
}

// ShardLoad is one shard's execution counters over a sharded run: events
// executed, wall-clock time spent idle at window barriers while a sibling
// shard was still running, and the number of lookahead stalls (windows the
// shard spent with nothing to execute while some other shard had work).
type ShardLoad struct {
	Shard     int   `json:"shard"`
	Events    int64 `json:"events"`
	BlockedNs int64 `json:"blocked_ns"`
	Stalls    int64 `json:"stalls"`
}

// xrec is one buffered cross-shard transmission: everything needed to
// deliver the frame on the destination shard. (src, xmit) is the structural
// order key that slots the arrival into the destination's event order.
type xrec struct {
	at      Time   // arrival deadline (send instant + link delay)
	bs      Time   // birth (send) instant
	src     int    // sending node ID
	xmit    uint64 // sending node's transmit sequence
	dst     int    // destination shard
	from    *Iface
	link    *Link
	frame   []byte
	nextHop addr.IP
}

// shardSet is the sharded execution engine owned by a Network's root
// scheduler.
type shardSet struct {
	net    *Network
	n      int
	scheds []*Scheduler
	// lookahead is the window length: the minimum cross-shard link delay,
	// recomputed at the start of every run (maxTime when nothing crosses).
	lookahead Time
	// outboxes[s] buffers cross-shard transmissions originating on shard s
	// (or from serial code acting on shard-s nodes); drained at barriers.
	outboxes [][]xrec
	// stats[s] is shard s's private statistics lane, folded into
	// Network.Stats when a run completes.
	stats []Stats
	loads []ShardLoad
	// busy/prevProcessed/active are per-window scratch, reused so the epoch
	// loop allocates nothing in steady state.
	busy          []int64
	prevProcessed []int64
	active        []int
}

// Shard partitions the network for parallel execution: nshards private
// schedulers are created and every existing node is assigned to the shard
// shardOf returns for it. It must be called on a fresh network — before any
// event is scheduled — and at most once. Nodes added afterwards must be
// placed with SetNodeShard before they can send or receive.
//
// Sharded runs refuse finite-bandwidth links, delivery traces, and LANs
// spanning shards (see shardSet.prepare); everything else — including the
// packet codec round trip per link crossing — behaves identically to the
// sequential path.
func (n *Network) Shard(nshards int, shardOf func(*Node) int) {
	if n.set != nil {
		panic("netsim: network already sharded")
	}
	if nshards < 2 {
		return
	}
	if n.Sched.now != 0 || n.Sched.Pending() != 0 || n.Sched.Processed != 0 {
		panic("netsim: Shard must be called before any event is scheduled or run")
	}
	wheel := n.Sched.wheel != nil
	ss := &shardSet{
		net:           n,
		n:             nshards,
		scheds:        make([]*Scheduler, nshards),
		outboxes:      make([][]xrec, nshards),
		stats:         make([]Stats, nshards),
		loads:         make([]ShardLoad, nshards),
		busy:          make([]int64, nshards),
		prevProcessed: make([]int64, nshards),
	}
	for i := range ss.scheds {
		ss.scheds[i] = NewSchedulerWith(wheel)
		ss.loads[i].Shard = i
	}
	for _, nd := range n.Nodes {
		k := shardOf(nd)
		if k < 0 || k >= nshards {
			panic(fmt.Sprintf("netsim: shard index %d out of range for node %s", k, nd.Name))
		}
		nd.shard = k
	}
	n.set = ss
	n.Sched.set = ss
}

// Sharded reports whether the network executes on multiple shards.
func (n *Network) Sharded() bool { return n.set != nil }

// ShardCount returns the number of shards (1 when unsharded).
func (n *Network) ShardCount() int {
	if n.set == nil {
		return 1
	}
	return n.set.n
}

// SetNodeShard places a node added after Shard() — a host or a LAN anchor —
// on an existing shard (typically its attachment router's).
func (n *Network) SetNodeShard(nd *Node, shard int) {
	if n.set == nil {
		return
	}
	if shard < 0 || shard >= n.set.n {
		panic(fmt.Sprintf("netsim: shard index %d out of range for node %s", shard, nd.Name))
	}
	nd.shard = shard
}

// ShardLoads returns a copy of the per-shard execution counters accumulated
// so far (nil when unsharded).
func (n *Network) ShardLoads() []ShardLoad {
	if n.set == nil {
		return nil
	}
	out := make([]ShardLoad, len(n.set.loads))
	copy(out, n.set.loads)
	return out
}

// EventsProcessed returns the number of scheduler events executed across
// the whole simulation — the root scheduler plus every shard.
func (n *Network) EventsProcessed() int64 {
	total := n.Sched.Processed
	if n.set != nil {
		for _, s := range n.set.scheds {
			total += s.Processed
		}
	}
	return total
}

// PeakLiveTimers returns the scheduler timer-population high-water mark.
// Sharded runs report the sum of per-shard peaks — an upper bound on the
// sharded run's instantaneous global peak (shards need not peak at the same
// moment), but not comparable to the sequential run's peak in either
// direction: cross-shard frames buffered in outboxes are not counted live
// until the barrier merges them. The differential gates mask this field.
func (n *Network) PeakLiveTimers() int {
	total := n.Sched.PeakLiveTimers()
	if n.set != nil {
		for _, s := range n.set.scheds {
			total += s.PeakLiveTimers()
		}
	}
	return total
}

// LiveTimers returns the number of currently pending live events across the
// root scheduler and every shard.
func (n *Network) LiveTimers() int {
	total := n.Sched.LiveTimers()
	if n.set != nil {
		for _, s := range n.set.scheds {
			total += s.LiveTimers()
		}
	}
	return total
}

// ShardScheduler returns shard i's private scheduler, or the root scheduler
// when the network is unsharded. Telemetry gauges that poll scheduler state
// from inside a shard's execution (e.g. per-lane live-timer readers) must use
// their own shard's scheduler — cross-shard reads during a window race.
func (n *Network) ShardScheduler(i int) *Scheduler {
	if n.set == nil {
		return n.Sched
	}
	return n.set.scheds[i]
}

// schedFor returns the scheduler that owns a node's events.
func (n *Network) schedFor(nd *Node) *Scheduler {
	if n.set != nil {
		return n.set.scheds[nd.shard]
	}
	return n.Sched
}

// statsFor returns the statistics lane a node's activity is charged to: the
// node's shard lane when sharded (folded into Network.Stats at the end of
// each run), the shared Stats otherwise.
func (n *Network) statsFor(nd *Node) *Stats {
	if n.set != nil {
		return &n.set.stats[nd.shard]
	}
	return &n.Stats
}

// prepare validates the topology for sharded execution and derives the
// lookahead window from the current link set.
func (ss *shardSet) prepare() {
	if ss.net.Trace != nil {
		panic("netsim: packet tracing is not supported in sharded runs")
	}
	ss.lookahead = maxTime
	for _, l := range ss.net.Links {
		if l.Bandwidth > 0 {
			panic("netsim: finite-bandwidth links are not supported in sharded runs")
		}
		first := l.Ifaces[0].Node.shard
		cross := false
		for _, ifc := range l.Ifaces[1:] {
			if ifc.Node.shard != first {
				cross = true
				break
			}
		}
		if !cross {
			continue
		}
		if l.IsLAN() {
			panic("netsim: a multi-access LAN may not span shards")
		}
		if l.Delay < ss.lookahead {
			ss.lookahead = l.Delay
		}
	}
	for _, nd := range ss.net.Nodes {
		if nd.shard < 0 || nd.shard >= ss.n {
			panic("netsim: node " + nd.Name + " has no shard assignment")
		}
	}
}

// run is the conservative-lookahead epoch loop behind the root scheduler's
// RunUntil. Each iteration picks the next window boundary — the lookahead
// horizon, the next root-action deadline, or the run deadline, whichever
// comes first — executes all shards in parallel up to it, exchanges
// cross-shard traffic, and runs any root actions pinned to the boundary.
func (ss *shardSet) run(deadline Time) {
	ss.prepare()
	root := ss.net.Sched
	// Halt is honored at window boundaries: root actions run serially, so a
	// halt they raise stops the epoch loop before the next window opens.
	for !root.halted {
		cur := root.now
		b := deadline + 1
		if ss.lookahead < b-cur {
			b = cur + ss.lookahead
		}
		if tAct, ok := root.peekTime(); ok && tAct < b {
			b = tAct
		}
		ss.runWindow(b - 1)
		ss.exchange()
		align := b
		if align > deadline {
			align = deadline
		}
		for _, s := range ss.scheds {
			s.advanceTo(align)
		}
		root.advanceTo(align)
		if b > deadline {
			break
		}
		// Root actions at the boundary run before any shard event at the
		// same instant — they were scheduled from serial phases, so the
		// sequential run would have drained them first too. Their own
		// transmissions join an immediate second exchange.
		for !root.halted {
			ev, ok := root.next(b)
			if !ok {
				break
			}
			root.fire(ev)
		}
		ss.exchange()
	}
	ss.fold()
}

// runWindow executes every shard's events with deadlines <= until,
// concurrently. Shards with no work in the window advance their clocks
// without spawning; a single busy shard runs inline on the caller.
func (ss *shardSet) runWindow(until Time) {
	if until < ss.net.Sched.now {
		return
	}
	activeIdx := ss.active[:0]
	for i, s := range ss.scheds {
		if t, ok := s.peekTime(); ok && t <= until {
			activeIdx = append(activeIdx, i)
			ss.prevProcessed[i] = s.Processed
		} else {
			s.advanceTo(until)
		}
	}
	ss.active = activeIdx
	switch len(activeIdx) {
	case 0:
	case 1:
		i := activeIdx[0]
		start := time.Now()
		ss.scheds[i].runUntil(until)
		ss.busy[i] = time.Since(start).Nanoseconds()
		ss.loads[i].Events += ss.scheds[i].Processed - ss.prevProcessed[i]
	default:
		var wg sync.WaitGroup
		for _, i := range activeIdx {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := time.Now()
				ss.scheds[i].runUntil(until)
				ss.busy[i] = time.Since(start).Nanoseconds()
			}(i)
		}
		wg.Wait()
		var max int64
		for _, i := range activeIdx {
			if ss.busy[i] > max {
				max = ss.busy[i]
			}
			ss.loads[i].Events += ss.scheds[i].Processed - ss.prevProcessed[i]
		}
		for _, i := range activeIdx {
			ss.loads[i].BlockedNs += max - ss.busy[i]
		}
	}
	if len(activeIdx) > 0 && len(activeIdx) < ss.n {
		for i := range ss.scheds {
			idle := true
			for _, a := range activeIdx {
				if a == i {
					idle = false
					break
				}
			}
			if idle {
				ss.loads[i].Stalls++
			}
		}
	}
}

// exchange drains every shard's outbox into the destination shards'
// schedulers. No sorting and no rank assignment are needed: every record's
// structural key — (arrival deadline, birth instant, deliveryOrd(src,
// xmit)) — is exactly the key the sequential path would have stamped on the
// same delivery, so the destination scheduler interleaves merged arrivals
// with its own local deliveries in canonical order automatically.
func (ss *shardSet) exchange() {
	net := ss.net
	pooled := framePoolOn.Load()
	for s := range ss.outboxes {
		for _, r := range ss.outboxes[s] {
			rec := r
			dst := rec.dst
			sched := ss.scheds[dst]
			if pooled {
				// The record's byte copy becomes the frame buffer outright —
				// ownership transfers to the destination shard's pool, no
				// second copy. Exchange runs serially at the barrier with
				// every shard quiesced, so touching the destination pool here
				// is race-free.
				f := sched.frames.get()
				f.buf = rec.frame
				f.net, f.from, f.link, f.nextHop, f.shard = net, rec.from, rec.link, rec.nextHop, dst
				sched.enqueueDeliveryFrame(rec.at, rec.bs, deliveryOrd(rec.src, rec.xmit), f)
			} else {
				sched.enqueueDelivery(rec.at, rec.bs, deliveryOrd(rec.src, rec.xmit),
					func() { net.deliverFrame(rec.from, rec.link, rec.frame, rec.nextHop, dst) })
			}
		}
		ss.outboxes[s] = ss.outboxes[s][:0]
	}
}

// fold merges the per-shard statistics lanes into Network.Stats, so every
// post-run reader sees exactly the aggregate a sequential run would have
// produced.
func (ss *shardSet) fold() {
	for i := range ss.stats {
		ss.net.Stats.Merge(&ss.stats[i])
		ss.stats[i] = Stats{}
	}
}
