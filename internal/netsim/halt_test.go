package netsim

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/packet"
)

// TestSchedulerHaltStopsRunLoops pins the fail-fast contract: the event that
// calls Halt completes, no later event fires, and the clock freezes at the
// halt instant instead of advancing to the deadline.
func TestSchedulerHaltStopsRunLoops(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.After(5, func() { fired = append(fired, s.Now()) })
	s.After(10, func() {
		fired = append(fired, s.Now())
		s.Halt()
	})
	s.After(15, func() { fired = append(fired, s.Now()) })
	s.RunUntil(100)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("fired = %v, want [5 10]", fired)
	}
	if !s.Halted() {
		t.Fatal("scheduler not halted")
	}
	if s.Now() != 10 {
		t.Errorf("clock = %d, want frozen at 10", s.Now())
	}
	// Sticky: another RunUntil makes no progress.
	s.RunUntil(200)
	if len(fired) != 2 || s.Now() != 10 {
		t.Fatalf("halted scheduler made progress: fired=%v now=%d", fired, s.Now())
	}
	// ClearHalt resumes exactly where the run stopped.
	s.ClearHalt()
	s.RunUntil(200)
	if len(fired) != 3 || fired[2] != 15 {
		t.Fatalf("after ClearHalt fired = %v, want third event at 15", fired)
	}
	if s.Now() != 200 {
		t.Errorf("clock = %d, want 200", s.Now())
	}
}

// TestSchedulerHaltDeterministic runs the same halting workload twice and
// requires the identical stop point — the property fault-schedule search
// relies on when it replays a first-violation halt.
func TestSchedulerHaltDeterministic(t *testing.T) {
	run := func() (int, Time) {
		s := NewScheduler()
		count := 0
		for i := 0; i < 50; i++ {
			i := i
			s.After(Time(i), func() {
				count++
				if i == 23 {
					s.Halt()
				}
			})
		}
		s.RunUntil(1000)
		return count, s.Now()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("halt not deterministic: (%d,%d) vs (%d,%d)", c1, t1, c2, t2)
	}
	if c1 != 24 || t1 != 23 {
		t.Fatalf("halt point = (%d events, t=%d), want (24, 23)", c1, t1)
	}
}

// TestJitterDelaysDelivery pins the Jitter hook's contract: the returned
// extra delay is added to the link's propagation delay for that frame, and
// two back-to-back transmissions can arrive reordered.
func TestJitterDelaysDelivery(t *testing.T) {
	n, a, b := buildPair(t, 5*Millisecond)
	var arrivals []string
	b.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {
		arrivals = append(arrivals, string(append([]byte(nil), pkt.Payload...)))
	}))
	// First frame gets +20ms jitter, second none: the second overtakes.
	calls := 0
	n.Jitter = func(from *Iface, pkt *packet.Packet) Time {
		calls++
		if calls == 1 {
			return 20 * Millisecond
		}
		return 0
	}
	a.Send(a.Ifaces[0], packet.New(a.Addr(), b.Addr(), packet.ProtoUDP, []byte("one")), 0)
	a.Send(a.Ifaces[0], packet.New(a.Addr(), b.Addr(), packet.ProtoUDP, []byte("two")), 0)
	n.Sched.Run(0)
	if len(arrivals) != 2 || arrivals[0] != "two" || arrivals[1] != "one" {
		t.Fatalf("arrivals = %v, want [two one]", arrivals)
	}
	if n.Sched.Now() != 25*Millisecond {
		t.Errorf("last delivery at %d, want %d", n.Sched.Now(), 25*Millisecond)
	}
}

// TestJitterLANSingleDrawPerTransmission verifies the hook is consulted once
// per link crossing, not once per receiver: all LAN stations hear the
// jittered frame at the same instant.
func TestJitterLANSingleDrawPerTransmission(t *testing.T) {
	n := NewNetwork()
	sender := n.AddNode("s")
	sIfc := n.AddIface(sender, addr.V4(10, 1, 0, 1))
	var ifaces []*Iface
	arrival := map[string]Time{}
	for _, name := range []string{"r1", "r2", "r3"} {
		nd := n.AddNode(name)
		ifc := n.AddIface(nd, addr.V4(10, 1, 0, byte(len(ifaces)+2)))
		ifaces = append(ifaces, ifc)
		name := name
		nd.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {
			arrival[name] = nd.Sched().Now()
		}))
	}
	n.ConnectLAN(Millisecond, append([]*Iface{sIfc}, ifaces...)...)
	draws := 0
	n.Jitter = func(from *Iface, pkt *packet.Packet) Time {
		draws++
		return 7 * Millisecond
	}
	sender.Send(sIfc, packet.New(sender.Addr(), addr.GroupForIndex(0), packet.ProtoUDP, nil), 0)
	n.Sched.Run(0)
	if draws != 1 {
		t.Fatalf("jitter drawn %d times, want 1 per transmission", draws)
	}
	if len(arrival) != 3 {
		t.Fatalf("deliveries = %v", arrival)
	}
	for name, at := range arrival {
		if at != 8*Millisecond {
			t.Errorf("%s heard frame at %d, want 8ms", name, at)
		}
	}
}
