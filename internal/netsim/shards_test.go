package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"pim/internal/addr"
	"pim/internal/packet"
)

// ringResult is everything observable from one ring-flood run: each node's
// event log (its private stream — appended only from its own shard, so the
// comparison is race-free by construction) and the folded network counters.
type ringResult struct {
	logs  [][]string
	stats Stats
}

// runRing builds a 9-node ring, floods it with TTL-limited packets from
// every node on colliding schedules, flaps one link mid-run via a root
// action, and returns the per-node logs and final stats. All link delays are
// equal and the pump interval divides into them, so many packets collide on
// the same microsecond — exactly the tie patterns the structural ordering
// key must resolve identically on both execution paths.
func runRing(shards int, wheel bool) ringResult {
	prevWheel := SetUseWheel(wheel)
	defer SetUseWheel(prevWheel)

	const n = 9
	net := NewNetwork()
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = net.AddNode(fmt.Sprintf("r%d", i))
		net.AddIface(nodes[i], addr.V4(10, byte(i), 0, 1))
		net.AddIface(nodes[i], addr.V4(10, byte(i), 0, 2))
	}
	var links []*Link
	for i := range nodes {
		j := (i + 1) % n
		links = append(links, net.Connect(nodes[i].Ifaces[1], nodes[j].Ifaces[0], 10))
	}
	if shards > 1 {
		net.Shard(shards, func(nd *Node) int {
			for i, cand := range nodes {
				if cand == nd {
					return i * shards / n
				}
			}
			panic("unknown node")
		})
	}

	logs := make([][]string, n)
	for i := range nodes {
		i := i
		nd := nodes[i]
		nd.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {
			logs[i] = append(logs[i], fmt.Sprintf("%d recv %v", nd.Sched().Now(), pkt.Payload))
			ttl := pkt.Payload[2]
			if ttl == 0 {
				return
			}
			out := nd.Ifaces[0]
			if in == out {
				out = nd.Ifaces[1]
			}
			fwd := packet.New(pkt.Src, pkt.Dst, packet.ProtoUDP,
				[]byte{pkt.Payload[0], pkt.Payload[1], ttl - 1})
			nd.Send(out, fwd, 0)
		}))
	}
	for i := range nodes {
		i := i
		nd := nodes[i]
		sched := nd.Sched()
		seq := 0
		var pump func()
		pump = func() {
			logs[i] = append(logs[i], fmt.Sprintf("%d send %d", sched.Now(), seq))
			for _, out := range nd.Ifaces {
				pkt := packet.New(nd.Addr(), addr.V4(224, 0, 0, 9), packet.ProtoUDP,
					[]byte{byte(i), byte(seq), 3})
				nd.Send(out, pkt, 0)
			}
			seq++
			sched.After(17, pump)
		}
		sched.After(Time(1+5*(i%3)), pump)
	}
	// Root actions: flap a ring link down and back up mid-run. These run on
	// the root scheduler and must land at the same point in the global event
	// order on both paths.
	net.Sched.At(571, func() { net.SetLinkUp(links[0], false) })
	net.Sched.At(1371, func() { net.SetLinkUp(links[0], true) })

	net.Sched.RunUntil(2000)
	return ringResult{logs: logs, stats: net.Stats}
}

// The netsim-level determinism gate: shard count (and backing store) must be
// unobservable — every node's event stream and every network counter must be
// bit-identical to the sequential run's.
func TestShardedRingMatchesSequential(t *testing.T) {
	for _, wheel := range []bool{true, false} {
		base := runRing(1, wheel)
		if len(base.logs[0]) == 0 || base.stats.Received == 0 {
			t.Fatalf("wheel=%v: sequential oracle saw no traffic", wheel)
		}
		if base.stats.Drops[DropLinkDown] == 0 {
			t.Fatalf("wheel=%v: link flap produced no drops; root action untested", wheel)
		}
		for _, k := range []int{2, 3, 4} {
			got := runRing(k, wheel)
			for i := range base.logs {
				if !reflect.DeepEqual(got.logs[i], base.logs[i]) {
					at, what := diffAt(base.logs[i], got.logs[i])
					t.Fatalf("wheel=%v shards=%d: node %d log diverges at entry %d (seq vs shd): %s",
						wheel, k, i, at, what)
				}
			}
			if !reflect.DeepEqual(got.stats, base.stats) {
				t.Errorf("wheel=%v shards=%d: stats diverge:\n  seq: %+v\n  shd: %+v",
					wheel, k, base.stats, got.stats)
			}
		}
	}
}

// diffAt locates the first diverging entry of two logs for failure messages.
func diffAt(a, b []string) (int, string) {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return i, fmt.Sprintf("%q vs %q", a[i], b[i])
		}
	}
	return len(a), fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// Cross-backend check: the sharded wheel path must match the sharded heap
// path too (the two stores share only the event.before contract).
func TestShardedWheelMatchesShardedHeap(t *testing.T) {
	w := runRing(4, true)
	h := runRing(4, false)
	if !reflect.DeepEqual(w.logs, h.logs) {
		t.Error("sharded wheel and sharded heap logs diverge")
	}
	if !reflect.DeepEqual(w.stats, h.stats) {
		t.Errorf("sharded wheel and sharded heap stats diverge:\n  wheel: %+v\n  heap:  %+v",
			w.stats, h.stats)
	}
}

func TestSetShardsToggle(t *testing.T) {
	prev := SetShards(4)
	defer SetShards(prev)
	if Shards() != 4 {
		t.Fatalf("Shards() = %d after SetShards(4)", Shards())
	}
	if SetShards(0) != 4 {
		t.Fatal("SetShards did not return previous value")
	}
	if Shards() != 1 {
		t.Fatalf("Shards() = %d after clamped SetShards(0), want 1", Shards())
	}
}

// Guard rails: topologies the sharded runner cannot execute must refuse
// loudly, not corrupt results.
func TestShardedGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}

	// A multi-access LAN spanning shards.
	mustPanic("lan-spans-shards", func() {
		net := NewNetwork()
		var ifaces []*Iface
		for i := 0; i < 3; i++ {
			nd := net.AddNode(fmt.Sprintf("l%d", i))
			ifaces = append(ifaces, net.AddIface(nd, addr.V4(10, 9, 0, byte(i+1))))
		}
		net.ConnectLAN(10, ifaces...)
		k := 0
		net.Shard(2, func(*Node) int { k++; return k % 2 })
		net.Sched.RunUntil(100)
	})

	// Sharding after events have been scheduled.
	mustPanic("shard-after-schedule", func() {
		net := NewNetwork()
		net.AddNode("a")
		net.Sched.After(5, func() {})
		net.Shard(2, func(*Node) int { return 0 })
	})

	// Sharding twice.
	mustPanic("shard-twice", func() {
		net := NewNetwork()
		net.AddNode("a")
		net.Shard(2, func(*Node) int { return 0 })
		net.Shard(2, func(*Node) int { return 0 })
	})

	// A shard index out of range.
	mustPanic("shard-out-of-range", func() {
		net := NewNetwork()
		net.AddNode("a")
		net.Shard(2, func(*Node) int { return 7 })
	})
}
