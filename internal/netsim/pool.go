package netsim

// Pooled transmit frames: the steady-state control plane of every protocol
// here is periodic soft-state refresh, and with closure-based delivery each
// refresh paid one closure plus one marshal buffer plus one decoded Packet
// per link crossing. A frame makes the whole crossing a single reusable
// object: Node.Send marshals into a recycled buffer, the delivery event
// carries the frame by pointer (no closure), the arrival decodes into the
// frame's own header scratch, and after the synchronous fan-out completes
// the frame returns to the free list of the scheduler that fired it.
//
// Ownership contract (DESIGN.md §13): everything a handler receives — the
// *packet.Packet, its Payload, and any decoded view aliasing the Payload —
// is BORROWED for the duration of the HandlePacket call. A handler that
// retains any of it past return must copy. The poison-on-release debug mode
// (SetPoisonFrames) overwrites released frame bytes with 0xDB so a retained
// alias misreads loudly instead of silently going stale; `make ctrl-smoke`
// runs every scenario under it.
//
// Pools are per-Scheduler, hence per-shard: a shard's frames are touched
// only by the goroutine executing that shard's window, so the free list
// needs no locking. Frames crossing shards transfer ownership to the
// destination shard's pool at the exchange barrier. The closure-based
// allocating path is retained as the differential oracle behind the
// SetFramePool toggle, mirroring fastpath/wheel/shards.

import (
	"sync/atomic"

	"pim/internal/addr"
	"pim/internal/packet"
)

// framePoolOn is the process-global toggle: pooled frames by default, the
// allocating closure path as the differential oracle when disabled.
var framePoolOn atomic.Bool

// poisonOn enables poison-on-release: frames are filled with poisonByte as
// they return to the free list, so any handler that retained a borrowed
// alias reads garbage deterministically instead of stale-but-plausible data.
var poisonOn atomic.Bool

func init() { framePoolOn.Store(true) }

// poisonByte fills released frame buffers in poison mode.
const poisonByte = 0xDB

// UseFramePool reports whether Node.Send uses pooled delivery frames.
func UseFramePool() bool { return framePoolOn.Load() }

// SetFramePool selects pooled (true) or allocating (false) frame delivery
// for subsequent sends, returning the previous setting. The two paths are
// observationally identical (the differential gates assert it); the
// allocating path exists as the oracle and for A/B benchmarking.
func SetFramePool(on bool) (prev bool) { return framePoolOn.Swap(on) }

// PoisonFrames reports whether poison-on-release is active.
func PoisonFrames() bool { return poisonOn.Load() }

// SetPoisonFrames enables or disables poison-on-release, returning the
// previous setting. Poisoning is a debug mode: it turns a violation of the
// borrowed-frame contract into deterministic garbage (checksum failures,
// impossible fields) at the point of misuse.
func SetPoisonFrames(on bool) (prev bool) { return poisonOn.Swap(on) }

// frame is one in-flight link crossing: the marshalled bytes plus the
// delivery route, owned by exactly one scheduler's free list when idle and
// by the event queue while in flight.
type frame struct {
	net     *Network
	from    *Iface
	link    *Link
	nextHop addr.IP
	shard   int
	buf     []byte
	// hdr is the single per-crossing decode; rcv is the per-receiver header
	// view handed to handlers (each station gets a fresh copy of hdr in rcv,
	// so one handler mutating its view cannot leak into the next station's).
	// Both live in the frame so the warm delivery path allocates nothing.
	hdr packet.Packet
	rcv packet.Packet
	// next links the scheduler free list.
	next *frame
}

// framePool is a scheduler-private free list. Single-goroutine by
// construction (per-shard schedulers execute on one goroutine at a time),
// so no locking.
type framePool struct {
	free *frame
}

func (p *framePool) get() *frame {
	f := p.free
	if f == nil {
		return new(frame)
	}
	p.free = f.next
	f.next = nil
	return f
}

func (p *framePool) put(f *frame) {
	if poisonOn.Load() {
		for i := range f.buf {
			f.buf[i] = poisonByte
		}
		f.hdr = packet.Packet{}
		f.rcv = packet.Packet{}
	}
	f.next = p.free
	p.free = f
}

// deliverPooled is the pooled twin of deliverFrame: one in-place decode into
// the frame's header scratch, then the shared fan-out.
func (n *Network) deliverPooled(f *frame) {
	err := packet.UnmarshalInto(&f.hdr, f.buf)
	n.fanout(f.from, f.link, &f.hdr, err, f.nextHop, f.shard, &f.rcv)
}
