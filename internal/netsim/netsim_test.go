package netsim

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/packet"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(10, func() { order = append(order, 2) })
	s.After(5, func() { order = append(order, 1) })
	s.After(20, func() { order = append(order, 3) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 20 {
		t.Errorf("Now = %d, want 20", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(7, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var hits []Time
	s.After(5, func() {
		hits = append(hits, s.Now())
		s.After(5, func() { hits = append(hits, s.Now()) })
	})
	s.Run(0)
	if len(hits) != 2 || hits[0] != 5 || hits[1] != 10 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.After(5, func() { fired = true })
	if !tm.Active() {
		t.Error("timer should be active")
	}
	if !tm.Stop() {
		t.Error("Stop should succeed")
	}
	if tm.Stop() {
		t.Error("second Stop should fail")
	}
	s.Run(0)
	if fired {
		t.Error("stopped timer fired")
	}
	tm2 := s.After(1, func() {})
	s.Run(0)
	if tm2.Stop() {
		t.Error("Stop after firing should fail")
	}
	if tm2.Active() {
		t.Error("fired timer should be inactive")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, d := range []Time{3, 6, 9} {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(6)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 6 {
		t.Errorf("Now = %d", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 3 || s.Now() != 100 {
		t.Errorf("after second RunUntil: fired=%v now=%d", fired, s.Now())
	}
}

func TestRunUntilIncludesSpawnedEvents(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(2, tick)
		}
	}
	s.After(2, tick)
	s.RunUntil(10)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestNegativeAndPastScheduling(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(50)
	fired := Time(-1)
	s.After(-10, func() { fired = s.Now() })
	s.At(10, func() {}) // in the past: clamped, must not rewind clock
	s.Run(0)
	if fired != 50 {
		t.Errorf("negative-delay event fired at %d, want 50", fired)
	}
	if s.Now() != 50 {
		t.Errorf("clock rewound to %d", s.Now())
	}
}

func TestRunMaxEvents(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 10; i++ {
		s.After(Time(i), func() {})
	}
	if n := s.Run(4); n != 4 {
		t.Errorf("Run(4) executed %d", n)
	}
	if s.Pending() != 6 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

// buildPair wires two nodes with a point-to-point link.
func buildPair(t *testing.T, delay Time) (*Network, *Node, *Node) {
	t.Helper()
	n := NewNetwork()
	a := n.AddNode("a")
	b := n.AddNode("b")
	ia := n.AddIface(a, addr.V4(10, 0, 0, 1))
	ib := n.AddIface(b, addr.V4(10, 0, 0, 2))
	n.Connect(ia, ib, delay)
	return n, a, b
}

func TestPointToPointDelivery(t *testing.T) {
	n, a, b := buildPair(t, 5*Millisecond)
	var got *packet.Packet
	var gotIface *Iface
	var at Time
	b.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {
		got, gotIface, at = pkt, in, n.Sched.Now()
	}))
	pkt := packet.New(a.Addr(), b.Addr(), packet.ProtoUDP, []byte("hello"))
	a.Send(a.Ifaces[0], pkt, 0)
	n.Sched.Run(0)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload %q", got.Payload)
	}
	if gotIface != b.Ifaces[0] {
		t.Errorf("wrong arrival interface %v", gotIface)
	}
	if at != 5*Millisecond {
		t.Errorf("delivered at %d, want %d", at, 5*Millisecond)
	}
}

func TestNoHandlerDrops(t *testing.T) {
	n, a, _ := buildPair(t, 1)
	a.Send(a.Ifaces[0], packet.New(1, 2, packet.ProtoUDP, nil), 0)
	n.Sched.Run(0)
	if n.Stats.Drops[DropNoHandler] != 1 {
		t.Errorf("drops = %v", n.Stats.Drops)
	}
}

func TestLANDeliversToAllForMulticast(t *testing.T) {
	n := NewNetwork()
	var ifaces []*Iface
	received := map[string]int{}
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		nd := n.AddNode(name)
		ifc := n.AddIface(nd, addr.V4(10, 1, 0, byte(len(ifaces)+1)))
		ifaces = append(ifaces, ifc)
		name := name
		nd.Handle(packet.ProtoPIM, HandlerFunc(func(in *Iface, pkt *packet.Packet) {
			received[name]++
		}))
	}
	n.ConnectLAN(1*Millisecond, ifaces...)
	src := ifaces[0]
	src.Node.Send(src, packet.New(src.Addr, addr.AllRouters, packet.ProtoPIM, []byte{1}), 0)
	n.Sched.Run(0)
	if received["r1"] != 0 {
		t.Error("sender received its own frame")
	}
	for _, name := range []string{"r2", "r3", "r4"} {
		if received[name] != 1 {
			t.Errorf("%s received %d, want 1", name, received[name])
		}
	}
}

func TestLANUnicastNextHopFiltering(t *testing.T) {
	n := NewNetwork()
	var ifaces []*Iface
	received := map[int]int{}
	for i := 0; i < 3; i++ {
		nd := n.AddNode("n")
		ifc := n.AddIface(nd, addr.V4(10, 1, 0, byte(i+1)))
		ifaces = append(ifaces, ifc)
		i := i
		nd.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {
			received[i]++
		}))
	}
	n.ConnectLAN(1, ifaces...)
	// Unicast frame with explicit next hop: only that station receives it.
	pkt := packet.New(ifaces[0].Addr, addr.V4(99, 0, 0, 1), packet.ProtoUDP, nil)
	ifaces[0].Node.Send(ifaces[0], pkt, ifaces[2].Addr)
	n.Sched.Run(0)
	if received[1] != 0 || received[2] != 1 {
		t.Errorf("received = %v, want only station 2", received)
	}
}

func TestLinkDownBlocksDelivery(t *testing.T) {
	n, a, b := buildPair(t, 1)
	got := 0
	b.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) { got++ }))
	link := n.Links[0]
	n.SetLinkUp(link, false)
	a.Send(a.Ifaces[0], packet.New(1, 2, packet.ProtoUDP, nil), 0)
	n.Sched.Run(0)
	if got != 0 {
		t.Error("delivery over down link")
	}
	if n.Stats.Drops[DropIfaceDown] != 1 {
		t.Errorf("drops = %v", n.Stats.Drops)
	}
}

func TestLinkDownMidFlight(t *testing.T) {
	n, a, b := buildPair(t, 10*Millisecond)
	got := 0
	b.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) { got++ }))
	a.Send(a.Ifaces[0], packet.New(1, 2, packet.ProtoUDP, nil), 0)
	// Cut the link while the frame is in flight.
	n.Sched.After(5*Millisecond, func() { n.SetLinkUp(n.Links[0], false) })
	n.Sched.Run(0)
	if got != 0 {
		t.Error("in-flight frame survived link cut")
	}
}

func TestLinkChangeCallback(t *testing.T) {
	n, a, _ := buildPair(t, 1)
	var changed []*Iface
	a.OnLinkChange(func(ifc *Iface) { changed = append(changed, ifc) })
	n.SetLinkUp(n.Links[0], false)
	n.SetLinkUp(n.Links[0], false) // no-op: already down
	n.SetLinkUp(n.Links[0], true)
	if len(changed) != 2 {
		t.Errorf("callbacks = %d, want 2", len(changed))
	}
}

func TestStatsClassification(t *testing.T) {
	n, a, b := buildPair(t, 1)
	b.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {}))
	b.Handle(packet.ProtoPIM, HandlerFunc(func(in *Iface, pkt *packet.Packet) {}))
	a.Send(a.Ifaces[0], packet.New(1, 2, packet.ProtoUDP, make([]byte, 100)), 0)
	a.Send(a.Ifaces[0], packet.New(1, 2, packet.ProtoPIM, make([]byte, 10)), 0)
	n.Sched.Run(0)
	if n.Stats.Totals.DataPackets != 1 || n.Stats.Totals.ControlPackets != 1 {
		t.Errorf("totals = %+v", n.Stats.Totals)
	}
	if n.Stats.Totals.DataBytes != 120 {
		t.Errorf("data bytes = %d", n.Stats.Totals.DataBytes)
	}
	if n.Stats.Received != 2 {
		t.Errorf("received = %d", n.Stats.Received)
	}
	if n.Stats.LinksCarryingData() != 1 {
		t.Errorf("links carrying data = %d", n.Stats.LinksCarryingData())
	}
	if n.Stats.MaxLinkDataPackets() != 1 {
		t.Errorf("max link data = %d", n.Stats.MaxLinkDataPackets())
	}
}

func TestIfaceToAndOwnsAddr(t *testing.T) {
	n, a, b := buildPair(t, 1)
	if got := a.IfaceTo(b.Addr()); got != a.Ifaces[0] {
		t.Errorf("IfaceTo = %v", got)
	}
	if a.IfaceTo(addr.V4(1, 1, 1, 1)) != nil {
		t.Error("IfaceTo unknown neighbor should be nil")
	}
	if !a.OwnsAddr(a.Addr()) || a.OwnsAddr(b.Addr()) {
		t.Error("OwnsAddr wrong")
	}
	if n.IfaceByAddr(b.Addr()) != b.Ifaces[0] {
		t.Error("IfaceByAddr lookup failed")
	}
}

func TestLocalSend(t *testing.T) {
	_, a, _ := buildPair(t, 1)
	got := 0
	a.Handle(packet.ProtoPIMData, HandlerFunc(func(in *Iface, pkt *packet.Packet) { got++ }))
	a.LocalSend(a.Ifaces[0], packet.New(1, 2, packet.ProtoPIMData, nil))
	if got != 1 {
		t.Error("LocalSend not delivered")
	}
}

func BenchmarkLANBroadcast(b *testing.B) {
	n := NewNetwork()
	var ifaces []*Iface
	for i := 0; i < 10; i++ {
		nd := n.AddNode("n")
		nd.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {}))
		ifaces = append(ifaces, n.AddIface(nd, addr.V4(10, 0, 0, byte(i+1))))
	}
	n.ConnectLAN(1, ifaces...)
	pkt := packet.New(ifaces[0].Addr, addr.AllSystems, packet.ProtoUDP, make([]byte, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ifaces[0].Node.Send(ifaces[0], pkt, 0)
		n.Sched.Run(0)
	}
}

func TestLossInjection(t *testing.T) {
	n, a, b := buildPair(t, 1)
	got := 0
	b.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) { got++ }))
	drop := true
	n.Loss = func(from, to *Iface, pkt *packet.Packet) bool { return drop }
	a.Send(a.Ifaces[0], packet.New(1, 2, packet.ProtoUDP, nil), 0)
	n.Sched.Run(0)
	if got != 0 {
		t.Fatal("frame survived injected loss")
	}
	if n.Stats.Drops[DropInjectedLoss] != 1 {
		t.Errorf("drops = %v", n.Stats.Drops)
	}
	drop = false
	a.Send(a.Ifaces[0], packet.New(1, 2, packet.ProtoUDP, nil), 0)
	n.Sched.Run(0)
	if got != 1 {
		t.Error("frame lost without injection")
	}
}

func TestFiniteBandwidthSerializesAndQueues(t *testing.T) {
	n, a, b := buildPair(t, 10*Millisecond)
	link := n.Links[0]
	link.Bandwidth = 1000 // bytes/sec: a 100B frame takes 100ms to serialize
	var arrivals []Time
	b.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {
		arrivals = append(arrivals, n.Sched.Now())
	}))
	// Two back-to-back 80B-payload frames (100B with header).
	for i := 0; i < 2; i++ {
		a.Send(a.Ifaces[0], packet.New(1, 2, packet.ProtoUDP, make([]byte, 80)), 0)
	}
	n.Sched.Run(0)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// First: 100ms tx + 10ms prop = 110ms. Second queues 100ms behind.
	if arrivals[0] != 110*Millisecond {
		t.Errorf("first arrival at %v, want 110ms", arrivals[0])
	}
	if arrivals[1] != 210*Millisecond {
		t.Errorf("second arrival at %v, want 210ms", arrivals[1])
	}
	if link.MaxQueueDelay != 100*Millisecond {
		t.Errorf("MaxQueueDelay = %v, want 100ms", link.MaxQueueDelay)
	}
}

func TestInfiniteBandwidthUnchanged(t *testing.T) {
	n, a, b := buildPair(t, 5*Millisecond)
	var arrivals []Time
	b.Handle(packet.ProtoUDP, HandlerFunc(func(in *Iface, pkt *packet.Packet) {
		arrivals = append(arrivals, n.Sched.Now())
	}))
	for i := 0; i < 2; i++ {
		a.Send(a.Ifaces[0], packet.New(1, 2, packet.ProtoUDP, make([]byte, 80)), 0)
	}
	n.Sched.Run(0)
	if len(arrivals) != 2 || arrivals[0] != 5*Millisecond || arrivals[1] != 5*Millisecond {
		t.Errorf("arrivals = %v, want both at 5ms", arrivals)
	}
}

// TestLANSetLinkUpNotifiesAllStations covers link down/up on a multi-access
// (>2-iface) link: every attached node's subscribers fire, in attachment
// order, exactly once per state change.
func TestLANSetLinkUpNotifiesAllStations(t *testing.T) {
	n := NewNetwork()
	var ifaces []*Iface
	var fired []string
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		nd := n.AddNode(name)
		ifc := n.AddIface(nd, addr.V4(10, 1, 0, byte(len(ifaces)+1)))
		ifaces = append(ifaces, ifc)
		name := name
		nd.OnLinkChange(func(in *Iface) { fired = append(fired, name) })
	}
	lan := n.ConnectLAN(1*Millisecond, ifaces...)

	n.SetLinkUp(lan, false)
	want := []string{"r1", "r2", "r3", "r4"}
	if len(fired) != len(want) {
		t.Fatalf("down fired %v, want one callback per station", fired)
	}
	for i, name := range want {
		if fired[i] != name {
			t.Fatalf("down firing order %v, want attachment order %v", fired, want)
		}
	}
	// Delivery is blocked while down, for every station.
	got := 0
	for _, ifc := range ifaces[1:] {
		ifc.Node.Handle(packet.ProtoPIM, HandlerFunc(func(in *Iface, pkt *packet.Packet) { got++ }))
	}
	src := ifaces[0]
	src.Node.Send(src, packet.New(src.Addr, addr.AllRouters, packet.ProtoPIM, []byte{1}), 0)
	n.Sched.Run(0)
	if got != 0 {
		t.Fatalf("%d stations heard a frame on a down LAN", got)
	}

	fired = nil
	n.SetLinkUp(lan, true)
	n.SetLinkUp(lan, true) // no-op: already up
	if len(fired) != len(want) {
		t.Fatalf("up fired %v, want one callback per station", fired)
	}
	src.Node.Send(src, packet.New(src.Addr, addr.AllRouters, packet.ProtoPIM, []byte{1}), 0)
	n.Sched.Run(0)
	if got != 3 {
		t.Fatalf("restored LAN delivered to %d stations, want 3", got)
	}
}

// TestOnLinkChangeFiringOrderPerNode covers multiple subscribers on one
// node: they fire in registration order.
func TestOnLinkChangeFiringOrderPerNode(t *testing.T) {
	n, a, _ := buildPair(t, 1)
	var order []int
	a.OnLinkChange(func(*Iface) { order = append(order, 1) })
	a.OnLinkChange(func(*Iface) { order = append(order, 2) })
	a.OnLinkChange(func(*Iface) { order = append(order, 3) })
	n.SetLinkUp(n.Links[0], false)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("subscribers fired in order %v, want registration order", order)
	}
}

// TestSetIfaceUp covers the fail-stop router model: one station's interface
// goes down, the link and the other stations stay up, and every node on the
// link is notified (unicast routing must route around the dead station).
func TestSetIfaceUp(t *testing.T) {
	n := NewNetwork()
	var ifaces []*Iface
	fired := map[string]int{}
	for _, name := range []string{"r1", "r2", "r3"} {
		nd := n.AddNode(name)
		ifc := n.AddIface(nd, addr.V4(10, 1, 0, byte(len(ifaces)+1)))
		ifaces = append(ifaces, ifc)
		name := name
		nd.OnLinkChange(func(*Iface) { fired[name]++ })
	}
	lan := n.ConnectLAN(1*Millisecond, ifaces...)

	n.SetIfaceUp(ifaces[1], false)
	if lan.Up() != true {
		t.Fatal("iface-down took the whole link down")
	}
	if ifaces[1].Up() {
		t.Fatal("iface still up")
	}
	for _, name := range []string{"r1", "r2", "r3"} {
		if fired[name] != 1 {
			t.Fatalf("link-change notifications %v, want 1 per station", fired)
		}
	}
	n.SetIfaceUp(ifaces[1], false) // no-op: already down
	if fired["r1"] != 1 {
		t.Fatal("no-op SetIfaceUp fired callbacks")
	}

	// The dead station neither receives...
	got := map[string]int{}
	for i, ifc := range ifaces {
		name := []string{"r1", "r2", "r3"}[i]
		ifc.Node.Handle(packet.ProtoPIM, HandlerFunc(func(in *Iface, pkt *packet.Packet) { got[name]++ }))
	}
	src := ifaces[0]
	src.Node.Send(src, packet.New(src.Addr, addr.AllRouters, packet.ProtoPIM, []byte{1}), 0)
	n.Sched.Run(0)
	if got["r2"] != 0 || got["r3"] != 1 {
		t.Fatalf("delivery with r2 down: %v, want only r3", got)
	}
	// ...nor transmits.
	dead := ifaces[1]
	dead.Node.Send(dead, packet.New(dead.Addr, addr.AllRouters, packet.ProtoPIM, []byte{1}), 0)
	n.Sched.Run(0)
	if got["r1"] != 0 || got["r3"] != 1 {
		t.Fatalf("dead iface transmitted: %v", got)
	}

	n.SetIfaceUp(ifaces[1], true)
	src.Node.Send(src, packet.New(src.Addr, addr.AllRouters, packet.ProtoPIM, []byte{1}), 0)
	n.Sched.Run(0)
	if got["r2"] != 1 {
		t.Fatalf("restored iface did not receive: %v", got)
	}
}

func TestDropReasonString(t *testing.T) {
	cases := map[DropReason]string{
		DropIfaceDown:    "dropIfaceDown",
		DropLinkDown:     "dropLinkDown",
		DropMalformed:    "dropMalformed",
		DropNoHandler:    "dropNoHandler",
		DropInjectedLoss: "dropInjectedLoss",
		DropReason(99):   "dropUnknown",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("DropReason(%d).String() = %q, want %q", int(r), got, want)
		}
	}
	var s Stats
	s.Drop(DropLinkDown)
	s.Drop(DropLinkDown)
	s.Drop(DropInjectedLoss)
	byName := s.DropsByName()
	if len(byName) != 2 || byName["dropLinkDown"] != 2 || byName["dropInjectedLoss"] != 1 {
		t.Errorf("DropsByName() = %v", byName)
	}
}
