package netsim

// Deterministic scheduler workloads shared by the in-package benchmarks
// (BenchmarkSchedulerChurn/Dense) and cmd/pimbench, which replays them via
// testing.Benchmark to record ns/op and allocs/op in the BENCH_scale.json
// ledger. They live in a non-test file so the bench harness can import
// them; they use a fixed-seed LCG (no math/rand, no wall clock) so both
// backing stores see the byte-identical operation sequence.

// benchParked is the background population of long-deadline soft-state
// timers both workloads run on top of. It is what gives the reference heap
// its log-depth sift cost and its compaction-sweep burden; the wheel just
// files them upstairs.
const benchParked = 1 << 20

func benchNop() {}

// benchLCG advances the 64-bit linear congruential generator (Knuth MMIX
// constants) used to derive workload deadlines.
func benchLCG(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// PrepSchedulerBench returns a scheduler on the requested backing store,
// preloaded with benchParked timers parked 1000-2000 simulated seconds out
// — far enough that neither workload ever reaches them, close enough to
// stay inside the wheel's 2^32 µs span.
func PrepSchedulerBench(wheel bool) *Scheduler {
	s := NewSchedulerWith(wheel)
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < benchParked; i++ {
		rng = benchLCG(rng)
		// Post, not After: the background population should cost the
		// backing store its queue-size-dependent work without adding 64k
		// Timer objects for the GC to mark on every cycle the measured
		// loop's allocations trigger.
		s.Post(1000*Second+Time(rng%uint64(1000*Second)), benchNop)
	}
	return s
}

// SchedulerChurn runs n cancel-heavy rounds over a resident set of 512
// refresh timers: each round re-arms one (Reset = cancel the old entry +
// schedule a new one), a 64th of the rounds retire a timer outright with
// Stop and replace it via After, and every 16th round fires one fill-in
// event so the clock creeps forward and the wheel's cursor reclaims the
// cancelled entries. This is the §2/§3.8 soft-state pattern — every
// received control message re-arms an expiry timer long before it fires —
// and it is where the heap pays O(log n) per re-arm while the wheel pays
// O(1).
func SchedulerChurn(s *Scheduler, n int) {
	const ring = 512 // re-armed every ~320 µs of sim time, well under the deadlines
	timers := make([]*Timer, ring)
	for i := range timers {
		timers[i] = s.After(10*Millisecond, benchNop)
	}
	rng := uint64(12345)
	for i := 0; i < n; i++ {
		rng = benchLCG(rng)
		d := Millisecond + Time(rng&1023)
		tm := timers[i&(ring-1)]
		if i&63 == 1 {
			tm.Stop()
			timers[i&(ring-1)] = s.After(d, benchNop)
		} else {
			tm.Reset(d)
		}
		if i&15 == 0 {
			s.Post(10, benchNop)
			s.Step()
		}
	}
}

// SchedulerDense runs n fire-heavy rounds: 64 self-re-arming event streams
// with jittered sub-millisecond periods, stepped until n events have fired
// — the data-pump shape of a busy internet, where throughput is bounded by
// pop cost rather than insert cost.
func SchedulerDense(s *Scheduler, n int) {
	rng := uint64(99999)
	remaining := n
	var pump func()
	pump = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		rng = benchLCG(rng)
		s.Post(1+Time(rng&255), pump)
	}
	for i := 0; i < 64 && remaining > 0; i++ {
		s.Post(Time(i), pump)
	}
	for remaining > 0 && s.Step() {
	}
}
