// Package netsim is the discrete-event network simulator substrate: a
// deterministic event scheduler plus a packet-level network model of nodes,
// interfaces, point-to-point links, and multi-access LANs with per-link
// delays and failure injection.
//
// The paper's protocols ran on real routers and the MBONE; here the same
// router logic, byte-encoded wire messages, and soft-state timers execute
// against this simulator (DESIGN.md §4 records the substitution). Every
// packet crossing a link is marshalled to bytes and unmarshalled at the
// receiver, so the codecs are exercised on the true data path.
package netsim

// Time is simulated time in microseconds since the start of the run.
type Time int64

// Convenient units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000000
)

// Seconds renders t as floating-point seconds (for reports).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Timer is a handle to a scheduled callback. The zero value is not valid;
// timers are created by Scheduler.After/At.
//
// Timer objects are deliberately never pooled: a protocol may keep a handle
// long after the callback fired (Stop on a fired timer must keep returning
// false), so recycling a live pointer would let a stale Stop cancel an
// unrelated future event. The allocation-free path is Scheduler.Post, which
// schedules straight into the pooled event heap with no handle at all —
// that is what the packet-delivery hot path uses.
type Timer struct {
	s       *Scheduler
	at      Time
	stopped bool
	fired   bool
}

// Stop cancels the timer. It reports whether the cancellation prevented the
// callback (false if the timer already fired or was already stopped).
// Stopped entries stay in the heap until their deadline or until they exceed
// half the heap, whichever comes first; then a compaction sweep reclaims
// them (long churn runs park thousands of cancelled soft-state timers, and
// unbounded growth here was a leak).
func (t *Timer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	if s := t.s; s != nil {
		s.nstopped++
		if s.nstopped*2 > len(s.heap) {
			s.compact()
		}
	}
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return !t.fired && !t.stopped }

// When returns the time the timer is (or was) scheduled to fire.
func (t *Timer) When() Time { return t.at }

// event is one heap entry. Entries are values in a reusable backing array —
// scheduling does not allocate beyond amortized slice growth. tm is nil for
// the fire-and-forget Post path and points at the caller's handle for
// After/At.
type event struct {
	at  Time
	seq uint64
	fn  func()
	tm  *Timer
}

// before orders events by (time, scheduling order): a strict total order, so
// the execution sequence is identical no matter how the heap happens to be
// laid out — the determinism the parallel experiment engine asserts on.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Scheduler is a deterministic discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order.
type Scheduler struct {
	now      Time
	seq      uint64
	heap     []event
	nstopped int // stopped timers still occupying heap slots
	// Processed counts events executed, for run-length guards and stats.
	Processed int64
}

// NewScheduler returns a scheduler positioned at time 0.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events still queued (including stopped
// timers not yet reaped).
func (s *Scheduler) Pending() int { return len(s.heap) }

// After schedules fn to run d from now. Negative delays run "immediately"
// (at the current time, after already-queued same-time events).
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn at absolute time t (clamped to now).
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	tm := &Timer{s: s, at: t}
	s.seq++
	s.push(event{at: t, seq: s.seq, fn: fn, tm: tm})
	return tm
}

// Post schedules fn to run d from now (clamped like After) without
// allocating a cancellable Timer handle. This is the fast path for
// fire-and-forget work — packet deliveries, periodic experiment pumps — and
// costs no per-event allocation: the event record lives in the heap's
// reusable backing array.
func (s *Scheduler) Post(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.seq++
	s.push(event{at: s.now + d, seq: s.seq, fn: fn})
}

// Step executes the next event. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		ev := s.pop()
		if ev.tm != nil {
			if ev.tm.stopped {
				s.nstopped--
				continue
			}
			ev.tm.fired = true
		}
		s.now = ev.at
		s.Processed++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled by executed events are included.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.heap) > 0 {
		// Peek.
		next := s.heap[0]
		if next.tm != nil && next.tm.stopped {
			s.pop()
			s.nstopped--
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run executes events until the queue drains or maxEvents is reached
// (maxEvents <= 0 means no limit). It returns the number of events executed.
func (s *Scheduler) Run(maxEvents int64) int64 {
	var n int64
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// compact removes every stopped entry from the heap in one sweep and
// restores the heap property. Ordering is untouched: (at, seq) is a total
// order, so re-heapifying the surviving events cannot change the pop
// sequence.
func (s *Scheduler) compact() {
	live := s.heap[:0]
	for _, ev := range s.heap {
		if ev.tm != nil && ev.tm.stopped {
			continue
		}
		live = append(live, ev)
	}
	// Zero the tail so dropped closures and timers are collectable.
	for i := len(live); i < len(s.heap); i++ {
		s.heap[i] = event{}
	}
	s.heap = live
	s.nstopped = 0
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.down(i)
	}
}

func (s *Scheduler) push(ev event) {
	s.heap = append(s.heap, ev)
	j := len(s.heap) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !s.heap[j].before(s.heap[i]) {
			break
		}
		s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
		j = i
	}
}

func (s *Scheduler) pop() event {
	h := s.heap
	n := len(h) - 1
	ev := h[0]
	h[0] = h[n]
	h[n] = event{} // release the closure for GC
	s.heap = h[:n]
	s.down(0)
	return ev
}

func (s *Scheduler) down(i int) {
	h := s.heap
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].before(h[j1]) {
			j = j2
		}
		if !h[j].before(h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
