// Package netsim is the discrete-event network simulator substrate: a
// deterministic event scheduler plus a packet-level network model of nodes,
// interfaces, point-to-point links, and multi-access LANs with per-link
// delays and failure injection.
//
// The paper's protocols ran on real routers and the MBONE; here the same
// router logic, byte-encoded wire messages, and soft-state timers execute
// against this simulator (DESIGN.md §4 records the substitution). Every
// packet crossing a link is marshalled to bytes and unmarshalled at the
// receiver, so the codecs are exercised on the true data path.
package netsim

// Time is simulated time in microseconds since the start of the run.
type Time int64

// Convenient units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000000
)

// maxTime is the "no deadline" sentinel used by Step.
const maxTime = Time(1<<63 - 1)

// Seconds renders t as floating-point seconds (for reports).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Timer is a handle to a scheduled callback. The zero value is not valid;
// timers are created by Scheduler.After/At.
//
// Timer objects are deliberately never pooled: a protocol may keep a handle
// long after the callback fired (Stop on a fired timer must keep returning
// false), so recycling a live pointer would let a stale Stop cancel an
// unrelated future event. The allocation-free path is Scheduler.Post, which
// schedules straight into the pooled event store with no handle at all —
// that is what the packet-delivery hot path uses.
//
// The callback lives on the handle, not in the queue entry, so Stop can
// release it in place; and the scheduler back-pointer is cleared the moment
// the timer can no longer fire, so a long-retained handle never pins a dead
// Scheduler (and its pooled events) in memory.
type Timer struct {
	s  *Scheduler
	at Time
	fn func()
	// seq identifies the timer's current queue entry. Reset re-arms the
	// handle by bumping seq and enqueueing a fresh entry; the old entry is
	// recognized as stale (entry.seq != timer.seq) and reclaimed wherever
	// the queue next touches it, exactly like a stopped one.
	seq     uint64
	stopped bool
	fired   bool
}

// Stop cancels the timer. It reports whether the cancellation prevented the
// callback (false if the timer already fired or was already stopped).
//
// On the timing wheel this is the O(1) lazy cancel: the entry is marked dead
// in place (the callback is released immediately) and its queue slot is
// normally reclaimed when a cascade or the firing cursor next passes it. On
// the reference heap, stopped entries stay queued until their deadline or
// until a compaction sweep reclaims them. Both queues share the same
// dead-majority rule (swept once dead entries outnumber live ones): without
// it, soft-state protocols that Stop/Reset long-deadline expiry timers on
// every refresh park dead entries in far-future slots for the full original
// lifetime, and the parked majority turns slot growth and cascades into the
// dominant cost (observed as a >2x slowdown at 1000-router scale).
func (t *Timer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	t.fn = nil
	if s := t.s; s != nil {
		t.s = nil
		s.live--
		s.reapDead()
	}
	return true
}

// Reset re-arms an active timer to fire d from now with the same callback,
// without allocating: the handle is reused and its superseded queue entry
// is reclaimed lazily, like a stopped one. This is the soft-state refresh
// primitive — every received Join/Prune/Report re-arms an expiry timer —
// and at scale it is the scheduler's hottest cancelling operation. It
// reports whether the re-arm happened; false means the timer already fired
// or was stopped (re-create it with After), leaving the timer untouched.
func (t *Timer) Reset(d Time) bool {
	s := t.s
	if s == nil || t.fired || t.stopped {
		return false
	}
	if d < 0 {
		d = 0
	}
	// The current entry goes stale: mirror Stop's bookkeeping, then hand
	// the accounting straight back via enqueue for the replacement.
	s.live--
	s.reapDead()
	t.at = s.now + d
	seq := s.nextSeq()
	t.seq = seq
	s.enqueue(event{at: t.at, bs: s.now, ord: seq | localOrd, tm: t})
	return true
}

// reapDead records one newly dead (stopped or superseded) queue entry and
// triggers the owning queue's compaction sweep once dead entries outnumber
// live ones — the same amortized-O(1) policy for both implementations, so
// neither can be starved into quadratic slot/heap growth by cancel-heavy
// soft-state workloads.
func (s *Scheduler) reapDead() {
	if s.heap != nil {
		s.heap.nstopped++
		if s.heap.nstopped*2 > len(s.heap.events) {
			s.heap.compact()
		}
	} else if s.wheel != nil {
		s.wheel.ndead++
		if s.wheel.ndead*2 > s.wheel.total {
			s.wheel.compact()
		}
	}
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return !t.fired && !t.stopped }

// When returns the time the timer is (or was) scheduled to fire.
func (t *Timer) When() Time { return t.at }

// localOrd is the high bit of an event's order key. Timer and Post events
// carry their scheduler's sequence number with this bit set; packet-delivery
// events carry deliveryOrd with the bit clear. At an equal (deadline, birth
// instant), deliveries therefore fire before locally scheduled callbacks,
// and among themselves in (source node, transmit sequence) order — a rule
// both the sequential and the sharded execution paths compute identically,
// which is what makes shard count unobservable in results.
const localOrd = uint64(1) << 63

// deliveryOrd is the structural order key of a packet-delivery event: the
// sending node's ID over its per-node transmit sequence. 23 bits of node ID
// and 40 bits of sequence keep bit 63 clear for any realistic simulation
// (8M nodes, 10^12 sends per node).
func deliveryOrd(src int, xmit uint64) uint64 {
	return uint64(src)<<40 | (xmit & (1<<40 - 1))
}

// event is one queue entry. Entries are values in reusable backing arrays —
// scheduling does not allocate beyond amortized slice growth. fn is set for
// the fire-and-forget Post path; for After/At the callback lives on the
// Timer handle (so Stop can release it) and tm points at that handle.
type event struct {
	at Time
	// bs is the birth instant: the scheduler clock when the entry was
	// created. For locally scheduled events it is redundant with the order
	// key (seq is monotone in time), but it is the piece of the ordering
	// that survives a shard boundary — a cross-shard arrival is sequenced
	// against local events by when it was sent, not when it was merged.
	bs Time
	// ord breaks (at, bs) ties: local sequence number | localOrd for timer
	// and Post events, or the structural deliveryOrd key for packet
	// deliveries (local and cross-shard alike).
	ord uint64
	fn  func()
	tm  *Timer
	// fr, when non-nil, makes this a pooled frame-delivery event: fire
	// dispatches the frame without a closure and recycles it afterwards.
	fr *frame
}

// before orders events by (deadline, birth instant, order key): a strict
// total order computed from values that do not depend on shard count or
// backing store, so the execution sequence is identical on the sequential
// and sharded paths — the determinism the differential gates assert on. At
// an equal (deadline, birth instant), deliveries (localOrd clear) precede
// locally scheduled callbacks, which fire in scheduling order.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.bs != o.bs {
		return e.bs < o.bs
	}
	return e.ord < o.ord
}

// dead reports whether the entry belongs to a stopped timer, or is a stale
// arm superseded by Reset, and can be dropped wherever it is encountered.
// Timer entries always carry the scheduler sequence number in ord's low
// bits, so the staleness check masks localOrd off.
func (e event) dead() bool { return e.tm != nil && (e.tm.stopped || e.tm.seq != e.ord&^localOrd) }

// Scheduler is a deterministic discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order.
//
// Two interchangeable backing stores implement the queue: the hierarchical
// timing wheel (schedWheel, the default — O(1) insert and lazy cancel) and
// the binary heap kept as the reference implementation (schedHeap). The
// UseWheel toggle selects the store at construction; both produce
// bit-identical fire order (see the differential tests in wheel_test.go).
type Scheduler struct {
	now   Time
	seq   uint64
	heap  *schedHeap
	wheel *schedWheel
	// set is non-nil on the root scheduler of a sharded Network; RunUntil
	// then delegates to the conservative-lookahead epoch loop.
	set *shardSet
	// live counts pending not-yet-stopped entries; peakLive is its high-water
	// mark — the "timer pressure" gauge the scaling benchmark records.
	live, peakLive int
	// frames is the scheduler's transmit-frame free list (pool.go). Frames
	// always return to the pool of the scheduler that fired their delivery
	// event, so the list stays single-goroutine without locks.
	frames framePool
	// timerChunk bump-allocates Timer handles 64 at a time. Every soft-state
	// refresh allocates a handle, so at scale the per-handle GC overhead is
	// a measurable share of scheduling cost; batching cuts it 64x. Slots are
	// handed out exactly once — this is NOT pooling, so the stale-Stop
	// hazard documented on Timer does not apply. (Corner: a retained handle
	// keeps its 64-slot chunk alive, so siblings' back-pointers can pin a
	// dropped Scheduler that still had entries pending in those siblings;
	// handles of fired/stopped timers alone never pin it.)
	timerChunk []Timer
	// halted stops the run loops before the next event fires (Halt). The
	// flag is sticky until ClearHalt so nested/subsequent RunUntil calls
	// return immediately with the clock frozen at the halt instant.
	halted bool
	// Processed counts events executed, for run-length guards and stats.
	Processed int64
}

// NewScheduler returns a scheduler positioned at time 0, backed by the
// timing wheel or the reference heap according to UseWheel.
func NewScheduler() *Scheduler { return NewSchedulerWith(UseWheel()) }

// NewSchedulerWith returns a scheduler with an explicit backing store:
// wheel=true for the timing wheel, false for the reference binary heap.
// Benchmarks and differential tests use this; everything else goes through
// NewScheduler and the global toggle.
func NewSchedulerWith(wheel bool) *Scheduler {
	if wheel {
		return &Scheduler{wheel: newWheel()}
	}
	return &Scheduler{heap: &schedHeap{}}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// nextSeq returns the next scheduling sequence number. Sequence numbers are
// scheduler-private: two schedulers of a sharded network never need their
// seq values compared, because the only events that cross a shard boundary
// are deliveries, which carry the structural deliveryOrd key instead.
func (s *Scheduler) nextSeq() uint64 {
	s.seq++
	return s.seq
}

// Pending returns the number of events still queued (including stopped
// timers not yet reaped).
func (s *Scheduler) Pending() int {
	if s.wheel != nil {
		return s.wheel.total
	}
	return len(s.heap.events)
}

// LiveTimers returns the number of pending events that can still fire
// (stopped-but-unreaped entries excluded).
func (s *Scheduler) LiveTimers() int { return s.live }

// PeakLiveTimers returns the high-water mark of LiveTimers over the run.
func (s *Scheduler) PeakLiveTimers() int { return s.peakLive }

// After schedules fn to run d from now. Negative delays run "immediately"
// (at the current time, after already-queued same-time events).
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn at absolute time t (clamped to now).
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	if len(s.timerChunk) == 0 {
		s.timerChunk = make([]Timer, 64)
	}
	tm := &s.timerChunk[0]
	s.timerChunk = s.timerChunk[1:]
	seq := s.nextSeq()
	tm.s, tm.at, tm.fn, tm.seq = s, t, fn, seq
	s.enqueue(event{at: t, bs: s.now, ord: seq | localOrd, tm: tm})
	return tm
}

// Post schedules fn to run d from now (clamped like After) without
// allocating a cancellable Timer handle. This is the fast path for
// fire-and-forget work — packet deliveries, periodic experiment pumps — and
// costs no per-event allocation: the event record lives in the store's
// reusable backing arrays.
func (s *Scheduler) Post(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.enqueue(event{at: s.now + d, bs: s.now, ord: s.nextSeq() | localOrd, fn: fn})
}

// enqueueDelivery inserts a packet-delivery event carrying the structural
// deliveryOrd key (localOrd clear). Both execution paths use it — Node.Send
// locally, shardSet.exchange for merged cross-shard arrivals — so same-
// instant deliveries fire in (source, transmit sequence) order everywhere.
// On the timing wheel the deadline's slot is marked for an order-restoring
// sort at fire time, since structural keys need not match append order.
func (s *Scheduler) enqueueDelivery(at, bs Time, ord uint64, fn func()) {
	s.live++
	if s.live > s.peakLive {
		s.peakLive = s.live
	}
	ev := event{at: at, bs: bs, ord: ord, fn: fn}
	if s.wheel != nil {
		s.wheel.markDirty(at)
		s.wheel.push(ev, s.now)
	} else {
		s.heap.push(ev)
	}
}

// enqueueDeliveryFrame is enqueueDelivery for a pooled frame: same ordering
// key, no closure — the event record carries the frame pointer and fire
// dispatches it directly.
func (s *Scheduler) enqueueDeliveryFrame(at, bs Time, ord uint64, f *frame) {
	s.live++
	if s.live > s.peakLive {
		s.peakLive = s.live
	}
	ev := event{at: at, bs: bs, ord: ord, fr: f}
	if s.wheel != nil {
		s.wheel.markDirty(at)
		s.wheel.push(ev, s.now)
	} else {
		s.heap.push(ev)
	}
}

// advanceTo moves the clock forward to t without executing anything; the
// sharded epoch loop uses it to align quiesced shards on a barrier instant.
func (s *Scheduler) advanceTo(t Time) {
	if s.now < t {
		s.now = t
	}
}

// peekTime returns a lower bound on the earliest live deadline, and whether
// any live entry exists. On the heap (and for level-0/overflow wheel
// entries) the bound is exact; for events parked in upper wheel levels it is
// the slot base, which is never later than the true deadline — and a next()
// call at that bound cascades the slot, so repeated peeks converge. Dead
// entries surfacing at the front are reclaimed.
func (s *Scheduler) peekTime() (Time, bool) {
	if s.wheel != nil {
		return s.wheel.peek()
	}
	return s.heap.peek()
}

func (s *Scheduler) enqueue(ev event) {
	s.live++
	if s.live > s.peakLive {
		s.peakLive = s.live
	}
	if s.wheel != nil {
		s.wheel.push(ev, s.now)
	} else {
		s.heap.push(ev)
	}
}

// next removes and returns the earliest live event with at <= limit.
// Dead (stopped) entries encountered on the way are reclaimed.
func (s *Scheduler) next(limit Time) (event, bool) {
	if s.wheel != nil {
		return s.wheel.next(limit)
	}
	return s.heap.next(limit)
}

// fire executes one popped event: the clock advances to its deadline, the
// handle (if any) is marked fired and unpinned, and the callback runs.
func (s *Scheduler) fire(ev event) {
	s.now = ev.at
	s.Processed++
	s.live--
	if f := ev.fr; f != nil {
		// Pooled frame delivery: fan out synchronously, then the frame —
		// and everything borrowed from it — is dead and recycled.
		f.net.deliverPooled(f)
		s.frames.put(f)
		return
	}
	fn := ev.fn
	if tm := ev.tm; tm != nil {
		tm.fired = true
		fn = tm.fn
		tm.fn = nil
		tm.s = nil
	}
	fn()
}

// Step executes the next event. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	ev, ok := s.next(maxTime)
	if !ok {
		return false
	}
	s.fire(ev)
	return true
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled by executed events are included.
// On the root scheduler of a sharded Network this drives the conservative-
// lookahead epoch loop instead (see shards.go); shard-local schedulers and
// unsharded networks take the sequential path.
func (s *Scheduler) RunUntil(deadline Time) {
	if s.set != nil {
		s.set.run(deadline)
		return
	}
	s.runUntil(deadline)
}

func (s *Scheduler) runUntil(deadline Time) {
	for !s.halted {
		ev, ok := s.next(deadline)
		if !ok {
			break
		}
		s.fire(ev)
	}
	// A halted run leaves the clock frozen at the instant of the halt —
	// the violation time is part of the deterministic outcome — instead of
	// advancing it to the deadline.
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// Run executes events until the queue drains or maxEvents is reached
// (maxEvents <= 0 means no limit). It returns the number of events executed.
func (s *Scheduler) Run(maxEvents int64) int64 {
	var n int64
	for !s.halted && s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// Halt makes every run loop (RunUntil, Run, and the sharded epoch loop)
// return before firing another event, leaving the clock at the current
// instant. The event that called Halt completes normally. The flag is
// sticky — later RunUntil calls return immediately — until ClearHalt.
//
// This is the fail-fast hook of the online invariant checker: the first
// violation stops the simulation at its exact simulated time, so fault-
// schedule search pays for one violation, not the full run. Halt is not
// safe to call from shard goroutines; call it from serially executed code
// (root-scheduler actions, or any event of an unsharded run).
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt stopped the scheduler.
func (s *Scheduler) Halted() bool { return s.halted }

// ClearHalt re-arms a halted scheduler so run loops make progress again.
func (s *Scheduler) ClearHalt() { s.halted = false }

// schedHeap is the reference queue: a binary heap ordered by (at, seq) with
// stopped-timer compaction. It is kept selectable (UseWheel=false) so the
// wheel's fire order can be differentially verified against it and so the
// scaling ledger records an honest before/after.
type schedHeap struct {
	events   []event
	nstopped int // stopped timers still occupying heap slots
}

func (h *schedHeap) push(ev event) {
	h.events = append(h.events, ev)
	siftUp(h.events)
}

// next pops the earliest live event with at <= limit, reaping stopped
// entries that surface at the top of the heap.
func (h *schedHeap) next(limit Time) (event, bool) {
	for len(h.events) > 0 {
		top := h.events[0]
		if top.dead() {
			h.pop()
			h.nstopped--
			continue
		}
		if top.at > limit {
			return event{}, false
		}
		return h.pop(), true
	}
	return event{}, false
}

func (h *schedHeap) pop() event {
	ev := eventHeapPop(&h.events)
	return ev
}

// peek returns the earliest live deadline without removing it, reaping dead
// entries that surface at the top.
func (h *schedHeap) peek() (Time, bool) {
	for len(h.events) > 0 && h.events[0].dead() {
		h.pop()
		h.nstopped--
	}
	if len(h.events) == 0 {
		return 0, false
	}
	return h.events[0].at, true
}

// compact removes every stopped entry from the heap in one sweep and
// restores the heap property. Ordering is untouched: (at, seq) is a total
// order, so re-heapifying the surviving events cannot change the pop
// sequence.
func (h *schedHeap) compact() {
	live := h.events[:0]
	for _, ev := range h.events {
		if ev.dead() {
			continue
		}
		live = append(live, ev)
	}
	// Zero the tail so dropped closures and timers are collectable.
	for i := len(live); i < len(h.events); i++ {
		h.events[i] = event{}
	}
	h.events = live
	h.nstopped = 0
	for i := len(h.events)/2 - 1; i >= 0; i-- {
		siftDown(h.events, i)
	}
}

// The sift helpers are shared by schedHeap and the wheel's overflow heap.

func siftUp(h []event) {
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !h[j].before(h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func siftDown(h []event, i int) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].before(h[j1]) {
			j = j2
		}
		if !h[j].before(h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func eventHeapPop(hp *[]event) event {
	h := *hp
	n := len(h) - 1
	ev := h[0]
	h[0] = h[n]
	h[n] = event{} // release the closure for GC
	*hp = h[:n]
	siftDown(*hp, 0)
	return ev
}
