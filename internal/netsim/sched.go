// Package netsim is the discrete-event network simulator substrate: a
// deterministic event scheduler plus a packet-level network model of nodes,
// interfaces, point-to-point links, and multi-access LANs with per-link
// delays and failure injection.
//
// The paper's protocols ran on real routers and the MBONE; here the same
// router logic, byte-encoded wire messages, and soft-state timers execute
// against this simulator (DESIGN.md §4 records the substitution). Every
// packet crossing a link is marshalled to bytes and unmarshalled at the
// receiver, so the codecs are exercised on the true data path.
package netsim

import "container/heap"

// Time is simulated time in microseconds since the start of the run.
type Time int64

// Convenient units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000000
)

// Seconds renders t as floating-point seconds (for reports).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Timer is a handle to a scheduled callback. The zero value is not valid;
// timers are created by Scheduler.After/At.
type Timer struct {
	at      Time
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

// Stop cancels the timer. It reports whether the cancellation prevented the
// callback (false if the timer already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return !t.fired && !t.stopped }

// When returns the time the timer is (or was) scheduled to fire.
func (t *Timer) When() Time { return t.at }

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among equal times: determinism
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*Timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Scheduler is a deterministic discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order.
type Scheduler struct {
	now  Time
	seq  uint64
	heap timerHeap
	// Processed counts events executed, for run-length guards and stats.
	Processed int64
}

// NewScheduler returns a scheduler positioned at time 0.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events still queued (including stopped
// timers not yet reaped).
func (s *Scheduler) Pending() int { return len(s.heap) }

// After schedules fn to run d from now. Negative delays run "immediately"
// (at the current time, after already-queued same-time events).
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn at absolute time t (clamped to now).
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	tm := &Timer{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.heap, tm)
	return tm
}

// Step executes the next event. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		tm := heap.Pop(&s.heap).(*Timer)
		if tm.stopped {
			continue
		}
		s.now = tm.at
		tm.fired = true
		s.Processed++
		tm.fn()
		return true
	}
	return false
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled by executed events are included.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.heap) > 0 {
		// Peek.
		next := s.heap[0]
		if next.stopped {
			heap.Pop(&s.heap)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run executes events until the queue drains or maxEvents is reached
// (maxEvents <= 0 means no limit). It returns the number of events executed.
func (s *Scheduler) Run(maxEvents int64) int64 {
	var n int64
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}
