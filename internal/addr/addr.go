// Package addr provides IPv4-style addressing for the multicast routing
// simulator: unicast host addresses, class-D multicast group addresses, and
// CIDR prefixes used by the unicast routing substrates.
//
// Addresses are 32-bit values stored in host order inside an IP, which makes
// them cheap map keys and cheap to compare; the wire codecs in
// internal/packet convert to and from network byte order at the boundary.
package addr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address held as a 32-bit integer (a.b.c.d ==
// a<<24|b<<16|c<<8|d). The zero value is the unspecified address 0.0.0.0.
type IP uint32

// Well-known addresses used by the protocols in this repository.
const (
	// Unspecified is 0.0.0.0, used as the wildcard source in (*,G) state.
	Unspecified IP = 0
	// AllSystems is 224.0.0.1, the all-hosts group queried by IGMP.
	AllSystems IP = 0xE0000001
	// AllRouters is 224.0.0.2. The paper (§3.7) sends PIM join/prune and
	// query packets on multi-access LANs to this group so every router on
	// the LAN overhears them.
	AllRouters IP = 0xE0000002
)

// MulticastBase and MulticastLast bound the class-D address space 224/4.
const (
	MulticastBase IP = 0xE0000000
	MulticastLast IP = 0xEFFFFFFF
)

// V4 builds an IP from its four dotted-quad components.
func V4(a, b, c, d byte) IP {
	return IP(a)<<24 | IP(b)<<16 | IP(c)<<8 | IP(d)
}

// Octets returns the four dotted-quad components of ip.
func (ip IP) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// IsMulticast reports whether ip falls in the class-D range 224.0.0.0/4.
func (ip IP) IsMulticast() bool { return ip >= MulticastBase && ip <= MulticastLast }

// IsLinkLocalMulticast reports whether ip is in 224.0.0.0/24, the range that
// routers never forward (IGMP queries, PIM LAN messages).
func (ip IP) IsLinkLocalMulticast() bool { return ip&0xFFFFFF00 == 0xE0000000 }

// IsUnspecified reports whether ip is 0.0.0.0.
func (ip IP) IsUnspecified() bool { return ip == 0 }

// String renders ip in dotted-quad form.
func (ip IP) String() string {
	a, b, c, d := ip.Octets()
	var buf [15]byte
	s := strconv.AppendUint(buf[:0], uint64(a), 10)
	s = append(s, '.')
	s = strconv.AppendUint(s, uint64(b), 10)
	s = append(s, '.')
	s = strconv.AppendUint(s, uint64(c), 10)
	s = append(s, '.')
	s = strconv.AppendUint(s, uint64(d), 10)
	return string(s)
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("addr: %q is not a dotted quad", s)
	}
	var ip IP
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("addr: bad octet %q in %q", p, s)
		}
		ip = ip<<8 | IP(v)
	}
	return ip, nil
}

// MustParseIP is ParseIP that panics on error, for tests and tables.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Prefix is a CIDR prefix: a network address plus mask length.
type Prefix struct {
	Addr IP
	Len  int // 0..32
}

// ErrBadPrefix is returned for malformed prefix strings or mask lengths.
var ErrBadPrefix = errors.New("addr: invalid prefix")

// NewPrefix returns the prefix of the given length containing ip, with host
// bits cleared.
func NewPrefix(ip IP, length int) (Prefix, error) {
	if length < 0 || length > 32 {
		return Prefix{}, ErrBadPrefix
	}
	return Prefix{Addr: ip & Mask(length), Len: length}, nil
}

// MustPrefix is NewPrefix that panics on error.
func MustPrefix(ip IP, length int) Prefix {
	p, err := NewPrefix(ip, length)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q has no '/'", ErrBadPrefix, s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil || length < 0 || length > 32 {
		return Prefix{}, fmt.Errorf("%w: bad length in %q", ErrBadPrefix, s)
	}
	return NewPrefix(ip, length)
}

// Mask returns the netmask for a prefix length as an IP-shaped bit pattern.
func Mask(length int) IP {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return 0xFFFFFFFF
	}
	return IP(^uint32(0) << (32 - length))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool { return ip&Mask(p.Len) == p.Addr }

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	shorter := p.Len
	if q.Len < shorter {
		shorter = q.Len
	}
	m := Mask(shorter)
	return p.Addr&m == q.Addr&m
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string { return p.Addr.String() + "/" + strconv.Itoa(p.Len) }

// GroupForIndex returns the i-th multicast group address in a simulator-local
// block (225.0.0.0 upward), used by workload generators to mint distinct
// groups that never collide with link-local ranges.
func GroupForIndex(i int) IP {
	return V4(225, 0, 0, 0) + IP(i)
}

// RouterIP returns a deterministic loopback-style router address for node n
// (10.0.x.y), used when building simulated topologies.
func RouterIP(n int) IP {
	return V4(10, 0, byte(n>>8), byte(n))
}

// HostIP returns a deterministic host address on router n's stub LAN
// (10.100.x.y offset by host index h).
func HostIP(n, h int) IP {
	return V4(10, 100, byte(n), byte(1+h))
}
