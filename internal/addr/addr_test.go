package addr

import (
	"testing"
	"testing/quick"
)

func TestV4Octets(t *testing.T) {
	ip := V4(192, 168, 1, 20)
	a, b, c, d := ip.Octets()
	if a != 192 || b != 168 || c != 1 || d != 20 {
		t.Fatalf("Octets() = %d.%d.%d.%d, want 192.168.1.20", a, b, c, d)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		got, err := ParseIP(ip.String())
		return err == nil && got == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "-1.2.3.4"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", s)
		}
	}
}

func TestParseIPKnown(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want IP
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xFFFFFFFF},
		{"224.0.0.2", AllRouters},
		{"224.0.0.1", AllSystems},
		{"10.0.0.1", V4(10, 0, 0, 1)},
	} {
		got, err := ParseIP(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParseIP(%q) = %v, %v; want %v", tc.s, got, err, tc.want)
		}
	}
}

func TestIsMulticast(t *testing.T) {
	for _, tc := range []struct {
		ip   IP
		want bool
	}{
		{V4(223, 255, 255, 255), false},
		{V4(224, 0, 0, 0), true},
		{V4(239, 255, 255, 255), true},
		{V4(240, 0, 0, 0), false},
		{V4(10, 1, 2, 3), false},
		{GroupForIndex(0), true},
		{GroupForIndex(100000), true},
	} {
		if got := tc.ip.IsMulticast(); got != tc.want {
			t.Errorf("%v.IsMulticast() = %v, want %v", tc.ip, got, tc.want)
		}
	}
}

func TestIsLinkLocalMulticast(t *testing.T) {
	if !AllRouters.IsLinkLocalMulticast() || !AllSystems.IsLinkLocalMulticast() {
		t.Error("224.0.0.x should be link-local multicast")
	}
	if GroupForIndex(3).IsLinkLocalMulticast() {
		t.Error("225.0.0.3 should not be link-local")
	}
	if V4(224, 0, 1, 0).IsLinkLocalMulticast() {
		t.Error("224.0.1.0 is outside 224.0.0.0/24")
	}
}

func TestMask(t *testing.T) {
	for _, tc := range []struct {
		l    int
		want IP
	}{
		{0, 0},
		{8, 0xFF000000},
		{24, 0xFFFFFF00},
		{32, 0xFFFFFFFF},
		{-3, 0},
		{40, 0xFFFFFFFF},
	} {
		if got := Mask(tc.l); got != tc.want {
			t.Errorf("Mask(%d) = %08x, want %08x", tc.l, uint32(got), uint32(tc.want))
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustPrefix(V4(10, 1, 0, 0), 16)
	if !p.Contains(V4(10, 1, 200, 3)) {
		t.Error("10.1.0.0/16 should contain 10.1.200.3")
	}
	if p.Contains(V4(10, 2, 0, 1)) {
		t.Error("10.1.0.0/16 should not contain 10.2.0.1")
	}
	all := MustPrefix(0, 0)
	if !all.Contains(V4(1, 2, 3, 4)) || !all.Contains(0xFFFFFFFF) {
		t.Error("0.0.0.0/0 should contain everything")
	}
}

func TestNewPrefixClearsHostBits(t *testing.T) {
	p := MustPrefix(V4(10, 1, 2, 3), 24)
	if p.Addr != V4(10, 1, 2, 0) {
		t.Errorf("host bits not cleared: %v", p)
	}
}

func TestNewPrefixRejectsBadLength(t *testing.T) {
	if _, err := NewPrefix(0, 33); err == nil {
		t.Error("length 33 accepted")
	}
	if _, err := NewPrefix(0, -1); err == nil {
		t.Error("length -1 accepted")
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("192.168.4.0/22")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len != 22 || p.Addr != V4(192, 168, 4, 0) {
		t.Errorf("got %v", p)
	}
	for _, s := range []string{"1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "1.2.3/8", "1.2.3.4/x"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", s)
		}
	}
}

func TestPrefixString(t *testing.T) {
	if got := MustPrefix(V4(10, 0, 0, 0), 8).String(); got != "10.0.0.0/8" {
		t.Errorf("got %q", got)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustPrefix(V4(10, 0, 0, 0), 8)
	b := MustPrefix(V4(10, 20, 0, 0), 16)
	c := MustPrefix(V4(11, 0, 0, 0), 8)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Error("10/8 and 11/8 should not overlap")
	}
}

func TestPrefixOverlapsProperty(t *testing.T) {
	// Overlap is symmetric, and a prefix always overlaps itself and 0/0.
	f := func(v1, v2 uint32, l1, l2 uint8) bool {
		p1 := MustPrefix(IP(v1), int(l1%33))
		p2 := MustPrefix(IP(v2), int(l2%33))
		if p1.Overlaps(p2) != p2.Overlaps(p1) {
			return false
		}
		return p1.Overlaps(p1) && p1.Overlaps(Prefix{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAddressHelpers(t *testing.T) {
	if RouterIP(5) != V4(10, 0, 0, 5) {
		t.Errorf("RouterIP(5) = %v", RouterIP(5))
	}
	if RouterIP(260) != V4(10, 0, 1, 4) {
		t.Errorf("RouterIP(260) = %v", RouterIP(260))
	}
	if HostIP(7, 0) != V4(10, 100, 7, 1) {
		t.Errorf("HostIP(7,0) = %v", HostIP(7, 0))
	}
	seen := map[IP]bool{}
	for i := 0; i < 64; i++ {
		g := GroupForIndex(i)
		if !g.IsMulticast() || g.IsLinkLocalMulticast() {
			t.Fatalf("GroupForIndex(%d) = %v not a routable group", i, g)
		}
		if seen[g] {
			t.Fatalf("duplicate group %v", g)
		}
		seen[g] = true
	}
}

func TestMustParseIPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseIP did not panic on bad input")
		}
	}()
	MustParseIP("not-an-ip")
}
