// Package fastpath holds the single switch selecting between the
// forwarding-plane fast path and the reference path.
//
// Fast path (the default): the unicast table answers longest-prefix matches
// from an 8-bit-stride multibit trie, RPF results are served from the
// generation-stamped cache in internal/rpf, and MFIB entries reuse compiled
// fan-out slices (internal/mfib.Plan). Reference path: the original linear
// prefix scan, uncached RPF resolution, and per-packet outgoing-interface
// list construction.
//
// Both paths must produce bit-identical forwarding behaviour — correctness
// is anchored to the paper's §3.8 route-change semantics (a unicast routing
// change must be reflected by the very next lookup), enforced by the
// differential tests in internal/unicast and internal/mfib and by the
// trace-equivalence gate in cmd/pimbench. The switch exists so the
// equivalence can be checked end to end and so BENCH_dataplane.json records
// an honest before/after.
package fastpath

import "sync/atomic"

// enabled defaults to true: the fast path is the production configuration.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether the fast path is active.
func Enabled() bool { return enabled.Load() }

// Set selects the fast path (true) or the reference path (false) and
// returns the previous setting. Benchmarks and differential tests flip it;
// nothing else should.
func Set(on bool) (prev bool) { return enabled.Swap(on) }
