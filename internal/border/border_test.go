package border_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/border"
	"pim/internal/core"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimdm"
	"pim/internal/unicast"
)

// fixture builds a sparse region spliced to a dense region via one border
// router:
//
//	sparse:  rp —— s1 —— BORDER
//	dense:               BORDER —— d1 —— d2
//	hosts:   hrp(rp)  hs(s1)  hd1(d1)  hd2(d2)
type fixture struct {
	net        *netsim.Network
	group      addr.IP
	b          *border.BorderRouter
	sparse     map[string]*core.Router
	dense      map[string]*pimdm.Router
	hosts      map[string]*igmp.Host
	denseLinks []*netsim.Link
}

func build(t *testing.T) *fixture {
	t.Helper()
	net := netsim.NewNetwork()
	rpN := net.AddNode("rp")
	s1N := net.AddNode("s1")
	bN := net.AddNode("border")
	d1N := net.AddNode("d1")
	d2N := net.AddNode("d2")

	p2p := func(a, b *netsim.Node, link int) (*netsim.Iface, *netsim.Iface, *netsim.Link) {
		ia := net.AddIface(a, addr.V4(10, 200, byte(link), 1))
		ib := net.AddIface(b, addr.V4(10, 200, byte(link), 2))
		l := net.Connect(ia, ib, netsim.Millisecond)
		return ia, ib, l
	}
	_, _, _ = p2p(rpN, s1N, 0)
	_, bSparseIf, _ := p2p(s1N, bN, 1)
	bDenseIf := net.AddIface(bN, addr.V4(10, 200, 2, 1))
	d1Up := net.AddIface(d1N, addr.V4(10, 200, 2, 2))
	ld1 := net.Connect(bDenseIf, d1Up, netsim.Millisecond)
	d1Down := net.AddIface(d1N, addr.V4(10, 200, 3, 1))
	d2Up := net.AddIface(d2N, addr.V4(10, 200, 3, 2))
	ld2 := net.Connect(d1Down, d2Up, netsim.Millisecond)
	_ = bSparseIf

	hostAt := func(n *netsim.Node, r int) *igmp.Host {
		rif := net.AddIface(n, addr.V4(10, 100, byte(r), 254))
		hn := net.AddNode("h")
		hif := net.AddIface(hn, addr.V4(10, 100, byte(r), 1))
		net.Connect(rif, hif, netsim.Millisecond)
		return igmp.NewHost(hn, hif)
	}
	hrp := hostAt(rpN, 0)
	hs := hostAt(s1N, 1)
	hd1 := hostAt(d1N, 3)
	hd2 := hostAt(d2N, 4)

	oracle := unicast.NewOracle(net)
	group := addr.GroupForIndex(0)
	rpAddr := rpN.Addr()
	sparseCfg := core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rpAddr}}}
	denseCfg := pimdm.Config{PruneHoldTime: 600 * netsim.Second}

	f := &fixture{
		net: net, group: group,
		sparse: map[string]*core.Router{}, dense: map[string]*pimdm.Router{},
		hosts:      map[string]*igmp.Host{"hrp": hrp, "hs": hs, "hd1": hd1, "hd2": hd2},
		denseLinks: []*netsim.Link{ld1, ld2},
	}
	// Pure sparse routers.
	for name, nd := range map[string]*netsim.Node{"rp": rpN, "s1": s1N} {
		r := core.New(nd, sparseCfg, oracle.RouterFor(nd))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		f.sparse[name] = r
	}
	// Pure dense routers.
	for name, nd := range map[string]*netsim.Node{"d1": d1N, "d2": d2N} {
		r := pimdm.New(nd, denseCfg, oracle.RouterFor(nd))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		f.dense[name] = r
	}
	// The border router.
	f.b = border.New(bN, sparseCfg, denseCfg, oracle.RouterFor(bN), []*netsim.Iface{bDenseIf})
	bq := igmp.NewQuerier(bN)
	bq.OnJoin = func(ifc *netsim.Iface, g addr.IP) { f.b.LocalJoin(ifc, g) }
	bq.OnLeave = func(ifc *netsim.Iface, g addr.IP) { f.b.LocalLeave(ifc, g) }
	f.b.Start()
	bq.Start()

	net.Sched.RunUntil(2 * netsim.Second)
	return f
}

func (f *fixture) run(d netsim.Time) { f.net.Sched.RunUntil(f.net.Sched.Now() + d) }

func (f *fixture) send(h *igmp.Host, n int) {
	for i := 0; i < n; i++ {
		pkt := packet.New(h.Iface.Addr, f.group, packet.ProtoUDP, make([]byte, 64))
		h.Node.Send(h.Iface, pkt, 0)
		f.run(netsim.Second)
	}
}

// TestDenseMemberPullsSparseData is the §4 headline: a member deep in the
// dense region triggers member-existence flooding, the border joins the
// sparse tree, and data from a sparse-region source reaches the member.
func TestDenseMemberPullsSparseData(t *testing.T) {
	f := build(t)
	f.hosts["hd2"].Join(f.group)
	f.run(3 * netsim.Second)

	// Member existence propagated to the border region-wide.
	if !f.b.Dense.RegionHasMembers(f.group) {
		t.Fatal("border never learned region membership")
	}
	// The border joined the shared tree: (*,G) on the sparse instance.
	if f.b.Sparse.MFIB.Wildcard(f.group) == nil {
		t.Fatal("border did not join the sparse tree")
	}
	// And the sparse transit router carries the state.
	if f.sparse["s1"].MFIB.Wildcard(f.group) == nil {
		t.Fatal("no (*,G) at the sparse transit router")
	}
	// A sparse-region source now reaches the dense-region member.
	f.send(f.hosts["hs"], 5)
	if got := f.hosts["hd2"].Received[f.group]; got < 4 {
		t.Fatalf("dense member got %d of 5 packets", got)
	}
	// Member-less dense branch d1's host LAN stays clean? d1 is transit to
	// d2, so its host LAN (truncated leaf, no members) must carry nothing.
	if f.hosts["hd1"].Received[f.group] != 0 {
		t.Error("non-member dense host received data")
	}
}

// TestLastDenseLeaveprunesSparseTree: when the region's last member leaves,
// the border prunes itself off the shared tree.
func TestLastDenseLeavePrunesSparseTree(t *testing.T) {
	f := build(t)
	f.hosts["hd2"].Join(f.group)
	f.run(3 * netsim.Second)
	if f.b.Sparse.MFIB.Wildcard(f.group) == nil {
		t.Fatal("tree did not form")
	}
	f.hosts["hd2"].Leave(f.group)
	// Leave -> member ad refresh -> border leave; allow a query cycle.
	f.run(2 * pimdm.DefaultQueryInterval)
	wc := f.b.Sparse.MFIB.Wildcard(f.group)
	now := f.net.Sched.Now()
	if wc != nil && !wc.OIFEmpty(now) {
		t.Error("border still holds live sparse oifs after region emptied")
	}
}

// TestDenseSourceReachesSparseReceiver: the reverse direction — a source
// inside the dense region, a receiver in the sparse region. The border
// registers the source toward the RP on the region's behalf.
func TestDenseSourceReachesSparseReceiver(t *testing.T) {
	f := build(t)
	f.hosts["hrp"].Join(f.group)
	f.run(3 * netsim.Second)
	f.send(f.hosts["hd2"], 6)
	if got := f.hosts["hrp"].Received[f.group]; got < 5 {
		t.Fatalf("sparse receiver got %d of 6 packets from dense source", got)
	}
	// The RP built (S,G) state toward the dense source via the border.
	src := f.hosts["hd2"].Iface.Addr
	if f.sparse["rp"].MFIB.SG(src, f.group) == nil {
		t.Error("RP holds no (S,G) for the dense-region source")
	}
}

// TestBothDirectionsSimultaneously: members and sources on both sides.
func TestBothDirectionsSimultaneously(t *testing.T) {
	f := build(t)
	f.hosts["hd2"].Join(f.group)
	f.hosts["hs"].Join(f.group)
	f.run(3 * netsim.Second)
	f.send(f.hosts["hd1"], 5) // dense source
	f.send(f.hosts["hs"], 5)  // sparse source (also a member)
	if got := f.hosts["hd2"].Received[f.group]; got < 8 {
		t.Errorf("dense member got %d of 10", got)
	}
	// The sparse member hears the dense source.
	if got := f.hosts["hs"].Received[f.group]; got < 4 {
		t.Errorf("sparse member got %d of 5 dense-source packets", got)
	}
}

// TestBorderLocalMembershipRouting: the border's own IGMP callbacks route to
// the owning protocol instance by interface side.
func TestBorderLocalMembershipRouting(t *testing.T) {
	f := build(t)
	bNode := f.b.Node
	sparseIf := bNode.Ifaces[0] // toward s1
	denseIf := bNode.Ifaces[1]  // toward d1
	if f.b.IsDenseIface(sparseIf) || !f.b.IsDenseIface(denseIf) {
		t.Fatal("IsDenseIface misclassifies")
	}
	f.b.LocalJoin(sparseIf, f.group)
	if f.b.Sparse.MFIB.Wildcard(f.group) == nil {
		t.Error("sparse-side join did not reach the sparse instance")
	}
	f.b.LocalLeave(sparseIf, f.group)
	// Dense-side membership goes to the dense instance (and, via the
	// region-membership splice, back into the sparse tree).
	f.b.LocalJoin(denseIf, f.group)
	if !f.b.Dense.RegionHasMembers(f.group) {
		t.Error("dense-side join did not reach the dense instance")
	}
	f.b.LocalLeave(denseIf, f.group)
	if f.b.StateCount() < 0 {
		t.Error("unreachable")
	}
}

// TestCrashedDenseRouterAgesOut: when the member's router crashes (all its
// messages lost), its member-existence advertisement ages out and the
// border leaves the sparse tree — soft state end to end.
func TestCrashedDenseRouterAgesOut(t *testing.T) {
	f := build(t)
	f.hosts["hd2"].Join(f.group)
	f.run(3 * netsim.Second)
	if !f.b.Dense.RegionHasMembers(f.group) {
		t.Fatal("membership never reached the border")
	}
	// Crash d2: every frame it originates is lost.
	d2 := f.dense["d2"].Node
	f.net.Loss = func(from, to *netsim.Iface, pkt *packet.Packet) bool {
		return from.Node == d2
	}
	f.run(5 * pimdm.DefaultQueryInterval)
	if f.b.Dense.RegionHasMembers(f.group) {
		t.Fatal("crashed router's membership never aged out")
	}
	wc := f.b.Sparse.MFIB.Wildcard(f.group)
	if wc != nil && !wc.OIFEmpty(f.net.Sched.Now()) {
		t.Error("border still on the sparse tree after the region emptied")
	}
}
