// Package border implements the paper's §4 dense/sparse interoperation
// mechanism: a border router that splices a dense-mode region onto a
// sparse-mode distribution tree.
//
// The paper identifies the core problem — "the first group member in a
// dense mode region needs to have some way of initially pulling down the
// data packets from (or through) an upstream sparse mode region" — and
// sketches the solution this package builds: "getting the group member
// existence information to the border routers, and having border routers
// send explicit joins."
//
// Concretely, a BorderRouter runs both protocol instances on one node:
//
//   - a PIM sparse-mode router (internal/core) owning the sparse-side
//     interfaces, and
//   - a PIM dense-mode router (internal/pimdm) scoped to the dense-region
//     interfaces.
//
// Dense-region routers flood member-existence advertisements (pimmsg
// MemberAd, region-scoped). When the region first gains a member of a
// group, the border router joins the group's sparse-mode shared tree with
// the region-facing interface as a local branch; data then flows down the
// sparse tree, across the border, and is distributed inside the region by
// flood-and-prune. When the last member disappears, the border prunes
// itself off the sparse tree. Sources inside the dense region are handled
// by the border acting as their designated router: it registers them toward
// the RP(s), and the RP's joins terminate at the border (§4's second issue,
// "which border router should be the entry point for data packets from a
// particular source" — here, the one on the unicast route).
package border

import (
	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimdm"
	"pim/internal/unicast"
)

// BorderRouter couples a sparse-mode and a dense-mode protocol instance on
// one node, splitting the node's interfaces between them.
type BorderRouter struct {
	Node   *netsim.Node
	Sparse *core.Router
	Dense  *pimdm.Router

	dense map[int]bool // iface index -> belongs to the dense region
}

// New builds a border router. denseIfaces lists the node's interfaces that
// face the dense-mode region; every other interface is sparse-side.
func New(nd *netsim.Node, sparseCfg core.Config, denseCfg pimdm.Config,
	uni unicast.Router, denseIfaces []*netsim.Iface) *BorderRouter {
	b := &BorderRouter{Node: nd, dense: map[int]bool{}}
	for _, ifc := range denseIfaces {
		b.dense[ifc.Index] = true
	}
	denseCfg.Scope = func(ifc *netsim.Iface) bool { return b.dense[ifc.Index] }
	b.Sparse = core.New(nd, sparseCfg, uni)
	b.Dense = pimdm.New(nd, denseCfg, uni)
	b.Dense.OnRegionMembership = b.regionMembershipChanged
	// Keep the region exporting source traffic for sparse-supported groups:
	// without this the dense instance, having no region-internal receivers,
	// would prune the border off every source's flood (§4: data from region
	// sources must keep reaching the RPs).
	b.Dense.ExternalInterest = func(s, g addr.IP) bool {
		return len(b.Sparse.RPsFor(g)) > 0
	}
	return b
}

// Start launches both protocol instances, then installs the multiplexing
// packet handlers that split traffic between them by arrival interface.
func (b *BorderRouter) Start() {
	b.Sparse.Start()
	b.Dense.Start()
	// Override the handlers both instances registered with the mux.
	b.Node.Handle(packet.ProtoPIM, netsim.HandlerFunc(b.handlePIM))
	b.Node.Handle(packet.ProtoUDP, netsim.HandlerFunc(b.handleData))
	// Registers (ProtoPIMData) are always sparse-side business; core's
	// registration of that handler stands.
}

// IsDenseIface reports whether the interface faces the dense region.
func (b *BorderRouter) IsDenseIface(ifc *netsim.Iface) bool { return b.dense[ifc.Index] }

func (b *BorderRouter) handlePIM(in *netsim.Iface, pkt *packet.Packet) {
	if b.dense[in.Index] {
		b.Dense.HandlePIMPacket(in, pkt)
		return
	}
	b.Sparse.HandlePIMPacket(in, pkt)
}

func (b *BorderRouter) handleData(in *netsim.Iface, pkt *packet.Packet) {
	if b.dense[in.Index] {
		// Intra-region distribution by flood-and-prune…
		b.Dense.HandleDataPacket(in, pkt)
		// …and across the border: register region-internal sources toward
		// the RP(s) and serve any sparse-mode state anchored on this
		// interface.
		b.Sparse.HandleBorderData(in, pkt)
		return
	}
	b.Sparse.HandleDataPacket(in, pkt)
}

// LocalJoin routes a local IGMP membership report to the owning instance.
func (b *BorderRouter) LocalJoin(ifc *netsim.Iface, g addr.IP) {
	if b.dense[ifc.Index] {
		b.Dense.LocalJoin(ifc, g)
		return
	}
	b.Sparse.LocalJoin(ifc, g)
}

// LocalLeave routes a local IGMP leave to the owning instance.
func (b *BorderRouter) LocalLeave(ifc *netsim.Iface, g addr.IP) {
	if b.dense[ifc.Index] {
		b.Dense.LocalLeave(ifc, g)
		return
	}
	b.Sparse.LocalLeave(ifc, g)
}

// regionMembershipChanged is the §4 splice: member existence inside the
// dense region translates into explicit sparse-mode joins (and leaves) by
// the border router, with the region-facing interfaces acting as local
// member branches of the shared tree.
func (b *BorderRouter) regionMembershipChanged(g addr.IP, present bool) {
	for idx := range b.dense {
		ifc := b.Node.Ifaces[idx]
		if present {
			b.Sparse.LocalJoin(ifc, g)
		} else {
			b.Sparse.LocalLeave(ifc, g)
		}
	}
}

// StateCount sums both instances' forwarding entries.
func (b *BorderRouter) StateCount() int {
	return b.Sparse.StateCount() + b.Dense.StateCount()
}
