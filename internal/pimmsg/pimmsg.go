// Package pimmsg defines the PIM control message wire formats of §3: Query
// (hello/neighbor discovery, §3.7 fn. 14), Register (data piggybacked toward
// the RP), Join/Prune (join list and prune list with per-address WC and RP
// bits), RP-Reachability (§3.2/§3.9), and the dense-mode Graft/Graft-Ack
// used by internal/pimdm (the paper's companion protocol [13]).
//
// The 1994 implementation carried these as IGMP message-type extensions;
// this reproduction gives PIM its own IP protocol number and a two-byte
// version/type header (DESIGN.md §4). All multi-byte fields are network
// byte order and every codec round-trips byte-exactly.
package pimmsg

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pim/internal/addr"
)

// Message types.
const (
	TypeQuery     = 0 // neighbor discovery / DR election
	TypeRegister  = 1 // encapsulated data, sender's DR -> RP
	TypeJoinPrune = 3
	TypeRPReach   = 4 // RP reachability, RP -> down the (*,G) tree
	TypeGraft     = 6 // dense mode: unprune a branch
	TypeGraftAck  = 7 // dense mode: hop-by-hop graft acknowledgement
	TypeAssert    = 5 // dense mode: LAN forwarder election
)

// Version is the protocol version carried in every message.
const Version = 1

// Per-address flag bits in join/prune lists (§3.2).
const (
	FlagWC = 1 << 0 // address is the RP for a shared tree
	FlagRP = 1 << 1 // state belongs on the RP tree (RP-bit)
)

// ErrBadMessage reports malformed wire bytes.
var ErrBadMessage = errors.New("pimmsg: malformed message")

// Addr is one join- or prune-list element: an address plus WC/RP bits.
type Addr struct {
	Addr addr.IP
	WC   bool
	RP   bool
}

func (a Addr) flags() byte {
	var f byte
	if a.WC {
		f |= FlagWC
	}
	if a.RP {
		f |= FlagRP
	}
	return f
}

func (a Addr) String() string {
	s := a.Addr.String()
	if a.WC {
		s += ",WC"
	}
	if a.RP {
		s += ",RP"
	}
	return s
}

// GroupRecord carries the joins and prunes for one group.
type GroupRecord struct {
	Group  addr.IP
	Joins  []Addr
	Prunes []Addr
}

// JoinPrune is the §3.2–§3.6 workhorse message. UpstreamNeighbor addresses
// the router expected to act on it; on multi-access LANs the message is
// multicast to 224.0.0.2 so other routers can overhear it for prune
// override and join suppression (§3.7).
type JoinPrune struct {
	UpstreamNeighbor addr.IP
	HoldTime         uint16 // seconds the receiver should keep the state
	Groups           []GroupRecord
}

// Marshal encodes the message body (without the version/type header).
func (m *JoinPrune) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 8)) }

// MarshalTo appends the encoded body to b (same bytes as Marshal).
func (m *JoinPrune) MarshalTo(b []byte) []byte {
	var top [8]byte
	binary.BigEndian.PutUint32(top[0:], uint32(m.UpstreamNeighbor))
	binary.BigEndian.PutUint16(top[4:], m.HoldTime)
	binary.BigEndian.PutUint16(top[6:], uint16(len(m.Groups)))
	b = append(b, top[:]...)
	for _, g := range m.Groups {
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[0:], uint32(g.Group))
		binary.BigEndian.PutUint16(hdr[4:], uint16(len(g.Joins)))
		binary.BigEndian.PutUint16(hdr[6:], uint16(len(g.Prunes)))
		b = append(b, hdr[:]...)
		for _, lst := range [][]Addr{g.Joins, g.Prunes} {
			for _, a := range lst {
				var e [5]byte
				binary.BigEndian.PutUint32(e[0:], uint32(a.Addr))
				e[4] = a.flags()
				b = append(b, e[:]...)
			}
		}
	}
	return b
}

func unmarshalAddrList(dst []Addr, b []byte, n int) ([]Addr, []byte, error) {
	if len(b) < 5*n {
		return dst, nil, ErrBadMessage
	}
	for i := 0; i < n; i++ {
		dst = append(dst, Addr{
			Addr: addr.IP(binary.BigEndian.Uint32(b)),
			WC:   b[4]&FlagWC != 0,
			RP:   b[4]&FlagRP != 0,
		})
		b = b[5:]
	}
	return dst, b, nil
}

// UnmarshalJoinPrune decodes a message body.
func UnmarshalJoinPrune(b []byte) (*JoinPrune, error) {
	m := new(JoinPrune)
	if err := UnmarshalJoinPruneInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalJoinPruneInto decodes a message body into a caller-owned message,
// reusing the capacity of m's Groups slice and of each retained group
// record's Joins/Prunes slices — a warm decode of a steady-refresh message
// allocates nothing. The decoded slices are only valid until the next
// UnmarshalJoinPruneInto on the same m.
func UnmarshalJoinPruneInto(m *JoinPrune, b []byte) error {
	if len(b) < 8 {
		return ErrBadMessage
	}
	m.UpstreamNeighbor = addr.IP(binary.BigEndian.Uint32(b))
	m.HoldTime = binary.BigEndian.Uint16(b[4:])
	ng := int(binary.BigEndian.Uint16(b[6:]))
	b = b[8:]
	// Reslicing past the previous length deliberately resurrects old group
	// records so their Joins/Prunes capacity is recycled too.
	if cap(m.Groups) >= ng {
		m.Groups = m.Groups[:ng]
	} else {
		m.Groups = make([]GroupRecord, ng)
	}
	for i := 0; i < ng; i++ {
		if len(b) < 8 {
			m.Groups = m.Groups[:i]
			return ErrBadMessage
		}
		g := &m.Groups[i]
		g.Group = addr.IP(binary.BigEndian.Uint32(b))
		nj := int(binary.BigEndian.Uint16(b[4:]))
		np := int(binary.BigEndian.Uint16(b[6:]))
		b = b[8:]
		var err error
		if g.Joins, b, err = unmarshalAddrList(g.Joins[:0], b, nj); err != nil {
			m.Groups = m.Groups[:i]
			return err
		}
		if g.Prunes, b, err = unmarshalAddrList(g.Prunes[:0], b, np); err != nil {
			m.Groups = m.Groups[:i]
			return err
		}
	}
	return nil
}

// Register is the sender-side encapsulation of §3: the DR wraps the data
// packet and unicasts it to the RP ("a PIM register message, piggybacked on
// the data packet"). Inner holds the complete marshalled inner datagram.
type Register struct {
	Inner []byte
}

// Marshal encodes the message body.
func (m *Register) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 2+len(m.Inner))) }

// MarshalTo appends the encoded body to b (same bytes as Marshal).
func (m *Register) MarshalTo(b []byte) []byte {
	b = append(b, byte(len(m.Inner)>>8), byte(len(m.Inner)))
	return append(b, m.Inner...)
}

// UnmarshalRegister decodes a message body.
func UnmarshalRegister(b []byte) (*Register, error) {
	if len(b) < 2 {
		return nil, ErrBadMessage
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return nil, ErrBadMessage
	}
	return &Register{Inner: b[2 : 2+n]}, nil
}

// RPReach is the periodic RP reachability message distributed down the
// (*,G) tree (§3.2); receivers reset their RP timers, and its absence
// triggers fail-over to an alternate RP (§3.9).
type RPReach struct {
	Group    addr.IP
	RP       addr.IP
	HoldTime uint16 // seconds
}

// Marshal encodes the message body.
func (m *RPReach) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 10)) }

// MarshalTo appends the encoded body to b (same bytes as Marshal).
func (m *RPReach) MarshalTo(b []byte) []byte {
	var e [10]byte
	binary.BigEndian.PutUint32(e[0:], uint32(m.Group))
	binary.BigEndian.PutUint32(e[4:], uint32(m.RP))
	binary.BigEndian.PutUint16(e[8:], m.HoldTime)
	return append(b, e[:]...)
}

// UnmarshalRPReach decodes a message body.
func UnmarshalRPReach(b []byte) (*RPReach, error) {
	if len(b) < 10 {
		return nil, ErrBadMessage
	}
	return &RPReach{
		Group:    addr.IP(binary.BigEndian.Uint32(b)),
		RP:       addr.IP(binary.BigEndian.Uint32(b[4:])),
		HoldTime: binary.BigEndian.Uint16(b[8:]),
	}, nil
}

// Query is the neighbor discovery message multicast to 224.0.0.2 (§3.7
// fn. 14); neighbors expire after HoldTime. DR election picks the highest
// address among live neighbors and self.
type Query struct {
	HoldTime uint16 // seconds
}

// Marshal encodes the message body.
func (m *Query) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 2)) }

// MarshalTo appends the encoded body to b (same bytes as Marshal).
func (m *Query) MarshalTo(b []byte) []byte {
	return append(b, byte(m.HoldTime>>8), byte(m.HoldTime))
}

// UnmarshalQuery decodes a message body.
func UnmarshalQuery(b []byte) (*Query, error) {
	m := new(Query)
	if err := UnmarshalQueryInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalQueryInto decodes a message body into a caller-owned message.
func UnmarshalQueryInto(m *Query, b []byte) error {
	if len(b) < 2 {
		return ErrBadMessage
	}
	m.HoldTime = binary.BigEndian.Uint16(b)
	return nil
}

// Assert elects a single forwarder when parallel routers feed one LAN in
// dense mode: the router with the better (lower) metric to the source wins;
// ties break to the higher address.
type Assert struct {
	Group  addr.IP
	Source addr.IP
	Metric uint32
}

// Marshal encodes the message body.
func (m *Assert) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 12)) }

// MarshalTo appends the encoded body to b (same bytes as Marshal).
func (m *Assert) MarshalTo(b []byte) []byte {
	var e [12]byte
	binary.BigEndian.PutUint32(e[0:], uint32(m.Group))
	binary.BigEndian.PutUint32(e[4:], uint32(m.Source))
	binary.BigEndian.PutUint32(e[8:], m.Metric)
	return append(b, e[:]...)
}

// UnmarshalAssert decodes a message body.
func UnmarshalAssert(b []byte) (*Assert, error) {
	if len(b) < 12 {
		return nil, ErrBadMessage
	}
	return &Assert{
		Group:  addr.IP(binary.BigEndian.Uint32(b)),
		Source: addr.IP(binary.BigEndian.Uint32(b[4:])),
		Metric: binary.BigEndian.Uint32(b[8:]),
	}, nil
}

// Graft (dense mode) asks the upstream router to restore a pruned (S,G)
// branch; GraftAck confirms hop-by-hop. Both reuse the JoinPrune body
// layout with the addresses in the join list.

// Envelope wraps a typed body with the common version/type header.
func Envelope(msgType byte, body []byte) []byte {
	b := make([]byte, 2+len(body))
	b[0] = Version
	b[1] = msgType
	copy(b[2:], body)
	return b
}

// AppendEnvelope appends the version/type header to dst; follow it with the
// body's MarshalTo to build the whole payload in one pass with no copies:
//
//	buf = pimmsg.AppendEnvelope(buf[:0], pimmsg.TypeJoinPrune)
//	buf = m.MarshalTo(buf)
func AppendEnvelope(dst []byte, msgType byte) []byte {
	return append(dst, Version, msgType)
}

// Open splits an envelope into type and body.
func Open(b []byte) (msgType byte, body []byte, err error) {
	if len(b) < 2 {
		return 0, nil, ErrBadMessage
	}
	if b[0] != Version {
		return 0, nil, fmt.Errorf("%w: version %d", ErrBadMessage, b[0])
	}
	return b[1], b[2:], nil
}

// TypeMemberAd is the dense-region member-existence advertisement used by
// the §4 dense/sparse interoperation mechanism: routers inside a dense-mode
// region flood the set of groups they have local members for, so border
// routers learn "group member existence information" and can send explicit
// joins into the sparse region on the region's behalf.
const TypeMemberAd = 8

// MemberAd is the flooded member-existence advertisement.
type MemberAd struct {
	Origin addr.IP // advertising router
	Seq    uint32
	Groups []addr.IP // groups with local members at the origin
}

// Marshal encodes the message body.
func (m *MemberAd) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 10+4*len(m.Groups))) }

// MarshalTo appends the encoded body to b (same bytes as Marshal).
func (m *MemberAd) MarshalTo(b []byte) []byte {
	return appendGroupList(b, uint32(m.Origin), m.Seq, m.Groups)
}

func appendGroupList(b []byte, head, seq uint32, groups []addr.IP) []byte {
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:], head)
	binary.BigEndian.PutUint32(hdr[4:], seq)
	binary.BigEndian.PutUint16(hdr[8:], uint16(len(groups)))
	b = append(b, hdr[:]...)
	for _, g := range groups {
		var e [4]byte
		binary.BigEndian.PutUint32(e[0:], uint32(g))
		b = append(b, e[:]...)
	}
	return b
}

// UnmarshalMemberAd decodes a message body.
func UnmarshalMemberAd(b []byte) (*MemberAd, error) {
	if len(b) < 10 {
		return nil, ErrBadMessage
	}
	m := &MemberAd{
		Origin: addr.IP(binary.BigEndian.Uint32(b)),
		Seq:    binary.BigEndian.Uint32(b[4:]),
	}
	n := int(binary.BigEndian.Uint16(b[8:]))
	if len(b) < 10+4*n {
		return nil, ErrBadMessage
	}
	for i := 0; i < n; i++ {
		m.Groups = append(m.Groups, addr.IP(binary.BigEndian.Uint32(b[10+4*i:])))
	}
	return m, nil
}

// TypeRPReport is the §4 dynamic RP discovery message ("the RP address can
// be ... dynamically discovered by ... information obtained via some new
// PIM RP-report messages"): an RP floods the groups it serves; routers
// cache the mapping ("the mapping of G to RP addresses should be cached").
const TypeRPReport = 9

// RPReport is the flooded RP advertisement.
type RPReport struct {
	RP     addr.IP
	Seq    uint32
	Groups []addr.IP
}

// Marshal encodes the message body.
func (m *RPReport) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 10+4*len(m.Groups))) }

// MarshalTo appends the encoded body to b (same bytes as Marshal).
func (m *RPReport) MarshalTo(b []byte) []byte {
	return appendGroupList(b, uint32(m.RP), m.Seq, m.Groups)
}

// UnmarshalRPReport decodes a message body.
func UnmarshalRPReport(b []byte) (*RPReport, error) {
	if len(b) < 10 {
		return nil, ErrBadMessage
	}
	m := &RPReport{
		RP:  addr.IP(binary.BigEndian.Uint32(b)),
		Seq: binary.BigEndian.Uint32(b[4:]),
	}
	n := int(binary.BigEndian.Uint16(b[8:]))
	if len(b) < 10+4*n {
		return nil, ErrBadMessage
	}
	for i := 0; i < n; i++ {
		m.Groups = append(m.Groups, addr.IP(binary.BigEndian.Uint32(b[10+4*i:])))
	}
	return m, nil
}
