package pimmsg

import (
	"math/rand"
	"testing"
)

// TestDecodersNeverPanicOnRandomBytes feeds every decoder random byte
// strings: they must return an error or a value, never panic — routers
// parse whatever arrives on the wire.
func TestDecodersNeverPanicOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	decoders := []func([]byte){
		func(b []byte) { _, _ = UnmarshalJoinPrune(b) },
		func(b []byte) { _, _ = UnmarshalRegister(b) },
		func(b []byte) { _, _ = UnmarshalRPReach(b) },
		func(b []byte) { _, _ = UnmarshalQuery(b) },
		func(b []byte) { _, _ = UnmarshalAssert(b) },
		func(b []byte) { _, _ = UnmarshalMemberAd(b) },
		func(b []byte) { _, _, _ = Open(b) },
	}
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		for _, dec := range decoders {
			dec(b)
		}
	}
}

// TestJoinPruneTruncationAlwaysRejected: every strict prefix of a valid
// encoding that cuts into the structure must be rejected, not misparsed
// into a shorter valid message... except prefixes that happen to form a
// complete shorter message with fewer groups — the format is
// self-describing, so verify decode(prefix) either errors or describes
// exactly the bytes it consumed.
func TestJoinPruneTruncationBehaviour(t *testing.T) {
	m := &JoinPrune{
		UpstreamNeighbor: 0x0A000001,
		HoldTime:         180,
		Groups: []GroupRecord{
			{Group: 0xE1000000, Joins: []Addr{{Addr: 1, WC: true, RP: true}, {Addr: 2}}},
			{Group: 0xE1000001, Prunes: []Addr{{Addr: 3, RP: true}}},
		},
	}
	full := m.Marshal()
	for cut := 0; cut < len(full); cut++ {
		got, err := UnmarshalJoinPrune(full[:cut])
		if err != nil {
			continue
		}
		// A successful parse of a prefix must still claim the declared
		// group count; since the count field says 2 groups, any truncation
		// that removed group bytes must have failed above.
		if len(got.Groups) != 2 {
			t.Fatalf("cut=%d: parsed %d groups from truncated input", cut, len(got.Groups))
		}
	}
}
