package pimmsg

import (
	"bytes"
	"testing"
	"testing/quick"

	"pim/internal/addr"
)

func TestJoinPruneRoundTrip(t *testing.T) {
	m := &JoinPrune{
		UpstreamNeighbor: addr.V4(10, 200, 0, 2),
		HoldTime:         180,
		Groups: []GroupRecord{
			{
				Group:  addr.GroupForIndex(0),
				Joins:  []Addr{{Addr: addr.V4(10, 0, 0, 9), WC: true, RP: true}},
				Prunes: nil,
			},
			{
				Group:  addr.GroupForIndex(1),
				Joins:  []Addr{{Addr: addr.V4(10, 100, 1, 1)}},
				Prunes: []Addr{{Addr: addr.V4(10, 100, 2, 1), RP: true}},
			},
		},
	}
	got, err := UnmarshalJoinPrune(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.UpstreamNeighbor != m.UpstreamNeighbor || got.HoldTime != m.HoldTime {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Groups) != 2 {
		t.Fatalf("groups: %d", len(got.Groups))
	}
	g1 := got.Groups[0]
	if g1.Group != m.Groups[0].Group || len(g1.Joins) != 1 || len(g1.Prunes) != 0 {
		t.Fatalf("group 0: %+v", g1)
	}
	if !g1.Joins[0].WC || !g1.Joins[0].RP {
		t.Error("WC/RP bits lost")
	}
	g2 := got.Groups[1]
	if g2.Joins[0].WC || g2.Joins[0].RP {
		t.Error("spurious flags on plain SPT join")
	}
	if !g2.Prunes[0].RP || g2.Prunes[0].WC {
		t.Error("negative-cache prune flags wrong")
	}
}

func TestJoinPruneRoundTripProperty(t *testing.T) {
	f := func(up uint32, hold uint16, groups []uint32, addrs []uint32, flags []uint8) bool {
		m := &JoinPrune{UpstreamNeighbor: addr.IP(up), HoldTime: hold}
		ai := 0
		for _, g := range groups {
			if len(m.Groups) == 8 {
				break
			}
			rec := GroupRecord{Group: addr.IP(g)}
			for ai < len(addrs) && ai < len(flags) && len(rec.Joins) < 4 {
				a := Addr{Addr: addr.IP(addrs[ai]), WC: flags[ai]&1 != 0, RP: flags[ai]&2 != 0}
				if flags[ai]&4 != 0 {
					rec.Prunes = append(rec.Prunes, a)
				} else {
					rec.Joins = append(rec.Joins, a)
				}
				ai++
			}
			m.Groups = append(m.Groups, rec)
		}
		got, err := UnmarshalJoinPrune(m.Marshal())
		if err != nil {
			return false
		}
		if got.UpstreamNeighbor != m.UpstreamNeighbor || got.HoldTime != m.HoldTime ||
			len(got.Groups) != len(m.Groups) {
			return false
		}
		for i, g := range m.Groups {
			h := got.Groups[i]
			if h.Group != g.Group || len(h.Joins) != len(g.Joins) || len(h.Prunes) != len(g.Prunes) {
				return false
			}
			for j := range g.Joins {
				if h.Joins[j] != g.Joins[j] {
					return false
				}
			}
			for j := range g.Prunes {
				if h.Prunes[j] != g.Prunes[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinPruneMalformed(t *testing.T) {
	cases := [][]byte{
		{},
		make([]byte, 7),
		// one group claimed, no group data
		{0, 0, 0, 1, 0, 60, 0, 1},
		// group with 2 joins but only 1 present
		append([]byte{0, 0, 0, 1, 0, 60, 0, 1}, []byte{225, 0, 0, 0, 0, 2, 0, 0, 1, 2, 3, 4, 0}...),
	}
	for i, b := range cases {
		if _, err := UnmarshalJoinPrune(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRegisterRoundTrip(t *testing.T) {
	inner := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42}
	m := &Register{Inner: inner}
	got, err := UnmarshalRegister(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Inner, inner) {
		t.Fatalf("inner = %x", got.Inner)
	}
	if _, err := UnmarshalRegister([]byte{0}); err == nil {
		t.Error("short register accepted")
	}
	if _, err := UnmarshalRegister([]byte{0, 9, 1}); err == nil {
		t.Error("truncated inner accepted")
	}
}

func TestRegisterEmptyInner(t *testing.T) {
	got, err := UnmarshalRegister((&Register{}).Marshal())
	if err != nil || len(got.Inner) != 0 {
		t.Fatalf("empty register: %v %v", got, err)
	}
}

func TestRPReachRoundTrip(t *testing.T) {
	m := &RPReach{Group: addr.GroupForIndex(7), RP: addr.V4(10, 0, 0, 3), HoldTime: 90}
	got, err := UnmarshalRPReach(m.Marshal())
	if err != nil || *got != *m {
		t.Fatalf("got %+v err %v", got, err)
	}
	if _, err := UnmarshalRPReach(make([]byte, 9)); err == nil {
		t.Error("short RPReach accepted")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	m := &Query{HoldTime: 105}
	got, err := UnmarshalQuery(m.Marshal())
	if err != nil || got.HoldTime != 105 {
		t.Fatalf("got %+v err %v", got, err)
	}
	if _, err := UnmarshalQuery([]byte{1}); err == nil {
		t.Error("short query accepted")
	}
}

func TestAssertRoundTrip(t *testing.T) {
	m := &Assert{Group: addr.GroupForIndex(2), Source: addr.V4(10, 100, 0, 1), Metric: 777}
	got, err := UnmarshalAssert(m.Marshal())
	if err != nil || *got != *m {
		t.Fatalf("got %+v err %v", got, err)
	}
	if _, err := UnmarshalAssert(make([]byte, 11)); err == nil {
		t.Error("short assert accepted")
	}
}

func TestEnvelope(t *testing.T) {
	body := []byte{1, 2, 3}
	env := Envelope(TypeJoinPrune, body)
	typ, got, err := Open(env)
	if err != nil || typ != TypeJoinPrune || !bytes.Equal(got, body) {
		t.Fatalf("Open: %d %x %v", typ, got, err)
	}
	if _, _, err := Open([]byte{Version}); err == nil {
		t.Error("short envelope accepted")
	}
	if _, _, err := Open([]byte{99, TypeQuery}); err == nil {
		t.Error("bad version accepted")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Addr: addr.V4(10, 0, 0, 1), WC: true, RP: true}
	if a.String() != "10.0.0.1,WC,RP" {
		t.Errorf("String = %q", a.String())
	}
}

func BenchmarkJoinPruneMarshal(b *testing.B) {
	m := &JoinPrune{UpstreamNeighbor: addr.V4(10, 0, 0, 1), HoldTime: 180}
	for i := 0; i < 10; i++ {
		m.Groups = append(m.Groups, GroupRecord{
			Group:  addr.GroupForIndex(i),
			Joins:  []Addr{{Addr: addr.V4(10, 0, 0, 9), WC: true, RP: true}},
			Prunes: []Addr{{Addr: addr.V4(10, 100, 1, 1), RP: true}},
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Marshal()
	}
}

func BenchmarkJoinPruneUnmarshal(b *testing.B) {
	m := &JoinPrune{UpstreamNeighbor: addr.V4(10, 0, 0, 1), HoldTime: 180}
	for i := 0; i < 10; i++ {
		m.Groups = append(m.Groups, GroupRecord{
			Group: addr.GroupForIndex(i),
			Joins: []Addr{{Addr: addr.V4(10, 0, 0, 9), WC: true, RP: true}},
		})
	}
	raw := m.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalJoinPrune(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMemberAdRoundTrip(t *testing.T) {
	m := &MemberAd{Origin: addr.V4(10, 1, 0, 1), Seq: 9,
		Groups: []addr.IP{addr.GroupForIndex(0), addr.GroupForIndex(5)}}
	got, err := UnmarshalMemberAd(m.Marshal())
	if err != nil || got.Origin != m.Origin || got.Seq != m.Seq || len(got.Groups) != 2 {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	for i := range m.Groups {
		if got.Groups[i] != m.Groups[i] {
			t.Fatal("group mismatch")
		}
	}
	empty := &MemberAd{Origin: 1, Seq: 2}
	got, err = UnmarshalMemberAd(empty.Marshal())
	if err != nil || len(got.Groups) != 0 {
		t.Fatalf("empty ad: %+v %v", got, err)
	}
	if _, err := UnmarshalMemberAd(make([]byte, 9)); err == nil {
		t.Error("short ad accepted")
	}
	if _, err := UnmarshalMemberAd([]byte{0, 0, 0, 1, 0, 0, 0, 1, 0, 3}); err == nil {
		t.Error("truncated group list accepted")
	}
}

func TestRPReportRoundTrip(t *testing.T) {
	m := &RPReport{RP: addr.V4(10, 0, 0, 7), Seq: 3,
		Groups: []addr.IP{addr.GroupForIndex(1), addr.GroupForIndex(2)}}
	got, err := UnmarshalRPReport(m.Marshal())
	if err != nil || got.RP != m.RP || got.Seq != m.Seq || len(got.Groups) != 2 {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := UnmarshalRPReport(make([]byte, 9)); err == nil {
		t.Error("short report accepted")
	}
	if _, err := UnmarshalRPReport([]byte{0, 0, 0, 1, 0, 0, 0, 1, 0, 2, 1, 1, 1, 1}); err == nil {
		t.Error("truncated group list accepted")
	}
}
