package pimmsg

import (
	"testing"

	"pim/internal/addr"
)

type addrAlias = addr.IP

// Native fuzz targets: `go test -fuzz=FuzzOpen ./internal/pimmsg` explores
// the decoders; under plain `go test` the seed corpus below runs as unit
// tests.

func FuzzOpen(f *testing.F) {
	m := &JoinPrune{UpstreamNeighbor: 1, HoldTime: 180,
		Groups: []GroupRecord{{Group: 0xE1000000, Joins: []Addr{{Addr: 2, WC: true, RP: true}}}}}
	f.Add(Envelope(TypeJoinPrune, m.Marshal()))
	f.Add(Envelope(TypeRegister, (&Register{Inner: []byte{1, 2, 3}}).Marshal()))
	f.Add(Envelope(TypeRPReach, (&RPReach{Group: 0xE1000000, RP: 9, HoldTime: 90}).Marshal()))
	f.Add(Envelope(TypeMemberAd, (&MemberAd{Origin: 1, Seq: 2, Groups: []addrAlias{0xE1000000}}).Marshal()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		typ, body, err := Open(b)
		if err != nil {
			return
		}
		switch typ {
		case TypeJoinPrune, TypeGraft, TypeGraftAck:
			if m, err := UnmarshalJoinPrune(body); err == nil {
				// Re-encoding a decoded message must decode again.
				if _, err := UnmarshalJoinPrune(m.Marshal()); err != nil {
					t.Fatalf("re-encode failed: %v", err)
				}
			}
		case TypeRegister:
			_, _ = UnmarshalRegister(body)
		case TypeRPReach:
			_, _ = UnmarshalRPReach(body)
		case TypeQuery:
			_, _ = UnmarshalQuery(body)
		case TypeAssert:
			_, _ = UnmarshalAssert(body)
		case TypeMemberAd:
			_, _ = UnmarshalMemberAd(body)
		case TypeRPReport:
			_, _ = UnmarshalRPReport(body)
		}
	})
}
