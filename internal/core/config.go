// Package core implements the paper's contribution: the Protocol
// Independent Multicast sparse-mode (PIM-SM) router engine of §3.
//
// One Router instance is the complete per-router protocol machine:
//
//   - §3.1–3.2 receiver joins and RP-rooted shared tree setup,
//   - §3   sender registering and rendezvous through the RP,
//   - §3.3 shared-tree → shortest-path-tree switching with the SPT bit,
//   - §3.4 periodic soft-state refresh of join/prune state,
//   - §3.5 data packet forwarding with incoming-interface checks and the
//     two transition exception rules,
//   - §3.6 per-oif timers and entry deletion,
//   - §3.7 multi-access LAN prune override, join suppression, and
//     designated-router election via PIM queries,
//   - §3.8 adaptation to unicast routing changes,
//   - §3.9 multiple RPs and RP fail-over driven by RP-reachability timers.
//
// The router consumes unicast routing exclusively through the
// unicast.Router interface, which is the paper's protocol-independence
// requirement made concrete: the engine runs unmodified over the static
// oracle, the distance-vector protocol, or the link-state protocol.
package core

import (
	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/telemetry"
)

// SPTPolicy selects when a last-hop router with local members abandons the
// shared tree for a source-rooted shortest-path tree (§3.3: the policy knob
// is explicit — "the first-hop routers of the receivers can make this
// decision independently").
type SPTPolicy int

const (
	// SwitchImmediate joins the SPT on the first data packet seen from a
	// new source via the shared tree.
	SwitchImmediate SPTPolicy = iota
	// SwitchNever stays on the RP-rooted shared tree indefinitely ("the DR
	// may also choose to remain on the RP-distribution tree indefinitely").
	SwitchNever
	// SwitchThreshold joins the SPT after Config.SPTPackets data packets
	// from the source arrive within Config.SPTWindow ("a policy of not
	// setting up an (S,G) entry until it has received m data packets from
	// the source within some interval of n seconds").
	SwitchThreshold
)

// Config carries the per-router protocol parameters. Zero values are
// replaced by the defaults below.
type Config struct {
	// JoinPruneInterval is the soft-state refresh period (§3.4); state
	// installed by a join lives for 3× this (HoldTime).
	JoinPruneInterval netsim.Time
	// QueryInterval paces PIM neighbor queries for DR election (§3.7).
	QueryInterval netsim.Time
	// RPReachInterval paces RP-reachability origination at RPs; receivers
	// fail over to an alternate RP after 3× with no message (§3.9).
	RPReachInterval netsim.Time
	// PruneOverrideDelay is the window a LAN prune stays pending so other
	// routers can override it with a join (§3.7).
	PruneOverrideDelay netsim.Time
	// SPTPolicy, SPTPackets, SPTWindow configure §3.3 switching.
	SPTPolicy  SPTPolicy
	SPTPackets int
	SPTWindow  netsim.Time
	// RPMapping statically maps groups to ordered RP candidate lists ("the
	// mapping information may be configured", §3). Host-supplied RPMap
	// messages (§3.1 fn. 9) extend this at run time.
	RPMapping map[addr.IP][]addr.IP
	// AggregateSources keys all (S,G) state and join/prune messages by the
	// source's /24 subnet instead of the host address — the §4 aggregation
	// direction ("aggregating source information", with "the subnet level
	// supported in the current specification" as the baseline): all senders
	// on one subnet share one forwarding entry and one join/prune list
	// element. Must be enabled uniformly across a domain.
	AggregateSources bool
	// Telemetry, when non-nil, receives a structured event for every
	// state-machine transition (see internal/telemetry). Nil keeps the
	// engine on the zero-cost path: one untaken branch per would-be event.
	Telemetry *telemetry.Bus
	// AdvertiseRPMapping makes a router that owns an RP address flood
	// periodic RP-report messages so other routers discover the mapping
	// dynamically instead of by configuration (§4: "dynamically discovered
	// by ... some new PIM RP-report messages"). Learned mappings are cached
	// with a lifetime of 3× RPReachInterval.
	AdvertiseRPMapping bool
}

// Defaults (paper-scaled).
const (
	DefaultJoinPruneInterval  = 60 * netsim.Second
	DefaultQueryInterval      = 30 * netsim.Second
	DefaultRPReachInterval    = 30 * netsim.Second
	DefaultPruneOverrideDelay = 3 * netsim.Second
	DefaultSPTPackets         = 10
	DefaultSPTWindow          = 10 * netsim.Second
)

func (c *Config) fillDefaults() {
	if c.JoinPruneInterval == 0 {
		c.JoinPruneInterval = DefaultJoinPruneInterval
	}
	if c.QueryInterval == 0 {
		c.QueryInterval = DefaultQueryInterval
	}
	if c.RPReachInterval == 0 {
		c.RPReachInterval = DefaultRPReachInterval
	}
	if c.PruneOverrideDelay == 0 {
		c.PruneOverrideDelay = DefaultPruneOverrideDelay
	}
	if c.SPTPackets == 0 {
		c.SPTPackets = DefaultSPTPackets
	}
	if c.SPTWindow == 0 {
		c.SPTWindow = DefaultSPTWindow
	}
	if c.RPMapping == nil {
		c.RPMapping = map[addr.IP][]addr.IP{}
	}
}

// holdTime is the state lifetime granted by one join (3× refresh, §3.6).
func (c *Config) holdTime() netsim.Time { return 3 * c.JoinPruneInterval }

// holdTimeSeconds converts holdTime to the wire's seconds field.
func (c *Config) holdTimeSeconds() uint16 {
	s := c.holdTime() / netsim.Second
	if s < 1 {
		s = 1
	}
	if s > 0xFFFF {
		s = 0xFFFF
	}
	return uint16(s)
}
