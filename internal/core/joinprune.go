package core

import (
	"pim/internal/addr"
	"pim/internal/metrics"
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimmsg"
	"pim/internal/telemetry"
)

// --- Local membership (§3.1) ---

// LocalJoin records an IGMP-reported member for g on ifc and, if this
// router is the DR there and an RP mapping exists, builds or extends the
// (*,G) shared-tree state and sends a triggered join toward the RP (§3.2).
func (r *Router) LocalJoin(ifc *netsim.Iface, g addr.IP) {
	if !r.IsDR(ifc) {
		return
	}
	rp, ok := r.rpFor(g)
	if !ok {
		// No RP mapping: the group is not handled in sparse mode (§3.1).
		return
	}
	now := r.now()
	wc, created := r.upsert(mfib.Key{Group: g, RPBit: true}, now)
	wc.AddLocalOIF(ifc)
	if created {
		wc.RP = rp
		r.setUpstream(wc, rp)
	}
	// Always send a triggered join: a re-joining member must not wait for
	// the next periodic refresh to re-draw the tree (the upstream branch
	// may have been pruned since the last member left).
	r.sendJoinPrune(wc.IIF, wc.UpstreamNeighbor, g,
		[]pimmsg.Addr{{Addr: wc.RP, WC: true, RP: true}}, nil)
	r.armRPTimer(g)
}

// LocalLeave withdraws a local member; when the last outgoing interface
// disappears the state is pruned upstream and scheduled for deletion
// (§3.6).
func (r *Router) LocalLeave(ifc *netsim.Iface, g addr.IP) {
	now := r.now()
	r.MFIB.ForGroup(g, func(e *mfib.Entry) {
		o := e.OIF(ifc.Index)
		if o == nil || !o.LocalMember {
			return
		}
		o.LocalMember = false
		e.Touch()
		if !o.Live(now) {
			e.RemoveOIF(ifc)
		}
		if !e.Key.RPBit || e.Wildcard {
			r.checkEmptyOIF(e)
		}
	})
}

// armRPTimer (re)starts the RP fail-over timer for a group with local
// members (§3.9). A router that is itself the group's RP never arms one:
// it originates the reachability messages and cannot hear its own beacons.
func (r *Router) armRPTimer(g addr.IP) {
	if rp, ok := r.rpFor(g); ok && r.Node.OwnsAddr(rp) {
		return
	}
	if tm := r.rpTimer[g]; tm != nil {
		tm.Stop()
	}
	r.rpTimer[g] = r.after(3*r.Cfg.RPReachInterval, func() { r.rpFailover(g) })
}

// --- Sending ---

// sendJoinPrune emits one join/prune message for a single group out the
// given interface, addressed to the upstream neighbor but multicast to
// 224.0.0.2 so LAN peers overhear it (§3.7).
func (r *Router) sendJoinPrune(out *netsim.Iface, upstream addr.IP, g addr.IP, joins, prunes []pimmsg.Addr) {
	if out == nil || upstream == 0 || !out.Up() {
		return
	}
	m := &pimmsg.JoinPrune{
		UpstreamNeighbor: upstream,
		HoldTime:         r.Cfg.holdTimeSeconds(),
		Groups:           []pimmsg.GroupRecord{{Group: g, Joins: joins, Prunes: prunes}},
	}
	r.transmitJoinPrune(out, m)
}

func (r *Router) transmitJoinPrune(out *netsim.Iface, m *pimmsg.JoinPrune) {
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeJoinPrune)
	r.enc.Buf = m.MarshalTo(r.enc.Buf)
	r.Node.Send(out, r.enc.Packet(out.Addr, addr.AllRouters, packet.ProtoPIM, 1), 0)
	r.Metrics.Inc(metrics.CtrlJoinPrune)
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.JoinPruneSend, Router: r.Node.ID,
			Iface: out.Index, Epoch: r.epoch, Value: int64(len(m.Groups)),
		})
	}
}

// setUpstream resolves and installs the RPF interface and upstream neighbor
// of an entry toward the given target (RP or source).
func (r *Router) setUpstream(e *mfib.Entry, target addr.IP) {
	iif, up, ok := r.rpf(target)
	if !ok {
		iif, up = nil, 0
	}
	e.IIF, e.UpstreamNeighbor = iif, up
	e.Touch()
	if r.tel != nil {
		idx := -1
		if iif != nil {
			idx = iif.Index
		}
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.IIFSet, Router: r.Node.ID, Iface: idx,
			Epoch: r.epoch, Source: target, Group: e.Key.Group, Value: entryKind(e.Key),
		})
	}
}

// upstreamTarget returns the address an entry's joins/prunes chase: the RP
// for wildcard and RP-bit entries, the source otherwise.
func upstreamTarget(e *mfib.Entry) addr.IP {
	if e.Wildcard || e.Key.RPBit {
		return e.RP
	}
	return e.Key.Source
}

// --- Periodic refresh (§3.4) ---

// jpRecord collects one group's joins and prunes for one destination during
// a periodic refresh; jpDest is one (interface, upstream neighbor) batch.
// Both live in reusable per-router scratch: the slices are truncated, never
// reallocated, between refreshes, so the steady-state batching path is
// allocation-free (pinned by TestJoinPruneRefreshZeroAlloc).
type jpRecord struct {
	g      addr.IP
	joins  []pimmsg.Addr
	prunes []pimmsg.Addr
}

type jpDest struct {
	iface    *netsim.Iface
	upstream addr.IP
	recs     []jpRecord
}

// periodicRefresh re-sends the join/prune state for every entry, batched
// per (interface, upstream neighbor) so one message carries many groups.
func (r *Router) periodicRefresh() {
	now := r.now()
	// Transmission order must not depend on map iteration: the simulation
	// is deterministic, and under injected loss the draw sequence is
	// consumed in delivery order. Destinations are emitted in the order the
	// (MFIB-sorted) walk first produced them, and a destination's groups
	// arrive already sorted because the walk is group-ordered.
	nb := 0
	grab := func(ifc *netsim.Iface, up addr.IP) *jpDest {
		for i := 0; i < nb; i++ {
			if d := &r.jpBatch[i]; d.iface == ifc && d.upstream == up {
				return d
			}
		}
		if nb == len(r.jpBatch) {
			r.jpBatch = append(r.jpBatch, jpDest{})
		}
		d := &r.jpBatch[nb]
		nb++
		d.iface, d.upstream = ifc, up
		d.recs = d.recs[:0]
		return d
	}
	add := func(ifc *netsim.Iface, up addr.IP, g addr.IP, a pimmsg.Addr, prune bool) {
		if ifc == nil || up == 0 || !ifc.Up() {
			return
		}
		d := grab(ifc, up)
		var rec *jpRecord
		if n := len(d.recs); n > 0 && d.recs[n-1].g == g {
			// The walk visits a group's entries contiguously, so an open
			// record for g is always the destination's last one.
			rec = &d.recs[n-1]
		} else if n < cap(d.recs) {
			d.recs = d.recs[:n+1]
			rec = &d.recs[n]
			rec.g = g
			rec.joins = rec.joins[:0]
			rec.prunes = rec.prunes[:0]
		} else {
			d.recs = append(d.recs, jpRecord{g: g})
			rec = &d.recs[n]
		}
		if prune {
			rec.prunes = append(rec.prunes, a)
		} else {
			rec.joins = append(rec.joins, a)
		}
	}

	r.MFIB.ForEach(func(e *mfib.Entry) {
		g := e.Key.Group
		switch {
		case e.Wildcard:
			if e.OIFEmpty(now) || e.DeleteAt != 0 {
				r.checkEmptyOIF(e)
				return
			}
			if e.SuppressedUntil > now {
				return
			}
			add(e.IIF, e.UpstreamNeighbor, g,
				pimmsg.Addr{Addr: e.RP, WC: true, RP: true}, false)
			// §3.3 fn. 13: negative caches upstream are kept alive by
			// periodic prunes traveling with the shared-tree refresh.
			for _, s := range r.rptPrunesToRefresh(g, e) {
				add(e.IIF, e.UpstreamNeighbor, g,
					pimmsg.Addr{Addr: s, RP: true}, true)
			}
		case e.Key.RPBit:
			// Negative-cache entries are refreshed from downstream; they
			// originate nothing themselves.
		default: // (S,G) shortest-path entry
			if !r.sgEffectivelyEmpty(e) {
				e.DeleteAt = 0 // revived through the inherited list
			}
			if r.sgEffectivelyEmpty(e) || e.DeleteAt != 0 {
				r.checkEmptyOIF(e)
				return
			}
			if e.SuppressedUntil > now {
				return
			}
			add(e.IIF, e.UpstreamNeighbor, g, pimmsg.Addr{Addr: e.Key.Source}, false)
		}
	})

	for i := 0; i < nb; i++ {
		d := &r.jpBatch[i]
		m := &r.jpMsg
		m.UpstreamNeighbor = d.upstream
		m.HoldTime = r.Cfg.holdTimeSeconds()
		m.Groups = m.Groups[:0]
		for j := range d.recs {
			rec := &d.recs[j]
			m.Groups = append(m.Groups, pimmsg.GroupRecord{Group: rec.g, Joins: rec.joins, Prunes: rec.prunes})
		}
		r.transmitJoinPrune(d.iface, m)
	}
}

// rptPrunesToRefresh returns the sources whose shared-tree prunes this
// router must keep refreshing toward the RP: sources it switched to an SPT
// with a divergent incoming interface (§3.3), and sources whose negative
// cache covers every remaining shared-tree oif (full-branch prune
// propagation).
// The result lives in per-router scratch reused across refreshes; callers
// consume it before the next call.
func (r *Router) rptPrunesToRefresh(g addr.IP, wc *mfib.Entry) []addr.IP {
	now := r.now()
	r.rptScratch = r.rptScratch[:0]
	r.MFIB.ForGroup(g, func(e *mfib.Entry) {
		switch {
		case e.Wildcard:
		case e.Key.RPBit:
			if r.rptCoversSharedOifs(e, wc) && !containsIP(r.rptScratch, e.Key.Source) {
				r.rptScratch = append(r.rptScratch, e.Key.Source)
			}
		default:
			if e.SPTBit && e.IIF != wc.IIF && !e.OIFEmpty(now) && !containsIP(r.rptScratch, e.Key.Source) {
				r.rptScratch = append(r.rptScratch, e.Key.Source)
			}
		}
	})
	return r.rptScratch
}

// containsIP is the linear dedup over the handful of sources a group
// refreshes; a map here would allocate every period.
func containsIP(s []addr.IP, a addr.IP) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

// rptCoversSharedOifs reports whether the negative cache prunes every live
// shared-tree oif, meaning no downstream branch still wants the source via
// the RP tree and the prune should propagate upstream.
func (r *Router) rptCoversSharedOifs(rpt, wc *mfib.Entry) bool {
	now := r.now()
	any := false
	for i := 0; i < wc.OIFCount(); i++ {
		wo := wc.OIFAt(i)
		if !wo.Live(now) {
			continue
		}
		any = true
		o := rpt.OIF(wo.Iface.Index)
		if o == nil || !o.Live(now) || o.PrunePending {
			return false
		}
	}
	return any
}

// rpUnreachable reports whether an entry's current RP can no longer be
// used: no unicast route exists or the incoming interface is down.
func (r *Router) rpUnreachable(e *mfib.Entry) bool {
	if e.IIF != nil && !e.IIF.Up() {
		return true
	}
	if r.Node.OwnsAddr(e.RP) {
		return false
	}
	_, _, ok := r.rpf(e.RP)
	if !ok {
		return true
	}
	return false
}

// sgEffectivelyEmpty reports whether an (S,G) entry forwards to nothing:
// both its own outgoing list and the inherited shared-tree list are empty.
// At the RP the entry is held open while (*,G) exists — "data packets will
// continue to travel from the source to the RP(s) in order to reach new
// receivers" (§3.10).
func (r *Router) sgEffectivelyEmpty(e *mfib.Entry) bool {
	wc := r.MFIB.Wildcard(e.Key.Group)
	if wc != nil && r.Node.OwnsAddr(wc.RP) {
		return false
	}
	return len(r.unionOIFs(e, wc, e.Key.Source, nil)) == 0
}

// checkEmptyOIF handles the §3.6 rule: when an entry's outgoing interface
// list goes null, a prune is sent upstream and the entry is deleted after
// 3× the refresh period.
func (r *Router) checkEmptyOIF(e *mfib.Entry) {
	now := r.now()
	if e.DeleteAt != 0 {
		return
	}
	if e.Wildcard || e.Key.RPBit {
		if !e.OIFEmpty(now) {
			return
		}
	} else if !r.sgEffectivelyEmpty(e) {
		return
	}
	e.DeleteAt = now + r.Cfg.holdTime()
	a := pimmsg.Addr{Addr: upstreamTarget(e), WC: e.Wildcard, RP: e.Wildcard}
	if !e.Wildcard {
		a = pimmsg.Addr{Addr: e.Key.Source}
	}
	r.sendJoinPrune(e.IIF, e.UpstreamNeighbor, e.Key.Group, nil, []pimmsg.Addr{a})
}

// maintain sweeps expired state and empty negative caches each refresh
// period.
func (r *Router) maintain() {
	now := r.now()
	swept := r.MFIB.Sweep(now)
	if r.tel != nil {
		for _, e := range swept {
			r.tel.Publish(telemetry.Event{
				At: now, Kind: telemetry.EntryExpire, Router: r.Node.ID, Iface: -1,
				Epoch: r.epoch, Source: e.Key.Source, Group: e.Key.Group,
				Value: entryKind(e.Key),
			})
		}
	}
	// Negative caches with no live pruned interface have no reason to
	// exist; their upstream copies expire the same way.
	var dead []mfib.Key
	r.MFIB.ForEach(func(e *mfib.Entry) {
		if e.Key.RPBit && !e.Wildcard && e.OIFEmpty(now) {
			dead = append(dead, e.Key)
		}
		if !e.Key.RPBit && !e.Wildcard && r.sgEffectivelyEmpty(e) {
			r.checkEmptyOIF(e)
		}
		if e.Wildcard && e.OIFEmpty(now) {
			r.checkEmptyOIF(e)
		}
	})
	for _, k := range dead {
		r.deleteEntry(k)
	}
}

// --- Receiving (§3.2, §3.6, §3.7) ---

func (r *Router) handleJoinPrune(in *netsim.Iface, body []byte) {
	// Decode into the router's scratch: the record slices are recycled
	// between messages, and nothing below retains them past this call.
	m := &r.jpDec
	if err := pimmsg.UnmarshalJoinPruneInto(m, body); err != nil {
		return
	}
	if m.UpstreamNeighbor == in.Addr {
		r.processJoinPrune(in, m)
		return
	}
	// Overheard on a LAN: §3.7 prune override and join suppression.
	if in.Link != nil && in.Link.IsLAN() {
		r.overhearJoinPrune(in, m)
	}
}

func (r *Router) processJoinPrune(in *netsim.Iface, m *pimmsg.JoinPrune) {
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.JoinPruneRecv, Router: r.Node.ID,
			Iface: in.Index, Epoch: r.epoch, Value: int64(len(m.Groups)),
		})
	}
	hold := netsim.Time(m.HoldTime) * netsim.Second
	for _, grp := range m.Groups {
		g := grp.Group
		for _, a := range grp.Joins {
			switch {
			case a.WC && a.RP:
				r.joinShared(in, g, a.Addr, hold)
			case a.RP:
				r.cancelNegativeCache(in, g, r.sourceKey(a.Addr))
			default:
				r.joinSPT(in, g, r.sourceKey(a.Addr), hold)
			}
		}
		for _, a := range grp.Prunes {
			switch {
			case a.WC && a.RP:
				r.pruneShared(in, g)
			case a.RP:
				r.pruneSourceOnShared(in, g, r.sourceKey(a.Addr), hold)
			default:
				r.pruneSPT(in, g, r.sourceKey(a.Addr))
			}
		}
	}
}

// joinShared installs/refreshes (*,G) state for a downstream join with the
// WC and RP bits (§3.2).
func (r *Router) joinShared(in *netsim.Iface, g, rp addr.IP, hold netsim.Time) {
	now := r.now()
	wc, created := r.upsert(mfib.Key{Group: g, RPBit: true}, now)
	if created {
		wc.RP = rp
		if _, ok := r.rpMap[g]; !ok {
			// Learn the group's RP from the join so this transit router
			// can keep propagating state for it.
			r.rpMap[g] = []addr.IP{rp}
		}
		r.setUpstream(wc, rp)
	} else if rp != wc.RP && r.rpUnreachable(wc) {
		// §3.9 fail-over seen from a transit router: downstream joins now
		// chase an alternate RP and the old one is gone, so adopt the new
		// RP and re-anchor the tree toward it.
		wc.RP = rp
		r.setUpstream(wc, rp)
		created = true // trigger an upstream join below
	}
	wc.AddOIF(in, now+hold)
	// The arrival interface can never be both iif and oif.
	if wc.IIF == in {
		wc.RemoveOIF(in)
		return
	}
	// A (*,G) join re-opens the shared tree on this interface for all
	// sources: cancel negative-cache prunes recorded against it.
	r.MFIB.ForGroup(g, func(e *mfib.Entry) {
		if e.Key.RPBit && !e.Wildcard {
			e.RemoveOIF(in)
		}
	})
	if created {
		r.sendJoinPrune(wc.IIF, wc.UpstreamNeighbor, g,
			[]pimmsg.Addr{{Addr: rp, WC: true, RP: true}}, nil)
	}
}

// joinSPT installs/refreshes (S,G) shortest-path state (§3.3).
func (r *Router) joinSPT(in *netsim.Iface, g, s addr.IP, hold netsim.Time) {
	now := r.now()
	sg, created := r.upsert(mfib.Key{Source: s, Group: g}, now)
	if created {
		if rp, ok := r.rpFor(g); ok {
			sg.RP = rp
		}
		r.setUpstream(sg, s)
	}
	sg.AddOIF(in, now+hold)
	if sg.IIF == in {
		sg.RemoveOIF(in)
		return
	}
	if created {
		r.sendJoinPrune(sg.IIF, sg.UpstreamNeighbor, g,
			[]pimmsg.Addr{{Addr: s}}, nil)
	}
}

// cancelNegativeCache handles a join with only the RP bit: downstream wants
// the source via the shared tree again.
func (r *Router) cancelNegativeCache(in *netsim.Iface, g, s addr.IP) {
	rpt := r.MFIB.SGRpt(s, g)
	if rpt == nil {
		return
	}
	rpt.RemoveOIF(in)
	if rpt.OIFEmpty(r.now()) {
		r.deleteEntry(rpt.Key)
		// Propagate the cancellation so upstream negative caches clear
		// promptly rather than waiting for expiry.
		if wc := r.MFIB.Wildcard(g); wc != nil {
			r.sendJoinPrune(wc.IIF, wc.UpstreamNeighbor, g,
				[]pimmsg.Addr{{Addr: s, RP: true}}, nil)
		}
	}
}

// pruneShared removes a downstream interface from (*,G) (§3.6), honoring
// the LAN override window (§3.7).
func (r *Router) pruneShared(in *netsim.Iface, g addr.IP) {
	wc := r.MFIB.Wildcard(g)
	if wc == nil {
		return
	}
	o := wc.OIF(in.Index)
	if o == nil {
		return
	}
	r.scheduleOIFPrune(wc, o, in, func(e *mfib.Entry) {
		e.RemoveOIF(in)
		r.checkEmptyOIF(e)
	})
}

// pruneSPT removes a downstream interface from (S,G).
func (r *Router) pruneSPT(in *netsim.Iface, g, s addr.IP) {
	sg := r.MFIB.SG(s, g)
	if sg == nil {
		return
	}
	o := sg.OIF(in.Index)
	if o == nil {
		return
	}
	r.scheduleOIFPrune(sg, o, in, func(e *mfib.Entry) {
		e.RemoveOIF(in)
		r.checkEmptyOIF(e)
	})
}

// scheduleOIFPrune applies a prune immediately on point-to-point links and
// after the override window on LANs, unless a join cancels it first. The
// deferred path must not capture the entry or oif pointers across the
// delay: oif storage moves under structural list mutation and the flat
// store recycles entry slots, so the closure re-looks the entry up by key,
// checks Life() to reject a deleted-and-recreated incarnation, and tests
// the prune-pending state on whatever oif the interface has now (a join in
// the window clears PrunePending, which cancels the prune exactly as the
// old pointer-identity check did).
func (r *Router) scheduleOIFPrune(e *mfib.Entry, o *mfib.OIF, in *netsim.Iface, apply func(*mfib.Entry)) {
	if in.Link == nil || !in.Link.IsLAN() {
		apply(e)
		return
	}
	now := r.now()
	o.PrunePending = true
	o.PruneDeadline = now + r.Cfg.PruneOverrideDelay
	e.Touch()
	key, life := e.Key, e.Life()
	r.after(r.Cfg.PruneOverrideDelay, func() {
		cur := r.MFIB.Get(key)
		if cur == nil || cur.Life() != life {
			return
		}
		if co := cur.OIF(in.Index); co != nil && co.PrunePending && r.now() >= co.PruneDeadline {
			apply(cur)
		}
	})
}

// pruneSourceOnShared handles a prune with the RP bit: source S is pruned
// from the shared tree on the arriving interface, recorded as negative
// cache (§3.3 fn. 11).
func (r *Router) pruneSourceOnShared(in *netsim.Iface, g, s addr.IP, hold netsim.Time) {
	now := r.now()
	wc := r.MFIB.Wildcard(g)
	if wc == nil || !wc.HasOIF(in, now) {
		return
	}
	rpt, created := r.upsert(mfib.Key{Source: s, Group: g, RPBit: true}, now)
	if created {
		rpt.RP = wc.RP
		rpt.IIF, rpt.UpstreamNeighbor = wc.IIF, wc.UpstreamNeighbor
	}
	o := rpt.AddOIF(in, now+hold) // "pruned" membership, kept alive by prune refreshes
	if in.Link != nil && in.Link.IsLAN() {
		// Effective only after the override window (§3.7); an overheard
		// join with the RP bit cancels it via cancelNegativeCache. The
		// closure re-looks both entries up: pointers must not be held
		// across the delay (see scheduleOIFPrune).
		o.PrunePending = true
		o.PruneDeadline = now + r.Cfg.PruneOverrideDelay
		rpt.Touch()
		rptKey, rptLife := rpt.Key, rpt.Life()
		r.after(r.Cfg.PruneOverrideDelay, func() {
			cur := r.MFIB.Get(rptKey)
			if cur == nil || cur.Life() != rptLife {
				return
			}
			co := cur.OIF(in.Index)
			if co == nil || !co.PrunePending || r.now() < co.PruneDeadline {
				return
			}
			co.PrunePending = false
			cur.Touch()
			if wcNow := r.MFIB.Wildcard(g); wcNow != nil {
				r.propagateRptPrune(g, s, cur, wcNow)
			}
		})
		return
	}
	r.propagateRptPrune(g, s, rpt, wc)
}

// propagateRptPrune forwards the negative-cache prune toward the RP when no
// shared-tree branch still needs the source.
func (r *Router) propagateRptPrune(g, s addr.IP, rpt, wc *mfib.Entry) {
	if r.rptCoversSharedOifs(rpt, wc) {
		r.sendJoinPrune(wc.IIF, wc.UpstreamNeighbor, g, nil,
			[]pimmsg.Addr{{Addr: s, RP: true}})
	}
}

// overhearJoinPrune implements the LAN behaviour of §3.7 for messages
// addressed to another upstream router.
func (r *Router) overhearJoinPrune(in *netsim.Iface, m *pimmsg.JoinPrune) {
	now := r.now()
	for _, grp := range m.Groups {
		g := grp.Group
		// Join suppression: an identical overheard join postpones ours.
		for _, a := range grp.Joins {
			var e *mfib.Entry
			switch {
			case a.WC && a.RP:
				e = r.MFIB.Wildcard(g)
			case !a.WC && !a.RP:
				e = r.MFIB.SG(a.Addr, g)
			}
			if e != nil && e.IIF == in && e.UpstreamNeighbor == m.UpstreamNeighbor {
				e.SuppressedUntil = now + r.Cfg.JoinPruneInterval - r.Cfg.PruneOverrideDelay
			}
		}
		// Prune override: if we still need the state being pruned, send a
		// join to the same upstream before the override window closes.
		for _, a := range grp.Prunes {
			switch {
			case a.WC && a.RP:
				if wc := r.MFIB.Wildcard(g); wc != nil && wc.IIF == in &&
					!wc.OIFEmpty(now) && wc.UpstreamNeighbor == m.UpstreamNeighbor {
					r.sendJoinPrune(in, m.UpstreamNeighbor, g,
						[]pimmsg.Addr{{Addr: wc.RP, WC: true, RP: true}}, nil)
				}
			case a.RP:
				wc := r.MFIB.Wildcard(g)
				if wc != nil && wc.IIF == in && !wc.OIFEmpty(now) &&
					wc.UpstreamNeighbor == m.UpstreamNeighbor &&
					r.MFIB.SGRpt(a.Addr, g) == nil && r.wantsSourceViaShared(g, a.Addr) {
					r.sendJoinPrune(in, m.UpstreamNeighbor, g,
						[]pimmsg.Addr{{Addr: a.Addr, RP: true}}, nil)
				}
			default:
				if sg := r.MFIB.SG(a.Addr, g); sg != nil && sg.IIF == in &&
					!sg.OIFEmpty(now) && sg.UpstreamNeighbor == m.UpstreamNeighbor {
					r.sendJoinPrune(in, m.UpstreamNeighbor, g,
						[]pimmsg.Addr{{Addr: a.Addr}}, nil)
				}
			}
		}
	}
}

// wantsSourceViaShared reports whether this router still depends on the
// shared tree for the source (it has not completed an SPT switch for it).
func (r *Router) wantsSourceViaShared(g, s addr.IP) bool {
	sg := r.MFIB.SG(s, g)
	return sg == nil || !sg.SPTBit
}
