package core_test

import (
	"math/rand"
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// TestSoftStateSurvivesControlLoss exercises the §2 robustness claim: PIM
// uses "periodic refreshes as its primary means of reliability", so losing
// a fraction of control messages must only delay, never break, tree
// formation and maintenance.
func TestSoftStateSurvivesControlLoss(t *testing.T) {
	g := topology.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(4)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(2)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
		RPMapping:         map[addr.IP][]addr.IP{group: {rp}},
		JoinPruneInterval: 20 * netsim.Second, // faster refresh: shorter test
	})).(*scenario.PIMDeployment)
	// Drop 30% of PIM control messages, deterministically.
	rng := rand.New(rand.NewSource(5))
	dropped := 0
	sim.Net.Loss = func(from, to *netsim.Iface, pkt *packet.Packet) bool {
		if pkt.Protocol == packet.ProtoPIM && rng.Intn(10) < 3 {
			dropped++
			return true
		}
		return false
	}
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	// Give several refresh cycles for lost joins to be recovered.
	sim.Run(4 * 20 * netsim.Second)
	if dep.Routers[1].MFIB.Wildcard(group) == nil {
		t.Fatal("shared tree never formed under 30% control loss")
	}
	delivered0 := receiver.Received[group]
	for i := 0; i < 20; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(5 * netsim.Second)
	}
	got := receiver.Received[group] - delivered0
	// Data packets are not subject to the injected loss; once the tree
	// exists (and refreshes heal any state that lapses), delivery must be
	// nearly complete.
	if got < 16 {
		t.Errorf("delivered %d of 20 under control-plane loss", got)
	}
	if dropped == 0 {
		t.Fatal("loss injection never triggered")
	}
}

// TestStateRecoversAfterTotalControlBlackout drops ALL control traffic for
// a while — long enough for oif timers to expire — then restores it; the
// periodic refresh must rebuild the tree with no explicit recovery action.
func TestStateRecoversAfterTotalControlBlackout(t *testing.T) {
	g := topology.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(2)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(1)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
		RPMapping:         map[addr.IP][]addr.IP{group: {rp}},
		JoinPruneInterval: 10 * netsim.Second,
	})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	sim.Run(5 * netsim.Second)
	if dep.Routers[1].MFIB.Wildcard(group) == nil {
		t.Fatal("tree did not form")
	}
	// Blackout: every PIM message lost for 4 holdtimes.
	blackout := true
	sim.Net.Loss = func(from, to *netsim.Iface, pkt *packet.Packet) bool {
		return blackout && pkt.Protocol == packet.ProtoPIM
	}
	sim.Run(4 * 3 * 10 * netsim.Second)
	wc := dep.Routers[1].MFIB.Wildcard(group)
	now := sim.Net.Sched.Now()
	if wc != nil && wc.HasOIF(sim.Routers[1].Ifaces[0], now) {
		t.Fatal("state survived the blackout — holdtimes not enforced")
	}
	// Restore the control plane: the DR's periodic refresh re-joins.
	blackout = false
	sim.Run(3 * 10 * netsim.Second)
	scenario.SendData(sender, group, 64)
	sim.Run(2 * netsim.Second)
	if receiver.Received[group] == 0 {
		t.Error("delivery did not recover after blackout ended")
	}
}

// TestRPFDropCounting: packets arriving on the wrong interface are counted
// and never forwarded (the §1.3 fn. 4 "incoming interface check on all
// multicast data packets").
func TestRPFDropCounting(t *testing.T) {
	// Diamond so an off-RPF copy can be crafted: 0-1-3, 0-2-3.
	g := topology.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 5)
	sim := scenario.Build(g)
	receiver := sim.AddHost(3)
	sim.AddHost(0)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(0) // RP on the far side: router 3 is a plain DR
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rp}}})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	// Inject a forged data packet into router 3 via the slow (non-RPF)
	// interface: router 3's (*,G) incoming interface is the fast path via
	// router 1, so the copy arriving on the 2-3 link must fail the check.
	r3 := sim.Routers[3]
	forged := packet.New(addr.V4(10, 100, 0, 1), group, packet.ProtoUDP, make([]byte, 16))
	slowIface := r3.Ifaces[1] // edge 3 = 2-3 link
	r3.LocalSend(slowIface, forged)
	if got := dep.Routers[3].Metrics.Get("data.rpfdrop"); got != 1 {
		t.Errorf("rpfdrop = %d, want 1", got)
	}
	if receiver.Received[group] != 0 {
		t.Error("forged off-RPF packet was delivered")
	}
}

// TestReJoinAfterStateExpiry: membership persisting across a state lapse is
// re-established by IGMP-driven refresh without a new Join call.
func TestPeriodicRefreshKeepsLongLivedTreeAlive(t *testing.T) {
	sim, dep, receiver, sender, group, _ := fig34Topology(t, scenario.UseOracle)
	receiver.Join(group)
	// Run an hour of simulated time: dozens of holdtime periods.
	sim.Run(3600 * netsim.Second)
	if dep.Routers[1].MFIB.Wildcard(group) == nil {
		t.Fatal("tree decayed despite live membership")
	}
	scenario.SendData(sender, group, 64)
	sim.Run(2 * netsim.Second)
	if receiver.Received[group] == 0 {
		t.Error("no delivery after an hour of idle maintenance")
	}
}
