package core_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// BenchmarkDataForwarding measures the per-packet cost of the §3.5 data
// plane through a 5-hop established shared tree (marshal, per-hop RPF check
// and oif fan-out, unmarshal, host delivery).
func BenchmarkDataForwarding(b *testing.B) {
	g := topology.New(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, 1)
	}
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(5)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: map[addr.IP][]addr.IP{group: {sim.RouterAddr(2)}}}))
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	// Prime the source path.
	scenario.SendData(sender, group, 128)
	sim.Run(2 * netsim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scenario.SendData(sender, group, 128)
		sim.Run(100 * netsim.Millisecond)
	}
	b.StopTimer()
	if receiver.Received[group] < b.N {
		b.Fatalf("delivered %d of %d", receiver.Received[group], b.N)
	}
}

// BenchmarkJoinProcessing measures the control-plane cost of processing a
// receiver join end-to-end (IGMP report -> triggered joins to the RP).
func BenchmarkJoinProcessing(b *testing.B) {
	g := topology.New(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim := scenario.Build(g)
		receiver := sim.AddHost(0)
		sim.FinishUnicast(scenario.UseOracle)
		group := addr.GroupForIndex(0)
		sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: map[addr.IP][]addr.IP{group: {sim.RouterAddr(5)}}}))
		sim.Run(2 * netsim.Second)
		b.StartTimer()
		receiver.Join(group)
		sim.Run(netsim.Second)
	}
}

// BenchmarkPeriodicRefresh measures one refresh cycle across a router
// holding state for many groups.
func BenchmarkPeriodicRefresh(b *testing.B) {
	g := topology.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sim.FinishUnicast(scenario.UseOracle)
	const groups = 100
	rpMap := map[addr.IP][]addr.IP{}
	for i := 0; i < groups; i++ {
		rpMap[addr.GroupForIndex(i)] = []addr.IP{sim.RouterAddr(2)}
	}
	sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: rpMap}))
	sim.Run(2 * netsim.Second)
	for i := 0; i < groups; i++ {
		receiver.Join(addr.GroupForIndex(i))
	}
	sim.Run(20 * netsim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One full refresh period across all routers: 100 (*,G) entries
		// refreshed per cycle per router.
		sim.Run(core.DefaultJoinPruneInterval)
	}
}
