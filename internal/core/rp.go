package core

import (
	"slices"

	"pim/internal/addr"
	"pim/internal/metrics"
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimmsg"
	"pim/internal/telemetry"
)

// handleRegister is the RP side of the rendezvous (§3): decapsulate the
// piggybacked data packet, build (S,G) state toward the source, answer with
// a join toward the source, and distribute the data down the shared tree.
func (r *Router) handleRegister(in *netsim.Iface, outer *packet.Packet, body []byte) {
	reg, err := pimmsg.UnmarshalRegister(body)
	if err != nil {
		return
	}
	inner, err := packet.Unmarshal(reg.Inner)
	if err != nil {
		return
	}
	g := inner.Dst
	if !g.IsMulticast() {
		return
	}
	r.rpAcceptSource(r.sourceKey(inner.Src), g, nil)
	// Deliver the encapsulated payload down the shared tree so receivers
	// get data while the native path builds (§3: "one or more rendezvous
	// points are used initially to propagate data packets from sources to
	// receivers"). Once native (S,G) data reaches this RP (SPT bit set),
	// the register copy is redundant and is dropped — equal-cost-path
	// asymmetry can otherwise leave the DR registering forever and every
	// receiver seeing duplicates.
	if sg := r.MFIB.SG(r.sourceKey(inner.Src), g); sg != nil && sg.SPTBit {
		return
	}
	if wc := r.MFIB.Wildcard(g); wc != nil {
		r.emit(inner, nil, r.sharedOIFs(wc, r.sourceKey(inner.Src), nil), true)
	}
}

// rpAcceptSource installs RP-side (S,G) state for a newly announced source
// and joins toward it. via is the interface the source is directly
// connected on when the RP is also the source's DR, nil otherwise.
func (r *Router) rpAcceptSource(s, g addr.IP, via *netsim.Iface) {
	now := r.now()
	sg, created := r.upsert(mfib.Key{Source: s, Group: g}, now)
	if !created {
		return
	}
	if rp, ok := r.rpFor(g); ok {
		sg.RP = rp
	}
	if via != nil {
		sg.IIF, sg.UpstreamNeighbor = via, 0
		sg.SPTBit = true
	} else {
		r.setUpstream(sg, s)
	}
	// Shared-tree branches are served through the inherited outgoing list
	// at forwarding time (unionOIFs), so no oif copy is needed here; the
	// paper's copy-at-creation is subsumed by inheritance (DESIGN.md §4).
	if sg.UpstreamNeighbor != 0 {
		r.sendJoinPrune(sg.IIF, sg.UpstreamNeighbor, g, []pimmsg.Addr{{Addr: s}}, nil)
	}
}

// originateRPReach sends RP reachability messages down every (*,G) tree
// this router is the RP for (§3.2: "RP reachability messages are generated
// by RPs periodically and distributed down the (*,G) tree").
func (r *Router) originateRPReach() {
	hold := uint16(3 * r.Cfg.RPReachInterval / netsim.Second)
	r.MFIB.ForEach(func(e *mfib.Entry) {
		if !e.Wildcard || !r.Node.OwnsAddr(e.RP) {
			return
		}
		r.distributeRPReach(e, &pimmsg.RPReach{Group: e.Key.Group, RP: e.RP, HoldTime: hold}, nil)
	})
}

func (r *Router) distributeRPReach(wc *mfib.Entry, m *pimmsg.RPReach, except *netsim.Iface) {
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeRPReach)
	r.enc.Buf = m.MarshalTo(r.enc.Buf)
	for _, ifc := range wc.LiveOIFs(r.now(), except) {
		r.Node.Send(ifc, r.enc.Packet(ifc.Addr, addr.AllRouters, packet.ProtoPIM, 1), 0)
		r.Metrics.Inc(metrics.CtrlRPReach)
	}
}

// handleRPReach resets the RP fail-over timer and propagates the message
// down the shared tree (§3.2, §3.9).
func (r *Router) handleRPReach(in *netsim.Iface, body []byte) {
	m, err := pimmsg.UnmarshalRPReach(body)
	if err != nil {
		return
	}
	wc := r.MFIB.Wildcard(m.Group)
	if wc == nil || wc.RP != m.RP || in != wc.IIF {
		return
	}
	if tm := r.rpTimer[m.Group]; tm != nil {
		// Only routers with local members arm the timer (§3.9: "when a
		// (*,G) entry is established by a router with local members, a
		// timer is set").
		r.armRPTimer(m.Group)
	}
	r.distributeRPReach(wc, m, in)
}

// originateRPReport floods this router's served groups when dynamic RP
// discovery is enabled (§4).
func (r *Router) originateRPReport() {
	if !r.Cfg.AdvertiseRPMapping {
		return
	}
	served := map[addr.IP][]addr.IP{} // rp address we own -> groups
	for g, rps := range r.rpMap {
		for _, rp := range rps {
			if r.Node.OwnsAddr(rp) {
				served[rp] = append(served[rp], g)
			}
		}
	}
	// Flood in sorted order: report content and emission sequence must not
	// depend on map iteration (deterministic simulation).
	rps := make([]addr.IP, 0, len(served))
	for rp := range served {
		rps = append(rps, rp)
	}
	slices.Sort(rps)
	for _, rp := range rps {
		groups := served[rp]
		slices.Sort(groups)
		r.rpReportSeq++
		rep := &pimmsg.RPReport{RP: rp, Seq: r.rpReportSeq, Groups: groups}
		r.floodRPReport(rep, nil)
	}
}

func (r *Router) handleRPReport(in *netsim.Iface, body []byte) {
	rep, err := pimmsg.UnmarshalRPReport(body)
	if err != nil || r.Node.OwnsAddr(rep.RP) {
		return
	}
	if cur, ok := r.rpReportSeqs[rep.RP]; ok && int32(rep.Seq-cur) <= 0 {
		return
	}
	r.rpReportSeqs[rep.RP] = rep.Seq
	expires := r.now() + 3*r.Cfg.RPReachInterval
	for _, g := range rep.Groups {
		// Cached mapping; configuration and host-supplied mappings win.
		r.learnedRP[g] = learnedMapping{rp: rep.RP, expires: expires}
	}
	r.floodRPReport(rep, in)
}

func (r *Router) floodRPReport(rep *pimmsg.RPReport, except *netsim.Iface) {
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeRPReport)
	r.enc.Buf = rep.MarshalTo(r.enc.Buf)
	for _, ifc := range r.Node.Ifaces {
		if ifc == except || !ifc.Up() || ifc.Addr == 0 {
			continue
		}
		r.Node.Send(ifc, r.enc.Packet(ifc.Addr, addr.AllRouters, packet.ProtoPIM, 1), 0)
		r.Metrics.Inc(metrics.CtrlRPReach)
	}
}

// rpFailover switches the group to an alternate RP after reachability is
// lost (§3.9): tear down the old (*,G), rebuild toward the next candidate
// with only the local-member interfaces, and join it.
func (r *Router) rpFailover(g addr.IP) {
	old := r.MFIB.Wildcard(g)
	if old == nil {
		return
	}
	if r.Node.OwnsAddr(old.RP) {
		return // we are the RP: always reachable from ourselves
	}
	candidates := r.rpMap[g]
	if len(candidates) == 0 {
		return
	}
	cur := old.RP
	next := cur
	for i, rp := range candidates {
		if rp == cur {
			next = candidates[(i+1)%len(candidates)]
			break
		}
	}
	// Local-member interfaces survive; downstream join state must re-form
	// toward whichever RP the downstream routers themselves fail over to.
	var localIfaces []*netsim.Iface
	for i := 0; i < old.OIFCount(); i++ {
		if o := old.OIFAt(i); o.LocalMember {
			localIfaces = append(localIfaces, o.Iface)
		}
	}
	if len(localIfaces) == 0 {
		return // transit-only state: soft-state expiry handles it
	}
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.RPFailover, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Source: next, Group: g,
		})
	}
	r.deleteEntry(old.Key)
	// Also drop negative caches tied to the old tree.
	var stale []mfib.Key
	r.MFIB.ForGroup(g, func(e *mfib.Entry) {
		if e.Key.RPBit && !e.Wildcard {
			stale = append(stale, e.Key)
		}
	})
	for _, k := range stale {
		r.deleteEntry(k)
	}
	r.currentRP[g] = next
	now := r.now()
	wc, _ := r.upsert(mfib.Key{Group: g, RPBit: true}, now)
	wc.RP = next
	r.setUpstream(wc, next)
	for _, ifc := range localIfaces {
		if ifc != wc.IIF {
			wc.AddLocalOIF(ifc)
		}
	}
	r.sendJoinPrune(wc.IIF, wc.UpstreamNeighbor, g,
		[]pimmsg.Addr{{Addr: next, WC: true, RP: true}}, nil)
	r.armRPTimer(g)
}
