package core_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// fig34Topology is the paper's Figure 3/4 layout: receiver—A—B—C(RP)—D—sender.
//
//	graph nodes: 0=A 1=B 2=C(RP) 3=D
func fig34Topology(t *testing.T, mode scenario.UnicastMode) (*scenario.Sim, *scenario.PIMDeployment, *igmp.Host, *igmp.Host, addr.IP, addr.IP) {
	t.Helper()
	g := topology.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3)
	sim.FinishUnicast(mode)
	sim.Run(sim.ConvergenceTime())
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(2)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rp}}})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second) // hello exchange
	return sim, dep, receiver, sender, group, rp
}

// TestFigure4SharedTreeSetup asserts the exact (*,G) state of Figure 4 at
// each hop after a receiver joins.
func TestFigure4SharedTreeSetup(t *testing.T) {
	sim, dep, receiver, _, group, rp := fig34Topology(t, scenario.UseOracle)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)

	// Router A (index 0): oif = host LAN, iif = toward B, RP address = C.
	a := dep.Routers[0]
	wcA := a.MFIB.Wildcard(group)
	if wcA == nil {
		t.Fatal("A has no (*,G) entry")
	}
	if wcA.RP != rp {
		t.Errorf("A RP = %v, want %v", wcA.RP, rp)
	}
	if !wcA.Wildcard {
		t.Error("WC bit not set on A's entry")
	}
	now := sim.Net.Sched.Now()
	lanIface := sim.Routers[0].Ifaces[1] // stub LAN added after backbone iface
	if !wcA.HasOIF(lanIface, now) {
		t.Error("A's oif list missing the member LAN")
	}
	if wcA.IIF != sim.Routers[0].Ifaces[0] {
		t.Errorf("A iif = %v, want backbone toward B", wcA.IIF)
	}

	// Router B: oif = iface to A, iif = toward C.
	b := dep.Routers[1]
	wcB := b.MFIB.Wildcard(group)
	if wcB == nil {
		t.Fatal("B has no (*,G) entry")
	}
	ifaceToA := sim.Routers[1].Ifaces[0]
	ifaceToC := sim.Routers[1].Ifaces[1]
	if !wcB.HasOIF(ifaceToA, now) {
		t.Error("B's oif list missing iface to A")
	}
	if wcB.IIF != ifaceToC {
		t.Errorf("B iif = %v, want iface to C", wcB.IIF)
	}

	// Router C (the RP): oif = iface to B, iif = null (§3.2).
	c := dep.Routers[2]
	wcC := c.MFIB.Wildcard(group)
	if wcC == nil {
		t.Fatal("C has no (*,G) entry")
	}
	if wcC.IIF != nil {
		t.Errorf("RP iif = %v, want nil", wcC.IIF)
	}
	if !wcC.HasOIF(sim.Routers[2].Ifaces[0], now) {
		t.Error("C's oif list missing iface to B")
	}
	// Router D: no state (no receivers or senders behind it yet).
	if dep.Routers[3].StateCount() != 0 {
		t.Errorf("D has %d entries, want 0", dep.Routers[3].StateCount())
	}
}

// TestFigure3Rendezvous walks the full Figure 3 sequence: receiver joins
// toward the RP, sender registers, RP joins the source, and data flows
// end-to-end.
func TestFigure3Rendezvous(t *testing.T) {
	sim, dep, receiver, sender, group, _ := fig34Topology(t, scenario.UseOracle)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)

	// Sender transmits; first packet travels as a register, RP joins back.
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if got := receiver.Received[group]; got < 4 {
		t.Fatalf("receiver got %d packets, want >=4", got)
	}

	// RP built (S,G) toward the source.
	src := sender.Iface.Addr
	c := dep.Routers[2]
	sgC := c.MFIB.SG(src, group)
	if sgC == nil {
		t.Fatal("RP has no (S,G) entry")
	}
	if sgC.IIF != sim.Routers[2].Ifaces[1] {
		t.Errorf("RP (S,G) iif = %v, want iface toward D", sgC.IIF)
	}
	// D (sender's DR) has (S,G) with oif toward the RP and a nil upstream.
	d := dep.Routers[3]
	sgD := d.MFIB.SG(src, group)
	if sgD == nil {
		t.Fatal("D has no (S,G) entry")
	}
	now := sim.Net.Sched.Now()
	if !sgD.HasOIF(sim.Routers[3].Ifaces[0], now) {
		t.Error("D (S,G) missing oif toward RP")
	}
	// Registers must have stopped once native state formed: send more data
	// and confirm the register counter stays put.
	regs := d.Metrics.Get("ctrl.register")
	if regs == 0 {
		t.Fatal("no registers were sent at all")
	}
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(100 * netsim.Millisecond)
	}
	if after := d.Metrics.Get("ctrl.register"); after != regs {
		t.Errorf("registers kept flowing after native path: %d -> %d", regs, after)
	}
}

// fig5Topology realizes Figure 5: shared tree A—B—C(RP), source behind D,
// C—D for the RP path and B—D as the shortcut the SPT uses.
//
//	0=A 1=B 2=C(RP) 3=D
func fig5Topology(t *testing.T, policy core.SPTPolicy) (*scenario.Sim, *scenario.PIMDeployment, *igmp.Host, *igmp.Host, addr.IP) {
	t.Helper()
	g := topology.New(4)
	g.AddEdge(0, 1, 1) // A-B (edge 0)
	g.AddEdge(1, 2, 1) // B-C (edge 1)
	g.AddEdge(2, 3, 1) // C-D (edge 2)
	g.AddEdge(1, 3, 1) // B-D (edge 3): SPT shortcut
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(2)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
		RPMapping: map[addr.IP][]addr.IP{group: {rp}},
		SPTPolicy: policy,
		// Threshold values exercised by the threshold test.
		SPTPackets: 3,
		SPTWindow:  20 * netsim.Second,
	})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	return sim, dep, receiver, sender, group
}

// TestFigure5SPTSwitch verifies the §3.3 transition: (Sn,G) created with a
// cleared SPT bit, the bit set when data arrives over the shortest path,
// and the prune with the RP bit sent toward the RP at the divergence point.
func TestFigure5SPTSwitch(t *testing.T) {
	sim, dep, receiver, sender, group := fig5Topology(t, core.SwitchImmediate)
	src := sender.Iface.Addr
	for i := 0; i < 8; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	now := sim.Net.Sched.Now()

	// B is the divergence point: its (S,G) iif must be the B—D shortcut
	// (edge 3 => B's third interface), with the SPT bit set.
	b := dep.Routers[1]
	sgB := b.MFIB.SG(src, group)
	if sgB == nil {
		t.Fatal("B has no (S,G) entry")
	}
	ifaceToD := sim.Routers[1].Ifaces[2]
	if sgB.IIF != ifaceToD {
		t.Fatalf("B (S,G) iif = %v, want shortcut to D", sgB.IIF)
	}
	if !sgB.SPTBit {
		t.Error("B SPT bit not set after native arrivals")
	}
	// A joined the SPT and kept its local branch.
	a := dep.Routers[0]
	sgA := a.MFIB.SG(src, group)
	if sgA == nil {
		t.Fatal("A has no (S,G) entry")
	}
	if !sgA.SPTBit {
		t.Error("A SPT bit not set")
	}
	if !sgA.HasOIF(sim.Routers[0].Ifaces[1], now) {
		t.Error("A (S,G) lost the member LAN oif")
	}
	// C holds the negative cache: (S,G)RPbit with B's interface pruned.
	c := dep.Routers[2]
	rpt := c.MFIB.SGRpt(src, group)
	if rpt == nil {
		t.Fatal("RP has no (S,G)RPbit negative cache")
	}
	ifaceToB := sim.Routers[2].Ifaces[0]
	if o := rpt.OIF(ifaceToB.Index); o == nil || !o.Live(now) {
		t.Error("negative cache does not prune the B interface")
	}
	// Data keeps arriving (now via the SPT).
	before := receiver.Received[group]
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(200 * netsim.Millisecond)
	}
	if receiver.Received[group] <= before {
		t.Error("no data delivered over the SPT")
	}
	// And the C—B link no longer carries data for this source: the RP has
	// pruned it, so new packets use only D—B.
	cbLink := sim.EdgeLinks[1] // B-C
	cbData := sim.Net.Stats.PerLink[cbLink.ID].DataPackets
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(200 * netsim.Millisecond)
	}
	if after := sim.Net.Stats.PerLink[cbLink.ID].DataPackets; after != cbData {
		t.Errorf("B—C still carries data after prune: %d -> %d", cbData, after)
	}
}

// TestSPTSwitchNever confirms the configuration knob: data flows through
// the RP indefinitely and no (S,G) entry forms at the receiver's DR.
func TestSPTSwitchNever(t *testing.T) {
	sim, dep, receiver, sender, group := fig5Topology(t, core.SwitchNever)
	src := sender.Iface.Addr
	for i := 0; i < 10; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if got := receiver.Received[group]; got < 8 {
		t.Fatalf("receiver got %d packets", got)
	}
	if dep.Routers[0].MFIB.SG(src, group) != nil {
		t.Error("A created (S,G) despite SwitchNever")
	}
	if dep.Routers[1].MFIB.SG(src, group) != nil {
		t.Error("B created (S,G) despite SwitchNever")
	}
}

// TestSPTSwitchThreshold verifies the m-packets-in-n-seconds policy (§3.3).
func TestSPTSwitchThreshold(t *testing.T) {
	sim, dep, _, sender, group := fig5Topology(t, core.SwitchThreshold)
	src := sender.Iface.Addr
	// Two packets: below the threshold of 3.
	for i := 0; i < 2; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if dep.Routers[0].MFIB.SG(src, group) != nil {
		t.Fatal("A switched below threshold")
	}
	// Third packet within the window triggers the switch.
	scenario.SendData(sender, group, 64)
	sim.Run(2 * netsim.Second)
	if dep.Routers[0].MFIB.SG(src, group) == nil {
		t.Fatal("A did not switch at threshold")
	}
}

// TestProtocolIndependence runs the identical rendezvous scenario over the
// distance-vector and link-state unicast substrates (§2's "Routing Protocol
// Independent" requirement).
func TestProtocolIndependence(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode scenario.UnicastMode
	}{
		{"distance-vector", scenario.UseDV},
		{"link-state", scenario.UseLS},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim, _, receiver, sender, group, _ := fig34Topology(t, tc.mode)
			receiver.Join(group)
			sim.Run(2 * netsim.Second)
			for i := 0; i < 6; i++ {
				scenario.SendData(sender, group, 64)
				sim.Run(500 * netsim.Millisecond)
			}
			if got := receiver.Received[group]; got < 4 {
				t.Fatalf("receiver got %d packets over %s", got, tc.name)
			}
		})
	}
}

// TestSoftStateExpiry removes the receiver and confirms all shared-tree
// state dissolves without explicit teardown (§2 robustness, §3.6).
func TestSoftStateExpiry(t *testing.T) {
	sim, dep, receiver, _, group, _ := fig34Topology(t, scenario.UseOracle)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	if dep.Routers[1].MFIB.Wildcard(group) == nil {
		t.Fatal("tree did not form")
	}
	receiver.Leave(group)
	// Holdtime is 3×60 s; deletion lags one maintenance round behind.
	sim.Run(6 * core.DefaultJoinPruneInterval)
	for i, r := range dep.Routers {
		if n := r.StateCount(); n != 0 {
			t.Errorf("router %d still holds %d entries", i, n)
		}
	}
}

// TestLeaveTriggersPrune checks the fast path: an IGMP leave prunes the
// tree upstream well before soft-state expiry.
func TestLeaveTriggersPrune(t *testing.T) {
	sim, dep, receiver, _, group, _ := fig34Topology(t, scenario.UseOracle)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	receiver.Leave(group)
	sim.Run(5 * netsim.Second)
	now := sim.Net.Sched.Now()
	// B's oif toward A must be gone (prune propagated), even though the
	// entries may linger until DeleteAt.
	wcB := dep.Routers[1].MFIB.Wildcard(group)
	if wcB != nil && wcB.HasOIF(sim.Routers[1].Ifaces[0], now) {
		t.Error("B still forwards toward A after leave")
	}
}

// TestRPFailover exercises §3.9: when the primary RP dies, receivers stop
// seeing RP-reachability messages and fail over to the alternate; data
// delivery resumes because sources register toward every RP.
func TestRPFailover(t *testing.T) {
	// Diamond: A(receiver) — B — C(RP1), A — ... D(RP2) reachable another
	// way, sender behind E connected to both RPs.
	//   0=A 1=B 2=RP1 3=RP2 4=E(sender DR)
	g := topology.New(5)
	g.AddEdge(0, 1, 1) // A-B
	g.AddEdge(1, 2, 1) // B-RP1
	g.AddEdge(1, 3, 2) // B-RP2 (longer)
	g.AddEdge(2, 4, 1) // RP1-E
	g.AddEdge(3, 4, 1) // RP2-E
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(4)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp1, rp2 := sim.RouterAddr(2), sim.RouterAddr(3)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
		RPMapping: map[addr.IP][]addr.IP{group: {rp1, rp2}},
		SPTPolicy: core.SwitchNever, // keep the flow on the RP trees
	})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	// Steady traffic.
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		scenario.SendData(sender, group, 64)
		sim.Net.Sched.After(netsim.Second, pump)
	}
	sim.Net.Sched.After(0, pump)
	sim.Run(10 * netsim.Second)
	if receiver.Received[group] < 5 {
		t.Fatalf("no steady flow before failover: %d", receiver.Received[group])
	}
	// Kill RP1 by cutting both its links.
	sim.Net.SetLinkUp(sim.EdgeLinks[1], false)
	sim.Net.SetLinkUp(sim.EdgeLinks[3], false)
	// Run past 3× RP-reach interval plus re-join time.
	sim.Run(4 * core.DefaultRPReachInterval)
	wcA := dep.Routers[0].MFIB.Wildcard(group)
	if wcA == nil {
		t.Fatal("A lost all (*,G) state")
	}
	if wcA.RP != rp2 {
		t.Fatalf("A still on RP %v, want failover to %v", wcA.RP, rp2)
	}
	before := receiver.Received[group]
	sim.Run(10 * netsim.Second)
	stop = true
	if receiver.Received[group] <= before {
		t.Error("no data delivered after RP failover")
	}
}

// TestUnicastRouteChange exercises §3.8: after the primary path fails, the
// tree re-forms over the backup path and delivery continues.
func TestUnicastRouteChange(t *testing.T) {
	// Square: receiver at 0, RP at 3; paths 0-1-3 (cheap) and 0-2-3.
	g := topology.New(4)
	g.AddEdge(0, 1, 1) // edge 0
	g.AddEdge(1, 3, 1) // edge 1
	g.AddEdge(0, 2, 3) // edge 2
	g.AddEdge(2, 3, 3) // edge 3
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3) // sender next to the RP
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(3)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
		RPMapping: map[addr.IP][]addr.IP{group: {rp}},
		SPTPolicy: core.SwitchNever,
	})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	wc := dep.Routers[0].MFIB.Wildcard(group)
	if wc == nil || wc.IIF != sim.Routers[0].Ifaces[0] {
		t.Fatalf("initial iif wrong: %v", wc)
	}
	// Cut the cheap path; the oracle recomputes and PIM must re-anchor.
	sim.Net.SetLinkUp(sim.EdgeLinks[0], false)
	sim.Run(2 * netsim.Second)
	wc = dep.Routers[0].MFIB.Wildcard(group)
	if wc == nil {
		t.Fatal("(*,G) vanished on route change")
	}
	if wc.IIF != sim.Routers[0].Ifaces[1] {
		t.Fatalf("iif did not move to backup path: %v", wc.IIF)
	}
	for i := 0; i < 6; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if receiver.Received[group] < 4 {
		t.Errorf("only %d packets after reroute", receiver.Received[group])
	}
}

// TestSparseModeRequiresRPMapping: groups without an RP mapping are not
// built as sparse-mode state (§3.1).
func TestSparseModeRequiresRPMapping(t *testing.T) {
	sim, dep, receiver, _, _, _ := fig34Topology(t, scenario.UseOracle)
	unmapped := addr.GroupForIndex(42)
	receiver.Join(unmapped)
	sim.Run(2 * netsim.Second)
	if dep.Routers[0].MFIB.Wildcard(unmapped) != nil {
		t.Error("state created for unmapped group")
	}
}

// TestHostSuppliedRPMapping: the paper's host RPMap message (§3.1 fn. 9)
// provides the mapping when configuration does not.
func TestHostSuppliedRPMapping(t *testing.T) {
	g := topology.New(2)
	g.AddEdge(0, 1, 1)
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(1)
	sim.FinishUnicast(scenario.UseOracle)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{})).(*scenario.PIMDeployment) // no static mapping at all
	sim.Run(2 * netsim.Second)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(1)
	receiver.Join(group, rp) // host advertises the RP
	sim.Run(2 * netsim.Second)
	if dep.Routers[0].MFIB.Wildcard(group) == nil {
		t.Fatal("host-provided RP mapping ignored")
	}
	// Sender side learns the mapping the same way: its DR is the RP here,
	// which still needs the mapping to accept the source.
	dep.Routers[1].LearnRPMap(group, []addr.IP{rp})
	for i := 0; i < 4; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if receiver.Received[group] == 0 {
		t.Error("no delivery with host-supplied mapping")
	}
}

// TestDRElection: on a shared LAN with two routers, only the higher-address
// router (the DR) creates state for local members (§3.7).
func TestDRElection(t *testing.T) {
	// Hand-built: two routers share the host LAN and each connects to an
	// upstream RP router.
	net := netsim.NewNetwork()
	rLow := net.AddNode("rlow")
	rHigh := net.AddNode("rhigh")
	rpNode := net.AddNode("rp")
	host := net.AddNode("h")

	lanLow := net.AddIface(rLow, addr.V4(10, 100, 0, 1))
	lanHigh := net.AddIface(rHigh, addr.V4(10, 100, 0, 2))
	lanHost := net.AddIface(host, addr.V4(10, 100, 0, 9))
	// LAN slower than the uplinks so the RP prefix routes via the direct
	// links, keeping the shared tree off the transit path through rlow.
	net.ConnectLAN(2*netsim.Millisecond, lanLow, lanHigh, lanHost)

	upLow := net.AddIface(rLow, addr.V4(10, 200, 0, 1))
	upRP1 := net.AddIface(rpNode, addr.V4(10, 200, 0, 2))
	net.Connect(upLow, upRP1, netsim.Millisecond)
	upHigh := net.AddIface(rHigh, addr.V4(10, 201, 0, 1))
	upRP2 := net.AddIface(rpNode, addr.V4(10, 201, 0, 2))
	net.Connect(upHigh, upRP2, netsim.Millisecond)

	oracle := unicastOracle(net)
	group := addr.GroupForIndex(0)
	rp := addr.V4(10, 200, 0, 2)
	cfg := core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rp}}}
	routers := map[string]*core.Router{}
	for _, nd := range []*netsim.Node{rLow, rHigh, rpNode} {
		r := core.New(nd, cfg, oracle.RouterFor(nd))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		routers[nd.Name] = r
	}
	h := igmp.NewHost(host, lanHost)
	net.Sched.RunUntil(2 * netsim.Second)

	if routers["rlow"].IsDR(lanLow) {
		t.Error("low-address router claims DR")
	}
	if !routers["rhigh"].IsDR(lanHigh) {
		t.Error("high-address router does not claim DR")
	}
	h.Join(group)
	net.Sched.RunUntil(4 * netsim.Second)
	if routers["rlow"].MFIB.Wildcard(group) != nil {
		t.Error("non-DR created (*,G) state")
	}
	if routers["rhigh"].MFIB.Wildcard(group) == nil {
		t.Error("DR did not create (*,G) state")
	}
}

// TestStateScalesWithMembership: sparse-mode state exists only on the path
// between members and the RP — routers off the tree hold nothing (§1.2).
func TestStateOnlyOnTree(t *testing.T) {
	// Line of 6 routers, receiver at 0, RP at 2; routers 3..5 are off-tree.
	g := topology.New(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, 1)
	}
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(2)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rp}}})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	for i := 0; i <= 2; i++ {
		if dep.Routers[i].StateCount() == 0 {
			t.Errorf("on-tree router %d has no state", i)
		}
	}
	for i := 3; i <= 5; i++ {
		if n := dep.Routers[i].StateCount(); n != 0 {
			t.Errorf("off-tree router %d holds %d entries", i, n)
		}
	}
}

// TestDynamicRPDiscovery: only the RP router is configured with the group
// mapping; everyone else learns it from flooded RP-reports (§4) and the
// rendezvous still works end to end.
func TestDynamicRPDiscovery(t *testing.T) {
	g := topology.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(2)
	// Wire routers individually: only router 2 (the RP) knows the mapping.
	routers := make([]*core.Router, 4)
	for i, nd := range sim.Routers {
		cfg := core.Config{AdvertiseRPMapping: true}
		if i == 2 {
			cfg.RPMapping = map[addr.IP][]addr.IP{group: {rp}}
		}
		r := core.New(nd, cfg, sim.UnicastFor(i))
		q := newQuerier(nd, r)
		r.Start()
		q.Start()
		routers[i] = r
	}
	// Let the first RP-report flood.
	sim.Run(2 * netsim.Second)
	if got := routers[0].RPsFor(group); len(got) != 1 || got[0] != rp {
		t.Fatalf("router 0 learned RPs = %v, want [%v]", got, rp)
	}
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	if routers[0].MFIB.Wildcard(group) == nil {
		t.Fatal("receiver DR did not join via learned mapping")
	}
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if receiver.Received[group] < 4 {
		t.Fatalf("delivered %d of 5 with dynamic RP discovery", receiver.Received[group])
	}
}

// TestLearnedRPMappingExpires: cached RP-report mappings age out when the
// RP stops advertising ("the mapping of G to RP addresses should be
// cached" — cached, not permanent).
func TestLearnedRPMappingExpires(t *testing.T) {
	g := topology.New(2)
	g.AddEdge(0, 1, 1)
	sim := scenario.Build(g)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(1)
	var routers [2]*core.Router
	for i, nd := range sim.Routers {
		cfg := core.Config{AdvertiseRPMapping: true}
		if i == 1 {
			cfg.RPMapping = map[addr.IP][]addr.IP{group: {rp}}
		}
		r := core.New(nd, cfg, sim.UnicastFor(i))
		r.Start()
		routers[i] = r
	}
	sim.Run(2 * netsim.Second)
	if len(routers[0].RPsFor(group)) != 1 {
		t.Fatal("mapping not learned")
	}
	// Silence the RP's reports and run past the cache lifetime.
	sim.Net.SetLinkUp(sim.EdgeLinks[0], false)
	sim.Run(4 * core.DefaultRPReachInterval)
	if len(routers[0].RPsFor(group)) != 0 {
		t.Error("learned mapping survived the advertisement silence")
	}
}

// hostAlias keeps test struct fields compact.
type hostAlias = igmp.Host
