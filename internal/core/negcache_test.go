package core_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimmsg"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// craftJoinPrune injects a join/prune message into a router as if it arrived
// on the given interface from the given source address.
func craftJoinPrune(nd *netsim.Node, in *netsim.Iface, src addr.IP, m *pimmsg.JoinPrune) {
	pkt := packet.New(src, addr.AllRouters, packet.ProtoPIM,
		pimmsg.Envelope(pimmsg.TypeJoinPrune, m.Marshal()))
	pkt.TTL = 1
	nd.LocalSend(in, pkt)
}

// TestNegativeCachePruneAndCancel drives the §3.3 fn.11 negative-cache life
// cycle with crafted messages on a point-to-point branch: a downstream
// RP-bit prune installs the negative cache and propagates toward the RP; a
// later RP-bit join cancels it and propagates the cancellation.
func TestNegativeCachePruneAndCancel(t *testing.T) {
	// receiver—r0—r1—r2(RP)
	g := topology.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(2)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rp}}})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)

	r1 := dep.Routers[1]
	src := addr.V4(10, 100, 9, 1) // some remote source
	downIface := sim.Routers[1].Ifaces[0]
	fromR0 := sim.Routers[0].Ifaces[0].Addr

	// Downstream prunes the source off the shared tree.
	craftJoinPrune(sim.Routers[1], downIface, fromR0, &pimmsg.JoinPrune{
		UpstreamNeighbor: downIface.Addr,
		HoldTime:         180,
		Groups: []pimmsg.GroupRecord{{
			Group:  group,
			Prunes: []pimmsg.Addr{{Addr: src, RP: true}},
		}},
	})
	sim.Run(netsim.Second)
	now := sim.Net.Sched.Now()
	rpt := r1.MFIB.SGRpt(src, group)
	if rpt == nil || !rpt.HasOIF(downIface, now) {
		t.Fatal("negative cache not installed at r1")
	}
	// The prune covered r1's only shared oif, so it propagated to the RP.
	if dep.Routers[2].MFIB.SGRpt(src, group) == nil {
		t.Fatal("negative cache did not propagate to the RP")
	}
	// Now the downstream re-joins the source on the shared tree.
	craftJoinPrune(sim.Routers[1], downIface, fromR0, &pimmsg.JoinPrune{
		UpstreamNeighbor: downIface.Addr,
		HoldTime:         180,
		Groups: []pimmsg.GroupRecord{{
			Group: group,
			Joins: []pimmsg.Addr{{Addr: src, RP: true}},
		}},
	})
	sim.Run(netsim.Second)
	if r1.MFIB.SGRpt(src, group) != nil {
		t.Error("negative cache survived the RP-bit join")
	}
	rpRpt := dep.Routers[2].MFIB.SGRpt(src, group)
	if rpRpt != nil && !rpRpt.OIFEmpty(sim.Net.Sched.Now()) {
		t.Error("cancellation did not propagate to the RP")
	}
}

// TestLANOverrideOfRPBitPrune: on a shared LAN, a downstream router that
// still depends on the shared tree for a source overrides another router's
// RP-bit prune (§3.7 applied to negative-cache prunes).
func TestLANOverrideOfRPBitPrune(t *testing.T) {
	f := buildLANFixture(t)
	f.h1.Join(f.group)
	f.h2.Join(f.group)
	f.net.Sched.RunUntil(f.net.Sched.Now() + 2*netsim.Second)

	src := addr.V4(10, 100, 9, 1)
	// D1 prunes the source off the shared tree on the transit LAN,
	// addressed to U.
	m := &pimmsg.JoinPrune{
		UpstreamNeighbor: f.uLANIface.Addr,
		HoldTime:         180,
		Groups: []pimmsg.GroupRecord{{
			Group:  f.group,
			Prunes: []pimmsg.Addr{{Addr: src, RP: true}},
		}},
	}
	pkt := packet.New(f.d1LANIface.Addr, addr.AllRouters, packet.ProtoPIM,
		pimmsg.Envelope(pimmsg.TypeJoinPrune, m.Marshal()))
	pkt.TTL = 1
	f.d1LANIface.Node.Send(f.d1LANIface, pkt, 0)

	// Past the override window: D2's override join must have kept (or
	// cancelled) the prune, so U still forwards the source onto the LAN.
	f.net.Sched.RunUntil(f.net.Sched.Now() + 3*core.DefaultPruneOverrideDelay)
	now := f.net.Sched.Now()
	rpt := f.u.MFIB.SGRpt(src, f.group)
	if rpt != nil {
		if o := rpt.OIF(f.uLANIface.Index); o != nil && o.Live(now) && !o.PrunePending {
			t.Fatal("RP-bit prune took effect despite D2's override")
		}
	}
}

// TestNeighborsAndIsRPFor covers the introspection helpers.
func TestNeighborsAndIsRPFor(t *testing.T) {
	f := buildLANFixture(t)
	// U sees both D routers on its LAN interface.
	nbrs := f.u.Neighbors(f.uLANIface)
	if len(nbrs) != 2 {
		t.Fatalf("U neighbors on LAN = %v", nbrs)
	}
	if nbrs[0] != f.d1LANIface.Addr || nbrs[1] != f.d2LANIface.Addr {
		t.Errorf("neighbors = %v", nbrs)
	}
	if !f.rp.IsRPFor(f.group) {
		t.Error("RP router does not claim its group")
	}
	if f.u.IsRPFor(f.group) {
		t.Error("non-RP router claims the group")
	}
}
