package core_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// aggSim builds receiver—A—B(RP)—C with THREE sender hosts on C's one stub
// LAN, the workload where §4 source aggregation pays: one subnet, many
// senders.
func aggSim(t *testing.T, aggregate bool) (*scenario.Sim, *scenario.PIMDeployment, *hosts3) {
	t.Helper()
	g := topology.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	s1 := sim.AddHost(2)
	s2 := sim.AddHost(2)
	s3 := sim.AddHost(2)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
		RPMapping:        map[addr.IP][]addr.IP{group: {sim.RouterAddr(1)}},
		AggregateSources: aggregate,
	})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	return sim, dep, &hosts3{receiver, s1, s2, s3, group}
}

type hosts3 struct {
	receiver, s1, s2, s3 *hostT
	group                addr.IP
}

type hostT = hostAlias

func TestSourceAggregationCollapsesState(t *testing.T) {
	// Without aggregation: one (S,G) per sender host.
	simH, depH, hH := aggSim(t, false)
	for _, s := range []*hostT{hH.s1, hH.s2, hH.s3} {
		for i := 0; i < 3; i++ {
			scenario.SendData(s, hH.group, 64)
			simH.Run(500 * netsim.Millisecond)
		}
	}
	hostEntries := depH.Routers[1].MFIB.Len() // at the RP

	// With aggregation: the three senders share one subnet entry.
	simA, depA, hA := aggSim(t, true)
	for _, s := range []*hostT{hA.s1, hA.s2, hA.s3} {
		for i := 0; i < 3; i++ {
			scenario.SendData(s, hA.group, 64)
			simA.Run(500 * netsim.Millisecond)
		}
	}
	aggEntries := depA.Routers[1].MFIB.Len()
	if aggEntries >= hostEntries {
		t.Errorf("aggregation did not shrink RP state: %d vs %d", aggEntries, hostEntries)
	}
	// The aggregated entry is keyed by the subnet address.
	subnet := hA.s1.Iface.Addr & addr.Mask(24)
	if depA.Routers[1].MFIB.SG(subnet, hA.group) == nil {
		t.Errorf("no (subnet,G) entry at the RP for %v", subnet)
	}
	// Delivery is unaffected.
	if hH.receiver.Received[hH.group] < 8 || hA.receiver.Received[hA.group] < 8 {
		t.Errorf("delivery: host-mode=%d agg-mode=%d of 9",
			hH.receiver.Received[hH.group], hA.receiver.Received[hA.group])
	}
}

func TestSourceAggregationWithSPTSwitch(t *testing.T) {
	// Receivers switching to SPTs under aggregation join the subnet, and
	// all senders on it flow over the one source tree.
	sim, dep, h := aggSim(t, true)
	for i := 0; i < 5; i++ {
		scenario.SendData(h.s1, h.group, 64)
		scenario.SendData(h.s2, h.group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	subnet := h.s1.Iface.Addr & addr.Mask(24)
	sgA := dep.Routers[0].MFIB.SG(subnet, h.group)
	if sgA == nil {
		t.Fatal("receiver DR has no aggregated (subnet,G) entry")
	}
	if !sgA.SPTBit {
		t.Error("aggregated SPT never completed")
	}
	if h.receiver.Received[h.group] < 9 {
		t.Errorf("delivered %d of 10", h.receiver.Received[h.group])
	}
}
