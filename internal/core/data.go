package core

import (
	"pim/internal/addr"
	"pim/internal/metrics"
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimmsg"
	"pim/internal/telemetry"
	"pim/internal/unicast"
)

// handleData is the §3.5 data plane: incoming-interface check, forwarding
// over live outgoing interfaces, the two shared-tree→SPT transition
// exception rules, sender-side registering, and receiver-side SPT
// switching.
func (r *Router) handleData(in *netsim.Iface, pkt *packet.Packet) {
	g := pkt.Dst
	if !g.IsMulticast() {
		r.forwardUnicast(pkt)
		return
	}
	if g.IsLinkLocalMulticast() {
		return
	}
	s := pkt.Src
	// Sender side (§3): if the source is a directly-connected host and we
	// are the DR for its subnet, announce it to the RP(s) with registers.
	if r.sourceIsLocal(in, s) && r.IsDR(in) {
		r.senderSide(in, s, g, pkt)
	}
	r.forwardData(in, pkt)
}

// sourceIsLocal reports whether s lives on the subnet of the arrival
// interface.
func (r *Router) sourceIsLocal(in *netsim.Iface, s addr.IP) bool {
	return in.Addr != 0 && unicast.LinkPrefix(in.Addr).Contains(s)
}

// senderSide sends a register (the data packet encapsulated, §3) to every
// RP that has not yet built native (S,G) state through us ("each source
// registers and sends data packets toward each of the RPs", §3.9).
func (r *Router) senderSide(in *netsim.Iface, s, g addr.IP, pkt *packet.Packet) {
	rps := r.RPsFor(g)
	if len(rps) == 0 {
		return
	}
	now := r.now()
	sg := r.MFIB.SG(r.sourceKey(s), g)
	// With a single RP, any live (S,G) branch means that RP has joined and
	// native forwarding works; the per-interface check below would be
	// fooled by equal-cost-path asymmetry (the RP's join can arrive on a
	// different interface than our route toward the RP).
	nativeServed := sg != nil && len(rps) == 1 && !sg.OIFEmpty(now)
	for _, rp := range rps {
		if r.Node.OwnsAddr(rp) {
			// We are the RP and the DR: rendezvous locally, no message.
			r.rpAcceptSource(r.sourceKey(s), g, in)
			continue
		}
		rt, ok := r.rpfc.Lookup(rp)
		if !ok {
			continue
		}
		// Registers stop once the RP's join built (S,G) state that pulls
		// native data out the interface toward that RP.
		if nativeServed || (sg != nil && sg.HasOIF(rt.Iface, now)) {
			continue
		}
		var err error
		r.regInner, err = pkt.MarshalTo(r.regInner[:0])
		if err != nil {
			continue
		}
		r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeRegister)
		r.enc.Buf = (&pimmsg.Register{Inner: r.regInner}).MarshalTo(r.enc.Buf)
		nextHop := rt.NextHop
		if nextHop == 0 {
			nextHop = rp
		}
		r.Node.Send(rt.Iface, r.enc.Packet(in.Addr, rp, packet.ProtoPIMData, packet.DefaultTTL), nextHop)
		r.Metrics.Inc(metrics.CtrlRegister)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: now, Kind: telemetry.RegisterSend, Router: r.Node.ID,
				Iface: rt.Iface.Index, Epoch: r.epoch, Source: r.sourceKey(s), Group: g,
			})
		}
	}
}

// forwardData applies the §3.5 forwarding rules to a multicast datagram.
func (r *Router) forwardData(in *netsim.Iface, pkt *packet.Packet) {
	s, g := r.sourceKey(pkt.Src), pkt.Dst
	wc := r.MFIB.Wildcard(g)
	sg := r.MFIB.SG(s, g)

	if sg != nil {
		iifMatch := in == sg.IIF || (sg.IIF == nil && r.sourceIsLocal(in, pkt.Src))
		if iifMatch {
			if !sg.SPTBit {
				// §3.5 exception 2: first packet arriving on the SPT
				// interface completes the transition...
				sg.SPTBit = true
				if r.tel != nil {
					r.tel.Publish(telemetry.Event{
						At: r.now(), Kind: telemetry.SPTSwitch, Router: r.Node.ID,
						Iface: -1, Epoch: r.epoch, Source: s, Group: g, Value: 1,
					})
				}
				// ...and §3.3: prune the source off the shared tree if the
				// two trees diverge here.
				if wc != nil && sg.IIF != wc.IIF {
					r.sendJoinPrune(wc.IIF, wc.UpstreamNeighbor, g, nil,
						[]pimmsg.Addr{{Addr: s, RP: true}})
				}
			}
			r.emit(pkt, in, r.unionOIFs(sg, wc, s, in), false)
			return
		}
		if !sg.SPTBit && wc != nil && (in == wc.IIF || wc.IIF == nil) {
			// §3.5 exception 1: during the transition the packet is
			// forwarded according to (*,G).
			r.emit(pkt, in, r.sharedOIFs(wc, s, in), true)
			return
		}
		r.Metrics.Inc(metrics.DataDropped)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.RPFDrop, Router: r.Node.ID,
				Iface: in.Index, Epoch: r.epoch, Source: s, Group: g,
			})
		}
		return
	}

	if wc != nil {
		atRP := wc.IIF == nil
		if in == wc.IIF || atRP {
			r.emit(pkt, in, r.sharedOIFs(wc, s, in), true)
			r.considerSPTSwitch(in, s, g, wc)
			return
		}
		r.Metrics.Inc(metrics.DataDropped)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.RPFDrop, Router: r.Node.ID,
				Iface: in.Index, Epoch: r.epoch, Source: s, Group: g,
			})
		}
		return
	}
	r.Metrics.Inc(metrics.DataNoState)
	if r.tel != nil {
		iface := -1
		if in != nil {
			iface = in.Index
		}
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.NoState, Router: r.Node.ID,
			Iface: iface, Epoch: r.epoch, Source: s, Group: g,
		})
	}
}

// sharedOIFs is the (*,G) outgoing list minus effective negative-cache
// prunes for s (§3.3 fn. 11). The computation lives in internal/mfib so
// the compiled fast path and the reference path share one implementation.
func (r *Router) sharedOIFs(wc *mfib.Entry, s addr.IP, except *netsim.Iface) []*netsim.Iface {
	return mfib.SharedForward(wc, r.MFIB.SGRpt(s, wc.Key.Group), r.now(), except)
}

// unionOIFs is the (S,G) list united with the inherited shared-tree list —
// the race-free equivalent of §3.3's copy-at-creation (DESIGN.md §4).
func (r *Router) unionOIFs(sg, wc *mfib.Entry, s addr.IP, except *netsim.Iface) []*netsim.Iface {
	var rpt *mfib.Entry
	if wc != nil {
		rpt = r.MFIB.SGRpt(s, wc.Key.Group)
	}
	return mfib.UnionForward(sg, wc, rpt, r.now(), except)
}

// emit transmits the packet over each outgoing interface with a TTL
// decrement. shared marks forwarding off the (*,G) list — the list
// negative-cache subtraction applies to — so the invariant checker can
// assert no pruned interface appears in the fan-out.
func (r *Router) emit(pkt *packet.Packet, in *netsim.Iface, oifs []*netsim.Iface, shared bool) {
	if len(oifs) == 0 {
		return
	}
	fwd, ok := pkt.Forwarded()
	if !ok {
		return
	}
	for _, out := range oifs {
		if out == in {
			continue
		}
		r.Node.Send(out, fwd, 0)
		r.Metrics.Inc(metrics.DataForwarded)
		if r.tel != nil {
			var sharedFlag int64
			if shared {
				sharedFlag = 1
			}
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.DataForward, Router: r.Node.ID,
				Iface: out.Index, Epoch: r.epoch,
				Source: r.sourceKey(pkt.Src), Group: pkt.Dst, Value: sharedFlag,
			})
		}
	}
}

// considerSPTSwitch applies the §3.3 receiver-side policy: a router with
// directly-connected members seeing shared-tree traffic from a source it
// has no (S,G) state for may join that source's shortest-path tree.
func (r *Router) considerSPTSwitch(in *netsim.Iface, s, g addr.IP, wc *mfib.Entry) {
	if r.Cfg.SPTPolicy == SwitchNever {
		return
	}
	if !r.hasLocalMember(wc) {
		return
	}
	if s == 0 || r.MFIB.SG(s, g) != nil {
		return
	}
	now := r.now()
	if r.Cfg.SPTPolicy == SwitchThreshold {
		k := mfib.Key{Source: s, Group: g}
		c := r.sptCount[k]
		if c == nil || now-c.windowStart > r.Cfg.SPTWindow {
			c = &sptCounter{windowStart: now}
			r.sptCount[k] = c
		}
		c.packets++
		if c.packets < r.Cfg.SPTPackets {
			return
		}
		delete(r.sptCount, k)
	}
	r.initiateSPTSwitch(s, g, wc)
}

func (r *Router) hasLocalMember(e *mfib.Entry) bool {
	for i := 0; i < e.OIFCount(); i++ {
		if e.OIFAt(i).LocalMember {
			return true
		}
	}
	return false
}

// initiateSPTSwitch creates the (Sn,G) entry with a cleared SPT bit, copies
// the shared-tree outgoing interfaces ("all local shared tree branches are
// replicated in the new shortest path tree", §3.3), and sends a join toward
// the source.
func (r *Router) initiateSPTSwitch(s, g addr.IP, wc *mfib.Entry) {
	now := r.now()
	iif, up, ok := r.rpf(s)
	if !ok || up == 0 {
		return // no route toward the source, or it is directly connected
	}
	sg, created := r.upsert(mfib.Key{Source: s, Group: g}, now)
	if !created {
		return
	}
	sg.RP = wc.RP
	sg.IIF, sg.UpstreamNeighbor = iif, up
	sg.SPTBit = false
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: now, Kind: telemetry.IIFSet, Router: r.Node.ID, Iface: iif.Index,
			Epoch: r.epoch, Source: s, Group: g, Value: entryKind(sg.Key),
		})
		r.tel.Publish(telemetry.Event{
			At: now, Kind: telemetry.SPTSwitch, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Source: s, Group: g, Value: 0,
		})
	}
	// "All local shared tree branches are replicated in the new shortest
	// path tree" (§3.3): the local-member interfaces move over; downstream
	// join-driven branches keep receiving through the inherited shared
	// list until they switch themselves.
	for i := 0; i < wc.OIFCount(); i++ {
		if o := wc.OIFAt(i); o.LocalMember && o.Iface != iif {
			sg.AddLocalOIF(o.Iface)
		}
	}
	_ = now
	r.sendJoinPrune(sg.IIF, sg.UpstreamNeighbor, g, []pimmsg.Addr{{Addr: s}}, nil)
}
