package core

import (
	"slices"

	"pim/internal/addr"
	"pim/internal/metrics"
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimmsg"
	"pim/internal/rpf"
	"pim/internal/telemetry"
	"pim/internal/unicast"
)

// Router is one PIM sparse-mode router instance.
type Router struct {
	Node    *netsim.Node
	Cfg     Config
	Unicast unicast.Router
	MFIB    *mfib.Table
	Metrics *metrics.Counters

	// tel is the telemetry bus from Config.Telemetry; nil disables all
	// publication (every emit site is a single nil-check branch).
	tel *telemetry.Bus

	// rpfc memoizes Unicast lookups for the per-packet paths (RPF checks,
	// register targeting, unicast relay), invalidated by table generation.
	rpfc *rpf.Cache

	// rpMap holds group -> ordered RP candidates (config plus host RPMap
	// messages); currentRP tracks which candidate the receiver side of this
	// router has joined toward (§3.9: "receivers only join toward a single
	// RP").
	rpMap     map[addr.IP][]addr.IP
	currentRP map[addr.IP]addr.IP
	// rpTimer fires RP fail-over for groups with local members (§3.9).
	rpTimer map[addr.IP]*netsim.Timer

	// neighbors[ifaceIndex][address] = expiry, learned from PIM queries.
	neighbors map[int]map[addr.IP]netsim.Time

	// sptCount tracks §3.3 threshold switching per (S,G).
	sptCount map[mfib.Key]*sptCounter

	// Dynamic RP discovery (§4): flooded RP-report state.
	rpReportSeq  uint32
	rpReportSeqs map[addr.IP]uint32
	learnedRP    map[addr.IP]learnedMapping

	// enc is the reusable control-message encode workspace: every Node.Send
	// site appends envelope+body into enc.Buf and sends enc.Packet, so warm
	// periodic refresh allocates nothing. Safe because Send copies the
	// payload into its transmit frame before returning. regInner is the
	// second buffer the register path needs for the encapsulated inner
	// datagram (it is alive while enc.Buf is being built around it).
	enc      packet.Scratch
	regInner []byte
	// jpDec is the join/prune decode scratch; valid only within one
	// handleJoinPrune call (the record slices are recycled across calls).
	jpDec pimmsg.JoinPrune
	// jpBatch/jpMsg/rptScratch are the periodic-refresh batching scratches
	// (joinprune.go): destination batches, the outgoing message shell, and
	// the per-group rpt-prune source list. All reused across refreshes so
	// the steady-state batching path allocates nothing.
	jpBatch    []jpDest
	jpMsg      pimmsg.JoinPrune
	rptScratch []addr.IP

	started bool
	// epoch invalidates scheduled closures across Stop/Restart: every timer
	// body is wrapped to fire only if the epoch it was scheduled under is
	// still current, so a crashed incarnation's callbacks become inert
	// instead of mutating the fresh state of the next one.
	epoch uint64
	// onChangeHooked: Unicast.OnChange registration is append-only, so the
	// callback is installed once and gated on started instead of being
	// re-registered per Start.
	onChangeHooked bool
}

// learnedMapping is a cached group→RP mapping from an RP-report.
type learnedMapping struct {
	rp      addr.IP
	expires netsim.Time
}

type sptCounter struct {
	windowStart netsim.Time
	packets     int
}

// New constructs a PIM-SM router bound to a node and a unicast routing view.
func New(nd *netsim.Node, cfg Config, uni unicast.Router) *Router {
	cfg.fillDefaults()
	r := &Router{
		Node:         nd,
		Cfg:          cfg,
		Unicast:      uni,
		tel:          cfg.Telemetry,
		rpfc:         rpf.New(uni),
		MFIB:         mfib.NewTable(),
		Metrics:      metrics.New(),
		rpMap:        map[addr.IP][]addr.IP{},
		currentRP:    map[addr.IP]addr.IP{},
		rpTimer:      map[addr.IP]*netsim.Timer{},
		neighbors:    map[int]map[addr.IP]netsim.Time{},
		sptCount:     map[mfib.Key]*sptCounter{},
		rpReportSeqs: map[addr.IP]uint32{},
		learnedRP:    map[addr.IP]learnedMapping{},
	}
	for g, rps := range cfg.RPMapping {
		r.rpMap[g] = append([]addr.IP(nil), rps...)
	}
	return r
}

// Start registers packet handlers and begins the periodic machinery.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EpochStart, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Value: int64(r.MFIB.Len()),
		})
	}
	r.Node.Handle(packet.ProtoPIM, netsim.HandlerFunc(r.handlePIM))
	r.Node.Handle(packet.ProtoPIMData, netsim.HandlerFunc(r.handlePIM))
	r.Node.Handle(packet.ProtoUDP, netsim.HandlerFunc(r.handleData))
	if !r.onChangeHooked {
		r.onChangeHooked = true
		r.Unicast.OnChange(func() {
			if r.started {
				r.routesChanged()
			}
		})
	}

	var refresh func()
	refresh = func() {
		r.maintain()
		r.periodicRefresh()
		r.after(r.Cfg.JoinPruneInterval, refresh)
	}
	// Deterministic per-router phase offset: desynchronized refreshes give
	// §3.7 join suppression a chance to work on shared LANs.
	offset := netsim.Time(uint64(r.Node.ID)*1000003) % (r.Cfg.JoinPruneInterval / 2)
	r.after(offset, refresh)

	var query func()
	query = func() {
		r.expireNeighbors()
		r.sendQueries()
		r.after(r.Cfg.QueryInterval, query)
	}
	r.after(0, query)

	var rpBeacon func()
	rpBeacon = func() {
		r.originateRPReach()
		r.originateRPReport()
		r.after(r.Cfg.RPReachInterval, rpBeacon)
	}
	r.after(0, rpBeacon)
}

// Stop detaches the router from its node and discards every piece of soft
// state: MFIB entries, neighbor liveness, joined-RP choices, learned
// RP-report mappings, SPT counters, and all pending timers. Scheduled
// closures from this incarnation are invalidated by the epoch bump, so none
// of them can touch the fresh maps. Static configuration, the metrics
// ledger, and the RP-report sequence number survive — resetting the
// sequence number would make peers discard the next incarnation's reports
// as replays.
func (r *Router) Stop() {
	if !r.started {
		return
	}
	r.started = false
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EpochEnd, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Value: int64(r.MFIB.Len()),
		})
	}
	r.epoch++
	r.Node.Handle(packet.ProtoPIM, nil)
	r.Node.Handle(packet.ProtoPIMData, nil)
	r.Node.Handle(packet.ProtoUDP, nil)
	for _, t := range r.rpTimer {
		t.Stop()
	}
	r.rpfc = rpf.New(r.Unicast)
	r.MFIB = mfib.NewTable()
	r.rpMap = map[addr.IP][]addr.IP{}
	r.currentRP = map[addr.IP]addr.IP{}
	r.rpTimer = map[addr.IP]*netsim.Timer{}
	r.neighbors = map[int]map[addr.IP]netsim.Time{}
	r.sptCount = map[mfib.Key]*sptCounter{}
	r.rpReportSeqs = map[addr.IP]uint32{}
	r.learnedRP = map[addr.IP]learnedMapping{}
	for g, rps := range r.Cfg.RPMapping {
		r.rpMap[g] = append([]addr.IP(nil), rps...)
	}
}

// Restart brings a stopped router back with no memory of its previous
// incarnation beyond static configuration: handlers re-register and state
// is rebuilt purely from periodic soft-state refresh (§2, §3.8).
func (r *Router) Restart() {
	r.Stop()
	r.Start()
}

// after schedules fn under the current epoch: if the router is stopped or
// restarted before the timer fires, the closure is a no-op.
func (r *Router) after(d netsim.Time, fn func()) *netsim.Timer {
	ep := r.epoch
	return r.sched().After(d, func() {
		if r.epoch == ep {
			// Published past the guard: the event records a timer body that
			// actually executed, carrying the epoch it was armed under, so
			// the invariant checker can assert no dead incarnation ever acts.
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: r.now(), Kind: telemetry.TimerFire, Router: r.Node.ID,
					Iface: -1, Epoch: ep,
				})
			}
			fn()
		}
	})
}

func (r *Router) sched() *netsim.Scheduler { return r.Node.Sched() }
func (r *Router) now() netsim.Time         { return r.sched().Now() }

// SetRPMapping installs or replaces the ordered RP candidate list for a
// group (configuration path of §3, or host RPMap messages via LearnRPMap).
func (r *Router) SetRPMapping(g addr.IP, rps []addr.IP) {
	r.rpMap[g] = append([]addr.IP(nil), rps...)
}

// LearnRPMap merges a host-provided mapping (§3.1 fn. 9): unknown groups
// adopt the list; known groups keep their configuration.
func (r *Router) LearnRPMap(g addr.IP, rps []addr.IP) {
	if len(rps) == 0 {
		return
	}
	if _, ok := r.rpMap[g]; !ok {
		r.SetRPMapping(g, rps)
	}
}

// RPsFor returns the RP candidates for a group; an empty result means the
// group is not PIM sparse-mode supported (§3.1: "the router will assume
// that the group is not to be supported with PIM sparse mode"). Cached
// RP-report mappings count when no configured candidates exist.
func (r *Router) RPsFor(g addr.IP) []addr.IP {
	if rps := r.rpMap[g]; len(rps) > 0 {
		return rps
	}
	if lm, ok := r.learnedRP[g]; ok && r.now() <= lm.expires {
		return []addr.IP{lm.rp}
	}
	return nil
}

// rpFor returns the RP this router's receiver side currently uses for g:
// a configured/host-learned candidate first, then a cached RP-report
// mapping (§4).
func (r *Router) rpFor(g addr.IP) (addr.IP, bool) {
	if rp, ok := r.currentRP[g]; ok {
		return rp, true
	}
	rps := r.rpMap[g]
	if len(rps) == 0 {
		if lm, ok := r.learnedRP[g]; ok && r.now() <= lm.expires {
			r.currentRP[g] = lm.rp
			return lm.rp, true
		}
		return 0, false
	}
	r.currentRP[g] = rps[0]
	return rps[0], true
}

// IsRPFor reports whether this router owns an RP address for the group.
func (r *Router) IsRPFor(g addr.IP) bool {
	for _, rp := range r.rpMap[g] {
		if r.Node.OwnsAddr(rp) {
			return true
		}
	}
	return false
}

// sourceKey normalizes a source address to the granularity the router
// keeps (S,G) state at: the host address, or the /24 subnet when §4 source
// aggregation is enabled.
func (r *Router) sourceKey(s addr.IP) addr.IP {
	if r.Cfg.AggregateSources {
		return s & addr.Mask(24)
	}
	return s
}

// rpf resolves the RPF interface and upstream neighbor toward a target
// (source or RP). ok is false when no route exists. A zero upstream with
// ok=true means the target is directly connected (or is this node).
func (r *Router) rpf(target addr.IP) (iif *netsim.Iface, upstream addr.IP, ok bool) {
	if r.Node.OwnsAddr(target) {
		return nil, 0, true
	}
	rt, ok := r.rpfc.Lookup(target)
	if !ok {
		return nil, 0, false
	}
	up := rt.NextHop
	if up == 0 {
		// Directly connected subnet. If the target itself is a PIM
		// neighbor (an RP sharing our LAN), address it; if it is a host
		// (a directly-connected source), there is no upstream router.
		if r.isNeighbor(rt.Iface, target) {
			up = target
		}
	}
	return rt.Iface, up, true
}

// --- Neighbor discovery and DR election (§3.7) ---

func (r *Router) sendQueries() {
	q := pimmsg.Query{HoldTime: uint16(3*r.Cfg.QueryInterval/netsim.Second + 15)}
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeQuery)
	r.enc.Buf = q.MarshalTo(r.enc.Buf)
	for _, ifc := range r.Node.Ifaces {
		if !ifc.Up() || ifc.Addr == 0 {
			continue
		}
		r.Node.Send(ifc, r.enc.Packet(ifc.Addr, addr.AllRouters, packet.ProtoPIM, 1), 0)
		r.Metrics.Inc(metrics.CtrlQuery)
	}
}

func (r *Router) handleQuery(in *netsim.Iface, src addr.IP, body []byte) {
	var q pimmsg.Query
	if err := pimmsg.UnmarshalQueryInto(&q, body); err != nil {
		return
	}
	byAddr := r.neighbors[in.Index]
	if byAddr == nil {
		byAddr = map[addr.IP]netsim.Time{}
		r.neighbors[in.Index] = byAddr
	}
	if _, known := byAddr[src]; !known && r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.NeighborUp, Router: r.Node.ID,
			Iface: in.Index, Epoch: r.epoch, Source: src,
		})
	}
	byAddr[src] = r.now() + netsim.Time(q.HoldTime)*netsim.Second
}

func (r *Router) expireNeighbors() {
	now := r.now()
	// Collect expiries and process them in (iface, address) order: a sweep
	// can expire several neighbors at once (simultaneous link failures), and
	// publishing in map-iteration order would make the telemetry stream
	// nondeterministic.
	type expiry struct {
		idx int
		a   addr.IP
	}
	var dead []expiry
	for idx, byAddr := range r.neighbors {
		for a, deadline := range byAddr {
			if now > deadline {
				dead = append(dead, expiry{idx, a})
			}
		}
	}
	slices.SortFunc(dead, func(x, y expiry) int {
		if x.idx != y.idx {
			return x.idx - y.idx
		}
		switch {
		case x.a < y.a:
			return -1
		case x.a > y.a:
			return 1
		}
		return 0
	})
	for _, e := range dead {
		delete(r.neighbors[e.idx], e.a)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: now, Kind: telemetry.NeighborDown, Router: r.Node.ID,
				Iface: e.idx, Epoch: r.epoch, Source: e.a,
			})
		}
	}
}

func (r *Router) isNeighbor(ifc *netsim.Iface, a addr.IP) bool {
	byAddr := r.neighbors[ifc.Index]
	if byAddr == nil {
		return false
	}
	deadline, ok := byAddr[a]
	return ok && r.now() <= deadline
}

// IsDR reports whether this router is the designated router on the
// interface: the highest address among itself and its live PIM neighbors
// ("the designated router is the one that takes responsibility for serving
// the members on the LAN").
func (r *Router) IsDR(ifc *netsim.Iface) bool {
	now := r.now()
	for a, deadline := range r.neighbors[ifc.Index] {
		if now <= deadline && a > ifc.Addr {
			return false
		}
	}
	return true
}

// Neighbors returns the live PIM neighbors on an interface, sorted.
func (r *Router) Neighbors(ifc *netsim.Iface) []addr.IP {
	now := r.now()
	var out []addr.IP
	for a, deadline := range r.neighbors[ifc.Index] {
		if now <= deadline {
			out = append(out, a)
		}
	}
	slices.Sort(out)
	return out
}

// --- PIM message dispatch ---

func (r *Router) handlePIM(in *netsim.Iface, pkt *packet.Packet) {
	// Unicast PIM packets (registers) not addressed to us are forwarded
	// toward their destination like any unicast datagram.
	if !pkt.Dst.IsMulticast() && !r.Node.OwnsAddr(pkt.Dst) {
		r.forwardUnicast(pkt)
		return
	}
	typ, body, err := pimmsg.Open(pkt.Payload)
	if err != nil {
		return
	}
	switch typ {
	case pimmsg.TypeQuery:
		r.handleQuery(in, pkt.Src, body)
	case pimmsg.TypeJoinPrune:
		r.handleJoinPrune(in, body)
	case pimmsg.TypeRegister:
		r.handleRegister(in, pkt, body)
	case pimmsg.TypeRPReach:
		r.handleRPReach(in, body)
	case pimmsg.TypeRPReport:
		r.handleRPReport(in, body)
	}
}

// forwardUnicast relays a unicast packet one hop along the unicast route.
func (r *Router) forwardUnicast(pkt *packet.Packet) {
	rt, ok := r.rpfc.Lookup(pkt.Dst)
	if !ok {
		return
	}
	fwd, ok := pkt.Forwarded()
	if !ok {
		return
	}
	nextHop := rt.NextHop
	if nextHop == 0 {
		nextHop = pkt.Dst
	}
	r.Node.Send(rt.Iface, fwd, nextHop)
}

// StateCount returns the number of multicast forwarding entries — the
// "state" axis of the paper's overhead comparison.
func (r *Router) StateCount() int { return r.MFIB.Len() }

// NeighborCount returns the number of live PIM neighbor entries across all
// interfaces — the recovery tests' stale-neighbor probe: after a peer's
// crash and hold-time expiry it must drop, and after the peer's restart it
// must return to the interface's true degree.
func (r *Router) NeighborCount() int {
	now := r.now()
	n := 0
	for _, byAddr := range r.neighbors {
		for _, deadline := range byAddr {
			if now <= deadline {
				n++
			}
		}
	}
	return n
}

// HandlePIMPacket is the exported PIM control entry point, used by border
// routers (internal/border) that multiplex sparse- and dense-mode protocol
// instances over one node's interfaces.
func (r *Router) HandlePIMPacket(in *netsim.Iface, pkt *packet.Packet) { r.handlePIM(in, pkt) }

// HandleDataPacket is the exported data-plane entry point (see
// HandlePIMPacket).
func (r *Router) HandleDataPacket(in *netsim.Iface, pkt *packet.Packet) { r.handleData(in, pkt) }

// HandleBorderData processes a multicast data packet that entered from a
// dense-mode region at a border router (§4 interoperation): the border acts
// as the region's designated router, registering the region-internal source
// toward the RP(s) and forwarding over any sparse-mode state whose incoming
// interface faces the region.
func (r *Router) HandleBorderData(in *netsim.Iface, pkt *packet.Packet) {
	g := pkt.Dst
	if !g.IsMulticast() || g.IsLinkLocalMulticast() {
		return
	}
	if r.IsDR(in) {
		r.senderSide(in, pkt.Src, g, pkt)
	}
	r.forwardData(in, pkt)
}
