package core_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/unicast"
)

// unicastOracle is a tiny helper shared by the hand-built LAN tests.
func unicastOracle(net *netsim.Network) *unicast.Oracle { return unicast.NewOracle(net) }

// lanFixture builds the §3.7 scenario: an upstream router U feeds a transit
// LAN with two downstream routers D1 and D2, each serving its own host LAN;
// the RP sits behind U.
//
//	rp --- U
//	       | (transit LAN)
//	  +----+----+
//	  D1        D2
//	  |          |
//	hostLAN1   hostLAN2
type lanFixture struct {
	net        *netsim.Network
	u, d1, d2  *core.Router
	rp         *core.Router
	h1, h2     *igmp.Host
	transitLAN *netsim.Link
	uLANIface  *netsim.Iface
	d1LANIface *netsim.Iface
	d2LANIface *netsim.Iface
	group      addr.IP
}

func buildLANFixture(t *testing.T) *lanFixture {
	t.Helper()
	net := netsim.NewNetwork()
	rpNode := net.AddNode("rp")
	uNode := net.AddNode("u")
	d1Node := net.AddNode("d1")
	d2Node := net.AddNode("d2")
	h1Node := net.AddNode("h1")
	h2Node := net.AddNode("h2")

	// RP—U point-to-point.
	rpIf := net.AddIface(rpNode, addr.V4(10, 200, 0, 2))
	uUp := net.AddIface(uNode, addr.V4(10, 200, 0, 1))
	net.Connect(uUp, rpIf, netsim.Millisecond)

	// Transit LAN: U, D1, D2.
	uLAN := net.AddIface(uNode, addr.V4(10, 1, 0, 3))
	d1LAN := net.AddIface(d1Node, addr.V4(10, 1, 0, 1))
	d2LAN := net.AddIface(d2Node, addr.V4(10, 1, 0, 2))
	transit := net.ConnectLAN(netsim.Millisecond, uLAN, d1LAN, d2LAN)

	// Host LANs.
	d1Host := net.AddIface(d1Node, addr.V4(10, 100, 1, 254))
	h1If := net.AddIface(h1Node, addr.V4(10, 100, 1, 1))
	net.Connect(d1Host, h1If, netsim.Millisecond)
	d2Host := net.AddIface(d2Node, addr.V4(10, 100, 2, 254))
	h2If := net.AddIface(h2Node, addr.V4(10, 100, 2, 1))
	net.Connect(d2Host, h2If, netsim.Millisecond)

	oracle := unicastOracle(net)
	group := addr.GroupForIndex(0)
	cfg := core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rpIf.Addr}}}
	f := &lanFixture{
		net: net, transitLAN: transit, group: group,
		uLANIface: uLAN, d1LANIface: d1LAN, d2LANIface: d2LAN,
	}
	attach := func(nd *netsim.Node) *core.Router {
		r := core.New(nd, cfg, oracle.RouterFor(nd))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		return r
	}
	f.rp = attach(rpNode)
	f.u = attach(uNode)
	f.d1 = attach(d1Node)
	f.d2 = attach(d2Node)
	f.h1 = igmp.NewHost(h1Node, h1If)
	f.h2 = igmp.NewHost(h2Node, h2If)
	net.Sched.RunUntil(2 * netsim.Second)
	return f
}

// TestLANPruneOverride is §3.7's core behaviour: when D1 prunes the shared
// tree on the LAN, D2 (which still has members) overrides with a join and U
// keeps forwarding onto the LAN.
func TestLANPruneOverride(t *testing.T) {
	f := buildLANFixture(t)
	f.h1.Join(f.group)
	f.h2.Join(f.group)
	f.net.Sched.RunUntil(f.net.Sched.Now() + 2*netsim.Second)

	wcU := f.u.MFIB.Wildcard(f.group)
	if wcU == nil || !wcU.HasOIF(f.uLANIface, f.net.Sched.Now()) {
		t.Fatal("U not forwarding onto the transit LAN")
	}
	// D1's member leaves: D1 multicasts a prune onto the LAN.
	f.h1.Leave(f.group)
	// Run past the override window.
	f.net.Sched.RunUntil(f.net.Sched.Now() + 3*core.DefaultPruneOverrideDelay)
	if wcU := f.u.MFIB.Wildcard(f.group); wcU == nil ||
		!wcU.HasOIF(f.uLANIface, f.net.Sched.Now()) {
		t.Fatal("D2's override join failed: U pruned the LAN")
	}
}

// TestLANPruneFinalizesWithoutOverride: when the last downstream member
// leaves, no override arrives and U stops forwarding after the window.
func TestLANPruneTakesEffectWhenLastLeaves(t *testing.T) {
	f := buildLANFixture(t)
	f.h1.Join(f.group)
	f.net.Sched.RunUntil(f.net.Sched.Now() + 2*netsim.Second)
	if wcU := f.u.MFIB.Wildcard(f.group); wcU == nil ||
		!wcU.HasOIF(f.uLANIface, f.net.Sched.Now()) {
		t.Fatal("tree did not form")
	}
	f.h1.Leave(f.group)
	f.net.Sched.RunUntil(f.net.Sched.Now() + 3*core.DefaultPruneOverrideDelay)
	wcU := f.u.MFIB.Wildcard(f.group)
	if wcU != nil && wcU.HasOIF(f.uLANIface, f.net.Sched.Now()) {
		t.Error("U still forwards onto the LAN after unopposed prune")
	}
}

// TestLANJoinSuppression: D1 and D2 both hold (*,G) with the same upstream;
// overhearing each other's periodic joins must suppress duplicates, so the
// LAN carries roughly one join per refresh period, not two.
func TestLANJoinSuppression(t *testing.T) {
	f := buildLANFixture(t)
	f.h1.Join(f.group)
	f.h2.Join(f.group)
	f.net.Sched.RunUntil(f.net.Sched.Now() + 2*netsim.Second)

	joinsBefore := f.d1.Metrics.Get("ctrl.joinprune") + f.d2.Metrics.Get("ctrl.joinprune")
	// Run five refresh periods.
	f.net.Sched.RunUntil(f.net.Sched.Now() + 5*core.DefaultJoinPruneInterval)
	joins := f.d1.Metrics.Get("ctrl.joinprune") + f.d2.Metrics.Get("ctrl.joinprune") - joinsBefore
	// Without suppression both D routers refresh every period (10 total);
	// with suppression one of them stays quiet most periods.
	if joins > 7 {
		t.Errorf("join suppression ineffective: %d joins in 5 periods", joins)
	}
	if joins == 0 {
		t.Error("no refreshes at all")
	}
}

// newQuerier wires a querier to a router (shared by hand-built tests).
func newQuerier(nd *netsim.Node, r *core.Router) *igmp.Querier {
	q := igmp.NewQuerier(nd)
	q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
	q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
	q.OnRPMap = func(g addr.IP, rps []addr.IP) { r.LearnRPMap(g, rps) }
	return q
}
