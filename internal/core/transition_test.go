package core_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// TestNoLossDuringSPTTransition verifies the §3.3/§3.5 guarantee: the SPT
// bit machinery "minimizes the chance of losing data packets during the
// transition" — a steady flow must arrive gap-free while every receiver
// migrates from the shared tree to the source tree.
func TestNoLossDuringSPTTransition(t *testing.T) {
	sim, dep, receiver, sender, group := fig5Topology(t, core.SwitchImmediate)
	_ = dep
	// Steady 1 packet per 200 ms across the whole transition window.
	const n = 50
	for i := 0; i < n; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(200 * netsim.Millisecond)
	}
	got := receiver.Received[group]
	if got < n {
		t.Errorf("lost packets during SPT transition: %d of %d", got, n)
	}
	// Duplicates are tolerated only briefly (shared+SPT overlap).
	if got > n+3 {
		t.Errorf("excess duplicates during transition: %d of %d", got, n)
	}
}

// TestNegativeCacheExpiresWhenSPTDies: after the receiver's (S,G) state
// decays (receiver leaves), the RP's negative cache must expire too, so a
// re-joining receiver gets the source via the shared tree again.
func TestNegativeCacheExpiryRestoresSharedTreeFlow(t *testing.T) {
	sim, dep, receiver, sender, group := fig5Topology(t, core.SwitchImmediate)
	src := sender.Iface.Addr
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if dep.Routers[2].MFIB.SGRpt(src, group) == nil {
		t.Fatal("negative cache never formed")
	}
	// Receiver leaves; all receiver-driven state must decay.
	receiver.Leave(group)
	sim.Run(8 * core.DefaultJoinPruneInterval)
	if rpt := dep.Routers[2].MFIB.SGRpt(src, group); rpt != nil {
		now := sim.Net.Sched.Now()
		if !rpt.OIFEmpty(now) {
			t.Error("negative cache still holds live prunes after receiver left")
		}
	}
	// Receiver re-joins: the shared tree must deliver again (the RP keeps
	// (S,G) state pulling the live source, §3.10).
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	before := receiver.Received[group]
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if receiver.Received[group]-before < 4 {
		t.Errorf("re-joined receiver got %d of 5", receiver.Received[group]-before)
	}
}

// TestTwoReceiversOneSwitches: a receiver that stays on the shared tree
// keeps receiving while another switches to the SPT — the §3.3 independence
// of per-DR policy ("the first-hop routers of the receivers can make this
// decision independently").
func TestTwoReceiversIndependentPolicies(t *testing.T) {
	// A(switcher) - B - C(RP) - D(sender), E(stayer) - B, B-D shortcut.
	g := topology.New(5)
	g.AddEdge(0, 1, 1) // A-B
	g.AddEdge(1, 2, 1) // B-C
	g.AddEdge(2, 3, 1) // C-D
	g.AddEdge(1, 3, 1) // B-D shortcut
	g.AddEdge(4, 1, 1) // E-B
	sim := scenario.Build(g)
	switcher := sim.AddHost(0)
	stayer := sim.AddHost(4)
	sender := sim.AddHost(3)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(2)
	// Deploy manually so the two receiver DRs get different policies.
	depCfg := func(p core.SPTPolicy) core.Config {
		return core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rp}}, SPTPolicy: p}
	}
	// scenario.Deploy applies one config to all; emulate mixed policy by
	// making the global policy SwitchImmediate and pinning the stayer's DR
	// to SwitchNever via a second deployment pass is not possible — so wire
	// routers individually through the scenario's unicast views.
	routers := make([]*core.Router, g.N())
	for i, nd := range sim.Routers {
		cfg := depCfg(core.SwitchImmediate)
		if i == 4 {
			cfg = depCfg(core.SwitchNever)
		}
		r := core.New(nd, cfg, sim.UnicastFor(i))
		q := newQuerier(nd, r)
		r.Start()
		q.Start()
		routers[i] = r
	}
	sim.Run(2 * netsim.Second)
	switcher.Join(group)
	stayer.Join(group)
	sim.Run(2 * netsim.Second)
	for i := 0; i < 10; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	src := sender.Iface.Addr
	if routers[0].MFIB.SG(src, group) == nil {
		t.Error("switcher's DR did not build (S,G)")
	}
	if routers[4].MFIB.SG(src, group) != nil {
		t.Error("stayer's DR built (S,G) despite SwitchNever")
	}
	if switcher.Received[group] < 8 {
		t.Errorf("switcher got %d of 10", switcher.Received[group])
	}
	if stayer.Received[group] < 8 {
		t.Errorf("stayer got %d of 10", stayer.Received[group])
	}
}

// TestSenderAlsoMember: a host that both sends and belongs to the group —
// its own packets must not loop back (no self-delivery) but other members
// receive them.
func TestSenderAlsoMember(t *testing.T) {
	sim, dep, receiver, sender, group, _ := fig34Topology(t, scenario.UseOracle)
	_ = dep
	receiver.Join(group)
	sender.Join(group)
	sim.Run(2 * netsim.Second)
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if got := receiver.Received[group]; got < 4 {
		t.Errorf("receiver got %d of 5", got)
	}
	// At most one echo is tolerable: the very first packet can return via
	// the RP before the DR's (S,G) state exists to RPF-drop it (the same
	// transient exists in deployed PIM-SM). Steady state must be echo-free.
	if sender.Received[group] > 1 {
		t.Errorf("sender received %d copies of its own packets", sender.Received[group])
	}
}

// TestTwoGroupsIsolated: traffic and state for one group never leak into
// another.
func TestTwoGroupsIsolated(t *testing.T) {
	g := topology.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	sim := scenario.Build(g)
	r0 := sim.AddHost(0)
	r2 := sim.AddHost(2)
	sender := sim.AddHost(1)
	sim.FinishUnicast(scenario.UseOracle)
	g1, g2 := addr.GroupForIndex(0), addr.GroupForIndex(1)
	sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: map[addr.IP][]addr.IP{
		g1: {sim.RouterAddr(1)},
		g2: {sim.RouterAddr(1)},
	}}))
	sim.Run(2 * netsim.Second)
	r0.Join(g1)
	r2.Join(g2)
	sim.Run(2 * netsim.Second)
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, g1, 64)
		scenario.SendData(sender, g2, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if r0.Received[g1] < 4 || r2.Received[g2] < 4 {
		t.Errorf("deliveries: g1=%d g2=%d", r0.Received[g1], r2.Received[g2])
	}
	if r0.Received[g2] != 0 || r2.Received[g1] != 0 {
		t.Errorf("cross-group leak: r0[g2]=%d r2[g1]=%d", r0.Received[g2], r2.Received[g1])
	}
}
