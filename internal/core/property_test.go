package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// TestDeliveryExactness is the core delivery property over random topologies
// and memberships: after the tree settles, every member receives every
// packet exactly once and every non-member receives nothing.
func TestDeliveryExactness(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			g := topology.Random(topology.GenConfig{Nodes: 15, Degree: 3}, rng)
			sim := scenario.Build(g)
			hosts := make([]*hostAlias, 6)
			routers := topology.PickDistinct(15, 7, rng)
			for i := range hosts {
				hosts[i] = sim.AddHost(routers[i])
			}
			sender := sim.AddHost(routers[6])
			sim.FinishUnicast(scenario.UseOracle)
			group := addr.GroupForIndex(0)
			rp := sim.RouterAddr(routers[rng.Intn(6)])
			policy := core.SPTPolicy(rng.Intn(2)) // immediate or never
			sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
				RPMapping: map[addr.IP][]addr.IP{group: {rp}},
				SPTPolicy: policy,
			}))
			sim.Run(2 * netsim.Second)
			members := map[int]bool{}
			for i, h := range hosts {
				if rng.Intn(2) == 0 {
					h.Join(group)
					members[i] = true
				}
			}
			sim.Run(2 * netsim.Second)
			// Settle the tree with a few warm-up packets (registers and the
			// SPT transition may duplicate or route via the RP).
			for i := 0; i < 3; i++ {
				scenario.SendData(sender, group, 64)
				sim.Run(netsim.Second)
			}
			sim.Run(5 * netsim.Second)
			before := make([]int, len(hosts))
			for i, h := range hosts {
				before[i] = h.Received[group]
			}
			const n = 10
			for i := 0; i < n; i++ {
				scenario.SendData(sender, group, 64)
				sim.Run(netsim.Second)
			}
			for i, h := range hosts {
				got := h.Received[group] - before[i]
				if members[i] && got != n {
					t.Errorf("member host %d received %d of %d (policy %v)", i, got, n, policy)
				}
				if !members[i] && got != 0 {
					t.Errorf("non-member host %d received %d packets", i, got)
				}
			}
		})
	}
}

// TestStateQuiescesToZero: whatever random membership history occurred, once
// every member leaves and holdtimes pass, no multicast state remains
// anywhere (soft-state cleanliness).
func TestStateQuiescesToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := topology.Random(topology.GenConfig{Nodes: 12, Degree: 3}, rng)
	sim := scenario.Build(g)
	var hosts []*hostAlias
	for _, r := range topology.PickDistinct(12, 5, rng) {
		hosts = append(hosts, sim.AddHost(r))
	}
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
		RPMapping:         map[addr.IP][]addr.IP{group: {sim.RouterAddr(0)}},
		JoinPruneInterval: 15 * netsim.Second,
	})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)
	// Random join/leave/send history.
	joined := make([]bool, len(hosts))
	for step := 0; step < 30; step++ {
		i := rng.Intn(len(hosts))
		if joined[i] {
			hosts[i].Leave(group)
		} else {
			hosts[i].Join(group)
		}
		joined[i] = !joined[i]
		scenario.SendData(hosts[rng.Intn(len(hosts))], group, 64)
		sim.Run(3 * netsim.Second)
	}
	// Everyone leaves; run out all holdtimes (3×15 s) plus slack.
	for i, h := range hosts {
		if joined[i] {
			h.Leave(group)
		}
	}
	sim.Run(8 * 3 * 15 * netsim.Second)
	if n := dep.TotalState(); n != 0 {
		for i, r := range dep.Routers {
			if r.StateCount() > 0 {
				t.Logf("router %d: %d entries", i, r.StateCount())
			}
		}
		t.Fatalf("state did not quiesce: %d entries remain", n)
	}
}
