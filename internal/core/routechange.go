package core

import (
	"pim/internal/mfib"
	"pim/internal/pimmsg"
)

// routesChanged is the §3.8 adaptation: when unicast routing changes, every
// entry's RPF interface is re-checked. A moved incoming interface is
// removed from the outgoing list if it appears there, a join is sent out
// the new interface to draw the distribution tree over it, and a prune is
// sent over the old interface (if still operational) to release the stale
// branch.
func (r *Router) routesChanged() {
	now := r.now()
	r.MFIB.ForEach(func(e *mfib.Entry) {
		target := upstreamTarget(e)
		if target == 0 || r.Node.OwnsAddr(target) {
			return
		}
		newIIF, newUp, ok := r.rpf(target)
		if !ok {
			// Target unreachable: keep the state; soft-state expiry or RP
			// fail-over (§3.9) resolves it.
			return
		}
		if newIIF == e.IIF && newUp == e.UpstreamNeighbor {
			return
		}
		oldIIF, oldUp := e.IIF, e.UpstreamNeighbor
		e.IIF, e.UpstreamNeighbor = newIIF, newUp
		e.Touch()

		// Negative caches just follow the new shared-tree interface; their
		// prune refreshes flow along the new path on the next cycle.
		if e.Key.RPBit && !e.Wildcard {
			return
		}

		// "If the new incoming interface appears in the outgoing interface
		// list, it is deleted from the outgoing list." (§3.8)
		if newIIF != nil {
			e.RemoveOIF(newIIF)
		}
		if e.OIFEmpty(now) {
			r.checkEmptyOIF(e)
			return
		}

		a := pimmsg.Addr{Addr: target, WC: e.Wildcard, RP: e.Wildcard}
		// Join out the new interface so upstream routers expect us.
		r.sendJoinPrune(newIIF, newUp, e.Key.Group, []pimmsg.Addr{a}, nil)
		// Prune over the old interface if the link still works.
		if oldIIF != nil && oldUp != 0 && oldIIF.Up() {
			r.sendJoinPrune(oldIIF, oldUp, e.Key.Group, nil, []pimmsg.Addr{a})
		}
	})
}
