package core

import (
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/telemetry"
)

// entryKind maps an MFIB key to the telemetry entry-kind value carried by
// EntryCreate/EntryExpire events.
func entryKind(k mfib.Key) int64 {
	switch {
	case k.Source == 0 && k.RPBit:
		return telemetry.EntryWC
	case k.RPBit:
		return telemetry.EntryRpt
	default:
		return telemetry.EntrySG
	}
}

// upsert wraps MFIB.Upsert, publishing EntryCreate on first installation.
// All entry creation in the engine goes through here so the telemetry stream
// sees every forwarding-state birth.
func (r *Router) upsert(k mfib.Key, now netsim.Time) (*mfib.Entry, bool) {
	e, created := r.MFIB.Upsert(k, now)
	if created && r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: now, Kind: telemetry.EntryCreate, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Source: k.Source, Group: k.Group, Value: entryKind(k),
		})
	}
	return e, created
}

// deleteEntry wraps MFIB.Delete, publishing EntryExpire when the key existed.
func (r *Router) deleteEntry(k mfib.Key) {
	if r.tel != nil && r.MFIB.Get(k) != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EntryExpire, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Source: k.Source, Group: k.Group, Value: entryKind(k),
		})
	}
	r.MFIB.Delete(k)
}
