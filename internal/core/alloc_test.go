package core

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/unicast"
)

// TestQueryRefreshZeroAlloc pins the warm periodic-query send path —
// append-encode into the router's scratch, pooled transmit frame, delivery,
// into-decode, neighbor-table refresh — at zero heap allocations per cycle.
// A regression here means an encoder started copying, a send site stopped
// using the shared scratch, or frame recycling broke (DESIGN.md §13).
//
// The warm loop is long deliberately: timing-wheel slots grow their backing
// arrays on first touch, and the delivery deadlines walk the slot space, so
// the steady state is only reached once every slot on the cadence's orbit
// has capacity. The measured window stays well inside one QueryInterval so
// no periodic tick (whose re-arm legitimately allocates a timer) fires.
func TestQueryRefreshZeroAlloc(t *testing.T) {
	prev := netsim.SetFramePool(true)
	defer netsim.SetFramePool(prev)

	net := netsim.NewNetwork()
	na := net.AddNode("a")
	nb := net.AddNode("b")
	ia := net.AddIface(na, addr.V4(10, 0, 0, 1))
	ib := net.AddIface(nb, addr.V4(10, 0, 0, 2))
	net.Connect(ia, ib, netsim.Millisecond)
	oracle := unicast.NewOracle(net)

	ra := New(na, Config{}, oracle.RouterFor(na))
	rb := New(nb, Config{}, oracle.RouterFor(nb))
	ra.Start()
	rb.Start()
	net.Sched.RunUntil(2 * netsim.Second)

	cycle := func() {
		ra.sendQueries()
		rb.sendQueries()
		net.Sched.RunUntil(net.Sched.Now() + 10*netsim.Millisecond)
	}
	for i := 0; i < 1500; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("warm query refresh cycle: %.2f allocs, want 0", allocs)
	}
}

// TestJoinPruneRefreshZeroAlloc pins the warm periodic join/prune refresh —
// the batching walk over the MFIB, per-destination record assembly in the
// router's reusable jpBatch/jpMsg scratch, append-encode, pooled transmit,
// and the receivers' into-decode plus oif refresh — at zero heap
// allocations per cycle. This is the steady-state control-plane path every
// sparse-mode router runs every JoinPruneInterval for every entry, so a
// single allocation here multiplies by the whole internet (DESIGN.md §16).
//
// The topology is a pure shared-tree line (member — a — b — c=RP) with
// several joined groups, so the refresh carries multiple group records per
// message and the grab/add batching paths are all exercised; nothing
// triggers non-periodic sends mid-measure.
func TestJoinPruneRefreshZeroAlloc(t *testing.T) {
	prev := netsim.SetFramePool(true)
	defer netsim.SetFramePool(prev)

	net := netsim.NewNetwork()
	na := net.AddNode("a")
	nb := net.AddNode("b")
	nc := net.AddNode("c")
	host := net.AddIface(na, addr.V4(10, 100, 0, 1)) // member LAN, no peer
	iab := net.AddIface(na, addr.V4(10, 0, 0, 1))
	iba := net.AddIface(nb, addr.V4(10, 0, 0, 2))
	ibc := net.AddIface(nb, addr.V4(10, 0, 1, 1))
	icb := net.AddIface(nc, addr.V4(10, 0, 1, 2))
	net.Connect(iab, iba, netsim.Millisecond)
	net.Connect(ibc, icb, netsim.Millisecond)
	oracle := unicast.NewOracle(net)

	const n = 4
	rpMap := map[addr.IP][]addr.IP{}
	groups := make([]addr.IP, n)
	for i := range groups {
		groups[i] = addr.GroupForIndex(i)
		rpMap[groups[i]] = []addr.IP{icb.Addr}
	}
	cfg := Config{RPMapping: rpMap}
	ra := New(na, cfg, oracle.RouterFor(na))
	rb := New(nb, cfg, oracle.RouterFor(nb))
	rc := New(nc, cfg, oracle.RouterFor(nc))
	ra.Start()
	rb.Start()
	rc.Start()
	net.Sched.RunUntil(2 * netsim.Second)
	for _, g := range groups {
		ra.LocalJoin(host, g)
	}
	net.Sched.RunUntil(net.Sched.Now() + 2*netsim.Second)
	for _, g := range groups {
		if rb.MFIB.Wildcard(g) == nil || rc.MFIB.Wildcard(g) == nil {
			t.Fatalf("shared tree for %v did not reach the RP", g)
		}
	}

	cycle := func() {
		ra.periodicRefresh()
		rb.periodicRefresh()
		net.Sched.RunUntil(net.Sched.Now() + 10*netsim.Millisecond)
	}
	for i := 0; i < 1500; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("warm join/prune refresh cycle: %.2f allocs, want 0", allocs)
	}
}
