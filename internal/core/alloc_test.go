package core

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/unicast"
)

// TestQueryRefreshZeroAlloc pins the warm periodic-query send path —
// append-encode into the router's scratch, pooled transmit frame, delivery,
// into-decode, neighbor-table refresh — at zero heap allocations per cycle.
// A regression here means an encoder started copying, a send site stopped
// using the shared scratch, or frame recycling broke (DESIGN.md §13).
//
// The warm loop is long deliberately: timing-wheel slots grow their backing
// arrays on first touch, and the delivery deadlines walk the slot space, so
// the steady state is only reached once every slot on the cadence's orbit
// has capacity. The measured window stays well inside one QueryInterval so
// no periodic tick (whose re-arm legitimately allocates a timer) fires.
func TestQueryRefreshZeroAlloc(t *testing.T) {
	prev := netsim.SetFramePool(true)
	defer netsim.SetFramePool(prev)

	net := netsim.NewNetwork()
	na := net.AddNode("a")
	nb := net.AddNode("b")
	ia := net.AddIface(na, addr.V4(10, 0, 0, 1))
	ib := net.AddIface(nb, addr.V4(10, 0, 0, 2))
	net.Connect(ia, ib, netsim.Millisecond)
	oracle := unicast.NewOracle(net)

	ra := New(na, Config{}, oracle.RouterFor(na))
	rb := New(nb, Config{}, oracle.RouterFor(nb))
	ra.Start()
	rb.Start()
	net.Sched.RunUntil(2 * netsim.Second)

	cycle := func() {
		ra.sendQueries()
		rb.sendQueries()
		net.Sched.RunUntil(net.Sched.Now() + 10*netsim.Millisecond)
	}
	for i := 0; i < 1500; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("warm query refresh cycle: %.2f allocs, want 0", allocs)
	}
}
