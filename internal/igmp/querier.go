package igmp

import (
	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/telemetry"
)

// Default protocol timing (scaled paper/RFC values).
const (
	DefaultQueryInterval      = 60 * netsim.Second
	DefaultMembershipHoldTime = 150 * netsim.Second // 2.5 × query interval
)

// Querier is the router side of IGMP for one node: it queries every
// interface, tracks which groups have local members per interface, learns
// G→RP mappings from RPMap host messages, and notifies the multicast routing
// protocol of membership changes.
type Querier struct {
	Node          *netsim.Node
	QueryInterval netsim.Time
	HoldTime      netsim.Time

	// OnJoin/OnLeave fire when the first member appears / last member
	// disappears for a group on an interface.
	OnJoin  func(ifc *netsim.Iface, group addr.IP)
	OnLeave func(ifc *netsim.Iface, group addr.IP)
	// OnRPMap fires when a host pushes a group→RP mapping.
	OnRPMap func(group addr.IP, rps []addr.IP)

	// Telemetry, when non-nil, receives MemberJoin/MemberLeave and lifecycle
	// events. Set before Start.
	Telemetry *telemetry.Bus

	// members[ifaceIndex][group] = expiry time.
	members map[int]map[addr.IP]netsim.Time

	// enc is the reusable query encode workspace (see core.Router.enc):
	// safe because Node.Send copies the payload into its transmit frame
	// before returning. dec is the decode scratch, valid only within one
	// handle call; the RPMap path copies the RPs slice out of it before
	// handing it to OnRPMap, which may retain it.
	enc packet.Scratch
	dec Message

	started bool
	// epoch invalidates the query tick across Stop/Restart.
	epoch uint64
}

// NewQuerier attaches the router side of IGMP to a node.
func NewQuerier(nd *netsim.Node) *Querier {
	return &Querier{
		Node:          nd,
		QueryInterval: DefaultQueryInterval,
		HoldTime:      DefaultMembershipHoldTime,
		members:       map[int]map[addr.IP]netsim.Time{},
	}
}

// Start registers the IGMP handler and begins periodic querying.
func (q *Querier) Start() {
	if q.started {
		return
	}
	q.started = true
	if q.Telemetry != nil {
		q.Telemetry.Publish(telemetry.Event{
			At: q.Node.Sched().Now(), Kind: telemetry.EpochStart,
			Router: q.Node.ID, Iface: -1, Epoch: q.epoch, Value: int64(q.memberCount()),
		})
	}
	q.Node.Handle(packet.ProtoIGMP, netsim.HandlerFunc(q.handle))
	sched := q.Node.Sched()
	ep := q.epoch
	var tick func()
	tick = func() {
		if q.epoch != ep {
			return
		}
		if q.Telemetry != nil {
			q.Telemetry.Publish(telemetry.Event{
				At: sched.Now(), Kind: telemetry.TimerFire,
				Router: q.Node.ID, Iface: -1, Epoch: ep,
			})
		}
		q.expire()
		q.query()
		sched.After(q.QueryInterval, tick)
	}
	sched.After(0, tick)
}

// Stop detaches the querier and forgets all learned membership. The OnLeave
// callback is deliberately not fired for the discarded groups: a crash takes
// the routing protocol down with it, and the restarted instance re-learns
// membership from host reports to its immediate re-query.
func (q *Querier) Stop() {
	if !q.started {
		return
	}
	q.started = false
	if q.Telemetry != nil {
		q.Telemetry.Publish(telemetry.Event{
			At: q.Node.Sched().Now(), Kind: telemetry.EpochEnd,
			Router: q.Node.ID, Iface: -1, Epoch: q.epoch,
		})
	}
	q.epoch++
	q.Node.Handle(packet.ProtoIGMP, nil)
	q.members = map[int]map[addr.IP]netsim.Time{}
}

// memberCount returns the total number of (interface, group) membership
// entries — the querier's learned-state size for the restart invariant.
func (q *Querier) memberCount() int {
	n := 0
	for _, byGroup := range q.members {
		n += len(byGroup)
	}
	return n
}

// Restart brings a stopped querier back empty; the immediate query triggers
// host re-reports that rebuild membership and re-fire OnJoin.
func (q *Querier) Restart() {
	q.Stop()
	q.Start()
}

func (q *Querier) query() {
	msg := Message{Type: TypeQuery}
	q.enc.Buf = msg.MarshalTo(q.enc.Buf[:0])
	for _, ifc := range q.Node.Ifaces {
		if !ifc.Up() || ifc.Addr == 0 {
			continue
		}
		q.Node.Send(ifc, q.enc.Packet(ifc.Addr, addr.AllSystems, packet.ProtoIGMP, 1), 0)
	}
}

func (q *Querier) handle(in *netsim.Iface, pkt *packet.Packet) {
	m := &q.dec
	if err := UnmarshalInto(m, pkt.Payload); err != nil {
		return
	}
	switch m.Type {
	case TypeReport:
		if !m.Group.IsMulticast() || m.Group.IsLinkLocalMulticast() {
			return
		}
		q.noteMember(in, m.Group)
	case TypeLeave:
		// Fast leave: the real protocol sends group-specific queries; the
		// simulator trusts the leave and drops membership immediately when
		// no other member reported recently. A conservative implementation
		// would re-query; hosts here re-report on the next query anyway.
		q.dropMember(in, m.Group)
	case TypeRPMap:
		if q.OnRPMap != nil && m.Group.IsMulticast() {
			// The callback may retain the slice (protocols store the
			// mapping), so it gets a copy, not the decode scratch.
			q.OnRPMap(m.Group, append([]addr.IP(nil), m.RPs...))
		}
	}
}

func (q *Querier) noteMember(in *netsim.Iface, g addr.IP) {
	byGroup := q.members[in.Index]
	if byGroup == nil {
		byGroup = map[addr.IP]netsim.Time{}
		q.members[in.Index] = byGroup
	}
	_, had := byGroup[g]
	byGroup[g] = q.Node.Sched().Now() + q.HoldTime
	if !had {
		if q.Telemetry != nil {
			q.Telemetry.Publish(telemetry.Event{
				At: q.Node.Sched().Now(), Kind: telemetry.MemberJoin,
				Router: q.Node.ID, Iface: in.Index, Epoch: q.epoch, Group: g,
			})
		}
		if q.OnJoin != nil {
			q.OnJoin(in, g)
		}
	}
}

func (q *Querier) dropMember(in *netsim.Iface, g addr.IP) {
	byGroup := q.members[in.Index]
	if byGroup == nil {
		return
	}
	if _, had := byGroup[g]; had {
		delete(byGroup, g)
		if q.Telemetry != nil {
			q.Telemetry.Publish(telemetry.Event{
				At: q.Node.Sched().Now(), Kind: telemetry.MemberLeave,
				Router: q.Node.ID, Iface: in.Index, Epoch: q.epoch, Group: g,
			})
		}
		if q.OnLeave != nil {
			q.OnLeave(in, g)
		}
	}
}

func (q *Querier) expire() {
	now := q.Node.Sched().Now()
	for idx, byGroup := range q.members {
		for g, deadline := range byGroup {
			if now > deadline {
				delete(byGroup, g)
				if q.Telemetry != nil {
					q.Telemetry.Publish(telemetry.Event{
						At: now, Kind: telemetry.MemberLeave,
						Router: q.Node.ID, Iface: idx, Epoch: q.epoch, Group: g,
					})
				}
				if q.OnLeave != nil && idx < len(q.Node.Ifaces) {
					q.OnLeave(q.Node.Ifaces[idx], g)
				}
			}
		}
	}
}

// HasMember reports whether the group has a live local member on the
// interface.
func (q *Querier) HasMember(ifc *netsim.Iface, g addr.IP) bool {
	byGroup := q.members[ifc.Index]
	if byGroup == nil {
		return false
	}
	deadline, ok := byGroup[g]
	return ok && q.Node.Sched().Now() <= deadline
}

// HasAnyMember reports whether the group has a member on any interface.
func (q *Querier) HasAnyMember(g addr.IP) bool {
	for _, ifc := range q.Node.Ifaces {
		if q.HasMember(ifc, g) {
			return true
		}
	}
	return false
}

// Groups returns the set of groups with live members on any interface.
func (q *Querier) Groups() []addr.IP {
	seen := map[addr.IP]bool{}
	var out []addr.IP
	now := q.Node.Sched().Now()
	for _, byGroup := range q.members {
		for g, deadline := range byGroup {
			if now <= deadline && !seen[g] {
				seen[g] = true
				out = append(out, g)
			}
		}
	}
	return out
}
