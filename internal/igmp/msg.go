// Package igmp implements the group membership substrate of the paper's §3.1:
// hosts report membership to directly-connected routers via query/report
// (RFC 1112 style, which the paper cites as [5]), routers track local members
// per interface, and hosts can push group→RP mappings to their routers via
// the new host message the paper proposes ("a new IGMP message used by hosts
// [to] distribute information about RPs to their local routers").
package igmp

import (
	"encoding/binary"
	"errors"

	"pim/internal/addr"
)

// Message types.
const (
	TypeQuery  = 0x11 // router -> 224.0.0.1
	TypeReport = 0x12 // host -> group address
	TypeLeave  = 0x17 // host -> 224.0.0.2
	// TypeRPMap is the paper's proposed host->router message carrying the
	// G -> RP(s) mapping for a group the host participates in (§3.1 fn. 9).
	TypeRPMap = 0x30
)

// Message is a decoded IGMP message. Group is the group being reported,
// queried (0 for a general query), or mapped; RPs is populated only for
// TypeRPMap.
type Message struct {
	Type  byte
	Group addr.IP
	RPs   []addr.IP
}

// ErrBadMessage reports a malformed wire message.
var ErrBadMessage = errors.New("igmp: malformed message")

// Marshal encodes the message:
//
//	byte type, byte reserved, uint16 #rps, uint32 group, uint32 rp...
func (m *Message) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 8+4*len(m.RPs))) }

// MarshalTo appends the encoded message to b (same bytes as Marshal).
func (m *Message) MarshalTo(b []byte) []byte {
	var hdr [8]byte
	hdr[0] = m.Type
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(m.RPs)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(m.Group))
	b = append(b, hdr[:]...)
	for _, rp := range m.RPs {
		var e [4]byte
		binary.BigEndian.PutUint32(e[0:], uint32(rp))
		b = append(b, e[:]...)
	}
	return b
}

// Unmarshal decodes a wire message into a fresh Message.
func Unmarshal(b []byte) (*Message, error) {
	m := &Message{}
	if err := UnmarshalInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalInto decodes a wire message into m, reusing m.RPs' capacity.
// The decoded RPs slice aliases m's scratch: a caller that hands it to
// code that may retain it past the call must copy it first.
func UnmarshalInto(m *Message, b []byte) error {
	if len(b) < 8 {
		return ErrBadMessage
	}
	m.Type = b[0]
	m.Group = addr.IP(binary.BigEndian.Uint32(b[4:]))
	m.RPs = m.RPs[:0]
	n := int(binary.BigEndian.Uint16(b[2:]))
	if len(b) < 8+4*n {
		return ErrBadMessage
	}
	if n > 0 && m.Type != TypeRPMap {
		return ErrBadMessage
	}
	for i := 0; i < n; i++ {
		m.RPs = append(m.RPs, addr.IP(binary.BigEndian.Uint32(b[8+4*i:])))
	}
	switch m.Type {
	case TypeQuery, TypeReport, TypeLeave, TypeRPMap:
		return nil
	default:
		return ErrBadMessage
	}
}
