// Package igmp implements the group membership substrate of the paper's §3.1:
// hosts report membership to directly-connected routers via query/report
// (RFC 1112 style, which the paper cites as [5]), routers track local members
// per interface, and hosts can push group→RP mappings to their routers via
// the new host message the paper proposes ("a new IGMP message used by hosts
// [to] distribute information about RPs to their local routers").
package igmp

import (
	"encoding/binary"
	"errors"

	"pim/internal/addr"
)

// Message types.
const (
	TypeQuery  = 0x11 // router -> 224.0.0.1
	TypeReport = 0x12 // host -> group address
	TypeLeave  = 0x17 // host -> 224.0.0.2
	// TypeRPMap is the paper's proposed host->router message carrying the
	// G -> RP(s) mapping for a group the host participates in (§3.1 fn. 9).
	TypeRPMap = 0x30
)

// Message is a decoded IGMP message. Group is the group being reported,
// queried (0 for a general query), or mapped; RPs is populated only for
// TypeRPMap.
type Message struct {
	Type  byte
	Group addr.IP
	RPs   []addr.IP
}

// ErrBadMessage reports a malformed wire message.
var ErrBadMessage = errors.New("igmp: malformed message")

// Marshal encodes the message:
//
//	byte type, byte reserved, uint16 #rps, uint32 group, uint32 rp...
func (m *Message) Marshal() []byte {
	b := make([]byte, 8+4*len(m.RPs))
	b[0] = m.Type
	binary.BigEndian.PutUint16(b[2:], uint16(len(m.RPs)))
	binary.BigEndian.PutUint32(b[4:], uint32(m.Group))
	for i, rp := range m.RPs {
		binary.BigEndian.PutUint32(b[8+4*i:], uint32(rp))
	}
	return b
}

// Unmarshal decodes a wire message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < 8 {
		return nil, ErrBadMessage
	}
	m := &Message{
		Type:  b[0],
		Group: addr.IP(binary.BigEndian.Uint32(b[4:])),
	}
	n := int(binary.BigEndian.Uint16(b[2:]))
	if len(b) < 8+4*n {
		return nil, ErrBadMessage
	}
	if n > 0 && m.Type != TypeRPMap {
		return nil, ErrBadMessage
	}
	for i := 0; i < n; i++ {
		m.RPs = append(m.RPs, addr.IP(binary.BigEndian.Uint32(b[8+4*i:])))
	}
	switch m.Type {
	case TypeQuery, TypeReport, TypeLeave, TypeRPMap:
		return m, nil
	default:
		return nil, ErrBadMessage
	}
}
