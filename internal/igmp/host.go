package igmp

import (
	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
)

// Host is the host side of IGMP for one single-homed node: it answers
// queries with membership reports (with LAN report suppression), sends
// unsolicited reports on join and leaves on leave, and optionally pushes
// group→RP mappings (the paper's proposed host message).
type Host struct {
	Node  *netsim.Node
	Iface *netsim.Iface
	// ReportDelayWindow spreads query responses to allow suppression.
	ReportDelayWindow netsim.Time

	joined  map[addr.IP][]addr.IP // group -> RPs to advertise (may be nil)
	pending map[addr.IP]*netsim.Timer
	// OnData receives multicast data packets for joined groups.
	OnData func(group addr.IP, pkt *packet.Packet)
	// Received counts data packets per group, for experiment assertions.
	Received map[addr.IP]int

	// enc is the reusable report/leave encode workspace (see
	// core.Router.enc): safe because Node.Send copies the payload into its
	// transmit frame before returning. dec is the decode scratch, valid
	// only within one handleIGMP call.
	enc packet.Scratch
	dec Message
}

// NewHost attaches host-side IGMP to a node's single interface.
func NewHost(nd *netsim.Node, ifc *netsim.Iface) *Host {
	h := &Host{
		Node:              nd,
		Iface:             ifc,
		ReportDelayWindow: 10 * netsim.Second,
		joined:            map[addr.IP][]addr.IP{},
		pending:           map[addr.IP]*netsim.Timer{},
		Received:          map[addr.IP]int{},
	}
	nd.Handle(packet.ProtoIGMP, netsim.HandlerFunc(h.handleIGMP))
	nd.Handle(packet.ProtoUDP, netsim.HandlerFunc(h.handleData))
	return h
}

// Join makes the host a member of the group, optionally advertising the
// given RPs to the local router, and sends an unsolicited report.
func (h *Host) Join(g addr.IP, rps ...addr.IP) {
	h.joined[g] = rps
	// The RP mapping must precede the report so the DR can classify the
	// group as sparse-mode when the membership callback fires (§3.1).
	if len(rps) > 0 {
		h.sendRPMap(g, rps)
	}
	h.sendReport(g)
}

// Leave withdraws membership and sends a leave message.
func (h *Host) Leave(g addr.IP) {
	if _, ok := h.joined[g]; !ok {
		return
	}
	delete(h.joined, g)
	if tm := h.pending[g]; tm != nil {
		tm.Stop()
		delete(h.pending, g)
	}
	msg := Message{Type: TypeLeave, Group: g}
	h.enc.Buf = msg.MarshalTo(h.enc.Buf[:0])
	h.Node.Send(h.Iface, h.enc.Packet(h.Iface.Addr, addr.AllRouters, packet.ProtoIGMP, 1), 0)
}

// Member reports whether the host currently belongs to g.
func (h *Host) Member(g addr.IP) bool {
	_, ok := h.joined[g]
	return ok
}

func (h *Host) sendReport(g addr.IP) {
	msg := Message{Type: TypeReport, Group: g}
	// Reports are addressed to the group itself (RFC 1112) so other
	// members on the LAN can suppress their own.
	h.enc.Buf = msg.MarshalTo(h.enc.Buf[:0])
	h.Node.Send(h.Iface, h.enc.Packet(h.Iface.Addr, g, packet.ProtoIGMP, 1), 0)
}

func (h *Host) sendRPMap(g addr.IP, rps []addr.IP) {
	msg := Message{Type: TypeRPMap, Group: g, RPs: rps}
	h.enc.Buf = msg.MarshalTo(h.enc.Buf[:0])
	h.Node.Send(h.Iface, h.enc.Packet(h.Iface.Addr, addr.AllRouters, packet.ProtoIGMP, 1), 0)
}

func (h *Host) handleIGMP(in *netsim.Iface, pkt *packet.Packet) {
	m := &h.dec
	if err := UnmarshalInto(m, pkt.Payload); err != nil {
		return
	}
	switch m.Type {
	case TypeQuery:
		// Schedule a spread-out report per joined group; a deterministic
		// per-host offset substitutes for the RFC's random delay.
		for g := range h.joined {
			if h.pending[g] != nil && h.pending[g].Active() {
				continue
			}
			g := g
			// Knuth multiplicative hash spreads per-host delays across the
			// window so the earliest report lands well before the others
			// fire and suppression has time to act.
			mix := (uint64(h.Iface.Addr)*2654435761 + uint64(g)) * 0x9E3779B97F4A7C15
			delay := netsim.Time(mix % uint64(h.ReportDelayWindow))
			h.pending[g] = h.Node.Sched().After(delay, func() {
				if _, still := h.joined[g]; still {
					h.sendReport(g)
					if rps := h.joined[g]; len(rps) > 0 {
						h.sendRPMap(g, rps)
					}
				}
			})
		}
	case TypeReport:
		// Suppression: someone else reported this group on our LAN.
		if _, ok := h.joined[m.Group]; ok {
			if tm := h.pending[m.Group]; tm != nil && tm.Active() {
				tm.Stop()
			}
		}
	}
}

func (h *Host) handleData(in *netsim.Iface, pkt *packet.Packet) {
	g := pkt.Dst
	if !g.IsMulticast() {
		return
	}
	if _, ok := h.joined[g]; !ok {
		return
	}
	h.Received[g]++
	if h.OnData != nil {
		h.OnData(g, pkt)
	}
}
