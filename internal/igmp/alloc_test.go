package igmp

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// TestQueryZeroAlloc pins the warm IGMP query wire path — marshal into the
// querier's scratch, pooled transmit frame, delivery, decode on a memberless
// host — at zero heap allocations per cycle. (See the core engine's twin
// for the warm-up rationale; a host with members is excluded deliberately,
// since its response path legitimately allocates report timers.)
func TestQueryZeroAlloc(t *testing.T) {
	prev := netsim.SetFramePool(true)
	defer netsim.SetFramePool(prev)

	net := netsim.NewNetwork()
	nr := net.AddNode("r")
	nh := net.AddNode("h")
	ir := net.AddIface(nr, addr.V4(10, 0, 0, 1))
	ih := net.AddIface(nh, addr.V4(10, 0, 0, 9))
	net.ConnectLAN(netsim.Millisecond, ir, ih)

	q := NewQuerier(nr)
	q.Start()
	NewHost(nh, ih)
	net.Sched.RunUntil(2 * netsim.Second)

	cycle := func() {
		q.query()
		net.Sched.RunUntil(net.Sched.Now() + 10*netsim.Millisecond)
	}
	for i := 0; i < 1500; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("warm query cycle: %.2f allocs, want 0", allocs)
	}
}

// TestReportZeroAlloc pins the host's unsolicited-report wire path for an
// already-joined group at zero heap allocations: the report is re-marshalled
// into the host's scratch and carried by a pooled frame to the querier,
// whose membership entry already exists and is only refreshed.
func TestReportZeroAlloc(t *testing.T) {
	prev := netsim.SetFramePool(true)
	defer netsim.SetFramePool(prev)

	net := netsim.NewNetwork()
	nr := net.AddNode("r")
	nh := net.AddNode("h")
	ir := net.AddIface(nr, addr.V4(10, 0, 0, 1))
	ih := net.AddIface(nh, addr.V4(10, 0, 0, 9))
	net.ConnectLAN(netsim.Millisecond, ir, ih)

	q := NewQuerier(nr)
	q.Start()
	h := NewHost(nh, ih)
	g := addr.GroupForIndex(0)
	h.Join(g)
	net.Sched.RunUntil(2 * netsim.Second)
	if !q.HasMember(ir, g) {
		t.Fatal("querier never learned the membership")
	}

	cycle := func() {
		h.sendReport(g)
		net.Sched.RunUntil(net.Sched.Now() + 10*netsim.Millisecond)
	}
	for i := 0; i < 1500; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("warm report cycle: %.2f allocs, want 0", allocs)
	}
}
