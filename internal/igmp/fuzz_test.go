package igmp

import (
	"math/rand"
	"testing"
)

// TestUnmarshalNeverPanics: arbitrary bytes must decode or error cleanly.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		_, _ = Unmarshal(b)
	}
}
