package igmp

import (
	"testing"
	"testing/quick"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
)

func TestMessageRoundTrip(t *testing.T) {
	for _, m := range []Message{
		{Type: TypeQuery},
		{Type: TypeReport, Group: addr.GroupForIndex(4)},
		{Type: TypeLeave, Group: addr.GroupForIndex(4)},
		{Type: TypeRPMap, Group: addr.GroupForIndex(1), RPs: []addr.IP{addr.V4(10, 0, 0, 1), addr.V4(10, 0, 0, 2)}},
	} {
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if got.Type != m.Type || got.Group != m.Group || len(got.RPs) != len(m.RPs) {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
		for i := range m.RPs {
			if got.RPs[i] != m.RPs[i] {
				t.Fatalf("RP %d mismatch", i)
			}
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(group uint32, rps []uint32) bool {
		m := Message{Type: TypeRPMap, Group: addr.IP(group)}
		for _, rp := range rps {
			m.RPs = append(m.RPs, addr.IP(rp))
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil || got.Group != m.Group || len(got.RPs) != len(m.RPs) {
			return false
		}
		for i := range m.RPs {
			if got.RPs[i] != m.RPs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		{},
		make([]byte, 7),
		{0x99, 0, 0, 0, 0, 0, 0, 0},       // unknown type
		{TypeReport, 0, 0, 1, 0, 0, 0, 0}, // RPs on non-RPMap
		{TypeRPMap, 0, 0, 2, 0, 0, 0, 0, 1, 1, 1, 1}, // short RP list
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// lanSetup builds a LAN with one querier router and n hosts.
func lanSetup(t *testing.T, n int) (*netsim.Network, *Querier, []*Host) {
	t.Helper()
	net := netsim.NewNetwork()
	router := net.AddNode("r")
	rif := net.AddIface(router, addr.V4(10, 100, 0, 254))
	ifaces := []*netsim.Iface{rif}
	var hosts []*Host
	for i := 0; i < n; i++ {
		hn := net.AddNode("h")
		hif := net.AddIface(hn, addr.V4(10, 100, 0, byte(i+1)))
		ifaces = append(ifaces, hif)
		hosts = append(hosts, NewHost(hn, hif))
	}
	net.ConnectLAN(netsim.Millisecond, ifaces...)
	q := NewQuerier(router)
	q.Start()
	return net, q, hosts
}

func TestJoinTriggersRouterCallback(t *testing.T) {
	net, q, hosts := lanSetup(t, 2)
	g := addr.GroupForIndex(0)
	var joins []addr.IP
	q.OnJoin = func(ifc *netsim.Iface, group addr.IP) { joins = append(joins, group) }
	hosts[0].Join(g)
	net.Sched.RunUntil(netsim.Second)
	if len(joins) != 1 || joins[0] != g {
		t.Fatalf("joins = %v", joins)
	}
	if !q.HasMember(q.Node.Ifaces[0], g) || !q.HasAnyMember(g) {
		t.Error("querier lost membership")
	}
	// Second member: no duplicate OnJoin.
	hosts[1].Join(g)
	net.Sched.RunUntil(2 * netsim.Second)
	if len(joins) != 1 {
		t.Errorf("duplicate OnJoin: %v", joins)
	}
}

func TestLeaveTriggersCallback(t *testing.T) {
	net, q, hosts := lanSetup(t, 1)
	g := addr.GroupForIndex(0)
	var leaves []addr.IP
	q.OnLeave = func(ifc *netsim.Iface, group addr.IP) { leaves = append(leaves, group) }
	hosts[0].Join(g)
	net.Sched.RunUntil(netsim.Second)
	hosts[0].Leave(g)
	net.Sched.RunUntil(2 * netsim.Second)
	if len(leaves) != 1 || leaves[0] != g {
		t.Fatalf("leaves = %v", leaves)
	}
	if q.HasAnyMember(g) {
		t.Error("membership survived leave")
	}
}

func TestMembershipRefreshedByQueries(t *testing.T) {
	net, q, hosts := lanSetup(t, 1)
	g := addr.GroupForIndex(0)
	hosts[0].Join(g)
	// Run well past the hold time: periodic query/report must keep it alive.
	net.Sched.RunUntil(10 * DefaultQueryInterval)
	if !q.HasAnyMember(g) {
		t.Error("membership expired despite live member")
	}
}

func TestMembershipExpiresWhenHostGoesSilent(t *testing.T) {
	net, q, hosts := lanSetup(t, 1)
	g := addr.GroupForIndex(0)
	hosts[0].Join(g)
	net.Sched.RunUntil(netsim.Second)
	// Silence the host without a leave (crash model).
	delete(hosts[0].joined, g)
	net.Sched.RunUntil(net.Sched.Now() + 2*DefaultMembershipHoldTime)
	if q.HasAnyMember(g) {
		t.Error("membership survived host silence")
	}
}

func TestReportSuppression(t *testing.T) {
	net, _, hosts := lanSetup(t, 5)
	g := addr.GroupForIndex(0)
	for _, h := range hosts {
		h.Join(g)
	}
	net.Sched.RunUntil(netsim.Second)
	// Count reports over one query cycle.
	reports := 0
	net.Trace = func(ev netsim.TraceEvent) {
		if ev.Pkt.Protocol == packet.ProtoIGMP {
			if m, err := Unmarshal(ev.Pkt.Payload); err == nil && m.Type == TypeReport && m.Group == g {
				reports++
			}
		}
	}
	start := net.Sched.Now()
	net.Sched.RunUntil(start + DefaultQueryInterval)
	// Each report is delivered to 5 other stations (traced per delivery);
	// without suppression a cycle would carry 5 reports = 25 deliveries.
	// Suppression should cut that substantially.
	if reports >= 25 {
		t.Errorf("report deliveries = %d, suppression ineffective", reports)
	}
	if reports == 0 {
		t.Error("no reports at all")
	}
}

func TestRPMapReachesRouter(t *testing.T) {
	net, q, hosts := lanSetup(t, 1)
	g := addr.GroupForIndex(3)
	rp := addr.V4(10, 0, 0, 9)
	var gotG addr.IP
	var gotRPs []addr.IP
	q.OnRPMap = func(group addr.IP, rps []addr.IP) { gotG, gotRPs = group, rps }
	hosts[0].Join(g, rp)
	net.Sched.RunUntil(netsim.Second)
	if gotG != g || len(gotRPs) != 1 || gotRPs[0] != rp {
		t.Fatalf("RPMap: group=%v rps=%v", gotG, gotRPs)
	}
}

func TestHostReceivesOnlyJoinedGroups(t *testing.T) {
	net, _, hosts := lanSetup(t, 1)
	g1, g2 := addr.GroupForIndex(0), addr.GroupForIndex(1)
	hosts[0].Join(g1)
	var got []addr.IP
	hosts[0].OnData = func(group addr.IP, pkt *packet.Packet) { got = append(got, group) }
	// Deliver data frames onto the LAN for both groups.
	r := net.Nodes[0]
	for _, g := range []addr.IP{g1, g2} {
		r.Send(r.Ifaces[0], packet.New(addr.V4(9, 9, 9, 9), g, packet.ProtoUDP, []byte("x")), 0)
	}
	net.Sched.RunUntil(netsim.Second)
	if len(got) != 1 || got[0] != g1 {
		t.Fatalf("got %v", got)
	}
	if hosts[0].Received[g1] != 1 || hosts[0].Received[g2] != 0 {
		t.Errorf("Received = %v", hosts[0].Received)
	}
	if !hosts[0].Member(g1) || hosts[0].Member(g2) {
		t.Error("Member() wrong")
	}
}

func TestGroupsEnumeration(t *testing.T) {
	net, q, hosts := lanSetup(t, 1)
	hosts[0].Join(addr.GroupForIndex(0))
	hosts[0].Join(addr.GroupForIndex(1))
	net.Sched.RunUntil(netsim.Second)
	if got := q.Groups(); len(got) != 2 {
		t.Errorf("Groups() = %v", got)
	}
}
