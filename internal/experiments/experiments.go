// Package experiments contains the end-to-end protocol experiment drivers:
// the Figure 1 three-domain scenarios and the sparse-group overhead
// comparison that quantifies the paper's central claim (§1.2: overhead
// measured as state, control message processing, and data packet processing
// across the entire network). cmd/pimsim, the examples, and bench_test.go
// all call into this package so every reported number comes from one code
// path.
package experiments

import (
	"fmt"
	"math/rand"

	"pim/internal/addr"
	"pim/internal/cbt"
	"pim/internal/core"
	"pim/internal/dvmrp"
	"pim/internal/igmp"
	"pim/internal/metrics"
	"pim/internal/netsim"
	"pim/internal/parallel"
	"pim/internal/pimdm"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// Protocol selects the multicast routing protocol under test.
type Protocol string

// Supported protocols.
const (
	PIMSM       Protocol = "pim-sm"
	PIMDM       Protocol = "pim-dm"
	DVMRP       Protocol = "dvmrp"
	CBT         Protocol = "cbt"
	MOSPF       Protocol = "mospf"
	PIMSMShared Protocol = "pim-sm-shared" // sparse mode pinned to the RP tree
)

// AllProtocols lists every comparable protocol.
func AllProtocols() []Protocol {
	return []Protocol{PIMSM, PIMSMShared, CBT, DVMRP, PIMDM, MOSPF}
}

// Result is one protocol's overhead ledger from one run.
type Result struct {
	Protocol Protocol
	// State is the total number of multicast routing entries across all
	// routers at the end of the run.
	State int
	// CtrlMessages is the total number of protocol control messages sent.
	CtrlMessages int64
	// CtrlBytes / DataBytes are the link-level byte totals.
	CtrlBytes, DataBytes int64
	// DataPackets counts data packet link crossings (packet processing).
	DataPackets int64
	// LinksTouched is how many backbone links carried at least one data
	// packet — the sparseness measure.
	LinksTouched int
	// MaxLinkData is the largest per-link data packet count (traffic
	// concentration).
	MaxLinkData int64
	// Delivered counts packets received by member hosts; Expected is the
	// count a loss-free protocol would deliver.
	Delivered, Expected int
	// SPFRuns counts Dijkstra executions (MOSPF's processing cost).
	SPFRuns int64
	// Events is the total number of scheduler events processed — the
	// simulator-side measure of protocol activity the scaling benchmark
	// normalizes wall time against (events/sec).
	Events int64
	// PeakTimers is the high-water mark of concurrently armed timers, the
	// soft-state pressure the §2.3 periodic-refresh design puts on a router's
	// timer subsystem.
	PeakTimers int
	// StateBytes is the end-of-run MFIB memory footprint summed across all
	// routers, for the protocols whose state plane is the shared mfib store
	// (PIM-SM, PIM-DM, DVMRP); zero for CBT and MOSPF, whose per-group tree
	// and cache state live elsewhere. This is the byte-level side of the
	// State entry count (DESIGN.md §16).
	StateBytes int64
}

// String renders the result as one table row.
func (r Result) String() string {
	return fmt.Sprintf("%-13s state=%4d ctrl=%6d dataPkts=%7d links=%3d maxLink=%5d delivered=%d/%d",
		r.Protocol, r.State, r.CtrlMessages, r.DataPackets, r.LinksTouched, r.MaxLinkData, r.Delivered, r.Expected)
}

// SparseConfig parameterizes the sparse-group overhead comparison.
type SparseConfig struct {
	Nodes   int
	Degree  float64
	Groups  int
	Members int // receivers per group
	Senders int // senders per group (distinct from receivers)
	Seed    int64
	// Warmup lets trees form before measurement; Duration is the measured
	// phase; senders emit one packet per PacketInterval.
	Warmup         netsim.Time
	Duration       netsim.Time
	PacketInterval netsim.Time
	// PruneLifetime for the dense-mode protocols (short values expose the
	// periodic-rebroadcast cost).
	PruneLifetime netsim.Time
	// Workers bounds the worker pool used when several protocol runs (or
	// sweep points) execute for this config: 0 = GOMAXPROCS, 1 = sequential.
	// Each run is an isolated simulation self-seeded from Seed, so results
	// are identical for every value.
	Workers int
}

// DefaultSparse returns a laptop-scale default comparable to the paper's
// sparse wide-area setting.
func DefaultSparse() SparseConfig {
	return SparseConfig{
		Nodes: 50, Degree: 4, Groups: 5, Members: 3, Senders: 1,
		Seed: 42, Warmup: 30 * netsim.Second, Duration: 300 * netsim.Second,
		PacketInterval: 5 * netsim.Second, PruneLifetime: 60 * netsim.Second,
	}
}

// workload assigns member and sender routers per group deterministically.
type workload struct {
	groups  []addr.IP
	members [][]int // per group, router indexes of receivers
	senders [][]int // per group, router indexes of senders
}

func buildWorkload(cfg SparseConfig, rng *rand.Rand) workload {
	w := workload{}
	for gi := 0; gi < cfg.Groups; gi++ {
		w.groups = append(w.groups, addr.GroupForIndex(gi))
		picked := topology.PickDistinct(cfg.Nodes, cfg.Members+cfg.Senders, rng)
		w.members = append(w.members, picked[:cfg.Members])
		w.senders = append(w.senders, picked[cfg.Members:])
	}
	return w
}

// RunSparse builds one random internet, deploys the protocol, runs the
// join/send workload, and returns the overhead ledger.
func RunSparse(cfg SparseConfig, proto Protocol) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := topology.Random(topology.GenConfig{Nodes: cfg.Nodes, Degree: cfg.Degree}, rng)
	return runSparseImpl(g, cfg, proto, rng)
}

func runSparseImpl(g *topology.Graph, cfg SparseConfig, proto Protocol, rng *rand.Rand) Result {
	w := buildWorkload(cfg, rng)

	sim := scenario.Build(g)
	// Hosts: one receiver host per member router, one sender host per
	// sender router.
	recvHosts := make([][]*igmp.Host, cfg.Groups)
	sendHosts := make([][]*igmp.Host, cfg.Groups)
	hostAt := map[int]*igmp.Host{}
	ensureHost := func(r int) *igmp.Host {
		if h := hostAt[r]; h != nil {
			return h
		}
		h := sim.AddHost(r)
		hostAt[r] = h
		return h
	}
	for gi := range w.groups {
		for _, m := range w.members[gi] {
			recvHosts[gi] = append(recvHosts[gi], ensureHost(m))
		}
		for _, s := range w.senders[gi] {
			sendHosts[gi] = append(sendHosts[gi], ensureHost(s))
		}
	}
	// Shard the simulation when a multi-shard run was requested
	// (netsim.SetShards). MOSPF stays sequential: its routers flood through
	// a shared in-memory Domain that cannot be split across shards.
	if proto != MOSPF {
		sim.AutoShard()
	}
	sim.FinishUnicast(scenario.UseOracle)

	// RP / core placement: the first member's router (the paper's §4
	// guidance: "most efficient and convenient for the RP to be the
	// directly-connected PIM-speaking router of one of the members").
	rpMap := map[addr.IP][]addr.IP{}
	coreMap := map[addr.IP]addr.IP{}
	for gi, grp := range w.groups {
		anchor := sim.RouterAddr(w.members[gi][0])
		rpMap[grp] = []addr.IP{anchor}
		coreMap[grp] = anchor
	}

	state, stateBytes, ctrl, spf := deployProtocol(sim, proto, rpMap, coreMap, cfg.PruneLifetime)

	// Warm up: hellos, queries, membership.
	sim.Run(2 * netsim.Second)
	for gi, grp := range w.groups {
		for _, h := range recvHosts[gi] {
			h.Join(grp)
		}
	}
	sim.Run(cfg.Warmup)

	// Measured phase: periodic senders. Each pump reschedules itself on its
	// host's own (possibly shard-local) scheduler, so sharded runs keep all
	// send events inside the owning shard.
	sim.Net.Stats.Reset()
	ctrlBase := ctrl()
	for gi, grp := range w.groups {
		gi, grp := gi, grp
		for _, h := range sendHosts[gi] {
			h := h
			sched := h.Node.Sched()
			var pump func()
			pump = func() {
				scenario.SendData(h, grp, 128)
				sched.After(cfg.PacketInterval, pump)
			}
			sched.After(0, pump)
		}
	}
	sim.Run(cfg.Duration)

	res := Result{
		Protocol:     proto,
		State:        state(),
		CtrlMessages: ctrl() - ctrlBase,
		CtrlBytes:    sim.Net.Stats.Totals.ControlBytes,
		DataBytes:    sim.Net.Stats.Totals.DataBytes,
		DataPackets:  sim.Net.Stats.Totals.DataPackets,
		Expected:     0,
		Events:       sim.Net.EventsProcessed(),
		PeakTimers:   sim.Net.PeakLiveTimers(),
	}
	for _, l := range sim.EdgeLinks {
		if n := sim.Net.Stats.PerLink[l.ID].DataPackets; n > res.MaxLinkData {
			res.MaxLinkData = n
		}
	}
	if spf != nil {
		res.SPFRuns = spf()
	}
	if stateBytes != nil {
		res.StateBytes = stateBytes()
	}
	// Links touched: backbone links only (host LANs always carry data).
	for _, l := range sim.EdgeLinks {
		if sim.Net.Stats.PerLink[l.ID].DataPackets > 0 {
			res.LinksTouched++
		}
	}
	for gi := range w.groups {
		for _, h := range recvHosts[gi] {
			res.Delivered += h.Received[w.groups[gi]]
		}
	}
	// Expected = packets sent per group × receivers per group, summed.
	perSender := 0
	if cfg.PacketInterval > 0 {
		perSender = int(cfg.Duration/cfg.PacketInterval) + 1
	}
	res.Expected = cfg.Groups * cfg.Senders * perSender * cfg.Members
	return res
}

// deployProtocol installs one protocol's routers on a built simulation and
// returns accessors for total forwarding state, its byte footprint (nil for
// the protocols whose state plane is not the shared mfib store), cumulative
// control-message count, and SPF executions (nil for the non-link-state
// protocols). Shared between the overhead sweeps and the control-plane churn
// benchmark so every ledger deploys through one code path.
func deployProtocol(sim *scenario.Sim, proto Protocol, rpMap map[addr.IP][]addr.IP,
	coreMap map[addr.IP]addr.IP, pruneLifetime netsim.Time, extra ...scenario.DeployOption) (state func() int, stateBytes func() int64, ctrl, spf func() int64) {
	switch proto {
	case PIMSM, PIMSMShared:
		pcfg := core.Config{RPMapping: rpMap}
		if proto == PIMSMShared {
			pcfg.SPTPolicy = core.SwitchNever
		}
		dep := sim.Deploy(scenario.SparseMode, append([]scenario.DeployOption{scenario.WithCoreConfig(pcfg)}, extra...)...).(*scenario.PIMDeployment)
		state = dep.TotalState
		stateBytes = dep.StateBytes
		ctrl = func() int64 { return sumCtrl(depMetrics(dep)) }
	case DVMRP:
		dep := sim.Deploy(scenario.DVMRPMode, append([]scenario.DeployOption{scenario.WithDVMRPConfig(dvmrp.Config{PruneLifetime: pruneLifetime})}, extra...)...).(*scenario.DVMRPDeployment)
		state = dep.TotalState
		stateBytes = dep.StateBytes
		ctrl = func() int64 {
			var t int64
			for _, r := range dep.Routers {
				t += r.Metrics.Get(metrics.CtrlPrune) + r.Metrics.Get(metrics.CtrlGraft)
			}
			return t
		}
	case PIMDM:
		dep := sim.Deploy(scenario.DenseMode, append([]scenario.DeployOption{scenario.WithDenseConfig(pimdm.Config{PruneHoldTime: pruneLifetime})}, extra...)...).(*scenario.PIMDMDeployment)
		state = dep.TotalState
		stateBytes = dep.StateBytes
		ctrl = func() int64 {
			var t int64
			for _, r := range dep.Routers {
				t += r.Metrics.Get(metrics.CtrlPrune) + r.Metrics.Get(metrics.CtrlGraft) +
					r.Metrics.Get(metrics.CtrlJoinPrune) + r.Metrics.Get(metrics.CtrlAssert)
			}
			return t
		}
	case CBT:
		dep := sim.Deploy(scenario.CBTMode, append([]scenario.DeployOption{scenario.WithCBTConfig(cbt.Config{CoreMapping: coreMap})}, extra...)...).(*scenario.CBTDeployment)
		state = dep.TotalState
		ctrl = func() int64 {
			var t int64
			for _, r := range dep.Routers {
				t += r.Metrics.Get(metrics.CtrlCBTJoin) + r.Metrics.Get(metrics.CtrlCBTAck) +
					r.Metrics.Get(metrics.CtrlCBTEcho)
			}
			return t
		}
	case MOSPF:
		dep := sim.Deploy(scenario.MOSPFMode, extra...).(*scenario.MOSPFDeployment)
		state = dep.TotalState
		ctrl = func() int64 {
			var t int64
			for _, r := range dep.Routers {
				t += r.Metrics.Get(metrics.CtrlLSA)
			}
			return t
		}
		spf = func() int64 {
			var t int64
			for _, r := range dep.Routers {
				t += r.Metrics.Get(metrics.SPFRuns)
			}
			return t
		}
	default:
		panic("experiments: unknown protocol " + string(proto))
	}
	return state, stateBytes, ctrl, spf
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func depMetrics(dep *scenario.PIMDeployment) []*metrics.Counters {
	out := make([]*metrics.Counters, len(dep.Routers))
	for i, r := range dep.Routers {
		out[i] = r.Metrics
	}
	return out
}

func sumCtrl(ms []*metrics.Counters) int64 {
	var t int64
	for _, m := range ms {
		t += m.Get(metrics.CtrlJoinPrune) + m.Get(metrics.CtrlRegister) + m.Get(metrics.CtrlRPReach)
	}
	return t
}

// CompareSparse runs every protocol over the same topology/workload seed.
// Runs are independent simulations (RunSparse re-seeds from cfg.Seed), so
// they fan across cfg.Workers workers; the slice is ordered by protos
// regardless of completion order.
func CompareSparse(cfg SparseConfig, protos []Protocol) []Result {
	out := make([]Result, len(protos))
	parallel.For(len(protos), cfg.Workers, func(i int) {
		out[i] = RunSparse(cfg, protos[i])
	})
	return out
}

// RunSparseOn is RunSparse over a caller-supplied topology (e.g. parsed
// from a cmd/topogen edge list) instead of a freshly generated random one.
func RunSparseOn(g *topology.Graph, cfg SparseConfig, proto Protocol) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cfg.Nodes = g.N()
	return runSparseImpl(g, cfg, proto, rng)
}
