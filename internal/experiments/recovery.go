package experiments

import (
	"cmp"
	"slices"

	"pim/internal/addr"
	"pim/internal/cbt"
	"pim/internal/core"
	"pim/internal/dvmrp"
	"pim/internal/fastpath"
	"pim/internal/faults"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/parallel"
	"pim/internal/pimdm"
	"pim/internal/scenario"
	"pim/internal/telemetry"
	"pim/internal/topology"
)

// The recovery experiment measures the paper's robustness claim (§2, §3.8)
// head on: all protocol state is timer-refreshed soft state, so the network
// should converge back to correct delivery after lost control messages, link
// failures, and router crashes — with no reliability machinery beyond
// periodic refresh (plus the few acknowledged messages: dense-mode grafts
// and CBT's join handshake).
//
// The harness runs every protocol through a fixed fault matrix on a small
// diamond topology with a bypass path, and reports for each cell:
//
//   - recovery time: the gap between the fault (or the membership change it
//     interferes with) and the first packet delivered past it, detected by a
//     telemetry.ConvergenceProbe on the deployment's event bus;
//   - control messages spent converging (protocol control sends in that
//     window, tallied from the telemetry lanes);
//   - residual state: entries still installed at the end of the run beyond
//     the pre-fault baseline — stale state a soft-state protocol must shed;
//   - tree quiet time: how long the multicast forwarding state had been
//     mutation-free when the run ended (the probe's stabilization signal).
//
// Every cell runs twice, once on the reference forwarding path and once on
// the fast path, with identical seeds; the delivery traces must match
// bit-for-bit or cmd/pimbench refuses to record the run. Fault injection is
// deterministic (internal/faults), so the matrix is also reproducible across
// any Workers setting and any shard count. With Checked set, every cell additionally runs under
// the online §3.8 invariant checker and surfaces any violations.

// Recovery fault kinds.
const (
	FaultLoss0  = "loss0"  // control cell: membership change, no loss
	FaultLoss5  = "loss5"  // 5% control-plane loss network-wide
	FaultLoss20 = "loss20" // 20% control-plane loss network-wide
	FaultFlap   = "flap"   // the tree's transit link flaps down/up
	FaultCrash  = "crash"  // mid-tree router fail-stops, later restarts
)

// RecoveryFaults lists the fault matrix columns in report order.
func RecoveryFaults() []string {
	return []string{FaultLoss0, FaultLoss5, FaultLoss20, FaultFlap, FaultCrash}
}

// RecoveryProtocols lists the matrix rows: every protocol, sparse and dense.
func RecoveryProtocols() []Protocol {
	return []Protocol{PIMSM, PIMDM, DVMRP, CBT, MOSPF}
}

// RecoveryConfig parameterizes the fault-recovery matrix.
type RecoveryConfig struct {
	Seed int64
	// Senders emit one packet per PacketInterval for the whole run.
	PacketInterval netsim.Time
	// FaultAt is when the fault hits steady state; RestartAt revives the
	// crashed router; JoinAt is when the late receiver joins under loss;
	// End bounds the run.
	FaultAt   netsim.Time
	RestartAt netsim.Time
	JoinAt    netsim.Time
	End       netsim.Time
	// Workers bounds the pool running matrix cells; every cell is an
	// isolated simulation seeded from Seed and the cell index, so results
	// are identical for every value.
	Workers int
	// Checked attaches the online invariant checker to every cell; any
	// §3.8 contract violation surfaces on the cell.
	Checked bool
}

// DefaultRecovery returns the ledger workload.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{
		Seed:           42,
		PacketInterval: 2 * netsim.Second,
		FaultAt:        60 * netsim.Second,
		RestartAt:      90 * netsim.Second,
		JoinAt:         70 * netsim.Second,
		End:            240 * netsim.Second,
	}
}

// SmokeRecovery returns the CI-sized workload: the same fault matrix
// compressed to two simulated minutes — long enough for every protocol to
// converge past each fault, short enough for bench-smoke.
func SmokeRecovery() RecoveryConfig {
	return RecoveryConfig{
		Seed:           42,
		PacketInterval: 2 * netsim.Second,
		FaultAt:        30 * netsim.Second,
		RestartAt:      45 * netsim.Second,
		JoinAt:         35 * netsim.Second,
		End:            120 * netsim.Second,
	}
}

// RecoveryCell is one (protocol, fault) outcome.
type RecoveryCell struct {
	Protocol Protocol `json:"protocol"`
	Fault    string   `json:"fault"`
	// Recovered reports whether delivery resumed before End; RecoverySec is
	// the simulated seconds from the recovery window's start (the fault, or
	// the late join it interferes with) to the first delivery past it.
	Recovered   bool    `json:"recovered"`
	RecoverySec float64 `json:"recovery_sec"`
	// CtrlMessages counts protocol control-message sends (join/prune,
	// graft, prune, register, LSA flood) in the recovery window.
	CtrlMessages int64 `json:"ctrl_messages"`
	// ResidualState is TotalState(End) − TotalState(just before the fault):
	// state beyond the pre-fault baseline still installed at the end.
	ResidualState int `json:"residual_state"`
	// Delivered counts member-host deliveries over the whole run.
	Delivered int `json:"delivered"`
	// TreeQuietSec is how long the forwarding state had gone without a
	// mutation (entry create/expire, iif change) when the run ended — the
	// convergence probe's tree-stabilization measure.
	TreeQuietSec float64 `json:"tree_quiet_sec"`
	// Identical gates the ledger: reference and fast-path delivery traces
	// must match exactly.
	Identical bool `json:"traces_identical"`
	// Violations lists online invariant-checker findings (Checked runs
	// only; empty means the cell upheld every §3.8 contract).
	Violations []string `json:"violations,omitempty"`
}

// RecoveryResult is the full matrix.
type RecoveryResult struct {
	Cells []RecoveryCell `json:"cells"`
	// AllIdentical gates ledger recording in cmd/pimbench.
	AllIdentical bool `json:"all_identical"`
	// AllRecovered reports whether every cell saw delivery resume.
	AllRecovered bool `json:"all_recovered"`
}

// recoveryRun is one cell executed on one forwarding path.
type recoveryRun struct {
	trace      []DeliveryEvent
	recovery   netsim.Time // -1 when delivery never resumed
	ctrl       int64
	residual   int
	delivered  int
	treeQuiet  netsim.Time
	violations []string
}

// RunRecovery executes the full protocol × fault matrix, each cell on both
// forwarding paths, and restores the fast-path switch to its prior setting.
//
// The fast-path switch is process-global, so the matrix runs as two
// sequential sweeps — every cell on the reference path, then every cell on
// the fast path — with the switch toggled only between sweeps. Within a
// sweep the cells are isolated simulations and fan across cfg.Workers.
func RunRecovery(cfg RecoveryConfig) RecoveryResult {
	protos := RecoveryProtocols()
	kinds := RecoveryFaults()
	n := len(protos) * len(kinds)
	res := RecoveryResult{
		Cells:        make([]RecoveryCell, n),
		AllIdentical: true,
		AllRecovered: true,
	}
	sweep := func(fast bool) []recoveryRun {
		prev := fastpath.Set(fast)
		defer fastpath.Set(prev)
		runs := make([]recoveryRun, n)
		parallel.For(n, cfg.Workers, func(i int) {
			runs[i] = runRecoveryOnce(cfg, protos[i/len(kinds)], kinds[i%len(kinds)],
				parallel.DeriveSeed(cfg.Seed, int64(i)), nil)
		})
		return runs
	}
	refs := sweep(false)
	fasts := sweep(true)
	for i := range res.Cells {
		ref, fast := refs[i], fasts[i]
		c := RecoveryCell{
			Protocol:      protos[i/len(kinds)],
			Fault:         kinds[i%len(kinds)],
			Recovered:     fast.recovery >= 0,
			CtrlMessages:  fast.ctrl,
			ResidualState: fast.residual,
			Delivered:     fast.delivered,
			TreeQuietSec:  float64(fast.treeQuiet) / float64(netsim.Second),
			Identical: tracesEqual(ref.trace, fast.trace) &&
				ref.recovery == fast.recovery && ref.residual == fast.residual,
			Violations: fast.violations,
		}
		for _, v := range ref.violations {
			c.Violations = append(c.Violations, "ref-path: "+v)
		}
		if c.Recovered {
			c.RecoverySec = float64(fast.recovery) / float64(netsim.Second)
		}
		res.Cells[i] = c
		if !c.Identical {
			res.AllIdentical = false
		}
		if !c.Recovered {
			res.AllRecovered = false
		}
	}
	return res
}

// recoveryTimings shrinks the soft-state refresh clocks so recovery happens
// within a four-minute run: join/prune and LSA refresh at 20 s, neighbor
// discovery and keepalives at 10 s, prune state at 60 s.
const (
	recoveryRefresh   = 20 * netsim.Second
	recoveryHello     = 10 * netsim.Second
	recoveryPruneHold = 60 * netsim.Second
)

// Receiver sites by attached-router index, the key Deliver telemetry events
// carry: A behind r3 (joins early), B behind r4 (joins late under loss).
const (
	recvARouter = 3
	recvBRouter = 4
)

// deployRecovery starts proto on sim through the Deploy façade with the
// shrunk recovery clocks. Group state anchors (RP, core) sit at router
// `anchor`; IGMP is shrunk the same way via WithIGMPTimers, and MOSPF gets
// periodic LSA re-origination (event-driven LSAs alone cannot survive a
// crash — the restarted router missed them). Extra options (telemetry bus,
// invariant checker) are appended by the caller.
func deployRecovery(sim *scenario.Sim, proto Protocol, group addr.IP, anchor int, extra ...scenario.DeployOption) scenario.Deployment {
	opts := append([]scenario.DeployOption{
		scenario.WithIGMPTimers(recoveryHello, 3*recoveryHello),
	}, extra...)
	switch proto {
	case PIMSM, PIMSMShared:
		pcfg := core.Config{
			RPMapping:         map[addr.IP][]addr.IP{group: {sim.RouterAddr(anchor)}},
			JoinPruneInterval: recoveryRefresh,
			QueryInterval:     recoveryHello,
			RPReachInterval:   recoveryRefresh,
		}
		if proto == PIMSMShared {
			pcfg.SPTPolicy = core.SwitchNever
		}
		return sim.Deploy(scenario.SparseMode, append(opts, scenario.WithCoreConfig(pcfg))...)
	case PIMDM:
		return sim.Deploy(scenario.DenseMode, append(opts, scenario.WithDenseConfig(pimdm.Config{
			PruneHoldTime: recoveryPruneHold,
			QueryInterval: recoveryHello,
		}))...)
	case DVMRP:
		return sim.Deploy(scenario.DVMRPMode, append(opts, scenario.WithDVMRPConfig(dvmrp.Config{
			PruneLifetime: recoveryPruneHold,
			ProbeInterval: recoveryHello,
		}))...)
	case CBT:
		return sim.Deploy(scenario.CBTMode, append(opts, scenario.WithCBTConfig(cbt.Config{
			CoreMapping:  map[addr.IP]addr.IP{group: sim.RouterAddr(anchor)},
			EchoInterval: recoveryHello,
		}))...)
	case MOSPF:
		return sim.Deploy(scenario.MOSPFMode, append(opts, scenario.WithMOSPFRefresh(recoveryRefresh))...)
	default:
		panic("experiments: unknown recovery protocol " + string(proto))
	}
}

// runRecoveryOnce builds the diamond, deploys the protocol, injects the
// fault, and extracts the cell metrics on one forwarding path.
//
// Topology (edge weights in delay units):
//
//	r0 --1-- r1 --1-- r2 --1-- r3      source behind r0
//	          \                /       receiver A behind r3 (joins early)
//	           2-- r4 --2-----+        receiver B behind r4 (joins late
//	                                   under loss; early otherwise)
//
// The r1–r4–r3 detour is the bypass: when r2 crashes or the r2–r3 link
// flaps, unicast reroutes over it and the multicast tree must follow from
// soft-state refresh alone. The RP / CBT core is r3, so A's delivery always
// crosses the faulted transit.
// recoverySim builds the diamond with the three hosts attached and the
// oracle unicast substrate finished. Unless the protocol pins itself to the
// sequential path (MOSPF's shared Domain), the sim is partitioned across the
// process-global shard count before any event is scheduled.
func recoverySim(proto Protocol) (sim *scenario.Sim, src, recvA, recvB *igmp.Host) {
	g := topology.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1) // EdgeLinks[2]: the flap target
	g.AddEdge(1, 4, 2)
	g.AddEdge(4, 3, 2)
	sim = scenario.Build(g)
	if proto != MOSPF {
		sim.AutoShard()
	}
	src = sim.AddHost(0)
	recvA = sim.AddHost(recvARouter)
	recvB = sim.AddHost(recvBRouter)
	sim.FinishUnicast(scenario.UseOracle)
	return sim, src, recvA, recvB
}

// RecoveryTelemetry runs one recovery cell with a time-series sampler on the
// deployment's event lanes and returns the sampler for dumping — the
// per-router counter curves cmd/pimbench writes with -telemetry. The cell
// runs on whichever forwarding path and shard count are currently enabled,
// seeded exactly like the matrix's first cell; sharded cells additionally
// carry the per-shard execution counters in the dump.
func RecoveryTelemetry(cfg RecoveryConfig, proto Protocol, kind string, interval netsim.Time) *telemetry.Sampler {
	var smp *telemetry.Sampler
	runRecoveryOnce(cfg, proto, kind, parallel.DeriveSeed(cfg.Seed, 0),
		func(sim *scenario.Sim, lanes []*telemetry.Bus) {
			smp = telemetry.NewShardedSampler(lanes, interval)
			// Expose timer pressure alongside the counter curves: each lane's
			// gauge reads its own shard's live-timer count at each observed
			// event, so the dump shows the soft-state refresh load without
			// perturbing the simulation (and without cross-shard reads).
			for i := range lanes {
				sched := sim.Net.ShardScheduler(i)
				smp.AttachLaneGauge(i, func() int64 { return int64(sched.LiveTimers()) })
			}
			if sim.Net.Sharded() {
				smp.AttachShardLoads(sim.Net.ShardLoads)
			}
		})
	return smp
}

// runRecoveryOnce executes one cell; tap, when non-nil, may subscribe extra
// consumers to the cell's event lanes before the protocol deploys.
func runRecoveryOnce(cfg RecoveryConfig, proto Protocol, kind string, seed int64, tap func(*scenario.Sim, []*telemetry.Bus)) recoveryRun {
	sim, src, recvA, recvB := recoverySim(proto)
	group := addr.GroupForIndex(0)

	// Every cell runs with event lanes attached — one bus per shard, so
	// publishing never crosses a shard boundary. A convergence probe rides
	// each lane (a receiver site lives on exactly one shard, so exactly one
	// probe sees its deliveries), and (when Checked) per-lane invariant
	// checkers audit the same streams. All metric extraction happens after
	// the run, from state each lane accumulated race-free.
	nlanes := sim.Net.ShardCount()
	lanes := make([]*telemetry.Bus, nlanes)
	probes := make([]*telemetry.ConvergenceProbe, nlanes)
	for i := range lanes {
		lanes[i] = telemetry.NewBus()
		probes[i] = telemetry.NewConvergenceProbe(lanes[i])
	}
	if tap != nil {
		tap(sim, lanes)
	}
	opts := []scenario.DeployOption{scenario.WithTelemetry(lanes[0])}
	if nlanes > 1 {
		opts = append(opts, scenario.WithShardTelemetry(lanes))
	}
	if cfg.Checked {
		opts = append(opts, scenario.WithInvariantChecker())
	}
	dep := deployRecovery(sim, proto, group, 3, opts...)
	in := faults.New(sim.Net, seed)

	// The recovery window starts at the event whose repair we time: the
	// late join for the loss cells, the fault itself otherwise.
	lossKind := kind == FaultLoss0 || kind == FaultLoss5 || kind == FaultLoss20
	windowStart := cfg.FaultAt
	if lossKind {
		windowStart = cfg.JoinAt
	}

	run := recoveryRun{recovery: -1}
	// Per-lane accumulation: member-site delivery events and control-send
	// instants, merged canonically after the run.
	laneTraces := make([][]DeliveryEvent, nlanes)
	laneCtrl := make([][]netsim.Time, nlanes)
	for i, b := range lanes {
		i := i
		b.Subscribe(func(ev telemetry.Event) {
			switch ev.Kind {
			case telemetry.JoinPruneSend, telemetry.GraftSend, telemetry.PruneSend,
				telemetry.RegisterSend, telemetry.LSAFlood:
				laneCtrl[i] = append(laneCtrl[i], ev.At)
			case telemetry.Deliver:
				if ev.Group != group {
					return
				}
				var hi int
				switch ev.Router {
				case recvARouter:
					hi = 0
				case recvBRouter:
					hi = 1
				default:
					return
				}
				de := DeliveryEvent{At: ev.At, Host: hi, Src: ev.Source}
				if ev.Value >= 0 {
					de.Sent = netsim.Time(ev.Value)
				}
				laneTraces[i] = append(laneTraces[i], de)
			}
		})
	}

	sched := sim.Net.Sched
	// Steady state: A (and, outside the loss cells, B) joins early.
	sched.At(2*netsim.Second, func() { recvA.Join(group) })
	if lossKind {
		sched.At(cfg.JoinAt, func() { recvB.Join(group) })
	} else {
		sched.At(2*netsim.Second, func() { recvB.Join(group) })
	}

	// Constant-rate sender for the whole run.
	for t := netsim.Time(0); t < cfg.End; t += cfg.PacketInterval {
		at := 5*netsim.Second + t
		if at >= cfg.End {
			break
		}
		sched.At(at, func() { scenario.SendData(src, group, 64) })
	}

	// Pre-fault baseline, then the fault itself. (TotalState reads protocol
	// state across every router; as a root-scheduler action it runs at an
	// epoch barrier with all shards quiesced, so the cross-shard read is
	// safe.)
	var stateAtFault int
	sched.At(cfg.FaultAt-netsim.Second, func() { stateAtFault = dep.TotalState() })
	switch kind {
	case FaultLoss0:
		// Control cell: the membership change alone.
	case FaultLoss5:
		sched.At(cfg.FaultAt, func() { in.SetBernoulli(nil, 0.05, faults.ControlOnly) })
	case FaultLoss20:
		sched.At(cfg.FaultAt, func() { in.SetBernoulli(nil, 0.20, faults.ControlOnly) })
	case FaultFlap:
		// Three down/up cycles on the tree's transit link starting at the
		// fault: down 15 s, up 15 s.
		in.Flap(sim.EdgeLinks[2], cfg.FaultAt, 15*netsim.Second, 15*netsim.Second, 3)
	case FaultCrash:
		sched.At(cfg.FaultAt, func() { dep.Crash(2) })
		sched.At(cfg.RestartAt, func() { dep.Restart(2) })
	default:
		panic("experiments: unknown recovery fault " + kind)
	}

	sim.Run(cfg.End)

	// Recovery instant, read post-run from whichever lane's probe observed
	// the proving site. Loss cells recover when the late joiner (B) hears
	// anything; topology cells when A receives a packet sent after the fault
	// (pre-fault packets in flight don't count).
	recoveredAt := netsim.Time(-1)
	for _, probe := range probes {
		if lossKind {
			if at, ok := probe.FirstDeliveryAt(recvBRouter, cfg.JoinAt); ok {
				recoveredAt = at
			}
		} else if at, ok := probe.FirstDeliverySentAfter(recvARouter, cfg.FaultAt); ok {
			recoveredAt = at
		}
	}
	if recoveredAt >= 0 {
		run.recovery = recoveredAt - windowStart
	}

	// Control effort: protocol control-message sends between the window
	// start and the delivery that proved the repaired tree (run end when
	// delivery never resumed). Counting send events by timestamp is
	// order-free, so the tally is identical on every shard count.
	windowEnd := cfg.End
	if recoveredAt >= 0 {
		windowEnd = recoveredAt
	}
	for _, times := range laneCtrl {
		for _, at := range times {
			if at >= windowStart && at <= windowEnd {
				run.ctrl++
			}
		}
	}

	// Canonical delivery trace: lane buffers merged and sorted by the full
	// event tuple, so the trace is independent of both shard count and
	// publication interleaving.
	for _, tr := range laneTraces {
		run.trace = append(run.trace, tr...)
	}
	slices.SortFunc(run.trace, func(x, y DeliveryEvent) int {
		if x.At != y.At {
			return cmp.Compare(x.At, y.At)
		}
		if x.Host != y.Host {
			return cmp.Compare(x.Host, y.Host)
		}
		if x.Src != y.Src {
			return cmp.Compare(x.Src, y.Src)
		}
		return cmp.Compare(x.Sent, y.Sent)
	})

	run.residual = dep.TotalState() - stateAtFault
	run.delivered = recvA.Received[group] + recvB.Received[group]
	run.treeQuiet = cfg.End
	lastMut := netsim.Time(-1)
	for _, probe := range probes {
		if at, ok := probe.LastTreeMutation(); ok && at > lastMut {
			lastMut = at
		}
	}
	if lastMut >= 0 {
		run.treeQuiet = cfg.End - lastMut
	}
	for _, v := range dep.Violations() {
		run.violations = append(run.violations, v.String())
	}
	return run
}
