// Benchmark registrations: every pimbench benchmark this package backs is
// wired into the bench registry here, at init time. cmd/pimbench only
// blank-imports the package — adding an experiment to the `pimbench run`
// surface means one bench.Register call in this file, nothing else
// (DESIGN.md §15). Each Run prints its measurements, enforces its
// differential gate (errors refuse the record), and queues ledger entries
// through the shared bench.Context.
package experiments

import (
	"fmt"
	"io"
	"os"
	"reflect"
	"testing"
	"time"

	"pim/internal/bench"
	"pim/internal/netsim"
	"pim/internal/trees"
)

func init() {
	bench.Register("fig2", bench.Spec{
		Summary: "Figure 2(a)/2(b) tree-quality sweeps, sequential vs parallel workers",
		Ledger:  "BENCH_fig2.json",
		Run:     runFig2Bench,
	})
	bench.Register("dataplane", bench.Spec{
		Summary: "forwarding fast path vs reference path on the N-hop chain",
		Ledger:  "BENCH_dataplane.json",
		Run:     runDataplaneBench,
	})
	bench.Register("recovery", bench.Spec{
		Summary: "fault-recovery matrix: every protocol through loss, flap, crash",
		Ledger:  "BENCH_recovery.json",
		Run:     runRecoveryBench,
	})
	bench.Register("scaling", bench.Spec{
		Summary: "large-internet scaling sweeps, heap vs wheel (plus shards with -shards N>1)",
		Ledger:  "BENCH_scale.json",
		Run:     runScalingBench,
	})
	bench.Register("tenk", bench.Spec{
		Summary: "10 000-router size cells, sequential and sharded",
		Ledger:  "BENCH_scale.json",
		Run:     runTenKBench,
	})
	bench.Register("ctrlplane", bench.Spec{
		Summary: "steady-state control-plane churn, pooled vs allocating frame paths",
		Ledger:  "BENCH_ctrlplane.json",
		Run:     runCtrlPlaneBench,
	})
	bench.Register("stateplane", bench.Spec{
		Summary: "MFIB state-plane footprint and refresh-walk cost, flat arena vs map store",
		Ledger:  "BENCH_stateplane.json",
		Run:     runStatePlaneBench,
	})
	bench.Register("telemetry", bench.Spec{
		Summary: "PIM-SM crash-recovery telemetry curves (writes JSON report, no ledger)",
		Run:     runTelemetryBench,
	})
}

// FigBench is the measurement of one figure's sweep.
type FigBench struct {
	Trials      int     `json:"trials"`
	Degrees     int     `json:"degrees"`
	Wall1Ms     float64 `json:"wall_ms_workers_1"`
	WallAllMs   float64 `json:"wall_ms_workers_all"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"series_identical"`
	FirstSeries any     `json:"first_point"`
}

// Fig2Entry is one appended record of the Figure 2 ledger.
type Fig2Entry struct {
	bench.LedgerHeader
	Fig2a FigBench `json:"fig2a"`
	Fig2b FigBench `json:"fig2b"`
}

// fig2Sweep times one figure's sweep with one worker and with all workers
// and checks the two series are bit-identical.
func fig2Sweep[P any](trials, degrees int, run func(workers int) []P,
	first func([]P) any) FigBench {
	t0 := time.Now()
	seq := run(1)
	wall1 := time.Since(t0)
	t0 = time.Now()
	par := run(0)
	wallAll := time.Since(t0)
	return FigBench{
		Trials: trials, Degrees: degrees,
		Wall1Ms:     float64(wall1.Microseconds()) / 1000,
		WallAllMs:   float64(wallAll.Microseconds()) / 1000,
		Speedup:     float64(wall1) / float64(wallAll),
		Identical:   reflect.DeepEqual(seq, par),
		FirstSeries: first(seq),
	}
}

func runFig2Bench(ctx *bench.Context) error {
	entry := Fig2Entry{LedgerHeader: ctx.Header("")}

	cfgA := trees.DefaultFig2a()
	cfgB := trees.DefaultFig2b()
	if ctx.Smoke {
		cfgA.Trials, cfgB.Trials = 2, 2
	}
	entry.Fig2a = fig2Sweep(cfgA.Trials, len(cfgA.Degrees),
		func(workers int) []trees.Fig2aPoint {
			c := cfgA
			c.Workers = workers
			return trees.RunFig2a(c)
		},
		func(seq []trees.Fig2aPoint) any {
			return map[string]float64{"degree": seq[0].Degree, "mean_ratio": seq[0].MeanRatio}
		})
	ctx.Printf("fig2a: %d trials × %d degrees  workers=1 %.0f ms  workers=all %.0f ms  speedup %.2fx  identical=%v",
		cfgA.Trials, len(cfgA.Degrees), entry.Fig2a.Wall1Ms, entry.Fig2a.WallAllMs,
		entry.Fig2a.Speedup, entry.Fig2a.Identical)

	entry.Fig2b = fig2Sweep(cfgB.Trials, len(cfgB.Degrees),
		func(workers int) []trees.Fig2bPoint {
			c := cfgB
			c.Workers = workers
			return trees.RunFig2b(c)
		},
		func(seq []trees.Fig2bPoint) any {
			return map[string]float64{"degree": seq[0].Degree, "spt_max": seq[0].SPTMax, "cbt_max": seq[0].CBTMax}
		})
	ctx.Printf("fig2b: %d trials × %d degrees  workers=1 %.0f ms  workers=all %.0f ms  speedup %.2fx  identical=%v",
		cfgB.Trials, len(cfgB.Degrees), entry.Fig2b.Wall1Ms, entry.Fig2b.WallAllMs,
		entry.Fig2b.Speedup, entry.Fig2b.Identical)

	if !entry.Fig2a.Identical || !entry.Fig2b.Identical {
		return fmt.Errorf("parallel series diverged from sequential — not recording")
	}
	ctx.Append(entry)
	return nil
}

// DataplaneEntry is one appended record of the data-plane ledger.
type DataplaneEntry struct {
	bench.LedgerHeader
	Result DataplaneResult `json:"result"`
}

func runDataplaneBench(ctx *bench.Context) error {
	cfg := DefaultDataplane()
	if ctx.Smoke {
		cfg = SmokeDataplane()
	}
	res := RunDataplane(cfg)
	for _, p := range res.Phases {
		ctx.Printf("dataplane %-6s  ref %8.1f ms  fast %8.1f ms  speedup %5.2fx  identical=%v  delivered=%d crossings=%d",
			p.Name, p.RefMs, p.FastMs, p.Speedup, p.Identical, p.Delivered, p.Crossings)
	}
	if !res.AllIdentical {
		return fmt.Errorf("fast-path trace diverged from reference path — not recording")
	}
	ctx.Printf("dataplane overall speedup %.2fx", res.Speedup)
	ctx.Append(DataplaneEntry{LedgerHeader: ctx.Header(""), Result: res})
	return nil
}

// RecoveryEntry is one appended record of the fault-recovery ledger.
type RecoveryEntry struct {
	bench.LedgerHeader
	Result RecoveryResult `json:"result"`
}

func runRecoveryBench(ctx *bench.Context) error {
	cfg := DefaultRecovery()
	if ctx.Smoke {
		cfg = SmokeRecovery()
	}
	res := RunRecovery(cfg)
	for _, c := range res.Cells {
		rec := "   never"
		if c.Recovered {
			rec = fmt.Sprintf("%7.2fs", c.RecoverySec)
		}
		ctx.Printf("recovery %-13s %-7s %s  ctrl=%4d  residual=%3d  delivered=%4d  identical=%v",
			c.Protocol, c.Fault, rec, c.CtrlMessages, c.ResidualState, c.Delivered, c.Identical)
	}
	if !res.AllIdentical {
		return fmt.Errorf("fast-path trace diverged from reference path — not recording")
	}
	ctx.Printf("recovery all recovered=%v", res.AllRecovered)
	ctx.Append(RecoveryEntry{LedgerHeader: ctx.Header(""), Result: res})
	return nil
}

// MicroBench is one scheduler microbenchmark column of the scaling ledger.
type MicroBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ScalingEntry is one appended record of the scaling ledger. A scaling run
// appends two: one with UseWheel=false (the reference heap, the "seed"
// side) and one with UseWheel=true (the timing wheel, the "after" side),
// both over bit-identical simulated grids.
type ScalingEntry struct {
	bench.LedgerHeader
	UseWheel bool               `json:"use_wheel"`
	Result   ScalingBenchResult `json:"result"`
	Churn    MicroBench         `json:"sched_churn"`
	Dense    MicroBench         `json:"sched_dense"`
}

// schedMicroBench replays one deterministic scheduler workload on one
// backing store under testing.Benchmark and reports ns/op and allocs/op.
// The parked-timer population is rebuilt outside the timed region on each
// probe.
func schedMicroBench(wheel bool, workload func(*netsim.Scheduler, int)) MicroBench {
	r := testing.Benchmark(func(b *testing.B) {
		s := netsim.PrepSchedulerBench(wheel)
		b.ReportAllocs()
		b.ResetTimer()
		workload(s, b.N)
	})
	return MicroBench{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// scalingPass executes one scaling sweep pass on the given backing store
// and shard count, printing one line per sweep.
func scalingPass(ctx *bench.Context, cfg ScalingBenchConfig, wheel bool, shards int) ScalingBenchResult {
	prevWheel := netsim.SetUseWheel(wheel)
	prevShards := netsim.SetShards(shards)
	defer func() {
		netsim.SetUseWheel(prevWheel)
		netsim.SetShards(prevShards)
	}()
	res := RunScalingBench(cfg)
	store := "heap "
	if wheel {
		store = "wheel"
	}
	for _, sw := range res.Sweeps {
		ctx.Printf("scaling %-7s %s shards=%d  %2d cells  %9.1f ms  %9d events  %9.0f events/sec  peak timers %d",
			sw.Name, store, shards, sw.Cells, sw.WallMs, sw.Events, sw.EventsPerSec, sw.PeakTimers)
	}
	return res
}

func runScalingBench(ctx *bench.Context) error {
	cfg := DefaultScalingBench()
	if ctx.Smoke {
		cfg = SmokeScalingBench()
	}
	heap := scalingPass(ctx, cfg, false, 1)
	wheel := scalingPass(ctx, cfg, true, 1)
	if !SameGrids(heap, wheel) {
		return fmt.Errorf("heap and wheel scaling grids diverged — not recording")
	}
	ctx.Printf("scaling grids identical; wall %0.1f ms (heap) vs %0.1f ms (wheel), %.2fx",
		heap.WallMs, wheel.WallMs, heap.WallMs/wheel.WallMs)
	var sharded *ScalingBenchResult
	if ctx.Shards > 1 {
		res := scalingPass(ctx, cfg, true, ctx.Shards)
		if !SameGridsSharded(wheel, res) {
			return fmt.Errorf("shards=%d grid diverged from sequential — not recording", ctx.Shards)
		}
		ctx.Printf("sharded grid identical; wall %0.1f ms (shards=1) vs %0.1f ms (shards=%d), %.2fx",
			wheel.WallMs, res.WallMs, ctx.Shards, wheel.WallMs/res.WallMs)
		sharded = &res
	}
	if ctx.Smoke {
		ctx.Printf("smoke run: grid gate passed, nothing recorded")
		return nil
	}

	type side struct {
		wheel  bool
		shards int
		suffix string
		res    ScalingBenchResult
	}
	sides := []side{
		{false, 1, "-heap", heap},
		{true, 1, "-wheel", wheel},
	}
	if sharded != nil {
		sides = append(sides, side{true, ctx.Shards, fmt.Sprintf("-shards%d", ctx.Shards), *sharded})
	}
	for _, sd := range sides {
		h := ctx.Header(sd.suffix)
		h.Shards = sd.shards
		e := ScalingEntry{
			LedgerHeader: h,
			UseWheel:     sd.wheel,
			Result:       sd.res,
			Churn:        schedMicroBench(sd.wheel, netsim.SchedulerChurn),
			Dense:        schedMicroBench(sd.wheel, netsim.SchedulerDense),
		}
		ctx.Printf("sched micro %s  churn %8.1f ns/op (%d allocs/op)  dense %8.1f ns/op (%d allocs/op)",
			sd.suffix[1:], e.Churn.NsPerOp, e.Churn.AllocsPerOp, e.Dense.NsPerOp, e.Dense.AllocsPerOp)
		ctx.Append(e)
	}
	return nil
}

func runTenKBench(ctx *bench.Context) error {
	cfg := TenKScalingBench()
	if ctx.Smoke {
		// The 10k cells take minutes; smoke verifies the same
		// sequential-vs-sharded gate on the CI-sized workload instead.
		cfg = SmokeScalingBench()
	}
	seq := scalingPass(ctx, cfg, true, 1)
	h := ctx.Header("-10k-seq")
	h.Shards = 1
	entries := []ScalingEntry{{LedgerHeader: h, UseWheel: true, Result: seq}}
	if ctx.Shards > 1 {
		res := scalingPass(ctx, cfg, true, ctx.Shards)
		if !SameGridsSharded(seq, res) {
			return fmt.Errorf("10k shards=%d grid diverged from sequential — not recording", ctx.Shards)
		}
		ctx.Printf("10k sharded grid identical; wall %0.1f ms (shards=1) vs %0.1f ms (shards=%d), %.2fx",
			seq.WallMs, res.WallMs, ctx.Shards, seq.WallMs/res.WallMs)
		hs := ctx.Header(fmt.Sprintf("-10k-shards%d", ctx.Shards))
		hs.Shards = ctx.Shards
		entries = append(entries, ScalingEntry{LedgerHeader: hs, UseWheel: true, Result: res})
	}
	if ctx.Smoke {
		ctx.Printf("smoke run: grid gate passed, nothing recorded")
		return nil
	}
	for _, e := range entries {
		ctx.Append(e)
	}
	return nil
}

// CtrlPlaneEntry is one appended record of the control-plane churn ledger.
type CtrlPlaneEntry struct {
	bench.LedgerHeader
	Result CtrlPlaneResult `json:"result"`
}

func runCtrlPlaneBench(ctx *bench.Context) error {
	cfg := DefaultCtrlPlane()
	if ctx.Smoke {
		cfg = SmokeCtrlPlane()
	}
	res := RunCtrlPlane(cfg)
	for _, p := range res.Pairs {
		for _, c := range []CtrlPlaneCell{p.Alloc, p.Pooled} {
			path := "alloc "
			if c.Pooled {
				path = "pooled"
			}
			ctx.Printf("ctrlplane %-13s %s  %8d msgs  %9.1f ms  %9.0f msgs/sec  %6.2f allocs/msg  gc=%d pause %6.2f ms  heap %6.1f MB",
				p.Protocol, path, c.CtrlMessages, c.WallMs, c.MsgsPerSec,
				c.AllocsPerMsg, c.GCCycles, c.GCPauseMs, c.HeapMB)
		}
		ctx.Printf("ctrlplane %-13s speedup %.2fx  identical=%v", p.Protocol, p.Speedup, p.Identical)
	}
	if !res.AllIdentical {
		return fmt.Errorf("pooled run diverged from allocating run — not recording")
	}
	if ctx.Smoke {
		ctx.Printf("smoke run: pooled/allocating gate passed, nothing recorded")
		return nil
	}
	ctx.Append(CtrlPlaneEntry{LedgerHeader: ctx.Header(""), Result: res})
	return nil
}

// StatePlaneEntry is one appended record of the state-plane ledger.
type StatePlaneEntry struct {
	bench.LedgerHeader
	Result StatePlaneResult `json:"result"`
}

func runStatePlaneBench(ctx *bench.Context) error {
	cfg := DefaultStatePlane()
	if ctx.Smoke {
		cfg = SmokeStatePlane()
	}
	res := RunStatePlane(cfg)
	for _, p := range res.Pairs {
		for _, c := range []StatePlaneCell{p.MapStore, p.FlatStore} {
			store := "map "
			if c.Flat {
				store = "flat"
			}
			ctx.Printf("stateplane %-13s %s  state=%5d  %6.1f B/entry  %9.1f ms  gc=%d pause %6.2f ms  heap %6.1f MB  delivered=%d",
				p.Protocol, store, c.State, c.BytesPerEntry, c.WallMs,
				c.GCCycles, c.GCPauseMs, c.HeapMB, c.Delivered)
		}
		ctx.Printf("stateplane %-13s bytes ratio %.2fx  speedup %.2fx  identical=%v",
			p.Protocol, p.BytesRatio, p.Speedup, p.Identical)
	}
	ctx.Printf("stateplane walk map  %6.1f ns/entry (%d allocs/sweep over %d entries)",
		res.WalkMap.NsPerEntry, res.WalkMap.AllocsPerSweep, res.WalkMap.Entries)
	ctx.Printf("stateplane walk flat %6.1f ns/entry (%d allocs/sweep over %d entries)",
		res.WalkFlat.NsPerEntry, res.WalkFlat.AllocsPerSweep, res.WalkFlat.Entries)
	if !res.AllIdentical {
		return fmt.Errorf("flat-store run diverged from map-store run — not recording")
	}
	if ctx.Smoke {
		ctx.Printf("smoke run: flat/map gate passed, nothing recorded")
		return nil
	}
	ctx.Append(StatePlaneEntry{LedgerHeader: ctx.Header(""), Result: res})
	return nil
}

// runTelemetryBench runs the PIM-SM crash/restart recovery cell with the
// time-series sampler attached and writes the per-router counter curves as
// JSON to ctx.Out (default telemetry.json); smoke runs the smoke-sized cell
// and discards the output. No ledger is touched either way.
func runTelemetryBench(ctx *bench.Context) error {
	cfg := DefaultRecovery()
	if ctx.Smoke {
		cfg = SmokeRecovery()
	}
	smp := RecoveryTelemetry(cfg, PIMSM, FaultCrash, 5*netsim.Second)
	if ctx.Smoke {
		if err := smp.WriteJSON(io.Discard); err != nil {
			return err
		}
		ctx.Printf("smoke run: telemetry curves rendered, nothing written")
		return nil
	}
	out := ctx.Out
	if out == "" {
		out = "telemetry.json"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := smp.WriteJSON(f); err != nil {
		return err
	}
	ctx.Printf("wrote pim-sm/crash telemetry curves to %s", out)
	return nil
}
