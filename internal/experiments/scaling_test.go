package experiments

import (
	"reflect"
	"testing"

	"pim/internal/netsim"
)

// benchSparse shrinks the scaling-bench base for test speed.
func benchSparse() SparseConfig {
	cfg := DefaultSparse()
	cfg.Nodes = 20
	cfg.Groups = 2
	cfg.Warmup = 10 * netsim.Second
	cfg.Duration = 40 * netsim.Second
	return cfg
}

// TestSenderScalingPerRouterState pins the §3 state asymmetry at per-router
// granularity: PIM "require[s] enumeration of sources", so the average
// per-router entry count climbs with the sender set; CBT's shared tree keeps
// one per-group entry per on-tree router regardless of how many sources
// transmit.
func TestSenderScalingPerRouterState(t *testing.T) {
	base := benchSparse()
	base.Duration = 90 * netsim.Second
	points := RunSenderScaling(base, []int{1, 4}, []Protocol{PIMSM, CBT})
	perRouter := func(r Result) float64 { return float64(r.State) / float64(base.Nodes) }

	pim1, pim4 := perRouter(points[0].Results[0]), perRouter(points[1].Results[0])
	cbt1, cbt4 := perRouter(points[0].Results[1]), perRouter(points[1].Results[1])
	if pim4 <= pim1 {
		t.Errorf("PIM per-router state flat across senders: %.2f -> %.2f", pim1, pim4)
	}
	// CBT may gain a handful of transient entries; anything close to PIM's
	// growth means source enumeration leaked into the shared tree.
	if grow, pimGrow := cbt4-cbt1, pim4-pim1; grow > pimGrow/2 {
		t.Errorf("CBT per-router growth %.2f not well below PIM's %.2f", grow, pimGrow)
	}
	// The new scheduler-side columns must be populated: a run that processed
	// no events or armed no timers did not simulate anything.
	for _, pt := range points {
		for _, r := range pt.Results {
			if r.Events <= 0 || r.PeakTimers <= 0 {
				t.Errorf("%s x=%d: Events=%d PeakTimers=%d, want both positive",
					r.Protocol, pt.X, r.Events, r.PeakTimers)
			}
		}
	}
}

// TestScalingBenchGridsMatchAcrossSchedulers is the experiment-level half of
// the scheduler-swap acceptance: the smoke sweep grid — state, control, data,
// delivery, event, and peak-timer columns in every cell — must be
// bit-identical whether the simulations run on the binary heap or on the
// timing wheel.
func TestScalingBenchGridsMatchAcrossSchedulers(t *testing.T) {
	cfg := SmokeScalingBench()
	cfg.Base.Nodes = 20
	cfg.Base.Duration = 40 * netsim.Second
	cfg.Sizes = []int{15, 25}

	prev := netsim.SetUseWheel(false)
	heap := RunScalingBench(cfg)
	netsim.SetUseWheel(true)
	wheel := RunScalingBench(cfg)
	netsim.SetUseWheel(prev)

	if !SameGrids(heap, wheel) {
		for i := range heap.Sweeps {
			if !reflect.DeepEqual(heap.Sweeps[i].Grid, wheel.Sweeps[i].Grid) {
				t.Errorf("sweep %q diverged:\nheap  = %+v\nwheel = %+v",
					heap.Sweeps[i].Name, heap.Sweeps[i].Grid, wheel.Sweeps[i].Grid)
			}
		}
		t.Fatal("heap and wheel scaling grids diverged")
	}
	if heap.Events == 0 || heap.PeakTimers == 0 {
		t.Fatalf("degenerate bench run: %+v", heap)
	}
}

// TestScalingBenchDeterministicAcrossWorkers covers the bench driver the way
// determinism_test covers the raw sweeps: simulated grids (now including the
// Events and PeakTimers columns) identical for any worker count; only wall
// times may differ.
func TestScalingBenchDeterministicAcrossWorkers(t *testing.T) {
	cfg := SmokeScalingBench()
	cfg.Base.Nodes = 15
	cfg.Base.Duration = 40 * netsim.Second
	cfg.Sizes = []int{12, 18}
	cfg.Protos = []Protocol{PIMSM, PIMDM}

	cfg.Base.Workers = 1
	seq := RunScalingBench(cfg)
	cfg.Base.Workers = 8
	par := RunScalingBench(cfg)
	if !SameGrids(seq, par) {
		t.Fatalf("scaling bench grids diverged across Workers:\nseq = %+v\npar = %+v", seq, par)
	}
}
