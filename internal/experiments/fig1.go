package experiments

import (
	"pim/internal/addr"
	"pim/internal/cbt"
	"pim/internal/core"
	"pim/internal/dvmrp"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimdm"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// Figure 1 topology (§1.3): three domains communicating across an internet
// backbone, one group member in each domain.
//
//	backbone ring: 0 - 1 - 2 - 3 - 0, chord 0 - 2
//	domain A: border 4 (at 0), interior 5   <- member + source
//	domain B: border 6 (at 1), interior 7   <- member (+ source Y in 1c)
//	domain C: border 8 (at 2), interior 9   <- member (+ source Z in 1c)
type fig1Sim struct {
	sim     *scenario.Sim
	hosts   map[int]*igmp.Host // router index -> host
	group   addr.IP
	rp      addr.IP // in domain A (router 4), also the CBT core
	baseIdx int     // backbone links are edges [0..4]
}

func buildFig1() *fig1Sim {
	g := topology.New(10)
	g.AddEdge(0, 1, 2) // backbone (edges 0..4)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 2)
	g.AddEdge(3, 0, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(0, 4, 1) // domain A
	g.AddEdge(4, 5, 1)
	g.AddEdge(1, 6, 1) // domain B
	g.AddEdge(6, 7, 1)
	g.AddEdge(2, 8, 1) // domain C
	g.AddEdge(8, 9, 1)
	sim := scenario.Build(g)
	f := &fig1Sim{sim: sim, hosts: map[int]*igmp.Host{}, group: addr.GroupForIndex(0)}
	for _, r := range []int{5, 7, 9} {
		f.hosts[r] = sim.AddHost(r)
	}
	sim.FinishUnicast(scenario.UseOracle)
	f.rp = sim.RouterAddr(4)
	return f
}

// Fig1Result reports the data-plane footprint of one protocol on the
// three-domain scenario.
type Fig1Result struct {
	Protocol Protocol
	// BackboneLinksTouched counts backbone links (of 5) that carried data.
	BackboneLinksTouched int
	// TotalLinksTouched counts all graph links that carried data.
	TotalLinksTouched int
	// DataPackets is total data link-crossings during the measured phase.
	DataPackets int64
	// BackboneDataPackets sums data crossings over the five backbone links
	// — the wide-area cost the paper's Figure 1 argues about.
	BackboneDataPackets int64
	// MaxLinkData is the busiest graph link's data packet count.
	MaxLinkData int64
	// Delivered sums member host receptions.
	Delivered int
	// MeanDelay is the average sender→member one-way delay, the Figure 1(c)
	// "packets from Y to Z will not travel via the shortest path" metric.
	MeanDelay netsim.Time
}

func (f *fig1Sim) deploy(proto Protocol, pruneLifetime netsim.Time) {
	switch proto {
	case PIMSM:
		f.sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: map[addr.IP][]addr.IP{f.group: {f.rp}}}))
	case PIMSMShared:
		f.sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
			RPMapping: map[addr.IP][]addr.IP{f.group: {f.rp}},
			SPTPolicy: core.SwitchNever,
		}))
	case DVMRP:
		f.sim.Deploy(scenario.DVMRPMode, scenario.WithDVMRPConfig(dvmrp.Config{PruneLifetime: pruneLifetime}))
	case PIMDM:
		f.sim.Deploy(scenario.DenseMode, scenario.WithDenseConfig(pimdm.Config{PruneHoldTime: pruneLifetime}))
	case CBT:
		f.sim.Deploy(scenario.CBTMode, scenario.WithCBTConfig(cbt.Config{CoreMapping: map[addr.IP]addr.IP{f.group: f.rp}}))
	default:
		panic("experiments: protocol not applicable to figure 1: " + string(proto))
	}
}

// RunFig1Broadcast reproduces Figure 1(b)'s point: a single source in
// domain A sending to three sparse members. Dense-mode protocols
// periodically re-broadcast across the whole internet when prunes expire;
// sparse-mode trees touch only member paths.
func RunFig1Broadcast(proto Protocol, pruneLifetime netsim.Time) Fig1Result {
	f := buildFig1()
	f.deploy(proto, pruneLifetime)
	f.sim.Run(2 * netsim.Second)
	for _, h := range f.hosts {
		h.Join(f.group)
	}
	f.sim.Run(10 * netsim.Second)

	src := f.hosts[5]
	f.sim.Net.Stats.Reset()
	// Send one packet per second for 4 prune lifetimes so dense-mode
	// grow-back shows up in the measured phase.
	duration := 4 * pruneLifetime
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		scenario.SendData(src, f.group, 128)
		f.sim.Net.Sched.After(netsim.Second, pump)
	}
	f.sim.Net.Sched.After(0, pump)
	f.sim.Run(duration)
	stop = true
	return f.collect(proto)
}

// RunFig1Concentration reproduces Figure 1(c)'s point: sources Y (domain B)
// and Z (domain C) both send; with a shared tree rooted in domain A all
// traffic funnels over the links toward the core, while SPTs route B↔C
// traffic over the shorter direct path.
func RunFig1Concentration(proto Protocol) Fig1Result {
	f := buildFig1()
	f.deploy(proto, 600*netsim.Second)
	f.sim.Run(2 * netsim.Second)
	for _, h := range f.hosts {
		h.Join(f.group)
	}
	f.sim.Run(10 * netsim.Second)
	f.sim.Net.Stats.Reset()
	var delaySum netsim.Time
	var delayN int64
	for _, h := range f.hosts {
		h := h
		h.OnData = func(g addr.IP, pkt *packet.Packet) {
			if d, ok := scenario.Latency(f.sim.Net.Sched.Now(), pkt); ok {
				delaySum += d
				delayN++
			}
		}
	}
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		scenario.SendData(f.hosts[7], f.group, 128) // Y
		scenario.SendData(f.hosts[9], f.group, 128) // Z
		f.sim.Net.Sched.After(netsim.Second, pump)
	}
	f.sim.Net.Sched.After(0, pump)
	f.sim.Run(60 * netsim.Second)
	stop = true
	res := f.collect(proto)
	if delayN > 0 {
		res.MeanDelay = delaySum / netsim.Time(delayN)
	}
	return res
}

func (f *fig1Sim) collect(proto Protocol) Fig1Result {
	res := Fig1Result{Protocol: proto}
	for ei, l := range f.sim.EdgeLinks {
		n := f.sim.Net.Stats.PerLink[l.ID].DataPackets
		if n == 0 {
			continue
		}
		res.TotalLinksTouched++
		if ei < 5 {
			res.BackboneLinksTouched++
		}
	}
	res.DataPackets = f.sim.Net.Stats.Totals.DataPackets
	// Concentration over backbone/graph links only: member host LANs carry
	// every delivered packet under any protocol.
	for ei, l := range f.sim.EdgeLinks {
		n := f.sim.Net.Stats.PerLink[l.ID].DataPackets
		if n > res.MaxLinkData {
			res.MaxLinkData = n
		}
		if ei < 5 {
			res.BackboneDataPackets += n
		}
	}
	for _, h := range f.hosts {
		res.Delivered += h.Received[f.group]
	}
	return res
}
