package experiments

import (
	"time"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/fastpath"
	"pim/internal/igmp"
	"pim/internal/metrics"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimdm"
	"pim/internal/scenario"
	"pim/internal/topology"
	"pim/internal/unicast"
)

// The data-plane benchmark drives steady-state forwarding down an N-hop
// chain — the workload where the per-packet path (LPM for RPF checks,
// outgoing-interface list construction) dominates — once over the reference
// path and once over the fast path (trie LPM + generation-stamped RPF cache
// + compiled MFIB fan-out; see internal/fastpath). Both runs use identical
// seeds and schedules, so their packet delivery traces must be bit
// identical; cmd/pimbench refuses to record a ledger entry otherwise.
//
// Three phases cover the distinct per-packet code paths:
//
//   - shared: PIM-SM pinned to the RP tree (§3.2 shared-tree forwarding,
//     negative-cache subtraction on every hop);
//   - spt: PIM-SM with immediate SPT switching (§3.3), exercising the
//     (S,G)∪shared union rule of §3.5;
//   - dense: PIM-DM broadcast-and-prune steady state, where every hop
//     RPF-checks every packet against the unicast table.

// DataplaneConfig parameterizes the N-hop forwarding benchmark.
type DataplaneConfig struct {
	// Hops is the chain length (routers). The source hangs off the
	// highest-index router so reference-path linear scans traverse a
	// realistic share of the table.
	Hops int
	// Packets sent in the measured phase, PacketGap apart.
	Packets   int
	PacketGap netsim.Time
	// Payload is the data packet payload size in bytes.
	Payload int
	// FillerRoutes pads every router's unicast table with this many inert
	// /24s, modelling the backbone-scale tables the paper's wide-area
	// setting implies. They sit below the scenario address plan so per-packet
	// RPF lookups must consider them; the multicast traffic never targets
	// them, so forwarding behaviour is unchanged on either path.
	FillerRoutes int
}

// DefaultDataplane returns the ledger workload: long enough for steady
// state to dominate, short enough for bench-smoke. The chain length stays
// under packet.DefaultTTL (64) so measured packets reach the far receiver.
func DefaultDataplane() DataplaneConfig {
	return DataplaneConfig{
		Hops: 56, Packets: 2000, PacketGap: 10 * netsim.Millisecond,
		Payload: 16, FillerRoutes: 1024,
	}
}

// SmokeDataplane returns the CI-sized workload: a short chain and a few
// hundred packets — enough to exercise every phase and the ref/fast
// trace-equivalence gate without the ledger run's wall-clock cost.
func SmokeDataplane() DataplaneConfig {
	return DataplaneConfig{
		Hops: 16, Packets: 200, PacketGap: 10 * netsim.Millisecond,
		Payload: 16, FillerRoutes: 128,
	}
}

// DeliveryEvent is one packet arrival at a member host — the unit of the
// trace-equivalence gate. Sent carries the origination timestamp stamped
// into the payload, so the tuple pins source, path delay, and ordering.
type DeliveryEvent struct {
	At   netsim.Time
	Host int
	Src  addr.IP
	Sent netsim.Time
}

// DataplaneRun is one phase executed on one path.
type DataplaneRun struct {
	WallMs    float64
	Delivered int
	// DataCrossings counts data-packet link crossings (per-hop forwarding
	// work actually performed).
	DataCrossings int64
	// Forwarded sums the routers' data.forwarded counters over the measured
	// window — the router-side view of the same work, reset per pass so it
	// spans exactly what DataCrossings spans.
	Forwarded int64
	Trace     []DeliveryEvent
}

// DataplanePhase compares the two paths on one protocol phase.
type DataplanePhase struct {
	Name      string  `json:"name"`
	RefMs     float64 `json:"ref_ms"`
	FastMs    float64 `json:"fast_ms"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"traces_identical"`
	Delivered int     `json:"delivered"`
	Crossings int64   `json:"data_crossings"`
	Forwarded int64   `json:"data_forwarded"`
}

// DataplaneResult is the full benchmark outcome. Speedup is the headline:
// total reference wall time over total fast-path wall time across all
// phases. The per-phase numbers decompose it — the RPF-per-hop dense phase
// shows the full trie+cache win, while the PIM-SM phases bound it, since
// established shared/shortest-path trees forward from precomputed state by
// design (§3.5) and only the fan-out compilation is left to save.
type DataplaneResult struct {
	Hops    int              `json:"hops"`
	Packets int              `json:"packets"`
	Fillers int              `json:"filler_routes"`
	Phases  []DataplanePhase `json:"phases"`
	// AllIdentical gates ledger recording in cmd/pimbench.
	AllIdentical bool `json:"all_identical"`
	// Speedup is total reference wall time / total fast wall time.
	Speedup float64 `json:"speedup"`
}

// dataplanePhases names the benchmark phases in execution order.
var dataplanePhases = []string{"shared", "spt", "dense"}

// RunDataplane executes every phase on both paths and restores the
// fast-path switch to its prior setting.
func RunDataplane(cfg DataplaneConfig) DataplaneResult {
	prev := fastpath.Set(true)
	defer fastpath.Set(prev)
	res := DataplaneResult{
		Hops: cfg.Hops, Packets: cfg.Packets, Fillers: cfg.FillerRoutes,
		AllIdentical: true,
	}
	var refTotal, fastTotal float64
	for _, name := range dataplanePhases {
		fastpath.Set(false)
		ref := runDataplaneOnce(cfg, name)
		fastpath.Set(true)
		fast := runDataplaneOnce(cfg, name)
		p := DataplanePhase{
			Name:    name,
			RefMs:   ref.WallMs,
			FastMs:  fast.WallMs,
			Speedup: ref.WallMs / fast.WallMs,
			Identical: tracesEqual(ref.Trace, fast.Trace) && ref.Delivered == fast.Delivered &&
				ref.DataCrossings == fast.DataCrossings && ref.Forwarded == fast.Forwarded,
			Delivered: fast.Delivered,
			Crossings: fast.DataCrossings,
			Forwarded: fast.Forwarded,
		}
		res.Phases = append(res.Phases, p)
		if !p.Identical {
			res.AllIdentical = false
		}
		refTotal += ref.WallMs
		fastTotal += fast.WallMs
	}
	if fastTotal > 0 {
		res.Speedup = refTotal / fastTotal
	}
	return res
}

func tracesEqual(a, b []DeliveryEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runDataplaneOnce builds a fresh chain simulation, establishes the phase's
// distribution tree, then times the measured send window. Setup and warmup
// are excluded from the wall clock: the benchmark isolates steady-state
// per-packet cost.
func runDataplaneOnce(cfg DataplaneConfig, phase string) DataplaneRun {
	h := cfg.Hops
	g := topology.New(h)
	for i := 0; i < h-1; i++ {
		g.AddEdge(i, i+1, 1)
	}
	sim := scenario.Build(g)
	// Source behind the last router; receivers behind the first and middle
	// routers, so packets traverse the full chain and fork once.
	src := sim.AddHost(h - 1)
	receivers := []*igmp.Host{sim.AddHost(0), sim.AddHost(h / 2)}
	sim.FinishUnicast(scenario.UseOracle)
	installFillerRoutes(sim, cfg.FillerRoutes)

	group := addr.GroupForIndex(0)
	var routerCounters []*metrics.Counters
	switch phase {
	case "shared":
		d := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
			RPMapping: map[addr.IP][]addr.IP{group: {sim.RouterAddr(0)}},
			SPTPolicy: core.SwitchNever,
		})).(*scenario.PIMDeployment)
		for _, r := range d.Routers {
			routerCounters = append(routerCounters, r.Metrics)
		}
	case "spt":
		d := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{
			RPMapping: map[addr.IP][]addr.IP{group: {sim.RouterAddr(0)}},
		})).(*scenario.PIMDeployment)
		for _, r := range d.Routers {
			routerCounters = append(routerCounters, r.Metrics)
		}
	case "dense":
		d := sim.Deploy(scenario.DenseMode, scenario.WithDenseConfig(pimdm.Config{})).(*scenario.PIMDMDeployment)
		for _, r := range d.Routers {
			routerCounters = append(routerCounters, r.Metrics)
		}
	default:
		panic("experiments: unknown dataplane phase " + phase)
	}

	sim.Run(2 * netsim.Second)
	for _, r := range receivers {
		r.Join(group)
	}
	sim.Run(30 * netsim.Second)
	// Prime the trees (registers, SPT switches, dense-mode prunes) so the
	// measured window is pure steady state.
	for i := 0; i < 5; i++ {
		scenario.SendData(src, group, cfg.Payload)
		sim.Run(netsim.Second)
	}
	sim.Run(10 * netsim.Second)

	run := DataplaneRun{}
	// Baseline the per-host counters so Delivered covers only the measured
	// window, not the priming packets.
	primed := make([]int, len(receivers))
	for hi, r := range receivers {
		hi, r := hi, r
		primed[hi] = r.Received[group]
		r.OnData = func(grp addr.IP, pkt *packet.Packet) {
			if grp != group {
				return
			}
			ev := DeliveryEvent{At: sim.Net.Sched.Now(), Host: hi, Src: pkt.Src}
			if lat, ok := scenario.Latency(ev.At, pkt); ok {
				ev.Sent = ev.At - lat
			}
			run.Trace = append(run.Trace, ev)
		}
	}
	// Reset both halves of the overhead ledger together: link stats and the
	// routers' counters must cover exactly the measured window, or the
	// router-side numbers silently include warmup and priming traffic.
	sim.Net.Stats.Reset()
	for _, c := range routerCounters {
		c.Reset()
	}
	for i := 0; i < cfg.Packets; i++ {
		sim.Net.Sched.After(netsim.Time(i)*cfg.PacketGap, func() {
			scenario.SendData(src, group, cfg.Payload)
		})
	}
	t0 := time.Now()
	sim.Run(netsim.Time(cfg.Packets)*cfg.PacketGap + 10*netsim.Second)
	run.WallMs = float64(time.Since(t0).Microseconds()) / 1000

	for hi, r := range receivers {
		run.Delivered += r.Received[group] - primed[hi]
		r.OnData = nil
	}
	run.DataCrossings = sim.Net.Stats.Totals.DataPackets
	for _, c := range routerCounters {
		run.Forwarded += c.Get(metrics.DataForwarded)
	}
	return run
}

// installFillerRoutes pads every router's table with n inert /24s under
// 10.(1..99).x — below the scenario's 10.100 host LANs and 10.200 backbone
// links, so they are covered by every real lookup's scan range but never
// selected. The oracle only recomputes tables on link changes, which this
// benchmark has none of, so the padding persists through the run.
func installFillerRoutes(sim *scenario.Sim, n int) {
	if n <= 0 {
		return
	}
	for i := range sim.Routers {
		tb, ok := sim.UnicastFor(i).(*unicast.Table)
		if !ok {
			return
		}
		var via *netsim.Iface
		for _, ifc := range sim.Routers[i].Ifaces {
			if ifc.Up() && ifc.Addr != 0 {
				via = ifc
				break
			}
		}
		for j := 0; j < n; j++ {
			p := addr.Prefix{Addr: addr.V4(10, byte(1+j/200), byte(j%200), 0), Len: 24}
			tb.Set(p, unicast.Route{Iface: via, Metric: 1})
		}
		tb.NotifyChanged()
	}
}
