package experiments

import (
	"reflect"
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/parallel"
	"pim/internal/scenario"
)

// shortRecovery shrinks the matrix run for smoke testing: same topology and
// clocks, shorter tail after the restart.
func shortRecovery() RecoveryConfig {
	cfg := DefaultRecovery()
	cfg.End = 150 * netsim.Second
	return cfg
}

// TestRecoveryMatrix runs the full fault matrix and checks the acceptance
// properties: traces identical on both forwarding paths in every cell, and
// the soft-state protocols (PIM-SM, PIM-DM) converging under 20%
// control-plane loss.
func TestRecoveryMatrix(t *testing.T) {
	cfg := shortRecovery()
	if testing.Short() {
		cfg.Workers = 1
	}
	res := RunRecovery(cfg)
	if len(res.Cells) != len(RecoveryProtocols())*len(RecoveryFaults()) {
		t.Fatalf("matrix has %d cells", len(res.Cells))
	}
	for _, c := range res.Cells {
		t.Logf("%-8s %-7s recovered=%-5v t=%6.2fs ctrl=%4d residual=%3d delivered=%d identical=%v",
			c.Protocol, c.Fault, c.Recovered, c.RecoverySec, c.CtrlMessages, c.ResidualState, c.Delivered, c.Identical)
		if !c.Identical {
			t.Errorf("%s/%s: reference and fast-path runs diverged", c.Protocol, c.Fault)
		}
		// The loss cells answer the paper's §2 robustness claim directly:
		// periodic refresh (plus the acked graft/join handshakes) must
		// converge the late join through 20% control loss.
		if c.Fault != FaultFlap && c.Fault != FaultCrash && !c.Recovered {
			t.Errorf("%s/%s: late join never converged", c.Protocol, c.Fault)
		}
	}
}

// TestRecoveryMatrixChecked reruns the matrix with the online invariant
// checker attached to every cell: lost control messages, link flaps, and
// crash/restart cycles must not produce a dead-epoch timer fire, an
// RPF-inconsistent iif, a negative-cache leak, or a dirty restart — on
// either forwarding path.
func TestRecoveryMatrixChecked(t *testing.T) {
	cfg := shortRecovery()
	cfg.Checked = true
	if testing.Short() {
		cfg.Workers = 1
	}
	res := RunRecovery(cfg)
	for _, c := range res.Cells {
		for _, v := range c.Violations {
			t.Errorf("%s/%s: invariant violation: %s", c.Protocol, c.Fault, v)
		}
	}
}

// engineProbes extracts per-router state and neighbor probes from a
// deployment. neighbors is nil for the protocols that keep no neighbor
// liveness table (CBT tracks per-group children, MOSPF uses the domain).
func engineProbes(dep scenario.Deployment) (state func(i int) int, neighbors func() int) {
	switch d := dep.(type) {
	case *scenario.PIMDeployment:
		state = func(i int) int { return d.Routers[i].StateCount() }
		neighbors = func() int {
			n := 0
			for _, r := range d.Routers {
				n += r.NeighborCount()
			}
			return n
		}
	case *scenario.PIMDMDeployment:
		state = func(i int) int { return d.Routers[i].StateCount() }
		neighbors = func() int {
			n := 0
			for _, r := range d.Routers {
				n += r.NeighborCount()
			}
			return n
		}
	case *scenario.DVMRPDeployment:
		state = func(i int) int { return d.Routers[i].StateCount() }
		neighbors = func() int {
			n := 0
			for _, r := range d.Routers {
				n += r.NeighborCount()
			}
			return n
		}
	case *scenario.CBTDeployment:
		state = func(i int) int { return d.Routers[i].StateCount() }
	case *scenario.MOSPFDeployment:
		state = func(i int) int { return d.Routers[i].StateCount() }
	}
	return state, neighbors
}

// TestCrashRestartPerEngine is the acceptance test for the Restart
// lifecycle: for every engine, kill the mid-tree router at steady state,
// verify its state is really gone, and verify both that delivery resumes
// within a bounded number of refresh intervals after the restart and that
// no permanently stale neighbor entries survive.
func TestCrashRestartPerEngine(t *testing.T) {
	const (
		faultAt   = 60 * netsim.Second
		restartAt = 90 * netsim.Second
		// settleAt leaves three join/prune refresh intervals (20 s) after
		// the restart for the slowest soft-state rebuild.
		settleAt = 160 * netsim.Second
	)
	for _, proto := range RecoveryProtocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			sim, src, recvA, recvB := recoverySim(proto)
			group := addr.GroupForIndex(0)
			dep := deployRecovery(sim, proto, group, 3)
			state, neighbors := engineProbes(dep)

			sched := sim.Net.Sched
			sched.At(2*netsim.Second, func() { recvA.Join(group) })
			sched.At(2*netsim.Second, func() { recvB.Join(group) })
			for at := 5 * netsim.Second; at < settleAt; at += 2 * netsim.Second {
				at := at
				sched.At(at, func() { scenario.SendData(src, group, 64) })
			}

			sim.Run(faultAt)
			if recvA.Received[group] == 0 || recvB.Received[group] == 0 {
				t.Fatalf("no steady-state delivery before the fault: A=%d B=%d",
					recvA.Received[group], recvB.Received[group])
			}
			dep.Crash(2)
			if got := state(2); got != 0 {
				t.Fatalf("crashed router still holds %d state entries", got)
			}

			sim.Run(restartAt - faultAt)
			dep.Restart(2)
			if got := state(2); got != 0 {
				t.Fatalf("restarted router came back with %d preserved entries", got)
			}
			sim.Run(5 * netsim.Second)
			baseA, baseB := recvA.Received[group], recvB.Received[group]
			sim.Run(settleAt - restartAt - 5*netsim.Second)

			if recvA.Received[group] <= baseA || recvB.Received[group] <= baseB {
				t.Errorf("delivery did not resume within 3 refresh intervals of the restart: A %d->%d, B %d->%d",
					baseA, recvA.Received[group], baseB, recvB.Received[group])
			}
			if neighbors != nil {
				// 5 backbone edges, one live entry per endpoint: a higher
				// count means a stale entry survived the crash, a lower one
				// means the restarted router was not re-learned.
				if got := neighbors(); got != 10 {
					t.Errorf("live neighbor entries = %d after settle, want 10", got)
				}
			}
		})
	}
}

// TestRecoveryMatrixWheelEquivalence is the fault-injection half of the
// scheduler-swap acceptance: every cell of the 25-cell protocol × fault
// matrix — crash/restart epochs, link flaps, Bernoulli control loss — must
// produce a bit-identical delivery trace and identical recovery metrics on
// the binary heap and on the timing wheel. Faults exercise the scheduler
// paths ordinary runs don't (mass cancellation at crash, timer re-arming
// storms after restart), so same-deadline ordering bugs surface here first.
func TestRecoveryMatrixWheelEquivalence(t *testing.T) {
	cfg := shortRecovery()
	protos, kinds := RecoveryProtocols(), RecoveryFaults()
	n := len(protos) * len(kinds)
	sweep := func(wheel bool) []recoveryRun {
		prev := netsim.SetUseWheel(wheel)
		defer netsim.SetUseWheel(prev)
		runs := make([]recoveryRun, n)
		parallel.For(n, cfg.Workers, func(i int) {
			runs[i] = runRecoveryOnce(cfg, protos[i/len(kinds)], kinds[i%len(kinds)],
				parallel.DeriveSeed(cfg.Seed, int64(i)), nil)
		})
		return runs
	}
	heap := sweep(false)
	wheel := sweep(true)
	for i := range heap {
		h, w := heap[i], wheel[i]
		proto, kind := protos[i/len(kinds)], kinds[i%len(kinds)]
		if !tracesEqual(h.trace, w.trace) {
			t.Errorf("%s/%s: delivery traces diverged between heap and wheel (%d vs %d events)",
				proto, kind, len(h.trace), len(w.trace))
		}
		if h.recovery != w.recovery || h.residual != w.residual ||
			h.delivered != w.delivered || h.ctrl != w.ctrl || h.treeQuiet != w.treeQuiet {
			t.Errorf("%s/%s: metrics diverged: heap={rec:%v res:%d del:%d ctrl:%d quiet:%v} wheel={rec:%v res:%d del:%d ctrl:%d quiet:%v}",
				proto, kind, h.recovery, h.residual, h.delivered, h.ctrl, h.treeQuiet,
				w.recovery, w.residual, w.delivered, w.ctrl, w.treeQuiet)
		}
	}
}

// TestRecoveryDeterministicAcrossWorkers is the determinism regression: the
// matrix must be bit-identical whatever the worker count, because every cell
// is an isolated simulation seeded from (Seed, cell index) only.
func TestRecoveryDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix comparison; covered by TestRecoveryMatrix in short mode")
	}
	cfg := shortRecovery()
	cfg.Workers = 1
	seq := RunRecovery(cfg)
	cfg.Workers = 4
	par := RunRecovery(cfg)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("results differ across Workers:\nworkers=1: %+v\nworkers=4: %+v", seq, par)
	}
}
