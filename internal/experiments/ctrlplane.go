package experiments

import (
	"math/rand"
	"runtime"
	"time"

	"pim/internal/addr"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// The control-plane churn benchmark isolates the paper's §2.3 steady state:
// an internet where every tree is already built and the only traffic is
// periodic soft-state refresh — PIM queries and join/prune refreshes, RP
// beacons, DVMRP probes, CBT echoes, dense-mode member advertisements, IGMP
// query/report cycles. This is the workload the zero-allocation send path
// (packet.Scratch encoders + pooled netsim frames) targets: every refresh
// message used to cost several heap objects per link crossing, and at 1000
// routers the garbage collector became a visible fraction of wall time.
//
// Each protocol runs twice in-process — once on the pooled frame path and
// once on the allocating closure path (the differential oracle) — and the
// ledger refuses to record unless the two runs' simulated observables
// (forwarding state, control-message counts, scheduler events) are
// bit-identical. The host-side numbers (wall time, mallocs/msg, GC cycles
// and pause) are then attributable purely to the allocation discipline.

// CtrlPlaneConfig parameterizes the steady-state churn benchmark.
type CtrlPlaneConfig struct {
	Nodes   int
	Degree  float64
	Groups  int
	Members int
	Seed    int64
	// Warmup builds the trees (joins, hellos, unicast settle); Duration is
	// the measured pure-refresh phase. No data packets flow at any point:
	// the workload is the control plane alone.
	Warmup   netsim.Time
	Duration netsim.Time
	Protos   []Protocol
}

// DefaultCtrlPlane is the ledger workload: a 1000-router internet holding
// steady-state refresh for ten simulated minutes across every protocol.
func DefaultCtrlPlane() CtrlPlaneConfig {
	return CtrlPlaneConfig{
		Nodes: 1000, Degree: 4, Groups: 8, Members: 5, Seed: 42,
		Warmup: 60 * netsim.Second, Duration: 600 * netsim.Second,
		Protos: AllProtocols(),
	}
}

// SmokeCtrlPlane is the CI-sized workload for make ctrl-smoke: a small
// internet, three protocols, same code paths and the same pooled/allocating
// equivalence gate; nothing is recorded.
func SmokeCtrlPlane() CtrlPlaneConfig {
	return CtrlPlaneConfig{
		Nodes: 40, Degree: 4, Groups: 3, Members: 3, Seed: 42,
		Warmup: 30 * netsim.Second, Duration: 120 * netsim.Second,
		Protos: []Protocol{PIMSM, DVMRP, CBT},
	}
}

// CtrlPlaneCell is one (protocol, frame-path) measurement.
type CtrlPlaneCell struct {
	Protocol Protocol `json:"protocol"`
	Pooled   bool     `json:"pooled"`

	// Simulated observables — must be bit-identical between the pooled and
	// allocating runs of the same protocol (the ledger gate).
	CtrlMessages int64 `json:"ctrl_messages"`
	State        int   `json:"state"`
	Events       int64 `json:"events"`

	// Host-side cost of the measured phase.
	WallMs     float64 `json:"wall_ms"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// Mallocs is the runtime.MemStats.Mallocs delta across the measured
	// phase; AllocsPerMsg normalizes it per control message sent.
	Mallocs      uint64  `json:"mallocs"`
	AllocsPerMsg float64 `json:"allocs_per_msg"`
	// GCCycles and GCPauseMs are the NumGC / PauseTotalNs deltas; HeapMB is
	// live heap at the end of the measured phase.
	GCCycles  uint32  `json:"gc_cycles"`
	GCPauseMs float64 `json:"gc_pause_ms"`
	HeapMB    float64 `json:"heap_mb"`
}

// CtrlPlanePair is one protocol's before/after: the allocating oracle run
// and the pooled run over the identical simulation.
type CtrlPlanePair struct {
	Protocol  Protocol      `json:"protocol"`
	Alloc     CtrlPlaneCell `json:"alloc"`
	Pooled    CtrlPlaneCell `json:"pooled"`
	Identical bool          `json:"identical"`
	// Speedup is alloc wall time over pooled wall time for the measured
	// phase (>1 means pooling won).
	Speedup float64 `json:"speedup"`
}

// CtrlPlaneResult aggregates the per-protocol pairs.
type CtrlPlaneResult struct {
	Pairs        []CtrlPlanePair `json:"pairs"`
	AllIdentical bool            `json:"all_identical"`
	WallMs       float64         `json:"wall_ms"`
}

// RunCtrlPlane runs every configured protocol on both frame paths and
// returns the paired measurements. Cells run sequentially in-process so the
// runtime.MemStats deltas attribute cleanly to one simulation at a time.
func RunCtrlPlane(cfg CtrlPlaneConfig) CtrlPlaneResult {
	res := CtrlPlaneResult{AllIdentical: true}
	t0 := time.Now()
	for _, proto := range cfg.Protos {
		alloc := runCtrlPlaneCell(cfg, proto, false)
		pooled := runCtrlPlaneCell(cfg, proto, true)
		pair := CtrlPlanePair{
			Protocol: proto, Alloc: alloc, Pooled: pooled,
			Identical: alloc.CtrlMessages == pooled.CtrlMessages &&
				alloc.State == pooled.State &&
				alloc.Events == pooled.Events,
		}
		if pooled.WallMs > 0 {
			pair.Speedup = alloc.WallMs / pooled.WallMs
		}
		if !pair.Identical {
			res.AllIdentical = false
		}
		res.Pairs = append(res.Pairs, pair)
	}
	res.WallMs = float64(time.Since(t0).Microseconds()) / 1000
	return res
}

// runCtrlPlaneCell builds one internet, joins the members, lets the trees
// form, then measures a pure-refresh window under the requested frame path.
func runCtrlPlaneCell(cfg CtrlPlaneConfig, proto Protocol, pooled bool) CtrlPlaneCell {
	prev := netsim.SetFramePool(pooled)
	defer netsim.SetFramePool(prev)

	rng := rand.New(rand.NewSource(cfg.Seed))
	g := topology.Random(topology.GenConfig{Nodes: cfg.Nodes, Degree: cfg.Degree}, rng)
	groups := make([]addr.IP, cfg.Groups)
	memberIdx := make([][]int, cfg.Groups)
	for gi := range groups {
		groups[gi] = addr.GroupForIndex(gi)
		memberIdx[gi] = topology.PickDistinct(cfg.Nodes, cfg.Members, rng)
	}

	sim := scenario.Build(g)
	recvHosts := make([][]*igmp.Host, cfg.Groups)
	hostAt := map[int]*igmp.Host{}
	for gi := range groups {
		for _, m := range memberIdx[gi] {
			h := hostAt[m]
			if h == nil {
				h = sim.AddHost(m)
				hostAt[m] = h
			}
			recvHosts[gi] = append(recvHosts[gi], h)
		}
	}
	sim.FinishUnicast(scenario.UseOracle)

	rpMap := map[addr.IP][]addr.IP{}
	coreMap := map[addr.IP]addr.IP{}
	for gi, grp := range groups {
		anchor := sim.RouterAddr(memberIdx[gi][0])
		rpMap[grp] = []addr.IP{anchor}
		coreMap[grp] = anchor
	}
	state, _, _, _ := deployProtocol(sim, proto, rpMap, coreMap, 120*netsim.Second)

	// Warm up: hellos, queries, joins, tree formation.
	sim.Run(2 * netsim.Second)
	for gi, grp := range groups {
		for _, h := range recvHosts[gi] {
			h.Join(grp)
		}
	}
	sim.Run(cfg.Warmup)

	// Measured phase: nothing but periodic refresh.
	sim.Net.Stats.Reset()
	eventsBase := sim.Net.EventsProcessed()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	w0 := time.Now()
	sim.Run(cfg.Duration)
	wall := time.Since(w0)
	runtime.ReadMemStats(&m1)

	cell := CtrlPlaneCell{
		Protocol:     proto,
		Pooled:       pooled,
		CtrlMessages: sim.Net.Stats.Totals.ControlPackets,
		State:        state(),
		Events:       sim.Net.EventsProcessed() - eventsBase,
		WallMs:       float64(wall.Microseconds()) / 1000,
		Mallocs:      m1.Mallocs - m0.Mallocs,
		GCCycles:     m1.NumGC - m0.NumGC,
		GCPauseMs:    float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e6,
		HeapMB:       float64(m1.HeapAlloc) / (1 << 20),
	}
	if s := wall.Seconds(); s > 0 {
		cell.MsgsPerSec = float64(cell.CtrlMessages) / s
	}
	if cell.CtrlMessages > 0 {
		cell.AllocsPerMsg = float64(cell.Mallocs) / float64(cell.CtrlMessages)
	}
	return cell
}
