package experiments

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pim/internal/addr"
	"pim/internal/igmp"
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/telemetry"
	"pim/internal/topology"
)

// The state-plane benchmark isolates the cost of the multicast forwarding
// state itself (DESIGN.md §16): a high-group internet where every router
// holds many (*,G)/(S,G) entries and the steady-state load is the periodic
// refresh walk over them. Each MFIB-backed protocol runs twice in-process —
// once on the reference map-of-pointers store (the "seed" side) and once on
// the flat arena store with inline oif storage (the "after" side) — and the
// ledger refuses to record unless the two runs' observables (delivery
// counts, control messages, scheduler events, final state, and an
// order-sensitive hash of the full telemetry stream) are bit-identical. The
// host-side numbers (bytes/entry, GC cycles and pause, heap, wall time,
// refresh-walk throughput) are then attributable purely to the store layout.

// StatePlaneConfig parameterizes the state-plane benchmark.
type StatePlaneConfig struct {
	Nodes   int
	Degree  float64
	Groups  int // high: the state plane, not the data plane, is the load
	Members int
	Senders int
	Seed    int64
	// Warmup builds the trees; Duration is the measured phase (periodic
	// senders keep (S,G) state alive while refresh walks dominate).
	Warmup         netsim.Time
	Duration       netsim.Time
	PacketInterval netsim.Time
	Protos         []Protocol
	// WalkEntries sizes the refresh-walk microbenchmark table.
	WalkEntries int
}

// DefaultStatePlane is the ledger workload: a 1000-router internet carrying
// 48 concurrently active groups — thousands of MFIB entries network-wide —
// across every protocol whose state plane is the shared mfib store.
func DefaultStatePlane() StatePlaneConfig {
	return StatePlaneConfig{
		Nodes: 1000, Degree: 4, Groups: 48, Members: 4, Senders: 2, Seed: 42,
		Warmup: 60 * netsim.Second, Duration: 120 * netsim.Second,
		PacketInterval: 10 * netsim.Second,
		Protos:         []Protocol{PIMSM, PIMDM, DVMRP},
		WalkEntries:    8192,
	}
}

// SmokeStatePlane is the CI-sized workload for make check: a small internet,
// two protocols, the same flat/map equivalence gate; nothing is recorded.
func SmokeStatePlane() StatePlaneConfig {
	return StatePlaneConfig{
		Nodes: 40, Degree: 4, Groups: 8, Members: 3, Senders: 1, Seed: 42,
		Warmup: 30 * netsim.Second, Duration: 60 * netsim.Second,
		PacketInterval: 10 * netsim.Second,
		Protos:         []Protocol{PIMSM, DVMRP},
		WalkEntries:    2048,
	}
}

// StatePlaneCell is one (protocol, store) measurement.
type StatePlaneCell struct {
	Protocol Protocol `json:"protocol"`
	Flat     bool     `json:"flat"`

	// Simulated observables — must be bit-identical between the flat and
	// map runs of the same protocol (the ledger gate).
	Delivered    int64  `json:"delivered"`
	CtrlMessages int64  `json:"ctrl_messages"`
	State        int    `json:"state"`
	Events       int64  `json:"events"`
	StreamHash   string `json:"stream_hash"`

	// Host-side cost.
	StateBytes    int64   `json:"state_bytes"`
	BytesPerEntry float64 `json:"bytes_per_entry"`
	WallMs        float64 `json:"wall_ms"`
	Mallocs       uint64  `json:"mallocs"`
	GCCycles      uint32  `json:"gc_cycles"`
	GCPauseMs     float64 `json:"gc_pause_ms"`
	HeapMB        float64 `json:"heap_mb"`
}

// StatePlanePair is one protocol's before/after: the map-store oracle run
// and the flat-store run over the identical simulation.
type StatePlanePair struct {
	Protocol  Protocol       `json:"protocol"`
	MapStore  StatePlaneCell `json:"map"`
	FlatStore StatePlaneCell `json:"flat"`
	Identical bool           `json:"identical"`
	// BytesRatio is map bytes/entry over flat bytes/entry (>1 means the
	// flat store is denser); Speedup is map wall over flat wall.
	BytesRatio float64 `json:"bytes_ratio"`
	Speedup    float64 `json:"speedup"`
}

// WalkBench is the refresh-walk microbenchmark for one store: a full
// ForEach/ForGroup sweep over a populated table, the inner loop of every
// periodic refresh.
type WalkBench struct {
	Entries        int     `json:"entries"`
	NsPerEntry     float64 `json:"ns_per_entry"`
	AllocsPerSweep int64   `json:"allocs_per_sweep"`
}

// StatePlaneResult aggregates the per-protocol pairs and the store-level
// walk microbenchmarks.
type StatePlaneResult struct {
	Pairs        []StatePlanePair `json:"pairs"`
	AllIdentical bool             `json:"all_identical"`
	WalkMap      WalkBench        `json:"walk_map"`
	WalkFlat     WalkBench        `json:"walk_flat"`
	WallMs       float64          `json:"wall_ms"`
}

// RunStatePlane runs every configured protocol on both stores and returns
// the paired measurements. Cells run sequentially in-process so the
// runtime.MemStats deltas attribute cleanly to one simulation at a time.
func RunStatePlane(cfg StatePlaneConfig) StatePlaneResult {
	res := StatePlaneResult{AllIdentical: true}
	t0 := time.Now()
	for _, proto := range cfg.Protos {
		m := runStatePlaneCell(cfg, proto, false)
		f := runStatePlaneCell(cfg, proto, true)
		pair := StatePlanePair{
			Protocol: proto, MapStore: m, FlatStore: f,
			Identical: m.Delivered == f.Delivered &&
				m.CtrlMessages == f.CtrlMessages &&
				m.State == f.State &&
				m.Events == f.Events &&
				m.StreamHash == f.StreamHash,
		}
		if f.BytesPerEntry > 0 {
			pair.BytesRatio = m.BytesPerEntry / f.BytesPerEntry
		}
		if f.WallMs > 0 {
			pair.Speedup = m.WallMs / f.WallMs
		}
		if !pair.Identical {
			res.AllIdentical = false
		}
		res.Pairs = append(res.Pairs, pair)
	}
	res.WalkMap = walkMicroBench(false, cfg.WalkEntries)
	res.WalkFlat = walkMicroBench(true, cfg.WalkEntries)
	res.WallMs = float64(time.Since(t0).Microseconds()) / 1000
	return res
}

// runStatePlaneCell builds one internet, joins the members, runs periodic
// senders through the measured phase under the requested store, and hashes
// the complete telemetry stream as the equivalence witness.
func runStatePlaneCell(cfg StatePlaneConfig, proto Protocol, flat bool) StatePlaneCell {
	prevStore := mfib.SetFlatStore(flat)
	defer mfib.SetFlatStore(prevStore)

	rng := rand.New(rand.NewSource(cfg.Seed))
	g := topology.Random(topology.GenConfig{Nodes: cfg.Nodes, Degree: cfg.Degree}, rng)
	groups := make([]addr.IP, cfg.Groups)
	memberIdx := make([][]int, cfg.Groups)
	senderIdx := make([][]int, cfg.Groups)
	for gi := range groups {
		groups[gi] = addr.GroupForIndex(gi)
		picked := topology.PickDistinct(cfg.Nodes, cfg.Members+cfg.Senders, rng)
		memberIdx[gi] = picked[:cfg.Members]
		senderIdx[gi] = picked[cfg.Members:]
	}

	sim := scenario.Build(g)
	recvHosts := make([][]*igmp.Host, cfg.Groups)
	sendHosts := make([][]*igmp.Host, cfg.Groups)
	hostAt := map[int]*igmp.Host{}
	ensureHost := func(r int) *igmp.Host {
		if h := hostAt[r]; h != nil {
			return h
		}
		h := sim.AddHost(r)
		hostAt[r] = h
		return h
	}
	for gi := range groups {
		for _, m := range memberIdx[gi] {
			recvHosts[gi] = append(recvHosts[gi], ensureHost(m))
		}
		for _, s := range senderIdx[gi] {
			sendHosts[gi] = append(sendHosts[gi], ensureHost(s))
		}
	}
	sim.FinishUnicast(scenario.UseOracle)

	rpMap := map[addr.IP][]addr.IP{}
	coreMap := map[addr.IP]addr.IP{}
	for gi, grp := range groups {
		anchor := sim.RouterAddr(memberIdx[gi][0])
		rpMap[grp] = []addr.IP{anchor}
		coreMap[grp] = anchor
	}

	// The full event stream folds into an order-sensitive hash: any
	// reordering, retiming, or behavioral drift between the two stores —
	// including one the aggregate counters would cancel out — changes it.
	hash := fnv.New64a()
	var buf [8 * 8]byte
	bus := telemetry.NewBus()
	bus.Subscribe(func(ev telemetry.Event) {
		fields := [...]uint64{
			uint64(ev.At), uint64(ev.Kind), uint64(int64(ev.Router)),
			uint64(int64(ev.Iface)), ev.Epoch, uint64(ev.Source),
			uint64(ev.Group), uint64(ev.Value),
		}
		for i, f := range fields {
			binary.LittleEndian.PutUint64(buf[i*8:], f)
		}
		hash.Write(buf[:])
	})

	state, stateBytes, _, _ := deployProtocol(sim, proto, rpMap, coreMap,
		120*netsim.Second, scenario.WithTelemetry(bus))

	// Warm up: hellos, queries, joins, tree formation.
	sim.Run(2 * netsim.Second)
	for gi, grp := range groups {
		for _, h := range recvHosts[gi] {
			h.Join(grp)
		}
	}
	sim.Run(cfg.Warmup)

	// Measured phase: periodic senders keep source state alive while the
	// soft-state refresh walks the populated MFIBs.
	sim.Net.Stats.Reset()
	eventsBase := sim.Net.EventsProcessed()
	for gi, grp := range groups {
		grp := grp
		for _, h := range sendHosts[gi] {
			h := h
			sched := h.Node.Sched()
			var pump func()
			pump = func() {
				scenario.SendData(h, grp, 128)
				sched.After(cfg.PacketInterval, pump)
			}
			sched.After(0, pump)
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	w0 := time.Now()
	sim.Run(cfg.Duration)
	wall := time.Since(w0)
	runtime.ReadMemStats(&m1)

	cell := StatePlaneCell{
		Protocol:     proto,
		Flat:         flat,
		CtrlMessages: sim.Net.Stats.Totals.ControlPackets,
		State:        state(),
		Events:       sim.Net.EventsProcessed() - eventsBase,
		WallMs:       float64(wall.Microseconds()) / 1000,
		Mallocs:      m1.Mallocs - m0.Mallocs,
		GCCycles:     m1.NumGC - m0.NumGC,
		GCPauseMs:    float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e6,
		HeapMB:       float64(m1.HeapAlloc) / (1 << 20),
	}
	for _, h := range hostAt {
		for _, n := range h.Received {
			cell.Delivered += int64(n)
		}
	}
	if stateBytes != nil {
		cell.StateBytes = stateBytes()
	}
	if cell.State > 0 {
		cell.BytesPerEntry = float64(cell.StateBytes) / float64(cell.State)
	}
	cell.StreamHash = hashHex(hash.Sum64())
	return cell
}

func hashHex(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// walkMicroBench times the periodic-refresh inner loop in isolation: a full
// ForEach sweep over a table populated with entries spread across many
// groups, three live oifs each, on the requested store.
func walkMicroBench(flat bool, entries int) WalkBench {
	if entries <= 0 {
		entries = 2048
	}
	net := netsim.NewNetwork()
	nd := net.AddNode("walk")
	ifs := make([]*netsim.Iface, 4)
	for i := range ifs {
		ifs[i] = net.AddIface(nd, addr.V4(10, 9, byte(i), 1))
	}
	tb := mfib.NewTableWith(flat)
	const sourcesPerGroup = 16
	ngroups := (entries + sourcesPerGroup) / (sourcesPerGroup + 1)
	n := 0
	for gi := 0; n < entries; gi++ {
		grp := addr.GroupForIndex(gi % max(ngroups, 1))
		var k mfib.Key
		if gi < ngroups {
			k = mfib.Key{Group: grp, RPBit: true}
		} else {
			k = mfib.Key{Source: addr.V4(10, 100, byte(gi>>8), byte(gi)), Group: grp}
		}
		e, created := tb.Upsert(k, 0)
		if !created {
			continue
		}
		e.IIF = ifs[gi%len(ifs)]
		for j := 0; j < 3; j++ {
			e.AddOIF(ifs[(gi+j+1)%len(ifs)], netsim.Time(1)<<40)
		}
		n++
	}
	var visited int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			visited = 0
			tb.ForEach(func(e *mfib.Entry) {
				for oi := 0; oi < e.OIFCount(); oi++ {
					if e.OIFAt(oi).Live(1) {
						visited++
					}
				}
			})
		}
	})
	_ = visited
	return WalkBench{
		Entries:        n,
		NsPerEntry:     float64(r.T.Nanoseconds()) / float64(r.N) / float64(n),
		AllocsPerSweep: r.AllocsPerOp(),
	}
}
