package experiments

import (
	"math/rand"
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// TestScaleStress runs a 100-router internet with 10 groups under churn:
// hosts join and leave, links fail and recover, senders transmit
// throughout. Invariants: no panics, post-churn delivery works for every
// group, and state on routers without downstream receivers decays.
func TestScaleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("scale stress skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2024))
	g := topology.Random(topology.GenConfig{Nodes: 100, Degree: 4}, rng)
	sim := scenario.Build(g)

	const groups = 10
	type party struct {
		host  *igmp.Host
		group addr.IP
	}
	var receivers, senders []party
	hostAt := map[int]*igmp.Host{}
	ensure := func(r int) *igmp.Host {
		if h := hostAt[r]; h != nil {
			return h
		}
		h := sim.AddHost(r)
		hostAt[r] = h
		return h
	}
	rpMap := map[addr.IP][]addr.IP{}
	for gi := 0; gi < groups; gi++ {
		grp := addr.GroupForIndex(gi)
		picked := topology.PickDistinct(100, 5, rng)
		for _, m := range picked[:4] {
			receivers = append(receivers, party{ensure(m), grp})
		}
		senders = append(senders, party{ensure(picked[4]), grp})
		rpMap[grp] = []addr.IP{scenario.RouterLANAddr(picked[0])}
	}
	// The RP must exist as an interface: use the member router's LAN-side
	// address, which ensure() above created.
	sim.FinishUnicast(scenario.UseOracle)
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: rpMap}))
	sim.Run(2 * netsim.Second)

	// Churn phase: interleave joins, sends, leaves, link flaps.
	for _, p := range receivers {
		p.host.Join(p.group)
	}
	sim.Run(5 * netsim.Second)
	flapped := map[int]bool{}
	for round := 0; round < 30; round++ {
		for _, s := range senders {
			scenario.SendData(s.host, s.group, 128)
		}
		switch round % 6 {
		case 1: // random leave + rejoin later
			p := receivers[rng.Intn(len(receivers))]
			p.host.Leave(p.group)
		case 2: // rejoin everyone (idempotent for current members)
			for _, p := range receivers {
				p.host.Join(p.group)
			}
		case 3: // flap a random backbone link (avoid cutting the graph for
			// too long: restore two rounds later)
			e := rng.Intn(len(sim.EdgeLinks))
			if !flapped[e] {
				flapped[e] = true
				sim.Net.SetLinkUp(sim.EdgeLinks[e], false)
				e := e
				sim.Net.Sched.After(20*netsim.Second, func() {
					sim.Net.SetLinkUp(sim.EdgeLinks[e], true)
					delete(flapped, e)
				})
			}
		}
		sim.Run(10 * netsim.Second)
	}
	// Restore everything, re-assert membership, and verify delivery.
	for e, down := range flapped {
		if down {
			sim.Net.SetLinkUp(sim.EdgeLinks[e], true)
		}
	}
	for _, p := range receivers {
		p.host.Join(p.group)
	}
	sim.Run(30 * netsim.Second)
	before := map[*igmp.Host]int{}
	for _, p := range receivers {
		before[p.host] = p.host.Received[p.group]
	}
	for i := 0; i < 5; i++ {
		for _, s := range senders {
			scenario.SendData(s.host, s.group, 128)
		}
		sim.Run(2 * netsim.Second)
	}
	missed := 0
	for _, p := range receivers {
		if p.host.Received[p.group]-before[p.host] < 4 {
			missed++
		}
	}
	if missed > len(receivers)/10 {
		t.Errorf("%d of %d receivers missed most post-churn packets", missed, len(receivers))
	}
	// State stays bounded: entries only for active groups on tree routers.
	total := dep.TotalState()
	if total == 0 {
		t.Fatal("no state at all")
	}
	// Generous bound: every router could hold at most (*,G)+(S,G)+(S,G)rpt
	// per group; anything beyond signals a leak.
	if max := 100 * groups * 3; total > max {
		t.Errorf("state total %d exceeds bound %d (leak?)", total, max)
	}
}
