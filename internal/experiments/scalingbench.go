package experiments

import (
	"reflect"
	"time"

	"pim/internal/netsim"
)

// The scaling benchmark wraps the §1.2 overhead sweeps (internal sizes,
// group counts, sender sets) in wall-clock instrumentation so the simulator
// itself can be ledgered: cmd/pimbench -scaling runs the same sweeps on both
// scheduler backing stores (binary heap and timing wheel) and records wall
// time, events/sec, and peak live timers in BENCH_scale.json. The simulated
// results must be bit-identical between the two stores — SameGrids gates the
// ledger — so the wall-time delta is purely the data structure.

// ScalingBenchConfig names the sweeps the benchmark runs. Every sweep varies
// one axis of Base; Sizes is the headline axis (1000-router internets put
// >10^6 concurrent soft-state timers in the scheduler under PIM-DM's
// flood-and-prune).
type ScalingBenchConfig struct {
	Base    SparseConfig
	Sizes   []int // internet sizes for the size sweep
	Groups  []int // group counts for the group sweep
	Senders []int // per-group sender counts for the sender sweep
	Protos  []Protocol
}

// DefaultScalingBench is the ledger workload: internets up to 1000 routers,
// every protocol. The measured phase is shortened from the overhead-study
// default so the 1000-router flood-and-prune cells stay in whole-run minutes.
func DefaultScalingBench() ScalingBenchConfig {
	base := DefaultSparse()
	base.Duration = 60 * netsim.Second
	return ScalingBenchConfig{
		Base:    base,
		Sizes:   []int{50, 200, 1000},
		Groups:  []int{1, 4, 16},
		Senders: []int{1, 4, 16},
		Protos:  AllProtocols(),
	}
}

// SmokeScalingBench is the CI-sized workload for make scale-smoke: small
// internets, three protocols, same code paths.
func SmokeScalingBench() ScalingBenchConfig {
	base := DefaultSparse()
	base.Nodes = 30
	base.Duration = 60 * netsim.Second
	return ScalingBenchConfig{
		Base:    base,
		Sizes:   []int{20, 40},
		Groups:  []int{1, 3},
		Senders: []int{1, 3},
		Protos:  []Protocol{PIMSM, CBT, DVMRP},
	}
}

// TenKScalingBench is the 10 000-router headline cell: a single size-sweep
// point on the sparse protocols (flood-and-prune at this scale floods ~10^5
// link crossings per packet and is benchmarked separately at 1000 routers).
// The measured phase is short — the point is that a 10k-router internet
// builds, shards, and sustains throughput, ledgered with the shard count.
func TenKScalingBench() ScalingBenchConfig {
	base := DefaultSparse()
	base.Groups = 4
	base.Members = 8
	base.Warmup = 20 * netsim.Second
	base.Duration = 30 * netsim.Second
	return ScalingBenchConfig{
		Base:   base,
		Sizes:  []int{10000},
		Protos: []Protocol{PIMSM, CBT},
	}
}

// ScalingSweep is one timed sweep: the simulated grid plus the host-side
// cost of producing it.
type ScalingSweep struct {
	Name  string `json:"name"`
	Cells int    `json:"cells"`
	// WallMs is host wall-clock time for the whole sweep; Events counts
	// scheduler events processed across all cells, and EventsPerSec is their
	// ratio — the simulator's throughput on this backing store.
	WallMs       float64 `json:"wall_ms"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// PeakTimers is the largest concurrent live-timer population any cell
	// reached — the queue size the backing store had to sustain.
	PeakTimers int `json:"peak_timers"`
	// Grid is the simulated outcome, identical across backing stores and
	// worker counts; it gates the ledger but is not serialized into it.
	Grid []ScalingPoint `json:"-"`
}

// ScalingBenchResult aggregates the configured sweeps.
type ScalingBenchResult struct {
	Sweeps     []ScalingSweep `json:"sweeps"`
	WallMs     float64        `json:"wall_ms"`
	Events     int64          `json:"events"`
	PeakTimers int            `json:"peak_timers"`
	// Shards is the process-global shard count the sweeps executed under
	// (1 = sequential), recorded so ledger entries are self-describing.
	Shards int `json:"shards"`
}

// RunScalingBench runs the size, group, and sender sweeps under wall-clock
// timing on whichever scheduler backing store is currently selected
// (netsim.SetUseWheel).
func RunScalingBench(cfg ScalingBenchConfig) ScalingBenchResult {
	type sweepDef struct {
		name string
		run  func() []ScalingPoint
	}
	defs := []sweepDef{
		{"size", func() []ScalingPoint { return RunSizeScaling(cfg.Base, cfg.Sizes, cfg.Protos) }},
		{"groups", func() []ScalingPoint { return RunGroupScaling(cfg.Base, cfg.Groups, cfg.Protos) }},
		{"senders", func() []ScalingPoint { return RunSenderScaling(cfg.Base, cfg.Senders, cfg.Protos) }},
	}
	axes := [][]int{cfg.Sizes, cfg.Groups, cfg.Senders}
	var res ScalingBenchResult
	res.Shards = netsim.Shards()
	for di, d := range defs {
		if len(axes[di]) == 0 {
			continue // axis not configured (e.g. the 10k workload is size-only)
		}
		t0 := time.Now()
		grid := d.run()
		wall := time.Since(t0)
		sw := ScalingSweep{Name: d.name, Grid: grid}
		for _, pt := range grid {
			sw.Cells += len(pt.Results)
			for _, r := range pt.Results {
				sw.Events += r.Events
				if r.PeakTimers > sw.PeakTimers {
					sw.PeakTimers = r.PeakTimers
				}
			}
		}
		sw.WallMs = float64(wall.Microseconds()) / 1000
		if s := wall.Seconds(); s > 0 {
			sw.EventsPerSec = float64(sw.Events) / s
		}
		res.Sweeps = append(res.Sweeps, sw)
		res.WallMs += sw.WallMs
		res.Events += sw.Events
		if sw.PeakTimers > res.PeakTimers {
			res.PeakTimers = sw.PeakTimers
		}
	}
	return res
}

// SameGrids reports whether two benchmark runs produced bit-identical
// simulated results — every sweep's grid equal, wall times ignored. This is
// the ledger gate: a heap run and a wheel run that disagree here mean the
// scheduler swap changed protocol behavior, and nothing gets recorded.
func SameGrids(a, b ScalingBenchResult) bool {
	if len(a.Sweeps) != len(b.Sweeps) {
		return false
	}
	for i := range a.Sweeps {
		if a.Sweeps[i].Name != b.Sweeps[i].Name ||
			!reflect.DeepEqual(a.Sweeps[i].Grid, b.Sweeps[i].Grid) {
			return false
		}
	}
	return true
}

// SameGridsSharded is the ledger gate for multi-shard runs: the grids must
// be bit-identical except for PeakTimers, which a sharded run reports as the
// sum of per-shard peaks (and which outbox buffering makes incomparable in
// either direction — see netsim.Network.PeakLiveTimers). Events is NOT
// masked: both paths execute exactly the same event population, so the
// processed counts must agree to the event.
func SameGridsSharded(a, b ScalingBenchResult) bool {
	return SameGrids(maskPeaks(a), maskPeaks(b))
}

// maskPeaks zeroes the per-cell and per-sweep peak-timer readings, leaving
// every simulated outcome and event count intact.
func maskPeaks(r ScalingBenchResult) ScalingBenchResult {
	out := r
	out.Sweeps = make([]ScalingSweep, len(r.Sweeps))
	for i, sw := range r.Sweeps {
		msw := sw
		msw.PeakTimers = 0
		msw.Grid = make([]ScalingPoint, len(sw.Grid))
		for j, pt := range sw.Grid {
			mpt := ScalingPoint{X: pt.X, Results: make([]Result, len(pt.Results))}
			for k, res := range pt.Results {
				res.PeakTimers = 0
				mpt.Results[k] = res
			}
			msw.Grid[j] = mpt
		}
		out.Sweeps[i] = msw
	}
	return out
}
