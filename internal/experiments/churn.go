package experiments

import (
	"math/rand"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/parallel"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// ChurnConfig parameterizes the group-dynamics experiment: the §2
// requirement that sparse mode "must support dynamic groups" with
// receiver-initiated membership whose cost scales with the change rate, not
// the group size.
type ChurnConfig struct {
	Nodes  int
	Degree float64
	// Pool is the number of candidate receivers; at any instant roughly
	// half are joined. Each churn event flips one receiver.
	Pool int
	// MeanHold is the average membership duration (exponential-ish via the
	// deterministic workload below).
	MeanHold netsim.Time
	// Duration is the measured phase.
	Duration netsim.Time
	Seed     int64
	// Workers bounds the RunChurnTrials worker pool: 0 = GOMAXPROCS,
	// 1 = sequential. Trial results are identical for every value.
	Workers int
}

// DefaultChurn returns laptop-scale defaults.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{
		Nodes: 50, Degree: 4, Pool: 10,
		MeanHold: 120 * netsim.Second,
		Duration: 600 * netsim.Second,
		Seed:     7,
	}
}

// ChurnResult reports the control cost of membership dynamics.
type ChurnResult struct {
	JoinEvents, LeaveEvents int
	CtrlMessages            int64
	// CtrlPerEvent is the §2 scaling figure of merit: control messages per
	// membership change (steady-state refresh traffic included).
	CtrlPerEvent float64
	// FinalState is the total forwarding entries at the end.
	FinalState int
}

// RunChurn joins and leaves receivers at the configured rate and measures
// the control-message cost per membership event.
func RunChurn(cfg ChurnConfig) ChurnResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := topology.Random(topology.GenConfig{Nodes: cfg.Nodes, Degree: cfg.Degree}, rng)
	sim := scenario.Build(g)
	group := addr.GroupForIndex(0)
	routers := topology.PickDistinct(cfg.Nodes, cfg.Pool, rng)
	hosts := make([]*igmp.Host, cfg.Pool)
	for i, r := range routers {
		hosts[i] = sim.AddHost(r)
	}
	sender := sim.AddHost((routers[0] + 1) % cfg.Nodes)
	sim.FinishUnicast(scenario.UseOracle)
	rp := sim.RouterAddr(routers[0])
	dep := sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rp}}})).(*scenario.PIMDeployment)
	sim.Run(2 * netsim.Second)

	res := ChurnResult{}
	joined := make([]bool, cfg.Pool)
	// Half the pool starts joined.
	for i := 0; i < cfg.Pool/2; i++ {
		hosts[i].Join(group)
		joined[i] = true
	}
	sim.Run(5 * netsim.Second)
	ctrlBase := dep.ControlMessages()

	// Steady data + membership flips: one flip per MeanHold/Pool, so each
	// member holds for ~MeanHold on average.
	flipEvery := cfg.MeanHold / netsim.Time(cfg.Pool)
	if flipEvery <= 0 {
		flipEvery = netsim.Second
	}
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		scenario.SendData(sender, group, 128)
		sim.Net.Sched.After(5*netsim.Second, pump)
	}
	sim.Net.Sched.After(0, pump)
	var flip func()
	flip = func() {
		if stop {
			return
		}
		i := rng.Intn(cfg.Pool)
		if joined[i] {
			hosts[i].Leave(group)
			joined[i] = false
			res.LeaveEvents++
		} else {
			hosts[i].Join(group)
			joined[i] = true
			res.JoinEvents++
		}
		sim.Net.Sched.After(flipEvery, flip)
	}
	sim.Net.Sched.After(flipEvery, flip)
	sim.Run(cfg.Duration)
	stop = true

	res.CtrlMessages = dep.ControlMessages() - ctrlBase
	if events := res.JoinEvents + res.LeaveEvents; events > 0 {
		res.CtrlPerEvent = float64(res.CtrlMessages) / float64(events)
	}
	res.FinalState = dep.TotalState()
	return res
}

// RunChurnTrials repeats the churn experiment over trials independent
// topologies and workloads. Trial i runs with a seed derived from
// (cfg.Seed, i), so each trial's randomness is a pure function of its index
// and the slice is bit-identical for every cfg.Workers value.
func RunChurnTrials(cfg ChurnConfig, trials int) []ChurnResult {
	out := make([]ChurnResult, trials)
	parallel.For(trials, cfg.Workers, func(i int) {
		c := cfg
		c.Seed = parallel.DeriveSeed(cfg.Seed, int64(i))
		out[i] = RunChurn(c)
	})
	return out
}
