package experiments

import "pim/internal/parallel"

// Scaling sweeps quantify the §1.2 overhead-growth axes: "the scalability
// of a multicast protocol can be evaluated in terms of its overhead growth
// with the size of the internet, size of groups, number of groups, size of
// sender sets, and distribution of group members." The sweeps below vary
// one axis at a time over the same random internet and record each
// protocol's ledger, exposing the §3 trade the paper calls out explicitly:
// "PIM avoids explicit enumeration of receivers, but does require
// enumeration of sources" — PIM state grows with the sender set while CBT's
// per-group shared tree does not.

// ScalingPoint is one sweep sample: the varied axis value and the ledger of
// every protocol at that value.
type ScalingPoint struct {
	X       int
	Results []Result
}

// runScaling is the shared sweep driver: every (axis value × protocol) pair
// is an independent simulation, so the whole grid fans across base.Workers
// workers in one flat work list instead of point-by-point. Each cell
// self-seeds from its config, and cells land in a pre-sized grid slot, so
// the output is identical for every worker count.
func runScaling(base SparseConfig, xs []int, protos []Protocol, set func(*SparseConfig, int)) []ScalingPoint {
	out := make([]ScalingPoint, len(xs))
	for i, x := range xs {
		out[i] = ScalingPoint{X: x, Results: make([]Result, len(protos))}
	}
	parallel.For(len(xs)*len(protos), base.Workers, func(k int) {
		pi, pj := k/len(protos), k%len(protos)
		cfg := base
		cfg.Workers = 1 // the grid is the unit of parallelism, not the cell
		set(&cfg, xs[pi])
		out[pi].Results[pj] = RunSparse(cfg, protos[pj])
	})
	return out
}

// RunSenderScaling varies the per-group sender count.
func RunSenderScaling(base SparseConfig, senderCounts []int, protos []Protocol) []ScalingPoint {
	return runScaling(base, senderCounts, protos, func(c *SparseConfig, n int) { c.Senders = n })
}

// RunGroupScaling varies the number of concurrently active groups.
func RunGroupScaling(base SparseConfig, groupCounts []int, protos []Protocol) []ScalingPoint {
	return runScaling(base, groupCounts, protos, func(c *SparseConfig, n int) { c.Groups = n })
}

// RunMemberScaling varies the per-group receiver count.
func RunMemberScaling(base SparseConfig, memberCounts []int, protos []Protocol) []ScalingPoint {
	return runScaling(base, memberCounts, protos, func(c *SparseConfig, n int) { c.Members = n })
}

// RunSizeScaling varies the internet size (router count) at fixed degree —
// the §1.2 "size of the internet" axis. Sparse-mode cost should track the
// tree size (diameter·members), not the internet size; flood-and-prune cost
// tracks the internet size.
func RunSizeScaling(base SparseConfig, nodeCounts []int, protos []Protocol) []ScalingPoint {
	return runScaling(base, nodeCounts, protos, func(c *SparseConfig, n int) { c.Nodes = n })
}
