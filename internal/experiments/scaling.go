package experiments

// Scaling sweeps quantify the §1.2 overhead-growth axes: "the scalability
// of a multicast protocol can be evaluated in terms of its overhead growth
// with the size of the internet, size of groups, number of groups, size of
// sender sets, and distribution of group members." The sweeps below vary
// one axis at a time over the same random internet and record each
// protocol's ledger, exposing the §3 trade the paper calls out explicitly:
// "PIM avoids explicit enumeration of receivers, but does require
// enumeration of sources" — PIM state grows with the sender set while CBT's
// per-group shared tree does not.

// ScalingPoint is one sweep sample: the varied axis value and the ledger of
// every protocol at that value.
type ScalingPoint struct {
	X       int
	Results []Result
}

// RunSenderScaling varies the per-group sender count.
func RunSenderScaling(base SparseConfig, senderCounts []int, protos []Protocol) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(senderCounts))
	for _, n := range senderCounts {
		cfg := base
		cfg.Senders = n
		out = append(out, ScalingPoint{X: n, Results: CompareSparse(cfg, protos)})
	}
	return out
}

// RunGroupScaling varies the number of concurrently active groups.
func RunGroupScaling(base SparseConfig, groupCounts []int, protos []Protocol) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(groupCounts))
	for _, n := range groupCounts {
		cfg := base
		cfg.Groups = n
		out = append(out, ScalingPoint{X: n, Results: CompareSparse(cfg, protos)})
	}
	return out
}

// RunMemberScaling varies the per-group receiver count.
func RunMemberScaling(base SparseConfig, memberCounts []int, protos []Protocol) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(memberCounts))
	for _, n := range memberCounts {
		cfg := base
		cfg.Members = n
		out = append(out, ScalingPoint{X: n, Results: CompareSparse(cfg, protos)})
	}
	return out
}

// RunSizeScaling varies the internet size (router count) at fixed degree —
// the §1.2 "size of the internet" axis. Sparse-mode cost should track the
// tree size (diameter·members), not the internet size; flood-and-prune cost
// tracks the internet size.
func RunSizeScaling(base SparseConfig, nodeCounts []int, protos []Protocol) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		cfg := base
		cfg.Nodes = n
		out = append(out, ScalingPoint{X: n, Results: CompareSparse(cfg, protos)})
	}
	return out
}
