package experiments

import (
	"testing"

	"pim/internal/fastpath"
	"pim/internal/netsim"
)

// smallDataplane keeps the differential gate fast enough for go test.
func smallDataplane() DataplaneConfig {
	return DataplaneConfig{
		Hops: 16, Packets: 120, PacketGap: 10 * netsim.Millisecond,
		Payload: 16, FillerRoutes: 64,
	}
}

// TestDataplaneTracesIdentical is the benchmark's correctness gate: the
// compiled fast path must deliver exactly the packets, in exactly the order
// and at exactly the times, that the reference path does — for every phase.
func TestDataplaneTracesIdentical(t *testing.T) {
	res := RunDataplane(smallDataplane())
	if len(res.Phases) != len(dataplanePhases) {
		t.Fatalf("got %d phases, want %d", len(res.Phases), len(dataplanePhases))
	}
	for _, p := range res.Phases {
		if !p.Identical {
			t.Errorf("phase %s: fast-path trace diverged from reference", p.Name)
		}
		if p.Delivered == 0 {
			t.Errorf("phase %s: no packets delivered", p.Name)
		}
		if p.Crossings == 0 {
			t.Errorf("phase %s: no data-plane forwarding recorded", p.Name)
		}
	}
	if !res.AllIdentical {
		t.Error("AllIdentical = false")
	}
	if !fastpath.Enabled() {
		t.Error("RunDataplane did not restore the fast-path switch")
	}
}

// Phase benchmarks for bench-smoke and profiling: one full simulation run
// per iteration, on the chosen path.
func benchmarkDataplanePhase(b *testing.B, phase string, fast bool) {
	cfg := DefaultDataplane()
	prev := fastpath.Set(fast)
	defer fastpath.Set(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runDataplaneOnce(cfg, phase)
	}
}

func BenchmarkDataplaneSharedFast(b *testing.B) { benchmarkDataplanePhase(b, "shared", true) }
func BenchmarkDataplaneSharedRef(b *testing.B)  { benchmarkDataplanePhase(b, "shared", false) }
func BenchmarkDataplaneDenseFast(b *testing.B)  { benchmarkDataplanePhase(b, "dense", true) }
func BenchmarkDataplaneDenseRef(b *testing.B)   { benchmarkDataplanePhase(b, "dense", false) }

// TestDataplaneDeliversToBothReceivers pins the workload shape: two member
// LANs, every measured packet reaching both.
func TestDataplaneDeliversToBothReceivers(t *testing.T) {
	cfg := smallDataplane()
	res := RunDataplane(cfg)
	for _, p := range res.Phases {
		if p.Delivered != 2*cfg.Packets {
			t.Errorf("phase %s: delivered %d, want %d", p.Name, p.Delivered, 2*cfg.Packets)
		}
	}
}

// TestDataplaneCountersCoverMeasuredWindow pins the per-pass counter reset:
// router metrics are zeroed alongside netsim.Stats at the measured window's
// start, so in register-free steady state every data link crossing is either
// the source host's own emission (one per packet) or a counted router
// forward — exactly. If the reset were dropped, Forwarded would also include
// the tree-priming packets and overshoot this identity.
func TestDataplaneCountersCoverMeasuredWindow(t *testing.T) {
	cfg := smallDataplane()
	res := RunDataplane(cfg)
	for _, p := range res.Phases {
		if want := p.Crossings - int64(cfg.Packets); p.Forwarded != want {
			t.Errorf("phase %s: router forwards = %d, want crossings−sends = %d",
				p.Name, p.Forwarded, want)
		}
	}
}
