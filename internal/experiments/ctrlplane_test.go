package experiments

import (
	"testing"

	"pim/internal/netsim"
)

// TestCtrlPlanePooledEquivalence runs a miniature steady-state benchmark and
// requires the pooled and allocating frame paths to produce bit-identical
// simulated observables for every protocol — the same gate the ledger mode
// enforces before recording.
func TestCtrlPlanePooledEquivalence(t *testing.T) {
	cfg := CtrlPlaneConfig{
		Nodes: 24, Degree: 4, Groups: 2, Members: 3, Seed: 7,
		Warmup: 20 * netsim.Second, Duration: 90 * netsim.Second,
		Protos: AllProtocols(),
	}
	res := RunCtrlPlane(cfg)
	if len(res.Pairs) != len(cfg.Protos) {
		t.Fatalf("got %d pairs, want %d", len(res.Pairs), len(cfg.Protos))
	}
	for _, p := range res.Pairs {
		if !p.Identical {
			t.Errorf("%s: pooled run diverged: alloc={msgs %d state %d events %d} pooled={msgs %d state %d events %d}",
				p.Protocol,
				p.Alloc.CtrlMessages, p.Alloc.State, p.Alloc.Events,
				p.Pooled.CtrlMessages, p.Pooled.State, p.Pooled.Events)
		}
		// Every protocol refreshes something in steady state except MOSPF,
		// whose LSAs are event-driven (no periodic reflood by default) — but
		// IGMP queries still tick there, so the count is non-zero everywhere.
		if p.Pooled.CtrlMessages == 0 {
			t.Errorf("%s: no control messages in measured phase", p.Protocol)
		}
	}
	if !res.AllIdentical {
		t.Fatal("AllIdentical = false")
	}
}

// TestCtrlPlaneDeterministic re-runs one pooled cell and requires identical
// simulated observables — the benchmark itself must be replayable.
func TestCtrlPlaneDeterministic(t *testing.T) {
	cfg := CtrlPlaneConfig{
		Nodes: 24, Degree: 4, Groups: 2, Members: 3, Seed: 11,
		Warmup: 20 * netsim.Second, Duration: 60 * netsim.Second,
	}
	a := runCtrlPlaneCell(cfg, PIMSM, true)
	b := runCtrlPlaneCell(cfg, PIMSM, true)
	if a.CtrlMessages != b.CtrlMessages || a.State != b.State || a.Events != b.Events {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}
