package experiments

import (
	"reflect"
	"testing"

	"pim/internal/netsim"
	"pim/internal/parallel"
)

// withShards runs fn with the global shard count set to n, restoring the
// previous count afterwards (mirrors the UseWheel/fastpath toggle tests).
func withShards(n int, fn func()) {
	prev := netsim.SetShards(n)
	defer netsim.SetShards(prev)
	fn()
}

// The tentpole's hard gate at the experiments level: a sharded run must
// produce the same overhead ledger as the sequential differential oracle —
// every field except PeakTimers, which sharded runs report as the sum of
// per-shard peaks (an upper bound on the global concurrent peak).
func TestShardedSparseMatchesSequential(t *testing.T) {
	cfg := SparseConfig{
		Nodes: 30, Degree: 4, Groups: 3, Members: 3, Senders: 1,
		Seed: 42, Warmup: 10 * netsim.Second, Duration: 40 * netsim.Second,
		PacketInterval: 5 * netsim.Second, PruneLifetime: 30 * netsim.Second,
	}
	for _, proto := range []Protocol{PIMSM, PIMSMShared, CBT, DVMRP, PIMDM} {
		var base Result
		withShards(1, func() { base = RunSparse(cfg, proto) })
		if base.Delivered == 0 {
			t.Fatalf("%s: sequential oracle delivered nothing", proto)
		}
		for _, n := range []int{2, 4} {
			var got Result
			withShards(n, func() { got = RunSparse(cfg, proto) })
			mask := func(r Result) Result { r.PeakTimers = 0; return r }
			if mask(got) != mask(base) {
				t.Errorf("%s shards=%d diverges from sequential:\n  seq: %+v\n  shd: %+v",
					proto, n, base, got)
			}
			// PeakTimers is masked, not compared: it sums per-shard peaks
			// (shards need not peak simultaneously) and cross-shard frames
			// sit in outboxes — uncounted — until the barrier, so the value
			// is load-dependent in both directions. It must still be sane.
			if got.PeakTimers <= 0 {
				t.Errorf("%s shards=%d: non-positive peak %d", proto, n, got.PeakTimers)
			}
		}
	}
}

// Satellite gate: every cell of the recovery matrix — delivery trace,
// recovery instant, control tally, residual state, violations — must be
// bit-identical across shard counts. This covers root-scheduler fault
// actions (loss installs, link flaps, crash/restart) interleaving with
// sharded protocol execution.
func TestShardedRecoveryMatrixMatchesSequential(t *testing.T) {
	cfg := shortRecovery()
	kinds := RecoveryFaults()
	for pi, proto := range RecoveryProtocols() {
		for ki, kind := range kinds {
			seed := parallel.DeriveSeed(cfg.Seed, int64(pi*len(kinds)+ki))
			var base recoveryRun
			withShards(1, func() { base = runRecoveryOnce(cfg, proto, kind, seed, nil) })
			for _, n := range []int{2, 4} {
				var got recoveryRun
				withShards(n, func() { got = runRecoveryOnce(cfg, proto, kind, seed, nil) })
				if !reflect.DeepEqual(got, base) {
					t.Errorf("%s/%s shards=%d diverges from sequential:\n  seq: %+v\n  shd: %+v",
						proto, kind, n, base, got)
				}
			}
		}
	}
}

// MOSPF cannot shard (shared link-state Domain); RunSparse must fall back
// to the sequential path even when shards are requested globally.
func TestShardedMOSPFFallsBack(t *testing.T) {
	cfg := SparseConfig{
		Nodes: 15, Degree: 3, Groups: 2, Members: 2, Senders: 1,
		Seed: 7, Warmup: 5 * netsim.Second, Duration: 20 * netsim.Second,
		PacketInterval: 5 * netsim.Second, PruneLifetime: 30 * netsim.Second,
	}
	var base, got Result
	withShards(1, func() { base = RunSparse(cfg, MOSPF) })
	withShards(4, func() { got = RunSparse(cfg, MOSPF) })
	if got != base {
		t.Fatalf("MOSPF run changed under shard request:\n  seq: %+v\n  shd: %+v", base, got)
	}
}
