package experiments

import (
	"math/rand"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// CongestionConfig parameterizes the concentration→queueing experiment: the
// consequence of Figure 2(b)'s per-link flow concentration once links have
// finite capacity. Many groups share one rendezvous point; with shared
// trees every flow of every group crosses the RP-adjacent links, which
// saturate, while per-source SPTs spread the load.
type CongestionConfig struct {
	Nodes   int
	Degree  float64
	Groups  int
	Members int
	Senders int
	Seed    int64
	// Bandwidth is the per-link capacity in bytes/second.
	Bandwidth int64
	// PacketSize and PacketInterval set each sender's rate.
	PacketSize     int
	PacketInterval netsim.Time
	Duration       netsim.Time
}

// DefaultCongestion returns a workload that loads the RP-adjacent links to
// several times their capacity under shared trees while leaving individual
// SPT paths uncongested.
func DefaultCongestion() CongestionConfig {
	return CongestionConfig{
		Nodes: 30, Degree: 4, Groups: 8, Members: 3, Senders: 2,
		Seed:       11,
		Bandwidth:  20_000, // bytes/s
		PacketSize: 256, PacketInterval: 200 * netsim.Millisecond,
		Duration: 60 * netsim.Second,
	}
}

// CongestionResult reports one protocol variant's delay under load.
type CongestionResult struct {
	Protocol Protocol
	// MeanDelay is the average sender→receiver delivery delay.
	MeanDelay netsim.Time
	// MaxQueueDelay is the worst per-link queueing delay observed.
	MaxQueueDelay netsim.Time
	Delivered     int
}

// RunCongestion measures delivery delay under finite link bandwidth for one
// tree policy (ProtoPIMSM = per-source SPTs, ProtoPIMSMShared = shared
// trees through a single shared RP).
func RunCongestion(cfg CongestionConfig, proto Protocol) CongestionResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := topology.Random(topology.GenConfig{Nodes: cfg.Nodes, Degree: cfg.Degree}, rng)
	sim := scenario.Build(g)

	type party struct {
		host  *igmp.Host
		group addr.IP
	}
	var receivers, senders []party
	hostAt := map[int]*igmp.Host{}
	ensure := func(r int) *igmp.Host {
		if h := hostAt[r]; h != nil {
			return h
		}
		h := sim.AddHost(r)
		hostAt[r] = h
		return h
	}
	rpRouter := rng.Intn(cfg.Nodes)
	rpMap := map[addr.IP][]addr.IP{}
	for gi := 0; gi < cfg.Groups; gi++ {
		grp := addr.GroupForIndex(gi)
		picked := topology.PickDistinct(cfg.Nodes, cfg.Members+cfg.Senders, rng)
		for _, m := range picked[:cfg.Members] {
			receivers = append(receivers, party{ensure(m), grp})
		}
		for _, s := range picked[cfg.Members:] {
			senders = append(senders, party{ensure(s), grp})
		}
		rpMap[grp] = []addr.IP{}
	}
	sim.FinishUnicast(scenario.UseOracle)
	// Every group rendezvous at the same router — the concentration point.
	for grp := range rpMap {
		rpMap[grp] = []addr.IP{sim.RouterAddr(rpRouter)}
	}
	for _, l := range sim.EdgeLinks {
		l.Bandwidth = cfg.Bandwidth
	}

	pcfg := core.Config{RPMapping: rpMap}
	if proto == PIMSMShared {
		pcfg.SPTPolicy = core.SwitchNever
	}
	sim.Deploy(scenario.SparseMode, scenario.WithCoreConfig(pcfg))
	sim.Run(2 * netsim.Second)
	for _, p := range receivers {
		p.host.Join(p.group)
	}
	sim.Run(10 * netsim.Second)

	var delaySum netsim.Time
	var delayN int64
	for _, h := range hostAt {
		h.OnData = func(grp addr.IP, pkt *packet.Packet) {
			if d, ok := scenario.Latency(sim.Net.Sched.Now(), pkt); ok {
				delaySum += d
				delayN++
			}
		}
	}
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for _, s := range senders {
			scenario.SendData(s.host, s.group, cfg.PacketSize)
		}
		sim.Net.Sched.After(cfg.PacketInterval, pump)
	}
	// Warm up the trees (registers, SPT switches) before measuring.
	sim.Net.Sched.After(0, pump)
	sim.Run(10 * netsim.Second)
	delaySum, delayN = 0, 0
	for _, l := range sim.EdgeLinks {
		l.MaxQueueDelay = 0
	}
	sim.Run(cfg.Duration)
	stop = true

	res := CongestionResult{Protocol: proto, Delivered: int(delayN)}
	if delayN > 0 {
		res.MeanDelay = delaySum / netsim.Time(delayN)
	}
	for _, l := range sim.EdgeLinks {
		if l.MaxQueueDelay > res.MaxQueueDelay {
			res.MaxQueueDelay = l.MaxQueueDelay
		}
	}
	return res
}
