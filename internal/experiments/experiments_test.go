package experiments

import (
	"bytes"
	"math/rand"
	"testing"

	"pim/internal/netsim"
	"pim/internal/topology"
)

// smallSparse shrinks the default workload so tests stay fast.
func smallSparse() SparseConfig {
	cfg := DefaultSparse()
	cfg.Nodes = 20
	cfg.Groups = 2
	cfg.Members = 3
	cfg.Senders = 1
	cfg.Duration = 120 * netsim.Second
	cfg.PruneLifetime = 40 * netsim.Second
	return cfg
}

func TestSparseDeliveryAllProtocols(t *testing.T) {
	cfg := smallSparse()
	for _, p := range AllProtocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res := RunSparse(cfg, p)
			if res.Delivered == 0 {
				t.Fatalf("%s delivered nothing: %+v", p, res)
			}
			// Every protocol must deliver the large majority of packets
			// (transition windows can drop a handful).
			if res.Delivered < res.Expected*8/10 {
				t.Errorf("%s delivered %d of %d expected", p, res.Delivered, res.Expected)
			}
			// And must not systematically duplicate: a short shared-to-SPT
			// transition can double a few packets, nothing more.
			if res.Delivered > res.Expected+res.Expected/10 {
				t.Errorf("%s over-delivered %d of %d expected (duplicates)",
					p, res.Delivered, res.Expected)
			}
		})
	}
}

func TestSparseModeTouchesFewerLinksThanDense(t *testing.T) {
	cfg := smallSparse()
	sparse := RunSparse(cfg, PIMSM)
	dense := RunSparse(cfg, DVMRP)
	if sparse.LinksTouched >= dense.LinksTouched {
		t.Errorf("PIM-SM touched %d links, DVMRP %d — sparse mode should touch fewer",
			sparse.LinksTouched, dense.LinksTouched)
	}
	if sparse.DataPackets >= dense.DataPackets {
		t.Errorf("PIM-SM data crossings %d, DVMRP %d — sparse mode should cost less",
			sparse.DataPackets, dense.DataPackets)
	}
}

func TestMOSPFPaysMembershipAndSPFCosts(t *testing.T) {
	cfg := smallSparse()
	res := RunSparse(cfg, MOSPF)
	if res.SPFRuns == 0 {
		t.Error("MOSPF reported no SPF runs")
	}
	// Membership rows are stored on every router: state far exceeds the
	// on-tree-only PIM state.
	pim := RunSparse(cfg, PIMSM)
	if res.State <= pim.State {
		t.Errorf("MOSPF state %d not above PIM-SM state %d", res.State, pim.State)
	}
}

func TestFig1BroadcastShape(t *testing.T) {
	prune := 30 * netsim.Second
	dv := RunFig1Broadcast(DVMRP, prune)
	sm := RunFig1Broadcast(PIMSM, prune)
	if dv.Delivered == 0 || sm.Delivered == 0 {
		t.Fatalf("no delivery: dvmrp=%d pimsm=%d", dv.Delivered, sm.Delivered)
	}
	// DVMRP's periodic grow-back floods every backbone link at least once
	// during the measured window; PIM's tree leaves off-tree links clean.
	if dv.BackboneLinksTouched < 4 {
		t.Errorf("DVMRP touched only %d backbone links — expected near-full broadcast", dv.BackboneLinksTouched)
	}
	if sm.BackboneLinksTouched >= dv.BackboneLinksTouched {
		t.Errorf("PIM-SM touched %d backbone links vs DVMRP %d", sm.BackboneLinksTouched, dv.BackboneLinksTouched)
	}
	if sm.DataPackets >= dv.DataPackets {
		t.Errorf("PIM-SM crossings %d vs DVMRP %d", sm.DataPackets, dv.DataPackets)
	}
}

func TestFig1ConcentrationShape(t *testing.T) {
	cbtRes := RunFig1Concentration(CBT)
	sptRes := RunFig1Concentration(PIMSM)
	if cbtRes.Delivered == 0 || sptRes.Delivered == 0 {
		t.Fatalf("no delivery: cbt=%d pim=%d", cbtRes.Delivered, sptRes.Delivered)
	}
	// The shared tree forces Y↔Z traffic through the core's domain, so
	// delivery paths are longer than over shortest-path trees ("the packets
	// traveling from Y to Z will not travel via the shortest path"). The
	// at-scale concentration difference is Figure 2(b)'s measurement in
	// internal/trees; with a single symmetric 3-member group the per-link
	// packet totals tie.
	if cbtRes.MeanDelay <= sptRes.MeanDelay {
		t.Errorf("CBT mean delay %v not above PIM-SM %v",
			cbtRes.MeanDelay, sptRes.MeanDelay)
	}
}

func TestCompareSparseRunsAll(t *testing.T) {
	cfg := smallSparse()
	cfg.Duration = 60 * netsim.Second
	results := CompareSparse(cfg, []Protocol{PIMSM, CBT})
	if len(results) != 2 || results[0].Protocol != PIMSM || results[1].Protocol != CBT {
		t.Fatalf("results = %+v", results)
	}
	if results[0].String() == "" {
		t.Error("empty string rendering")
	}
}

// TestSenderScalingShape pins the paper's §3 trade: PIM's state grows with
// the sender set (it "require[s] enumeration of sources"); CBT's per-group
// shared tree does not.
func TestSenderScalingShape(t *testing.T) {
	base := smallSparse()
	base.Groups = 2
	base.Duration = 90 * netsim.Second
	points := RunSenderScaling(base, []int{1, 4}, []Protocol{PIMSM, CBT})
	pimGrowth := points[1].Results[0].State - points[0].Results[0].State
	cbtGrowth := points[1].Results[1].State - points[0].Results[1].State
	if pimGrowth <= 0 {
		t.Errorf("PIM state did not grow with senders: %+d", pimGrowth)
	}
	if cbtGrowth >= pimGrowth {
		t.Errorf("CBT state growth %d not below PIM's %d", cbtGrowth, pimGrowth)
	}
}

// TestGroupScalingShape: every protocol's state grows with group count, and
// MOSPF grows fastest (membership stored on every router).
func TestGroupScalingShape(t *testing.T) {
	base := smallSparse()
	base.Duration = 90 * netsim.Second
	points := RunGroupScaling(base, []int{1, 4}, []Protocol{PIMSM, MOSPF})
	pimGrowth := points[1].Results[0].State - points[0].Results[0].State
	mospfGrowth := points[1].Results[1].State - points[0].Results[1].State
	if pimGrowth <= 0 || mospfGrowth <= 0 {
		t.Fatalf("state did not grow with groups: pim=%+d mospf=%+d", pimGrowth, mospfGrowth)
	}
	if mospfGrowth <= pimGrowth {
		t.Errorf("MOSPF growth %d not above PIM's %d (membership should be stored everywhere)",
			mospfGrowth, pimGrowth)
	}
}

// TestChurnCostBounded: membership dynamics cost a bounded number of
// control messages per event (receiver-initiated joins touch only the path
// to the tree, §1.1/§2), and state does not accumulate.
func TestChurnCostBounded(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Nodes = 30
	cfg.Duration = 300 * netsim.Second
	res := RunChurn(cfg)
	if res.JoinEvents == 0 || res.LeaveEvents == 0 {
		t.Fatalf("no churn happened: %+v", res)
	}
	// Control per event stays small: each join/leave touches at most the
	// path to the RP (diameter ~6 here) plus amortized refresh traffic.
	if res.CtrlPerEvent > 40 {
		t.Errorf("control cost per membership event = %.1f, want bounded", res.CtrlPerEvent)
	}
	// State is bounded by live membership, not by total historical joins:
	// with half the pool joined, entries exist on at most every router for
	// the single group, in each of the three kinds.
	if res.FinalState > cfg.Nodes*3 {
		t.Errorf("state %d suggests leak", res.FinalState)
	}
}

// TestRunSparseOnParsedTopology: the experiment driver accepts an external
// topology (cmd/topogen edge-list round trip).
func TestRunSparseOnParsedTopology(t *testing.T) {
	g := topology.Random(topology.GenConfig{Nodes: 20, Degree: 4}, rand.New(rand.NewSource(3)))
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := topology.ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallSparse()
	cfg.Duration = 60 * netsim.Second
	res := RunSparseOn(parsed, cfg, PIMSM)
	if res.Delivered < res.Expected*8/10 {
		t.Errorf("delivered %d of %d on parsed topology", res.Delivered, res.Expected)
	}
}

// TestSizeScalingShape: doubling the internet size roughly doubles
// flood-and-prune's data-plane cost while leaving PIM's near constant (the
// sparse-mode headline, §1.2 "size of the internet").
func TestSizeScalingShape(t *testing.T) {
	base := smallSparse()
	base.Groups = 2
	base.Duration = 120 * netsim.Second
	base.PruneLifetime = 30 * netsim.Second
	points := RunSizeScaling(base, []int{20, 60}, []Protocol{PIMSM, DVMRP})
	pimGrowth := float64(points[1].Results[0].DataPackets) / float64(points[0].Results[0].DataPackets)
	dvGrowth := float64(points[1].Results[1].DataPackets) / float64(points[0].Results[1].DataPackets)
	if dvGrowth < 2 {
		t.Errorf("DVMRP data cost grew only %.2fx for 3x internet size", dvGrowth)
	}
	if pimGrowth > dvGrowth/1.5 {
		t.Errorf("PIM data cost grew %.2fx vs DVMRP %.2fx — sparse mode should be near size-independent",
			pimGrowth, dvGrowth)
	}
}

// TestCongestionDelayGap: with finite link bandwidth and a single shared RP
// for many groups, shared trees concentrate flows onto the RP-adjacent
// links and pay materially more delivery delay than per-source SPTs — the
// operational consequence of Figure 2(b).
func TestCongestionDelayGap(t *testing.T) {
	cfg := DefaultCongestion()
	cfg.Duration = 30 * netsim.Second
	shared := RunCongestion(cfg, PIMSMShared)
	spt := RunCongestion(cfg, PIMSM)
	if shared.Delivered == 0 || spt.Delivered == 0 {
		t.Fatalf("no delivery: shared=%d spt=%d", shared.Delivered, spt.Delivered)
	}
	if shared.MeanDelay < spt.MeanDelay*5/4 {
		t.Errorf("shared-tree delay %v not >= 1.25x SPT delay %v under congestion",
			shared.MeanDelay, spt.MeanDelay)
	}
	if shared.MaxQueueDelay == 0 {
		t.Error("no queueing observed — bandwidth limit ineffective")
	}
}
