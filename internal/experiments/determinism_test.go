package experiments

import (
	"reflect"
	"testing"

	"pim/internal/netsim"
)

// tinySparse is a fast config for determinism checks: full protocol stacks
// on a small internet with a short measured phase.
func tinySparse() SparseConfig {
	cfg := DefaultSparse()
	cfg.Nodes = 20
	cfg.Groups = 2
	cfg.Warmup = 10 * netsim.Second
	cfg.Duration = 40 * netsim.Second
	return cfg
}

// TestCompareSparseDeterministicAcrossWorkers: the full overhead ledger —
// state, control messages, byte and packet totals, per-link maxima — must be
// bit-identical whether the protocol runs execute sequentially or fan across
// eight workers. Each run is an isolated simulation seeded from the config,
// so worker scheduling must be unobservable.
func TestCompareSparseDeterministicAcrossWorkers(t *testing.T) {
	cfg := tinySparse()
	protos := []Protocol{PIMSM, CBT, DVMRP}
	cfg.Workers = 1
	seq := CompareSparse(cfg, protos)
	for _, w := range []int{2, 8} {
		cfg.Workers = w
		if got := CompareSparse(cfg, protos); !reflect.DeepEqual(seq, got) {
			t.Errorf("workers=%d ledger diverged:\nseq = %+v\npar = %+v", w, seq, got)
		}
	}
}

// TestScalingDeterministicAcrossWorkers covers the flattened grid driver.
func TestScalingDeterministicAcrossWorkers(t *testing.T) {
	cfg := tinySparse()
	protos := []Protocol{PIMSM, PIMDM}
	counts := []int{1, 2}
	cfg.Workers = 1
	seq := RunSenderScaling(cfg, counts, protos)
	cfg.Workers = 8
	if got := RunSenderScaling(cfg, counts, protos); !reflect.DeepEqual(seq, got) {
		t.Errorf("scaling grid diverged:\nseq = %+v\npar = %+v", seq, got)
	}
}

// TestChurnTrialsDeterministicAcrossWorkers covers per-trial seed derivation
// in the churn driver.
func TestChurnTrialsDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Nodes = 20
	cfg.Duration = 120 * netsim.Second
	cfg.Workers = 1
	seq := RunChurnTrials(cfg, 3)
	cfg.Workers = 8
	if got := RunChurnTrials(cfg, 3); !reflect.DeepEqual(seq, got) {
		t.Errorf("churn trials diverged:\nseq = %+v\npar = %+v", seq, got)
	}
	// Trials must actually differ from each other (distinct derived seeds).
	if reflect.DeepEqual(seq[0], seq[1]) && reflect.DeepEqual(seq[1], seq[2]) {
		t.Error("all churn trials identical; per-trial seed derivation broken")
	}
}
