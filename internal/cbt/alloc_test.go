package cbt

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/unicast"
)

// TestEchoRefreshZeroAlloc pins the warm child→parent echo keepalive cycle
// — echo request out, echo reply back, both over pooled frames — at zero
// heap allocations (see the core engine's twin for the warm-up rationale).
func TestEchoRefreshZeroAlloc(t *testing.T) {
	prev := netsim.SetFramePool(true)
	defer netsim.SetFramePool(prev)

	net := netsim.NewNetwork()
	na := net.AddNode("a")
	nb := net.AddNode("b")
	ia := net.AddIface(na, addr.V4(10, 0, 0, 1))
	ib := net.AddIface(nb, addr.V4(10, 0, 0, 2))
	net.Connect(ia, ib, netsim.Millisecond)
	oracle := unicast.NewOracle(net)

	g := addr.GroupForIndex(0)
	cfg := Config{CoreMapping: map[addr.IP]addr.IP{g: ib.Addr}}
	ra := New(na, cfg, oracle.RouterFor(na))
	rb := New(nb, cfg, oracle.RouterFor(nb))
	ra.Start()
	rb.Start()
	// A member behind a makes it join toward the core at b.
	ra.LocalJoin(ia, g)
	net.Sched.RunUntil(2 * netsim.Second)
	if !ra.OnTree(g) {
		t.Fatal("router a did not join the tree")
	}

	cycle := func() {
		ra.keepalive()
		net.Sched.RunUntil(net.Sched.Now() + 10*netsim.Millisecond)
	}
	for i := 0; i < 1500; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("warm echo keepalive cycle: %.2f allocs, want 0", allocs)
	}
}
