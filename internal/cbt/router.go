package cbt

import (
	"slices"

	"pim/internal/addr"
	"pim/internal/metrics"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/rpf"
	"pim/internal/telemetry"
	"pim/internal/unicast"
)

// Config carries the protocol parameters.
type Config struct {
	// CoreMapping assigns each group its core router address.
	CoreMapping map[addr.IP]addr.IP
	// EchoInterval paces child→parent keepalives; a parent silent for 3×
	// flushes the subtree.
	EchoInterval netsim.Time
	// JoinRetry is the JOIN-REQUEST retransmission interval until the ack
	// arrives (CBT's explicit hop-by-hop reliability).
	JoinRetry netsim.Time
	// AckRetry is the JOIN-ACK retransmission interval: the parent re-sends
	// an unconfirmed ack with doubling backoff up to maxAckRetries times,
	// until the child's first echo confirms it joined. Together with the
	// child's JoinRetry this makes the handshake survive loss in either
	// direction.
	AckRetry netsim.Time
	// Telemetry, when non-nil, receives the router's event stream. Nil keeps
	// every emit site a single predictable branch (zero-cost disabled).
	Telemetry *telemetry.Bus
}

// Defaults.
const (
	DefaultEchoInterval = 30 * netsim.Second
	DefaultJoinRetry    = 5 * netsim.Second
	DefaultAckRetry     = 2 * netsim.Second
	// maxAckRetries bounds ack retransmissions; past that the child's own
	// join-request retry recovers the handshake.
	maxAckRetries = 3
)

// groupState is this router's node on one group's bidirectional tree.
type groupState struct {
	core       addr.IP
	onTree     bool
	parentIf   *netsim.Iface
	parentAddr addr.IP // 0 at the core
	// children maps iface index -> set of downstream router addresses
	// (a multi-access LAN can carry several children on one interface).
	children map[int]map[addr.IP]bool
	// memberIfs are interfaces with local IGMP members.
	memberIfs map[int]*netsim.Iface
	// pending are downstream joins awaiting our own ack.
	pending map[int]map[addr.IP]bool
	// joinTimer retransmits the join request until acked.
	joinTimer *netsim.Timer
	// lastReply tracks parent liveness.
	lastReply netsim.Time
}

// Router is one CBT router instance.
type Router struct {
	Node    *netsim.Node
	Cfg     Config
	Unicast unicast.Router
	Metrics *metrics.Counters

	// tel is the telemetry sink (nil when disabled).
	tel *telemetry.Bus

	// rpfc memoizes lookups toward cores (off-tree senders resolve the
	// core per data packet), invalidated by unicast table generation.
	rpfc *rpf.Cache

	groups map[addr.IP]*groupState
	// pendingAcks holds join-ack retransmission state per (group, child).
	pendingAcks map[ackKey]*pendingAck
	// kaScratch is the keepalive walk's reusable sorted-group buffer.
	kaScratch []addr.IP

	// enc is the reusable control-message encode workspace (see
	// core.Router.enc): safe because Node.Send copies the payload into its
	// transmit frame before returning.
	enc packet.Scratch

	started bool
	// epoch invalidates scheduled closures across Stop/Restart (see
	// core.Router): timer bodies fire only under the epoch they were
	// scheduled in.
	epoch uint64
}

// ackKey identifies one downstream child awaiting ack confirmation.
type ackKey struct {
	group addr.IP
	ifIdx int
	child addr.IP
}

// pendingAck tracks one join-ack awaiting confirmation from the child.
type pendingAck struct {
	timer    *netsim.Timer
	attempts int
}

// New builds a CBT router.
func New(nd *netsim.Node, cfg Config, uni unicast.Router) *Router {
	if cfg.EchoInterval == 0 {
		cfg.EchoInterval = DefaultEchoInterval
	}
	if cfg.JoinRetry == 0 {
		cfg.JoinRetry = DefaultJoinRetry
	}
	if cfg.AckRetry == 0 {
		cfg.AckRetry = DefaultAckRetry
	}
	if cfg.CoreMapping == nil {
		cfg.CoreMapping = map[addr.IP]addr.IP{}
	}
	return &Router{
		Node: nd, Cfg: cfg, Unicast: uni,
		tel:         cfg.Telemetry,
		rpfc:        rpf.New(uni),
		Metrics:     metrics.New(),
		groups:      map[addr.IP]*groupState{},
		pendingAcks: map[ackKey]*pendingAck{},
	}
}

// Start registers handlers and begins keepalives.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EpochStart, Router: r.Node.ID,
			Iface: -1, Epoch: r.epoch, Value: int64(len(r.groups)),
		})
	}
	r.Node.Handle(packet.ProtoCBT, netsim.HandlerFunc(r.handleCtrl))
	r.Node.Handle(packet.ProtoUDP, netsim.HandlerFunc(r.handleData))
	var echo func()
	echo = func() {
		r.keepalive()
		r.after(r.Cfg.EchoInterval, echo)
	}
	r.after(0, echo)
}

// Stop detaches the router and discards all soft state: every group's tree
// attachment (parent, children, members) and all join/ack retransmission
// timers. Scheduled closures die via the epoch bump. Neighbors detect the
// loss through silence — the parent stops answering echoes and children
// eventually flush.
func (r *Router) Stop() {
	if !r.started {
		return
	}
	r.started = false
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EpochEnd, Router: r.Node.ID,
			Iface: -1, Epoch: r.epoch,
		})
	}
	r.epoch++
	r.Node.Handle(packet.ProtoCBT, nil)
	r.Node.Handle(packet.ProtoUDP, nil)
	for _, st := range r.groups {
		if st.joinTimer != nil {
			st.joinTimer.Stop()
		}
	}
	for _, p := range r.pendingAcks {
		p.timer.Stop()
	}
	r.rpfc = rpf.New(r.Unicast)
	r.groups = map[addr.IP]*groupState{}
	r.pendingAcks = map[ackKey]*pendingAck{}
}

// Restart brings a stopped router back empty; tree state rebuilds from
// local rejoins and downstream join-requests.
func (r *Router) Restart() {
	r.Stop()
	r.Start()
}

// after schedules fn under the current epoch: a Stop/Restart before the
// timer fires makes the closure a no-op.
func (r *Router) after(d netsim.Time, fn func()) *netsim.Timer {
	ep := r.epoch
	return r.Node.Sched().After(d, func() {
		if r.epoch == ep {
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: r.now(), Kind: telemetry.TimerFire, Router: r.Node.ID,
					Iface: -1, Epoch: ep,
				})
			}
			fn()
		}
	})
}

func (r *Router) now() netsim.Time { return r.Node.Sched().Now() }

// StateCount returns the number of per-group tree entries — CBT's state
// axis (one entry per group regardless of source count).
func (r *Router) StateCount() int { return len(r.groups) }

// OnTree reports whether this router is on the group's tree.
func (r *Router) OnTree(g addr.IP) bool {
	st := r.groups[g]
	return st != nil && st.onTree
}

func (r *Router) state(g addr.IP) *groupState {
	st := r.groups[g]
	if st == nil {
		st = &groupState{
			core:      r.Cfg.CoreMapping[g],
			children:  map[int]map[addr.IP]bool{},
			memberIfs: map[int]*netsim.Iface{},
			pending:   map[int]map[addr.IP]bool{},
		}
		r.groups[g] = st
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.EntryCreate, Router: r.Node.ID,
				Iface: -1, Epoch: r.epoch, Group: g, Value: telemetry.EntryWC,
			})
		}
	}
	return st
}

// dropState removes a group's tree entry and publishes its expiry.
func (r *Router) dropState(g addr.IP) {
	if _, ok := r.groups[g]; !ok {
		return
	}
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EntryExpire, Router: r.Node.ID,
			Iface: -1, Epoch: r.epoch, Group: g, Value: telemetry.EntryWC,
		})
	}
	delete(r.groups, g)
}

// --- Membership ---

// LocalJoin records a member and joins the tree toward the core.
func (r *Router) LocalJoin(ifc *netsim.Iface, g addr.IP) {
	core, ok := r.Cfg.CoreMapping[g]
	if !ok {
		return
	}
	st := r.state(g)
	st.memberIfs[ifc.Index] = ifc
	if st.onTree {
		return
	}
	if r.Node.OwnsAddr(core) {
		st.onTree = true // the core is the root of its own tree
		return
	}
	r.sendJoinReq(g, st)
}

// LocalLeave removes a member; a leaf router with no members quits the tree.
func (r *Router) LocalLeave(ifc *netsim.Iface, g addr.IP) {
	st := r.groups[g]
	if st == nil {
		return
	}
	delete(st.memberIfs, ifc.Index)
	r.maybeQuit(g, st)
}

func (r *Router) maybeQuit(g addr.IP, st *groupState) {
	if len(st.memberIfs) > 0 || len(st.children) > 0 || r.Node.OwnsAddr(st.core) {
		return
	}
	if st.onTree && st.parentAddr != 0 && st.parentIf != nil && st.parentIf.Up() {
		r.sendTo(st.parentIf, st.parentAddr, &Message{Type: TypeQuit, Group: g})
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.PruneSend, Router: r.Node.ID,
				Iface: st.parentIf.Index, Epoch: r.epoch, Group: g,
			})
		}
	}
	if st.joinTimer != nil {
		st.joinTimer.Stop()
	}
	r.dropState(g)
}

// --- Tree construction ---

// sendJoinReq transmits (and schedules retransmission of) the join request
// toward the core.
func (r *Router) sendJoinReq(g addr.IP, st *groupState) {
	if rt, ok := r.rpfc.Lookup(st.core); ok {
		nextHop := rt.NextHop
		if nextHop == 0 {
			nextHop = st.core
		}
		st.parentIf, st.parentAddr = rt.Iface, nextHop
		r.sendTo(rt.Iface, nextHop, &Message{Type: TypeJoinReq, Group: g, Core: st.core})
		r.Metrics.Inc(metrics.CtrlCBTJoin)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.JoinPruneSend, Router: r.Node.ID,
				Iface: rt.Iface.Index, Epoch: r.epoch, Group: g, Value: 1,
			})
		}
	}
	// Arm the retry even when the core is momentarily unreachable: the
	// request repeats until the handshake completes.
	if st.joinTimer != nil {
		st.joinTimer.Stop()
	}
	st.joinTimer = r.after(r.Cfg.JoinRetry, func() {
		if cur := r.groups[g]; cur == st && !st.onTree {
			r.sendJoinReq(g, st) // explicit reliability: retransmit until acked
		}
	})
}

func (r *Router) handleCtrl(in *netsim.Iface, pkt *packet.Packet) {
	var msg Message
	if err := UnmarshalInto(&msg, pkt.Payload); err != nil {
		return
	}
	m := &msg
	switch m.Type {
	case TypeJoinReq:
		r.handleJoinReq(in, pkt.Src, m)
	case TypeJoinAck:
		r.handleJoinAck(in, m)
	case TypeQuit:
		r.cancelAckRetry(m.Group, in.Index, pkt.Src)
		if st := r.groups[m.Group]; st != nil {
			if set := st.children[in.Index]; set != nil {
				delete(set, pkt.Src)
				if len(set) == 0 {
					delete(st.children, in.Index)
				}
			}
			r.maybeQuit(m.Group, st)
		}
	case TypeEchoReq:
		// The child echoing proves it received our join-ack.
		r.cancelAckRetry(m.Group, in.Index, pkt.Src)
		if st := r.groups[m.Group]; st != nil && st.onTree && st.children[in.Index][pkt.Src] {
			r.sendTo(in, pkt.Src, &Message{Type: TypeEchoReply, Group: m.Group})
			r.Metrics.Inc(metrics.CtrlCBTEcho)
		}
	case TypeEchoReply:
		if st := r.groups[m.Group]; st != nil && in == st.parentIf {
			st.lastReply = r.now()
		}
	case TypeFlush:
		r.flush(m.Group)
	}
}

func (r *Router) handleJoinReq(in *netsim.Iface, from addr.IP, m *Message) {
	st := r.state(m.Group)
	if st.core == 0 {
		st.core = m.Core
	}
	if st.onTree || r.Node.OwnsAddr(m.Core) {
		st.onTree = true
		addToSet(st.children, in.Index, from)
		r.sendJoinAck(m.Group, in, from, m.Core)
		return
	}
	// Transit router: remember the requester, forward toward the core.
	addToSet(st.pending, in.Index, from)
	if st.joinTimer == nil || !st.joinTimer.Active() {
		r.sendJoinReq(m.Group, st)
	}
}

func (r *Router) handleJoinAck(in *netsim.Iface, m *Message) {
	st := r.groups[m.Group]
	if st == nil || st.onTree || in != st.parentIf {
		return
	}
	st.onTree = true
	st.lastReply = r.now()
	if st.joinTimer != nil {
		st.joinTimer.Stop()
	}
	// Ack every waiting downstream joiner, in sorted order: acks are sends,
	// so their order must not follow map iteration.
	for _, idx := range sortedKeys(st.pending) {
		ifc := r.Node.Ifaces[idx]
		for _, child := range sortedAddrs(st.pending[idx]) {
			addToSet(st.children, idx, child)
			r.sendJoinAck(m.Group, ifc, child, st.core)
		}
	}
	st.pending = map[int]map[addr.IP]bool{}
}

// sendJoinAck transmits a join-ack and arms its retransmission: an ack lost
// on the wire would leave the child retrying join-requests for a full
// JoinRetry period, so the parent re-sends it with doubling backoff until
// the child's first echo (or quit) confirms receipt, bounded at
// maxAckRetries attempts.
func (r *Router) sendJoinAck(g addr.IP, ifc *netsim.Iface, child addr.IP, core addr.IP) {
	r.sendTo(ifc, child, &Message{Type: TypeJoinAck, Group: g, Core: core})
	r.Metrics.Inc(metrics.CtrlCBTAck)
	r.armAckRetry(g, ifc, child, 0)
}

func (r *Router) armAckRetry(g addr.IP, ifc *netsim.Iface, child addr.IP, attempts int) {
	key := ackKey{group: g, ifIdx: ifc.Index, child: child}
	if prev := r.pendingAcks[key]; prev != nil {
		prev.timer.Stop()
	}
	if attempts >= maxAckRetries {
		delete(r.pendingAcks, key)
		return
	}
	p := &pendingAck{attempts: attempts}
	p.timer = r.after(r.Cfg.AckRetry<<uint(attempts), func() {
		if r.pendingAcks[key] != p {
			return
		}
		st := r.groups[g]
		if st == nil || !st.onTree || !st.children[ifc.Index][child] {
			delete(r.pendingAcks, key)
			return
		}
		r.sendTo(ifc, child, &Message{Type: TypeJoinAck, Group: g, Core: st.core})
		r.Metrics.Inc(metrics.CtrlCBTAck)
		r.armAckRetry(g, ifc, child, attempts+1)
	})
	r.pendingAcks[key] = p
}

// cancelAckRetry clears ack-retransmission state once the child is known to
// have processed the ack (echoed) or left (quit).
func (r *Router) cancelAckRetry(g addr.IP, ifIdx int, child addr.IP) {
	key := ackKey{group: g, ifIdx: ifIdx, child: child}
	if p := r.pendingAcks[key]; p != nil {
		p.timer.Stop()
		delete(r.pendingAcks, key)
	}
}

// --- Keepalive and failure recovery ---

func (r *Router) keepalive() {
	now := r.now()
	// Echo requests and parent-failure flushes are sends: their order must
	// not follow map iteration (the expireNeighbors bug class), so walk the
	// groups in ascending order via a reusable scratch.
	r.kaScratch = r.kaScratch[:0]
	for g := range r.groups {
		r.kaScratch = append(r.kaScratch, g)
	}
	slices.Sort(r.kaScratch)
	for _, g := range r.kaScratch {
		st := r.groups[g]
		if !st.onTree || st.parentAddr == 0 {
			continue
		}
		if st.lastReply != 0 && now-st.lastReply > 3*r.Cfg.EchoInterval {
			// Parent is gone: flush the subtree, then rejoin if we still
			// have local members.
			r.flush(g)
			continue
		}
		if st.parentIf != nil && st.parentIf.Up() {
			r.sendTo(st.parentIf, st.parentAddr, &Message{Type: TypeEchoReq, Group: g})
			r.Metrics.Inc(metrics.CtrlCBTEcho)
		}
	}
}

// flush tears down this router's attachment and propagates downstream; a
// router with local members immediately rejoins toward the core.
func (r *Router) flush(g addr.IP) {
	st := r.groups[g]
	if st == nil {
		return
	}
	// Flush notifications are sends: walk child interfaces and addresses in
	// sorted order, not map order (the expireNeighbors bug class).
	for _, idx := range sortedKeys(st.children) {
		ifc := r.Node.Ifaces[idx]
		if !ifc.Up() {
			continue
		}
		for _, child := range sortedAddrs(st.children[idx]) {
			r.sendTo(ifc, child, &Message{Type: TypeFlush, Group: g})
		}
	}
	members := st.memberIfs
	if st.joinTimer != nil {
		st.joinTimer.Stop()
	}
	r.dropState(g)
	if len(members) > 0 && !r.Node.OwnsAddr(st.core) {
		ns := r.state(g)
		ns.memberIfs = members
		r.sendJoinReq(g, ns)
	}
}

// --- Data plane ---

// handleData forwards multicast data over the bidirectional tree: packets
// from any tree direction (or a local member LAN) flow to every other tree
// edge and member LAN. Off-tree routers relay the packet hop-by-hop toward
// the core (the CBT "non-member sender" path).
func (r *Router) handleData(in *netsim.Iface, pkt *packet.Packet) {
	g := pkt.Dst
	if !g.IsMulticast() || g.IsLinkLocalMulticast() {
		return
	}
	st := r.groups[g]
	if st == nil || !st.onTree {
		core, ok := r.Cfg.CoreMapping[g]
		if !ok {
			r.Metrics.Inc(metrics.DataNoState)
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: r.now(), Kind: telemetry.NoState, Router: r.Node.ID,
					Iface: in.Index, Epoch: r.epoch, Source: pkt.Src, Group: g,
				})
			}
			return
		}
		// Relay toward the core until an on-tree router takes over.
		rt, ok := r.rpfc.Lookup(core)
		if !ok || rt.Iface == in {
			r.Metrics.Inc(metrics.DataDropped)
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: r.now(), Kind: telemetry.RPFDrop, Router: r.Node.ID,
					Iface: in.Index, Epoch: r.epoch, Source: pkt.Src, Group: g,
				})
			}
			return
		}
		fwd, live := pkt.Forwarded()
		if !live {
			return
		}
		nextHop := rt.NextHop
		if nextHop == 0 {
			nextHop = core
		}
		r.Node.Send(rt.Iface, fwd, nextHop)
		r.Metrics.Inc(metrics.DataForwarded)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.DataForward, Router: r.Node.ID,
				Iface: rt.Iface.Index, Epoch: r.epoch, Source: pkt.Src, Group: g,
			})
		}
		return
	}
	// On-tree dissemination: loop safety comes from the tree structure —
	// a packet entering on one tree interface leaves on all others only.
	fwd, live := pkt.Forwarded()
	if !live {
		return
	}
	send := func(ifc *netsim.Iface, nextHop addr.IP) {
		if ifc == in || !ifc.Up() {
			return
		}
		r.Node.Send(ifc, fwd, nextHop)
		r.Metrics.Inc(metrics.DataForwarded)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.DataForward, Router: r.Node.ID,
				Iface: ifc.Index, Epoch: r.epoch, Source: pkt.Src, Group: g,
			})
		}
	}
	if st.parentIf != nil && st.parentAddr != 0 {
		send(st.parentIf, st.parentAddr)
	}
	// Data fan-out is a sequence of sends: walk children and member LANs in
	// sorted order so delivery (and any injected-loss draw consumption) does
	// not depend on map iteration.
	sentIface := map[int]bool{}
	for _, idx := range sortedKeys(st.children) {
		for _, child := range sortedAddrs(st.children[idx]) {
			send(r.Node.Ifaces[idx], child)
		}
		sentIface[idx] = true
	}
	for _, idx := range sortedKeys(st.memberIfs) {
		if !sentIface[idx] && (st.parentIf == nil || idx != st.parentIf.Index) {
			send(st.memberIfs[idx], 0)
			sentIface[idx] = true
		}
	}
}

// sortedKeys returns the interface indexes of m in ascending order, so that
// sends fanned out over a map never follow map iteration order.
func sortedKeys[V any](m map[int]V) []int {
	idxs := make([]int, 0, len(m))
	for idx := range m {
		idxs = append(idxs, idx)
	}
	slices.Sort(idxs)
	return idxs
}

// sortedAddrs returns the members of set in ascending address order.
func sortedAddrs(set map[addr.IP]bool) []addr.IP {
	as := make([]addr.IP, 0, len(set))
	for a := range set {
		as = append(as, a)
	}
	slices.Sort(as)
	return as
}

func addToSet(m map[int]map[addr.IP]bool, idx int, a addr.IP) {
	if m[idx] == nil {
		m[idx] = map[addr.IP]bool{}
	}
	m[idx][a] = true
}

func (r *Router) sendTo(ifc *netsim.Iface, to addr.IP, m *Message) {
	if ifc == nil || !ifc.Up() {
		return
	}
	r.enc.Buf = m.MarshalTo(r.enc.Buf[:0])
	r.Node.Send(ifc, r.enc.Packet(ifc.Addr, to, packet.ProtoCBT, 1), to)
}
