package cbt_test

import (
	"math/rand"
	"testing"

	"pim/internal/cbt"
)

// TestUnmarshalNeverPanics: arbitrary bytes must decode or error cleanly.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5000; trial++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		_, _ = cbt.Unmarshal(b)
	}
}
