package cbt_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/cbt"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

func TestMessageRoundTrip(t *testing.T) {
	for typ := byte(cbt.TypeJoinReq); typ <= cbt.TypeFlush; typ++ {
		m := &cbt.Message{Type: typ, Group: addr.GroupForIndex(2), Core: addr.V4(10, 200, 0, 1)}
		got, err := cbt.Unmarshal(m.Marshal())
		if err != nil || *got != *m {
			t.Fatalf("type %d: %+v %v", typ, got, err)
		}
	}
	if _, err := cbt.Unmarshal(make([]byte, 9)); err == nil {
		t.Error("short message accepted")
	}
	if _, err := cbt.Unmarshal(make([]byte, 10)); err == nil {
		t.Error("type 0 accepted")
	}
}

// star builds the Figure 1(c)-style layout: core at node 0, receivers and
// senders in three "domains" hanging off a line.
//
//	0(core) - 1 - 2
//	          |
//	          3
func starSim(t *testing.T) (*scenario.Sim, *scenario.CBTDeployment, addr.IP) {
	t.Helper()
	g := topology.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	sim := scenario.Build(g)
	for i := 0; i < 4; i++ {
		sim.AddHost(i)
	}
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	dep := sim.Deploy(scenario.CBTMode, scenario.WithCBTConfig(cbt.Config{CoreMapping: map[addr.IP]addr.IP{group: sim.RouterAddr(0)}})).(*scenario.CBTDeployment)
	sim.Run(2 * netsim.Second)
	return sim, dep, group
}

func TestJoinAckBuildsTree(t *testing.T) {
	sim, dep, group := starSim(t)
	sim.Hosts[2][0].Join(group)
	sim.Run(2 * netsim.Second)
	// Routers 2 (leaf), 1 (transit), 0 (core) are on-tree; 3 is not.
	for _, i := range []int{0, 1, 2} {
		if !dep.Routers[i].OnTree(group) {
			t.Errorf("router %d not on tree", i)
		}
	}
	if dep.Routers[3].OnTree(group) {
		t.Error("router 3 should be off-tree")
	}
	if dep.Routers[3].StateCount() != 0 {
		t.Error("off-tree router holds state")
	}
}

func TestBidirectionalDelivery(t *testing.T) {
	sim, _, group := starSim(t)
	r2, r3 := sim.Hosts[2][0], sim.Hosts[3][0]
	r2.Join(group)
	r3.Join(group)
	sim.Run(2 * netsim.Second)
	// A member sender: data flows both up toward the core and down to the
	// sibling branch without passing the core twice.
	for i := 0; i < 5; i++ {
		scenario.SendData(r2, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if got := r3.Received[group]; got < 4 {
		t.Fatalf("sibling received %d packets", got)
	}
	// Sender does not hear its own traffic back (tree, no loops).
	if r2.Received[group] != 0 {
		t.Errorf("sender received %d copies of its own packets", r2.Received[group])
	}
}

func TestNonMemberSenderRelayedTowardCore(t *testing.T) {
	sim, _, group := starSim(t)
	receiver := sim.Hosts[2][0]
	receiver.Join(group)
	sim.Run(2 * netsim.Second)
	// Node 3's host never joined; its router is off-tree and must relay
	// data toward the core until the tree takes over.
	sender := sim.Hosts[3][0]
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if got := receiver.Received[group]; got < 4 {
		t.Fatalf("receiver got %d packets from non-member sender", got)
	}
}

func TestQuitTearsDownLeafBranch(t *testing.T) {
	sim, dep, group := starSim(t)
	h2, h3 := sim.Hosts[2][0], sim.Hosts[3][0]
	h2.Join(group)
	h3.Join(group)
	sim.Run(2 * netsim.Second)
	h3.Leave(group)
	sim.Run(2 * netsim.Second)
	if dep.Routers[3].OnTree(group) {
		t.Error("router 3 still on tree after leave")
	}
	// Router 1 keeps serving branch 2.
	if !dep.Routers[1].OnTree(group) {
		t.Error("transit router quit despite remaining child")
	}
	// Now the last member leaves: the whole tree (except the core root)
	// should dissolve.
	h2.Leave(group)
	sim.Run(2 * netsim.Second)
	if dep.Routers[1].OnTree(group) || dep.Routers[2].OnTree(group) {
		t.Error("tree survived last leave")
	}
}

func TestJoinRetransmitsUntilAcked(t *testing.T) {
	// Cut the link mid-join: the join must retransmit and succeed after the
	// link is restored (explicit reliability).
	g := topology.New(2)
	g.AddEdge(0, 1, 1)
	sim := scenario.Build(g)
	h := sim.AddHost(1)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	dep := sim.Deploy(scenario.CBTMode, scenario.WithCBTConfig(cbt.Config{
		CoreMapping: map[addr.IP]addr.IP{group: sim.RouterAddr(0)},
		JoinRetry:   2 * netsim.Second,
	})).(*scenario.CBTDeployment)
	sim.Run(netsim.Second)
	// Break the path, then join: the first request is lost.
	sim.Net.SetLinkUp(sim.EdgeLinks[0], false)
	h.Join(group)
	sim.Run(3 * netsim.Second)
	if dep.Routers[1].OnTree(group) {
		t.Fatal("joined across a dead link?")
	}
	sim.Net.SetLinkUp(sim.EdgeLinks[0], true)
	sim.Run(5 * netsim.Second)
	if !dep.Routers[1].OnTree(group) {
		t.Fatal("join retransmission did not complete the handshake")
	}
}

// TestTrafficConcentration demonstrates the paper's Figure 1(c) point: with
// several member senders, every packet crosses the links near the core,
// concentrating traffic there.
func TestTrafficConcentration(t *testing.T) {
	sim, _, group := starSim(t)
	h0, h2, h3 := sim.Hosts[0][0], sim.Hosts[2][0], sim.Hosts[3][0]
	for _, h := range []interface{ Join(addr.IP, ...addr.IP) }{h0, h2, h3} {
		h.Join(group)
	}
	sim.Run(2 * netsim.Second)
	sim.Net.Stats.Reset()
	// Senders in both leaf domains.
	for i := 0; i < 10; i++ {
		scenario.SendData(h2, group, 64)
		scenario.SendData(h3, group, 64)
		sim.Run(200 * netsim.Millisecond)
	}
	// Link 0 (core—router1) carries every packet from both senders: it is
	// the concentration point.
	link0 := sim.Net.Stats.PerLink[sim.EdgeLinks[0].ID].DataPackets
	if link0 < 20 {
		t.Errorf("core link carried %d packets, want >= 20 (both senders)", link0)
	}
}

// TestParentFailureFlushAndRejoin exercises the keepalive machinery: when a
// transit router dies (links cut), downstream routers stop getting echo
// replies, flush their subtree state, and re-join over a surviving path.
func TestParentFailureFlushAndRejoin(t *testing.T) {
	// core(0) —— 1 —— 2(member), plus backup path 0 —— 3 —— 2.
	g := topology.New(4)
	g.AddEdge(0, 1, 1) // edge 0: primary
	g.AddEdge(1, 2, 1) // edge 1
	g.AddEdge(0, 3, 2) // edge 2: backup (slower)
	g.AddEdge(3, 2, 2) // edge 3
	sim := scenario.Build(g)
	member := sim.AddHost(2)
	sender := sim.AddHost(0)
	sim.FinishUnicast(scenario.UseOracle)
	group := addr.GroupForIndex(0)
	dep := sim.Deploy(scenario.CBTMode, scenario.WithCBTConfig(cbt.Config{
		CoreMapping:  map[addr.IP]addr.IP{group: sim.RouterAddr(0)},
		EchoInterval: 5 * netsim.Second,
	})).(*scenario.CBTDeployment)
	sim.Run(2 * netsim.Second)
	member.Join(group)
	sim.Run(2 * netsim.Second)
	if !dep.Routers[1].OnTree(group) {
		t.Fatal("primary path not on tree")
	}
	// Kill the primary path between the transit router and the member
	// (the core keeps its own address reachable).
	sim.Net.SetLinkUp(sim.EdgeLinks[1], false)
	// 3 missed echoes + rejoin.
	sim.Run(6 * 5 * netsim.Second)
	if !dep.Routers[2].OnTree(group) {
		t.Fatal("member router did not re-join after parent failure")
	}
	if !dep.Routers[3].OnTree(group) {
		t.Fatal("backup transit not on tree")
	}
	before := member.Received[group]
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, group, 64)
		sim.Run(netsim.Second)
	}
	if member.Received[group]-before < 4 {
		t.Errorf("delivery after failover: %d of 5", member.Received[group]-before)
	}
}

// TestExplicitAckCountsAppearInLedger: CBT's control cost (joins, acks,
// echoes) is counted for the overhead comparison.
func TestControlMessageAccounting(t *testing.T) {
	sim, dep, group := starSim(t)
	sim.Hosts[2][0].Join(group)
	sim.Run(2 * netsim.Second)
	var joins, acks int64
	for _, r := range dep.Routers {
		joins += r.Metrics.Get("ctrl.cbtjoin")
		acks += r.Metrics.Get("ctrl.cbtack")
	}
	if joins == 0 || acks == 0 {
		t.Errorf("joins=%d acks=%d — explicit handshake not counted", joins, acks)
	}
	// Echo keepalives accumulate over time.
	sim.Run(3 * cbt.DefaultEchoInterval)
	var echoes int64
	for _, r := range dep.Routers {
		echoes += r.Metrics.Get("ctrl.cbtecho")
	}
	if echoes == 0 {
		t.Error("no keepalive echoes counted")
	}
}
