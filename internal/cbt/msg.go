// Package cbt implements the Core Based Trees baseline (Ballardie, Francis,
// Crowcroft — the paper's reference [10]): one bidirectional shared tree per
// group rooted at a core router, built with explicit JOIN-REQUEST /
// JOIN-ACK handshakes and maintained with echo keepalives — the
// hop-by-hop-reliability design the paper contrasts with PIM's soft state
// (§1.3 fn. 4).
//
// The paper's Figure 1(c) critique — traffic concentration on the shared
// tree and non-shortest sender paths — is measured against this
// implementation by the Figure 1 benchmarks.
package cbt

import (
	"encoding/binary"
	"errors"

	"pim/internal/addr"
)

// Message types carried over packet.ProtoCBT.
const (
	TypeJoinReq   = 1
	TypeJoinAck   = 2
	TypeQuit      = 3
	TypeEchoReq   = 4
	TypeEchoReply = 5
	TypeFlush     = 6
)

// Message is the single wire format for all CBT control messages. Core is
// only meaningful for join request/ack.
type Message struct {
	Type  byte
	Group addr.IP
	Core  addr.IP
}

// ErrBadMessage reports malformed wire bytes.
var ErrBadMessage = errors.New("cbt: malformed message")

// Marshal encodes the message.
func (m *Message) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 10)) }

// MarshalTo appends the encoded message to b (same bytes as Marshal).
func (m *Message) MarshalTo(b []byte) []byte {
	var e [10]byte
	e[0] = m.Type
	binary.BigEndian.PutUint32(e[2:], uint32(m.Group))
	binary.BigEndian.PutUint32(e[6:], uint32(m.Core))
	return append(b, e[:]...)
}

// Unmarshal decodes a message.
func Unmarshal(b []byte) (*Message, error) {
	m := new(Message)
	if err := UnmarshalInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalInto decodes a message into a caller-owned struct, allocating
// nothing.
func UnmarshalInto(m *Message, b []byte) error {
	if len(b) < 10 {
		return ErrBadMessage
	}
	*m = Message{
		Type:  b[0],
		Group: addr.IP(binary.BigEndian.Uint32(b[2:])),
		Core:  addr.IP(binary.BigEndian.Uint32(b[6:])),
	}
	if m.Type < TypeJoinReq || m.Type > TypeFlush {
		return ErrBadMessage
	}
	return nil
}
