package cbt

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/unicast"
)

// TestKeepaliveEchoOrder pins the keepalive walk to ascending group order.
// Echo requests are sends: if they followed r.groups map iteration, the
// sequence in which a child consumes the link (and any injected-loss draws)
// would differ run to run — the expireNeighbors bug class. The test joins
// many groups in descending order and requires the parent to receive the
// echoes strictly ascending.
func TestKeepaliveEchoOrder(t *testing.T) {
	net := netsim.NewNetwork()
	na := net.AddNode("a")
	nb := net.AddNode("b")
	ia := net.AddIface(na, addr.V4(10, 0, 0, 1))
	ib := net.AddIface(nb, addr.V4(10, 0, 0, 2))
	net.Connect(ia, ib, netsim.Millisecond)
	oracle := unicast.NewOracle(net)

	const n = 12
	cores := map[addr.IP]addr.IP{}
	groups := make([]addr.IP, n)
	for i := range groups {
		groups[i] = addr.GroupForIndex(i)
		cores[groups[i]] = ib.Addr
	}
	cfg := Config{CoreMapping: cores}
	ra := New(na, cfg, oracle.RouterFor(na))
	rb := New(nb, cfg, oracle.RouterFor(nb))
	ra.Start()
	rb.Start()

	// Capture the arrival order of a's echo requests at b, then hand each
	// packet on to b's normal control handler.
	var seen []addr.IP
	nb.Handle(packet.ProtoCBT, netsim.HandlerFunc(func(in *netsim.Iface, pkt *packet.Packet) {
		var m Message
		if err := UnmarshalInto(&m, pkt.Payload); err == nil && m.Type == TypeEchoReq {
			seen = append(seen, m.Group)
		}
		rb.handleCtrl(in, pkt)
	}))

	for i := n - 1; i >= 0; i-- { // scrambled (descending) join order
		ra.LocalJoin(ia, groups[i])
	}
	net.Sched.RunUntil(2 * netsim.Second)
	for _, g := range groups {
		if !ra.OnTree(g) {
			t.Fatalf("group %v not on tree", g)
		}
	}

	seen = seen[:0]
	ra.keepalive()
	net.Sched.RunUntil(net.Sched.Now() + 100*netsim.Millisecond)
	if len(seen) != n {
		t.Fatalf("parent saw %d echo requests, want %d", len(seen), n)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatalf("echo requests out of ascending group order: %v", seen)
		}
	}
}
