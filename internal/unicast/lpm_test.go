package unicast

import (
	"math/rand"
	"testing"

	"pim/internal/addr"
	"pim/internal/fastpath"
)

// randPrefix draws a prefix biased toward the lengths the simulator uses
// (/24 link subnets, /32 hosts, short aggregates, and the default route).
func randPrefix(rng *rand.Rand) addr.Prefix {
	var l int
	switch rng.Intn(10) {
	case 0:
		l = 0
	case 1, 2:
		l = 8 + rng.Intn(8)
	case 3, 4, 5, 6:
		l = 24
	case 7:
		l = 32
	default:
		l = rng.Intn(33)
	}
	return addr.MustPrefix(addr.IP(rng.Uint32()), l)
}

func randRoute(rng *rand.Rand) Route {
	r := Route{NextHop: addr.IP(rng.Uint32()), Metric: int64(rng.Intn(1000))}
	if rng.Intn(8) == 0 {
		r.Metric = InfMetric // unreachable: must not shadow shorter prefixes
	}
	return r
}

// TestTrieMatchesLinearScan is the differential test pinning the fast path
// to the reference path: after every mutation batch, the trie must return
// bit-identical results to the linear scan for probes aimed at installed
// prefixes, near misses, and random addresses.
func TestTrieMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tb := &Table{}
		var installed []addr.Prefix
		for step := 0; step < 120; step++ {
			switch rng.Intn(10) {
			case 0, 1: // delete something (maybe absent)
				if len(installed) > 0 && rng.Intn(2) == 0 {
					tb.Delete(installed[rng.Intn(len(installed))])
				} else {
					tb.Delete(randPrefix(rng))
				}
			case 2: // wholesale replace
				m := map[addr.Prefix]Route{}
				for i := rng.Intn(20); i > 0; i-- {
					m[randPrefix(rng)] = randRoute(rng)
				}
				tb.Replace(m)
				installed = installed[:0]
				for p := range m {
					installed = append(installed, p)
				}
			default:
				p := randPrefix(rng)
				tb.Set(p, randRoute(rng))
				installed = append(installed, p)
			}
			for probe := 0; probe < 20; probe++ {
				var dst addr.IP
				if len(installed) > 0 && probe%2 == 0 {
					// Aim inside (or one past) an installed prefix so
					// overlaps and boundaries are exercised.
					p := installed[rng.Intn(len(installed))]
					dst = p.Addr + addr.IP(rng.Intn(4))
				} else {
					dst = addr.IP(rng.Uint32())
				}
				wantR, wantOK := tb.lookupLinear(dst)
				gotR, gotOK := tb.Lookup(dst)
				if gotOK != wantOK || gotR != wantR {
					t.Fatalf("trial %d step %d: Lookup(%v) = %+v,%v; linear = %+v,%v\ntable:\n%s",
						trial, step, dst, gotR, gotOK, wantR, wantOK, tb)
				}
			}
		}
	}
}

// TestGetHidesUnreachable pins the Get/Lookup consistency fix: routes at
// InfMetric are invisible to Lookup, so Get must report them as absent too.
func TestGetHidesUnreachable(t *testing.T) {
	tb := &Table{}
	p := addr.MustPrefix(addr.V4(10, 0, 0, 0), 8)
	tb.Set(p, Route{Metric: InfMetric})
	if _, ok := tb.Get(p); ok {
		t.Error("Get returned an unreachable route as ok")
	}
	if tb.Len() != 1 {
		t.Error("unreachable entry should still occupy the table")
	}
	tb.Set(p, Route{Metric: 5})
	if r, ok := tb.Get(p); !ok || r.Metric != 5 {
		t.Errorf("Get after repair = %+v, %v", r, ok)
	}
}

// TestGenerationBumps proves every mutation path advances the generation,
// which is what internal/rpf relies on for staleness detection.
func TestGenerationBumps(t *testing.T) {
	tb := &Table{}
	p := addr.MustPrefix(addr.V4(10, 0, 0, 0), 8)
	g := tb.Gen()
	step := func(name string, f func()) {
		t.Helper()
		f()
		if tb.Gen() <= g {
			t.Errorf("%s did not bump generation", name)
		}
		g = tb.Gen()
	}
	step("Set", func() { tb.Set(p, Route{Metric: 1}) })
	step("Set overwrite", func() { tb.Set(p, Route{Metric: 2}) })
	step("NotifyChanged", func() { tb.NotifyChanged() })
	step("Replace", func() { tb.Replace(map[addr.Prefix]Route{p: {Metric: 3}}) })
	step("Delete", func() { tb.Delete(p) })
	// No-op delete must not advance: nothing changed, caches stay valid.
	tb.Delete(p)
	if tb.Gen() != g {
		t.Error("idempotent Delete bumped generation")
	}
	// Unchanged Replace likewise.
	tb.Replace(map[addr.Prefix]Route{})
	if tb.Gen() != g {
		t.Error("no-change Replace bumped generation")
	}
}

// TestWarmLookupAllocFree asserts the acceptance criterion: once the trie
// is built, lookups allocate nothing.
func TestWarmLookupAllocFree(t *testing.T) {
	tb := benchTable(256)
	tb.Lookup(addr.V4(10, 100, 7, 1)) // warm: triggers any rebuild
	if n := testing.AllocsPerRun(100, func() {
		tb.Lookup(addr.V4(10, 100, 7, 1))
		tb.Lookup(addr.V4(10, 200, 3, 2))
		tb.Lookup(addr.V4(99, 9, 9, 9))
	}); n != 0 {
		t.Errorf("warm Lookup allocates %.1f per run", n)
	}
}

// benchTable builds a table shaped like a scenario unicast table: n /24
// link prefixes under 10.100/10.200 plus a handful of aggregates.
func benchTable(n int) *Table {
	tb := &Table{}
	for i := 0; i < n; i++ {
		second := byte(100)
		if i%2 == 1 {
			second = 200
		}
		tb.Set(addr.MustPrefix(addr.V4(10, second, byte(i/2), 0), 24),
			Route{NextHop: addr.V4(10, second, byte(i/2), 2), Metric: int64(i + 1)})
	}
	tb.Set(addr.MustPrefix(addr.V4(10, 0, 0, 0), 8), Route{Metric: 1000})
	tb.Set(addr.MustPrefix(0, 0), Route{Metric: 5000})
	return tb
}

func benchmarkLookup(b *testing.B, fast bool, n int) {
	prev := fastpath.Set(fast)
	defer fastpath.Set(prev)
	tb := benchTable(n)
	// Probe the deep end of the scan order: 10.200.x sorts after 10.100.x
	// among the /24s, which is where scenario sources live.
	dsts := make([]addr.IP, 64)
	for i := range dsts {
		dsts[i] = addr.V4(10, 200, byte((n/2-1)-i%(n/2)), 1)
	}
	tb.Lookup(dsts[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(dsts[i%len(dsts)])
	}
}

func BenchmarkLPMTrie256(b *testing.B)   { benchmarkLookup(b, true, 256) }
func BenchmarkLPMLinear256(b *testing.B) { benchmarkLookup(b, false, 256) }
func BenchmarkLPMTrie32(b *testing.B)    { benchmarkLookup(b, true, 32) }
func BenchmarkLPMLinear32(b *testing.B)  { benchmarkLookup(b, false, 32) }
