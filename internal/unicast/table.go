// Package unicast provides the unicast routing substrate beneath the
// multicast protocols. The paper's third design requirement (§2, "Routing
// Protocol Independent") is that PIM consume unicast routing *tables*
// without caring how they were computed; this package expresses that as the
// Router interface and supplies three interchangeable implementations:
//
//   - Oracle: a static global-knowledge computation (instant convergence),
//     the default substrate for protocol experiments;
//   - DV: a RIP-like distance-vector protocol with split horizon and
//     poisoned reverse, running over simulated message exchange;
//   - LS: an OSPF-like link-state protocol flooding LSAs and running SPF.
//
// PIM runs identically over all three (asserted by integration tests),
// demonstrating the protocol-independence claim.
package unicast

import (
	"fmt"
	"sort"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// InfMetric marks unreachable routes.
const InfMetric = int64(1) << 40

// Route is one forwarding decision: the outgoing interface, the next-hop
// neighbor address (0 when the destination is directly connected), and the
// path metric.
type Route struct {
	Iface   *netsim.Iface
	NextHop addr.IP
	Metric  int64
}

// Router is the protocol-independent lookup surface the multicast protocols
// consume. Lookup performs a longest-prefix-match for dst; ok is false when
// no route exists. OnChange registers a callback fired whenever any route
// may have changed — PIM reacts per §3.8 by re-running its RPF checks.
type Router interface {
	Lookup(dst addr.IP) (Route, bool)
	OnChange(func())
}

// tableEntry pairs a prefix with its route.
type tableEntry struct {
	prefix addr.Prefix
	route  Route
}

// Table is a longest-prefix-match routing table. It is the concrete store
// shared by all three Router implementations.
type Table struct {
	entries   []tableEntry // sorted by descending prefix length, then address
	listeners []func()
}

// Set installs or replaces the route for a prefix.
func (t *Table) Set(p addr.Prefix, r Route) {
	for i := range t.entries {
		if t.entries[i].prefix == p {
			t.entries[i].route = r
			return
		}
	}
	t.entries = append(t.entries, tableEntry{prefix: p, route: r})
	sort.Slice(t.entries, func(i, j int) bool {
		if t.entries[i].prefix.Len != t.entries[j].prefix.Len {
			return t.entries[i].prefix.Len > t.entries[j].prefix.Len
		}
		return t.entries[i].prefix.Addr < t.entries[j].prefix.Addr
	})
}

// Delete removes the route for a prefix if present.
func (t *Table) Delete(p addr.Prefix) {
	for i := range t.entries {
		if t.entries[i].prefix == p {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return
		}
	}
}

// Get returns the exact-match route for a prefix.
func (t *Table) Get(p addr.Prefix) (Route, bool) {
	for i := range t.entries {
		if t.entries[i].prefix == p {
			return t.entries[i].route, true
		}
	}
	return Route{}, false
}

// Lookup performs longest-prefix matching.
func (t *Table) Lookup(dst addr.IP) (Route, bool) {
	for i := range t.entries {
		if t.entries[i].prefix.Contains(dst) && t.entries[i].route.Metric < InfMetric {
			return t.entries[i].route, true
		}
	}
	return Route{}, false
}

// Len returns the number of installed prefixes.
func (t *Table) Len() int { return len(t.entries) }

// Prefixes returns the installed prefixes, most-specific first.
func (t *Table) Prefixes() []addr.Prefix {
	out := make([]addr.Prefix, len(t.entries))
	for i, e := range t.entries {
		out[i] = e.prefix
	}
	return out
}

// OnChange registers a route-change listener.
func (t *Table) OnChange(fn func()) { t.listeners = append(t.listeners, fn) }

// NotifyChanged fires the registered listeners. The routing protocol
// implementations call this once per batch of changes.
func (t *Table) NotifyChanged() {
	for _, fn := range t.listeners {
		fn()
	}
}

// Replace swaps the whole table contents for the given entries (already
// validated) and reports whether anything changed. Used by Oracle and LS
// which recompute from scratch.
func (t *Table) Replace(entries map[addr.Prefix]Route) bool {
	if len(entries) == len(t.entries) {
		same := true
		for _, e := range t.entries {
			r, ok := entries[e.prefix]
			if !ok || r != e.route {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	t.entries = t.entries[:0]
	for p, r := range entries {
		t.entries = append(t.entries, tableEntry{prefix: p, route: r})
	}
	sort.Slice(t.entries, func(i, j int) bool {
		if t.entries[i].prefix.Len != t.entries[j].prefix.Len {
			return t.entries[i].prefix.Len > t.entries[j].prefix.Len
		}
		return t.entries[i].prefix.Addr < t.entries[j].prefix.Addr
	})
	return true
}

// String dumps the table for debugging.
func (t *Table) String() string {
	s := ""
	for _, e := range t.entries {
		s += fmt.Sprintf("%v via %v metric %d\n", e.prefix, e.route.NextHop, e.route.Metric)
	}
	return s
}

// LinkPrefix returns the conventional /24 subnet covering an interface
// address: every simulated link is numbered inside its own /24 (see
// internal/scenario), so an interface's connected prefix is derivable from
// its address alone.
func LinkPrefix(ip addr.IP) addr.Prefix { return addr.MustPrefix(ip, 24) }
