// Package unicast provides the unicast routing substrate beneath the
// multicast protocols. The paper's third design requirement (§2, "Routing
// Protocol Independent") is that PIM consume unicast routing *tables*
// without caring how they were computed; this package expresses that as the
// Router interface and supplies three interchangeable implementations:
//
//   - Oracle: a static global-knowledge computation (instant convergence),
//     the default substrate for protocol experiments;
//   - DV: a RIP-like distance-vector protocol with split horizon and
//     poisoned reverse, running over simulated message exchange;
//   - LS: an OSPF-like link-state protocol flooding LSAs and running SPF.
//
// PIM runs identically over all three (asserted by integration tests),
// demonstrating the protocol-independence claim.
package unicast

import (
	"fmt"
	"slices"
	"sort"

	"pim/internal/addr"
	"pim/internal/fastpath"
	"pim/internal/netsim"
)

// InfMetric marks unreachable routes.
const InfMetric = int64(1) << 40

// Route is one forwarding decision: the outgoing interface, the next-hop
// neighbor address (0 when the destination is directly connected), and the
// path metric.
type Route struct {
	Iface   *netsim.Iface
	NextHop addr.IP
	Metric  int64
}

// Router is the protocol-independent lookup surface the multicast protocols
// consume. Lookup performs a longest-prefix-match for dst; ok is false when
// no route exists. OnChange registers a callback fired whenever any route
// may have changed — PIM reacts per §3.8 by re-running its RPF checks. Gen
// returns a monotonically increasing generation counter bumped on every
// route mutation; cached derivations of the table (internal/rpf) revalidate
// with one integer compare instead of a fresh lookup.
type Router interface {
	Lookup(dst addr.IP) (Route, bool)
	OnChange(func())
	Gen() uint64
}

// tableEntry pairs a prefix with its route.
type tableEntry struct {
	prefix addr.Prefix
	route  Route
}

// entryLess orders entries by descending prefix length, then address — the
// scan order that makes the linear reference lookup a longest-prefix match.
func entryLess(a, b tableEntry) bool {
	if a.prefix.Len != b.prefix.Len {
		return a.prefix.Len > b.prefix.Len
	}
	return a.prefix.Addr < b.prefix.Addr
}

// Table is a longest-prefix-match routing table. It is the concrete store
// shared by all three Router implementations. The sorted entry slice is the
// authoritative store (and the reference lookup path); the multibit trie is
// the fast path derived from it (see trie.go).
type Table struct {
	entries   []tableEntry // sorted by descending prefix length, then address
	listeners []func()
	trie      lpmTrie
	gen       uint64
}

// find locates the entry with exactly prefix p via binary search, returning
// its index and whether it is present; absent, the index is the insertion
// point that keeps the slice sorted.
func (t *Table) find(p addr.Prefix) (int, bool) {
	probe := tableEntry{prefix: p}
	i := sort.Search(len(t.entries), func(i int) bool {
		return !entryLess(t.entries[i], probe)
	})
	return i, i < len(t.entries) && t.entries[i].prefix == p
}

// Set installs or replaces the route for a prefix, inserting in sorted
// position (the table stays sorted without re-sorting, so a convergence
// storm of n inserts costs O(n²) moves worst case instead of n full sorts).
func (t *Table) Set(p addr.Prefix, r Route) {
	t.gen++
	i, ok := t.find(p)
	if ok {
		t.entries[i].route = r
	} else {
		t.entries = slices.Insert(t.entries, i, tableEntry{prefix: p, route: r})
	}
	if !t.trie.dirty {
		if r.Metric < InfMetric {
			t.trie.insert(p, r)
		} else if ok {
			// A reachable route may have been overwritten by an
			// unreachable one: the expansion must be recomputed.
			t.trie.dirty = true
		}
	}
}

// Delete removes the route for a prefix if present.
func (t *Table) Delete(p addr.Prefix) {
	i, ok := t.find(p)
	if !ok {
		return
	}
	t.gen++
	t.entries = slices.Delete(t.entries, i, i+1)
	t.trie.dirty = true
}

// Get returns the exact-match route for a prefix. Unreachable routes
// (metric ≥ InfMetric) report ok=false, matching Lookup's view that they do
// not exist; the raw entry is still held for the routing protocols' own
// bookkeeping via Prefixes.
func (t *Table) Get(p addr.Prefix) (Route, bool) {
	if i, ok := t.find(p); ok && t.entries[i].route.Metric < InfMetric {
		return t.entries[i].route, true
	}
	return Route{}, false
}

// Lookup performs longest-prefix matching. The fast path answers from the
// multibit trie (allocation-free once warm); the reference path is the
// original linear scan, kept both as the differential-testing oracle and as
// the behaviour benchmarked against in BENCH_dataplane.json.
func (t *Table) Lookup(dst addr.IP) (Route, bool) {
	if !fastpath.Enabled() {
		return t.lookupLinear(dst)
	}
	if t.trie.dirty || t.trie.root == nil {
		t.trie.rebuild(t.entries)
	}
	return t.trie.lookup(dst)
}

// lookupLinear is the reference longest-prefix match: first containing
// prefix in (length desc, address asc) order whose route is reachable.
func (t *Table) lookupLinear(dst addr.IP) (Route, bool) {
	for i := range t.entries {
		if t.entries[i].prefix.Contains(dst) && t.entries[i].route.Metric < InfMetric {
			return t.entries[i].route, true
		}
	}
	return Route{}, false
}

// Len returns the number of installed prefixes.
func (t *Table) Len() int { return len(t.entries) }

// Prefixes returns the installed prefixes, most-specific first.
func (t *Table) Prefixes() []addr.Prefix {
	out := make([]addr.Prefix, len(t.entries))
	for i, e := range t.entries {
		out[i] = e.prefix
	}
	return out
}

// Gen returns the table's generation counter: it increases on every Set,
// Delete, Replace, and NotifyChanged, so any cached derivation carrying the
// generation it was computed at can detect staleness with one compare
// (§3.8: route changes must be reflected by the next RPF check).
func (t *Table) Gen() uint64 { return t.gen }

// OnChange registers a route-change listener.
func (t *Table) OnChange(fn func()) { t.listeners = append(t.listeners, fn) }

// NotifyChanged fires the registered listeners. The routing protocol
// implementations call this once per batch of changes.
func (t *Table) NotifyChanged() {
	t.gen++
	for _, fn := range t.listeners {
		fn()
	}
}

// Replace swaps the whole table contents for the given entries (already
// validated) and reports whether anything changed. Used by Oracle and LS
// which recompute from scratch.
func (t *Table) Replace(entries map[addr.Prefix]Route) bool {
	if len(entries) == len(t.entries) {
		same := true
		for _, e := range t.entries {
			r, ok := entries[e.prefix]
			if !ok || r != e.route {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	t.gen++
	t.entries = t.entries[:0]
	for p, r := range entries {
		t.entries = append(t.entries, tableEntry{prefix: p, route: r})
	}
	slices.SortFunc(t.entries, func(a, b tableEntry) int {
		if entryLess(a, b) {
			return -1
		}
		if entryLess(b, a) {
			return 1
		}
		return 0
	})
	t.trie.dirty = true
	return true
}

// String dumps the table for debugging.
func (t *Table) String() string {
	s := ""
	for _, e := range t.entries {
		s += fmt.Sprintf("%v via %v metric %d\n", e.prefix, e.route.NextHop, e.route.Metric)
	}
	return s
}

// LinkPrefix returns the conventional /24 subnet covering an interface
// address: every simulated link is numbered inside its own /24 (see
// internal/scenario), so an interface's connected prefix is derivable from
// its address alone.
func LinkPrefix(ip addr.IP) addr.Prefix { return addr.MustPrefix(ip, 24) }
