package unicast

import (
	"container/heap"
	"encoding/binary"
	"errors"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
)

// LS is an OSPF-like link-state unicast routing process: each router floods
// a sequence-numbered LSA describing its adjacencies and attached prefixes,
// maintains a database of everyone's LSAs, and runs SPF over the resulting
// graph. MOSPF extends exactly this machinery with membership LSAs
// (internal/mospf); the unicast part lives here so both MOSPF and PIM can
// share it.
type LS struct {
	Node *netsim.Node
	// RefreshPeriod re-originates our LSA; foreign LSAs age out after
	// 3×RefreshPeriod.
	RefreshPeriod netsim.Time

	table *Table
	id    addr.IP // router ID = primary interface address
	seq   uint32
	db    map[addr.IP]*lsaRecord
}

type lsaRecord struct {
	lsa      lsa
	received netsim.Time
}

// LSDefaultRefresh is the LSA refresh interval.
const LSDefaultRefresh = 30 * netsim.Second

// NewLS attaches a link-state routing process to a node.
func NewLS(nd *netsim.Node) *LS {
	return &LS{Node: nd, RefreshPeriod: LSDefaultRefresh, table: &Table{}, db: map[addr.IP]*lsaRecord{}}
}

// Table exposes the node's routing table (implements Router).
func (l *LS) Table() *Table { return l.table }

// Start begins LSA origination and flooding.
func (l *LS) Start() {
	l.id = l.Node.Addr()
	l.Node.Handle(packet.ProtoLSSim, netsim.HandlerFunc(l.handle))
	l.Node.OnLinkChange(func(*netsim.Iface) { l.originate() })
	sched := l.Node.Sched()
	var tick func()
	tick = func() {
		l.ageOut()
		l.originate()
		sched.After(l.RefreshPeriod, tick)
	}
	sched.After(0, tick)
}

// originate builds our LSA from live adjacencies and floods it.
func (l *LS) originate() {
	l.seq++
	a := lsa{Origin: l.id, Seq: l.seq}
	for _, ifc := range l.Node.Ifaces {
		if !ifc.Up() || ifc.Addr == 0 {
			continue
		}
		a.Prefixes = append(a.Prefixes, lsaPrefix{Prefix: LinkPrefix(ifc.Addr), Cost: 0})
		for _, peer := range ifc.Link.Ifaces {
			if peer == ifc || !peer.Up() {
				continue
			}
			a.Neighbors = append(a.Neighbors, lsaNeighbor{
				Router: peer.Node.Addr(),
				Cost:   int64(ifc.Link.Delay),
			})
		}
	}
	l.install(a)
	l.flood(a, nil)
}

func (l *LS) handle(in *netsim.Iface, pkt *packet.Packet) {
	var a lsa
	if err := a.unmarshal(pkt.Payload); err != nil {
		return
	}
	if a.Origin == l.id {
		return // our own LSA echoed back
	}
	cur, ok := l.db[a.Origin]
	if ok && !newerSeq(a.Seq, cur.lsa.Seq) {
		return // stale or duplicate: do not re-flood
	}
	l.install(a)
	l.flood(a, in)
}

// newerSeq compares wrapping sequence numbers.
func newerSeq(a, b uint32) bool { return int32(a-b) > 0 }

func (l *LS) install(a lsa) {
	l.db[a.Origin] = &lsaRecord{lsa: a, received: l.Node.Sched().Now()}
	l.spf()
}

func (l *LS) flood(a lsa, except *netsim.Iface) {
	payload := a.marshal()
	for _, ifc := range l.Node.Ifaces {
		if ifc == except || !ifc.Up() || ifc.Addr == 0 {
			continue
		}
		pkt := packet.New(ifc.Addr, addr.AllRouters, packet.ProtoLSSim, payload)
		pkt.TTL = 1
		l.Node.Send(ifc, pkt, 0)
	}
}

func (l *LS) ageOut() {
	now := l.Node.Sched().Now()
	changed := false
	for origin, rec := range l.db {
		if origin == l.id {
			continue
		}
		if now-rec.received > 3*l.RefreshPeriod {
			delete(l.db, origin)
			changed = true
		}
	}
	if changed {
		l.spf()
	}
}

// spf recomputes the routing table from the LSA database: Dijkstra over
// routers (an edge requires both endpoints to advertise each other —
// bidirectional check), then prefixes resolve through their advertising
// router.
func (l *LS) spf() {
	// advertises[a][b] == cost if a's LSA lists neighbor b.
	advertises := map[addr.IP]map[addr.IP]int64{}
	for origin, rec := range l.db {
		m := map[addr.IP]int64{}
		for _, nb := range rec.lsa.Neighbors {
			if c, ok := m[nb.Router]; !ok || nb.Cost < c {
				m[nb.Router] = nb.Cost
			}
		}
		advertises[origin] = m
	}
	dist := map[addr.IP]int64{l.id: 0}
	firstHop := map[addr.IP]addr.IP{} // router -> first-hop neighbor router
	done := map[addr.IP]bool{}
	h := &lsHeap{{router: l.id}}
	for h.Len() > 0 {
		it := heap.Pop(h).(lsItem)
		v := it.router
		if done[v] {
			continue
		}
		done[v] = true
		for nb, cost := range advertises[v] {
			back, ok := advertises[nb]
			if !ok {
				continue
			}
			if _, bidir := back[v]; !bidir {
				continue
			}
			nd := dist[v] + cost
			old, seen := dist[nb]
			if !seen || nd < old || (nd == old && v != l.id && firstHop[v] < firstHop[nb]) {
				dist[nb] = nd
				if v == l.id {
					firstHop[nb] = nb
				} else {
					firstHop[nb] = firstHop[v]
				}
				heap.Push(h, lsItem{router: nb, dist: nd})
			}
		}
	}
	// Resolve first-hop routers to local (iface, nexthop addr).
	adj := l.localAdjacency()
	entries := map[addr.Prefix]Route{}
	for origin, rec := range l.db {
		d, reach := dist[origin]
		for _, lp := range rec.lsa.Prefixes {
			var r Route
			if origin == l.id {
				var ifc *netsim.Iface
				for _, c := range l.Node.Ifaces {
					if c.Up() && c.Addr != 0 && lp.Prefix.Contains(c.Addr) {
						ifc = c
						break
					}
				}
				if ifc == nil {
					continue
				}
				r = Route{Iface: ifc, NextHop: 0, Metric: 0}
			} else {
				if !reach {
					continue
				}
				hop, ok := adj[firstHop[origin]]
				if !ok {
					continue
				}
				r = Route{Iface: hop.iface, NextHop: hop.addr, Metric: d + lp.Cost}
			}
			if cur, ok := entries[lp.Prefix]; !ok || r.Metric < cur.Metric {
				entries[lp.Prefix] = r
			}
		}
	}
	if l.table.Replace(entries) {
		l.table.NotifyChanged()
	}
}

type lsAdj struct {
	iface *netsim.Iface
	addr  addr.IP
}

// localAdjacency maps neighbor router IDs to the local interface and
// neighbor interface address reaching them, preferring the cheapest link.
func (l *LS) localAdjacency() map[addr.IP]lsAdj {
	out := map[addr.IP]lsAdj{}
	best := map[addr.IP]int64{}
	for _, ifc := range l.Node.Ifaces {
		if !ifc.Up() || ifc.Addr == 0 {
			continue
		}
		for _, peer := range ifc.Link.Ifaces {
			if peer == ifc || !peer.Up() {
				continue
			}
			id := peer.Node.Addr()
			c := int64(ifc.Link.Delay)
			if old, ok := best[id]; !ok || c < old {
				best[id] = c
				out[id] = lsAdj{iface: ifc, addr: peer.Addr}
			}
		}
	}
	return out
}

type lsItem struct {
	router addr.IP
	dist   int64
}

type lsHeap []lsItem

func (h lsHeap) Len() int { return len(h) }
func (h lsHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].router < h[j].router
}
func (h lsHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lsHeap) Push(x interface{}) { *h = append(*h, x.(lsItem)) }
func (h *lsHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// lsa is the wire link-state advertisement:
//
//	uint32 origin, uint32 seq,
//	uint16 #neighbors { uint32 router, uint32 cost },
//	uint16 #prefixes  { uint32 addr, uint8 len, uint32 cost }
type lsa struct {
	Origin    addr.IP
	Seq       uint32
	Neighbors []lsaNeighbor
	Prefixes  []lsaPrefix
}

type lsaNeighbor struct {
	Router addr.IP
	Cost   int64
}

type lsaPrefix struct {
	Prefix addr.Prefix
	Cost   int64
}

var errBadLSA = errors.New("unicast: malformed LSA")

func (a *lsa) marshal() []byte {
	b := make([]byte, 0, 12+8*len(a.Neighbors)+9*len(a.Prefixes))
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(a.Origin))
	binary.BigEndian.PutUint32(hdr[4:], a.Seq)
	binary.BigEndian.PutUint16(hdr[8:], uint16(len(a.Neighbors)))
	binary.BigEndian.PutUint16(hdr[10:], uint16(len(a.Prefixes)))
	b = append(b, hdr[:]...)
	for _, nb := range a.Neighbors {
		var e [8]byte
		binary.BigEndian.PutUint32(e[0:], uint32(nb.Router))
		binary.BigEndian.PutUint32(e[4:], clampCost(nb.Cost))
		b = append(b, e[:]...)
	}
	for _, p := range a.Prefixes {
		var e [9]byte
		binary.BigEndian.PutUint32(e[0:], uint32(p.Prefix.Addr))
		e[4] = byte(p.Prefix.Len)
		binary.BigEndian.PutUint32(e[5:], clampCost(p.Cost))
		b = append(b, e[:]...)
	}
	return b
}

func clampCost(c int64) uint32 {
	if c < 0 {
		return 0
	}
	if c > 0xFFFFFFFE {
		return 0xFFFFFFFE
	}
	return uint32(c)
}

func (a *lsa) unmarshal(b []byte) error {
	if len(b) < 12 {
		return errBadLSA
	}
	a.Origin = addr.IP(binary.BigEndian.Uint32(b[0:]))
	a.Seq = binary.BigEndian.Uint32(b[4:])
	nn := int(binary.BigEndian.Uint16(b[8:]))
	np := int(binary.BigEndian.Uint16(b[10:]))
	b = b[12:]
	if len(b) < 8*nn+9*np {
		return errBadLSA
	}
	a.Neighbors = make([]lsaNeighbor, nn)
	for i := 0; i < nn; i++ {
		a.Neighbors[i] = lsaNeighbor{
			Router: addr.IP(binary.BigEndian.Uint32(b[0:])),
			Cost:   int64(binary.BigEndian.Uint32(b[4:])),
		}
		b = b[8:]
	}
	a.Prefixes = make([]lsaPrefix, np)
	for i := 0; i < np; i++ {
		p, err := addr.NewPrefix(addr.IP(binary.BigEndian.Uint32(b[0:])), int(b[4]))
		if err != nil {
			return errBadLSA
		}
		a.Prefixes[i] = lsaPrefix{Prefix: p, Cost: int64(binary.BigEndian.Uint32(b[5:]))}
		b = b[9:]
	}
	return nil
}
