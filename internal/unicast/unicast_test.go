package unicast

import (
	"testing"
	"testing/quick"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
)

func TestTableLongestPrefixMatch(t *testing.T) {
	tb := &Table{}
	r8 := Route{NextHop: addr.V4(1, 0, 0, 1), Metric: 8}
	r16 := Route{NextHop: addr.V4(1, 0, 0, 2), Metric: 16}
	r24 := Route{NextHop: addr.V4(1, 0, 0, 3), Metric: 24}
	tb.Set(addr.MustPrefix(addr.V4(10, 0, 0, 0), 8), r8)
	tb.Set(addr.MustPrefix(addr.V4(10, 1, 0, 0), 16), r16)
	tb.Set(addr.MustPrefix(addr.V4(10, 1, 2, 0), 24), r24)
	for _, tc := range []struct {
		dst  addr.IP
		want Route
		ok   bool
	}{
		{addr.V4(10, 1, 2, 3), r24, true},
		{addr.V4(10, 1, 9, 9), r16, true},
		{addr.V4(10, 7, 7, 7), r8, true},
		{addr.V4(11, 0, 0, 1), Route{}, false},
	} {
		got, ok := tb.Lookup(tc.dst)
		if ok != tc.ok || got != tc.want {
			t.Errorf("Lookup(%v) = %+v, %v", tc.dst, got, ok)
		}
	}
}

func TestTableSetReplacesAndDelete(t *testing.T) {
	tb := &Table{}
	p := addr.MustPrefix(addr.V4(10, 0, 0, 0), 8)
	tb.Set(p, Route{Metric: 5})
	tb.Set(p, Route{Metric: 7})
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if r, _ := tb.Get(p); r.Metric != 7 {
		t.Errorf("Metric = %d", r.Metric)
	}
	tb.Delete(p)
	if tb.Len() != 0 {
		t.Error("Delete failed")
	}
	tb.Delete(p) // idempotent
}

func TestTableInfMetricHidden(t *testing.T) {
	tb := &Table{}
	tb.Set(addr.MustPrefix(addr.V4(10, 0, 0, 0), 8), Route{Metric: InfMetric})
	if _, ok := tb.Lookup(addr.V4(10, 1, 1, 1)); ok {
		t.Error("unreachable route returned by Lookup")
	}
}

func TestTableNotify(t *testing.T) {
	tb := &Table{}
	n := 0
	tb.OnChange(func() { n++ })
	tb.NotifyChanged()
	tb.NotifyChanged()
	if n != 2 {
		t.Errorf("notifications = %d", n)
	}
}

func TestTableReplaceDetectsNoChange(t *testing.T) {
	tb := &Table{}
	p := addr.MustPrefix(addr.V4(10, 0, 0, 0), 8)
	m := map[addr.Prefix]Route{p: {Metric: 3}}
	if !tb.Replace(m) {
		t.Error("first Replace should report change")
	}
	if tb.Replace(m) {
		t.Error("identical Replace should report no change")
	}
	m[p] = Route{Metric: 4}
	if !tb.Replace(m) {
		t.Error("modified Replace should report change")
	}
}

// buildLine wires n routers in a line: r0 - r1 - ... - r(n-1). Link i joins
// ri and ri+1 with addresses 10.200.i.{1,2} and the given delay.
func buildLine(n int, delay netsim.Time) (*netsim.Network, []*netsim.Node) {
	net := netsim.NewNetwork()
	nodes := make([]*netsim.Node, n)
	for i := range nodes {
		nodes[i] = net.AddNode("r" + string(rune('0'+i)))
	}
	for i := 0; i < n-1; i++ {
		a := net.AddIface(nodes[i], addr.V4(10, 200, byte(i), 1))
		b := net.AddIface(nodes[i+1], addr.V4(10, 200, byte(i), 2))
		net.Connect(a, b, delay)
	}
	return net, nodes
}

func TestOracleLine(t *testing.T) {
	net, nodes := buildLine(4, 2*netsim.Millisecond)
	o := NewOracle(net)
	r0 := o.RouterFor(nodes[0])
	// r0 to r3's far interface address.
	rt, ok := r0.Lookup(addr.V4(10, 200, 2, 2))
	if !ok {
		t.Fatal("no route")
	}
	if rt.NextHop != addr.V4(10, 200, 0, 2) {
		t.Errorf("NextHop = %v", rt.NextHop)
	}
	if rt.Iface != nodes[0].Ifaces[0] {
		t.Errorf("Iface = %v", rt.Iface)
	}
	if rt.Metric != int64(2*2*netsim.Millisecond) {
		t.Errorf("Metric = %d", rt.Metric)
	}
	// Connected prefix: nexthop 0.
	rt, ok = r0.Lookup(addr.V4(10, 200, 0, 2))
	if !ok || rt.NextHop != 0 || rt.Metric != 0 {
		t.Errorf("connected route = %+v, %v", rt, ok)
	}
}

func TestOracleReactsToLinkFailure(t *testing.T) {
	// Square: r0-r1-r3 and r0-r2-r3, r0-r1 cheap, r0-r2 expensive.
	net := netsim.NewNetwork()
	var nd [4]*netsim.Node
	for i := range nd {
		nd[i] = net.AddNode("r")
	}
	mk := func(i, j, linkNo int, delay netsim.Time) *netsim.Link {
		a := net.AddIface(nd[i], addr.V4(10, 200, byte(linkNo), 1))
		b := net.AddIface(nd[j], addr.V4(10, 200, byte(linkNo), 2))
		return net.Connect(a, b, delay)
	}
	l01 := mk(0, 1, 0, 1*netsim.Millisecond)
	mk(1, 3, 1, 1*netsim.Millisecond)
	mk(0, 2, 2, 10*netsim.Millisecond)
	mk(2, 3, 3, 10*netsim.Millisecond)
	o := NewOracle(net)
	changed := 0
	tb := o.RouterFor(nd[0])
	tb.OnChange(func() { changed++ })
	dst := addr.V4(10, 200, 1, 2) // r3 via r1 normally
	rt, ok := tb.Lookup(dst)
	if !ok || rt.NextHop != addr.V4(10, 200, 0, 2) {
		t.Fatalf("initial route %+v %v", rt, ok)
	}
	net.SetLinkUp(l01, false)
	rt, ok = tb.Lookup(dst)
	if !ok {
		t.Fatal("no route after failure")
	}
	if rt.NextHop != addr.V4(10, 200, 2, 2) {
		t.Errorf("failover NextHop = %v", rt.NextHop)
	}
	if changed == 0 {
		t.Error("no change notification")
	}
}

func TestOracleLANRouting(t *testing.T) {
	// Three routers on one LAN; traffic between their stub interfaces
	// crosses the LAN directly.
	net := netsim.NewNetwork()
	var nodes []*netsim.Node
	var lanIfaces []*netsim.Iface
	for i := 0; i < 3; i++ {
		nd := net.AddNode("r")
		lanIfaces = append(lanIfaces, net.AddIface(nd, addr.V4(10, 1, 0, byte(i+1))))
		net.AddIface(nd, addr.V4(10, 100, byte(i), 1)) // stub
		nodes = append(nodes, nd)
	}
	net.ConnectLAN(netsim.Millisecond, lanIfaces...)
	// Stub interfaces need links to be considered up.
	for i, nd := range nodes {
		peer := net.AddNode("h")
		pif := net.AddIface(peer, addr.V4(10, 100, byte(i), 2))
		net.Connect(nd.Ifaces[1], pif, netsim.Millisecond)
	}
	o := NewOracle(net)
	rt, ok := o.RouterFor(nodes[0]).Lookup(addr.V4(10, 100, 2, 1))
	if !ok {
		t.Fatal("no route")
	}
	if rt.NextHop != addr.V4(10, 1, 0, 3) {
		t.Errorf("NextHop = %v, want LAN address of r2", rt.NextHop)
	}
	if rt.Iface != nodes[0].Ifaces[0] {
		t.Error("should route out the LAN interface")
	}
}

func runDVLine(t *testing.T, n int) (*netsim.Network, []*netsim.Node, []*DV) {
	t.Helper()
	net, nodes := buildLine(n, netsim.Millisecond)
	dvs := make([]*DV, n)
	for i, nd := range nodes {
		dvs[i] = NewDV(nd)
		dvs[i].Start()
	}
	net.Sched.RunUntil(3 * DVDefaultPeriod)
	return net, nodes, dvs
}

func TestDVConvergesToShortestPaths(t *testing.T) {
	net, nodes, dvs := runDVLine(t, 5)
	o := NewOracle(net)
	for i, dv := range dvs {
		want := o.tables[nodes[i]]
		for _, p := range want.Prefixes() {
			wr, _ := want.Get(p)
			gr, ok := dv.Table().Lookup(p.Addr)
			if !ok {
				t.Fatalf("r%d missing route to %v", i, p)
			}
			if gr.NextHop != wr.NextHop || gr.Iface != wr.Iface {
				t.Errorf("r%d route to %v: got via %v/%v want via %v/%v",
					i, p, gr.NextHop, gr.Iface, wr.NextHop, wr.Iface)
			}
		}
	}
}

func TestDVWithdrawsOnLinkFailure(t *testing.T) {
	net, _, dvs := runDVLine(t, 4)
	dst := addr.V4(10, 200, 2, 2) // r3 side of last link
	if _, ok := dvs[0].Table().Lookup(dst); !ok {
		t.Fatal("expected initial route")
	}
	net.SetLinkUp(net.Links[2], false)
	// After the hold time the route must be gone at r0.
	net.Sched.RunUntil(net.Sched.Now() + 4*DVDefaultPeriod)
	if _, ok := dvs[0].Table().Lookup(dst); ok {
		t.Error("route to severed prefix survived")
	}
}

func TestDVRecoversAfterLinkRestore(t *testing.T) {
	net, _, dvs := runDVLine(t, 4)
	dst := addr.V4(10, 200, 2, 2)
	net.SetLinkUp(net.Links[2], false)
	net.Sched.RunUntil(net.Sched.Now() + 4*DVDefaultPeriod)
	net.SetLinkUp(net.Links[2], true)
	net.Sched.RunUntil(net.Sched.Now() + 3*DVDefaultPeriod)
	if _, ok := dvs[0].Table().Lookup(dst); !ok {
		t.Error("route did not come back after link restore")
	}
}

func runLSLine(t *testing.T, n int) (*netsim.Network, []*netsim.Node, []*LS) {
	t.Helper()
	net, nodes := buildLine(n, netsim.Millisecond)
	lss := make([]*LS, n)
	for i, nd := range nodes {
		lss[i] = NewLS(nd)
		lss[i].Start()
	}
	net.Sched.RunUntil(2 * LSDefaultRefresh)
	return net, nodes, lss
}

func TestLSConvergesToShortestPaths(t *testing.T) {
	net, nodes, lss := runLSLine(t, 5)
	o := NewOracle(net)
	for i, ls := range lss {
		want := o.tables[nodes[i]]
		for _, p := range want.Prefixes() {
			wr, _ := want.Get(p)
			gr, ok := ls.Table().Lookup(p.Addr)
			if !ok {
				t.Fatalf("r%d missing route to %v", i, p)
			}
			if gr.NextHop != wr.NextHop || gr.Iface != wr.Iface {
				t.Errorf("r%d route to %v: got via %v want via %v", i, p, gr.NextHop, wr.NextHop)
			}
		}
	}
}

func TestLSReroutesAroundFailure(t *testing.T) {
	// Ring of 4: r0-r1-r2-r3-r0. Cut r0-r1; r0 must reach r1's prefixes the
	// long way.
	net := netsim.NewNetwork()
	var nodes [4]*netsim.Node
	for i := range nodes {
		nodes[i] = net.AddNode("r")
	}
	links := make([]*netsim.Link, 4)
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		a := net.AddIface(nodes[i], addr.V4(10, 200, byte(i), 1))
		b := net.AddIface(nodes[j], addr.V4(10, 200, byte(i), 2))
		links[i] = net.Connect(a, b, netsim.Millisecond)
	}
	var lss [4]*LS
	for i, nd := range nodes {
		lss[i] = NewLS(nd)
		lss[i].Start()
	}
	net.Sched.RunUntil(2 * LSDefaultRefresh)
	dst := addr.V4(10, 200, 1, 1) // r1's interface on link1
	rt, ok := lss[0].Table().Lookup(dst)
	if !ok || rt.NextHop != addr.V4(10, 200, 0, 2) {
		t.Fatalf("initial route %+v %v", rt, ok)
	}
	net.SetLinkUp(links[0], false)
	net.Sched.RunUntil(net.Sched.Now() + 2*LSDefaultRefresh)
	rt, ok = lss[0].Table().Lookup(dst)
	if !ok {
		t.Fatal("no route after cut")
	}
	if rt.NextHop != addr.V4(10, 200, 3, 1) {
		t.Errorf("reroute NextHop = %v, want via r3", rt.NextHop)
	}
}

func TestDVMessageRoundTrip(t *testing.T) {
	f := func(addrs []uint32, lens []uint8, metrics []uint32) bool {
		n := len(addrs)
		if len(lens) < n {
			n = len(lens)
		}
		if len(metrics) < n {
			n = len(metrics)
		}
		var m dvMessage
		for i := 0; i < n; i++ {
			metric := int64(metrics[i] % dvInfWire)
			m.Entries = append(m.Entries, dvEntry{
				Prefix: addr.MustPrefix(addr.IP(addrs[i]), int(lens[i]%33)),
				Metric: metric,
			})
		}
		var got dvMessage
		if err := got.unmarshal(m.marshal()); err != nil {
			return false
		}
		if len(got.Entries) != len(m.Entries) {
			return false
		}
		for i := range got.Entries {
			if got.Entries[i] != m.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDVMessageInfinityEncoding(t *testing.T) {
	m := dvMessage{Entries: []dvEntry{{Prefix: addr.MustPrefix(addr.V4(10, 0, 0, 0), 8), Metric: InfMetric}}}
	var got dvMessage
	if err := got.unmarshal(m.marshal()); err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].Metric != InfMetric {
		t.Errorf("metric = %d, want InfMetric", got.Entries[0].Metric)
	}
}

func TestDVMessageMalformed(t *testing.T) {
	var m dvMessage
	for _, b := range [][]byte{{}, {0}, {0, 5}, {0, 1, 1, 2, 3}} {
		if err := m.unmarshal(b); err == nil {
			t.Errorf("unmarshal(%v) succeeded", b)
		}
	}
	// Prefix length 33 invalid.
	good := dvMessage{Entries: []dvEntry{{Prefix: addr.MustPrefix(0, 0), Metric: 1}}}
	raw := good.marshal()
	raw[2+4] = 33
	if err := m.unmarshal(raw); err == nil {
		t.Error("bad prefix length accepted")
	}
}

func TestLSARoundTrip(t *testing.T) {
	a := lsa{
		Origin: addr.V4(10, 0, 0, 1),
		Seq:    77,
		Neighbors: []lsaNeighbor{
			{Router: addr.V4(10, 0, 0, 2), Cost: 5},
			{Router: addr.V4(10, 0, 0, 3), Cost: 9},
		},
		Prefixes: []lsaPrefix{
			{Prefix: addr.MustPrefix(addr.V4(10, 200, 0, 0), 24), Cost: 0},
		},
	}
	var got lsa
	if err := got.unmarshal(a.marshal()); err != nil {
		t.Fatal(err)
	}
	if got.Origin != a.Origin || got.Seq != a.Seq ||
		len(got.Neighbors) != 2 || len(got.Prefixes) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Neighbors[1] != a.Neighbors[1] || got.Prefixes[0] != a.Prefixes[0] {
		t.Fatal("entry mismatch")
	}
}

func TestLSAMalformed(t *testing.T) {
	var a lsa
	for _, b := range [][]byte{{}, make([]byte, 11), {0, 0, 0, 1, 0, 0, 0, 1, 0, 9, 0, 0}} {
		if err := a.unmarshal(b); err == nil {
			t.Errorf("unmarshal(len %d) succeeded", len(b))
		}
	}
}

func TestNewerSeq(t *testing.T) {
	if !newerSeq(2, 1) || newerSeq(1, 2) || newerSeq(5, 5) {
		t.Error("basic comparisons wrong")
	}
	if !newerSeq(1, 0xFFFFFFFF) { // wraparound
		t.Error("wraparound not handled")
	}
}

func BenchmarkOracleRecompute50(b *testing.B) {
	net, _ := buildLine(50, netsim.Millisecond)
	o := NewOracle(net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Recompute()
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tb := &Table{}
	for i := 0; i < 100; i++ {
		tb.Set(addr.MustPrefix(addr.V4(10, byte(i), 0, 0), 16), Route{Metric: int64(i)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Lookup(addr.V4(10, byte(i%100), 3, 4))
	}
}

// TestLSAgeOutOnSilence: when a router's LSAs stop arriving (all its
// control messages lost), peers age its LSAs out and drop routes through
// and to it.
func TestLSAgeOut(t *testing.T) {
	net, nodes, lss := runLSLine(t, 3)
	dst := addr.V4(10, 200, 1, 2) // r2's prefix side
	if _, ok := lss[0].Table().Lookup(dst); !ok {
		t.Fatal("no initial route")
	}
	// Silence r1 and r2: drop every link-state message they originate.
	silenced := map[*netsim.Node]bool{nodes[1]: true, nodes[2]: true}
	net.Loss = func(from, to *netsim.Iface, pkt *packet.Packet) bool {
		return pkt.Protocol == packet.ProtoLSSim && silenced[from.Node]
	}
	net.Sched.RunUntil(net.Sched.Now() + 4*LSDefaultRefresh)
	if _, ok := lss[0].Table().Lookup(dst); ok {
		t.Error("route survived LSA age-out")
	}
	// Restore: routes come back via fresh LSAs.
	net.Loss = nil
	net.Sched.RunUntil(net.Sched.Now() + 2*LSDefaultRefresh)
	if _, ok := lss[0].Table().Lookup(dst); !ok {
		t.Error("route did not return after silence ended")
	}
}

// TestDVBoundedConvergenceAfterPartition: split-horizon with poisoned
// reverse prevents a two-node count-to-infinity loop when the network
// partitions.
func TestDVNoRouteLoopAfterPartition(t *testing.T) {
	net, _, dvs := runDVLine(t, 3)
	// Cut r1-r2: r0 and r1 lose everything behind the cut.
	net.SetLinkUp(net.Links[1], false)
	net.Sched.RunUntil(net.Sched.Now() + 4*DVDefaultPeriod)
	dst := addr.V4(10, 200, 1, 2)
	if _, ok := dvs[0].Table().Lookup(dst); ok {
		t.Error("r0 kept a route to the partitioned prefix")
	}
	if _, ok := dvs[1].Table().Lookup(dst); ok {
		t.Error("r1 kept a route to the partitioned prefix (count-to-infinity?)")
	}
}
