package unicast

import (
	"container/heap"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// Oracle computes every node's routing table from global topology knowledge,
// recomputing instantly when links change. It is the "ideal converged
// unicast routing" substrate: experiments that are about multicast behaviour
// rather than unicast convergence run over it.
type Oracle struct {
	net    *netsim.Network
	tables map[*netsim.Node]*Table
}

// NewOracle builds tables for the current topology and subscribes to link
// changes on every node so tables stay current.
func NewOracle(net *netsim.Network) *Oracle {
	o := &Oracle{net: net, tables: map[*netsim.Node]*Table{}}
	for _, nd := range net.Nodes {
		o.tables[nd] = &Table{}
		nd.OnLinkChange(func(*netsim.Iface) { o.Recompute() })
	}
	o.Recompute()
	return o
}

// RouterFor returns the node's Router view.
func (o *Oracle) RouterFor(nd *netsim.Node) Router { return o.tables[nd] }

// oraItem is a Dijkstra work item over netsim nodes.
type oraItem struct {
	node *netsim.Node
	dist int64
}

type oraHeap []oraItem

func (h oraHeap) Len() int { return len(h) }
func (h oraHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node.ID < h[j].node.ID
}
func (h oraHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oraHeap) Push(x interface{}) { *h = append(*h, x.(oraItem)) }
func (h *oraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Recompute rebuilds every node's table from the live topology. Each link's
// cost is its delay; LANs behave as a clique at the LAN's delay. Destination
// prefixes are the /24 subnets of every up interface (see LinkPrefix).
func (o *Oracle) Recompute() {
	// Collect destination prefixes and which nodes own/abut them.
	prefixes := map[addr.Prefix][]*netsim.Node{}
	for _, nd := range o.net.Nodes {
		for _, ifc := range nd.Ifaces {
			if ifc.Addr == 0 || !ifc.Up() {
				continue
			}
			p := LinkPrefix(ifc.Addr)
			prefixes[p] = append(prefixes[p], nd)
		}
	}
	for _, src := range o.net.Nodes {
		dist, firstIface, firstHop := o.dijkstra(src)
		entries := map[addr.Prefix]Route{}
		for p, owners := range prefixes {
			best := Route{Metric: InfMetric}
			for _, own := range owners {
				d, ok := dist[own]
				if !ok {
					continue
				}
				var r Route
				if own == src {
					// Directly connected: route out the local interface in
					// the prefix.
					var ifc *netsim.Iface
					for _, c := range src.Ifaces {
						if c.Up() && c.Addr != 0 && p.Contains(c.Addr) {
							ifc = c
							break
						}
					}
					if ifc == nil {
						continue
					}
					r = Route{Iface: ifc, NextHop: 0, Metric: 0}
				} else {
					r = Route{Iface: firstIface[own], NextHop: firstHop[own], Metric: d}
				}
				if r.Metric < best.Metric ||
					(r.Metric == best.Metric && r.NextHop < best.NextHop) {
					best = r
				}
			}
			if best.Metric < InfMetric {
				entries[p] = best
			}
		}
		if o.tables[src].Replace(entries) {
			o.tables[src].NotifyChanged()
		}
	}
}

// dijkstra runs shortest paths from src over live links, returning distance,
// plus the src-local first-hop interface and first-hop neighbor address used
// to reach each node.
func (o *Oracle) dijkstra(src *netsim.Node) (map[*netsim.Node]int64, map[*netsim.Node]*netsim.Iface, map[*netsim.Node]addr.IP) {
	dist := map[*netsim.Node]int64{src: 0}
	firstIface := map[*netsim.Node]*netsim.Iface{}
	firstHop := map[*netsim.Node]addr.IP{}
	done := map[*netsim.Node]bool{}
	h := &oraHeap{{node: src}}
	for h.Len() > 0 {
		it := heap.Pop(h).(oraItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, ifc := range v.Ifaces {
			if !ifc.Up() {
				continue
			}
			for _, peer := range ifc.Link.Ifaces {
				if peer == ifc || !peer.Up() {
					continue
				}
				u := peer.Node
				nd := dist[v] + int64(ifc.Link.Delay)
				old, seen := dist[u]
				better := !seen || nd < old
				if !better && nd == old && v != src {
					continue // keep first discovered (deterministic via heap order)
				}
				if better {
					dist[u] = nd
					if v == src {
						firstIface[u] = ifc
						firstHop[u] = peer.Addr
					} else {
						firstIface[u] = firstIface[v]
						firstHop[u] = firstHop[v]
					}
					heap.Push(h, oraItem{node: u, dist: nd})
				} else if nd == old && v == src {
					// Tie between direct neighbors: deterministic pick by
					// lower neighbor address.
					if peer.Addr < firstHop[u] {
						firstIface[u] = ifc
						firstHop[u] = peer.Addr
					}
				}
			}
		}
	}
	return dist, firstIface, firstHop
}
