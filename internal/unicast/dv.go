package unicast

import (
	"encoding/binary"
	"errors"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
)

// DV is a RIP-like distance-vector unicast routing process for one router:
// periodic full-table advertisements to each link, split horizon with
// poisoned reverse, route hold timers, and triggered updates on link
// failure. DVMRP (RFC 1075) extends exactly this kind of protocol; the paper
// contrasts PIM's independence from it.
type DV struct {
	Node *netsim.Node
	// Period is the advertisement interval; routes expire after 3×Period.
	Period netsim.Time

	table   *Table
	learned map[addr.Prefix]*dvRoute
	// poisoned holds withdrawn prefixes still advertised as unreachable
	// (RIP garbage-collection state) until the recorded deadline, so bad
	// news propagates in one advertisement instead of by timeout.
	poisoned map[addr.Prefix]netsim.Time
}

type dvRoute struct {
	route     Route
	lastHeard netsim.Time
}

// DVDefaultPeriod mirrors RIP's 30-second advertisement interval.
const DVDefaultPeriod = 30 * netsim.Second

// NewDV attaches a distance-vector routing process to a node. Call Start
// after all interfaces are wired.
func NewDV(nd *netsim.Node) *DV {
	return &DV{Node: nd, Period: DVDefaultPeriod, table: &Table{},
		learned: map[addr.Prefix]*dvRoute{}, poisoned: map[addr.Prefix]netsim.Time{}}
}

// Table exposes the node's routing table (implements Router).
func (d *DV) Table() *Table { return d.table }

// Start installs connected routes, registers the message handler, and
// begins periodic advertisement.
func (d *DV) Start() {
	d.installConnected()
	d.Node.Handle(packet.ProtoRIPSim, netsim.HandlerFunc(d.handle))
	d.Node.OnLinkChange(func(ifc *netsim.Iface) { d.linkChanged(ifc) })
	sched := d.Node.Sched()
	var tick func()
	tick = func() {
		d.expire()
		d.advertise()
		sched.After(d.Period, tick)
	}
	// First advertisement goes out immediately so cold-start convergence
	// takes diameter×delay, not diameter×Period.
	sched.After(0, tick)
}

func (d *DV) installConnected() {
	changed := false
	for _, ifc := range d.Node.Ifaces {
		if ifc.Addr == 0 {
			continue
		}
		p := LinkPrefix(ifc.Addr)
		if ifc.Up() {
			d.table.Set(p, Route{Iface: ifc, NextHop: 0, Metric: 0})
			changed = true
		}
	}
	if changed {
		d.table.NotifyChanged()
	}
}

// advertise sends the full table out every up interface, poisoning routes
// learned over that same interface (split horizon with poisoned reverse).
func (d *DV) advertise() {
	for _, ifc := range d.Node.Ifaces {
		if !ifc.Up() || ifc.Addr == 0 {
			continue
		}
		var msg dvMessage
		for _, p := range d.table.Prefixes() {
			r, _ := d.table.Get(p)
			metric := r.Metric
			if r.Iface == ifc && r.NextHop != 0 {
				metric = InfMetric // poisoned reverse
			}
			msg.Entries = append(msg.Entries, dvEntry{Prefix: p, Metric: metric})
		}
		for p := range d.poisoned {
			if _, ok := d.table.Get(p); !ok {
				msg.Entries = append(msg.Entries, dvEntry{Prefix: p, Metric: InfMetric})
			}
		}
		pkt := packet.New(ifc.Addr, addr.AllRouters, packet.ProtoRIPSim, msg.marshal())
		pkt.TTL = 1
		d.Node.Send(ifc, pkt, 0)
	}
}

func (d *DV) handle(in *netsim.Iface, pkt *packet.Packet) {
	var msg dvMessage
	if err := msg.unmarshal(pkt.Payload); err != nil {
		return
	}
	now := d.Node.Sched().Now()
	cost := int64(in.Link.Delay)
	changed := false
	for _, e := range msg.Entries {
		metric := e.Metric
		if metric < InfMetric {
			metric += cost
			if metric > InfMetric {
				metric = InfMetric
			}
		}
		// Never accept a route to one of our own connected prefixes.
		if r, ok := d.table.Get(e.Prefix); ok && r.NextHop == 0 && r.Metric == 0 {
			continue
		}
		cur, have := d.learned[e.Prefix]
		switch {
		case have && cur.route.NextHop == pkt.Src:
			// Same next hop: always believe, including worse news.
			cur.lastHeard = now
			if metric >= InfMetric {
				delete(d.learned, e.Prefix)
				d.table.Delete(e.Prefix)
				d.poison(e.Prefix)
				changed = true
			} else if cur.route.Metric != metric || cur.route.Iface != in {
				cur.route.Metric = metric
				cur.route.Iface = in
				d.table.Set(e.Prefix, cur.route)
				changed = true
			}
		case metric >= InfMetric:
			// Poison for a route we use via someone else: ignore.
		case !have || metric < cur.route.Metric:
			nr := &dvRoute{route: Route{Iface: in, NextHop: pkt.Src, Metric: metric}, lastHeard: now}
			d.learned[e.Prefix] = nr
			d.table.Set(e.Prefix, nr.route)
			delete(d.poisoned, e.Prefix)
			changed = true
		}
	}
	if changed {
		d.table.NotifyChanged()
		d.advertise() // triggered update
	}
}

// poison schedules a prefix for unreachable advertisement until the garbage
// collection deadline.
func (d *DV) poison(p addr.Prefix) {
	d.poisoned[p] = d.Node.Sched().Now() + 3*d.Period
}

// expire drops learned routes not refreshed within 3×Period.
func (d *DV) expire() {
	now := d.Node.Sched().Now()
	changed := false
	for p, r := range d.learned {
		if now-r.lastHeard > 3*d.Period {
			delete(d.learned, p)
			d.table.Delete(p)
			d.poison(p)
			changed = true
		}
	}
	for p, deadline := range d.poisoned {
		if now > deadline {
			delete(d.poisoned, p)
		}
	}
	if changed {
		d.table.NotifyChanged()
	}
}

// linkChanged invalidates routes using a changed interface and fires a
// triggered update.
func (d *DV) linkChanged(ifc *netsim.Iface) {
	changed := false
	if !ifc.Up() {
		for p, r := range d.learned {
			if r.route.Iface == ifc {
				delete(d.learned, p)
				d.table.Delete(p)
				d.poison(p)
				changed = true
			}
		}
		p := LinkPrefix(ifc.Addr)
		if r, ok := d.table.Get(p); ok && r.NextHop == 0 {
			d.table.Delete(p)
			d.poison(p)
			changed = true
		}
	} else {
		d.installConnected()
		changed = true
	}
	if changed {
		d.table.NotifyChanged()
		d.advertise() // triggered update
	}
}

// dvMessage is the wire form of a distance-vector advertisement:
//
//	uint16 count, then per entry: uint32 prefix, uint8 len, uint32 metric
//
// with metric 0xFFFFFFFF meaning unreachable.
type dvMessage struct {
	Entries []dvEntry
}

type dvEntry struct {
	Prefix addr.Prefix
	Metric int64
}

const dvInfWire = 0xFFFFFFFF

var errBadDV = errors.New("unicast: malformed DV message")

func (m *dvMessage) marshal() []byte {
	b := make([]byte, 2, 2+9*len(m.Entries))
	binary.BigEndian.PutUint16(b, uint16(len(m.Entries)))
	for _, e := range m.Entries {
		var ent [9]byte
		binary.BigEndian.PutUint32(ent[0:], uint32(e.Prefix.Addr))
		ent[4] = byte(e.Prefix.Len)
		w := uint32(dvInfWire)
		if e.Metric < InfMetric {
			if e.Metric > dvInfWire-1 {
				w = dvInfWire - 1
			} else {
				w = uint32(e.Metric)
			}
		}
		binary.BigEndian.PutUint32(ent[5:], w)
		b = append(b, ent[:]...)
	}
	return b
}

func (m *dvMessage) unmarshal(b []byte) error {
	if len(b) < 2 {
		return errBadDV
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < 9*n {
		return errBadDV
	}
	m.Entries = make([]dvEntry, n)
	for i := 0; i < n; i++ {
		ip := addr.IP(binary.BigEndian.Uint32(b))
		l := int(b[4])
		if l > 32 {
			return errBadDV
		}
		w := binary.BigEndian.Uint32(b[5:])
		metric := int64(w)
		if w == dvInfWire {
			metric = InfMetric
		}
		p, err := addr.NewPrefix(ip, l)
		if err != nil {
			return errBadDV
		}
		m.Entries[i] = dvEntry{Prefix: p, Metric: metric}
		b = b[9:]
	}
	return nil
}
