package unicast

import "pim/internal/addr"

// lpmTrie is an 8-bit-stride multibit trie with prefix expansion: depth d
// indexes byte d of the destination address, and a prefix of length L is
// expanded across the 2^(8·ceil(L/8)−L) slots it covers in the node at
// depth ceil(L/8)−1 (the default route fills the whole root). Each slot
// remembers the longest prefix covering it, so a lookup is at most four
// array loads with no comparisons against other prefixes — the classic
// controlled prefix expansion scheme (Srinivasan & Varghese).
//
// Mutation strategy: inserts update slots in place (a slot adopts the new
// route when its current covering prefix is no longer than the inserted
// one); deletes and wholesale replaces mark the trie dirty and it is
// rebuilt from the authoritative sorted entry slice on the next lookup.
// Route withdrawals are rare next to the per-packet lookups and the
// convergence-time insert storms that the incremental path keeps cheap.
//
// Routes with InfMetric never enter the trie, mirroring the reference
// scan's "unreachable routes do not shadow shorter reachable prefixes"
// behaviour (see Table.lookupLinear).
type lpmTrie struct {
	root  *trieNode
	dirty bool
}

// trieNode is one 256-way level. lens[i] is the length of the prefix whose
// expansion owns slot i, or -1 when no prefix covers the slot at this
// level. A slot can simultaneously hold a route and a child: the route is
// the fallback when the deeper levels produce no match.
type trieNode struct {
	children [256]*trieNode
	routes   [256]Route
	lens     [256]int16
}

func newTrieNode() *trieNode {
	n := &trieNode{}
	for i := range n.lens {
		n.lens[i] = -1
	}
	return n
}

// insert installs a reachable route for p, overwriting any slot whose
// current covering prefix is no longer than p.Len.
func (t *lpmTrie) insert(p addr.Prefix, r Route) {
	if t.root == nil {
		t.root = newTrieNode()
	}
	n := t.root
	// Walk the fully-specified leading bytes.
	depth := 0
	for ; (depth+1)*8 < p.Len; depth++ {
		b := byte(p.Addr >> (24 - 8*depth))
		child := n.children[b]
		if child == nil {
			child = newTrieNode()
			n.children[b] = child
		}
		n = child
	}
	// Expand the remaining (possibly partial) byte across its slot range.
	k := p.Len - 8*depth // bits specified in this byte: 0 (default) .. 8
	base := int(byte(p.Addr >> (24 - 8*depth)))
	if p.Len == 0 {
		base = 0
	}
	count := 1 << (8 - k)
	start := base &^ (count - 1)
	for i := start; i < start+count; i++ {
		if int(n.lens[i]) <= p.Len {
			n.routes[i] = r
			n.lens[i] = int16(p.Len)
		}
	}
}

// lookup walks one byte per level, remembering the deepest covering route.
func (t *lpmTrie) lookup(dst addr.IP) (Route, bool) {
	n := t.root
	var best Route
	found := false
	for depth := 0; n != nil && depth < 4; depth++ {
		b := byte(dst >> (24 - 8*depth))
		if n.lens[b] >= 0 {
			best = n.routes[b]
			found = true
		}
		n = n.children[b]
	}
	return best, found
}

// rebuild reconstructs the trie from the authoritative entry slice,
// skipping unreachable routes. Entries are sorted most-specific first, so
// inserting in reverse order means every slot write wins (lens monotonically
// grow), but insert's covering check makes order irrelevant anyway.
func (t *lpmTrie) rebuild(entries []tableEntry) {
	t.root = newTrieNode()
	t.dirty = false
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].route.Metric < InfMetric {
			t.insert(entries[i].prefix, entries[i].route)
		}
	}
}
