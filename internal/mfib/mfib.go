// Package mfib implements the multicast forwarding information base of §3:
// (S,G) and (*,G) entries carrying the incoming interface, the outgoing
// interface list with per-interface timers, and the WC (wildcard), RP, and
// SPT flag bits the paper defines. The PIM sparse-mode engine in
// internal/core drives the state machine; the baselines (DVMRP, PIM-DM)
// reuse the same entry store for their own (S,G) state so that state-size
// comparisons count the same objects.
//
// Entry kinds, using the paper's notation:
//
//   - (*,G): Wildcard=true, RPBit=true. Matches any source; incoming
//     interface is the RPF interface toward the RP; the RP address is kept
//     in place of the source (§3, "saves the RP address in place of the
//     source address").
//   - (S,G): Wildcard=false, RPBit=false. A shortest-path-tree entry with an
//     SPT bit recording whether the switch from shared tree has completed
//     (§3.3 fn. 7).
//   - (S,G) RP-bit: Wildcard=false, RPBit=true. A negative cache on the
//     shared tree (§3.3 fn. 11): interfaces pruned for S are recorded here
//     and subtracted from the (*,G) list during forwarding.
//
// Storage layout (DESIGN.md §16): the outgoing-interface list is stored
// inline in the entry — a fixed [inlineOIFCap]OIF array covers the common
// small fan-out, with a spill slice for wider lists. The list is kept packed
// and sorted by interface index, so iteration is deterministic without a
// per-walk sort and the steady-state refresh walk touches contiguous
// memory. OIF pointers returned by accessors are invalidated by any
// structural mutation of the list (AddOIF of a new interface, RemoveOIF);
// callers must not hold them across such mutations — timer closures capture
// the entry Key plus Life() and re-look-up instead.
package mfib

import (
	"fmt"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// Key identifies an entry. Source is the wildcard (0) for (*,G) entries.
// RPBit distinguishes the negative-cache (S,G) entry from the SPT (S,G)
// entry, which may coexist on one router.
type Key struct {
	Source addr.IP
	Group  addr.IP
	RPBit  bool
}

// OIF is one outgoing interface of an entry. An interface stays in the list
// while either a downstream join keeps its timer fresh (Expires) or a local
// IGMP member is present (LocalMember); the paper's per-oif timers are §3.6.
type OIF struct {
	Iface       *netsim.Iface
	Expires     netsim.Time // join-driven lifetime; ignored if LocalMember
	LocalMember bool
	// PrunePending is set while a LAN prune awaits possible join override
	// (§3.7); the interface keeps forwarding until the deadline passes.
	PrunePending  bool
	PruneDeadline netsim.Time
}

// inlineOIFCap is the number of outgoing interfaces stored directly in the
// entry; fan-outs beyond it spill to a heap slice. Four covers the typical
// degree of the random internets the experiments build (§6 talks in terms
// of a handful of tree neighbors per router).
const inlineOIFCap = 4

// Entry is one multicast forwarding entry.
type Entry struct {
	Key Key
	// RP is the rendezvous point associated with the group (kept in all
	// entry kinds so upstream join/prune messages can carry it).
	RP addr.IP
	// Wildcard is the WC bit: set for (*,G).
	Wildcard bool
	// SPTBit records a completed shared-tree→SPT transition (§3.3); only
	// meaningful on (S,G) entries without the RP bit.
	SPTBit bool
	// IIF is the expected arrival interface (RPF interface toward the
	// source, or toward the RP for wildcard/RP-bit entries). Nil at the RP
	// itself for (*,G) (§3.2: "the incoming interface in the RP's (*,G)
	// entry is set to null") and at a source's first-hop router for (S,G).
	IIF *netsim.Iface
	// UpstreamNeighbor is the next-hop address toward the source/RP that
	// periodic join/prune messages target; 0 when IIF is nil.
	UpstreamNeighbor addr.IP
	// Created supports the "delete after 3× refresh period" rule and
	// entry-age metrics.
	Created netsim.Time
	// DeleteAt, when nonzero, marks the entry for removal once reached
	// (set when the oif list goes null, §3.6).
	DeleteAt netsim.Time
	// SuppressedUntil implements §3.7 join suppression on LANs: hearing
	// another router's identical join postpones this entry's own periodic
	// refresh until the recorded time.
	SuppressedUntil netsim.Time

	// The outgoing-interface list: noif total, packed and sorted by
	// Iface.Index, the first inlineOIFCap elements inline and the rest in
	// oifSpill.
	noif      int32
	oifInline [inlineOIFCap]OIF
	oifSpill  []OIF

	// life identifies this incarnation of the (table, key) pair: the table
	// assigns a fresh monotone value on every creation, in both stores, so
	// timer closures can detect delete/re-create across their delay by
	// comparing Life() (pointer identity is not enough once the flat store
	// recycles slots).
	life uint64
	// dead marks a freed flat-store slot awaiting recycling.
	dead bool
	// gen is the entry's mutation generation; plans compiled against this
	// entry (plan.go) revalidate with one compare. Every method mutating
	// forwarding-relevant state bumps it; code mutating OIF fields or IIF
	// directly must call Touch. Slot recycling continues the sequence
	// (never resets it) so a stale plan dependency can never revalidate
	// against a later incarnation.
	gen uint64
	// plans holds the compiled fan-out slices derived from this entry.
	plans []plan
}

// Touch invalidates any compiled plan depending on this entry. Mutating
// methods call it internally; callers flipping OIF fields (LocalMember,
// PrunePending, ...) or IIF in place must call it themselves.
func (e *Entry) Touch() { e.gen++ }

// Gen returns the entry's mutation generation.
func (e *Entry) Gen() uint64 { return e.gen }

// Life identifies this incarnation of the entry's key in its table. A timer
// closure that must act on "the entry as it was scheduled" captures the Key
// and Life, re-looks the entry up at fire time, and bails if Life changed.
func (e *Entry) Life() uint64 { return e.life }

// NewEntry builds an empty entry.
func NewEntry(k Key, now netsim.Time) *Entry {
	return &Entry{Key: k, Wildcard: k.Source == 0, Created: now}
}

// oifAt returns the i-th slot of the packed oif list.
func (e *Entry) oifAt(i int) *OIF {
	if i < inlineOIFCap {
		return &e.oifInline[i]
	}
	return &e.oifSpill[i-inlineOIFCap]
}

// oifFind locates the interface index in the sorted list: (position, true)
// when present, (insertion point, false) when absent.
func (e *Entry) oifFind(idx int) (int, bool) {
	n := int(e.noif)
	for i := 0; i < n; i++ {
		j := e.oifAt(i).Iface.Index
		if j == idx {
			return i, true
		}
		if j > idx {
			return i, false
		}
	}
	return n, false
}

// oifInsert opens the slot at pos and writes o, keeping the list packed.
func (e *Entry) oifInsert(pos int, o OIF) *OIF {
	n := int(e.noif)
	if n >= inlineOIFCap {
		e.oifSpill = append(e.oifSpill, OIF{})
	}
	e.noif++
	for i := n; i > pos; i-- {
		*e.oifAt(i) = *e.oifAt(i - 1)
	}
	p := e.oifAt(pos)
	*p = o
	return p
}

// oifRemoveAt closes the slot at pos, keeping the list packed.
func (e *Entry) oifRemoveAt(pos int) {
	n := int(e.noif)
	for i := pos; i < n-1; i++ {
		*e.oifAt(i) = *e.oifAt(i + 1)
	}
	*e.oifAt(n - 1) = OIF{} // drop the Iface pointer
	if n-1 >= inlineOIFCap {
		e.oifSpill = e.oifSpill[:n-1-inlineOIFCap]
	}
	e.noif--
}

// OIFCount returns the number of interfaces in the list (live or not).
func (e *Entry) OIFCount() int { return int(e.noif) }

// OIFAt returns the i-th outgoing interface in index order. The pointer is
// valid only until the next structural list mutation.
func (e *Entry) OIFAt(i int) *OIF { return e.oifAt(i) }

// OIF returns the state for the given interface index, or nil. The pointer
// is valid only until the next structural list mutation.
func (e *Entry) OIF(ifaceIndex int) *OIF {
	if pos, ok := e.oifFind(ifaceIndex); ok {
		return e.oifAt(pos)
	}
	return nil
}

// EachOIF calls fn for every outgoing interface in ascending index order —
// the deterministic replacement for ranging over the old oif map. fn must
// not structurally mutate the list.
func (e *Entry) EachOIF(fn func(*OIF)) {
	for i := 0; i < int(e.noif); i++ {
		fn(e.oifAt(i))
	}
}

// AddOIF inserts or refreshes an outgoing interface driven by a downstream
// join, clearing any pending prune (a join overrides a pending LAN prune).
func (e *Entry) AddOIF(ifc *netsim.Iface, expires netsim.Time) *OIF {
	pos, ok := e.oifFind(ifc.Index)
	var o *OIF
	if ok {
		o = e.oifAt(pos)
	} else {
		o = e.oifInsert(pos, OIF{Iface: ifc})
	}
	if expires > o.Expires {
		o.Expires = expires
	}
	o.PrunePending = false
	e.DeleteAt = 0
	e.Touch()
	return o
}

// AddLocalOIF inserts or marks an interface as having a local member.
func (e *Entry) AddLocalOIF(ifc *netsim.Iface) *OIF {
	pos, ok := e.oifFind(ifc.Index)
	var o *OIF
	if ok {
		o = e.oifAt(pos)
	} else {
		o = e.oifInsert(pos, OIF{Iface: ifc})
	}
	o.LocalMember = true
	o.PrunePending = false
	e.DeleteAt = 0
	e.Touch()
	return o
}

// RemoveOIF drops an interface from the list.
func (e *Entry) RemoveOIF(ifc *netsim.Iface) {
	if pos, ok := e.oifFind(ifc.Index); ok {
		e.oifRemoveAt(pos)
	}
	e.Touch()
}

// HasOIF reports whether the interface is currently in the live list.
func (e *Entry) HasOIF(ifc *netsim.Iface, now netsim.Time) bool {
	o := e.OIF(ifc.Index)
	return o != nil && o.Live(now)
}

// Live reports whether the oif should still receive packets: a local member
// holds it open; otherwise the join timer must be unexpired. A pending LAN
// prune does not stop forwarding until its deadline fires (§3.7 gives other
// routers the override window).
func (o *OIF) Live(now netsim.Time) bool {
	if o.LocalMember {
		return true
	}
	return now <= o.Expires
}

// AppendLiveOIFs appends the interfaces to forward over — excluding the
// given arrival interface, in ascending index order — to dst and returns it.
// The allocation-free form of LiveOIFs for compiled-plan rebuilds and other
// hot walks.
func (e *Entry) AppendLiveOIFs(dst []*netsim.Iface, now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	for i := 0; i < int(e.noif); i++ {
		o := e.oifAt(i)
		if !o.Live(now) {
			continue
		}
		if except != nil && o.Iface == except {
			continue
		}
		dst = append(dst, o.Iface)
	}
	return dst
}

// LiveOIFs returns the interfaces to forward over, excluding the given
// arrival interface, sorted by index for determinism.
func (e *Entry) LiveOIFs(now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	return e.AppendLiveOIFs(nil, now, except)
}

// OIFEmpty reports whether no live outgoing interface remains.
func (e *Entry) OIFEmpty(now netsim.Time) bool {
	for i := 0; i < int(e.noif); i++ {
		if e.oifAt(i).Live(now) {
			return false
		}
	}
	return true
}

// String renders the entry in the paper's notation for traces and tests.
func (e *Entry) String() string {
	kind := fmt.Sprintf("(%v,%v)", e.Key.Source, e.Key.Group)
	if e.Wildcard {
		kind = fmt.Sprintf("(*,%v)", e.Key.Group)
	} else if e.Key.RPBit {
		kind += "RPbit"
	}
	return kind
}
