// Package mfib implements the multicast forwarding information base of §3:
// (S,G) and (*,G) entries carrying the incoming interface, the outgoing
// interface list with per-interface timers, and the WC (wildcard), RP, and
// SPT flag bits the paper defines. The PIM sparse-mode engine in
// internal/core drives the state machine; the baselines (DVMRP, PIM-DM)
// reuse the same entry store for their own (S,G) state so that state-size
// comparisons count the same objects.
//
// Entry kinds, using the paper's notation:
//
//   - (*,G): Wildcard=true, RPBit=true. Matches any source; incoming
//     interface is the RPF interface toward the RP; the RP address is kept
//     in place of the source (§3, "saves the RP address in place of the
//     source address").
//   - (S,G): Wildcard=false, RPBit=false. A shortest-path-tree entry with an
//     SPT bit recording whether the switch from shared tree has completed
//     (§3.3 fn. 7).
//   - (S,G) RP-bit: Wildcard=false, RPBit=true. A negative cache on the
//     shared tree (§3.3 fn. 11): interfaces pruned for S are recorded here
//     and subtracted from the (*,G) list during forwarding.
package mfib

import (
	"cmp"
	"fmt"
	"slices"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// Key identifies an entry. Source is the wildcard (0) for (*,G) entries.
// RPBit distinguishes the negative-cache (S,G) entry from the SPT (S,G)
// entry, which may coexist on one router.
type Key struct {
	Source addr.IP
	Group  addr.IP
	RPBit  bool
}

// OIF is one outgoing interface of an entry. An interface stays in the list
// while either a downstream join keeps its timer fresh (Expires) or a local
// IGMP member is present (LocalMember); the paper's per-oif timers are §3.6.
type OIF struct {
	Iface       *netsim.Iface
	Expires     netsim.Time // join-driven lifetime; ignored if LocalMember
	LocalMember bool
	// PrunePending is set while a LAN prune awaits possible join override
	// (§3.7); the interface keeps forwarding until the deadline passes.
	PrunePending  bool
	PruneDeadline netsim.Time
}

// Entry is one multicast forwarding entry.
type Entry struct {
	Key Key
	// RP is the rendezvous point associated with the group (kept in all
	// entry kinds so upstream join/prune messages can carry it).
	RP addr.IP
	// Wildcard is the WC bit: set for (*,G).
	Wildcard bool
	// SPTBit records a completed shared-tree→SPT transition (§3.3); only
	// meaningful on (S,G) entries without the RP bit.
	SPTBit bool
	// IIF is the expected arrival interface (RPF interface toward the
	// source, or toward the RP for wildcard/RP-bit entries). Nil at the RP
	// itself for (*,G) (§3.2: "the incoming interface in the RP's (*,G)
	// entry is set to null") and at a source's first-hop router for (S,G).
	IIF *netsim.Iface
	// UpstreamNeighbor is the next-hop address toward the source/RP that
	// periodic join/prune messages target; 0 when IIF is nil.
	UpstreamNeighbor addr.IP
	// OIFs maps interface index -> outgoing interface state.
	OIFs map[int]*OIF
	// Created supports the "delete after 3× refresh period" rule and
	// entry-age metrics.
	Created netsim.Time
	// DeleteAt, when nonzero, marks the entry for removal once reached
	// (set when the oif list goes null, §3.6).
	DeleteAt netsim.Time
	// SuppressedUntil implements §3.7 join suppression on LANs: hearing
	// another router's identical join postpones this entry's own periodic
	// refresh until the recorded time.
	SuppressedUntil netsim.Time
	// gen is the entry's mutation generation; plans compiled against this
	// entry (plan.go) revalidate with one compare. Every method mutating
	// forwarding-relevant state bumps it; code mutating OIF fields or IIF
	// directly must call Touch.
	gen uint64
	// plans holds the compiled fan-out slices derived from this entry.
	plans []plan
}

// Touch invalidates any compiled plan depending on this entry. Mutating
// methods call it internally; callers flipping OIF fields (LocalMember,
// PrunePending, ...) or IIF in place must call it themselves.
func (e *Entry) Touch() { e.gen++ }

// Gen returns the entry's mutation generation.
func (e *Entry) Gen() uint64 { return e.gen }

// NewEntry builds an empty entry.
func NewEntry(k Key, now netsim.Time) *Entry {
	return &Entry{Key: k, Wildcard: k.Source == 0, OIFs: map[int]*OIF{}, Created: now}
}

// AddOIF inserts or refreshes an outgoing interface driven by a downstream
// join, clearing any pending prune (a join overrides a pending LAN prune).
func (e *Entry) AddOIF(ifc *netsim.Iface, expires netsim.Time) *OIF {
	o := e.OIFs[ifc.Index]
	if o == nil {
		o = &OIF{Iface: ifc}
		e.OIFs[ifc.Index] = o
	}
	if expires > o.Expires {
		o.Expires = expires
	}
	o.PrunePending = false
	e.DeleteAt = 0
	e.Touch()
	return o
}

// AddLocalOIF inserts or marks an interface as having a local member.
func (e *Entry) AddLocalOIF(ifc *netsim.Iface) *OIF {
	o := e.OIFs[ifc.Index]
	if o == nil {
		o = &OIF{Iface: ifc}
		e.OIFs[ifc.Index] = o
	}
	o.LocalMember = true
	o.PrunePending = false
	e.DeleteAt = 0
	e.Touch()
	return o
}

// RemoveOIF drops an interface from the list.
func (e *Entry) RemoveOIF(ifc *netsim.Iface) {
	delete(e.OIFs, ifc.Index)
	e.Touch()
}

// HasOIF reports whether the interface is currently in the live list.
func (e *Entry) HasOIF(ifc *netsim.Iface, now netsim.Time) bool {
	o := e.OIFs[ifc.Index]
	return o != nil && o.Live(now)
}

// Live reports whether the oif should still receive packets: a local member
// holds it open; otherwise the join timer must be unexpired. A pending LAN
// prune does not stop forwarding until its deadline fires (§3.7 gives other
// routers the override window).
func (o *OIF) Live(now netsim.Time) bool {
	if o.LocalMember {
		return true
	}
	return now <= o.Expires
}

// LiveOIFs returns the interfaces to forward over, excluding the given
// arrival interface, sorted by index for determinism.
func (e *Entry) LiveOIFs(now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	var out []*netsim.Iface
	for _, o := range e.OIFs {
		if !o.Live(now) {
			continue
		}
		if except != nil && o.Iface == except {
			continue
		}
		out = append(out, o.Iface)
	}
	slices.SortFunc(out, func(a, b *netsim.Iface) int { return a.Index - b.Index })
	return out
}

// OIFEmpty reports whether no live outgoing interface remains.
func (e *Entry) OIFEmpty(now netsim.Time) bool { return len(e.LiveOIFs(now, nil)) == 0 }

// String renders the entry in the paper's notation for traces and tests.
func (e *Entry) String() string {
	kind := fmt.Sprintf("(%v,%v)", e.Key.Source, e.Key.Group)
	if e.Wildcard {
		kind = fmt.Sprintf("(*,%v)", e.Key.Group)
	} else if e.Key.RPBit {
		kind += "RPbit"
	}
	return kind
}

// Table stores a router's multicast forwarding entries.
type Table struct {
	entries map[Key]*Entry
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{entries: map[Key]*Entry{}} }

// Get returns the entry for the exact key, or nil.
func (t *Table) Get(k Key) *Entry { return t.entries[k] }

// Wildcard returns the (*,G) entry, or nil.
func (t *Table) Wildcard(g addr.IP) *Entry {
	return t.entries[Key{Group: g, RPBit: true}]
}

// SG returns the (S,G) shortest-path entry, or nil.
func (t *Table) SG(s, g addr.IP) *Entry {
	return t.entries[Key{Source: s, Group: g}]
}

// SGRpt returns the (S,G) RP-bit negative-cache entry, or nil.
func (t *Table) SGRpt(s, g addr.IP) *Entry {
	return t.entries[Key{Source: s, Group: g, RPBit: true}]
}

// Upsert returns the entry for k, creating it if absent; created reports
// whether it was new.
func (t *Table) Upsert(k Key, now netsim.Time) (e *Entry, created bool) {
	if e = t.entries[k]; e != nil {
		return e, false
	}
	e = NewEntry(k, now)
	e.Key = k
	t.entries[k] = e
	return e, true
}

// Delete removes an entry.
func (t *Table) Delete(k Key) { delete(t.entries, k) }

// Len returns the number of entries — the "state" axis of the paper's
// overhead metric.
func (t *Table) Len() int { return len(t.entries) }

// ForGroup calls fn for every entry of the group, in deterministic order.
func (t *Table) ForGroup(g addr.IP, fn func(*Entry)) {
	t.forSelected(func(k Key) bool { return k.Group == g }, fn)
}

// ForEach calls fn for every entry in deterministic order.
func (t *Table) ForEach(fn func(*Entry)) {
	t.forSelected(func(Key) bool { return true }, fn)
}

func (t *Table) forSelected(sel func(Key) bool, fn func(*Entry)) {
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		if sel(k) {
			keys = append(keys, k)
		}
	}
	slices.SortFunc(keys, func(a, b Key) int {
		if a.Group != b.Group {
			return cmp.Compare(a.Group, b.Group)
		}
		if a.Source != b.Source {
			return cmp.Compare(a.Source, b.Source)
		}
		return boolToInt(a.RPBit) - boolToInt(b.RPBit)
	})
	for _, k := range keys {
		if e := t.entries[k]; e != nil {
			fn(e)
		}
	}
}

// Sweep removes entries whose DeleteAt deadline has passed and prunes
// expired non-local oifs; it returns the removed entries so the protocol can
// emit triggered prunes.
func (t *Table) Sweep(now netsim.Time) []*Entry {
	var removed []*Entry
	for k, e := range t.entries {
		for idx, o := range e.OIFs {
			if !o.LocalMember && now > o.Expires {
				delete(e.OIFs, idx)
				e.Touch()
			}
		}
		if e.DeleteAt != 0 && now >= e.DeleteAt {
			removed = append(removed, e)
			delete(t.entries, k)
		}
	}
	slices.SortFunc(removed, func(a, b *Entry) int {
		if a.Key.Group != b.Key.Group {
			return cmp.Compare(a.Key.Group, b.Key.Group)
		}
		return cmp.Compare(a.Key.Source, b.Key.Source)
	})
	return removed
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
