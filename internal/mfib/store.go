package mfib

import (
	"cmp"
	"slices"
	"sync/atomic"
	"unsafe"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// This file holds the two entry stores behind Table (DESIGN.md §16).
//
// The flat store (default) keeps entries by value in append-only arena
// slabs ([]Entry, never reallocated, so &slab[i] is stable for the table's
// lifetime) addressed by 32-bit handles, with an open-addressed (linear
// probe + backward-shift delete) index from Key to handle and a sorted key
// slice driving the deterministic walks. The GC sees a few dozen slabs per
// router instead of one object per entry plus one per oif.
//
// The map store is the differential oracle: the straightforward
// map[Key]*Entry of heap entries the repo grew up with, kept bit-identical
// in every observable (same walk order, same walk-mutation semantics, same
// Sweep results) and exercised by the corpus matrix's map-store cell and a
// randomized lockstep test. The fastpath/wheel/pool toggles set the
// precedent; SetFlatStore follows it.
//
// Slot recycling contract: Delete marks the slot dead but leaves the fields
// in place, so entries returned by Sweep stay readable until the next
// insertion into the table. Recycling bumps the slot's plan generation
// (never resets it) and the table stamps a fresh Life() on every creation
// in both stores, so stale plan dependencies and timer closures can never
// revalidate against a later incarnation of the same key or slot.

var flatStore atomic.Bool

func init() { flatStore.Store(true) }

// SetFlatStore switches newly created tables between the flat arena store
// and the reference map store, returning the previous setting. Tables
// already built keep their store; the engines rebuild their tables on
// Stop/Start.
func SetFlatStore(on bool) (prev bool) { return flatStore.Swap(on) }

// FlatStoreEnabled reports the current default store.
func FlatStoreEnabled() bool { return flatStore.Load() }

// Handle addresses an entry in the flat store: slot+1, so the zero Handle
// means "none".
type Handle uint32

const (
	// 8 entries per slab: small enough that a lightly loaded router (a
	// handful of entries) doesn't pay for a mostly empty arena, large
	// enough that the arena stays a handful of objects at full load.
	// Slabs are never reallocated, so &slab[i] is stable for an entry's
	// whole slot lifetime.
	slabShift = 3
	slabSize  = 1 << slabShift
	slabMask  = slabSize - 1
)

// rhIndex is the open-addressed Key → slot index: linear probing with
// backward-shift deletion (the robin-hood deletion rule), power-of-two
// capacity, grown at 80% load. Values are slot+1 with 0 meaning empty.
// The index stores no key copies — a probed slot's key is read from its
// arena cell — so each index slot costs 4 bytes. The probe loops live on
// Table (indexGet/indexPut/indexDel) because they need the slabs.
type rhIndex struct {
	vals []uint32
	mask uint32
	n    int
}

func hashKey(k Key) uint32 {
	x := uint64(k.Source)<<32 | uint64(k.Group)
	if k.RPBit {
		x ^= 0x9e3779b97f4a7c15
	}
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

// slotKey reads a slot's key straight from its arena cell; every slot the
// index holds is live (Delete removes the index mapping before marking the
// slot dead), so the key field is always current.
func (t *Table) slotKey(slot int) Key { return t.entryAt(slot).Key }

func (t *Table) indexGet(k Key) (int, bool) {
	ix := &t.index
	if ix.n == 0 {
		return 0, false
	}
	i := hashKey(k) & ix.mask
	for {
		v := ix.vals[i]
		if v == 0 {
			return 0, false
		}
		if t.slotKey(int(v-1)) == k {
			return int(v - 1), true
		}
		i = (i + 1) & ix.mask
	}
}

// indexPut inserts k → slot; the caller guarantees k is absent and has
// already stamped k into the slot's arena cell.
func (t *Table) indexPut(k Key, slot int) {
	ix := &t.index
	if len(ix.vals) == 0 {
		t.indexGrow(16)
	} else if (ix.n+1)*5 > len(ix.vals)*4 {
		t.indexGrow(len(ix.vals) * 2)
	}
	i := hashKey(k) & ix.mask
	for ix.vals[i] != 0 {
		i = (i + 1) & ix.mask
	}
	ix.vals[i] = uint32(slot + 1)
	ix.n++
}

func (t *Table) indexGrow(capacity int) {
	ix := &t.index
	oldVals := ix.vals
	ix.vals = make([]uint32, capacity)
	ix.mask = uint32(capacity - 1)
	for _, v := range oldVals {
		if v == 0 {
			continue
		}
		j := hashKey(t.slotKey(int(v-1))) & ix.mask
		for ix.vals[j] != 0 {
			j = (j + 1) & ix.mask
		}
		ix.vals[j] = v
	}
}

// indexDel removes k, backward-shifting the probe chain so no tombstones
// are needed: each following element whose ideal position lies at or before
// the hole moves into it.
func (t *Table) indexDel(k Key) bool {
	ix := &t.index
	if ix.n == 0 {
		return false
	}
	i := hashKey(k) & ix.mask
	for {
		v := ix.vals[i]
		if v == 0 {
			return false
		}
		if t.slotKey(int(v-1)) == k {
			break
		}
		i = (i + 1) & ix.mask
	}
	ix.n--
	j := i
	for {
		ix.vals[i] = 0
		for {
			j = (j + 1) & ix.mask
			if ix.vals[j] == 0 {
				return true
			}
			ideal := hashKey(t.slotKey(int(ix.vals[j]-1))) & ix.mask
			if ((j - ideal) & ix.mask) >= ((j - i) & ix.mask) {
				break
			}
		}
		ix.vals[i] = ix.vals[j]
		i = j
	}
}

// compareKeys is the canonical walk order: (Group, Source, RPBit).
func compareKeys(a, b Key) int {
	if a.Group != b.Group {
		return cmp.Compare(a.Group, b.Group)
	}
	if a.Source != b.Source {
		return cmp.Compare(a.Source, b.Source)
	}
	return boolToInt(a.RPBit) - boolToInt(b.RPBit)
}

// Table stores a router's multicast forwarding entries in one of the two
// stores; the API is identical either way.
type Table struct {
	flat bool

	// map store
	m map[Key]*Entry

	// flat store
	slabs [][]Entry
	used  int      // slots ever allocated
	free  []Handle // recycled slots
	live  int
	index rhIndex
	order []Key // live keys sorted by compareKeys

	// lifeSeq stamps each created entry with a fresh incarnation id; shared
	// by both stores so delete/re-create is detectable identically.
	lifeSeq uint64

	// walks is the per-depth key-snapshot scratch for the deterministic
	// walks; walks nest (a ForGroup inside a ForEach), so each depth keeps
	// its own reusable buffer.
	walks [][]Key
	depth int
}

// NewTable returns an empty table using the store selected by SetFlatStore.
func NewTable() *Table { return NewTableWith(FlatStoreEnabled()) }

// NewTableWith returns an empty table with an explicit store choice — the
// hook the differential tests and the stateplane benchmark use to hold both
// stores side by side.
func NewTableWith(flat bool) *Table {
	t := &Table{flat: flat}
	if !flat {
		t.m = map[Key]*Entry{}
	}
	return t
}

// Flat reports which store backs this table.
func (t *Table) Flat() bool { return t.flat }

func (t *Table) entryAt(slot int) *Entry {
	return &t.slabs[slot>>slabShift][slot&slabMask]
}

// Get returns the entry for the exact key, or nil.
func (t *Table) Get(k Key) *Entry {
	if !t.flat {
		return t.m[k]
	}
	if slot, ok := t.indexGet(k); ok {
		return t.entryAt(slot)
	}
	return nil
}

// HandleOf returns the flat-store handle for k, or 0 when absent (always 0
// on a map-store table).
func (t *Table) HandleOf(k Key) Handle {
	if !t.flat {
		return 0
	}
	if slot, ok := t.indexGet(k); ok {
		return Handle(slot + 1)
	}
	return 0
}

// At resolves a handle to its entry, or nil if the slot is out of range or
// currently dead.
func (t *Table) At(h Handle) *Entry {
	if !t.flat || h == 0 || int(h) > t.used {
		return nil
	}
	e := t.entryAt(int(h) - 1)
	if e.dead {
		return nil
	}
	return e
}

// Wildcard returns the (*,G) entry, or nil.
func (t *Table) Wildcard(g addr.IP) *Entry {
	return t.Get(Key{Group: g, RPBit: true})
}

// SG returns the (S,G) shortest-path entry, or nil.
func (t *Table) SG(s, g addr.IP) *Entry {
	return t.Get(Key{Source: s, Group: g})
}

// SGRpt returns the (S,G) RP-bit negative-cache entry, or nil.
func (t *Table) SGRpt(s, g addr.IP) *Entry {
	return t.Get(Key{Source: s, Group: g, RPBit: true})
}

// Upsert returns the entry for k, creating it if absent; created reports
// whether it was new.
func (t *Table) Upsert(k Key, now netsim.Time) (e *Entry, created bool) {
	if e = t.Get(k); e != nil {
		return e, false
	}
	t.lifeSeq++
	if !t.flat {
		e = NewEntry(k, now)
		e.life = t.lifeSeq
		t.m[k] = e
		return e, true
	}
	var slot int
	if n := len(t.free); n > 0 {
		slot = int(t.free[n-1]) - 1
		t.free = t.free[:n-1]
	} else {
		if t.used>>slabShift == len(t.slabs) {
			t.slabs = append(t.slabs, make([]Entry, slabSize))
		}
		slot = t.used
		t.used++
	}
	e = t.entryAt(slot)
	// Recycle in place: keep the spill/plan capacities, continue the plan
	// generation, and zero everything else.
	spill := e.oifSpill[:0]
	plans := e.plans[:0]
	gen := e.gen + 1
	*e = Entry{Key: k, Wildcard: k.Source == 0, Created: now,
		gen: gen, life: t.lifeSeq, oifSpill: spill, plans: plans}
	t.indexPut(k, slot)
	pos, _ := slices.BinarySearchFunc(t.order, k, compareKeys)
	t.order = slices.Insert(t.order, pos, k)
	t.live++
	return e, true
}

// Delete removes an entry. In the flat store the slot is marked dead and
// recycled by a later Upsert; its fields stay readable until then.
func (t *Table) Delete(k Key) {
	if !t.flat {
		delete(t.m, k)
		return
	}
	slot, ok := t.indexGet(k)
	if !ok {
		return
	}
	t.indexDel(k)
	e := t.entryAt(slot)
	e.dead = true
	pos, found := slices.BinarySearchFunc(t.order, k, compareKeys)
	if found {
		t.order = slices.Delete(t.order, pos, pos+1)
	}
	t.free = append(t.free, Handle(slot+1))
	t.live--
}

// Len returns the number of entries — the "state" axis of the paper's
// overhead metric.
func (t *Table) Len() int {
	if !t.flat {
		return len(t.m)
	}
	return t.live
}

// ForGroup calls fn for every entry of the group, in deterministic order.
func (t *Table) ForGroup(g addr.IP, fn func(*Entry)) {
	t.walkSelected(func(k Key) bool { return k.Group == g }, g, true, fn)
}

// ForEach calls fn for every entry in deterministic order.
func (t *Table) ForEach(fn func(*Entry)) {
	t.walkSelected(nil, 0, false, fn)
}

// walkSelected snapshots the selected keys, then visits each entry that is
// still present — both stores share this exact sequence, so fn may insert
// or delete entries mid-walk with identical visibility: entries deleted
// after the snapshot are skipped, entries created after it are not visited.
func (t *Table) walkSelected(sel func(Key) bool, g addr.IP, grouped bool, fn func(*Entry)) {
	d := t.depth
	t.depth++
	if d >= len(t.walks) {
		t.walks = append(t.walks, nil)
	}
	keys := t.walks[d][:0]
	switch {
	case t.flat && grouped:
		// order is group-contiguous: binary-search the range start.
		lo, _ := slices.BinarySearchFunc(t.order, Key{Group: g}, compareKeys)
		for i := lo; i < len(t.order) && t.order[i].Group == g; i++ {
			keys = append(keys, t.order[i])
		}
	case t.flat:
		keys = append(keys, t.order...)
	default:
		for k := range t.m {
			if sel == nil || sel(k) {
				keys = append(keys, k)
			}
		}
		slices.SortFunc(keys, compareKeys)
	}
	t.walks[d] = keys
	for _, k := range keys {
		if e := t.Get(k); e != nil {
			fn(e)
		}
	}
	t.depth--
}

// Sweep removes entries whose DeleteAt deadline has passed and prunes
// expired non-local oifs; it returns the removed entries so the protocol
// can emit triggered prunes. In the flat store the returned entries are
// dead slots whose fields stay readable until the next Upsert.
func (t *Table) Sweep(now netsim.Time) []*Entry {
	var removed []*Entry
	t.walkSelected(nil, 0, false, func(e *Entry) {
		for i := int(e.noif) - 1; i >= 0; i-- {
			o := e.oifAt(i)
			if !o.LocalMember && now > o.Expires {
				e.oifRemoveAt(i)
				e.Touch()
			}
		}
		if e.DeleteAt != 0 && now >= e.DeleteAt {
			removed = append(removed, e)
			t.Delete(e.Key)
		}
	})
	slices.SortFunc(removed, func(a, b *Entry) int {
		if a.Key.Group != b.Key.Group {
			return cmp.Compare(a.Key.Group, b.Key.Group)
		}
		return cmp.Compare(a.Key.Source, b.Key.Source)
	})
	return removed
}

// Footprint sizes, for the Bytes estimator. The map store heap-allocates
// every entry individually, so each one really occupies its allocator size
// class (mapEntryAlloc rounds up to the 32-byte granularity the relevant
// classes follow), and the map adds the key copy and entry pointer in the
// bucket plus amortized bucket headers on top (mapEntryOverhead).
const (
	entryBytes       = int64(unsafe.Sizeof(Entry{}))
	oifBytes         = int64(unsafe.Sizeof(OIF{}))
	planBytes        = int64(unsafe.Sizeof(plan{}))
	keyBytes         = int64(unsafe.Sizeof(Key{}))
	ptrBytes         = int64(unsafe.Sizeof((*Entry)(nil)))
	mapEntryAlloc    = (entryBytes + 31) &^ 31
	mapEntryOverhead = keyBytes + ptrBytes + 16
)

// Bytes estimates the table's resident state footprint: everything the
// store keeps per entry (arena slabs including free slack, index arrays,
// order slice — or heap entries plus map overhead) plus the spill and
// compiled-plan capacities hanging off live entries. It is a deterministic
// estimator, not a heap measurement; the stateplane benchmark pairs it with
// runtime.ReadMemStats for the ground truth.
func (t *Table) Bytes() int64 {
	var b int64
	side := func(e *Entry) {
		b += int64(cap(e.oifSpill)) * oifBytes
		b += int64(cap(e.plans)) * planBytes
		for i := range e.plans {
			b += int64(cap(e.plans[i].out)) * ptrBytes
		}
	}
	if !t.flat {
		for _, e := range t.m {
			b += mapEntryAlloc + mapEntryOverhead
			side(e)
		}
		return b
	}
	b += int64(len(t.slabs)) * slabSize * entryBytes
	b += int64(len(t.index.vals)) * 4
	b += int64(cap(t.order)) * keyBytes
	b += int64(cap(t.free)) * 4
	for _, k := range t.order {
		if e := t.Get(k); e != nil {
			side(e)
		}
	}
	return b
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
