package mfib

import (
	"math/rand"
	"slices"
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// TestPlansMatchReferenceLists is the MFIB differential test: under random
// interleavings of OIF mutations, in-place field flips (with Touch), and
// time advances, the compiled fast-path fan-outs must equal the reference
// computations exactly — same interfaces, same order.
func TestPlansMatchReferenceLists(t *testing.T) {
	ifs := testIfaces(6)
	rng := rand.New(rand.NewSource(3))
	g := addr.GroupForIndex(0)
	s := addr.V4(10, 100, 1, 1)
	for trial := 0; trial < 30; trial++ {
		tb := NewTable()
		wc, _ := tb.Upsert(Key{Group: g, RPBit: true}, 0)
		sg, _ := tb.Upsert(Key{Source: s, Group: g}, 0)
		sg.IIF = ifs[5]
		var rpt *Entry
		now := netsim.Time(0)
		for step := 0; step < 400; step++ {
			e := wc
			switch rng.Intn(3) {
			case 1:
				e = sg
			case 2:
				e = rpt // may be nil
			}
			switch op := rng.Intn(12); {
			case op < 4:
				if e != nil {
					e.AddOIF(ifs[rng.Intn(len(ifs))], now+netsim.Time(rng.Intn(200)))
				}
			case op < 6:
				if e != nil {
					e.AddLocalOIF(ifs[rng.Intn(len(ifs))])
				}
			case op < 8:
				if e != nil {
					e.RemoveOIF(ifs[rng.Intn(len(ifs))])
				}
			case op < 9: // flip fields in place, as the engines do
				if e != nil {
					if o := e.OIF(rng.Intn(len(ifs))); o != nil {
						switch rng.Intn(3) {
						case 0:
							o.LocalMember = !o.LocalMember
						case 1:
							o.PrunePending = !o.PrunePending
						case 2:
							o.Expires = now + netsim.Time(rng.Intn(100))
						}
						e.Touch()
					}
				}
			case op < 10: // create/destroy the negative cache
				if rpt == nil {
					rpt, _ = tb.Upsert(Key{Source: s, Group: g, RPBit: true}, now)
				} else {
					tb.Delete(rpt.Key)
					rpt = nil
				}
			default:
				now += netsim.Time(rng.Intn(60))
			}
			except := ifs[rng.Intn(len(ifs))]
			if rng.Intn(4) == 0 {
				except = nil
			}
			check := func(name string, got, want []*netsim.Iface) {
				t.Helper()
				if !slices.Equal(got, want) {
					t.Fatalf("trial %d step %d: %s fast=%v ref=%v", trial, step, name, got, want)
				}
			}
			check("self", wc.ForwardOIFs(now, except), wc.LiveOIFs(now, except))
			check("shared", SharedForward(wc, rpt, now, except), sharedList(wc, rpt, now, except))
			check("union", UnionForward(sg, wc, rpt, now, except), unionList(sg, wc, rpt, now, except))
			// Same instant again: the cached plan must serve identically.
			check("self/hit", wc.ForwardOIFs(now, except), wc.LiveOIFs(now, except))
			check("union/hit", UnionForward(sg, wc, rpt, now, except), unionList(sg, wc, rpt, now, except))
		}
	}
}

// TestPlanTimerInvalidation pins the one non-mutation way a list changes:
// a join timer passing must drop the interface from the compiled fan-out
// with no Touch call.
func TestPlanTimerInvalidation(t *testing.T) {
	ifs := testIfaces(2)
	e, _ := NewTable().Upsert(Key{Group: addr.GroupForIndex(0), RPBit: true}, 0)
	e.AddOIF(ifs[0], 100)
	e.AddLocalOIF(ifs[1])
	if got := e.ForwardOIFs(50, nil); len(got) != 2 {
		t.Fatalf("before expiry: %v", got)
	}
	if got := e.ForwardOIFs(101, nil); len(got) != 1 || got[0] != ifs[1] {
		t.Fatalf("after expiry: %v", got)
	}
}

// TestPlanStaleNegativeCache pins plan hosting: deleting the rpt entry and
// creating a fresh one must never serve the old subtraction.
func TestPlanStaleNegativeCache(t *testing.T) {
	ifs := testIfaces(2)
	tb := NewTable()
	g := addr.GroupForIndex(0)
	s := addr.V4(10, 100, 1, 1)
	wc, _ := tb.Upsert(Key{Group: g, RPBit: true}, 0)
	wc.AddOIF(ifs[0], 1000)
	wc.AddOIF(ifs[1], 1000)
	rpt, _ := tb.Upsert(Key{Source: s, Group: g, RPBit: true}, 0)
	rpt.AddOIF(ifs[0], 1000)
	if got := SharedForward(wc, rpt, 10, nil); len(got) != 1 || got[0] != ifs[1] {
		t.Fatalf("with negative cache: %v", got)
	}
	tb.Delete(rpt.Key)
	if got := SharedForward(wc, nil, 10, nil); len(got) != 2 {
		t.Fatalf("after rpt delete: %v", got)
	}
}

// TestWarmForwardAllocFree asserts the acceptance criterion for the MFIB:
// established-tree fan-out resolution allocates nothing once compiled.
func TestWarmForwardAllocFree(t *testing.T) {
	ifs := testIfaces(4)
	tb := NewTable()
	g := addr.GroupForIndex(0)
	s := addr.V4(10, 100, 1, 1)
	wc, _ := tb.Upsert(Key{Group: g, RPBit: true}, 0)
	sg, _ := tb.Upsert(Key{Source: s, Group: g}, 0)
	rpt, _ := tb.Upsert(Key{Source: s, Group: g, RPBit: true}, 0)
	for _, ifc := range ifs[:3] {
		wc.AddOIF(ifc, 1000)
		sg.AddOIF(ifc, 1000)
	}
	rpt.AddOIF(ifs[1], 1000)
	now := netsim.Time(10)
	in := ifs[3]
	wc.ForwardOIFs(now, in)
	SharedForward(wc, rpt, now, in)
	UnionForward(sg, wc, rpt, now, in)
	if n := testing.AllocsPerRun(100, func() {
		wc.ForwardOIFs(now, in)
		SharedForward(wc, rpt, now, in)
		UnionForward(sg, wc, rpt, now, in)
	}); n != 0 {
		t.Errorf("warm fan-out resolution allocates %.1f per run", n)
	}
}

func benchEntries(tb *Table) (wc, sg, rpt *Entry, in *netsim.Iface) {
	ifs := testIfaces(8)
	g := addr.GroupForIndex(0)
	s := addr.V4(10, 100, 1, 1)
	wc, _ = tb.Upsert(Key{Group: g, RPBit: true}, 0)
	sg, _ = tb.Upsert(Key{Source: s, Group: g}, 0)
	rpt, _ = tb.Upsert(Key{Source: s, Group: g, RPBit: true}, 0)
	for _, ifc := range ifs[:7] {
		wc.AddOIF(ifc, 1<<40)
		sg.AddOIF(ifc, 1<<40)
	}
	rpt.AddOIF(ifs[2], 1<<40)
	rpt.AddOIF(ifs[4], 1<<40)
	return wc, sg, rpt, ifs[7]
}

func BenchmarkFanoutCompiled(b *testing.B) {
	wc, sg, rpt, in := benchEntries(NewTable())
	UnionForward(sg, wc, rpt, 10, in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		UnionForward(sg, wc, rpt, 10, in)
	}
}

func BenchmarkFanoutReference(b *testing.B) {
	wc, sg, rpt, in := benchEntries(NewTable())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		unionList(sg, wc, rpt, 10, in)
	}
}
