package mfib

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
)

func testIfaces(n int) []*netsim.Iface {
	net := netsim.NewNetwork()
	nd := net.AddNode("r")
	out := make([]*netsim.Iface, n)
	for i := range out {
		out[i] = net.AddIface(nd, addr.V4(10, 200, byte(i), 1))
		peer := net.AddIface(net.AddNode("p"), addr.V4(10, 200, byte(i), 2))
		net.Connect(out[i], peer, 1)
	}
	return out
}

func TestKeyKinds(t *testing.T) {
	tb := NewTable()
	g := addr.GroupForIndex(0)
	s := addr.V4(10, 100, 1, 1)
	wc, created := tb.Upsert(Key{Group: g, RPBit: true}, 0)
	if !created || !wc.Wildcard {
		t.Fatalf("wildcard: created=%v wc=%v", created, wc.Wildcard)
	}
	sg, _ := tb.Upsert(Key{Source: s, Group: g}, 0)
	if sg.Wildcard {
		t.Error("(S,G) must not be wildcard")
	}
	rpt, _ := tb.Upsert(Key{Source: s, Group: g, RPBit: true}, 0)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3 distinct entries", tb.Len())
	}
	if tb.Wildcard(g) != wc || tb.SG(s, g) != sg || tb.SGRpt(s, g) != rpt {
		t.Error("typed getters wrong")
	}
	if tb.SG(s, addr.GroupForIndex(9)) != nil {
		t.Error("missing entry should be nil")
	}
}

func TestUpsertIdempotent(t *testing.T) {
	tb := NewTable()
	k := Key{Group: addr.GroupForIndex(0), RPBit: true}
	e1, c1 := tb.Upsert(k, 5)
	e2, c2 := tb.Upsert(k, 9)
	if !c1 || c2 || e1 != e2 {
		t.Fatal("Upsert not idempotent")
	}
	if e1.Created != 5 {
		t.Error("Created clobbered")
	}
}

func TestOIFLifetimes(t *testing.T) {
	ifs := testIfaces(3)
	e := NewEntry(Key{Group: addr.GroupForIndex(0), RPBit: true}, 0)
	e.AddOIF(ifs[0], 100)
	e.AddLocalOIF(ifs[1])
	if !e.HasOIF(ifs[0], 50) || !e.HasOIF(ifs[1], 50) {
		t.Fatal("fresh oifs should be live")
	}
	if e.HasOIF(ifs[0], 101) {
		t.Error("expired join oif still live")
	}
	if !e.HasOIF(ifs[1], 1<<40) {
		t.Error("local member oif must not expire")
	}
	if e.HasOIF(ifs[2], 0) {
		t.Error("absent oif reported live")
	}
}

func TestAddOIFNeverShortensTimer(t *testing.T) {
	ifs := testIfaces(1)
	e := NewEntry(Key{Group: addr.GroupForIndex(0), RPBit: true}, 0)
	e.AddOIF(ifs[0], 100)
	e.AddOIF(ifs[0], 60) // late-arriving shorter holdtime must not shorten
	if !e.HasOIF(ifs[0], 90) {
		t.Error("timer was shortened")
	}
}

func TestLiveOIFsExcludesArrivalIface(t *testing.T) {
	ifs := testIfaces(3)
	e := NewEntry(Key{Group: addr.GroupForIndex(0), RPBit: true}, 0)
	for _, ifc := range ifs {
		e.AddOIF(ifc, 100)
	}
	out := e.LiveOIFs(50, ifs[1])
	if len(out) != 2 {
		t.Fatalf("LiveOIFs = %v", out)
	}
	for _, ifc := range out {
		if ifc == ifs[1] {
			t.Error("arrival iface included")
		}
	}
	// Deterministic order.
	if out[0].Index > out[1].Index {
		t.Error("not sorted")
	}
}

func TestOIFEmptyAndRemove(t *testing.T) {
	ifs := testIfaces(2)
	e := NewEntry(Key{Group: addr.GroupForIndex(0), RPBit: true}, 0)
	if !e.OIFEmpty(0) {
		t.Error("new entry should have empty oifs")
	}
	e.AddOIF(ifs[0], 100)
	if e.OIFEmpty(50) {
		t.Error("oifs not empty")
	}
	e.RemoveOIF(ifs[0])
	if !e.OIFEmpty(50) {
		t.Error("remove failed")
	}
}

func TestJoinClearsPendingPrune(t *testing.T) {
	ifs := testIfaces(1)
	e := NewEntry(Key{Group: addr.GroupForIndex(0), RPBit: true}, 0)
	o := e.AddOIF(ifs[0], 100)
	o.PrunePending = true
	o.PruneDeadline = 80
	e.AddOIF(ifs[0], 120) // join override
	if o.PrunePending {
		t.Error("join did not cancel pending prune")
	}
}

func TestSweepExpiredOIFsAndDeadEntries(t *testing.T) {
	ifs := testIfaces(2)
	tb := NewTable()
	g := addr.GroupForIndex(0)
	e, _ := tb.Upsert(Key{Group: g, RPBit: true}, 0)
	e.AddOIF(ifs[0], 100)
	e.AddLocalOIF(ifs[1])
	tb.Sweep(200)
	if e.OIF(ifs[0].Index) != nil {
		t.Error("expired oif not swept")
	}
	if e.OIF(ifs[1].Index) == nil {
		t.Error("local oif swept")
	}
	// Entry deletion after DeleteAt.
	e2, _ := tb.Upsert(Key{Source: addr.V4(10, 0, 0, 1), Group: g}, 0)
	e2.DeleteAt = 300
	if removed := tb.Sweep(250); len(removed) != 0 {
		t.Error("premature deletion")
	}
	removed := tb.Sweep(300)
	if len(removed) != 1 || removed[0] != e2 {
		t.Fatalf("removed = %v", removed)
	}
	if tb.SG(addr.V4(10, 0, 0, 1), g) != nil {
		t.Error("entry survived sweep")
	}
}

func TestAddOIFResetsDeleteAt(t *testing.T) {
	ifs := testIfaces(1)
	tb := NewTable()
	e, _ := tb.Upsert(Key{Group: addr.GroupForIndex(0), RPBit: true}, 0)
	e.DeleteAt = 100
	e.AddOIF(ifs[0], 200)
	if e.DeleteAt != 0 {
		t.Error("AddOIF should cancel scheduled deletion")
	}
}

func TestForGroupDeterministicOrder(t *testing.T) {
	tb := NewTable()
	g := addr.GroupForIndex(0)
	tb.Upsert(Key{Source: addr.V4(10, 0, 0, 2), Group: g}, 0)
	tb.Upsert(Key{Group: g, RPBit: true}, 0)
	tb.Upsert(Key{Source: addr.V4(10, 0, 0, 1), Group: g}, 0)
	tb.Upsert(Key{Source: addr.V4(10, 0, 0, 1), Group: g, RPBit: true}, 0)
	tb.Upsert(Key{Group: addr.GroupForIndex(1), RPBit: true}, 0)
	var seen []string
	tb.ForGroup(g, func(e *Entry) { seen = append(seen, e.String()) })
	want := []string{
		"(*," + g.String() + ")",
		"(10.0.0.1," + g.String() + ")",
		"(10.0.0.1," + g.String() + ")RPbit",
		"(10.0.0.2," + g.String() + ")",
	}
	if len(seen) != len(want) {
		t.Fatalf("seen = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("order[%d] = %q, want %q", i, seen[i], want[i])
		}
	}
	n := 0
	tb.ForEach(func(*Entry) { n++ })
	if n != 5 {
		t.Errorf("ForEach visited %d", n)
	}
}

func TestEntryStringNotation(t *testing.T) {
	g := addr.GroupForIndex(0)
	s := addr.V4(10, 0, 0, 1)
	if got := NewEntry(Key{Group: g, RPBit: true}, 0).String(); got != "(*,225.0.0.0)" {
		t.Errorf("wildcard String = %q", got)
	}
	if got := NewEntry(Key{Source: s, Group: g}, 0).String(); got != "(10.0.0.1,225.0.0.0)" {
		t.Errorf("SG String = %q", got)
	}
	if got := NewEntry(Key{Source: s, Group: g, RPBit: true}, 0).String(); got != "(10.0.0.1,225.0.0.0)RPbit" {
		t.Errorf("RPbit String = %q", got)
	}
}
