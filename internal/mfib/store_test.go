package mfib

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// dumpEntry renders every visible field of an entry, oif list included, so
// the lockstep test can compare the two stores' state byte-for-byte.
func dumpEntry(e *Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v/%v/%v rp=%v wc=%v spt=%v up=%v created=%d del=%d sup=%d",
		e.Key.Source, e.Key.Group, e.Key.RPBit, e.RP, e.Wildcard, e.SPTBit,
		e.UpstreamNeighbor, e.Created, e.DeleteAt, e.SuppressedUntil)
	if e.IIF != nil {
		fmt.Fprintf(&b, " iif=%d", e.IIF.Index)
	}
	for i := 0; i < e.OIFCount(); i++ {
		o := e.OIFAt(i)
		fmt.Fprintf(&b, " oif(%d exp=%d lm=%v pp=%v pd=%d)",
			o.Iface.Index, o.Expires, o.LocalMember, o.PrunePending, o.PruneDeadline)
	}
	return b.String()
}

func dumpTable(t *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "len=%d\n", t.Len())
	t.ForEach(func(e *Entry) {
		b.WriteString(dumpEntry(e))
		b.WriteByte('\n')
	})
	return b.String()
}

// TestFlatMapStoreLockstep drives tens of thousands of mixed operations
// against the flat and map stores in lockstep and requires identical
// visible state at every step: same lookups, same walk order, same Sweep
// results, same full-table dumps. This is the differential oracle for the
// arena/index/order machinery of DESIGN.md §16.
func TestFlatMapStoreLockstep(t *testing.T) {
	const ops = 60000
	rng := rand.New(rand.NewSource(7))
	ifs := testIfaces(7) // wider than inlineOIFCap to exercise the spill path
	flat := NewTableWith(true)
	ref := NewTableWith(false)

	groups := make([]addr.IP, 5)
	for i := range groups {
		groups[i] = addr.GroupForIndex(i)
	}
	sources := []addr.IP{0, addr.V4(10, 1, 0, 1), addr.V4(10, 2, 0, 1), addr.V4(10, 3, 0, 1)}

	randKey := func() Key {
		s := sources[rng.Intn(len(sources))]
		return Key{Source: s, Group: groups[rng.Intn(len(groups))], RPBit: s == 0 || rng.Intn(2) == 0}
	}

	var now netsim.Time
	for i := 0; i < ops; i++ {
		now += netsim.Time(rng.Intn(8))
		k := randKey()
		fe, re := flat.Get(k), ref.Get(k)
		if (fe == nil) != (re == nil) {
			t.Fatalf("op %d: Get(%v) presence differs: flat=%v ref=%v", i, k, fe != nil, re != nil)
		}
		switch op := rng.Intn(20); {
		case op < 5: // upsert
			fe2, fc := flat.Upsert(k, now)
			re2, rc := ref.Upsert(k, now)
			if fc != rc {
				t.Fatalf("op %d: Upsert(%v) created differs: flat=%v ref=%v", i, k, fc, rc)
			}
			if fc {
				rp := sources[1+rng.Intn(len(sources)-1)]
				fe2.RP, re2.RP = rp, rp
				up := addr.V4(10, 99, byte(rng.Intn(4)), 1)
				fe2.UpstreamNeighbor, re2.UpstreamNeighbor = up, up
				ifc := ifs[rng.Intn(len(ifs))]
				fe2.IIF, re2.IIF = ifc, ifc
			}
		case op < 9: // add oif
			if fe != nil {
				ifc := ifs[rng.Intn(len(ifs))]
				exp := now + netsim.Time(rng.Intn(200))
				if rng.Intn(3) == 0 {
					fe.AddLocalOIF(ifc)
					re.AddLocalOIF(ifc)
				} else {
					fe.AddOIF(ifc, exp)
					re.AddOIF(ifc, exp)
				}
			}
		case op < 11: // remove oif
			if fe != nil {
				ifc := ifs[rng.Intn(len(ifs))]
				fe.RemoveOIF(ifc)
				re.RemoveOIF(ifc)
			}
		case op < 13: // flip oif fields in place, as the engines do
			if fe != nil {
				idx := ifs[rng.Intn(len(ifs))].Index
				fo, ro := fe.OIF(idx), re.OIF(idx)
				if (fo == nil) != (ro == nil) {
					t.Fatalf("op %d: OIF(%d) presence differs on %v", i, idx, k)
				}
				if fo != nil {
					switch rng.Intn(3) {
					case 0:
						fo.LocalMember = !fo.LocalMember
						ro.LocalMember = fo.LocalMember
					case 1:
						fo.PrunePending = !fo.PrunePending
						ro.PrunePending = fo.PrunePending
					case 2:
						fo.Expires = now + netsim.Time(rng.Intn(150))
						ro.Expires = fo.Expires
					}
					fe.Touch()
					re.Touch()
				}
			}
		case op < 14: // entry-level timers
			if fe != nil {
				d := now + netsim.Time(rng.Intn(100))
				fe.DeleteAt, re.DeleteAt = d, d
			}
		case op < 16: // delete
			flat.Delete(k)
			ref.Delete(k)
		case op < 17: // sweep
			fr := flat.Sweep(now)
			rr := ref.Sweep(now)
			if len(fr) != len(rr) {
				t.Fatalf("op %d: Sweep removed %d vs %d", i, len(fr), len(rr))
			}
			for j := range fr {
				if fr[j].Key != rr[j].Key {
					t.Fatalf("op %d: Sweep[%d] key %v vs %v", i, j, fr[j].Key, rr[j].Key)
				}
			}
		case op < 18: // walk with mid-walk mutation
			g := groups[rng.Intn(len(groups))]
			var fseq, rseq []Key
			del := randKey()
			flat.ForGroup(g, func(e *Entry) {
				fseq = append(fseq, e.Key)
				flat.Delete(del)
			})
			ref.ForGroup(g, func(e *Entry) {
				rseq = append(rseq, e.Key)
				ref.Delete(del)
			})
			if len(fseq) != len(rseq) {
				t.Fatalf("op %d: ForGroup visited %d vs %d", i, len(fseq), len(rseq))
			}
			for j := range fseq {
				if fseq[j] != rseq[j] {
					t.Fatalf("op %d: ForGroup order differs at %d: %v vs %v", i, j, fseq[j], rseq[j])
				}
			}
		default: // read-only probes
			if fe != nil {
				if fe.OIFEmpty(now) != re.OIFEmpty(now) {
					t.Fatalf("op %d: OIFEmpty differs on %v", i, k)
				}
				ifc := ifs[rng.Intn(len(ifs))]
				if fe.HasOIF(ifc, now) != re.HasOIF(ifc, now) {
					t.Fatalf("op %d: HasOIF differs on %v", i, k)
				}
				fl := fe.LiveOIFs(now, nil)
				rl := re.LiveOIFs(now, nil)
				if len(fl) != len(rl) {
					t.Fatalf("op %d: LiveOIFs %d vs %d on %v", i, len(fl), len(rl), k)
				}
				for j := range fl {
					if fl[j] != rl[j] {
						t.Fatalf("op %d: LiveOIFs[%d] differs on %v", i, j, k)
					}
				}
			}
		}
		if flat.Len() != ref.Len() {
			t.Fatalf("op %d: Len %d vs %d", i, flat.Len(), ref.Len())
		}
		// Handle self-consistency on the flat side.
		if fe2 := flat.Get(k); fe2 != nil {
			h := flat.HandleOf(k)
			if h == 0 || flat.At(h) != fe2 {
				t.Fatalf("op %d: handle round-trip broken for %v", i, k)
			}
		} else if h := flat.HandleOf(k); h != 0 {
			t.Fatalf("op %d: dead key %v still has handle %d", i, k, h)
		}
		if i%500 == 0 {
			if fd, rd := dumpTable(flat), dumpTable(ref); fd != rd {
				t.Fatalf("op %d: full dumps diverge\nflat:\n%s\nref:\n%s", i, fd, rd)
			}
		}
	}
	if fd, rd := dumpTable(flat), dumpTable(ref); fd != rd {
		t.Fatalf("final dumps diverge\nflat:\n%s\nref:\n%s", fd, rd)
	}
}

// TestFlatStoreRecycleIdentity pins the slot-recycling contract: deleting
// and re-creating a key must yield a fresh Life() in both stores, and a
// recycled flat slot must continue (not reset) its plan generation so a
// stale plan dependency can never revalidate.
func TestFlatStoreRecycleIdentity(t *testing.T) {
	g := addr.GroupForIndex(0)
	k := Key{Group: g, RPBit: true}
	for _, flatMode := range []bool{true, false} {
		tb := NewTableWith(flatMode)
		e1, _ := tb.Upsert(k, 0)
		l1, g1 := e1.Life(), e1.Gen()
		e1.Touch()
		tb.Delete(k)
		e2, created := tb.Upsert(k, 5)
		if !created {
			t.Fatalf("flat=%v: re-create not reported as created", flatMode)
		}
		if e2.Life() == l1 {
			t.Errorf("flat=%v: recreated entry kept Life %d", flatMode, l1)
		}
		if flatMode && e2 == e1 && e2.Gen() <= g1 {
			t.Errorf("flat=%v: recycled slot reset its generation (%d -> %d)", flatMode, g1, e2.Gen())
		}
		if e2.Created != 5 {
			t.Errorf("flat=%v: recreated entry kept Created", flatMode)
		}
		if e2.OIFCount() != 0 {
			t.Errorf("flat=%v: recreated entry kept oifs", flatMode)
		}
	}
}

// TestFlatStoreSpill exercises the inline→spill transition both ways.
func TestFlatStoreSpill(t *testing.T) {
	ifs := testIfaces(inlineOIFCap + 3)
	tb := NewTableWith(true)
	e, _ := tb.Upsert(Key{Group: addr.GroupForIndex(0), RPBit: true}, 0)
	for i, ifc := range ifs {
		e.AddOIF(ifc, netsim.Time(100+i))
	}
	if e.OIFCount() != len(ifs) {
		t.Fatalf("OIFCount = %d, want %d", e.OIFCount(), len(ifs))
	}
	live := e.LiveOIFs(50, nil)
	if len(live) != len(ifs) {
		t.Fatalf("LiveOIFs = %d, want %d", len(live), len(ifs))
	}
	for i := 1; i < len(live); i++ {
		if live[i-1].Index >= live[i].Index {
			t.Fatal("LiveOIFs not sorted by index")
		}
	}
	// Remove from the middle (shifts across the inline/spill boundary).
	e.RemoveOIF(ifs[2])
	if e.OIFCount() != len(ifs)-1 || e.OIF(ifs[2].Index) != nil {
		t.Fatal("middle removal broke the list")
	}
	for _, ifc := range ifs {
		e.RemoveOIF(ifc)
	}
	if e.OIFCount() != 0 {
		t.Fatalf("OIFCount = %d after removing all", e.OIFCount())
	}
}
