package mfib

import (
	"pim/internal/fastpath"
	"pim/internal/netsim"
)

// This file compiles §3.5 forwarding decisions into flat fan-out slices.
//
// The reference data plane recomputes the outgoing-interface list per
// packet: walk the oif list, test per-oif timers, subtract the (S,G)RP-bit
// negative cache — all allocating a fresh slice. In steady state nothing in
// that computation changes between packets, so the fast path caches the
// result as a plan: the compiled slice plus everything needed to prove it
// is still current. A plan is valid while
//
//   - each dependency entry is the same object at the same generation
//     (every OIF/IIF mutation bumps the owning entry's generation via
//     Touch; entry replacement changes the pointer in the map store and
//     continues the slot's generation past any pinned value in the flat
//     store), and
//   - simulated time has not passed validUntil, the earliest future oif
//     expiry among the dependencies (timer-driven liveness changes are the
//     one way a list changes with no mutation).
//
// Compilation appends through the same append-style functions the
// reference path wraps, so the two paths are structurally identical — same
// interfaces, same order — which is what the differential tests and the
// pimbench trace-equivalence gate verify end to end. The append forms also
// make a steady-state recompile allocation-free once the plan's slice has
// grown to its working capacity.

// Plan kinds: a plain entry list (§3.6 oif timers folded in), the shared
// tree minus the negative cache (§3.3 fn. 11), and the SPT∪shared union
// used after an iif-matching (S,G) packet (§3.5, DESIGN.md §4).
const (
	planSelf = int8(iota)
	planShared
	planUnion
)

// maxTime is "no timer-driven invalidation pending".
const maxTime = netsim.Time(1) << 62

// planDep pins one dependency entry at the generation it was compiled at.
// A nil entry is itself a valid dependency state ("no negative cache
// existed"): its later appearance changes the plan host, so the stale slot
// is never consulted.
type planDep struct {
	e   *Entry
	gen uint64
}

func (d planDep) valid(e *Entry) bool { return d.e == e && (e == nil || d.gen == e.gen) }

// plan is one compiled fan-out. Entries hold a small slice of them, one per
// (kind, arrival interface) pair seen; a router's entry is consulted with
// at most a couple of distinct arrival interfaces, so linear search wins
// over a map and stays allocation-free.
type plan struct {
	kind       int8
	except     *netsim.Iface
	out        []*netsim.Iface
	validUntil netsim.Time
	deps       [3]planDep
}

// compile (re)builds the fan-out slice in place, reusing its capacity.
func (p *plan) compile(d0, d1, d2 *Entry, now netsim.Time) {
	switch p.kind {
	case planSelf:
		p.out = d0.AppendLiveOIFs(p.out[:0], now, p.except)
	case planShared:
		p.out = appendShared(p.out[:0], d0, d1, now, p.except)
	case planUnion:
		p.out = appendUnion(p.out[:0], d0, d1, d2, now, p.except)
	}
	u := maxTime
	u = minFutureExpiry(d0, now, u)
	u = minFutureExpiry(d1, now, u)
	u = minFutureExpiry(d2, now, u)
	p.validUntil = u
	p.deps[0] = dep(d0)
	p.deps[1] = dep(d1)
	p.deps[2] = dep(d2)
}

func dep(e *Entry) planDep {
	if e == nil {
		return planDep{}
	}
	return planDep{e: e, gen: e.gen}
}

// minFutureExpiry folds an entry's join-timer horizon into the plan
// validity: the earliest not-yet-passed expiry of a non-local oif is the
// first instant the compiled list could change without any mutation (an
// already-expired oif can only re-enter via AddOIF, which bumps the
// generation).
func minFutureExpiry(e *Entry, now, until netsim.Time) netsim.Time {
	if e == nil {
		return until
	}
	for i := 0; i < int(e.noif); i++ {
		o := e.oifAt(i)
		if !o.LocalMember && o.Expires >= now && o.Expires < until {
			until = o.Expires
		}
	}
	return until
}

// lookupPlan finds or creates the plan for (kind, except) on e, recompiling
// if stale, and returns its fan-out slice. Callers must treat the slice as
// read-only and must not hold it across entry mutations.
func (e *Entry) lookupPlan(kind int8, except *netsim.Iface, d0, d1, d2 *Entry, now netsim.Time) []*netsim.Iface {
	for i := range e.plans {
		p := &e.plans[i]
		if p.kind != kind || p.except != except {
			continue
		}
		if now > p.validUntil ||
			!p.deps[0].valid(d0) || !p.deps[1].valid(d1) || !p.deps[2].valid(d2) {
			p.compile(d0, d1, d2, now)
		}
		return p.out
	}
	e.plans = append(e.plans, plan{kind: kind, except: except})
	p := &e.plans[len(e.plans)-1]
	p.compile(d0, d1, d2, now)
	return p.out
}

// ForwardOIFs is the fast-path equivalent of LiveOIFs: the entry's live
// outgoing interfaces excluding the arrival interface, served from a
// compiled plan when valid.
func (e *Entry) ForwardOIFs(now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	if !fastpath.Enabled() {
		return e.LiveOIFs(now, except)
	}
	return e.lookupPlan(planSelf, except, e, nil, nil, now)
}

// SharedForward is the §3.5 shared-tree fan-out: the (*,G) live list minus
// the interfaces the (S,G)RP-bit negative cache effectively prunes for this
// source. rpt may be nil. The plan lives on the rpt entry when one exists
// (its lifetime bounds the subtraction's) and on wc otherwise.
func SharedForward(wc, rpt *Entry, now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	if !fastpath.Enabled() {
		return sharedList(wc, rpt, now, except)
	}
	host := wc
	if rpt != nil {
		host = rpt
	}
	return host.lookupPlan(planShared, except, wc, rpt, nil, now)
}

// UnionForward is the (S,G)∪shared fan-out used when a packet passes the
// (S,G) iif check: the SPT list united with the inherited shared-tree list
// (§3.3's copy-at-creation, done race-free at forwarding time — DESIGN.md
// §4). wc and rpt may be nil.
func UnionForward(sg, wc, rpt *Entry, now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	if !fastpath.Enabled() {
		return unionList(sg, wc, rpt, now, except)
	}
	return sg.lookupPlan(planUnion, except, sg, wc, rpt, now)
}

// appendShared appends the shared-tree fan-out to dst: the (*,G) live list
// minus the interfaces the negative cache prunes for this source.
func appendShared(dst []*netsim.Iface, wc, rpt *Entry, now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	for i := 0; i < int(wc.noif); i++ {
		o := wc.oifAt(i)
		if !o.Live(now) {
			continue
		}
		if except != nil && o.Iface == except {
			continue
		}
		if rpt != nil {
			if ro := rpt.OIF(o.Iface.Index); ro != nil && ro.Live(now) && !ro.PrunePending {
				continue // pruned for this source (§3.3 fn. 11)
			}
		}
		dst = append(dst, o.Iface)
	}
	return dst
}

// appendUnion appends the SPT∪shared fan-out to dst. Deduplication is a
// linear scan over the handful of already-appended interfaces — fan-outs
// are small, and it keeps the recompile allocation-free.
func appendUnion(dst []*netsim.Iface, sg, wc, rpt *Entry, now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	base := len(dst)
	dst = sg.AppendLiveOIFs(dst, now, except)
	if wc == nil {
		return dst
	}
	for i := 0; i < int(wc.noif); i++ {
		o := wc.oifAt(i)
		if !o.Live(now) {
			continue
		}
		if except != nil && o.Iface == except {
			continue
		}
		if o.Iface == sg.IIF {
			continue
		}
		if rpt != nil {
			if ro := rpt.OIF(o.Iface.Index); ro != nil && ro.Live(now) && !ro.PrunePending {
				continue
			}
		}
		dup := false
		for _, have := range dst[base:] {
			if have.Index == o.Iface.Index {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, o.Iface)
		}
	}
	return dst
}

// sharedList is the reference shared-tree computation; the compiled path
// appends through the same code.
func sharedList(wc, rpt *Entry, now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	return appendShared(nil, wc, rpt, now, except)
}

// unionList is the reference SPT∪shared computation.
func unionList(sg, wc, rpt *Entry, now netsim.Time, except *netsim.Iface) []*netsim.Iface {
	return appendUnion(nil, sg, wc, rpt, now, except)
}
