package scenario

import (
	"pim/internal/core"
	"pim/internal/igmp"
	"pim/internal/metrics"
)

// PIMDeployment is a PIM-SM protocol instance on every router of a Sim,
// wired to per-router IGMP queriers.
type PIMDeployment struct {
	deploymentBase
	Sim      *Sim
	Routers  []*core.Router
	Queriers []*igmp.Querier
}

// TotalState sums multicast forwarding entries across all routers — the
// network-wide state metric of §1.2.
func (d *PIMDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// StateBytes sums the MFIB memory footprint across all routers — the
// byte-level cost of the entry count TotalState reports (DESIGN.md §16).
func (d *PIMDeployment) StateBytes() int64 {
	var total int64
	for _, r := range d.Routers {
		total += r.MFIB.Bytes()
	}
	return total
}

// ControlMessages sums the named control counters across all routers.
func (d *PIMDeployment) ControlMessages() int64 {
	var total int64
	for _, r := range d.Routers {
		total += r.Metrics.Get(metrics.CtrlJoinPrune) +
			r.Metrics.Get(metrics.CtrlRegister) +
			r.Metrics.Get(metrics.CtrlRPReach)
	}
	return total
}
