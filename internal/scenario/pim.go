package scenario

import (
	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/igmp"
	"pim/internal/metrics"
	"pim/internal/netsim"
)

// PIMDeployment is a PIM-SM protocol instance on every router of a Sim,
// wired to per-router IGMP queriers.
type PIMDeployment struct {
	Sim      *Sim
	Routers  []*core.Router
	Queriers []*igmp.Querier
}

// DeployPIM starts PIM-SM plus IGMP on every router. cfg is cloned per
// router. Call after FinishUnicast (and after convergence for DV/LS modes).
func (s *Sim) DeployPIM(cfg core.Config) *PIMDeployment {
	d := &PIMDeployment{Sim: s}
	for i, nd := range s.Routers {
		r := core.New(nd, cfg, s.UnicastFor(i))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		q.OnRPMap = func(g addr.IP, rps []addr.IP) { r.LearnRPMap(g, rps) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// TotalState sums multicast forwarding entries across all routers — the
// network-wide state metric of §1.2.
func (d *PIMDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// ControlMessages sums the named control counters across all routers.
func (d *PIMDeployment) ControlMessages() int64 {
	var total int64
	for _, r := range d.Routers {
		total += r.Metrics.Get(metrics.CtrlJoinPrune) +
			r.Metrics.Get(metrics.CtrlRegister) +
			r.Metrics.Get(metrics.CtrlRPReach)
	}
	return total
}
