package scenario

import (
	"pim/internal/addr"
	"pim/internal/cbt"
	"pim/internal/dvmrp"
	"pim/internal/igmp"
	"pim/internal/mospf"
	"pim/internal/netsim"
	"pim/internal/pimdm"
)

// DVMRPDeployment is a DVMRP baseline instance on every router of a Sim.
type DVMRPDeployment struct {
	Sim      *Sim
	Routers  []*dvmrp.Router
	Queriers []*igmp.Querier
}

// DeployDVMRP starts DVMRP plus IGMP on every router.
func (s *Sim) DeployDVMRP(cfg dvmrp.Config) *DVMRPDeployment {
	d := &DVMRPDeployment{Sim: s}
	for i, nd := range s.Routers {
		r := dvmrp.New(nd, cfg, s.UnicastFor(i))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// TotalState sums forwarding entries across all routers.
func (d *DVMRPDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// CBTDeployment is a CBT baseline instance on every router of a Sim.
type CBTDeployment struct {
	Sim      *Sim
	Routers  []*cbt.Router
	Queriers []*igmp.Querier
}

// DeployCBT starts CBT plus IGMP on every router.
func (s *Sim) DeployCBT(cfg cbt.Config) *CBTDeployment {
	d := &CBTDeployment{Sim: s}
	for i, nd := range s.Routers {
		r := cbt.New(nd, cfg, s.UnicastFor(i))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// TotalState sums per-group tree entries across all routers.
func (d *CBTDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// MOSPFDeployment is an MOSPF baseline instance on every router of a Sim.
type MOSPFDeployment struct {
	Sim      *Sim
	Domain   *mospf.Domain
	Routers  []*mospf.Router
	Queriers []*igmp.Querier
}

// DeployMOSPF starts MOSPF plus IGMP on every router. MOSPF carries its own
// topology view (the shared Domain), so FinishUnicast is not required.
func (s *Sim) DeployMOSPF() *MOSPFDeployment {
	dom := mospf.NewDomain(s.Routers)
	d := &MOSPFDeployment{Sim: s, Domain: dom}
	for _, nd := range s.Routers {
		r := mospf.New(nd, dom)
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// TotalState sums cache entries and stored membership rows.
func (d *MOSPFDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// PIMDMDeployment is a PIM dense-mode instance on every router of a Sim.
type PIMDMDeployment struct {
	Sim      *Sim
	Routers  []*pimdm.Router
	Queriers []*igmp.Querier
}

// DeployPIMDM starts PIM dense mode plus IGMP on every router.
func (s *Sim) DeployPIMDM(cfg pimdm.Config) *PIMDMDeployment {
	d := &PIMDMDeployment{Sim: s}
	for i, nd := range s.Routers {
		r := pimdm.New(nd, cfg, s.UnicastFor(i))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// TotalState sums forwarding entries across all routers.
func (d *PIMDMDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}
