package scenario

import (
	"pim/internal/cbt"
	"pim/internal/dvmrp"
	"pim/internal/igmp"
	"pim/internal/mospf"
	"pim/internal/pimdm"
)

// DVMRPDeployment is a DVMRP baseline instance on every router of a Sim.
type DVMRPDeployment struct {
	deploymentBase
	Sim      *Sim
	Routers  []*dvmrp.Router
	Queriers []*igmp.Querier
}

// TotalState sums forwarding entries across all routers.
func (d *DVMRPDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// StateBytes sums the MFIB memory footprint across all routers.
func (d *DVMRPDeployment) StateBytes() int64 {
	var total int64
	for _, r := range d.Routers {
		total += r.MFIB.Bytes()
	}
	return total
}

// CBTDeployment is a CBT baseline instance on every router of a Sim.
type CBTDeployment struct {
	deploymentBase
	Sim      *Sim
	Routers  []*cbt.Router
	Queriers []*igmp.Querier
}

// TotalState sums per-group tree entries across all routers.
func (d *CBTDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// MOSPFDeployment is an MOSPF baseline instance on every router of a Sim.
type MOSPFDeployment struct {
	deploymentBase
	Sim      *Sim
	Domain   *mospf.Domain
	Routers  []*mospf.Router
	Queriers []*igmp.Querier
}

// TotalState sums cache entries and stored membership rows.
func (d *MOSPFDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// PIMDMDeployment is a PIM dense-mode instance on every router of a Sim.
type PIMDMDeployment struct {
	deploymentBase
	Sim      *Sim
	Routers  []*pimdm.Router
	Queriers []*igmp.Querier
}

// TotalState sums forwarding entries across all routers.
func (d *PIMDMDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// StateBytes sums the MFIB memory footprint across all routers.
func (d *PIMDMDeployment) StateBytes() int64 {
	var total int64
	for _, r := range d.Routers {
		total += r.MFIB.Bytes()
	}
	return total
}
