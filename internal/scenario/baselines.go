package scenario

import (
	"pim/internal/cbt"
	"pim/internal/dvmrp"
	"pim/internal/igmp"
	"pim/internal/mospf"
	"pim/internal/pimdm"
)

// DVMRPDeployment is a DVMRP baseline instance on every router of a Sim.
type DVMRPDeployment struct {
	deploymentBase
	Sim      *Sim
	Routers  []*dvmrp.Router
	Queriers []*igmp.Querier
}

// DeployDVMRP starts DVMRP plus IGMP on every router.
//
// Deprecated: use Deploy(DVMRPMode, WithDVMRPConfig(cfg)).
func (s *Sim) DeployDVMRP(cfg dvmrp.Config) *DVMRPDeployment {
	return s.deployDVMRP(&DeployOptions{DVMRP: cfg, Telemetry: cfg.Telemetry})
}

// TotalState sums forwarding entries across all routers.
func (d *DVMRPDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// CBTDeployment is a CBT baseline instance on every router of a Sim.
type CBTDeployment struct {
	deploymentBase
	Sim      *Sim
	Routers  []*cbt.Router
	Queriers []*igmp.Querier
}

// DeployCBT starts CBT plus IGMP on every router.
//
// Deprecated: use Deploy(CBTMode, WithCBTConfig(cfg)).
func (s *Sim) DeployCBT(cfg cbt.Config) *CBTDeployment {
	return s.deployCBT(&DeployOptions{CBT: cfg, Telemetry: cfg.Telemetry})
}

// TotalState sums per-group tree entries across all routers.
func (d *CBTDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// MOSPFDeployment is an MOSPF baseline instance on every router of a Sim.
type MOSPFDeployment struct {
	deploymentBase
	Sim      *Sim
	Domain   *mospf.Domain
	Routers  []*mospf.Router
	Queriers []*igmp.Querier
}

// DeployMOSPF starts MOSPF plus IGMP on every router. MOSPF carries its own
// topology view (the shared Domain), so FinishUnicast is not required.
//
// Deprecated: use Deploy(MOSPFMode).
func (s *Sim) DeployMOSPF() *MOSPFDeployment {
	return s.deployMOSPF(&DeployOptions{})
}

// TotalState sums cache entries and stored membership rows.
func (d *MOSPFDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}

// PIMDMDeployment is a PIM dense-mode instance on every router of a Sim.
type PIMDMDeployment struct {
	deploymentBase
	Sim      *Sim
	Routers  []*pimdm.Router
	Queriers []*igmp.Querier
}

// DeployPIMDM starts PIM dense mode plus IGMP on every router.
//
// Deprecated: use Deploy(DenseMode, WithDenseConfig(cfg)).
func (s *Sim) DeployPIMDM(cfg pimdm.Config) *PIMDMDeployment {
	return s.deployDense(&DeployOptions{Dense: cfg, Telemetry: cfg.Telemetry})
}

// TotalState sums forwarding entries across all routers.
func (d *PIMDMDeployment) TotalState() int {
	total := 0
	for _, r := range d.Routers {
		total += r.StateCount()
	}
	return total
}
