package scenario

import (
	"cmp"
	"slices"

	"pim/internal/addr"
	"pim/internal/cbt"
	"pim/internal/core"
	"pim/internal/dvmrp"
	"pim/internal/igmp"
	"pim/internal/mospf"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimdm"
	"pim/internal/telemetry"
)

// Protocol selects which multicast engine Deploy runs on every router.
type Protocol int

const (
	// SparseMode deploys PIM sparse mode (the paper's contribution, §3).
	SparseMode Protocol = iota
	// DenseMode deploys PIM dense mode (companion protocol [13]).
	DenseMode
	// DVMRPMode deploys the DVMRP flood-and-prune baseline [4].
	DVMRPMode
	// CBTMode deploys the Core Based Trees baseline [10].
	CBTMode
	// MOSPFMode deploys the MOSPF link-state baseline [3].
	MOSPFMode
)

// String names the protocol for reports.
func (p Protocol) String() string {
	switch p {
	case SparseMode:
		return "pim-sm"
	case DenseMode:
		return "pim-dm"
	case DVMRPMode:
		return "dvmrp"
	case CBTMode:
		return "cbt"
	case MOSPFMode:
		return "mospf"
	}
	return "unknown"
}

// DeployOptions collects every deployment parameter. Zero value is a usable
// default; callers normally mutate it through DeployOption functions.
type DeployOptions struct {
	// Core / Dense / DVMRP / CBT are the per-engine configurations; only
	// the one matching the deployed Protocol is consulted.
	Core  core.Config
	Dense pimdm.Config
	DVMRP dvmrp.Config
	CBT   cbt.Config

	// Telemetry, when non-nil, is wired into every engine, every IGMP
	// querier, and every host (delivery events). Nil deploys with the
	// zero-cost disabled path everywhere.
	Telemetry *telemetry.Bus
	// ShardTelemetry, when non-nil, gives each shard a private event bus
	// (indexed by shard; length must be at least netsim's shard count).
	// Sharded runs must use lanes rather than one shared bus: a single bus
	// published from concurrently executing shards would race. Takes
	// precedence over Telemetry for engine/querier/host wiring.
	ShardTelemetry []*telemetry.Bus
	// InvariantChecker attaches an online telemetry.Checker asserting the
	// §3.8 soft-state contracts during the run, creating a Telemetry bus if
	// none was supplied.
	InvariantChecker bool
	// FailFast arms the checker's first-violation halt: the simulation's
	// scheduler stops at the violation's exact simulated time. Implies
	// InvariantChecker; sequential runs only (a shard goroutine must not
	// halt the root scheduler).
	FailFast bool

	// IGMPQueryInterval / IGMPHoldTime override the querier timers when
	// nonzero (fault experiments shrink them to speed re-learning).
	IGMPQueryInterval netsim.Time
	IGMPHoldTime      netsim.Time
	// MOSPFRefresh enables periodic LSA re-origination (MOSPFMode only).
	MOSPFRefresh netsim.Time
}

// DeployOption mutates DeployOptions; pass them to Deploy.
type DeployOption func(*DeployOptions)

// WithCoreConfig replaces the PIM sparse-mode configuration wholesale.
func WithCoreConfig(cfg core.Config) DeployOption {
	return func(o *DeployOptions) { o.Core = cfg }
}

// WithDenseConfig replaces the PIM dense-mode configuration wholesale.
func WithDenseConfig(cfg pimdm.Config) DeployOption {
	return func(o *DeployOptions) { o.Dense = cfg }
}

// WithDVMRPConfig replaces the DVMRP configuration wholesale.
func WithDVMRPConfig(cfg dvmrp.Config) DeployOption {
	return func(o *DeployOptions) { o.DVMRP = cfg }
}

// WithCBTConfig replaces the CBT configuration wholesale.
func WithCBTConfig(cfg cbt.Config) DeployOption {
	return func(o *DeployOptions) { o.CBT = cfg }
}

// WithRPMapping maps groups to ordered RP candidate lists for sparse mode
// and, for CBT, derives the core mapping from each group's first candidate —
// one option configures the rendezvous for either protocol family.
func WithRPMapping(m map[addr.IP][]addr.IP) DeployOption {
	return func(o *DeployOptions) {
		o.Core.RPMapping = m
		cores := map[addr.IP]addr.IP{}
		for g, rps := range m {
			if len(rps) > 0 {
				cores[g] = rps[0]
			}
		}
		o.CBT.CoreMapping = cores
	}
}

// WithSPTPolicy sets the sparse-mode shared-tree→SPT switching policy (§3.3).
func WithSPTPolicy(p core.SPTPolicy) DeployOption {
	return func(o *DeployOptions) { o.Core.SPTPolicy = p }
}

// WithAggregation keys sparse-mode (S,G) state by source subnet (§4).
func WithAggregation() DeployOption {
	return func(o *DeployOptions) { o.Core.AggregateSources = true }
}

// WithTelemetry attaches the event bus to every engine, querier, and host.
func WithTelemetry(b *telemetry.Bus) DeployOption {
	return func(o *DeployOptions) { o.Telemetry = b }
}

// WithShardTelemetry attaches one event bus per shard: every engine,
// querier, and host publishes to the lane of the shard its node runs on, so
// concurrently executing shards never share a bus. Callers merge or compare
// lanes after the run.
func WithShardTelemetry(lanes []*telemetry.Bus) DeployOption {
	return func(o *DeployOptions) { o.ShardTelemetry = lanes }
}

// WithInvariantChecker enables the online §3.8 invariant checker.
func WithInvariantChecker() DeployOption {
	return func(o *DeployOptions) { o.InvariantChecker = true }
}

// WithFailFast enables the invariant checker in fail-fast mode: the first
// violation halts the simulation at its exact simulated time (the clock
// freezes there; later RunUntil calls return immediately). Panics at deploy
// time on a sharded network — the checker runs on one bus, which sharded
// execution cannot feed race-free anyway.
func WithFailFast() DeployOption {
	return func(o *DeployOptions) { o.InvariantChecker, o.FailFast = true, true }
}

// WithIGMPTimers overrides the querier's query interval and hold time.
func WithIGMPTimers(query, hold netsim.Time) DeployOption {
	return func(o *DeployOptions) { o.IGMPQueryInterval, o.IGMPHoldTime = query, hold }
}

// WithMOSPFRefresh enables periodic membership-LSA re-origination.
func WithMOSPFRefresh(d netsim.Time) DeployOption {
	return func(o *DeployOptions) { o.MOSPFRefresh = d }
}

// deploymentBase carries the telemetry plumbing every deployment shares.
type deploymentBase struct {
	bus      *telemetry.Bus
	lanes    []*telemetry.Bus
	checkers []*telemetry.Checker
}

// Telemetry returns the event bus the deployment publishes to (nil when the
// deployment runs on the zero-cost disabled path or on per-shard lanes).
func (b *deploymentBase) Telemetry() *telemetry.Bus { return b.bus }

// TelemetryLanes returns the per-shard buses (nil unless deployed with
// WithShardTelemetry).
func (b *deploymentBase) TelemetryLanes() []*telemetry.Bus { return b.lanes }

// Checker returns the online invariant checker (nil unless enabled; nil for
// per-shard-lane deployments, which carry one checker per lane — see
// Violations for the aggregate).
func (b *deploymentBase) Checker() *telemetry.Checker {
	if len(b.checkers) == 1 {
		return b.checkers[0]
	}
	return nil
}

// Violations aggregates every checker's failed invariants (one checker per
// telemetry lane when sharded), merged into simulated-time order.
func (b *deploymentBase) Violations() []telemetry.Violation {
	var all []telemetry.Violation
	for _, c := range b.checkers {
		all = append(all, c.Violations()...)
	}
	slices.SortStableFunc(all, func(x, y telemetry.Violation) int {
		if x.At != y.At {
			return cmp.Compare(x.At, y.At)
		}
		return cmp.Compare(x.Router, y.Router)
	})
	return all
}

// Deploy starts the chosen multicast protocol plus IGMP on every router of
// the simulation. Call after FinishUnicast (and after convergence for DV/LS
// modes); MOSPFMode carries its own topology view and needs neither.
//
//	dep := sim.Deploy(scenario.SparseMode,
//	        scenario.WithRPMapping(map[addr.IP][]addr.IP{group: {rp}}),
//	        scenario.WithInvariantChecker())
func (s *Sim) Deploy(p Protocol, opts ...DeployOption) Deployment {
	o := &DeployOptions{}
	for _, fn := range opts {
		fn(o)
	}
	// A bus handed in through a raw engine config (legacy style) still
	// becomes the deployment-wide bus.
	if o.Telemetry == nil {
		switch p {
		case SparseMode:
			o.Telemetry = o.Core.Telemetry
		case DenseMode:
			o.Telemetry = o.Dense.Telemetry
		case DVMRPMode:
			o.Telemetry = o.DVMRP.Telemetry
		case CBTMode:
			o.Telemetry = o.CBT.Telemetry
		}
	}
	if o.ShardTelemetry != nil && s.Net.Sharded() && len(o.ShardTelemetry) < s.Net.ShardCount() {
		panic("scenario: fewer telemetry lanes than shards")
	}
	if o.InvariantChecker && o.Telemetry == nil && o.ShardTelemetry == nil {
		o.Telemetry = telemetry.NewBus()
	}

	// The checkers subscribe before any engine starts so they observe the
	// first EpochStart of every router. Per-shard-lane deployments get one
	// checker per lane (the invariants are per-router, so a lane checker
	// sees everything it needs).
	var chks []*telemetry.Checker
	if o.FailFast && s.Net.Sharded() {
		panic("scenario: WithFailFast requires an unsharded network (shards=1)")
	}
	if o.InvariantChecker {
		buses := o.ShardTelemetry
		if buses == nil {
			buses = []*telemetry.Bus{o.Telemetry}
		}
		for _, b := range buses {
			if b == nil {
				continue
			}
			chk := telemetry.NewChecker(b)
			if o.FailFast {
				chk.SetFailFast(true)
				chk.Halt = s.Net.Sched.Halt
			}
			switch p {
			case SparseMode, DenseMode, DVMRPMode:
				// These engines derive the expected incoming interface from
				// the unicast substrate, so the checker can recompute it.
				chk.ExpectedIIF = func(router int, target addr.IP) (int, bool) {
					rt, ok := s.UnicastFor(router).Lookup(target)
					if !ok || rt.Iface == nil {
						return 0, false
					}
					return rt.Iface.Index, true
				}
			}
			chks = append(chks, chk)
		}
	}

	var dep Deployment
	switch p {
	case SparseMode:
		d := s.deploySparse(o)
		routers := d.Routers
		for _, chk := range chks {
			chk.NegativeCached = func(router int, src, g addr.IP, iface int) bool {
				r := routers[router]
				rpt := r.MFIB.SGRpt(src, g)
				if rpt == nil {
					return false
				}
				oif := rpt.OIF(iface)
				now := r.Node.Sched().Now()
				return oif != nil && oif.Live(now) && !oif.PrunePending
			}
		}
		d.checkers = chks
		dep = d
	case DenseMode:
		d := s.deployDense(o)
		d.checkers = chks
		dep = d
	case DVMRPMode:
		d := s.deployDVMRP(o)
		d.checkers = chks
		dep = d
	case CBTMode:
		d := s.deployCBT(o)
		d.checkers = chks
		dep = d
	case MOSPFMode:
		d := s.deployMOSPF(o)
		d.checkers = chks
		dep = d
	default:
		panic("scenario: unknown protocol")
	}
	s.tapHosts(o)
	return dep
}

// busFor returns the event bus a node publishes to: its shard's lane when
// lanes are configured, else the deployment-wide bus.
func (o *DeployOptions) busFor(nd *netsim.Node) *telemetry.Bus {
	if o.ShardTelemetry != nil {
		return o.ShardTelemetry[nd.Shard()]
	}
	return o.Telemetry
}

// newQuerier builds one router's IGMP querier with the deployment-wide
// timer overrides and telemetry bus applied.
func (s *Sim) newQuerier(nd *netsim.Node, o *DeployOptions) *igmp.Querier {
	q := igmp.NewQuerier(nd)
	if o.IGMPQueryInterval > 0 {
		q.QueryInterval = o.IGMPQueryInterval
	}
	if o.IGMPHoldTime > 0 {
		q.HoldTime = o.IGMPHoldTime
	}
	q.Telemetry = o.busFor(nd)
	return q
}

// tapHosts chains a delivery-event publisher onto every host's OnData hook:
// Router is the attached router index, Iface the host's index on that LAN,
// and Value the SendData timestamp in microseconds (-1 when the payload
// carries none). Existing hooks keep firing after the tap.
func (s *Sim) tapHosts(o *DeployOptions) {
	if o.Telemetry == nil && o.ShardTelemetry == nil {
		return
	}
	for r := range s.Hosts {
		for hIdx, h := range s.Hosts[r] {
			r, hIdx, h := r, hIdx, h
			bus := o.busFor(h.Node)
			if bus == nil {
				continue
			}
			prev := h.OnData
			h.OnData = func(g addr.IP, pkt *packet.Packet) {
				now := h.Node.Sched().Now()
				sent := int64(-1)
				if lat, ok := Latency(now, pkt); ok {
					sent = int64(now - lat)
				}
				bus.Publish(telemetry.Event{
					At: now, Kind: telemetry.Deliver, Router: r, Iface: hIdx,
					Source: pkt.Src, Group: g, Value: sent,
				})
				if prev != nil {
					prev(g, pkt)
				}
			}
		}
	}
}

// deploySparse starts PIM-SM plus IGMP on every router.
func (s *Sim) deploySparse(o *DeployOptions) *PIMDeployment {
	d := &PIMDeployment{Sim: s}
	d.bus, d.lanes = o.Telemetry, o.ShardTelemetry
	for i, nd := range s.Routers {
		cfg := o.Core
		cfg.Telemetry = o.busFor(nd)
		r := core.New(nd, cfg, s.UnicastFor(i))
		q := s.newQuerier(nd, o)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		q.OnRPMap = func(g addr.IP, rps []addr.IP) { r.LearnRPMap(g, rps) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// deployDense starts PIM dense mode plus IGMP on every router.
func (s *Sim) deployDense(o *DeployOptions) *PIMDMDeployment {
	d := &PIMDMDeployment{Sim: s}
	d.bus, d.lanes = o.Telemetry, o.ShardTelemetry
	for i, nd := range s.Routers {
		cfg := o.Dense
		cfg.Telemetry = o.busFor(nd)
		r := pimdm.New(nd, cfg, s.UnicastFor(i))
		q := s.newQuerier(nd, o)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// deployDVMRP starts DVMRP plus IGMP on every router.
func (s *Sim) deployDVMRP(o *DeployOptions) *DVMRPDeployment {
	d := &DVMRPDeployment{Sim: s}
	d.bus, d.lanes = o.Telemetry, o.ShardTelemetry
	for i, nd := range s.Routers {
		cfg := o.DVMRP
		cfg.Telemetry = o.busFor(nd)
		r := dvmrp.New(nd, cfg, s.UnicastFor(i))
		q := s.newQuerier(nd, o)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// deployCBT starts CBT plus IGMP on every router.
func (s *Sim) deployCBT(o *DeployOptions) *CBTDeployment {
	d := &CBTDeployment{Sim: s}
	d.bus, d.lanes = o.Telemetry, o.ShardTelemetry
	for i, nd := range s.Routers {
		cfg := o.CBT
		cfg.Telemetry = o.busFor(nd)
		r := cbt.New(nd, cfg, s.UnicastFor(i))
		q := s.newQuerier(nd, o)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// deployMOSPF starts MOSPF plus IGMP on every router. MOSPF carries its own
// topology view (the shared Domain), so FinishUnicast is not required.
func (s *Sim) deployMOSPF(o *DeployOptions) *MOSPFDeployment {
	if s.Net.Sharded() {
		// MOSPF routers flood through a shared in-memory Domain whose state
		// is mutated synchronously from every router — racy and
		// order-sensitive across concurrently executing shards.
		panic("scenario: MOSPF requires an unsharded network (shards=1)")
	}
	dom := mospf.NewDomain(s.Routers)
	d := &MOSPFDeployment{Sim: s, Domain: dom}
	d.bus = o.Telemetry
	for _, nd := range s.Routers {
		r := mospf.New(nd, dom)
		r.RefreshInterval = o.MOSPFRefresh
		r.Telemetry = o.busFor(nd)
		q := s.newQuerier(nd, o)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		d.Routers = append(d.Routers, r)
		d.Queriers = append(d.Queriers, q)
	}
	return d
}
