package scenario

import "pim/internal/faults"

// Deployment is the crash/restart surface every protocol deployment shares:
// the fault layer (internal/faults, internal/script, the recovery
// experiment) kills and revives routers through it without knowing which
// protocol is running.
type Deployment interface {
	// Crash fail-stops router i: all interfaces down, engine and IGMP
	// querier stopped with their soft state discarded.
	Crash(i int)
	// Restart revives router i empty; state rebuilds from soft-state
	// refresh only.
	Restart(i int)
	// TotalState sums forwarding/tree/membership entries across routers.
	TotalState() int
}

// Crash fail-stops router i (see Deployment).
func (d *PIMDeployment) Crash(i int) {
	faults.CrashRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}

// Restart revives router i (see Deployment).
func (d *PIMDeployment) Restart(i int) {
	faults.RestartRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}

// Crash fail-stops router i (see Deployment).
func (d *PIMDMDeployment) Crash(i int) {
	faults.CrashRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}

// Restart revives router i (see Deployment).
func (d *PIMDMDeployment) Restart(i int) {
	faults.RestartRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}

// Crash fail-stops router i (see Deployment).
func (d *DVMRPDeployment) Crash(i int) {
	faults.CrashRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}

// Restart revives router i (see Deployment).
func (d *DVMRPDeployment) Restart(i int) {
	faults.RestartRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}

// Crash fail-stops router i (see Deployment).
func (d *CBTDeployment) Crash(i int) {
	faults.CrashRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}

// Restart revives router i (see Deployment).
func (d *CBTDeployment) Restart(i int) {
	faults.RestartRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}

// Crash fail-stops router i (see Deployment).
func (d *MOSPFDeployment) Crash(i int) {
	faults.CrashRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}

// Restart revives router i (see Deployment).
func (d *MOSPFDeployment) Restart(i int) {
	faults.RestartRouter(d.Sim.Net, d.Sim.Routers[i], d.Routers[i], d.Queriers[i])
}
